// Seeded violation: reads a GUARDED_BY member without holding its mutex.
// Expected: reading variable 'count_' requires holding mutex 'mu_'
#include "common/mutex.h"

class Counter {
 public:
  void Increment() {
    robustmap::MutexLock lock(&mu_);
    ++count_;
  }
  long Get() const { return count_; }  // BUG: no capability held

 private:
  mutable robustmap::Mutex mu_;
  long count_ GUARDED_BY(mu_) = 0;
};

int main() {
  Counter c;
  c.Increment();
  return static_cast<int>(c.Get());
}
