// Seeded violation: calls an EXCLUDES(mu_) function while holding mu_ —
// the callee acquires the mutex itself, so this self-deadlocks.
// Expected: cannot call function 'Reload' while mutex 'mu_' is held
#include "common/mutex.h"

class Cache {
 public:
  void Reload() EXCLUDES(mu_) {
    robustmap::MutexLock lock(&mu_);
    entries_ = 0;
  }
  void Tick() {
    robustmap::MutexLock lock(&mu_);
    Reload();  // BUG: mu_ is held here
  }

 private:
  robustmap::Mutex mu_;
  int entries_ GUARDED_BY(mu_) = 0;
};

int main() {
  Cache c;
  c.Tick();
  return 0;
}
