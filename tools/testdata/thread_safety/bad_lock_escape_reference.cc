// Seeded violation: a GUARDED_BY member escapes the capability by
// non-const reference — the callee can mutate it long after the caller's
// lock is gone.
// Expected: passing variable 'values_' by reference requires holding
// mutex 'mu_'
#include <vector>

#include "common/mutex.h"

void Compact(std::vector<long>& values) { values.clear(); }

class Staging {
 public:
  void Add(long v) {
    robustmap::MutexLock lock(&mu_);
    values_.push_back(v);
  }
  void Leak() { Compact(values_); }  // BUG: guarded state escapes unlocked

 private:
  robustmap::Mutex mu_;
  std::vector<long> values_ GUARDED_BY(mu_);
};

int main() {
  Staging s;
  s.Add(1);
  s.Leak();
  return 0;
}
