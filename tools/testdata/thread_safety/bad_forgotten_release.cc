// Seeded violation: a manual Lock() with no matching Unlock() on one path.
// Expected: mutex 'mu_' is still held at the end of function
#include "common/mutex.h"

class Counter {
 public:
  void Touch() {
    mu_.Lock();
    ++count_;
  }  // BUG: never released

 private:
  robustmap::Mutex mu_;
  long count_ GUARDED_BY(mu_) = 0;
};

int main() {
  Counter c;
  c.Touch();
  return 0;
}
