// Positive control for the thread-safety harness: every annotation macro
// in common/thread_annotations.h used correctly, in one translation unit.
//
// Two jobs (see tools/negative_compile.cmake):
//   * under GCC, with -Wall -Wextra -Werror: proves the no-op macro path
//     expands to nothing and builds warning-free;
//   * under Clang, with the analysis promoted to errors: proves a fully
//     annotated file satisfies the checker — so when a bad_* fixture
//     fails, it fails because of its seeded violation, not the harness.
#include "common/mutex.h"

namespace {

class Account {
 public:
  void Deposit(long amount) {
    robustmap::MutexLock lock(&mu_);
    balance_ += amount;
    if (audit_log_ != nullptr) *audit_log_ += amount;
  }

  bool TryDeposit(long amount) {
    if (!mu_.TryLock()) return false;
    balance_ += amount;
    mu_.Unlock();
    return true;
  }

  long BalanceLocked() const REQUIRES(mu_) { return balance_; }

  long Balance() const EXCLUDES(mu_) {
    robustmap::MutexLock lock(&mu_);
    return BalanceLocked();
  }

  void LockForAudit() ACQUIRE(mu_) { mu_.Lock(); }
  void UnlockAfterAudit() RELEASE(mu_) { mu_.Unlock(); }

  // Shared-mode contracts are declaration-only here: robustmap::Mutex is
  // exclusive, but the macros must still expand cleanly everywhere.
  void ReaderLock() ACQUIRE_SHARED(mu_);
  void ReaderUnlock() RELEASE_SHARED(mu_);
  long BalanceShared() const REQUIRES_SHARED(mu_);

  void AssertHeld() const ASSERT_CAPABILITY(mu_) {}

  long FastBalance() const {
    AssertHeld();  // teaches the analysis the caller holds mu_
    return balance_;
  }

  robustmap::Mutex& mu() RETURN_CAPABILITY(mu_) { return mu_; }

  void WaitForFunds(long floor) {
    robustmap::MutexLock lock(&mu_);
    while (balance_ < floor) funds_.Wait(&mu_);
  }

  void NotifyFunds() { funds_.SignalAll(); }

  // Policy-mandated justification: this snapshot runs in the single-owner
  // construction phase, before the object is published to any other
  // thread, so the capability is provably uncontended.
  long UnsynchronizedSnapshot() const NO_THREAD_SAFETY_ANALYSIS {
    return balance_;
  }

 private:
  mutable robustmap::Mutex mu_;
  long balance_ GUARDED_BY(mu_) = 0;
  long* audit_log_ PT_GUARDED_BY(mu_) = nullptr;
  robustmap::CondVar funds_;
};

}  // namespace

int main() {
  Account a;
  long snapshot = a.UnsynchronizedSnapshot();
  a.Deposit(10);
  if (!a.TryDeposit(5)) a.Deposit(5);
  a.LockForAudit();
  snapshot += a.BalanceLocked();
  a.UnlockAfterAudit();
  a.NotifyFunds();
  return a.Balance() == snapshot ? 0 : 1;
}
