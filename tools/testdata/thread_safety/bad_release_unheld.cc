// Seeded violation: releases a mutex the function never acquired.
// Expected: releasing mutex 'mu_' that was not held
#include "common/mutex.h"

class Counter {
 public:
  void Drop() { mu_.Unlock(); }  // BUG: not held

 private:
  robustmap::Mutex mu_;
};

int main() {
  Counter c;
  c.Drop();
  return 0;
}
