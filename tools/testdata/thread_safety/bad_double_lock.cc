// Seeded violation: acquires a mutex it already holds (self-deadlock on a
// non-recursive mutex).
// Expected: acquiring mutex 'mu_' that is already held
#include "common/mutex.h"

class Counter {
 public:
  void Touch() {
    mu_.Lock();
    mu_.Lock();  // BUG: already held
    ++count_;
    mu_.Unlock();
  }

 private:
  robustmap::Mutex mu_;
  long count_ GUARDED_BY(mu_) = 0;
};

int main() {
  Counter c;
  c.Touch();
  return 0;
}
