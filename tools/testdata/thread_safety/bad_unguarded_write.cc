// Seeded violation: writes a GUARDED_BY member without holding its mutex.
// Expected: writing variable 'count_' requires holding mutex 'mu_'
// exclusively
#include "common/mutex.h"

class Counter {
 public:
  void Set(long v) { count_ = v; }  // BUG: no capability held

 private:
  robustmap::Mutex mu_;
  long count_ GUARDED_BY(mu_) = 0;
};

int main() {
  Counter c;
  c.Set(7);
  return 0;
}
