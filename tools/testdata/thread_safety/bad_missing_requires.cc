// Seeded violation: calls a REQUIRES(mu_) function without the lock.
// Expected: calling function 'FlushLocked' requires holding mutex 'mu_'
// exclusively
#include "common/mutex.h"

class Pool {
 public:
  void FlushLocked() REQUIRES(mu_) { dirty_ = 0; }
  void Flush() { FlushLocked(); }  // BUG: precondition not established

 private:
  robustmap::Mutex mu_;
  int dirty_ GUARDED_BY(mu_) = 0;
};

int main() {
  Pool p;
  p.Flush();
  return 0;
}
