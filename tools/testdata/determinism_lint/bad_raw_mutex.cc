// Seeded violation for rule `unannotated-mutex` (a): raw std::mutex and
// std::lock_guard instead of the annotated robustmap::Mutex / MutexLock
// wrappers — Clang Thread Safety Analysis cannot see this lock at all.
#include <mutex>

class Tally {
 public:
  void Add(long v) {
    std::lock_guard<std::mutex> lock(mu_);
    total_ += v;
  }

 private:
  std::mutex mu_;
  long total_ = 0;
};
