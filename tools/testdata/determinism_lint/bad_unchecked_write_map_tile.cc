// Fixture: seeded `unchecked-write-map-tile` violations — tile writes whose
// Status is dropped (including the (void)-cast spelling).
namespace robustmap {

struct MapTile;
struct Status;
Status WriteMapTileFile(const char* path, const MapTile& tile);

void CheckpointTile(const MapTile& tile) {
  WriteMapTileFile("tile_0000.rmt", tile);
  (void)WriteMapTileFile("tile_0001.rmt", tile);
}

}  // namespace robustmap
