// Fixture: seeded `pointer-keyed-order` violations — container order from
// ASLR-dependent addresses.
#include <map>
#include <set>

namespace robustmap {

struct PlanNode {
  int id;
};

int PointerOrdered(PlanNode* a, PlanNode* b) {
  std::map<PlanNode*, int> cost_by_node;
  std::set<const PlanNode*> visited;
  cost_by_node[a] = 1;
  visited.insert(b);
  return static_cast<int>(cost_by_node.size() + visited.size());
}

}  // namespace robustmap
