// Fixture: a file whose basename is in the wall-clock exemption set — the
// tracer itself is the one place steady_clock may appear, because it is
// where MonotonicNowNs() is defined. Must produce zero findings.
#include <chrono>
#include <cstdint>

namespace robustmap {

int64_t MonotonicNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace robustmap
