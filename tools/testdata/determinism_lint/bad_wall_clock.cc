// Fixture: seeded `wall-clock` violations — wall time leaking into
// simulated measurements.
#include <chrono>
#include <ctime>

namespace robustmap {

double WallSeconds() {
  auto now = std::chrono::system_clock::now();
  auto hr = std::chrono::high_resolution_clock::now();
  long t = time(nullptr);
  return static_cast<double>(now.time_since_epoch().count() +
                             hr.time_since_epoch().count() + t);
}

}  // namespace robustmap
