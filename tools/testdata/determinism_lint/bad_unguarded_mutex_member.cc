// Seeded violation for rule `unannotated-mutex` (b): the data member
// directly below a Mutex carries no GUARDED_BY — either the annotation is
// missing or unrelated state is filed under the wrong lock.
#include "common/mutex.h"

class Tracker {
 public:
  void Bump() {
    robustmap::MutexLock lock(&mu_);
    ++done_;
  }

 private:
  robustmap::Mutex mu_;
  long done_ = 0;
};
