// Fixture: a file using every *sanctioned* counterpart of the banned
// patterns — none of these may be flagged.
#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace robustmap {

struct Status {
  bool ok() const { return true; }
};
struct MapTile;
Status WriteMapTileFile(const std::string& path, const MapTile& tile);

int64_t MonotonicNowNs();  // the sanctioned wall-clock entry point

// Wall time for scheduling metadata goes through MonotonicNowNs(), never
// a direct steady_clock read — allowed.
double ScheduleSeconds() {
  const int64_t start_ns = MonotonicNowNs();
  return static_cast<double>(MonotonicNowNs() - start_ns) * 1e-9;
}

// Unordered lookups (no iteration) are fine; so is an ordered map keyed on
// a value type, and a checked tile write.
Status Lookups(const MapTile& tile) {
  std::unordered_map<long, long> counts;
  counts[7] = 1;
  bool present = counts.find(7) != counts.end();
  std::map<std::string, int> by_name;
  by_name["scan"] = static_cast<int>(present);
  Status s = WriteMapTileFile("tile.rmt", tile);
  if (!s.ok()) return s;
  return Status{};
}

// Identifiers merely *containing* banned substrings must not match.
int operand(int strand) { return strand; }

}  // namespace robustmap
