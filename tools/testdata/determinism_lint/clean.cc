// Fixture: a file using every *sanctioned* counterpart of the banned
// patterns — none of these may be flagged.
#include <algorithm>
#include <chrono>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace robustmap {

struct Status {
  bool ok() const { return true; }
};
struct MapTile;
Status WriteMapTileFile(const std::string& path, const MapTile& tile);

// steady_clock is scheduling metadata, not a simulated value — allowed.
double ScheduleSeconds() {
  auto start = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Unordered lookups (no iteration) are fine; so is an ordered map keyed on
// a value type, and a checked tile write.
Status Lookups(const MapTile& tile) {
  std::unordered_map<long, long> counts;
  counts[7] = 1;
  bool present = counts.find(7) != counts.end();
  std::map<std::string, int> by_name;
  by_name["scan"] = static_cast<int>(present);
  Status s = WriteMapTileFile("tile.rmt", tile);
  if (!s.ok()) return s;
  return Status{};
}

// Identifiers merely *containing* banned substrings must not match.
int operand(int strand) { return strand; }

}  // namespace robustmap
