// Fixture: seeded `random-source` violations. Each line below must be
// caught — process-global or hardware randomness makes map cells
// irreproducible.
#include <cstdlib>
#include <random>

namespace robustmap {

double NoisyCost() {
  std::random_device rd;
  ::srand(42);
  return static_cast<double>(rand()) + static_cast<double>(rd());
}

}  // namespace robustmap
