// Fixture: a justified waiver suppresses exactly its rule — the sanctioned
// iterate-then-sort idiom.
#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

namespace robustmap {

std::vector<std::pair<long, long>> SortedGroups() {
  std::unordered_map<long, long> counts;
  counts[3] = 1;
  std::vector<std::pair<long, long>> out;
  // determinism-lint: allow(unordered-iteration) sorted below before any caller observes the order
  out.assign(counts.begin(), counts.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace robustmap
