// Fixture: seeded wall-clock-outside-trace violations. steady_clock in a
// non-trace file must be flagged even though the wall-clock rule permits
// monotonic time conceptually — readings have to flow through
// MonotonicNowNs() in common/trace.h.
#include <chrono>

namespace robustmap {

double TileWallSeconds() {
  auto start = std::chrono::steady_clock::now();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace robustmap
