// Fixture: a waiver with no justification is a tool error (exit 2), never
// a silent suppression.
#include <cstdlib>

namespace robustmap {

int Unjustified() {
  // determinism-lint: allow(random-source)
  return rand();
}

}  // namespace robustmap
