// Fixture: seeded `unordered-iteration` violations — emitting values in
// hash order.
#include <unordered_map>
#include <vector>

namespace robustmap {

std::vector<long> GroupsInHashOrder() {
  std::unordered_map<long, long> counts;
  counts[1] = 2;
  std::vector<long> out;
  for (const auto& [key, value] : counts) {
    out.push_back(key + value);
  }
  out.assign(counts.begin(), counts.end() != counts.begin() ? 1 : 0);
  return out;
}

}  // namespace robustmap
