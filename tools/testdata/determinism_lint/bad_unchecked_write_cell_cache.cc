// Seeded violations for the unchecked-write-map-tile rule, cell-cache
// flavor: WriteCellCache-family calls — member or free — whose Status is
// dropped. A failed flush silently costs every later run its reuse; the
// lint makes the drop loud at the call site instead.

#include "core/cell_cache.h"

namespace robustmap {

void FlushWithoutChecking(CellResultCache* cache,
                          const CellCacheData& data) {
  cache->WriteCellCacheFile();  // member call, Status dropped

  (void)cache->WriteCellCacheFile();  // (void) does not count as checking

  WriteCellCacheFile("/tmp/cells.rmc", data);  // free function, dropped
}

}  // namespace robustmap
