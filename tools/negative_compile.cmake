# Negative-compile driver for the Clang Thread Safety Analysis fixtures.
#
# Compiles one fixture with the same thread-safety flags the tree builds
# with and asserts the outcome:
#   WANT=fail  the compile must FAIL and its stderr must contain EXPECT —
#              the exact diagnostic the seeded violation plants;
#   WANT=pass  the compile must SUCCEED with empty stderr — the clean
#              fixture under -Wall -Wextra -Werror, which on GCC proves
#              the no-op macro path builds warning-free and on Clang
#              proves a fully annotated file satisfies the analysis.
#
# Required -D parameters: CXX, FIXTURE, INCLUDE_DIR, WANT; EXPECT when
# WANT=fail. FLAGS is a space-separated extra flag string.
#
# Invoked by the ctest entries registered in tests/CMakeLists.txt,
# mirroring tools/determinism_lint.py --selftest: a gate that cannot be
# shown to fire on a seeded violation is not a gate.

foreach(var CXX FIXTURE INCLUDE_DIR WANT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "negative_compile: missing -D${var}=...")
  endif()
endforeach()
if(WANT STREQUAL "fail" AND NOT DEFINED EXPECT)
  message(FATAL_ERROR
    "negative_compile: WANT=fail needs -DEXPECT=<diagnostic substring>")
endif()

separate_arguments(flag_list UNIX_COMMAND "${FLAGS}")
execute_process(
  COMMAND ${CXX} -std=c++20 -fsyntax-only -I${INCLUDE_DIR}
          ${flag_list} ${FIXTURE}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

if(WANT STREQUAL "pass")
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "negative_compile: expected a clean compile of ${FIXTURE}, "
      "got rc=${rc}:\n${err}")
  endif()
  if(NOT "${err}" STREQUAL "")
    message(FATAL_ERROR
      "negative_compile: expected a warning-free compile of ${FIXTURE}, "
      "got:\n${err}")
  endif()
  message(STATUS "clean fixture compiled warning-free")
elseif(WANT STREQUAL "fail")
  if(rc EQUAL 0)
    message(FATAL_ERROR
      "negative_compile: the seeded violation in ${FIXTURE} compiled "
      "cleanly — the thread-safety analysis did not fire")
  endif()
  string(FIND "${err}" "${EXPECT}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR
      "negative_compile: ${FIXTURE} failed to compile, but without the "
      "expected diagnostic\n  expected substring: ${EXPECT}\n"
      "  actual stderr:\n${err}")
  endif()
  message(STATUS "rejected as expected: ${EXPECT}")
else()
  message(FATAL_ERROR "negative_compile: WANT must be pass or fail")
endif()
