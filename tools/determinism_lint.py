#!/usr/bin/env python3
"""Repo-specific determinism lint for the robustmap tree.

Every map this repository produces is contractually bit-identical across
backends (serial / threaded / sharded-process) — CI diffs merged maps byte
for byte. That guarantee dies quietly the moment simulation code consults a
wall clock, a hardware RNG, hash-table iteration order, or pointer values:
the maps still *look* right, they just stop reproducing. This lint bans the
known hazard patterns from the map-producing paths under src/:

  random-source          rand()/srand()/random()/drand48()/lrand48(),
                         std::random_device — nondeterministic or
                         process-global randomness. Simulation code draws
                         from the seeded, per-use-site robustmap RNG
                         (src/common/rng.h) instead.
  wall-clock             std::chrono::system_clock /
                         high_resolution_clock, time(...), clock() — wall
                         time leaking into simulated results. The virtual
                         clock (common/clock.h) is the only clock measured
                         values may read.
  wall-clock-outside-trace
                         std::chrono::steady_clock anywhere but the
                         trace/telemetry modules (common/trace.*,
                         core/sweep_telemetry.*). Wall time is legitimate
                         observability data, but the tree funnels every
                         reading through MonotonicNowNs() in
                         common/trace.h — one sanctioned entry point keeps
                         "observability never touches map bytes"
                         auditable by grep.
  unordered-iteration    iterating an unordered container (range-for,
                         .begin()/.end(), or whole-container copy into an
                         output) — libstdc++ hash order is salt- and
                         layout-dependent, so anything built from the
                         iteration order is nondeterministic. Sort first,
                         or use an ordered container.
  pointer-keyed-order    std::map/std::set keyed on a pointer type (or
                         sorting by pointer value) — addresses change run
                         to run under ASLR, so the order is noise.
  unchecked-write-map-tile
                         a WriteMapTile / WriteMapTileFile / WriteMapRmt /
                         WriteWarmColdRmt / WriteCellCache /
                         WriteCellCacheFile call (free function or member)
                         whose Status is discarded (including `(void)`
                         casts) — a silently failed tile write turns into
                         a corrupt or stale map at merge time, and a
                         silently failed cache flush costs later runs
                         their reuse, both far from the cause.
  unannotated-mutex      (a) any raw standard locking type — std::mutex,
                         std::lock_guard, std::condition_variable, ... —
                         instead of the annotated robustmap::Mutex /
                         MutexLock / CondVar wrappers (common/mutex.h):
                         Clang Thread Safety Analysis only checks lock
                         discipline it can see, and it cannot see through
                         an unannotated type. (b) a data member declared
                         directly below a `Mutex` member without a
                         GUARDED_BY / PT_GUARDED_BY annotation: by
                         convention a mutex's protected state sits
                         immediately after it, so an unannotated sibling
                         is either missing its annotation or filed in the
                         wrong place.

Waivers: a finding is suppressed by a comment on the same line or the line
directly above:

    // determinism-lint: allow(<rule-id>) <justification>

The justification is mandatory; a bare allow() is itself an error. Waivers
are for provably-safe patterns (e.g. an unordered iteration whose result is
sorted before anything observes it), not for making red CI green.

Usage:
    determinism_lint.py [PATH...]     lint files / directories (default: src)
    determinism_lint.py --selftest    run against the seeded-violation
                                      fixtures in tools/testdata/

Exit codes: 0 = clean, 1 = violations found, 2 = tool error (bad usage,
unreadable input, malformed waiver).
"""

import os
import re
import sys

RULE_IDS = (
    "random-source",
    "wall-clock",
    "wall-clock-outside-trace",
    "unordered-iteration",
    "pointer-keyed-order",
    "unchecked-write-map-tile",
    "unannotated-mutex",
)

# The only files that may touch steady_clock: the tracer (which exports
# MonotonicNowNs(), the tree's one sanctioned wall-clock entry point) and
# the telemetry sink built on it.
WALL_CLOCK_EXEMPT_BASENAMES = frozenset((
    "trace.h",
    "trace.cc",
    "sweep_telemetry.h",
    "sweep_telemetry.cc",
))

# Sources the determinism contract covers. bench/ and tests/ may measure
# wall time and seed ad-hoc RNGs (self-timing drivers do); src/ may not.
CXX_EXTENSIONS = (".cc", ".cpp", ".h", ".hpp")

WAIVER_RE = re.compile(
    r"//\s*determinism-lint:\s*allow\(([a-z-]+)\)\s*(.*)$")

RANDOM_RE = re.compile(
    r"(?<![\w:])(?:std::|::)?(?:s?rand|random|[dl]rand48)\s*\(|"
    r"std::random_device")
WALL_CLOCK_RE = re.compile(
    r"system_clock|high_resolution_clock|(?<![\w:.])time\s*\(\s*(?:NULL|nullptr|0|&)|"
    r"std::clock\s*\(")
STEADY_CLOCK_RE = re.compile(r"\bsteady_clock\b")
POINTER_KEY_RE = re.compile(
    r"std::(?:multi)?(?:map|set)\s*<\s*(?:const\s+)?[A-Za-z_][\w:<>]*\s*\*")
UNORDERED_DECL_RE = re.compile(
    r"(?:std::)?unordered_(?:multi)?(?:map|set)\s*<[^;={]*>\s+(\w+)\s*[;={(]")
WRITE_TILE_CALL_RE = re.compile(
    r"(?:^|[\s(.>])(?:\(void\)\s*)?(?:robustmap::|bench::)?"
    r"(WriteMapTileFile|WriteMapTile|WriteMapRmt|WriteWarmColdRmt|"
    r"WriteCellCacheFile|WriteCellCache)\s*\(")
# A checked call: the Status participates in a declaration, assignment,
# return, macro, comparison, or member call on the temporary — or is passed
# straight into another function (`WarnArtifact(WriteMapRmt(...), ...)`),
# which hands the value to a handler rather than dropping it. A prefix that
# is exactly a return type (`Status WriteMapTile(...)`) is the function's
# own declaration or definition, not a call.
CHECKED_PREFIX_RE = re.compile(
    r"(=|return\b|RM_RETURN_IF_ERROR|EXPECT_|ASSERT_|if\b|\bStatus\s+\w+|"
    r"\bauto\s+\w+|[!|&?:]|<<|\w\s*\()\s*[^;]*$|\bStatus\s*$")
# Raw standard locking vocabulary: all of it must go through the annotated
# wrappers in src/common/mutex.h (which waives its own internals) so Clang
# Thread Safety Analysis sees every acquire/release in the tree.
RAW_MUTEX_RE = re.compile(
    r"\bstd::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable(?:_any)?|"
    r"lock_guard|unique_lock|scoped_lock)\b")
# A robustmap::Mutex data member; the contiguous data members after it
# must carry GUARDED_BY / PT_GUARDED_BY (rule unannotated-mutex (b)).
MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:robustmap::)?Mutex\s+\w+\s*;")
ACCESS_SPECIFIER_RE = re.compile(r"^\s*(?:public|protected|private)\s*:")
GUARD_ANNOTATION_RE = re.compile(r"\b(?:PT_)?GUARDED_BY\s*\([^)]*\)")


def is_data_member_decl(code):
    """True when a (string/comment-stripped) line looks like a single-line
    data member declaration: `Type name_ [GUARDED_BY(x)] [= init];`. The
    annotation and any initializer are stripped first, so paren-free is a
    usable proxy for "not a function declaration"."""
    stripped = GUARD_ANNOTATION_RE.sub("", code)
    stripped = re.sub(r"=[^;]*;", ";", stripped)
    if "(" in stripped or ")" in stripped:
        return False
    return re.search(r"[\w>&*]\s+\w+\s*;", stripped) is not None


class Finding:
    def __init__(self, path, line_no, rule, message):
        self.path = path
        self.line_no = line_no
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line_no}: [{self.rule}] {self.message}"


def strip_strings_and_comments(line):
    """Blanks out string/char literals and // comments so their contents
    never match a hazard pattern (the waiver comment is parsed separately,
    from the raw line)."""
    out = []
    i, n = 0, len(line)
    quote = None
    while i < n:
        c = line[i]
        if quote:
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                quote = None
            out.append(" ")
            i += 1
            continue
        if c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break  # rest is a comment
        out.append(c)
        i += 1
    return "".join(out)


def find_waiver(raw_lines, idx):
    """Returns (rule, justification, error) for a waiver covering line idx
    (same line or the line above)."""
    for probe in (idx, idx - 1):
        if probe < 0:
            continue
        m = WAIVER_RE.search(raw_lines[probe])
        if m:
            rule, justification = m.group(1), m.group(2).strip()
            if rule not in RULE_IDS:
                return None, None, (
                    f"waiver names unknown rule '{rule}' "
                    f"(want one of {', '.join(RULE_IDS)})")
            if not justification:
                return None, None, (
                    f"waiver for '{rule}' has no justification — say why "
                    "the pattern is safe")
            return rule, justification, None
    return None, None, None


def lint_file(path, rel_path=None):
    """Lints one file. Returns (findings, tool_errors)."""
    shown = rel_path or path
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            raw_lines = f.read().splitlines()
    except OSError as e:
        return [], [f"{shown}: cannot read: {e}"]

    findings = []
    tool_errors = []
    unordered_names = set()
    # Pass 1: collect identifiers declared with an unordered container type.
    # A .cc file also inherits the declarations of its sibling header, so a
    # member declared in foo.h and iterated in foo.cc is still caught.
    decl_sources = [raw_lines]
    root, ext = os.path.splitext(path)
    if ext in (".cc", ".cpp"):
        for header_ext in (".h", ".hpp"):
            try:
                with open(root + header_ext, encoding="utf-8",
                          errors="replace") as hf:
                    decl_sources.append(hf.read().splitlines())
            except OSError:
                pass
    for source in decl_sources:
        for raw in source:
            code = strip_strings_and_comments(raw)
            for m in UNORDERED_DECL_RE.finditer(code):
                unordered_names.add(m.group(1))

    unordered_iter_res = []
    for name in unordered_names:
        # Range-for over the container, or a `.begin()` that starts a manual
        # iteration / whole-container copy. A bare `.end()` is deliberately
        # not matched: `find(x) != c.end()` is the lookup idiom, and every
        # real traversal also names `.begin()`.
        unordered_iter_res.append(re.compile(
            rf"for\s*\([^;)]*:\s*{re.escape(name)}\s*\)|"
            rf"\b{re.escape(name)}\s*\.\s*c?begin\s*\("))

    def report(idx, rule, message):
        waived_rule, _justification, waiver_err = find_waiver(raw_lines, idx)
        if waiver_err:
            tool_errors.append(f"{shown}:{idx + 1}: {waiver_err}")
            return
        if waived_rule == rule:
            return
        findings.append(Finding(shown, idx + 1, rule, message))

    for idx, raw in enumerate(raw_lines):
        code = strip_strings_and_comments(raw)
        if RANDOM_RE.search(code):
            report(idx, "random-source",
                   "nondeterministic randomness in simulation code; use the "
                   "seeded RNG in src/common/rng.h")
        if WALL_CLOCK_RE.search(code):
            report(idx, "wall-clock",
                   "wall-clock time in simulation code; measured values may "
                   "only read the virtual clock (common/clock.h)")
        if (os.path.basename(path) not in WALL_CLOCK_EXEMPT_BASENAMES
                and STEADY_CLOCK_RE.search(code)):
            report(idx, "wall-clock-outside-trace",
                   "steady_clock outside the trace/telemetry modules; call "
                   "MonotonicNowNs() (common/trace.h), the one sanctioned "
                   "wall-clock entry point")
        for rx in unordered_iter_res:
            if rx.search(code):
                report(idx, "unordered-iteration",
                       "iteration over an unordered container; hash order "
                       "is not deterministic — sort first or use an "
                       "ordered container")
                break
        if POINTER_KEY_RE.search(code):
            report(idx, "pointer-keyed-order",
                   "ordered container keyed on a pointer; addresses vary "
                   "run to run under ASLR — key on a stable id instead")
        m = WRITE_TILE_CALL_RE.search(code)
        if m:
            prefix = code[:m.start(1)]
            if "(void)" in prefix or not CHECKED_PREFIX_RE.search(prefix):
                report(idx, "unchecked-write-map-tile",
                       f"{m.group(1)} result discarded; a failed tile "
                       "write must propagate, not surface as a corrupt "
                       "merge later")
        if RAW_MUTEX_RE.search(code):
            report(idx, "unannotated-mutex",
                   "raw standard locking type; use the annotated "
                   "robustmap::Mutex / MutexLock / CondVar wrappers "
                   "(common/mutex.h) so Clang Thread Safety Analysis "
                   "sees the lock discipline")

    # Rule unannotated-mutex (b): the contiguous data members directly
    # below a `Mutex` member must each carry GUARDED_BY / PT_GUARDED_BY.
    # The scan skips comment lines and stops at the first blank line,
    # access specifier, or non-member-looking line, so state filed away
    # from its mutex is simply out of scope (and out of the convention).
    flagged_siblings = set()
    for idx, raw in enumerate(raw_lines):
        if not MUTEX_MEMBER_RE.search(strip_strings_and_comments(raw)):
            continue
        for j in range(idx + 1, len(raw_lines)):
            sibling = strip_strings_and_comments(raw_lines[j])
            if sibling.strip() and all(
                    not c.isalnum() for c in sibling.strip()):
                break  # closing brace or similar punctuation-only line
            if not sibling.strip():
                # A comment-only or blank source line: comments continue
                # the member block, true blank lines end it.
                if raw_lines[j].strip():
                    continue
                break
            if ACCESS_SPECIFIER_RE.search(sibling):
                break
            if not is_data_member_decl(sibling):
                break
            if GUARD_ANNOTATION_RE.search(sibling):
                continue
            if MUTEX_MEMBER_RE.search(sibling):
                continue
            if j not in flagged_siblings:
                flagged_siblings.add(j)
                report(j, "unannotated-mutex",
                       "data member adjacent to a Mutex lacks GUARDED_BY "
                       "/ PT_GUARDED_BY; annotate it (or move state that "
                       "the mutex does not protect away from it)")
    return findings, tool_errors


def collect_files(paths):
    files, errors = [], []
    for p in paths:
        if os.path.isfile(p):
            files.append(p)
        elif os.path.isdir(p):
            for root, _dirs, names in os.walk(p):
                for name in sorted(names):
                    if name.endswith(CXX_EXTENSIONS):
                        files.append(os.path.join(root, name))
        else:
            errors.append(f"{p}: no such file or directory")
    return sorted(files), errors


def run_lint(paths):
    files, errors = collect_files(paths)
    all_findings = []
    for f in files:
        findings, tool_errors = lint_file(f)
        all_findings.extend(findings)
        errors.extend(tool_errors)
    for e in errors:
        print(f"determinism_lint: error: {e}", file=sys.stderr)
    for finding in all_findings:
        print(finding)
    if errors:
        return 2
    if all_findings:
        print(f"determinism_lint: {len(all_findings)} violation(s)",
              file=sys.stderr)
        return 1
    return 0


def selftest():
    """Checks the lint against the seeded-violation fixtures: every bad_*
    fixture must produce exactly its named rule, clean fixtures must pass,
    and the malformed-waiver fixture must be a tool error (exit 2), keeping
    the three exit codes observably distinct."""
    here = os.path.dirname(os.path.abspath(__file__))
    fixtures = os.path.join(here, "testdata", "determinism_lint")
    if not os.path.isdir(fixtures):
        print(f"selftest: fixture directory missing: {fixtures}",
              file=sys.stderr)
        return 2

    failures = []

    def expect(cond, what):
        if not cond:
            failures.append(what)

    cases = {
        "bad_random_source.cc": "random-source",
        "bad_wall_clock.cc": "wall-clock",
        "bad_steady_clock.cc": "wall-clock-outside-trace",
        "bad_unordered_iteration.cc": "unordered-iteration",
        "bad_pointer_keyed_order.cc": "pointer-keyed-order",
        "bad_unchecked_write_map_tile.cc": "unchecked-write-map-tile",
        "bad_unchecked_write_cell_cache.cc": "unchecked-write-map-tile",
        "bad_raw_mutex.cc": "unannotated-mutex",
        "bad_unguarded_mutex_member.cc": "unannotated-mutex",
    }
    for name, rule in cases.items():
        path = os.path.join(fixtures, name)
        findings, tool_errors = lint_file(path)
        expect(not tool_errors, f"{name}: unexpected tool errors "
                                f"{tool_errors}")
        expect(findings, f"{name}: seeded '{rule}' violation not caught")
        expect(all(f.rule == rule for f in findings),
               f"{name}: expected only '{rule}', got "
               f"{[f.rule for f in findings]}")

    # trace.cc sits in the exempt-basename set: the fixture proves the
    # exemption works (steady_clock inside the tracer itself is legal).
    for name in ("clean.cc", "clean_waiver.cc", "trace.cc"):
        path = os.path.join(fixtures, name)
        findings, tool_errors = lint_file(path)
        expect(not tool_errors, f"{name}: unexpected tool errors "
                                f"{tool_errors}")
        expect(not findings,
               f"{name}: false positives {[str(f) for f in findings]}")

    bad_waiver = os.path.join(fixtures, "bad_waiver.cc")
    findings, tool_errors = lint_file(bad_waiver)
    expect(tool_errors, "bad_waiver.cc: malformed waiver not reported as a "
                        "tool error")

    # The three exit codes, end to end.
    expect(run_lint([os.path.join(fixtures, "clean.cc")]) == 0,
           "exit code for a clean file is not 0")
    expect(run_lint([os.path.join(fixtures, "bad_random_source.cc")]) == 1,
           "exit code for a violation is not 1")
    expect(run_lint([os.path.join(fixtures, "no_such_file.cc")]) == 2,
           "exit code for a tool error is not 2")

    if failures:
        for f in failures:
            print(f"selftest FAIL: {f}", file=sys.stderr)
        return 1
    print(f"determinism_lint selftest: {len(cases)} rules caught, clean and "
          "waived fixtures pass, exit codes 0/1/2 distinct")
    return 0


def main(argv):
    args = argv[1:]
    if "--help" in args or "-h" in args:
        print(__doc__)
        return 0
    if "--selftest" in args:
        if len(args) != 1:
            print("determinism_lint: --selftest takes no other arguments",
                  file=sys.stderr)
            return 2
        return selftest()
    if not args:
        repo_root = os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))
        args = [os.path.join(repo_root, "src")]
    return run_lint(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
