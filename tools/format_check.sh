#!/usr/bin/env bash
# Check-only clang-format gate, strict over the whole tree.
#
# The pre-.clang-format backlog has been reformatted (in dedicated commits,
# separate from logic changes), so the grandfather clause is gone: ANY
# formatting diff on a tracked C++ file fails, tree-wide.
#
# Usage: tools/format_check.sh [FILE...]
#   With no arguments, checks every tracked C++ file. CI passes the changed
#   files of a pull request, the full tree on main.
#
# Exit codes: 0 clean, 1 formatting violations, 2 tool error (no
# clang-format, unreadable file).

set -u
FMT="${CLANG_FORMAT:-clang-format}"

if ! command -v "$FMT" > /dev/null 2>&1; then
  echo "format_check: '$FMT' not found (set CLANG_FORMAT to override)" >&2
  exit 2
fi

cd "$(dirname "$0")/.." || exit 2

if [ "$#" -gt 0 ]; then
  files=("$@")
else
  # Lint fixtures are excluded: they exist to seed violations, not to be
  # exemplary code.
  mapfile -t files < <(git ls-files '*.cc' '*.cpp' '*.h' '*.hpp' \
                       | grep -v '^tools/testdata/')
fi

fail=0
for f in "${files[@]}"; do
  case "$f" in
    tools/testdata/*) continue ;;
    *.cc | *.cpp | *.h | *.hpp) ;;
    *) continue ;;
  esac
  [ -f "$f" ] || continue
  if ! formatted=$("$FMT" --style=file "$f" 2> /dev/null); then
    echo "format_check: $FMT failed on $f" >&2
    exit 2
  fi
  # Changed lines on either side of the diff.
  n=$(printf '%s\n' "$formatted" | diff "$f" - | grep -c '^[<>]')
  if [ "$n" -gt 0 ]; then
    echo "format_check: $f differs by $n line(s) — run: $FMT -i $f" >&2
    fail=1
  fi
done

exit "$fail"
