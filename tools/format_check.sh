#!/usr/bin/env bash
# Check-only clang-format gate with a grandfather clause.
#
# The tree predates .clang-format, so a strict tree-wide gate would force a
# mass reformat that buries real history. Instead:
#   * a file that is clean, or within EPSILON changed lines of clean, must
#     BE clean — small drift is fixable in place and failing it keeps new
#     code formatted;
#   * a file whose diff exceeds EPSILON lines is *deferred*: listed (so the
#     backlog is visible as the follow-up note) but not failing. Reformat
#     deferred files in dedicated commits, never alongside logic changes.
#
# Usage: tools/format_check.sh [FILE...]
#   With no arguments, checks every tracked C++ file. CI passes the changed
#   files of a pull request, the full tree on main.
#
# Exit codes: 0 clean (deferred files allowed), 1 fixable formatting
# violations, 2 tool error (no clang-format, unreadable file).

set -u
EPSILON=10
FMT="${CLANG_FORMAT:-clang-format}"

if ! command -v "$FMT" > /dev/null 2>&1; then
  echo "format_check: '$FMT' not found (set CLANG_FORMAT to override)" >&2
  exit 2
fi

cd "$(dirname "$0")/.." || exit 2

if [ "$#" -gt 0 ]; then
  files=("$@")
else
  # Lint fixtures are excluded: they exist to seed violations, not to be
  # exemplary code.
  mapfile -t files < <(git ls-files '*.cc' '*.cpp' '*.h' '*.hpp' \
                       | grep -v '^tools/testdata/')
fi

fail=0
deferred=()
for f in "${files[@]}"; do
  case "$f" in
    tools/testdata/*) continue ;;
    *.cc | *.cpp | *.h | *.hpp) ;;
    *) continue ;;
  esac
  [ -f "$f" ] || continue
  if ! formatted=$("$FMT" --style=file "$f" 2> /dev/null); then
    echo "format_check: $FMT failed on $f" >&2
    exit 2
  fi
  # Changed lines on either side of the diff.
  n=$(printf '%s\n' "$formatted" | diff "$f" - | grep -c '^[<>]')
  if [ "$n" -eq 0 ]; then
    continue
  elif [ "$n" -le "$EPSILON" ]; then
    echo "format_check: $f differs by $n line(s) — run: $FMT -i $f" >&2
    fail=1
  else
    deferred+=("$f ($n lines)")
  fi
done

if [ "${#deferred[@]}" -gt 0 ]; then
  echo "format_check: deferred (pre-.clang-format files; reformat in a" >&2
  echo "dedicated commit, not alongside logic changes):" >&2
  printf '  %s\n' "${deferred[@]}" >&2
fi

exit "$fail"
