#ifndef ROBUSTMAP_INDEX_MDAM_H_
#define ROBUSTMAP_INDEX_MDAM_H_

#include <cstdint>
#include <memory>

#include "index/index.h"

namespace robustmap {

/// Options for a multi-dimensional access method (MDAM) scan over a
/// two-column index [LJBY95]. Both key ranges are inclusive.
struct MdamOptions {
  int64_t k0_lo = 0;
  int64_t k0_hi = 0;
  int64_t k1_lo = 0;
  int64_t k1_hi = 0;

  /// Domain sizes of the key columns ([0, domain)); used by the cost-based
  /// mode choice. 0 = unknown (forces skip-scan).
  int64_t k0_domain = 0;
  int64_t k1_domain = 0;

  enum class Mode {
    kAuto,      ///< cost-based choice between the two strategies below
    kSkipScan,  ///< per-distinct-k0 probe to (k0, k1_lo), scan to k1_hi
    kRangeScan, ///< single scan of the k0 range, filtering k1
  };
  Mode mode = Mode::kAuto;
};

/// MDAM cursor: enumerates exactly the entries with key0 in [k0_lo, k0_hi]
/// and key1 in [k1_lo, k1_hi], in index order.
///
/// This is the "multi-dimensional B-tree access" the paper credits for
/// System C's robustness (Figure 9): with a small k1 range it skips between
/// per-k0 runs using B-tree probes; with a wide k1 range it degrades to a
/// plain range scan instead of probing once per distinct k0 value.
class MdamCursor : public IndexCursor {
 public:
  /// `index` must be a two-column index and must outlive the cursor.
  static std::unique_ptr<MdamCursor> Create(RunContext* ctx, Index* index,
                                            const MdamOptions& opts);

  bool Valid() const override;
  void Next(RunContext* ctx) override;
  const IndexEntry& entry() const override;

  MdamOptions::Mode chosen_mode() const { return mode_; }
  uint64_t seeks_performed() const { return seeks_; }
  uint64_t entries_examined() const { return examined_; }

 private:
  MdamCursor(RunContext* ctx, Index* index, const MdamOptions& opts);

  /// Decides skip-scan vs. range-scan from estimated costs.
  static MdamOptions::Mode ChooseMode(RunContext* ctx, const Index& index,
                                      const MdamOptions& opts);

  /// Advances `inner_` until it rests on a qualifying entry or runs out.
  void Normalize(RunContext* ctx);

  Index* index_;
  MdamOptions opts_;
  MdamOptions::Mode mode_;
  std::unique_ptr<IndexCursor> inner_;
  bool done_ = false;
  uint64_t seeks_ = 0;
  uint64_t examined_ = 0;
};

}  // namespace robustmap

#endif  // ROBUSTMAP_INDEX_MDAM_H_
