#ifndef ROBUSTMAP_INDEX_PROCEDURAL_INDEX_H_
#define ROBUSTMAP_INDEX_PROCEDURAL_INDEX_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "index/index.h"
#include "storage/procedural_table.h"

namespace robustmap {

/// Options for a procedural index.
struct ProceduralIndexOptions {
  /// 1 or 2 base-table column ordinals, in key order.
  std::vector<uint32_t> key_columns;
  uint32_t entries_per_leaf = 512;  ///< 16 B entries on 8 KiB pages
  uint32_t internal_fanout = 256;
};

/// Non-clustered index over a `ProceduralTable`, synthesized on demand.
///
/// Entries are addressed by ordinal k in key order:
///   * single column c:   key0 = k >> value_shift, rid = perm_c^{-1}(k)
///     (sorting by the raw permuted value sorts by key with a deterministic
///     tie order, so the k-th entry is computable in O(1));
///   * composite (c0,c1): ordinal k lies in group g = k / rows_per_value;
///     the group's rows are perm_c0^{-1}(g*rpv .. (g+1)*rpv) sorted by
///     (key1, rid); groups are materialized lazily and cached.
///
/// Leaf-page I/O is charged exactly like a real B-tree with the same
/// fan-out: ordinal / entries_per_leaf maps to a physical leaf page.
class ProceduralIndex : public Index {
 public:
  static Result<std::unique_ptr<ProceduralIndex>> Create(
      SimDevice* device, const ProceduralTable* table,
      const ProceduralIndexOptions& opts);

  // Index interface.
  uint32_t num_key_columns() const override {
    return static_cast<uint32_t>(opts_.key_columns.size());
  }
  const std::vector<uint32_t>& key_columns() const override {
    return opts_.key_columns;
  }
  uint64_t num_entries() const override { return table_->num_rows(); }
  uint32_t entries_per_leaf() const override { return opts_.entries_per_leaf; }
  int height() const override { return height_; }
  uint64_t num_leaf_pages() const override { return num_leaf_pages_; }
  std::unique_ptr<IndexCursor> Seek(RunContext* ctx, int64_t k0,
                                    int64_t k1) override;

  /// Entry at ordinal `k` (no simulated cost; cursors charge leaf I/O).
  IndexEntry EntryAt(uint64_t k) const;

  /// Ordinal of the first entry with (key0, key1) >= (k0, k1).
  uint64_t OrdinalLowerBound(int64_t k0, int64_t k1) const;

  /// Global device page of the leaf holding ordinal `k`.
  uint64_t LeafPageOf(uint64_t k) const {
    return base_page_ + k / opts_.entries_per_leaf;
  }

  const ProceduralTable* table() const { return table_; }

 private:
  class Cursor;

  ProceduralIndex(SimDevice* device, const ProceduralTable* table,
                  const ProceduralIndexOptions& opts, uint64_t base_page);

  /// Materializes (and caches) composite group `g` sorted by (key1, rid).
  const std::vector<IndexEntry>& Group(uint64_t g) const;

  SimDevice* device_;
  const ProceduralTable* table_;
  ProceduralIndexOptions opts_;
  uint64_t base_page_;
  uint64_t num_leaf_pages_;
  int height_;

  /// Key for this instance's per-thread group cache (see Group): parallel
  /// sweep workers share the index object, so an instance-level mutable
  /// cache would race. Ids are never reused, so a destroyed index's cached
  /// slot can only go stale, never be misread.
  uint64_t cache_id_;
};

}  // namespace robustmap

#endif  // ROBUSTMAP_INDEX_PROCEDURAL_INDEX_H_
