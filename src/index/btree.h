#ifndef ROBUSTMAP_INDEX_BTREE_H_
#define ROBUSTMAP_INDEX_BTREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "index/index.h"
#include "io/run_context.h"

namespace robustmap {

/// B-tree tuning knobs. Small capacities force multi-level trees in tests.
struct BTreeOptions {
  uint32_t leaf_capacity = 512;      ///< entries per leaf page (16 B entries)
  uint32_t internal_fanout = 256;    ///< children per internal node
  std::vector<uint32_t> key_columns; ///< base-table column ordinals
};

/// A real B-tree: bulk load from sorted entries, point inserts with node
/// splits, ordered range scans. Leaf pages live on the simulated device
/// (bulk-loaded leaves are physically contiguous; split leaves are appended
/// at the end of the extent, degrading scan locality exactly as in a real
/// system). Internal nodes are modeled as resident (CPU charge per level).
class BTree : public Index {
 public:
  /// Builds from entries that must already be sorted by `EntryLess`.
  /// `extra_capacity_pages` reserves device pages for future splits.
  static Result<std::unique_ptr<BTree>> BulkLoad(
      SimDevice* device, std::vector<IndexEntry> entries,
      const BTreeOptions& opts, uint64_t extra_capacity_pages = 64);

  /// Inserts one entry (duplicates of (key0,key1) allowed; exact duplicate
  /// (key0,key1,rid) rejected). Charges a probe plus a leaf write; splits
  /// charge an extra page write.
  Status Insert(RunContext* ctx, const IndexEntry& entry);

  // Index interface.
  uint32_t num_key_columns() const override {
    return static_cast<uint32_t>(opts_.key_columns.size());
  }
  const std::vector<uint32_t>& key_columns() const override {
    return opts_.key_columns;
  }
  uint64_t num_entries() const override { return num_entries_; }
  uint32_t entries_per_leaf() const override { return opts_.leaf_capacity; }
  int height() const override { return height_; }
  uint64_t num_leaf_pages() const override { return leaves_.size(); }
  std::unique_ptr<IndexCursor> Seek(RunContext* ctx, int64_t k0,
                                    int64_t k1) override;

  /// Structural invariant check, used by property tests: keys sorted within
  /// and across leaves, separator keys consistent, sibling links intact.
  Status CheckInvariants() const;

 private:
  struct Leaf {
    std::vector<IndexEntry> entries;
    uint64_t page = 0;     ///< global device page id
    int32_t next = -1;     ///< index into leaves_, -1 at end
  };

  class Cursor;

  BTree(SimDevice* device, BTreeOptions opts, uint64_t base_page,
        uint64_t capacity_pages);

  /// Index into leaves_ of the leaf that may contain the first entry
  /// >= probe (full (key0, key1, rid) comparison); charges the probe cost.
  int32_t FindLeaf(RunContext* ctx, const IndexEntry& probe) const;

  void RebuildSeparators();

  SimDevice* device_;
  BTreeOptions opts_;
  uint64_t base_page_;
  uint64_t capacity_pages_;
  uint64_t next_free_page_;
  uint64_t num_entries_ = 0;
  int height_ = 1;

  std::vector<Leaf> leaves_;          ///< storage order (not key order)
  int32_t first_leaf_ = -1;           ///< head of the key-ordered chain
  /// Key-ordered directory over leaves: lowest entry of each leaf. Models
  /// the internal levels (kept flat; height_ reports the equivalent B-tree
  /// depth for cost purposes).
  std::vector<IndexEntry> separators_;
  std::vector<int32_t> separator_leaf_;
};

}  // namespace robustmap

#endif  // ROBUSTMAP_INDEX_BTREE_H_
