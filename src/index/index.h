#ifndef ROBUSTMAP_INDEX_INDEX_H_
#define ROBUSTMAP_INDEX_INDEX_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "io/run_context.h"
#include "storage/row.h"

// The defaulted friend operator== on IndexEntry below is a C++20 feature;
// under -std=c++17 it fails with a confusing cascade of template errors
// far from the cause. Fail fast with a readable message instead. (MSVC
// keeps __cplusplus at 199711L unless /Zc:__cplusplus is passed, so check
// its _MSVC_LANG too.)
#if defined(_MSVC_LANG)
static_assert(_MSVC_LANG >= 202002L,
              "robustmap requires C++20: build with /std:c++20 (IndexEntry "
              "uses a defaulted friend operator==)");
#else
static_assert(__cplusplus >= 202002L,
              "robustmap requires C++20: build with -std=c++20 (IndexEntry "
              "uses a defaulted friend operator==)");
#endif

namespace robustmap {

/// One index entry: up to two key columns plus the row id.
/// Entries are ordered lexicographically by (key0, key1, rid).
struct IndexEntry {
  int64_t key0 = 0;
  int64_t key1 = 0;  ///< 0 / ignored for single-column indexes
  Rid rid = kInvalidRid;

  friend bool operator==(const IndexEntry&, const IndexEntry&) = default;
};

/// Lexicographic comparison on (key0, key1, rid).
inline bool EntryLess(const IndexEntry& a, const IndexEntry& b) {
  if (a.key0 != b.key0) return a.key0 < b.key0;
  if (a.key1 != b.key1) return a.key1 < b.key1;
  return a.rid < b.rid;
}

/// Forward cursor over index entries in key order.
///
/// Cursors charge leaf-page I/O (through the buffer pool) as they cross leaf
/// boundaries; per-entry CPU is charged by the consuming operator so that it
/// is accounted once regardless of cursor composition.
class IndexCursor {
 public:
  virtual ~IndexCursor() = default;
  virtual bool Valid() const = 0;
  virtual void Next(RunContext* ctx) = 0;
  virtual const IndexEntry& entry() const = 0;
};

/// Abstract ordered secondary index (non-clustered B-tree).
///
/// Implementations: `BTree` (real nodes, supports inserts; used by tests and
/// examples) and `ProceduralIndex` (synthesized leaves over a
/// `ProceduralTable`; used at paper scale). Both charge identical leaf and
/// probe I/O.
class Index {
 public:
  virtual ~Index() = default;

  virtual uint32_t num_key_columns() const = 0;
  /// Ordinals of the base-table columns forming the key, in key order.
  virtual const std::vector<uint32_t>& key_columns() const = 0;
  virtual uint64_t num_entries() const = 0;
  virtual uint32_t entries_per_leaf() const = 0;
  /// Number of levels including the leaf level.
  virtual int height() const = 0;
  /// Number of leaf pages.
  virtual uint64_t num_leaf_pages() const = 0;

  /// Positions a cursor at the first entry with (key0, key1) >= (k0, k1)
  /// lexicographically; k1 is ignored by single-column indexes. Charges a
  /// root-to-leaf probe (internal levels are modeled as cached: CPU only;
  /// the leaf read goes through the buffer pool).
  virtual std::unique_ptr<IndexCursor> Seek(RunContext* ctx, int64_t k0,
                                            int64_t k1) = 0;

  /// Cursor over the whole index from the smallest entry.
  std::unique_ptr<IndexCursor> SeekFirst(RunContext* ctx) {
    return Seek(ctx, INT64_MIN, INT64_MIN);
  }
};

}  // namespace robustmap

#endif  // ROBUSTMAP_INDEX_INDEX_H_
