#include "index/procedural_index.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <deque>

namespace robustmap {

namespace {

// Composite-group materializations are cached per (thread, index) so that
// concurrent sweep workers sharing one index never contend or race. Slots
// are found by linear scan: a thread touches few distinct indexes at a
// time, and the unique id guards against a destroyed index's slot being
// picked up by a new instance at the same address. A deque keeps slot
// addresses stable while new slots are added (Group() hands out references
// into a slot), and the slot count is bounded: once full, the oldest slot
// is recycled round-robin — an eviction only costs re-materializing one
// group, never correctness (and no simulated cost either way).
struct GroupCacheSlot {
  uint64_t index_id = 0;
  uint64_t group = ~uint64_t{0};
  std::vector<IndexEntry> entries;
};

constexpr size_t kMaxGroupCacheSlots = 16;

std::atomic<uint64_t> g_next_index_id{1};
thread_local std::deque<GroupCacheSlot> t_group_cache;
thread_local size_t t_group_cache_evict = 0;

GroupCacheSlot& GroupCacheFor(uint64_t index_id) {
  for (GroupCacheSlot& slot : t_group_cache) {
    if (slot.index_id == index_id) return slot;
  }
  if (t_group_cache.size() < kMaxGroupCacheSlots) {
    t_group_cache.emplace_back();
    t_group_cache.back().index_id = index_id;
    return t_group_cache.back();
  }
  GroupCacheSlot& slot = t_group_cache[t_group_cache_evict];
  t_group_cache_evict = (t_group_cache_evict + 1) % kMaxGroupCacheSlots;
  slot.index_id = index_id;
  slot.group = ~uint64_t{0};
  return slot;
}

}  // namespace

class ProceduralIndex::Cursor : public IndexCursor {
 public:
  Cursor(const ProceduralIndex* index, uint64_t ordinal)
      : index_(index), ordinal_(ordinal) {
    if (Valid()) entry_ = index_->EntryAt(ordinal_);
  }

  bool Valid() const override { return ordinal_ < index_->num_entries(); }

  void Next(RunContext* ctx) override {
    assert(Valid());
    ++ordinal_;
    if (!Valid()) return;
    if (ordinal_ % index_->entries_per_leaf() == 0) {
      ctx->ReadPage(index_->LeafPageOf(ordinal_), /*cacheable=*/true);
    }
    entry_ = index_->EntryAt(ordinal_);
  }

  const IndexEntry& entry() const override { return entry_; }

 private:
  const ProceduralIndex* index_;
  uint64_t ordinal_;
  IndexEntry entry_;
};

Result<std::unique_ptr<ProceduralIndex>> ProceduralIndex::Create(
    SimDevice* device, const ProceduralTable* table,
    const ProceduralIndexOptions& opts) {
  if (opts.key_columns.empty() || opts.key_columns.size() > 2) {
    return Status::InvalidArgument("index supports 1 or 2 key columns");
  }
  for (uint32_t c : opts.key_columns) {
    if (c >= table->num_columns()) {
      return Status::InvalidArgument("key column beyond table schema");
    }
  }
  if (opts.entries_per_leaf < 2) {
    return Status::InvalidArgument("entries_per_leaf too small");
  }
  uint64_t leaves =
      (table->num_rows() + opts.entries_per_leaf - 1) / opts.entries_per_leaf;
  uint64_t base = device->AllocateExtent(leaves);
  return std::unique_ptr<ProceduralIndex>(
      new ProceduralIndex(device, table, opts, base));
}

ProceduralIndex::ProceduralIndex(SimDevice* device,
                                 const ProceduralTable* table,
                                 const ProceduralIndexOptions& opts,
                                 uint64_t base_page)
    : device_(device),
      table_(table),
      opts_(opts),
      base_page_(base_page),
      cache_id_(g_next_index_id.fetch_add(1, std::memory_order_relaxed)) {
  (void)device_;
  num_leaf_pages_ =
      (table->num_rows() + opts_.entries_per_leaf - 1) / opts_.entries_per_leaf;
  double n = static_cast<double>(std::max<uint64_t>(1, num_leaf_pages_));
  height_ =
      1 + std::max(1, static_cast<int>(std::ceil(
                          std::log(n) / std::log(opts_.internal_fanout))));
}

const std::vector<IndexEntry>& ProceduralIndex::Group(uint64_t g) const {
  GroupCacheSlot& cache = GroupCacheFor(cache_id_);
  if (cache.group == g) return cache.entries;
  const auto& perm0 = table_->column_permutation(opts_.key_columns[0]);
  uint64_t rpv = table_->rows_per_value();
  cache.entries.clear();
  cache.entries.reserve(rpv);
  for (uint64_t j = 0; j < rpv; ++j) {
    Rid rid = perm0.Inverse(g * rpv + j);
    IndexEntry e;
    e.key0 = static_cast<int64_t>(g);
    e.key1 = table_->ValueAt(rid, opts_.key_columns[1]);
    e.rid = rid;
    cache.entries.push_back(e);
  }
  std::sort(cache.entries.begin(), cache.entries.end(),
            [](const IndexEntry& a, const IndexEntry& b) {
              if (a.key1 != b.key1) return a.key1 < b.key1;
              return a.rid < b.rid;
            });
  cache.group = g;
  return cache.entries;
}

IndexEntry ProceduralIndex::EntryAt(uint64_t k) const {
  assert(k < num_entries());
  if (opts_.key_columns.size() == 1) {
    const auto& perm = table_->column_permutation(opts_.key_columns[0]);
    IndexEntry e;
    e.key0 = static_cast<int64_t>(k >> table_->value_shift());
    e.key1 = 0;
    e.rid = perm.Inverse(k);
    return e;
  }
  uint64_t rpv = table_->rows_per_value();
  return Group(k / rpv)[k % rpv];
}

uint64_t ProceduralIndex::OrdinalLowerBound(int64_t k0, int64_t k1) const {
  int64_t domain = table_->value_domain();
  uint64_t n = num_entries();
  if (k0 < 0) return 0;
  if (k0 >= domain) return n;
  uint64_t rpv = table_->rows_per_value();
  if (opts_.key_columns.size() == 1) {
    // k1 is ignored; the first entry with key0 >= k0 starts value k0's run.
    return static_cast<uint64_t>(k0) * rpv;
  }
  if (k1 <= 0) return static_cast<uint64_t>(k0) * rpv;
  if (k1 >= domain) return (static_cast<uint64_t>(k0) + 1) * rpv;
  const auto& group = Group(static_cast<uint64_t>(k0));
  auto it = std::lower_bound(group.begin(), group.end(), k1,
                             [](const IndexEntry& e, int64_t key) {
                               return e.key1 < key;
                             });
  return static_cast<uint64_t>(k0) * rpv +
         static_cast<uint64_t>(it - group.begin());
}

std::unique_ptr<IndexCursor> ProceduralIndex::Seek(RunContext* ctx, int64_t k0,
                                                   int64_t k1) {
  // Internal levels modeled as cached: CPU per level; then one leaf read.
  ctx->ChargeCpuOps(static_cast<uint64_t>(height_) * 8,
                    ctx->cpu.compare_seconds);
  uint64_t ordinal = OrdinalLowerBound(k0, k1);
  if (ordinal < num_entries()) {
    ctx->ReadPage(LeafPageOf(ordinal), /*cacheable=*/true);
  }
  return std::make_unique<Cursor>(this, ordinal);
}

}  // namespace robustmap
