#include "index/mdam.h"

#include <cassert>

namespace robustmap {

std::unique_ptr<MdamCursor> MdamCursor::Create(RunContext* ctx, Index* index,
                                               const MdamOptions& opts) {
  assert(index->num_key_columns() == 2);
  return std::unique_ptr<MdamCursor>(new MdamCursor(ctx, index, opts));
}

MdamOptions::Mode MdamCursor::ChooseMode(RunContext* ctx, const Index& index,
                                         const MdamOptions& opts) {
  if (opts.mode != MdamOptions::Mode::kAuto) return opts.mode;
  if (opts.k0_domain <= 0 || opts.k1_domain <= 0) {
    return MdamOptions::Mode::kSkipScan;
  }
  // If the k1 range is (nearly) the whole domain, probing per k0 value buys
  // nothing: every entry in the k0 range qualifies.
  if (opts.k1_lo <= 0 && opts.k1_hi >= opts.k1_domain - 1) {
    return MdamOptions::Mode::kRangeScan;
  }
  double width0 = static_cast<double>(opts.k0_hi - opts.k0_lo + 1);
  double frac0 = width0 / static_cast<double>(opts.k0_domain);
  double entries_in_range =
      frac0 * static_cast<double>(index.num_entries());
  const DiskParameters& disk = ctx->device->model().params();
  double transfer = disk.TransferSeconds();
  // Skip-scan: one probe per distinct k0 (random leaf read + transfer).
  double cost_skip = width0 * (disk.random_access_seconds + transfer);
  // Range scan: every leaf in the k0 range sequentially, plus per-entry CPU
  // to reject non-matching k1 values.
  double cost_scan =
      entries_in_range / index.entries_per_leaf() * transfer +
      entries_in_range * ctx->cpu.index_entry_seconds;
  return cost_skip < cost_scan ? MdamOptions::Mode::kSkipScan
                               : MdamOptions::Mode::kRangeScan;
}

MdamCursor::MdamCursor(RunContext* ctx, Index* index, const MdamOptions& opts)
    : index_(index), opts_(opts), mode_(ChooseMode(ctx, *index, opts)) {
  inner_ = index_->Seek(ctx, opts_.k0_lo, opts_.k1_lo);
  ++seeks_;
  Normalize(ctx);
}

bool MdamCursor::Valid() const { return !done_ && inner_->Valid(); }

const IndexEntry& MdamCursor::entry() const { return inner_->entry(); }

void MdamCursor::Next(RunContext* ctx) {
  assert(Valid());
  inner_->Next(ctx);
  Normalize(ctx);
}

void MdamCursor::Normalize(RunContext* ctx) {
  while (inner_->Valid()) {
    const IndexEntry& e = inner_->entry();
    if (e.key0 > opts_.k0_hi) {
      done_ = true;
      return;
    }
    bool k1_ok = e.key1 >= opts_.k1_lo && e.key1 <= opts_.k1_hi;
    if (k1_ok) return;
    ++examined_;
    ctx->ChargeCpuOps(1, ctx->cpu.index_entry_seconds);
    if (mode_ == MdamOptions::Mode::kRangeScan) {
      inner_->Next(ctx);
      continue;
    }
    // Skip-scan: jump straight to the next possible qualifying position.
    if (e.key1 < opts_.k1_lo) {
      inner_ = index_->Seek(ctx, e.key0, opts_.k1_lo);
    } else {
      // e.key1 > k1_hi: no more matches within this k0 group.
      if (e.key0 == opts_.k0_hi) {
        done_ = true;
        return;
      }
      inner_ = index_->Seek(ctx, e.key0 + 1, opts_.k1_lo);
    }
    ++seeks_;
  }
  done_ = true;
}

}  // namespace robustmap
