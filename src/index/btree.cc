#include "index/btree.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace robustmap {

namespace {
// First position in [begin, end) whose entry is >= (k0, k1, 0).
size_t LowerBound(const std::vector<IndexEntry>& entries, int64_t k0,
                  int64_t k1) {
  IndexEntry probe{k0, k1, 0};
  auto it = std::lower_bound(entries.begin(), entries.end(), probe, EntryLess);
  return static_cast<size_t>(it - entries.begin());
}
}  // namespace

class BTree::Cursor : public IndexCursor {
 public:
  Cursor(const BTree* tree, int32_t leaf, size_t pos)
      : tree_(tree), leaf_(leaf), pos_(pos) {}

  bool Valid() const override { return leaf_ >= 0; }

  void Next(RunContext* ctx) override {
    assert(Valid());
    ++pos_;
    while (leaf_ >= 0 && pos_ >= tree_->leaves_[leaf_].entries.size()) {
      leaf_ = tree_->leaves_[leaf_].next;
      pos_ = 0;
      if (leaf_ >= 0) {
        ctx->ReadPage(tree_->leaves_[leaf_].page, /*cacheable=*/true);
      }
    }
  }

  const IndexEntry& entry() const override {
    return tree_->leaves_[leaf_].entries[pos_];
  }

 private:
  const BTree* tree_;
  int32_t leaf_;
  size_t pos_;
};

Result<std::unique_ptr<BTree>> BTree::BulkLoad(SimDevice* device,
                                               std::vector<IndexEntry> entries,
                                               const BTreeOptions& opts,
                                               uint64_t extra_capacity_pages) {
  if (opts.key_columns.empty() || opts.key_columns.size() > 2) {
    return Status::InvalidArgument("B-tree supports 1 or 2 key columns");
  }
  if (opts.leaf_capacity < 2 || opts.internal_fanout < 2) {
    return Status::InvalidArgument("leaf_capacity/internal_fanout too small");
  }
  if (!std::is_sorted(entries.begin(), entries.end(), EntryLess)) {
    return Status::InvalidArgument("bulk load requires sorted entries");
  }
  uint64_t num_leaves =
      std::max<uint64_t>(1, (entries.size() + opts.leaf_capacity - 1) /
                                opts.leaf_capacity);
  uint64_t capacity = num_leaves + extra_capacity_pages;
  uint64_t base = device->AllocateExtent(capacity);
  auto tree = std::unique_ptr<BTree>(new BTree(device, opts, base, capacity));

  // Fill leaves ~90% to leave room for inserts without immediate splits.
  size_t fill = std::max<size_t>(2, opts.leaf_capacity * 9 / 10);
  if (entries.size() <= opts.leaf_capacity) fill = opts.leaf_capacity;
  size_t i = 0;
  while (i < entries.size() || tree->leaves_.empty()) {
    Leaf leaf;
    leaf.page = tree->next_free_page_++;
    size_t take = std::min(fill, entries.size() - i);
    leaf.entries.assign(entries.begin() + static_cast<ptrdiff_t>(i),
                        entries.begin() + static_cast<ptrdiff_t>(i + take));
    i += take;
    if (!tree->leaves_.empty()) {
      tree->leaves_.back().next = static_cast<int32_t>(tree->leaves_.size());
    }
    tree->leaves_.push_back(std::move(leaf));
  }
  tree->first_leaf_ = 0;
  tree->num_entries_ = entries.size();
  tree->RebuildSeparators();
  return tree;
}

BTree::BTree(SimDevice* device, BTreeOptions opts, uint64_t base_page,
             uint64_t capacity_pages)
    : device_(device),
      opts_(std::move(opts)),
      base_page_(base_page),
      capacity_pages_(capacity_pages),
      next_free_page_(base_page) {}

void BTree::RebuildSeparators() {
  separators_.clear();
  separator_leaf_.clear();
  for (int32_t l = first_leaf_; l >= 0; l = leaves_[l].next) {
    if (leaves_[l].entries.empty()) continue;
    separators_.push_back(leaves_[l].entries.front());
    separator_leaf_.push_back(l);
  }
  // Equivalent height: leaves + ceil(log_fanout(num_leaves)) internal levels.
  double n = static_cast<double>(std::max<size_t>(1, separators_.size()));
  height_ =
      1 + std::max(1, static_cast<int>(std::ceil(
                          std::log(n) / std::log(opts_.internal_fanout))));
}

int32_t BTree::FindLeaf(RunContext* ctx, const IndexEntry& probe) const {
  // Internal levels: cached; charge comparison CPU per level.
  ctx->ChargeCpuOps(static_cast<uint64_t>(height_) * 8,
                    ctx->cpu.compare_seconds);
  if (separators_.empty()) return first_leaf_;
  // Last separator <= probe.
  auto it = std::upper_bound(separators_.begin(), separators_.end(), probe,
                             EntryLess);
  size_t idx = (it == separators_.begin())
                   ? 0
                   : static_cast<size_t>(it - separators_.begin()) - 1;
  return separator_leaf_[idx];
}

std::unique_ptr<IndexCursor> BTree::Seek(RunContext* ctx, int64_t k0,
                                         int64_t k1) {
  int32_t leaf = FindLeaf(ctx, IndexEntry{k0, k1, 0});
  if (leaf < 0) return std::make_unique<Cursor>(this, -1, 0);
  ctx->ReadPage(leaves_[leaf].page, /*cacheable=*/true);
  size_t pos = LowerBound(leaves_[leaf].entries, k0, k1);
  // Normalize: the target may fall past the end of this leaf.
  while (leaf >= 0 && pos >= leaves_[leaf].entries.size()) {
    leaf = leaves_[leaf].next;
    pos = 0;
    if (leaf >= 0) ctx->ReadPage(leaves_[leaf].page, /*cacheable=*/true);
  }
  return std::make_unique<Cursor>(this, leaf, pos);
}

Status BTree::Insert(RunContext* ctx, const IndexEntry& entry) {
  if (first_leaf_ < 0) return Status::Internal("uninitialized tree");
  int32_t l = FindLeaf(ctx, entry);
  ctx->ReadPage(leaves_[l].page, /*cacheable=*/true);
  auto& leaf = leaves_[l];
  auto it = std::lower_bound(leaf.entries.begin(), leaf.entries.end(), entry,
                             EntryLess);
  if (it != leaf.entries.end() && *it == entry) {
    return Status::InvalidArgument("duplicate (key, rid) entry");
  }
  leaf.entries.insert(it, entry);
  ++num_entries_;
  ctx->device->WritePage(leaf.page);

  if (leaf.entries.size() > opts_.leaf_capacity) {
    // Split: move upper half into a fresh leaf appended to the extent. The
    // new page is physically out of key order — exactly the scan-locality
    // degradation real B-trees suffer after splits.
    if (next_free_page_ >= base_page_ + capacity_pages_) {
      // Extent full: grow by another chunk (page ids jump, further
      // degrading physical clustering, as in a fragmented file system).
      uint64_t grow = std::max<uint64_t>(64, capacity_pages_ / 2);
      uint64_t new_base = ctx->device->AllocateExtent(grow);
      base_page_ = new_base;
      capacity_pages_ = grow;
      next_free_page_ = new_base;
    }
    Leaf right;
    right.page = next_free_page_++;
    size_t half = leaf.entries.size() / 2;
    right.entries.assign(leaf.entries.begin() + static_cast<ptrdiff_t>(half),
                         leaf.entries.end());
    leaf.entries.resize(half);
    right.next = leaf.next;
    leaves_.push_back(std::move(right));
    leaves_[l].next = static_cast<int32_t>(leaves_.size()) - 1;
    ctx->device->WritePage(leaves_.back().page);
    ctx->device->WritePage(leaves_[l].page);
    RebuildSeparators();
  }
  return Status::OK();
}

Status BTree::CheckInvariants() const {
  uint64_t seen = 0;
  const IndexEntry* prev = nullptr;
  for (int32_t l = first_leaf_; l >= 0; l = leaves_[l].next) {
    const auto& leaf = leaves_[l];
    if (leaf.entries.size() > opts_.leaf_capacity + 1) {
      return Status::Corruption("overfull leaf");
    }
    for (const auto& e : leaf.entries) {
      if (prev != nullptr && EntryLess(e, *prev)) {
        return Status::Corruption("entries out of order across chain");
      }
      prev = &e;
      ++seen;
    }
  }
  if (seen != num_entries_) {
    return Status::Corruption("entry count mismatch");
  }
  for (size_t i = 0; i + 1 < separators_.size(); ++i) {
    if (!EntryLess(separators_[i], separators_[i + 1])) {
      return Status::Corruption("separators out of order");
    }
  }
  return Status::OK();
}

}  // namespace robustmap
