#ifndef ROBUSTMAP_VIZ_PPM_WRITER_H_
#define ROBUSTMAP_VIZ_PPM_WRITER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/color_scale.h"
#include "core/parameter_space.h"

namespace robustmap {

/// Writes a 2-D grid as a binary PPM (P6) image using the color scale —
/// true-color robustness maps without any plotting dependency. Each grid
/// cell becomes a `cell_pixels` × `cell_pixels` block; y grows upward as in
/// the paper's figures.
Status WritePpm(const std::string& path, const ParameterSpace& space,
                const std::vector<double>& grid, const ColorScale& scale,
                int cell_pixels = 16);

/// Writes the color-scale legend itself as a PPM strip (Figures 3 and 6).
Status WriteLegendPpm(const std::string& path, const ColorScale& scale,
                      int cell_pixels = 24);

}  // namespace robustmap

#endif  // ROBUSTMAP_VIZ_PPM_WRITER_H_
