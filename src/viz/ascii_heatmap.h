#ifndef ROBUSTMAP_VIZ_ASCII_HEATMAP_H_
#define ROBUSTMAP_VIZ_ASCII_HEATMAP_H_

#include <string>
#include <vector>

#include "core/color_scale.h"
#include "core/parameter_space.h"

namespace robustmap {

/// Rendering options for terminal maps.
struct HeatmapOptions {
  bool ansi_color = false;  ///< 24-bit ANSI backgrounds vs. glyph ramp
  bool show_axes = true;
  std::string title;
};

/// Renders a 2-D grid (row-major, y rows of x cells; y grows upward) as a
/// terminal heat map with the given color scale — the textual equivalent of
/// the paper's Figures 4/5/7/8/9.
std::string RenderHeatmap(const ParameterSpace& space,
                          const std::vector<double>& grid,
                          const ColorScale& scale,
                          const HeatmapOptions& opts = {});

/// One labeled series of a 1-D chart.
struct ChartSeries {
  std::string label;
  std::vector<double> ys;
};

/// Options for log-log curve charts (Figure 1/2 style).
struct ChartOptions {
  int width = 72;    ///< plot columns
  int height = 24;   ///< plot rows
  bool log_x = true;
  bool log_y = true;
  std::string title;
  std::string x_label;
  std::string y_label;
};

/// Renders multiple curves over a shared x grid as an ASCII chart with
/// logarithmic axes — the form of the paper's Figure 1. Each series is
/// drawn with its own glyph ('a' + index, shown in the legend).
std::string RenderChart(const std::vector<double>& xs,
                        const std::vector<ChartSeries>& series,
                        const ChartOptions& opts = {});

}  // namespace robustmap

#endif  // ROBUSTMAP_VIZ_ASCII_HEATMAP_H_
