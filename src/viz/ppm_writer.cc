#include "viz/ppm_writer.h"

#include <cstdio>

namespace robustmap {

namespace {
Status WritePixels(const std::string& path, int width, int height,
                   const std::vector<Rgb>& pixels) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  std::fprintf(f, "P6\n%d %d\n255\n", width, height);
  for (const Rgb& p : pixels) {
    uint8_t bytes[3] = {p.r, p.g, p.b};
    std::fwrite(bytes, 1, 3, f);
  }
  std::fclose(f);
  return Status::OK();
}
}  // namespace

Status WritePpm(const std::string& path, const ParameterSpace& space,
                const std::vector<double>& grid, const ColorScale& scale,
                int cell_pixels) {
  if (grid.size() != space.num_points()) {
    return Status::InvalidArgument("grid size does not match space");
  }
  if (cell_pixels < 1) cell_pixels = 1;
  int w = static_cast<int>(space.x_size()) * cell_pixels;
  int h = static_cast<int>(space.y_size()) * cell_pixels;
  std::vector<Rgb> pixels(static_cast<size_t>(w) * h);
  for (size_t yi = 0; yi < space.y_size(); ++yi) {
    for (size_t xi = 0; xi < space.x_size(); ++xi) {
      Rgb c = scale.ColorOf(grid[space.IndexOf(xi, yi)]);
      // Image row 0 is the top: highest y value.
      size_t top_row = (space.y_size() - 1 - yi) * cell_pixels;
      for (int py = 0; py < cell_pixels; ++py) {
        for (int px = 0; px < cell_pixels; ++px) {
          pixels[(top_row + py) * w + xi * cell_pixels + px] = c;
        }
      }
    }
  }
  return WritePixels(path, w, h, pixels);
}

Status WriteLegendPpm(const std::string& path, const ColorScale& scale,
                      int cell_pixels) {
  if (cell_pixels < 1) cell_pixels = 1;
  int n = static_cast<int>(scale.num_buckets());
  int w = n * cell_pixels;
  int h = cell_pixels;
  std::vector<Rgb> pixels(static_cast<size_t>(w) * h);
  for (int i = 0; i < n; ++i) {
    Rgb c = scale.bucket_color(static_cast<size_t>(i));
    for (int py = 0; py < h; ++py) {
      for (int px = 0; px < cell_pixels; ++px) {
        pixels[static_cast<size_t>(py) * w + i * cell_pixels + px] = c;
      }
    }
  }
  return WritePixels(path, w, h, pixels);
}

}  // namespace robustmap
