#include "viz/csv_export.h"

#include <fstream>

namespace robustmap {

void WriteMapCsv(std::ostream& os, const RobustnessMap& map) {
  os << "plan,x,y,seconds,output_rows,seq_reads,skip_reads,random_reads,"
        "writes,buffer_hits\n";
  const ParameterSpace& space = map.space();
  for (size_t pl = 0; pl < map.num_plans(); ++pl) {
    for (size_t pt = 0; pt < space.num_points(); ++pt) {
      const Measurement& m = map.At(pl, pt);
      os << map.plan_label(pl) << ',' << space.x_value(pt) << ',';
      if (space.is_2d()) os << space.y_value(pt);
      os << ',' << m.seconds << ',' << m.output_rows << ','
         << m.io.sequential_reads << ',' << m.io.skip_reads << ','
         << m.io.random_reads << ',' << m.io.writes << ',' << m.io.buffer_hits
         << '\n';
    }
  }
}

Status WriteMapCsvFile(const std::string& path, const RobustnessMap& map) {
  std::ofstream f(path);
  if (!f.is_open()) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  WriteMapCsv(f, map);
  return Status::OK();
}

}  // namespace robustmap
