#include "viz/csv_export.h"

#include <fstream>

#include "core/sweep.h"

namespace robustmap {

namespace {

// RFC 4180 quoting for the one free-text column: plan labels like
// "B.cover(a,b).bitmap" contain commas and would otherwise shift every
// column after them.
std::string CsvField(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string quoted = "\"";
  for (char c : s) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

void WriteMapCsv(std::ostream& os, const RobustnessMap& map) {
  os << "plan,x,y,seconds,output_rows,seq_reads,skip_reads,random_reads,"
        "writes,buffer_hits\n";
  const ParameterSpace& space = map.space();
  for (size_t pl = 0; pl < map.num_plans(); ++pl) {
    for (size_t pt = 0; pt < space.num_points(); ++pt) {
      const Measurement& m = map.At(pl, pt);
      os << CsvField(map.plan_label(pl)) << ',' << space.x_value(pt) << ',';
      if (space.is_2d()) os << space.y_value(pt);
      os << ',' << m.seconds << ',' << m.output_rows << ','
         << m.io.sequential_reads << ',' << m.io.skip_reads << ','
         << m.io.random_reads << ',' << m.io.writes << ',' << m.io.buffer_hits
         << '\n';
    }
  }
}

Status WriteMapCsvFile(const std::string& path, const RobustnessMap& map) {
  std::ofstream f(path);
  if (!f.is_open()) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  WriteMapCsv(f, map);
  return Status::OK();
}

Status WriteWarmColdCsv(std::ostream& os, const RobustnessMap& cold,
                        const RobustnessMap& warm) {
  // DiffMaps owns the compatibility contract (same space, same plan
  // labels, equal cardinalities) and the delta arithmetic; reuse it rather
  // than maintaining a second copy of either.
  auto delta = DiffMaps(warm, cold);
  RM_RETURN_IF_ERROR(delta.status());
  os << "plan,x,y,cold_seconds,warm_seconds,delta_seconds,cold_reads,"
        "warm_reads,cold_buffer_hits,warm_buffer_hits\n";
  const ParameterSpace& space = cold.space();
  for (size_t pl = 0; pl < cold.num_plans(); ++pl) {
    for (size_t pt = 0; pt < space.num_points(); ++pt) {
      const Measurement& c = cold.At(pl, pt);
      const Measurement& w = warm.At(pl, pt);
      os << CsvField(cold.plan_label(pl)) << ',' << space.x_value(pt) << ',';
      if (space.is_2d()) os << space.y_value(pt);
      os << ',' << c.seconds << ',' << w.seconds << ','
         << delta.value().At(pl, pt).seconds << ',' << c.io.total_reads()
         << ',' << w.io.total_reads() << ',' << c.io.buffer_hits << ','
         << w.io.buffer_hits << '\n';
    }
  }
  return Status::OK();
}

Status WriteWarmColdCsvFile(const std::string& path, const RobustnessMap& cold,
                            const RobustnessMap& warm) {
  std::ofstream f(path);
  if (!f.is_open()) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  return WriteWarmColdCsv(f, cold, warm);
}

}  // namespace robustmap
