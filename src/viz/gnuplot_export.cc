#include "viz/gnuplot_export.h"

#include <fstream>
#include <ostream>

namespace robustmap {

void WriteGnuplotDat(std::ostream& os, const RobustnessMap& map) {
  const ParameterSpace& space = map.space();
  if (!space.is_2d()) {
    os << "# x";
    for (size_t pl = 0; pl < map.num_plans(); ++pl) {
      os << " \"" << map.plan_label(pl) << '"';
    }
    os << '\n';
    for (size_t pt = 0; pt < space.num_points(); ++pt) {
      os << space.x_value(pt);
      for (size_t pl = 0; pl < map.num_plans(); ++pl) {
        os << ' ' << map.At(pl, pt).seconds;
      }
      os << '\n';
    }
    return;
  }
  // pm3d blocks, one per plan, separated by two blank lines.
  for (size_t pl = 0; pl < map.num_plans(); ++pl) {
    os << "# plan " << map.plan_label(pl) << '\n';
    for (size_t yi = 0; yi < space.y_size(); ++yi) {
      for (size_t xi = 0; xi < space.x_size(); ++xi) {
        os << space.x().values[xi] << ' ' << space.y().values[yi] << ' '
           << map.AtXY(pl, xi, yi).seconds << '\n';
      }
      os << '\n';
    }
    os << '\n';
  }
}

Status WriteGnuplotPlt(const std::string& basename, const RobustnessMap& map,
                       const std::string& data_source) {
  const ParameterSpace& space = map.space();
  std::ofstream plt(basename + ".plt");
  if (!plt.is_open()) {
    return Status::Internal("cannot open " + basename + ".plt");
  }
  plt << "# gnuplot script regenerating this robustness map\n";
  if (!data_source.empty() && data_source[0] == '<') {
    plt << "# data is piped from the canonical .rmt artifact; run from the\n"
           "# build directory (or edit the pipe command's paths)\n";
  }
  plt << "set terminal pngcairo size 1000,700\n";
  if (!space.is_2d()) {
    plt << "set output '" << basename << ".png'\n";
    plt << "set logscale xy\nset xlabel '" << space.x().name
        << "'\nset ylabel 'execution time [s]'\nset key outside\n";
    plt << "plot";
    for (size_t pl = 0; pl < map.num_plans(); ++pl) {
      if (pl > 0) plt << ',';
      plt << " '" << data_source << "' using 1:" << pl + 2
          << " with linespoints title \"" << map.plan_label(pl) << '"';
    }
    plt << '\n';
  } else {
    plt << "set logscale xy\nset logscale cb\nset view map\nset pm3d at b\n";
    plt << "set xlabel '" << space.x().name << "'\nset ylabel '"
        << space.y().name << "'\n";
    plt << "set palette defined (0 'green', 1 'yellow', 2 'orange', 3 'red', "
           "4 'dark-red', 5 'black')\n";
    for (size_t pl = 0; pl < map.num_plans(); ++pl) {
      plt << "set output '" << basename << "_plan" << pl << ".png'\n";
      plt << "set title \"" << map.plan_label(pl) << "\"\n";
      plt << "splot '" << data_source << "' index " << pl
          << " using 1:2:3 with pm3d notitle\n";
    }
  }
  return Status::OK();
}

Status WriteGnuplot(const std::string& basename, const RobustnessMap& map) {
  std::ofstream dat(basename + ".dat");
  if (!dat.is_open()) {
    return Status::Internal("cannot open " + basename + ".dat");
  }
  WriteGnuplotDat(dat, map);
  return WriteGnuplotPlt(basename, map, basename + ".dat");
}

}  // namespace robustmap
