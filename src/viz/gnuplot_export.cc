#include "viz/gnuplot_export.h"

#include <fstream>

namespace robustmap {

Status WriteGnuplot(const std::string& basename, const RobustnessMap& map) {
  const ParameterSpace& space = map.space();
  std::ofstream dat(basename + ".dat");
  if (!dat.is_open()) {
    return Status::Internal("cannot open " + basename + ".dat");
  }

  if (!space.is_2d()) {
    dat << "# x";
    for (size_t pl = 0; pl < map.num_plans(); ++pl) {
      dat << " \"" << map.plan_label(pl) << '"';
    }
    dat << '\n';
    for (size_t pt = 0; pt < space.num_points(); ++pt) {
      dat << space.x_value(pt);
      for (size_t pl = 0; pl < map.num_plans(); ++pl) {
        dat << ' ' << map.At(pl, pt).seconds;
      }
      dat << '\n';
    }
  } else {
    // pm3d blocks, one per plan, separated by two blank lines.
    for (size_t pl = 0; pl < map.num_plans(); ++pl) {
      dat << "# plan " << map.plan_label(pl) << '\n';
      for (size_t yi = 0; yi < space.y_size(); ++yi) {
        for (size_t xi = 0; xi < space.x_size(); ++xi) {
          dat << space.x().values[xi] << ' ' << space.y().values[yi] << ' '
              << map.AtXY(pl, xi, yi).seconds << '\n';
        }
        dat << '\n';
      }
      dat << '\n';
    }
  }

  std::ofstream plt(basename + ".plt");
  if (!plt.is_open()) {
    return Status::Internal("cannot open " + basename + ".plt");
  }
  plt << "# gnuplot script regenerating this robustness map\n";
  plt << "set terminal pngcairo size 1000,700\n";
  if (!space.is_2d()) {
    plt << "set output '" << basename << ".png'\n";
    plt << "set logscale xy\nset xlabel '" << space.x().name
        << "'\nset ylabel 'execution time [s]'\nset key outside\n";
    plt << "plot";
    for (size_t pl = 0; pl < map.num_plans(); ++pl) {
      if (pl > 0) plt << ',';
      plt << " '" << basename << ".dat' using 1:" << pl + 2
          << " with linespoints title \"" << map.plan_label(pl) << '"';
    }
    plt << '\n';
  } else {
    plt << "set logscale xy\nset logscale cb\nset view map\nset pm3d at b\n";
    plt << "set xlabel '" << space.x().name << "'\nset ylabel '"
        << space.y().name << "'\n";
    plt << "set palette defined (0 'green', 1 'yellow', 2 'orange', 3 'red', "
           "4 'dark-red', 5 'black')\n";
    for (size_t pl = 0; pl < map.num_plans(); ++pl) {
      plt << "set output '" << basename << "_plan" << pl << ".png'\n";
      plt << "set title \"" << map.plan_label(pl) << "\"\n";
      plt << "splot '" << basename << ".dat' index " << pl
          << " using 1:2:3 with pm3d notitle\n";
    }
  }
  return Status::OK();
}

}  // namespace robustmap
