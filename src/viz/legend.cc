#include "viz/legend.h"

#include <cstdio>

namespace robustmap {

std::string RenderLegend(const ColorScale& scale, bool ansi_color) {
  std::string out = scale.title() + ":\n";
  for (size_t i = 0; i < scale.num_buckets(); ++i) {
    if (ansi_color) {
      Rgb c = scale.bucket_color(i);
      char buf[48];
      std::snprintf(buf, sizeof(buf), "  \x1b[48;2;%u;%u;%um    \x1b[0m ", c.r,
                    c.g, c.b);
      out += buf;
    } else {
      out += "  [";
      out.push_back(scale.bucket_glyph(i));
      out.push_back(scale.bucket_glyph(i));
      out += "] ";
    }
    out += scale.bucket_label(i) + "\n";
  }
  return out;
}

}  // namespace robustmap
