#ifndef ROBUSTMAP_VIZ_GNUPLOT_EXPORT_H_
#define ROBUSTMAP_VIZ_GNUPLOT_EXPORT_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "core/robustness_map.h"

namespace robustmap {

/// Writes the gnuplot data block for a map to `os`:
///   * 1-D maps -> one row per grid point, x then one seconds column per
///     plan (with a `# x "plan"...` header);
///   * 2-D maps -> pm3d blocks, one per plan, separated by two blank lines.
/// The format `WriteGnuplotPlt` scripts consume — from a `.dat` file or
/// piped straight out of `map_cat --dat FILE.rmt`.
void WriteGnuplotDat(std::ostream& os, const RobustnessMap& map);

/// Writes `<basename>.plt` so that `gnuplot <basename>.plt` regenerates
/// the figure offline:
///   * 1-D maps -> log-log multi-series line plot (Figure 1/2 style);
///   * 2-D maps -> one pm3d heat map per plan (Figure 4/5 style).
/// `data_source` is the gnuplot datafile spec the plot lines reference —
/// a `.dat` path, or a command pipe such as
/// `< bench/map_cat --dat bench_out/fig.rmt` to read the canonical binary
/// artifact directly (the benches' default: no ready-made `.dat` copy to
/// drift out of sync with the `.rmt`).
Status WriteGnuplotPlt(const std::string& basename, const RobustnessMap& map,
                       const std::string& data_source);

/// Convenience: writes `<basename>.dat` plus a `<basename>.plt` that reads
/// it — for maps that only exist in memory (no `.rmt` on disk to pipe
/// from).
Status WriteGnuplot(const std::string& basename, const RobustnessMap& map);

}  // namespace robustmap

#endif  // ROBUSTMAP_VIZ_GNUPLOT_EXPORT_H_
