#ifndef ROBUSTMAP_VIZ_GNUPLOT_EXPORT_H_
#define ROBUSTMAP_VIZ_GNUPLOT_EXPORT_H_

#include <string>

#include "common/status.h"
#include "core/robustness_map.h"

namespace robustmap {

/// Writes `<basename>.dat` and `<basename>.plt` so that
/// `gnuplot <basename>.plt` regenerates the figure offline:
///   * 1-D maps -> log-log multi-series line plot (Figure 1/2 style);
///   * 2-D maps -> one pm3d heat map per plan (Figure 4/5 style).
Status WriteGnuplot(const std::string& basename, const RobustnessMap& map);

}  // namespace robustmap

#endif  // ROBUSTMAP_VIZ_GNUPLOT_EXPORT_H_
