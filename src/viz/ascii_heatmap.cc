#include "viz/ascii_heatmap.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

#include "common/format.h"

namespace robustmap {

std::string RenderHeatmap(const ParameterSpace& space,
                          const std::vector<double>& grid,
                          const ColorScale& scale, const HeatmapOptions& opts) {
  assert(grid.size() == space.num_points());
  std::string out;
  if (!opts.title.empty()) out += opts.title + "\n";

  size_t xs = space.x_size();
  size_t ys = space.y_size();
  // Highest y at the top, like the paper's plots.
  for (size_t row = ys; row-- > 0;) {
    std::string line;
    if (opts.show_axes) {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%8s |",
                    space.is_2d()
                        ? FormatSelectivity(space.y().values[row]).c_str()
                        : "");
      line += buf;
    }
    for (size_t col = 0; col < xs; ++col) {
      double v = grid[space.IndexOf(col, row)];
      if (opts.ansi_color) {
        line += scale.AnsiCellOf(v);
      } else {
        char g = scale.GlyphOf(v);
        line.push_back(g);
        line.push_back(g);
      }
    }
    out += line + "\n";
  }
  if (opts.show_axes) {
    out += "         +";
    out.append(2 * xs, '-');
    out += "\n          ";
    // Sparse x tick labels, spaced so neighbors cannot collide.
    std::string ticks(2 * xs, ' ');
    size_t max_label = 0;
    for (double v : space.x().values) {
      max_label = std::max(max_label, FormatSelectivity(v).size());
    }
    size_t step = std::max<size_t>(1, (max_label + 2) / 2);
    for (size_t col = 0; col < xs; col += step) {
      std::string lab = FormatSelectivity(space.x().values[col]);
      for (size_t k = 0; k < lab.size() && 2 * col + k < ticks.size(); ++k) {
        ticks[2 * col + k] = lab[k];
      }
    }
    out += ticks + "\n";
    out += "          x: " + space.x().name;
    if (space.is_2d()) out += ", y: " + space.y().name;
    out += "\n";
  }
  return out;
}

std::string RenderChart(const std::vector<double>& xs,
                        const std::vector<ChartSeries>& series,
                        const ChartOptions& opts) {
  std::string out;
  if (!opts.title.empty()) out += opts.title + "\n";
  if (xs.empty() || series.empty()) return out + "(empty chart)\n";

  auto tx = [&](double v) { return opts.log_x ? std::log2(v) : v; };
  auto ty = [&](double v) { return opts.log_y ? std::log2(v) : v; };

  double xmin = tx(xs.front()), xmax = tx(xs.back());
  double ymin = 1e300, ymax = -1e300;
  for (const auto& s : series) {
    for (double v : s.ys) {
      if (opts.log_y && v <= 0) continue;
      ymin = std::min(ymin, ty(v));
      ymax = std::max(ymax, ty(v));
    }
  }
  if (ymin > ymax) {
    ymin = 0;
    ymax = 1;
  }
  if (ymax - ymin < 1e-12) ymax = ymin + 1;
  if (xmax - xmin < 1e-12) xmax = xmin + 1;

  int w = std::max(16, opts.width);
  int h = std::max(8, opts.height);
  std::vector<std::string> canvas(static_cast<size_t>(h),
                                  std::string(static_cast<size_t>(w), ' '));
  for (size_t si = 0; si < series.size(); ++si) {
    char glyph = static_cast<char>('a' + (si % 26));
    const auto& ys = series[si].ys;
    for (size_t i = 0; i < xs.size() && i < ys.size(); ++i) {
      if (opts.log_y && ys[i] <= 0) continue;
      int col = static_cast<int>(std::lround(
          (tx(xs[i]) - xmin) / (xmax - xmin) * (w - 1)));
      int row = static_cast<int>(std::lround(
          (ty(ys[i]) - ymin) / (ymax - ymin) * (h - 1)));
      col = std::clamp(col, 0, w - 1);
      row = std::clamp(row, 0, h - 1);
      char& cell = canvas[static_cast<size_t>(h - 1 - row)]
                         [static_cast<size_t>(col)];
      cell = cell == ' ' ? glyph : '*';  // '*' marks overlapping series
    }
  }

  char buf[64];
  double y_top = opts.log_y ? std::exp2(ymax) : ymax;
  double y_bot = opts.log_y ? std::exp2(ymin) : ymin;
  for (int r = 0; r < h; ++r) {
    if (r == 0) {
      std::snprintf(buf, sizeof(buf), "%10s |",
                    FormatSeconds(y_top).c_str());
    } else if (r == h - 1) {
      std::snprintf(buf, sizeof(buf), "%10s |",
                    FormatSeconds(y_bot).c_str());
    } else {
      std::snprintf(buf, sizeof(buf), "%10s |", "");
    }
    out += buf + canvas[static_cast<size_t>(r)] + "\n";
  }
  out += "           +";
  out.append(static_cast<size_t>(w), '-');
  out += "\n            ";
  out += FormatSelectivity(xs.front());
  std::string right = FormatSelectivity(xs.back());
  int pad = w - static_cast<int>(FormatSelectivity(xs.front()).size()) -
            static_cast<int>(right.size());
  out.append(static_cast<size_t>(std::max(1, pad)), ' ');
  out += right + "\n";
  if (!opts.x_label.empty()) out += "            x: " + opts.x_label + "\n";
  for (size_t si = 0; si < series.size(); ++si) {
    out.push_back(' ');
    out.push_back(' ');
    out.push_back(static_cast<char>('a' + (si % 26)));
    out += " = " + series[si].label + "\n";
  }
  return out;
}

}  // namespace robustmap
