#ifndef ROBUSTMAP_VIZ_LEGEND_H_
#define ROBUSTMAP_VIZ_LEGEND_H_

#include <string>

#include "core/color_scale.h"

namespace robustmap {

/// Renders a color scale as terminal text — the reproduction of the paper's
/// Figure 3 (absolute) and Figure 6 (relative) legends. With `ansi_color`
/// each bucket shows its actual color swatch; otherwise its glyph.
std::string RenderLegend(const ColorScale& scale, bool ansi_color = false);

}  // namespace robustmap

#endif  // ROBUSTMAP_VIZ_LEGEND_H_
