#ifndef ROBUSTMAP_VIZ_CSV_EXPORT_H_
#define ROBUSTMAP_VIZ_CSV_EXPORT_H_

#include <ostream>
#include <string>

#include "common/status.h"
#include "core/robustness_map.h"

namespace robustmap {

/// Streams a robustness map as CSV:
///   plan,x,y,seconds,output_rows,seq_reads,skip_reads,random_reads,writes,
///   buffer_hits
/// (y is empty for 1-D maps). The raw data behind every figure.
void WriteMapCsv(std::ostream& os, const RobustnessMap& map);

/// Convenience: writes to a file.
Status WriteMapCsvFile(const std::string& path, const RobustnessMap& map);

/// Streams a paired warm/cold study as one CSV:
///   plan,x,y,cold_seconds,warm_seconds,delta_seconds,cold_reads,warm_reads,
///   cold_buffer_hits,warm_buffer_hits
/// (y is empty for 1-D maps; delta = warm − cold). The maps must cover the
/// same plans and space — anything else is an error.
Status WriteWarmColdCsv(std::ostream& os, const RobustnessMap& cold,
                        const RobustnessMap& warm);

/// Convenience: writes to a file.
Status WriteWarmColdCsvFile(const std::string& path, const RobustnessMap& cold,
                            const RobustnessMap& warm);

}  // namespace robustmap

#endif  // ROBUSTMAP_VIZ_CSV_EXPORT_H_
