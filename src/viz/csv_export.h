#ifndef ROBUSTMAP_VIZ_CSV_EXPORT_H_
#define ROBUSTMAP_VIZ_CSV_EXPORT_H_

#include <ostream>
#include <string>

#include "common/status.h"
#include "core/robustness_map.h"

namespace robustmap {

/// Streams a robustness map as CSV:
///   plan,x,y,seconds,output_rows,seq_reads,skip_reads,random_reads,writes,
///   buffer_hits
/// (y is empty for 1-D maps). The raw data behind every figure.
void WriteMapCsv(std::ostream& os, const RobustnessMap& map);

/// Convenience: writes to a file.
Status WriteMapCsvFile(const std::string& path, const RobustnessMap& map);

}  // namespace robustmap

#endif  // ROBUSTMAP_VIZ_CSV_EXPORT_H_
