#ifndef ROBUSTMAP_CATALOG_SCHEMA_H_
#define ROBUSTMAP_CATALOG_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace robustmap {

/// A column description. All columns are 64-bit integers in this library
/// (the paper's predicates are range predicates over ordered domains; wider
/// type support would not change any robustness result).
struct ColumnDef {
  std::string name;
  /// Values lie in [0, domain); 0 = unbounded/unknown.
  int64_t domain = 0;
};

/// An ordered list of columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns)
      : columns_(std::move(columns)) {}

  uint32_t num_columns() const {
    return static_cast<uint32_t>(columns_.size());
  }
  const ColumnDef& column(uint32_t i) const { return columns_[i]; }

  /// Ordinal of the named column.
  Result<uint32_t> ColumnIndex(const std::string& name) const;

 private:
  std::vector<ColumnDef> columns_;
};

}  // namespace robustmap

#endif  // ROBUSTMAP_CATALOG_SCHEMA_H_
