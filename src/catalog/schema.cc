#include "catalog/schema.h"

namespace robustmap {

Result<uint32_t> Schema::ColumnIndex(const std::string& name) const {
  for (uint32_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no column named " + name);
}

}  // namespace robustmap
