#include "catalog/catalog.h"

namespace robustmap {

Status Catalog::AddTable(TableInfo info) {
  if (info.table == nullptr) {
    return Status::InvalidArgument("null table: " + info.name);
  }
  if (tables_.count(info.name) > 0) {
    return Status::InvalidArgument("duplicate table: " + info.name);
  }
  std::string name = info.name;
  tables_.emplace(std::move(name), std::move(info));
  return Status::OK();
}

Status Catalog::AddIndex(IndexInfo info) {
  if (info.index == nullptr) {
    return Status::InvalidArgument("null index: " + info.name);
  }
  if (indexes_.count(info.name) > 0) {
    return Status::InvalidArgument("duplicate index: " + info.name);
  }
  if (tables_.count(info.table_name) == 0) {
    return Status::NotFound("index " + info.name + " over unknown table " +
                            info.table_name);
  }
  std::string name = info.name;
  indexes_.emplace(std::move(name), std::move(info));
  return Status::OK();
}

Result<const TableInfo*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table named " + name);
  return &it->second;
}

Result<const IndexInfo*> Catalog::GetIndex(const std::string& name) const {
  auto it = indexes_.find(name);
  if (it == indexes_.end()) return Status::NotFound("no index named " + name);
  return &it->second;
}

std::vector<const IndexInfo*> Catalog::IndexesOn(
    const std::string& table_name) const {
  std::vector<const IndexInfo*> out;
  for (const auto& [name, info] : indexes_) {
    if (info.table_name == table_name) out.push_back(&info);
  }
  return out;
}

}  // namespace robustmap
