#ifndef ROBUSTMAP_CATALOG_CATALOG_H_
#define ROBUSTMAP_CATALOG_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "index/index.h"
#include "storage/table.h"

namespace robustmap {

/// A registered table: storage plus schema.
struct TableInfo {
  std::string name;
  std::shared_ptr<Table> table;
  Schema schema;
};

/// A registered index over a table.
struct IndexInfo {
  std::string name;
  std::string table_name;
  std::shared_ptr<Index> index;
};

/// Name → storage-object directory for one experimental database.
class Catalog {
 public:
  Status AddTable(TableInfo info);
  Status AddIndex(IndexInfo info);

  Result<const TableInfo*> GetTable(const std::string& name) const;
  Result<const IndexInfo*> GetIndex(const std::string& name) const;

  /// All indexes declared over `table_name`, in index-name order.
  std::vector<const IndexInfo*> IndexesOn(const std::string& table_name) const;

  size_t num_tables() const { return tables_.size(); }
  size_t num_indexes() const { return indexes_.size(); }

 private:
  // Ordered maps, deliberately: `IndexesOn` feeds plan enumeration, so the
  // directory's iteration order is observable downstream. Hash order would
  // make it salt- and allocation-dependent (the determinism lint bans
  // exactly that); name order costs nothing at catalog size.
  std::map<std::string, TableInfo> tables_;
  std::map<std::string, IndexInfo> indexes_;
};

}  // namespace robustmap

#endif  // ROBUSTMAP_CATALOG_CATALOG_H_
