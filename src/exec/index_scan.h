#ifndef ROBUSTMAP_EXEC_INDEX_SCAN_H_
#define ROBUSTMAP_EXEC_INDEX_SCAN_H_

#include <memory>

#include "exec/operator.h"
#include "index/index.h"
#include "index/mdam.h"

namespace robustmap {

/// Options for an index range scan.
struct IndexScanOptions {
  /// Inclusive range on the leading key column.
  int64_t k0_lo = 0;
  int64_t k0_hi = 0;

  /// Composite indexes only: also filter the second key column (a covering
  /// scan evaluates this predicate inside the index, examining every entry
  /// in the k0 range).
  bool filter_k1 = false;
  int64_t k1_lo = 0;
  int64_t k1_hi = 0;

  /// Composite indexes only: navigate with MDAM instead of scan-and-filter.
  bool use_mdam = false;
  MdamOptions::Mode mdam_mode = MdamOptions::Mode::kAuto;

  /// Key domains (for MDAM's cost-based mode choice); 0 = unknown.
  int64_t k0_domain = 0;
  int64_t k1_domain = 0;
};

/// Ordered scan of an index leaf range, emitting covered key columns + rid.
///
/// Emits rows in *key* order (rids unsorted); downstream fetch or join
/// operators decide how to turn rids into table rows. Charges per-entry CPU
/// for every entry examined (including entries rejected by the k1 filter)
/// while the cursor charges leaf I/O.
class IndexScanOp : public Operator {
 public:
  IndexScanOp(Index* index, const IndexScanOptions& opts)
      : index_(index), opts_(opts) {}

  Status Open(RunContext* ctx) override;
  bool Next(RunContext* ctx, Row* out) override;
  void Close(RunContext* ctx) override;
  std::string DebugName() const override;

  /// After Close: number of entries the scan examined.
  uint64_t entries_examined() const { return examined_; }

 private:
  Index* index_;
  IndexScanOptions opts_;
  std::unique_ptr<IndexCursor> cursor_;
  uint64_t examined_ = 0;
};

}  // namespace robustmap

#endif  // ROBUSTMAP_EXEC_INDEX_SCAN_H_
