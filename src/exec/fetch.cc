#include "exec/fetch.h"

#include <algorithm>

#include "exec/sort.h"

namespace robustmap {

Status FetchOp::Open(RunContext* ctx) {
  rids_.clear();
  rid_pos_ = 0;
  bitmap_.clear();
  bitmap_scan_pos_ = 0;
  rows_fetched_ = 0;
  RM_RETURN_IF_ERROR(child_->Open(ctx));
  if (policy_ != FetchPolicy::kNaive) {
    return Prepare(ctx);
  }
  return Status::OK();
}

Status FetchOp::Prepare(RunContext* ctx) {
  Row r;
  if (policy_ == FetchPolicy::kSorted) {
    while (child_->Next(ctx, &r)) rids_.push_back(r.rid);
    RM_RETURN_IF_ERROR(child_->status());
    child_->Close(ctx);
    // Rid sort: 8-byte items under the sort memory budget.
    ChargeSortCost(ctx, rids_.size(), sizeof(Rid), ctx->sort_memory_bytes,
                   SpillKind::kGraceful);
    std::sort(rids_.begin(), rids_.end());
    return Status::OK();
  }
  // kBitmap: one bit per table row; insertion is cheap and order-free.
  bitmap_bits_ = table_->num_rows();
  bitmap_.assign((bitmap_bits_ + 63) / 64, 0);
  uint64_t inserted = 0;
  while (child_->Next(ctx, &r)) {
    bitmap_[r.rid >> 6] |= uint64_t{1} << (r.rid & 63);
    ++inserted;
  }
  RM_RETURN_IF_ERROR(child_->status());
  child_->Close(ctx);
  ctx->ChargeCpuOps(inserted, ctx->cpu.bitmap_set_seconds);
  // The sweep below scans every bitmap word once.
  ctx->ChargeCpuOps(bitmap_.size(), ctx->cpu.bitmap_set_seconds);
  return Status::OK();
}

bool FetchOp::NextRid(RunContext* ctx, Rid* rid) {
  switch (policy_) {
    case FetchPolicy::kNaive: {
      Row r;
      if (!child_->Next(ctx, &r)) {
        status_ = child_->status();
        return false;
      }
      *rid = r.rid;
      return true;
    }
    case FetchPolicy::kSorted: {
      if (rid_pos_ >= rids_.size()) return false;
      *rid = rids_[rid_pos_++];
      return true;
    }
    case FetchPolicy::kBitmap: {
      while (bitmap_scan_pos_ < bitmap_bits_) {
        uint64_t word_idx = bitmap_scan_pos_ >> 6;
        uint64_t word = bitmap_[word_idx] >> (bitmap_scan_pos_ & 63);
        if (word == 0) {
          bitmap_scan_pos_ = (word_idx + 1) << 6;
          continue;
        }
        bitmap_scan_pos_ += static_cast<uint64_t>(__builtin_ctzll(word));
        *rid = bitmap_scan_pos_;
        ++bitmap_scan_pos_;
        return true;
      }
      return false;
    }
  }
  return false;
}

bool FetchOp::Next(RunContext* ctx, Row* out) {
  Rid rid;
  while (NextRid(ctx, &rid)) {
    Status s = table_->FetchRow(ctx, rid, out);
    if (!s.ok()) {
      status_ = s;
      return false;
    }
    ++rows_fetched_;
    if (EvalPredicates(ctx, residual_, *out)) return true;
  }
  return false;
}

void FetchOp::Close(RunContext* ctx) {
  if (policy_ == FetchPolicy::kNaive) child_->Close(ctx);
  rids_.clear();
  rids_.shrink_to_fit();
  bitmap_.clear();
  bitmap_.shrink_to_fit();
}

std::string FetchOp::DebugName() const {
  const char* p = policy_ == FetchPolicy::kNaive    ? "naive"
                  : policy_ == FetchPolicy::kSorted ? "sorted"
                                                    : "bitmap";
  std::string name = "Fetch(" + std::string(p);
  for (const auto& pred : residual_) name += ", residual " + pred.ToString();
  name += ") <- " + child_->DebugName();
  return name;
}

}  // namespace robustmap
