#include "exec/bitmap_ops.h"

namespace robustmap {

Status BitmapAndOp::FillBitmap(RunContext* ctx, Operator* child,
                               std::vector<uint64_t>* bits) {
  bits->assign((table_rows_ + 63) / 64, 0);
  RM_RETURN_IF_ERROR(child->Open(ctx));
  Row r;
  uint64_t inserted = 0;
  while (child->Next(ctx, &r)) {
    (*bits)[r.rid >> 6] |= uint64_t{1} << (r.rid & 63);
    ++inserted;
  }
  RM_RETURN_IF_ERROR(child->status());
  child->Close(ctx);
  ctx->ChargeCpuOps(inserted, ctx->cpu.bitmap_set_seconds);
  return Status::OK();
}

Status BitmapAndOp::Open(RunContext* ctx) {
  scan_pos_ = 0;
  std::vector<uint64_t> right_bits;
  RM_RETURN_IF_ERROR(FillBitmap(ctx, left_.get(), &bits_));
  RM_RETURN_IF_ERROR(FillBitmap(ctx, right_.get(), &right_bits));
  for (size_t i = 0; i < bits_.size(); ++i) bits_[i] &= right_bits[i];
  // Word-wise AND plus the output scan below.
  ctx->ChargeCpuOps(bits_.size() * 2, ctx->cpu.bitmap_set_seconds);
  return Status::OK();
}

bool BitmapAndOp::Next(RunContext* ctx, Row* out) {
  (void)ctx;
  while (scan_pos_ < table_rows_) {
    uint64_t word_idx = scan_pos_ >> 6;
    uint64_t word = bits_[word_idx] >> (scan_pos_ & 63);
    if (word == 0) {
      scan_pos_ = (word_idx + 1) << 6;
      continue;
    }
    scan_pos_ += static_cast<uint64_t>(__builtin_ctzll(word));
    out->rid = scan_pos_;
    out->valid_cols = 0;
    ++scan_pos_;
    return true;
  }
  return false;
}

void BitmapAndOp::Close(RunContext* ctx) {
  (void)ctx;
  bits_.clear();
  bits_.shrink_to_fit();
}

std::string BitmapAndOp::DebugName() const {
  return "BitmapAnd(" + left_->DebugName() + ", " + right_->DebugName() + ")";
}

}  // namespace robustmap
