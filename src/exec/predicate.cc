#include "exec/predicate.h"

#include <cstdio>

namespace robustmap {

std::string RangePredicate::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%lld <= col%u <= %lld",
                static_cast<long long>(lo), column, static_cast<long long>(hi));
  return buf;
}

bool EvalPredicates(RunContext* ctx, const std::vector<RangePredicate>& preds,
                    const Row& row) {
  ctx->ChargeCpuOps(preds.size(), ctx->cpu.predicate_eval_seconds);
  for (const auto& p : preds) {
    if (!row.HasCol(p.column) || !p.Matches(row.cols[p.column])) return false;
  }
  return true;
}

}  // namespace robustmap
