#ifndef ROBUSTMAP_EXEC_OPERATOR_H_
#define ROBUSTMAP_EXEC_OPERATOR_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "io/run_context.h"
#include "storage/row.h"

namespace robustmap {

/// Volcano-style physical operator: Open / Next / Close.
///
/// `Next` returns true when it produced a row into `*out` and false when the
/// stream is exhausted *or* an error occurred; callers distinguish the two
/// via `status()` (RocksDB iterator idiom — keeps the hot path free of
/// Status copies).
class Operator {
 public:
  virtual ~Operator() = default;

  virtual Status Open(RunContext* ctx) = 0;
  virtual bool Next(RunContext* ctx, Row* out) = 0;
  virtual void Close(RunContext* ctx) = 0;

  /// Operator name with key parameters, for plan explanations.
  virtual std::string DebugName() const = 0;

  /// Non-OK iff Next() stopped because of an error.
  const Status& status() const { return status_; }

 protected:
  Status status_;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Runs `op` to completion, counting rows. Returns the row count or the
/// operator's error. Opens and closes the operator.
Result<uint64_t> DrainCount(RunContext* ctx, Operator* op);

}  // namespace robustmap

#endif  // ROBUSTMAP_EXEC_OPERATOR_H_
