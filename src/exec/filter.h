#ifndef ROBUSTMAP_EXEC_FILTER_H_
#define ROBUSTMAP_EXEC_FILTER_H_

#include <vector>

#include "exec/operator.h"
#include "exec/predicate.h"

namespace robustmap {

/// Residual predicate evaluation over an input stream.
class FilterOp : public Operator {
 public:
  FilterOp(OperatorPtr child, std::vector<RangePredicate> predicates)
      : child_(std::move(child)), predicates_(std::move(predicates)) {}

  Status Open(RunContext* ctx) override { return child_->Open(ctx); }

  bool Next(RunContext* ctx, Row* out) override {
    while (child_->Next(ctx, out)) {
      if (EvalPredicates(ctx, predicates_, *out)) return true;
    }
    status_ = child_->status();
    return false;
  }

  void Close(RunContext* ctx) override { child_->Close(ctx); }

  std::string DebugName() const override;

 private:
  OperatorPtr child_;
  std::vector<RangePredicate> predicates_;
};

}  // namespace robustmap

#endif  // ROBUSTMAP_EXEC_FILTER_H_
