#ifndef ROBUSTMAP_EXEC_FETCH_H_
#define ROBUSTMAP_EXEC_FETCH_H_

#include <vector>

#include "exec/operator.h"
#include "exec/predicate.h"
#include "storage/table.h"

namespace robustmap {

/// How rid streams are turned into table rows — the axis on which the
/// paper's three selection plans differ (Figure 1).
enum class FetchPolicy {
  /// Traditional index scan: fetch each row as its rid arrives, in key
  /// order. Every fetch is effectively a random page read.
  kNaive,
  /// Improved index scan: materialize and sort the rids, then sweep the
  /// table in physical order (skip-sequential I/O, each page touched once).
  kSorted,
  /// System B's variant: collect rids into a bitmap, then sweep ascending.
  /// Sorting is implicit and cheap, at the cost of scanning the bitmap.
  kBitmap,
};

/// Fetches full rows for the rid stream produced by `child`, applying
/// residual predicates after reconstruction.
class FetchOp : public Operator {
 public:
  FetchOp(OperatorPtr child, const Table* table, FetchPolicy policy,
          std::vector<RangePredicate> residual)
      : child_(std::move(child)),
        table_(table),
        policy_(policy),
        residual_(std::move(residual)) {}

  Status Open(RunContext* ctx) override;
  bool Next(RunContext* ctx, Row* out) override;
  void Close(RunContext* ctx) override;
  std::string DebugName() const override;

  uint64_t rows_fetched() const { return rows_fetched_; }

 private:
  /// Blocking preparation for kSorted / kBitmap: drain child, order rids.
  Status Prepare(RunContext* ctx);

  bool NextRid(RunContext* ctx, Rid* rid);

  OperatorPtr child_;
  const Table* table_;
  FetchPolicy policy_;
  std::vector<RangePredicate> residual_;

  // kSorted / kBitmap state.
  std::vector<Rid> rids_;
  size_t rid_pos_ = 0;
  std::vector<uint64_t> bitmap_;
  uint64_t bitmap_bits_ = 0;
  uint64_t bitmap_scan_pos_ = 0;

  uint64_t rows_fetched_ = 0;
};

}  // namespace robustmap

#endif  // ROBUSTMAP_EXEC_FETCH_H_
