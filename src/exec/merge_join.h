#ifndef ROBUSTMAP_EXEC_MERGE_JOIN_H_
#define ROBUSTMAP_EXEC_MERGE_JOIN_H_

#include <vector>

#include "exec/operator.h"

namespace robustmap {

/// Rid-intersection merge join of two index scans.
///
/// This is the paper's "index intersection by merge join": each child emits
/// (covered columns, rid) in key order; both sides are sorted by rid
/// (charging external-sort costs when they exceed work memory) and
/// intersected. The output row carries the union of both sides' covered
/// columns, so a pair of single-column indexes can *cover* a two-column
/// query without fetching (Figures 2 and 5). Cost is symmetric in the two
/// inputs — the symmetry landmark of Figure 5.
class MergeJoinOp : public Operator {
 public:
  MergeJoinOp(OperatorPtr left, OperatorPtr right)
      : left_(std::move(left)), right_(std::move(right)) {}

  Status Open(RunContext* ctx) override;
  bool Next(RunContext* ctx, Row* out) override;
  void Close(RunContext* ctx) override;
  std::string DebugName() const override;

 private:
  Status DrainSorted(RunContext* ctx, Operator* child, std::vector<Row>* out);

  OperatorPtr left_;
  OperatorPtr right_;
  std::vector<Row> left_rows_;
  std::vector<Row> right_rows_;
  size_t li_ = 0;
  size_t ri_ = 0;
};

}  // namespace robustmap

#endif  // ROBUSTMAP_EXEC_MERGE_JOIN_H_
