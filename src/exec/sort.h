#ifndef ROBUSTMAP_EXEC_SORT_H_
#define ROBUSTMAP_EXEC_SORT_H_

#include <cstdint>
#include <vector>

#include "exec/operator.h"

namespace robustmap {

/// How a sort behaves when its input exceeds work memory.
enum class SpillKind {
  /// Memory-adaptive external merge sort: keeps a memory-load resident and
  /// spills only the overflow; I/O grows smoothly with input size.
  kGraceful,
  /// The implementation the paper warns about (§4): one record over memory
  /// and the *entire* input goes to disk — a cost discontinuity.
  kNaive,
};

/// Charges the virtual clock for sorting `n_items` of `item_bytes` each with
/// `memory_bytes` of work memory: n·log2(n) comparisons plus, on overflow,
/// run generation and multiway merge I/O on a scratch extent. Returns the
/// number of temp pages written (== pages read back).
uint64_t ChargeSortCost(RunContext* ctx, uint64_t n_items, uint64_t item_bytes,
                        uint64_t memory_bytes, SpillKind kind);

/// Sort key selector.
struct SortKeySpec {
  enum class Kind { kRid, kColumn } kind = Kind::kRid;
  uint32_t column = 0;
};

/// Blocking sort operator: drains its child, sorts, then streams out.
///
/// Performs a genuine sort of the materialized rows; the time charged to the
/// virtual clock follows the `SpillKind` cost model above, so a `kNaive`
/// sort exhibits the discontinuous robustness map of the paper's §4 while
/// producing identical output to a `kGraceful` one.
class SortOp : public Operator {
 public:
  SortOp(OperatorPtr child, const SortKeySpec& key, SpillKind spill,
         uint64_t item_bytes = 16)
      : child_(std::move(child)),
        key_(key),
        spill_(spill),
        item_bytes_(item_bytes) {}

  Status Open(RunContext* ctx) override;
  bool Next(RunContext* ctx, Row* out) override;
  void Close(RunContext* ctx) override;
  std::string DebugName() const override;

  uint64_t spilled_pages() const { return spilled_pages_; }

 private:
  OperatorPtr child_;
  SortKeySpec key_;
  SpillKind spill_;
  uint64_t item_bytes_;

  std::vector<Row> rows_;
  size_t pos_ = 0;
  uint64_t spilled_pages_ = 0;
};

}  // namespace robustmap

#endif  // ROBUSTMAP_EXEC_SORT_H_
