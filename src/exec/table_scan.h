#ifndef ROBUSTMAP_EXEC_TABLE_SCAN_H_
#define ROBUSTMAP_EXEC_TABLE_SCAN_H_

#include <vector>

#include "exec/operator.h"
#include "exec/predicate.h"
#include "storage/table.h"

namespace robustmap {

/// Full sequential scan of a table with pushed-down predicates.
///
/// Reads every page (ring-buffer style: pages are not admitted to the buffer
/// pool), charges predicate CPU for every row, and emits qualifying rows.
/// Its cost is constant in the selectivity — the flat line of Figure 1.
class TableScanOp : public Operator {
 public:
  TableScanOp(const Table* table, std::vector<RangePredicate> predicates)
      : table_(table), predicates_(std::move(predicates)) {}

  Status Open(RunContext* ctx) override;
  bool Next(RunContext* ctx, Row* out) override;
  void Close(RunContext* ctx) override;
  std::string DebugName() const override;

 private:
  const Table* table_;
  std::vector<RangePredicate> predicates_;

  uint64_t next_page_ = 0;
  std::vector<Row> page_rows_;
  size_t buffered_pos_ = 0;
  std::vector<Row> buffered_;  ///< qualifying rows of the current page
};

}  // namespace robustmap

#endif  // ROBUSTMAP_EXEC_TABLE_SCAN_H_
