#include "exec/sort.h"

#include <algorithm>
#include <cmath>

namespace robustmap {

uint64_t ChargeSortCost(RunContext* ctx, uint64_t n_items, uint64_t item_bytes,
                        uint64_t memory_bytes, SpillKind kind) {
  if (n_items == 0) return 0;
  double n = static_cast<double>(n_items);
  ctx->ChargeCpuOps(static_cast<uint64_t>(n * std::max(1.0, std::log2(n))),
                    ctx->cpu.compare_seconds);

  uint64_t bytes = n_items * item_bytes;
  if (bytes <= memory_bytes) return 0;

  uint64_t page = ctx->device->model().params().page_size_bytes;
  uint64_t spilled_bytes =
      kind == SpillKind::kGraceful ? bytes - memory_bytes : bytes;
  uint64_t spilled_pages = (spilled_bytes + page - 1) / page;
  if (spilled_pages == 0) return 0;

  // Runs are memory-loads; each merge pass has fan-in = one input buffer
  // page per run.
  uint64_t runs = (spilled_bytes + memory_bytes - 1) / memory_bytes;
  if (kind == SpillKind::kGraceful) ++runs;  // plus the resident run
  uint64_t fanin = std::max<uint64_t>(2, memory_bytes / page);
  uint64_t passes = 1;
  for (uint64_t width = fanin; width < runs; width *= fanin) ++passes;

  uint64_t temp = ctx->device->AllocateExtent(spilled_pages);
  for (uint64_t p = 0; p < passes; ++p) {
    ctx->device->WriteRun(temp, spilled_pages);
    ctx->device->ReadRun(temp, spilled_pages);
  }
  return spilled_pages * passes;
}

Status SortOp::Open(RunContext* ctx) {
  rows_.clear();
  pos_ = 0;
  spilled_pages_ = 0;
  RM_RETURN_IF_ERROR(child_->Open(ctx));
  Row r;
  while (child_->Next(ctx, &r)) rows_.push_back(r);
  RM_RETURN_IF_ERROR(child_->status());
  child_->Close(ctx);

  spilled_pages_ = ChargeSortCost(ctx, rows_.size(), item_bytes_,
                                  ctx->sort_memory_bytes, spill_);
  if (key_.kind == SortKeySpec::Kind::kRid) {
    std::sort(rows_.begin(), rows_.end(),
              [](const Row& a, const Row& b) { return a.rid < b.rid; });
  } else {
    uint32_t c = key_.column;
    std::sort(rows_.begin(), rows_.end(), [c](const Row& a, const Row& b) {
      if (a.cols[c] != b.cols[c]) return a.cols[c] < b.cols[c];
      return a.rid < b.rid;
    });
  }
  return Status::OK();
}

bool SortOp::Next(RunContext* ctx, Row* out) {
  (void)ctx;
  if (pos_ >= rows_.size()) return false;
  *out = rows_[pos_++];
  return true;
}

void SortOp::Close(RunContext* ctx) {
  (void)ctx;
  rows_.clear();
  rows_.shrink_to_fit();
}

std::string SortOp::DebugName() const {
  std::string kind = spill_ == SpillKind::kGraceful ? "graceful" : "naive";
  std::string key = key_.kind == SortKeySpec::Kind::kRid
                        ? "rid"
                        : "col" + std::to_string(key_.column);
  return "Sort(" + key + ", " + kind + ") <- " + child_->DebugName();
}

}  // namespace robustmap
