#include "exec/index_scan.h"

#include <cstdio>

namespace robustmap {

Status IndexScanOp::Open(RunContext* ctx) {
  examined_ = 0;
  if (opts_.use_mdam || opts_.filter_k1) {
    if (index_->num_key_columns() != 2) {
      return Status::InvalidArgument(
          "k1 filtering / MDAM requires a two-column index");
    }
  }
  if (opts_.use_mdam) {
    MdamOptions mo;
    mo.k0_lo = opts_.k0_lo;
    mo.k0_hi = opts_.k0_hi;
    mo.k1_lo = opts_.k1_lo;
    mo.k1_hi = opts_.k1_hi;
    mo.k0_domain = opts_.k0_domain;
    mo.k1_domain = opts_.k1_domain;
    mo.mode = opts_.mdam_mode;
    cursor_ = MdamCursor::Create(ctx, index_, mo);
  } else {
    cursor_ = index_->Seek(ctx, opts_.k0_lo, INT64_MIN);
  }
  return Status::OK();
}

bool IndexScanOp::Next(RunContext* ctx, Row* out) {
  while (cursor_ != nullptr && cursor_->Valid()) {
    const IndexEntry& e = cursor_->entry();
    if (e.key0 > opts_.k0_hi) return false;
    ++examined_;
    ctx->ChargeCpuOps(1, ctx->cpu.index_entry_seconds);
    bool match = true;
    if (opts_.filter_k1 && !opts_.use_mdam) {
      match = e.key1 >= opts_.k1_lo && e.key1 <= opts_.k1_hi;
    }
    if (match) {
      out->rid = e.rid;
      out->valid_cols = 0;
      const auto& kc = index_->key_columns();
      out->SetCol(kc[0], e.key0);
      if (kc.size() > 1) out->SetCol(kc[1], e.key1);
      cursor_->Next(ctx);
      return true;
    }
    cursor_->Next(ctx);
  }
  return false;
}

void IndexScanOp::Close(RunContext* ctx) {
  (void)ctx;
  cursor_.reset();
}

std::string IndexScanOp::DebugName() const {
  char buf[160];
  const auto& kc = index_->key_columns();
  if (opts_.use_mdam) {
    std::snprintf(buf, sizeof(buf),
                  "MdamScan(col%u in [%lld,%lld], col%u in [%lld,%lld])",
                  kc[0], static_cast<long long>(opts_.k0_lo),
                  static_cast<long long>(opts_.k0_hi), kc[1],
                  static_cast<long long>(opts_.k1_lo),
                  static_cast<long long>(opts_.k1_hi));
  } else if (opts_.filter_k1) {
    std::snprintf(buf, sizeof(buf),
                  "IndexScan(col%u in [%lld,%lld], filter col%u in "
                  "[%lld,%lld])",
                  kc[0], static_cast<long long>(opts_.k0_lo),
                  static_cast<long long>(opts_.k0_hi), kc[1],
                  static_cast<long long>(opts_.k1_lo),
                  static_cast<long long>(opts_.k1_hi));
  } else {
    std::snprintf(buf, sizeof(buf), "IndexScan(col%u in [%lld,%lld])", kc[0],
                  static_cast<long long>(opts_.k0_lo),
                  static_cast<long long>(opts_.k0_hi));
  }
  return buf;
}

}  // namespace robustmap
