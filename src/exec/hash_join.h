#ifndef ROBUSTMAP_EXEC_HASH_JOIN_H_
#define ROBUSTMAP_EXEC_HASH_JOIN_H_

#include <cstdint>
#include <vector>

#include "exec/operator.h"

namespace robustmap {

/// Open-addressing rid → row-ordinal map (linear probing, power-of-two
/// capacity). A purpose-built table keeps million-row builds fast in wall
/// clock; the *simulated* cost is charged explicitly by the operator.
class RidMap {
 public:
  explicit RidMap(size_t expected);

  /// Inserts rid -> ordinal; keeps the first ordinal on duplicates.
  void Insert(Rid rid, uint32_t ordinal);

  /// Returns the ordinal for rid, or UINT32_MAX if absent.
  uint32_t Find(Rid rid) const;

  size_t size() const { return size_; }

 private:
  size_t Slot(Rid rid) const;

  std::vector<Rid> keys_;
  std::vector<uint32_t> values_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

/// Rid-intersection hash join (build on left child, probe with right).
///
/// When the build side exceeds `hash_memory_bytes` the operator charges
/// Grace-style partitioning I/O: both inputs are written to scratch
/// partitions and read back, once per recursion level. Unlike the merge
/// join, cost is *asymmetric* in the two inputs — the paper's observation
/// that "hash join plans perform better in some cases but do not exhibit
/// this symmetry" (§3.2, citing [GLS94]).
class HashJoinOp : public Operator {
 public:
  HashJoinOp(OperatorPtr build, OperatorPtr probe)
      : build_(std::move(build)), probe_(std::move(probe)) {}

  Status Open(RunContext* ctx) override;
  bool Next(RunContext* ctx, Row* out) override;
  void Close(RunContext* ctx) override;
  std::string DebugName() const override;

  uint64_t partition_pages_written() const { return partition_pages_; }

 private:
  OperatorPtr build_;
  OperatorPtr probe_;

  std::vector<Row> build_rows_;
  std::unique_ptr<RidMap> map_;
  bool probe_open_ = false;
  std::vector<Row> materialized_probe_;  ///< used only after a Grace spill
  size_t probe_pos_ = 0;
  uint64_t partition_pages_ = 0;
};

}  // namespace robustmap

#endif  // ROBUSTMAP_EXEC_HASH_JOIN_H_
