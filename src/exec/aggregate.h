#ifndef ROBUSTMAP_EXEC_AGGREGATE_H_
#define ROBUSTMAP_EXEC_AGGREGATE_H_

#include <unordered_map>
#include <vector>

#include "exec/operator.h"

namespace robustmap {

/// Column ordinal that receives aggregate results in output rows.
inline constexpr uint32_t kAggResultColumn = kMaxColumns - 1;

/// Hash aggregation: GROUP BY one column, COUNT(*) per group.
///
/// Output rows carry the group value in `cols[group_column]` and the count
/// in `cols[kAggResultColumn]`. When the group table exceeds hash work
/// memory the operator charges partition-spill I/O (write + re-read of the
/// input), the standard graceful-degradation strategy for hash aggregation.
class HashAggregateOp : public Operator {
 public:
  HashAggregateOp(OperatorPtr child, uint32_t group_column)
      : child_(std::move(child)), group_column_(group_column) {}

  Status Open(RunContext* ctx) override;
  bool Next(RunContext* ctx, Row* out) override;
  void Close(RunContext* ctx) override;
  std::string DebugName() const override;

  uint64_t spill_pages() const { return spill_pages_; }

 private:
  OperatorPtr child_;
  uint32_t group_column_;

  std::vector<std::pair<int64_t, uint64_t>> groups_;  ///< sorted output
  size_t pos_ = 0;
  uint64_t spill_pages_ = 0;
};

}  // namespace robustmap

#endif  // ROBUSTMAP_EXEC_AGGREGATE_H_
