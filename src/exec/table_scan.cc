#include "exec/table_scan.h"

namespace robustmap {

Status TableScanOp::Open(RunContext* ctx) {
  (void)ctx;
  next_page_ = 0;
  buffered_.clear();
  buffered_pos_ = 0;
  return Status::OK();
}

bool TableScanOp::Next(RunContext* ctx, Row* out) {
  for (;;) {
    if (buffered_pos_ < buffered_.size()) {
      *out = buffered_[buffered_pos_++];
      return true;
    }
    if (next_page_ >= table_->num_pages()) return false;
    buffered_.clear();
    buffered_pos_ = 0;
    page_rows_.clear();
    Status s = table_->ReadPage(ctx, next_page_, /*cacheable=*/false,
                                &page_rows_);
    if (!s.ok()) {
      status_ = s;
      return false;
    }
    ++next_page_;
    for (const Row& r : page_rows_) {
      if (EvalPredicates(ctx, predicates_, r)) buffered_.push_back(r);
    }
  }
}

void TableScanOp::Close(RunContext* ctx) {
  (void)ctx;
  buffered_.clear();
  page_rows_.clear();
}

std::string TableScanOp::DebugName() const {
  std::string name = "TableScan(";
  for (size_t i = 0; i < predicates_.size(); ++i) {
    if (i > 0) name += " AND ";
    name += predicates_[i].ToString();
  }
  name += ")";
  return name;
}

}  // namespace robustmap
