#ifndef ROBUSTMAP_EXEC_PREDICATE_H_
#define ROBUSTMAP_EXEC_PREDICATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "io/run_context.h"
#include "storage/row.h"

namespace robustmap {

/// Inclusive range predicate `lo <= col <= hi` on one column.
/// All the paper's experiments use range predicates whose width controls
/// selectivity; equality is the special case lo == hi.
struct RangePredicate {
  uint32_t column = 0;
  int64_t lo = 0;
  int64_t hi = 0;

  bool Matches(int64_t v) const { return v >= lo && v <= hi; }
  std::string ToString() const;
};

/// Evaluates all predicates against `row`, charging per-predicate CPU.
/// Returns true if every predicate matches.
bool EvalPredicates(RunContext* ctx, const std::vector<RangePredicate>& preds,
                    const Row& row);

}  // namespace robustmap

#endif  // ROBUSTMAP_EXEC_PREDICATE_H_
