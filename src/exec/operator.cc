#include "exec/operator.h"

namespace robustmap {

Result<uint64_t> DrainCount(RunContext* ctx, Operator* op) {
  RM_RETURN_IF_ERROR(op->Open(ctx));
  uint64_t count = 0;
  Row row;
  while (op->Next(ctx, &row)) ++count;
  RM_RETURN_IF_ERROR(op->status());
  op->Close(ctx);
  return count;
}

}  // namespace robustmap
