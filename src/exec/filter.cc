#include "exec/filter.h"

namespace robustmap {

std::string FilterOp::DebugName() const {
  std::string name = "Filter(";
  for (size_t i = 0; i < predicates_.size(); ++i) {
    if (i > 0) name += " AND ";
    name += predicates_[i].ToString();
  }
  return name + ") <- " + child_->DebugName();
}

}  // namespace robustmap
