#include "exec/aggregate.h"

#include <algorithm>

namespace robustmap {

Status HashAggregateOp::Open(RunContext* ctx) {
  groups_.clear();
  pos_ = 0;
  spill_pages_ = 0;

  RM_RETURN_IF_ERROR(child_->Open(ctx));
  std::unordered_map<int64_t, uint64_t> counts;
  Row r;
  uint64_t input_rows = 0;
  while (child_->Next(ctx, &r)) {
    ++input_rows;
    ctx->ChargeCpuOps(1, ctx->cpu.hash_seconds);
    if (!r.HasCol(group_column_)) {
      status_ = Status::InvalidArgument("group column not populated");
      return status_;
    }
    ++counts[r.cols[group_column_]];
  }
  RM_RETURN_IF_ERROR(child_->status());
  child_->Close(ctx);

  constexpr uint64_t kGroupBytes = 16;
  uint64_t table_bytes = counts.size() * kGroupBytes;
  if (table_bytes > ctx->hash_memory_bytes && input_rows > 0) {
    // Partition spill: write the input once, read it back, then aggregate
    // partition by partition in memory.
    uint64_t page = ctx->device->model().params().page_size_bytes;
    constexpr uint64_t kRowBytes = 16;
    uint64_t pages = (input_rows * kRowBytes + page - 1) / page;
    uint64_t temp = ctx->device->AllocateExtent(pages);
    ctx->device->WriteRun(temp, pages);
    ctx->device->ReadRun(temp, pages);
    spill_pages_ = pages;
  }

  // determinism-lint: allow(unordered-iteration) copy is sorted just below
  groups_.assign(counts.begin(), counts.end());
  std::sort(groups_.begin(), groups_.end());
  return Status::OK();
}

bool HashAggregateOp::Next(RunContext* ctx, Row* out) {
  (void)ctx;
  if (pos_ >= groups_.size()) return false;
  out->rid = kInvalidRid;
  out->valid_cols = 0;
  out->SetCol(group_column_, groups_[pos_].first);
  out->SetCol(kAggResultColumn, static_cast<int64_t>(groups_[pos_].second));
  ++pos_;
  return true;
}

void HashAggregateOp::Close(RunContext* ctx) {
  (void)ctx;
  groups_.clear();
  groups_.shrink_to_fit();
}

std::string HashAggregateOp::DebugName() const {
  return "HashAggregate(group by col" + std::to_string(group_column_) +
         ", count) <- " + child_->DebugName();
}

}  // namespace robustmap
