#include "exec/hash_join.h"

#include <cmath>

#include "common/rng.h"

namespace robustmap {

namespace {
// Merges build-side columns into a probe-side row.
void MergeInto(const Row& build, Row* out) {
  for (uint32_t c = 0; c < kMaxColumns; ++c) {
    if (build.HasCol(c)) out->SetCol(c, build.cols[c]);
  }
}
}  // namespace

RidMap::RidMap(size_t expected) {
  size_t cap = 16;
  while (cap < expected * 2) cap <<= 1;
  keys_.assign(cap, kInvalidRid);
  values_.assign(cap, UINT32_MAX);
  mask_ = cap - 1;
}

size_t RidMap::Slot(Rid rid) const { return Mix64(rid) & mask_; }

void RidMap::Insert(Rid rid, uint32_t ordinal) {
  size_t slot = Slot(rid);
  while (keys_[slot] != kInvalidRid) {
    if (keys_[slot] == rid) return;
    slot = (slot + 1) & mask_;
  }
  keys_[slot] = rid;
  values_[slot] = ordinal;
  ++size_;
}

uint32_t RidMap::Find(Rid rid) const {
  size_t slot = Slot(rid);
  while (keys_[slot] != kInvalidRid) {
    if (keys_[slot] == rid) return values_[slot];
    slot = (slot + 1) & mask_;
  }
  return UINT32_MAX;
}

Status HashJoinOp::Open(RunContext* ctx) {
  build_rows_.clear();
  partition_pages_ = 0;

  RM_RETURN_IF_ERROR(build_->Open(ctx));
  Row r;
  while (build_->Next(ctx, &r)) build_rows_.push_back(r);
  RM_RETURN_IF_ERROR(build_->status());
  build_->Close(ctx);

  constexpr uint64_t kRowBytes = 16;
  uint64_t build_bytes = build_rows_.size() * kRowBytes;
  ctx->ChargeCpuOps(build_rows_.size(), ctx->cpu.hash_seconds);

  if (build_bytes > ctx->hash_memory_bytes) {
    // Grace partitioning: both inputs are written out and read back once per
    // recursion level before any joining happens. The probe side must be
    // fully consumed to know its volume — exactly why an oversized build
    // side hurts so much more than an oversized probe side.
    std::vector<Row> probe_rows;
    RM_RETURN_IF_ERROR(probe_->Open(ctx));
    while (probe_->Next(ctx, &r)) probe_rows.push_back(r);
    RM_RETURN_IF_ERROR(probe_->status());
    probe_->Close(ctx);
    ctx->ChargeCpuOps(probe_rows.size(), ctx->cpu.hash_seconds);

    uint64_t page = ctx->device->model().params().page_size_bytes;
    uint64_t fanout = std::max<uint64_t>(2, ctx->hash_memory_bytes / page);
    uint64_t levels = 0;
    for (uint64_t b = build_bytes; b > ctx->hash_memory_bytes; b /= fanout) {
      ++levels;
    }
    uint64_t probe_bytes = probe_rows.size() * kRowBytes;
    uint64_t pages = (build_bytes + probe_bytes + page - 1) / page *
                     std::max<uint64_t>(1, levels);
    if (pages > 0) {
      uint64_t temp = ctx->device->AllocateExtent(pages);
      ctx->device->WriteRun(temp, pages);
      ctx->device->ReadRun(temp, pages);
      partition_pages_ = pages;
    }
    // After partitioning, per-partition joins proceed in memory. We keep the
    // materialized probe and intersect below.
    materialized_probe_ = std::move(probe_rows);
    probe_pos_ = 0;
    probe_open_ = false;
  } else {
    RM_RETURN_IF_ERROR(probe_->Open(ctx));
    probe_open_ = true;
  }

  map_ = std::make_unique<RidMap>(build_rows_.size());
  for (uint32_t i = 0; i < build_rows_.size(); ++i) {
    map_->Insert(build_rows_[i].rid, i);
  }
  return Status::OK();
}

bool HashJoinOp::Next(RunContext* ctx, Row* out) {
  if (probe_open_) {
    Row r;
    while (probe_->Next(ctx, &r)) {
      ctx->ChargeCpuOps(1, ctx->cpu.hash_seconds);
      uint32_t hit = map_->Find(r.rid);
      if (hit != UINT32_MAX) {
        *out = r;
        MergeInto(build_rows_[hit], out);
        ctx->ChargeCpuOps(1, ctx->cpu.copy_row_seconds);
        return true;
      }
    }
    status_ = probe_->status();
    return false;
  }
  while (probe_pos_ < materialized_probe_.size()) {
    const Row& r = materialized_probe_[probe_pos_++];
    ctx->ChargeCpuOps(1, ctx->cpu.hash_seconds);
    uint32_t hit = map_->Find(r.rid);
    if (hit != UINT32_MAX) {
      *out = r;
      MergeInto(build_rows_[hit], out);
      ctx->ChargeCpuOps(1, ctx->cpu.copy_row_seconds);
      return true;
    }
  }
  return false;
}

void HashJoinOp::Close(RunContext* ctx) {
  if (probe_open_) probe_->Close(ctx);
  probe_open_ = false;
  build_rows_.clear();
  build_rows_.shrink_to_fit();
  materialized_probe_.clear();
  materialized_probe_.shrink_to_fit();
  map_.reset();
}

std::string HashJoinOp::DebugName() const {
  return "HashJoin(build " + build_->DebugName() + ", probe " +
         probe_->DebugName() + ")";
}

}  // namespace robustmap
