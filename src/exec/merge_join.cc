#include "exec/merge_join.h"

#include <algorithm>

#include "exec/sort.h"

namespace robustmap {

Status MergeJoinOp::DrainSorted(RunContext* ctx, Operator* child,
                                std::vector<Row>* out) {
  RM_RETURN_IF_ERROR(child->Open(ctx));
  Row r;
  while (child->Next(ctx, &r)) out->push_back(r);
  RM_RETURN_IF_ERROR(child->status());
  child->Close(ctx);
  ChargeSortCost(ctx, out->size(), /*item_bytes=*/16, ctx->sort_memory_bytes,
                 SpillKind::kGraceful);
  std::sort(out->begin(), out->end(),
            [](const Row& a, const Row& b) { return a.rid < b.rid; });
  return Status::OK();
}

Status MergeJoinOp::Open(RunContext* ctx) {
  left_rows_.clear();
  right_rows_.clear();
  li_ = ri_ = 0;
  RM_RETURN_IF_ERROR(DrainSorted(ctx, left_.get(), &left_rows_));
  RM_RETURN_IF_ERROR(DrainSorted(ctx, right_.get(), &right_rows_));
  return Status::OK();
}

bool MergeJoinOp::Next(RunContext* ctx, Row* out) {
  while (li_ < left_rows_.size() && ri_ < right_rows_.size()) {
    const Row& l = left_rows_[li_];
    const Row& r = right_rows_[ri_];
    ctx->ChargeCpuOps(1, ctx->cpu.compare_seconds);
    if (l.rid < r.rid) {
      ++li_;
    } else if (r.rid < l.rid) {
      ++ri_;
    } else {
      *out = l;
      for (uint32_t c = 0; c < kMaxColumns; ++c) {
        if (r.HasCol(c)) out->SetCol(c, r.cols[c]);
      }
      ctx->ChargeCpuOps(1, ctx->cpu.copy_row_seconds);
      ++li_;
      ++ri_;
      return true;
    }
  }
  return false;
}

void MergeJoinOp::Close(RunContext* ctx) {
  (void)ctx;
  left_rows_.clear();
  left_rows_.shrink_to_fit();
  right_rows_.clear();
  right_rows_.shrink_to_fit();
}

std::string MergeJoinOp::DebugName() const {
  return "MergeJoin(" + left_->DebugName() + ", " + right_->DebugName() + ")";
}

}  // namespace robustmap
