#ifndef ROBUSTMAP_EXEC_BITMAP_OPS_H_
#define ROBUSTMAP_EXEC_BITMAP_OPS_H_

#include <vector>

#include "exec/operator.h"

namespace robustmap {

/// Bitmap AND of two rid streams (System B's index intersection).
///
/// Each child's rids are inserted into a bitmap over [0, table_rows); the
/// bitmaps are ANDed word-wise and surviving rids stream out in ascending
/// order — no sort, unlike the merge join, but a full bitmap scan
/// regardless of result size. Column values are lost (only rids survive);
/// System B fetches rows afterwards anyway, which is exactly why it can use
/// this operator where Systems A/C need covering joins.
class BitmapAndOp : public Operator {
 public:
  BitmapAndOp(OperatorPtr left, OperatorPtr right, uint64_t table_rows)
      : left_(std::move(left)),
        right_(std::move(right)),
        table_rows_(table_rows) {}

  Status Open(RunContext* ctx) override;
  bool Next(RunContext* ctx, Row* out) override;
  void Close(RunContext* ctx) override;
  std::string DebugName() const override;

 private:
  Status FillBitmap(RunContext* ctx, Operator* child,
                    std::vector<uint64_t>* bits);

  OperatorPtr left_;
  OperatorPtr right_;
  uint64_t table_rows_;
  std::vector<uint64_t> bits_;
  uint64_t scan_pos_ = 0;
};

}  // namespace robustmap

#endif  // ROBUSTMAP_EXEC_BITMAP_OPS_H_
