#include "core/optimality.h"

#include <cassert>

namespace robustmap {

OptimalityMap ComputeOptimality(const RobustnessMap& map, ToleranceSpec tol) {
  assert(map.num_plans() <= 32);
  RelativeMap rel = ComputeRelative(map);
  OptimalityMap opt;
  opt.space = map.space();
  opt.plan_labels = map.plan_labels();
  opt.tolerance = tol;
  size_t points = map.space().num_points();
  opt.counts.assign(points, 0);
  opt.masks.assign(points, 0);
  opt.best_plan = rel.best_plan;
  for (size_t pt = 0; pt < points; ++pt) {
    double limit = rel.best_seconds[pt] * tol.rel_factor + tol.abs_seconds;
    for (size_t pl = 0; pl < map.num_plans(); ++pl) {
      if (map.At(pl, pt).seconds <= limit) {
        ++opt.counts[pt];
        opt.masks[pt] |= (1u << pl);
      }
    }
  }
  return opt;
}

std::vector<bool> OptimalRegionOf(const OptimalityMap& opt, size_t plan) {
  std::vector<bool> member(opt.masks.size());
  for (size_t pt = 0; pt < opt.masks.size(); ++pt) {
    member[pt] = (opt.masks[pt] >> plan) & 1u;
  }
  return member;
}

std::vector<size_t> PlansNeverOptimal(const OptimalityMap& opt) {
  std::vector<size_t> out;
  for (size_t pl = 0; pl < opt.plan_labels.size(); ++pl) {
    bool ever = false;
    for (uint32_t mask : opt.masks) {
      if ((mask >> pl) & 1u) {
        ever = true;
        break;
      }
    }
    if (!ever) out.push_back(pl);
  }
  return out;
}

}  // namespace robustmap
