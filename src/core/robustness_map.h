#ifndef ROBUSTMAP_CORE_ROBUSTNESS_MAP_H_
#define ROBUSTMAP_CORE_ROBUSTNESS_MAP_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/parameter_space.h"
#include "engine/executor.h"

namespace robustmap {

/// The central data structure of the paper: measured run-time performance
/// of a set of fixed plans over a 1-D or 2-D space of run-time conditions.
class RobustnessMap {
 public:
  RobustnessMap(ParameterSpace space, std::vector<std::string> plan_labels);

  const ParameterSpace& space() const { return space_; }
  size_t num_plans() const { return plan_labels_.size(); }
  const std::vector<std::string>& plan_labels() const { return plan_labels_; }
  const std::string& plan_label(size_t plan) const {
    return plan_labels_[plan];
  }

  void Set(size_t plan, size_t point, Measurement m);
  const Measurement& At(size_t plan, size_t point) const;
  const Measurement& AtXY(size_t plan, size_t xi, size_t yi) const {
    return At(plan, space_.IndexOf(xi, yi));
  }

  /// The cost surface of one plan as a flat grid of seconds.
  std::vector<double> SecondsOfPlan(size_t plan) const;

  /// Index of the plan with the given label.
  Result<size_t> PlanIndexOf(const std::string& label) const;

 private:
  ParameterSpace space_;
  std::vector<std::string> plan_labels_;
  std::vector<std::vector<Measurement>> data_;  ///< [plan][point]
};

}  // namespace robustmap

#endif  // ROBUSTMAP_CORE_ROBUSTNESS_MAP_H_
