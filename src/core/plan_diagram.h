#ifndef ROBUSTMAP_CORE_PLAN_DIAGRAM_H_
#define ROBUSTMAP_CORE_PLAN_DIAGRAM_H_

#include <string>
#include <vector>

#include "core/optimality.h"
#include "core/regions.h"
#include "core/robustness_map.h"

namespace robustmap {

/// §3.4 "Mapping regions of optimality": one map with the best plan for
/// each point and region of the parameter space — the run-time analogue of
/// Picasso-style optimizer plan diagrams [RH05], built from *measured*
/// costs instead of optimizer estimates.
struct PlanDiagram {
  ParameterSpace space;
  std::vector<std::string> plan_labels;
  /// Strict argmin plan per point.
  std::vector<size_t> best_plan;
  /// Number of plans within tolerance per point (ties make single-color
  /// diagrams ill-defined — the paper's Figure 10 problem).
  std::vector<int> ties;
  /// Plans that win at least one point, in decreasing order of region size.
  std::vector<size_t> winners;
  /// Cells won per plan (same indexing as plan_labels).
  std::vector<size_t> cells_won;
  /// Connected-component stats of each winner's argmin region.
  std::vector<RegionStats> winner_regions;
};

/// Builds the diagram from a measured map.
PlanDiagram ComputePlanDiagram(const RobustnessMap& map,
                               const ToleranceSpec& tol = {0.0, 1.0});

/// Renders the diagram as a glyph grid (one letter per winning plan) with a
/// legend. 2-D spaces render as a map; 1-D as a single row.
std::string RenderPlanDiagram(const PlanDiagram& diagram);

/// §3.4: "explore alternative plans in the order of region sizes. This
/// heuristic might find a good cost bound quickly such that branch-and-bound
/// ... can reduce the overall query optimization effort." Returns plan
/// indexes in that recommended order (winners by region size, then the
/// rest).
std::vector<size_t> RegionSizeSearchOrder(const PlanDiagram& diagram);

}  // namespace robustmap

#endif  // ROBUSTMAP_CORE_PLAN_DIAGRAM_H_
