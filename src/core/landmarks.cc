#include "core/landmarks.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace robustmap {

CurveLandmarks AnalyzeCurve(const std::vector<double>& xs,
                            const std::vector<double>& costs,
                            const LandmarkOptions& opts) {
  assert(xs.size() == costs.size());
  CurveLandmarks out;
  size_t n = xs.size();
  if (n < 2) return out;

  for (size_t i = 0; i + 1 < n; ++i) {
    if (costs[i + 1] < costs[i] * (1.0 - opts.monotonicity_slack)) {
      out.monotonicity_violations.push_back(
          {i, xs[i], xs[i + 1], costs[i], costs[i + 1]});
    }
    if (costs[i + 1] >= costs[i] * opts.discontinuity_ratio && costs[i] > 0) {
      out.discontinuities.push_back(
          {i, xs[i], xs[i + 1], costs[i + 1] / costs[i]});
    }
  }

  // Marginal cost per segment; flag segments whose marginal cost exceeds
  // the smallest earlier marginal cost by more than the margin. Near-zero
  // early marginals are clamped up to a floor so that any real growth after
  // a flat stretch still registers.
  auto slope = [&](size_t i) {
    return (costs[i + 1] - costs[i]) / (xs[i + 1] - xs[i]);
  };
  double span = xs.back() - xs.front();
  double cmax = *std::max_element(costs.begin(), costs.end());
  double flat_floor =
      span > 0 ? opts.steepening_flat_floor * cmax / span : 0;
  double min_slope = std::max(slope(0), flat_floor);
  for (size_t i = 1; i + 1 < n; ++i) {
    double s = slope(i);
    if (s > min_slope * (1.0 + opts.steepening_margin)) {
      out.steepening_points.push_back({i, min_slope, s});
    }
    min_slope = std::min(min_slope, std::max(s, flat_floor));
  }
  return out;
}

SymmetryScore ComputeSymmetry(const ParameterSpace& space,
                              const std::vector<double>& grid) {
  SymmetryScore score;
  if (!space.is_2d() || space.x_size() != space.y_size()) return score;
  size_t n = space.x_size();
  double sum = 0;
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double a = grid[space.IndexOf(i, j)];
      double b = grid[space.IndexOf(j, i)];
      if (a <= 0 || b <= 0) continue;
      double d = std::fabs(std::log2(a / b));
      score.max_abs_log2_ratio = std::max(score.max_abs_log2_ratio, d);
      sum += d;
      ++count;
    }
  }
  if (count > 0) score.mean_abs_log2_ratio = sum / static_cast<double>(count);
  return score;
}

}  // namespace robustmap
