#include "core/parameter_space.h"

#include <cassert>

#include "common/math_util.h"

namespace robustmap {

Axis Axis::Selectivity(const std::string& name, int min_log2, int max_log2) {
  return Axis{name, Log2Grid(min_log2, max_log2)};
}

Axis Axis::SelectivityFine(const std::string& name, int min_log2,
                           int max_log2, int steps_per_octave) {
  return Axis{name, Log2GridFine(min_log2, max_log2, steps_per_octave)};
}

ParameterSpace ParameterSpace::OneD(Axis x) {
  assert(!x.values.empty());
  ParameterSpace s;
  s.is_2d_ = false;
  s.x_ = std::move(x);
  return s;
}

ParameterSpace ParameterSpace::TwoD(Axis x, Axis y) {
  assert(!x.values.empty() && !y.values.empty());
  ParameterSpace s;
  s.is_2d_ = true;
  s.x_ = std::move(x);
  s.y_ = std::move(y);
  return s;
}

namespace {

Axis SubsampleAxis(const Axis& axis, size_t stride) {
  Axis out;
  out.name = axis.name;
  for (size_t i = 0; i < axis.values.size(); i += stride) {
    out.values.push_back(axis.values[i]);
  }
  return out;
}

}  // namespace

ParameterSpace SubsampleSpace(const ParameterSpace& space, size_t stride) {
  assert(stride >= 1);
  if (stride <= 1) return space;
  if (!space.is_2d()) {
    return ParameterSpace::OneD(SubsampleAxis(space.x(), stride));
  }
  return ParameterSpace::TwoD(SubsampleAxis(space.x(), stride),
                              SubsampleAxis(space.y(), stride));
}

}  // namespace robustmap
