#include "core/parameter_space.h"

#include <cassert>

#include "common/math_util.h"

namespace robustmap {

Axis Axis::Selectivity(const std::string& name, int min_log2, int max_log2) {
  return Axis{name, Log2Grid(min_log2, max_log2)};
}

Axis Axis::SelectivityFine(const std::string& name, int min_log2,
                           int max_log2, int steps_per_octave) {
  return Axis{name, Log2GridFine(min_log2, max_log2, steps_per_octave)};
}

ParameterSpace ParameterSpace::OneD(Axis x) {
  assert(!x.values.empty());
  ParameterSpace s;
  s.is_2d_ = false;
  s.x_ = std::move(x);
  return s;
}

ParameterSpace ParameterSpace::TwoD(Axis x, Axis y) {
  assert(!x.values.empty() && !y.values.empty());
  ParameterSpace s;
  s.is_2d_ = true;
  s.x_ = std::move(x);
  s.y_ = std::move(y);
  return s;
}

}  // namespace robustmap
