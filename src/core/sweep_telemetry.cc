#include "core/sweep_telemetry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/minijson.h"

namespace robustmap {

namespace {

/// %.17g round-trips every double exactly, keeping the file deterministic
/// for equal measured values without dragging 17 digits through the
/// common all-integer case.
std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest representation that still parses back equal.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[40];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, v);
    double back = 0;
    std::sscanf(shorter, "%lf", &back);
    if (back == v) return shorter;
  }
  return buf;
}

Result<LatencyHistogram> HistogramFromJson(const std::string& path,
                                           const std::string& name,
                                           const JsonValue& h) {
  const auto fail = [&](const std::string& what) {
    return Status::Corruption(path + ": histogram '" + name + "' " + what);
  };
  if (!h.is_object()) return fail("is not an object");
  const JsonValue* buckets = h.Find("buckets");
  const JsonValue* count = h.Find("count");
  const JsonValue* sum = h.Find("sum_seconds");
  if (buckets == nullptr || !buckets->is_array() || count == nullptr ||
      !count->is_number() || sum == nullptr || !sum->is_number()) {
    return fail("is missing buckets/count/sum_seconds");
  }
  LatencyHistogram out;
  if (buckets->items().size() != out.buckets.size()) {
    return fail("has " + std::to_string(buckets->items().size()) +
                " buckets (want " + std::to_string(out.buckets.size()) +
                "; the bucket ladder is fixed so merges never rebin)");
  }
  for (size_t i = 0; i < out.buckets.size(); ++i) {
    const JsonValue& b = buckets->items()[i];
    if (!b.is_number()) return fail("has a non-numeric bucket");
    out.buckets[i] = static_cast<uint64_t>(b.number_value());
  }
  out.count = static_cast<uint64_t>(count->number_value());
  out.sum_seconds = sum->number_value();
  if (const JsonValue* v = h.Find("min_seconds"); v && v->is_number()) {
    out.min_seconds = v->number_value();
  }
  if (const JsonValue* v = h.Find("max_seconds"); v && v->is_number()) {
    out.max_seconds = v->number_value();
  }
  return out;
}

}  // namespace

const std::vector<double>& LatencyHistogram::Bounds() {
  // The 1-2-5 ladder, 1 µs .. 100 s. Static-local so the vector is built
  // once; the bounds are part of the file format (see HistogramFromJson).
  static const std::vector<double>* bounds = [] {
    auto* b = new std::vector<double>();
    for (int decade = -6; decade <= 1; ++decade) {
      for (const double mantissa : {1.0, 2.0, 5.0}) {
        b->push_back(mantissa * std::pow(10.0, decade));
      }
    }
    b->push_back(1e2);
    return b;
  }();
  return *bounds;
}

LatencyHistogram::LatencyHistogram() : buckets(Bounds().size() + 1, 0) {}

void LatencyHistogram::Record(double seconds) {
  const std::vector<double>& bounds = Bounds();
  const auto it =
      std::lower_bound(bounds.begin(), bounds.end(), seconds);
  const size_t bucket = static_cast<size_t>(it - bounds.begin());
  ++buckets[bucket];  // bounds.size() == the overflow slot
  if (count == 0 || seconds < min_seconds) min_seconds = seconds;
  if (count == 0 || seconds > max_seconds) max_seconds = seconds;
  ++count;
  sum_seconds += seconds;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (size_t i = 0; i < buckets.size(); ++i) buckets[i] += other.buckets[i];
  if (other.count > 0) {
    if (count == 0 || other.min_seconds < min_seconds) {
      min_seconds = other.min_seconds;
    }
    if (count == 0 || other.max_seconds > max_seconds) {
      max_seconds = other.max_seconds;
    }
  }
  count += other.count;
  sum_seconds += other.sum_seconds;
}

SweepTelemetry& SweepTelemetry::Get() {
  // Leaked, same as Tracer: record calls may arrive from detached-thread
  // teardown paths after main returns.
  static SweepTelemetry* sink = new SweepTelemetry();
  return *sink;
}

void SweepTelemetry::AddCounter(const std::string& name, uint64_t delta) {
  if (!enabled()) return;
  MutexLock lock(&mu_);
  counters_[name] += delta;
}

void SweepTelemetry::RecordLatency(const std::string& name, double seconds) {
  if (!enabled()) return;
  MutexLock lock(&mu_);
  histograms_[name].Record(seconds);
}

void SweepTelemetry::Reset() {
  MutexLock lock(&mu_);
  counters_.clear();
  histograms_.clear();
}

Status SweepTelemetry::WriteFile(const std::string& path) const {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, LatencyHistogram> histograms;
  {
    MutexLock lock(&mu_);
    counters = counters_;
    histograms = histograms_;
  }
  // std::map iteration gives the deterministic key order the format
  // promises: equal measurements serialize to equal bytes.
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(name) + "\": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(name) + "\": {\n";
    out += "      \"count\": " + std::to_string(h.count) + ",\n";
    out += "      \"sum_seconds\": " + FormatDouble(h.sum_seconds) + ",\n";
    out += "      \"min_seconds\": " + FormatDouble(h.min_seconds) + ",\n";
    out += "      \"max_seconds\": " + FormatDouble(h.max_seconds) + ",\n";
    out += "      \"bounds_seconds\": [";
    for (size_t i = 0; i < LatencyHistogram::Bounds().size(); ++i) {
      if (i != 0) out += ',';
      out += FormatDouble(LatencyHistogram::Bounds()[i]);
    }
    out += "],\n      \"buckets\": [";
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      if (i != 0) out += ',';
      out += std::to_string(h.buckets[i]);
    }
    out += "]\n    }";
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  std::ofstream f(path, std::ios::trunc | std::ios::binary);
  if (!f.is_open()) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  f << out;
  f.flush();
  if (!f.good()) return Status::Internal("error writing " + path);
  return Status::OK();
}

Status SweepTelemetry::MergeFromFile(const std::string& path) {
  auto data = ReadTelemetryFile(path);
  RM_RETURN_IF_ERROR(data.status());
  MutexLock lock(&mu_);
  for (const auto& [name, value] : data.value().counters) {
    counters_[name] += value;
  }
  for (const auto& [name, h] : data.value().histograms) {
    histograms_[name].Merge(h);
  }
  return Status::OK();
}

std::map<std::string, uint64_t> SweepTelemetry::Counters() const {
  MutexLock lock(&mu_);
  return counters_;
}

std::map<std::string, LatencyHistogram> SweepTelemetry::Histograms() const {
  MutexLock lock(&mu_);
  return histograms_;
}

Result<TelemetryData> ReadTelemetryFile(const std::string& path) {
  auto doc = ParseJsonFile(path);
  RM_RETURN_IF_ERROR(doc.status());
  if (!doc.value().is_object()) {
    return Status::Corruption(path + ": telemetry root is not an object");
  }
  TelemetryData out;
  if (const JsonValue* counters = doc.value().Find("counters")) {
    if (!counters->is_object()) {
      return Status::Corruption(path + ": counters is not an object");
    }
    for (const auto& [name, value] : counters->members()) {
      if (!value.is_number()) {
        return Status::Corruption(path + ": counter '" + name +
                                  "' is not a number");
      }
      out.counters[name] = static_cast<uint64_t>(value.number_value());
    }
  }
  if (const JsonValue* histograms = doc.value().Find("histograms")) {
    if (!histograms->is_object()) {
      return Status::Corruption(path + ": histograms is not an object");
    }
    for (const auto& [name, h] : histograms->members()) {
      auto parsed = HistogramFromJson(path, name, h);
      RM_RETURN_IF_ERROR(parsed.status());
      out.histograms[name] = std::move(parsed).value();
    }
  }
  return out;
}

}  // namespace robustmap
