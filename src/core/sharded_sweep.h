#ifndef ROBUSTMAP_CORE_SHARDED_SWEEP_H_
#define ROBUSTMAP_CORE_SHARDED_SWEEP_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/map_io.h"
#include "core/shard_planner.h"
#include "core/sweep.h"
#include "core/sweep_cost.h"
#include "core/sweep_engine.h"

namespace robustmap {

// `ShardedSweepOptions` and `ShardedSweepStats` live in core/sweep_engine.h
// (the sharded-process backend is one axis of the engine); this header
// keeps the worker-side helpers and the legacy coordinator entry point.

/// Checkpoint file name for a shard, e.g. "tile_0007.rmt".
std::string TileFileName(size_t shard_id);

/// Sidecar file a failed worker leaves its Status message in — the one
/// channel an exit code cannot carry across the process boundary. Part of
/// the worker contract: coordinators read it back, so workers (including
/// external `sweep_worker` binaries) must write exactly this path.
std::string TileErrFileName(const std::string& tile_path);

/// Writes the sidecar (overwriting any stale one) — the one writer both
/// the built-in workers and external worker binaries share.
void WriteTileErrFile(const std::string& tile_path, const Status& s);

/// mkdir -p: creates `path` and any missing parents, tolerating ones that
/// already exist.
Status EnsureDirectory(const std::string& path);

/// Computes one tile — `study` restricted to the tile's rectangle, run
/// through `SweepEngine::Run` on the in-process backend `sweep_opts`
/// selects — and writes it atomically to `path`: one cell layer per study
/// output (named per `StudyLayerNames`), stamping the sweep's wall-clock
/// seconds into the tile's metadata (the measured-cost feedback later
/// runs reschedule from). The body of both worker modes and of the
/// `sweep_worker` executable. `warm_policy` is the warm layer's policy for
/// `kWarmColdDelta` and ignored for plain tiles (which sweep under
/// `ctx->warmup`, as always). A non-null `cell_cache` is consulted per
/// cell and populated with the tile's measurements (in this process's
/// memory only — tile workers never flush it).
Status ComputeAndWriteTile(RunContext* ctx, const Executor& executor,
                           const std::vector<PlanKind>& plans,
                           const ParameterSpace& space, const TileSpec& tile,
                           const std::string& path,
                           const SweepOptions& sweep_opts = {},
                           StudyKind study = StudyKind::kPlainMap,
                           const WarmupPolicy& warm_policy = {},
                           CellResultCache* cell_cache = nullptr);

/// The sharded equivalent of `SweepStudyPlans`: partitions the grid with
/// `ShardPlanner` under `opts.cost_model`, skips tiles already valid on
/// disk (unless `opts.resume == false`), computes the rest through a
/// pull-based work queue — up to `opts.num_workers` subprocesses in
/// flight, each freed worker slot immediately pulling the heaviest pending
/// tile — and merges the tile files into one map that is bit-identical to
/// a single-process sweep of the same grid — every cell is an independent
/// cold measurement, so its value cannot depend on which process ran it.
///
/// Requires an order-independent warmup policy on `ctx` (anything but
/// `kPriorRun`, whose cells inherit state across the tile boundaries this
/// function erases). POSIX only: workers are fork(2)ed, or fork+exec'd when
/// `opts.worker_command` is set. A worker failure is reported after all
/// workers finish; completed tiles remain on disk, so a rerun resumes
/// rather than restarts.
///
/// Compatibility shim over `SweepEngine::Run` with a plain-map study on
/// the sharded-process backend; multi-layer studies (warm/cold/delta
/// tiles) go through the engine directly.
Result<RobustnessMap> RunShardedSweep(RunContext* ctx,
                                      const Executor& executor,
                                      const std::vector<PlanKind>& plans,
                                      const ParameterSpace& space,
                                      const ShardedSweepOptions& opts,
                                      ShardedSweepStats* stats = nullptr);

}  // namespace robustmap

#endif  // ROBUSTMAP_CORE_SHARDED_SWEEP_H_
