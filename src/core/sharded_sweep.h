#ifndef ROBUSTMAP_CORE_SHARDED_SWEEP_H_
#define ROBUSTMAP_CORE_SHARDED_SWEEP_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/map_io.h"
#include "core/shard_planner.h"
#include "core/sweep.h"
#include "core/sweep_cost.h"

namespace robustmap {

/// Options for a multi-process sharded sweep.
struct ShardedSweepOptions {
  /// Directory the per-tile checkpoint files live in; created if missing.
  /// Point a rerun at the same directory to resume a killed sweep.
  std::string tile_dir;

  /// Concurrent worker processes. 0 = one per hardware thread.
  unsigned num_workers = 0;

  /// Tiles to split the grid into (work units; a worker processes several).
  /// 0 = one per worker. More tiles than workers smooths load imbalance and
  /// makes checkpoints finer-grained.
  size_t num_tiles = 0;

  /// Sweep threads inside each worker process (multiplies with
  /// `num_workers`; keep at 1 unless workers are spread across machines).
  unsigned threads_per_worker = 1;

  /// When true (the default), tiles already present and valid in `tile_dir`
  /// are trusted and only missing or invalid ones are recomputed — the
  /// checkpoint/resume path. When false, every tile is recomputed and
  /// existing files are overwritten.
  bool resume = true;

  /// Per-tile progress lines on stderr.
  bool verbose = false;

  /// Empty (the default): workers are forked children of this process,
  /// computing their tiles with the already-built executor — the in-process
  /// subprocess mode benches and tests use. Non-empty: each tile spawns
  /// fork+exec of this argv with "--tiles=<count>", "--tile=<id>",
  /// "--rect=<x0:x1:y0:y1>", and "--out=<path>" appended (the
  /// `sweep_worker` contract — the resolved tile count *and its exact
  /// rectangle* ride along so worker and coordinator can never partition
  /// the grid differently, whatever cost model sized the tiles), for
  /// coordinators whose workers must build their own environment.
  std::vector<std::string> worker_command;

  /// How tiles are sized and dispatched. `kUniform` reproduces the
  /// pre-cost-layer equal-area tiles in shard-id order. `kAnalytic` (the
  /// default) cuts cost-balanced tiles from the selectivity prior and
  /// dispatches the heaviest pending tile first, so the sweep no longer
  /// finishes at the speed of its unluckiest tile. `kMeasured`
  /// additionally rebuilds the model from per-tile wall times found in
  /// `tile_dir` before partitioning — a repeated sweep reschedules from
  /// what cells actually cost here, not from the prior. (Changing the
  /// model between runs usually moves tile boundaries, which resume then
  /// treats as a reconfiguration and recomputes; measured mode is a
  /// re-balancing run, not a resume accelerator.) The merged map is
  /// bit-identical under every setting — scheduling never touches values.
  CostModelKind cost_model = CostModelKind::kAnalytic;
};

/// What a sharded sweep did, for self-checks, resume tests, and the
/// scheduling-quality metrics `robustness_benchmark` records.
struct ShardedSweepStats {
  size_t tiles_total = 0;
  size_t tiles_reused = 0;    ///< valid checkpoints skipped
  size_t tiles_computed = 0;  ///< recomputed by workers this run
  unsigned workers_spawned = 0;

  /// Wall-clock seconds each worker slot spent with a tile subprocess in
  /// flight (slot = one of the up-to-`num_workers` concurrent lanes; one
  /// entry per slot actually used). The makespan is dominated by the
  /// busiest slot, so the spread here *is* the scheduling quality.
  std::vector<double> worker_busy_seconds;

  /// Busiest slot / mean slot — 1.0 is a perfectly balanced sweep, 2.0
  /// means the slowest worker carried twice its fair share while others
  /// idled. 1.0 when nothing was computed.
  double busy_balance_ratio() const {
    if (worker_busy_seconds.empty()) return 1.0;
    double sum = 0, max = 0;
    for (double b : worker_busy_seconds) {
      sum += b;
      if (b > max) max = b;
    }
    if (sum <= 0) return 1.0;
    return max * static_cast<double>(worker_busy_seconds.size()) / sum;
  }
};

/// Checkpoint file name for a shard, e.g. "tile_0007.rmt".
std::string TileFileName(size_t shard_id);

/// Sidecar file a failed worker leaves its Status message in — the one
/// channel an exit code cannot carry across the process boundary. Part of
/// the worker contract: coordinators read it back, so workers (including
/// external `sweep_worker` binaries) must write exactly this path.
std::string TileErrFileName(const std::string& tile_path);

/// Writes the sidecar (overwriting any stale one) — the one writer both
/// the built-in workers and external worker binaries share.
void WriteTileErrFile(const std::string& tile_path, const Status& s);

/// mkdir -p: creates `path` and any missing parents, tolerating ones that
/// already exist.
Status EnsureDirectory(const std::string& path);

/// Computes one tile — the standard study sweep restricted to the tile's
/// rectangle (via `ParallelRunSweep` when `sweep_opts.num_threads != 1`) —
/// and writes it atomically to `path`, stamping the sweep's wall-clock
/// seconds into the tile's v2 metadata (the measured-cost feedback later
/// runs reschedule from). The body of both worker modes and of the
/// `sweep_worker` executable.
Status ComputeAndWriteTile(RunContext* ctx, const Executor& executor,
                           const std::vector<PlanKind>& plans,
                           const ParameterSpace& space, const TileSpec& tile,
                           const std::string& path,
                           const SweepOptions& sweep_opts = {});

/// The sharded equivalent of `SweepStudyPlans`: partitions the grid with
/// `ShardPlanner` under `opts.cost_model`, skips tiles already valid on
/// disk (unless `opts.resume == false`), computes the rest through a
/// pull-based work queue — up to `opts.num_workers` subprocesses in
/// flight, each freed worker slot immediately pulling the heaviest pending
/// tile — and merges the tile files into one map that is bit-identical to
/// a single-process sweep of the same grid — every cell is an independent
/// cold measurement, so its value cannot depend on which process ran it.
///
/// Requires an order-independent warmup policy on `ctx` (anything but
/// `kPriorRun`, whose cells inherit state across the tile boundaries this
/// function erases). POSIX only: workers are fork(2)ed, or fork+exec'd when
/// `opts.worker_command` is set. A worker failure is reported after all
/// workers finish; completed tiles remain on disk, so a rerun resumes
/// rather than restarts.
Result<RobustnessMap> RunShardedSweep(RunContext* ctx,
                                      const Executor& executor,
                                      const std::vector<PlanKind>& plans,
                                      const ParameterSpace& space,
                                      const ShardedSweepOptions& opts,
                                      ShardedSweepStats* stats = nullptr);

}  // namespace robustmap

#endif  // ROBUSTMAP_CORE_SHARDED_SWEEP_H_
