#ifndef ROBUSTMAP_CORE_SHARDED_SWEEP_H_
#define ROBUSTMAP_CORE_SHARDED_SWEEP_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/map_io.h"
#include "core/shard_planner.h"
#include "core/sweep.h"

namespace robustmap {

/// Options for a multi-process sharded sweep.
struct ShardedSweepOptions {
  /// Directory the per-tile checkpoint files live in; created if missing.
  /// Point a rerun at the same directory to resume a killed sweep.
  std::string tile_dir;

  /// Concurrent worker processes. 0 = one per hardware thread.
  unsigned num_workers = 0;

  /// Tiles to split the grid into (work units; a worker processes several).
  /// 0 = one per worker. More tiles than workers smooths load imbalance and
  /// makes checkpoints finer-grained.
  size_t num_tiles = 0;

  /// Sweep threads inside each worker process (multiplies with
  /// `num_workers`; keep at 1 unless workers are spread across machines).
  unsigned threads_per_worker = 1;

  /// When true (the default), tiles already present and valid in `tile_dir`
  /// are trusted and only missing or invalid ones are recomputed — the
  /// checkpoint/resume path. When false, every tile is recomputed and
  /// existing files are overwritten.
  bool resume = true;

  /// Per-tile progress lines on stderr.
  bool verbose = false;

  /// Empty (the default): workers are forked children of this process,
  /// computing their tiles with the already-built executor — the in-process
  /// subprocess mode benches and tests use. Non-empty: each tile spawns
  /// fork+exec of this argv with "--tiles=<count>", "--tile=<id>", and
  /// "--out=<path>" appended (the `sweep_worker` contract — the resolved
  /// tile count rides along so worker and coordinator can never partition
  /// the grid differently), for coordinators whose workers must build
  /// their own environment.
  std::vector<std::string> worker_command;
};

/// What a sharded sweep did, for self-checks and resume tests.
struct ShardedSweepStats {
  size_t tiles_total = 0;
  size_t tiles_reused = 0;    ///< valid checkpoints skipped
  size_t tiles_computed = 0;  ///< recomputed by workers this run
  unsigned workers_spawned = 0;
};

/// Checkpoint file name for a shard, e.g. "tile_0007.rmt".
std::string TileFileName(size_t shard_id);

/// Sidecar file a failed worker leaves its Status message in — the one
/// channel an exit code cannot carry across the process boundary. Part of
/// the worker contract: coordinators read it back, so workers (including
/// external `sweep_worker` binaries) must write exactly this path.
std::string TileErrFileName(const std::string& tile_path);

/// Writes the sidecar (overwriting any stale one) — the one writer both
/// the built-in workers and external worker binaries share.
void WriteTileErrFile(const std::string& tile_path, const Status& s);

/// mkdir -p: creates `path` and any missing parents, tolerating ones that
/// already exist.
Status EnsureDirectory(const std::string& path);

/// Computes one tile — the standard study sweep restricted to the tile's
/// rectangle (via `ParallelRunSweep` when `sweep_opts.num_threads != 1`) —
/// and writes it atomically to `path`. The body of both worker modes and of
/// the `sweep_worker` executable.
Status ComputeAndWriteTile(RunContext* ctx, const Executor& executor,
                           const std::vector<PlanKind>& plans,
                           const ParameterSpace& space, const TileSpec& tile,
                           const std::string& path,
                           const SweepOptions& sweep_opts = {});

/// The sharded equivalent of `SweepStudyPlans`: partitions the grid with
/// `ShardPlanner`, skips tiles already valid on disk (unless
/// `opts.resume == false`), computes the rest in up to `opts.num_workers`
/// concurrent subprocesses, and merges the tile files into one map that is
/// bit-identical to a single-process sweep of the same grid — every cell is
/// an independent cold measurement, so its value cannot depend on which
/// process ran it.
///
/// Requires an order-independent warmup policy on `ctx` (anything but
/// `kPriorRun`, whose cells inherit state across the tile boundaries this
/// function erases). POSIX only: workers are fork(2)ed, or fork+exec'd when
/// `opts.worker_command` is set. A worker failure is reported after all
/// workers finish; completed tiles remain on disk, so a rerun resumes
/// rather than restarts.
Result<RobustnessMap> RunShardedSweep(RunContext* ctx,
                                      const Executor& executor,
                                      const std::vector<PlanKind>& plans,
                                      const ParameterSpace& space,
                                      const ShardedSweepOptions& opts,
                                      ShardedSweepStats* stats = nullptr);

}  // namespace robustmap

#endif  // ROBUSTMAP_CORE_SHARDED_SWEEP_H_
