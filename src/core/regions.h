#ifndef ROBUSTMAP_CORE_REGIONS_H_
#define ROBUSTMAP_CORE_REGIONS_H_

#include <cstdint>
#include <vector>

#include "core/parameter_space.h"

namespace robustmap {

/// Connected-component structure of a plan's optimality region.
///
/// "It might be interesting to focus on irregular shapes of optimality
/// regions — chances are good that some implementation idiosyncrasy rather
/// than the algorithm itself causes the irregular shape" (§3.4). Figure 7's
/// headline finding is that a plan's region is "not continuous, which is
/// rather surprising"; this module quantifies that.
struct RegionStats {
  int num_regions = 0;
  size_t member_cells = 0;   ///< total cells in the region set
  size_t largest_region = 0; ///< cells in the biggest component
  /// 0 = one compact region (or empty); → 1 = shattered into fragments.
  double fragmentation = 0.0;
  /// Per point: component id (0-based) or -1 outside the region set.
  std::vector<int> labels;

  bool is_contiguous() const { return num_regions <= 1; }
};

/// 4-neighborhood connected components over the membership grid (1-D spaces
/// degenerate to run detection).
RegionStats AnalyzeRegions(const ParameterSpace& space,
                           const std::vector<bool>& member);

}  // namespace robustmap

#endif  // ROBUSTMAP_CORE_REGIONS_H_
