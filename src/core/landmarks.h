#ifndef ROBUSTMAP_CORE_LANDMARKS_H_
#define ROBUSTMAP_CORE_LANDMARKS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/parameter_space.h"

namespace robustmap {

/// Cost decreased although work increased — "if cases exist in which
/// fetching more rows is cheaper than fetching fewer rows, something is
/// amiss" (§3.1).
struct MonotonicityViolation {
  size_t index = 0;  ///< violation between points index and index+1
  double x_from = 0, x_to = 0;
  double cost_from = 0, cost_to = 0;
};

/// The marginal cost (Δcost/Δx) rose above its earlier minimum — the curve
/// steepens again after flattening ("the difference between fetching 100
/// and 200 rows should not be greater than between 1,000 and 1,100", §3.1:
/// the first derivative should monotonically decrease). This is the
/// landmark the improved index scan exhibits at very large results. Affine
/// curves (fixed overhead + constant per-row cost) never trigger: their
/// marginal cost is constant.
struct SteepeningPoint {
  size_t index = 0;      ///< segment [index, index+1] steepened
  double slope_before = 0;  ///< smallest earlier marginal cost
  double slope_after = 0;   ///< marginal cost of this segment
};

/// Adjacent grid cells whose costs jump by more than `threshold`× — the §4
/// signature of "implementations lacking graceful degradation".
struct Discontinuity {
  size_t index = 0;
  double x_from = 0, x_to = 0;
  double ratio = 0;  ///< cost_to / cost_from (>= threshold)
};

/// Landmark scan of one 1-D cost curve.
struct CurveLandmarks {
  std::vector<MonotonicityViolation> monotonicity_violations;
  std::vector<SteepeningPoint> steepening_points;
  std::vector<Discontinuity> discontinuities;

  bool clean() const {
    return monotonicity_violations.empty() && steepening_points.empty() &&
           discontinuities.empty();
  }
};

/// Options for landmark detection.
struct LandmarkOptions {
  /// Ignore monotonicity violations smaller than this relative dip
  /// (measurement noise in real systems; exactly 0 works for the simulator).
  double monotonicity_slack = 0.02;
  /// Flag marginal-cost increases beyond this relative margin over the
  /// smallest earlier marginal cost.
  double steepening_margin = 0.10;
  /// Marginal costs below this fraction of the curve's average slope count
  /// as flat (guards the relative margin against near-zero minima).
  double steepening_flat_floor = 0.02;
  /// Adjacent-cell cost ratio that counts as a discontinuity. With factor-2
  /// parameter steps, an 8x cost jump cannot be explained by linear scaling.
  double discontinuity_ratio = 8.0;
};

/// Scans a curve (costs[i] measured at xs[i], xs ascending and positive).
CurveLandmarks AnalyzeCurve(const std::vector<double>& xs,
                            const std::vector<double>& costs,
                            const LandmarkOptions& opts = {});

/// Symmetry of a square 2-D cost surface under (i,j) -> (j,i) — Figure 5's
/// "the symmetry in this diagram indicates that the two dimensions have very
/// similar effects".
struct SymmetryScore {
  double max_abs_log2_ratio = 0;   ///< worst |log2 c(i,j)/c(j,i)|
  double mean_abs_log2_ratio = 0;

  /// Heuristic: surfaces within ~25% everywhere count as symmetric.
  bool is_symmetric() const { return max_abs_log2_ratio < 0.33; }
};

SymmetryScore ComputeSymmetry(const ParameterSpace& space,
                              const std::vector<double>& grid);

}  // namespace robustmap

#endif  // ROBUSTMAP_CORE_LANDMARKS_H_
