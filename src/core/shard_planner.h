#ifndef ROBUSTMAP_CORE_SHARD_PLANNER_H_
#define ROBUSTMAP_CORE_SHARD_PLANNER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/parameter_space.h"

namespace robustmap {

class CellCostModel;

/// One rectangular tile of a sweep grid: the half-open cell ranges
/// [x_begin, x_end) × [y_begin, y_end) in *grid indices* of the parent
/// space. A tile covers every plan over its rectangle — sharding splits the
/// grid, never the plan list, so each tile file is a complete miniature map
/// and merging is a pure copy.
struct TileSpec {
  size_t shard_id = 0;  ///< stable for a given (space, max_tiles) pair
  size_t x_begin = 0;
  size_t x_end = 0;
  size_t y_begin = 0;
  size_t y_end = 0;  ///< {0, 1} for 1-D spaces

  size_t x_size() const { return x_end - x_begin; }
  size_t y_size() const { return y_end - y_begin; }
  size_t num_points() const { return x_size() * y_size(); }

  bool operator==(const TileSpec&) const = default;
};

/// Partitions sweep grids into rectangular tiles for sharded execution.
class ShardPlanner {
 public:
  /// Splits `space` into at most `max_tiles` rectangular tiles that cover
  /// every grid point exactly once. The y axis is split first (rows are the
  /// outer dimension of the row-major linearization), then x if more tiles
  /// are wanted than there are rows; a 1-D space splits along x. Returns
  /// fewer than `max_tiles` tiles when the grid is too small or the counts
  /// do not divide evenly. Shard ids are assigned row-major over the tile
  /// grid, so the same (space, max_tiles) request always yields the same
  /// tiles with the same ids — the property checkpoint/resume relies on.
  /// Rejects empty grids (either axis with no values).
  static Result<std::vector<TileSpec>> Partition(const ParameterSpace& space,
                                                 size_t max_tiles);

  /// Cost-balanced partition: the same tile-grid shape (and therefore the
  /// same tile count) as `Partition`, but band boundaries are placed by
  /// cumulative cost under `model` instead of by cell count — row bands
  /// each carry ~1/gy of the total cost, and each band's x cuts carry
  /// ~1/gx of that band's. Where cost is skewed the expensive corner gets
  /// geometrically finer tiles, which is what lets equal-cost tiles exist
  /// at all. Shard ids stay row-major over the tile grid (stable for a
  /// given space, max_tiles, and model — checkpoint/resume still works),
  /// but tiles are *emitted* in snake order (alternate bands reversed), so
  /// consecutive work units stay spatially adjacent. `model` must be built
  /// over exactly `space`.
  static Result<std::vector<TileSpec>> PartitionWeighted(
      const ParameterSpace& space, size_t max_tiles,
      const CellCostModel& model);
};

/// The sub-space a tile sweeps: the parent's axes restricted to the tile's
/// index ranges (axis names preserved, 1-D stays 1-D). Rejects rectangles
/// that are empty or fall outside the parent grid.
Result<ParameterSpace> SliceSpace(const ParameterSpace& parent,
                                  const TileSpec& tile);

/// The "X0:X1:Y0:Y1" rectangle spelling of the `--rect=` worker flag
/// (half-open grid-index ranges). One formatter and one parser, shared by
/// the coordinator that emits the flag and the worker that consumes it, so
/// the two can never drift on the grammar.
std::string RectSpecString(const TileSpec& tile);

/// Parses a rect spec into the four rectangle fields of `*tile` (the
/// shard id is untouched). Returns false — leaving `*tile` unspecified —
/// for anything that is not exactly four ':'-separated non-negative
/// integers. Range validation against a concrete grid is `SliceSpace`'s
/// job, not the parser's.
bool ParseRectSpec(const std::string& raw, TileSpec* tile);

}  // namespace robustmap

#endif  // ROBUSTMAP_CORE_SHARD_PLANNER_H_
