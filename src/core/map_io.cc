#include "core/map_io.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <iterator>
#include <ostream>
#include <sstream>
#include <utility>

#include "core/wire_format.h"

namespace robustmap {

namespace {

using wire::Cursor;
using wire::Fnv1a64;
using wire::GetMeasurement;
using wire::PutDouble;
using wire::PutMeasurement;
using wire::PutString;
using wire::PutU32;
using wire::PutU64;

constexpr char kMagic[8] = {'R', 'M', 'A', 'P', 'T', 'I', 'L', 'E'};
constexpr size_t kMagicSize = sizeof(kMagic);
constexpr size_t kVersionOffset = kMagicSize;
constexpr size_t kChecksumSize = sizeof(uint64_t);
// Magic + version + trailing checksum: the least any tile file can be.
constexpr size_t kMinFileSize = kMagicSize + sizeof(uint32_t) + kChecksumSize;

// The artifact name Cursor errors lead with ("truncated map tile: ...").
constexpr char kWhat[] = "map tile";

void PutAxis(std::string* out, const Axis& axis) {
  PutString(out, axis.name);
  PutU64(out, axis.values.size());
  for (double v : axis.values) PutDouble(out, v);
}

Status GetAxis(Cursor* c, Axis* axis) {
  RM_RETURN_IF_ERROR(c->GetString(&axis->name));
  uint64_t n = 0;
  RM_RETURN_IF_ERROR(c->GetU64(&n));
  // Bound the count by the bytes that could back it *before* allocating:
  // a damaged (but checksum-valid, i.e. crafted) count must surface as
  // Corruption, not as a multi-terabyte resize throwing bad_alloc.
  if (n > c->remaining() / sizeof(uint64_t)) {
    return Status::Corruption("map tile axis claims " + std::to_string(n) +
                              " values but only " +
                              std::to_string(c->remaining()) +
                              " bytes remain");
  }
  axis->values.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    RM_RETURN_IF_ERROR(c->GetDouble(&axis->values[i]));
  }
  return Status::OK();
}

}  // namespace

Status WriteMapTile(std::ostream& os, const MapTile& tile) {
  auto expected = SliceSpace(tile.parent_space, tile.spec);
  RM_RETURN_IF_ERROR(expected.status());
  if (!(tile.map.space() == expected.value())) {
    return Status::InvalidArgument(
        "tile map's space is not the slice of the parent grid its spec "
        "names");
  }
  for (const RobustnessMap& extra : tile.extra_layers) {
    if (!(extra.space() == tile.map.space()) ||
        extra.plan_labels() != tile.map.plan_labels()) {
      return Status::InvalidArgument(
          "every tile layer must cover the same slice with the same plan "
          "labels as layer 0");
    }
  }
  const size_t num_layers = tile.num_layers();
  // Multi-layer tiles must be self-describing (one name per layer, the
  // merge keys on them); a single unnamed layer is the classic plain tile
  // and stays on the v2 byte stream so artifacts remain byte-comparable.
  const bool v3 = num_layers > 1 || !tile.layer_names.empty();
  if (v3 && tile.layer_names.size() != num_layers) {
    return Status::InvalidArgument(
        "multi-layer tile needs one name per layer (have " +
        std::to_string(tile.layer_names.size()) + " names for " +
        std::to_string(num_layers) + " layers)");
  }

  std::string buf;
  buf.append(kMagic, kMagicSize);
  PutU32(&buf, v3 ? 3 : 2);
  PutDouble(&buf, tile.wall_seconds);
  if (v3) PutU64(&buf, num_layers);
  PutU64(&buf, tile.spec.shard_id);
  PutU64(&buf, tile.spec.x_begin);
  PutU64(&buf, tile.spec.x_end);
  PutU64(&buf, tile.spec.y_begin);
  PutU64(&buf, tile.spec.y_end);
  PutU64(&buf, tile.parent_space.is_2d() ? 1 : 0);
  PutAxis(&buf, tile.parent_space.x());
  if (tile.parent_space.is_2d()) PutAxis(&buf, tile.parent_space.y());
  PutU64(&buf, tile.map.num_plans());
  for (const std::string& label : tile.map.plan_labels()) {
    PutString(&buf, label);
  }
  for (size_t li = 0; li < num_layers; ++li) {
    if (v3) PutString(&buf, tile.layer_names[li]);
    const RobustnessMap& layer = tile.layer(li);
    for (size_t plan = 0; plan < layer.num_plans(); ++plan) {
      for (size_t pt = 0; pt < layer.space().num_points(); ++pt) {
        PutMeasurement(&buf, layer.At(plan, pt));
      }
    }
  }
  PutU64(&buf, Fnv1a64(buf.data(), buf.size()));

  os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  if (!os.good()) return Status::Internal("map tile write failed");
  return Status::OK();
}

Status WriteMapTileFile(const std::string& path, const MapTile& tile) {
  // Write-then-rename: readers (and resuming coordinators) only ever see
  // either no file or a complete one. The temp name carries the writer's
  // address so concurrent workers never clobber each other's in-flight
  // writes.
  const std::string tmp =
      path + ".tmp." + std::to_string(reinterpret_cast<uintptr_t>(&tile)) +
      "." + std::to_string(static_cast<unsigned long>(::getpid()));
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f.is_open()) {
      return Status::Internal("cannot open " + tmp + " for writing");
    }
    Status s = WriteMapTile(f, tile);
    if (!s.ok()) {
      f.close();
      std::remove(tmp.c_str());
      return s;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

Result<MapTile> ReadMapTile(std::istream& is) {
  std::string buf((std::istreambuf_iterator<char>(is)),
                  std::istreambuf_iterator<char>());
  if (buf.size() < kMinFileSize) {
    return Status::Corruption("truncated map tile: " +
                              std::to_string(buf.size()) +
                              " bytes is smaller than any valid tile");
  }
  if (std::memcmp(buf.data(), kMagic, kMagicSize) != 0) {
    return Status::Corruption("not a map tile (bad magic)");
  }
  // Version gates everything else: an unknown version may checksum or lay
  // out its payload differently, so it is the one error reported before the
  // integrity check.
  Cursor header(buf.data() + kVersionOffset, buf.size() - kVersionOffset,
                kWhat);
  uint32_t version = 0;
  RM_RETURN_IF_ERROR(header.GetU32(&version));
  if (version < kMinReadableMapTileFormatVersion ||
      version > kMapTileFormatVersion) {
    return Status::NotSupported(
        "map tile format version " + std::to_string(version) +
        " (this build reads versions " +
        std::to_string(kMinReadableMapTileFormatVersion) + ".." +
        std::to_string(kMapTileFormatVersion) + ")");
  }
  const size_t payload_size = buf.size() - kChecksumSize;
  Cursor trailer(buf.data() + payload_size, kChecksumSize, kWhat);
  uint64_t stored = 0;
  RM_RETURN_IF_ERROR(trailer.GetU64(&stored));
  const uint64_t computed = Fnv1a64(buf.data(), payload_size);
  if (stored != computed) {
    return Status::Corruption("map tile checksum mismatch (file damaged or "
                              "cut short)");
  }

  Cursor c(buf.data() + kVersionOffset + sizeof(uint32_t),
           payload_size - kVersionOffset - sizeof(uint32_t), kWhat);
  // v2 carries the tile sweep's wall time right after the version; a v1
  // file simply has no timing signal, which downstream cost models treat
  // as "unmeasured", never as an error. v3 adds the layer count; earlier
  // versions are by definition single-layer.
  double wall_seconds = 0;
  if (version >= 2) {
    RM_RETURN_IF_ERROR(c.GetDouble(&wall_seconds));
  }
  uint64_t num_layers = 1;
  if (version >= 3) {
    RM_RETURN_IF_ERROR(c.GetU64(&num_layers));
    // Each layer needs at least a name length and one cell; bound the
    // count by the bytes that could back it before it sizes anything.
    if (num_layers == 0 || num_layers > c.remaining() / sizeof(uint32_t)) {
      return Status::Corruption("map tile claims " +
                                std::to_string(num_layers) +
                                " layers but only " +
                                std::to_string(c.remaining()) +
                                " bytes remain");
    }
  }
  TileSpec spec;
  uint64_t v = 0;
  RM_RETURN_IF_ERROR(c.GetU64(&v));
  spec.shard_id = v;
  RM_RETURN_IF_ERROR(c.GetU64(&v));
  spec.x_begin = v;
  RM_RETURN_IF_ERROR(c.GetU64(&v));
  spec.x_end = v;
  RM_RETURN_IF_ERROR(c.GetU64(&v));
  spec.y_begin = v;
  RM_RETURN_IF_ERROR(c.GetU64(&v));
  spec.y_end = v;
  uint64_t is_2d = 0;
  RM_RETURN_IF_ERROR(c.GetU64(&is_2d));
  Axis x;
  RM_RETURN_IF_ERROR(GetAxis(&c, &x));
  ParameterSpace parent;
  if (is_2d != 0) {
    Axis y;
    RM_RETURN_IF_ERROR(GetAxis(&c, &y));
    parent = ParameterSpace::TwoD(std::move(x), std::move(y));
  } else {
    parent = ParameterSpace::OneD(std::move(x));
  }
  auto sub = SliceSpace(parent, spec);
  if (!sub.ok()) {
    return Status::Corruption("map tile rectangle inconsistent with its "
                              "axes: " + sub.status().message());
  }
  uint64_t num_plans = 0;
  RM_RETURN_IF_ERROR(c.GetU64(&num_plans));
  if (num_plans > c.remaining() / sizeof(uint32_t)) {
    return Status::Corruption("map tile claims " +
                              std::to_string(num_plans) +
                              " plans but only " +
                              std::to_string(c.remaining()) +
                              " bytes remain");
  }
  std::vector<std::string> labels(num_plans);
  for (uint64_t i = 0; i < num_plans; ++i) {
    RM_RETURN_IF_ERROR(c.GetString(&labels[i]));
  }
  // Every cell occupies at least 9 u64-sized fields plus a label length;
  // reject plan x point x layer products the remaining bytes cannot
  // possibly back before sizing the maps (divisions, so the product cannot
  // overflow).
  constexpr size_t kMinCellBytes = 9 * sizeof(uint64_t) + sizeof(uint32_t);
  const size_t points = sub.value().num_points();
  if (num_plans != 0 &&
      c.remaining() / kMinCellBytes / num_plans / num_layers < points) {
    return Status::Corruption(
        "map tile claims more cells than its bytes can hold");
  }
  std::vector<std::string> layer_names;
  std::vector<RobustnessMap> layers;
  layers.reserve(num_layers);
  for (uint64_t li = 0; li < num_layers; ++li) {
    if (version >= 3) {
      std::string name;
      RM_RETURN_IF_ERROR(c.GetString(&name));
      layer_names.push_back(std::move(name));
    }
    RobustnessMap layer(sub.value(), labels);
    for (size_t plan = 0; plan < layer.num_plans(); ++plan) {
      for (size_t pt = 0; pt < layer.space().num_points(); ++pt) {
        Measurement m;
        RM_RETURN_IF_ERROR(GetMeasurement(&c, &m));
        layer.Set(plan, pt, std::move(m));
      }
    }
    layers.push_back(std::move(layer));
  }
  if (c.remaining() != 0) {
    return Status::Corruption("map tile has " +
                              std::to_string(c.remaining()) +
                              " trailing bytes past its declared cells");
  }
  MapTile tile{spec, std::move(parent), std::move(layers.front()),
               wall_seconds};
  tile.layer_names = std::move(layer_names);
  tile.extra_layers.assign(std::make_move_iterator(layers.begin() + 1),
                           std::make_move_iterator(layers.end()));
  return tile;
}

Result<MapTile> ReadMapTileFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.is_open()) {
    return Status::NotFound("cannot open map tile " + path);
  }
  auto tile = ReadMapTile(f);
  if (!tile.ok()) {
    if (tile.status().IsNotSupported()) {
      return Status::NotSupported(path + ": " + tile.status().message());
    }
    return Status::Corruption(path + ": " + tile.status().message());
  }
  return tile;
}

Result<std::vector<RobustnessMap>> MergeTileLayers(
    const ParameterSpace& space, const std::vector<std::string>& plan_labels,
    const std::vector<MapTile>& tiles) {
  const size_t num_layers = tiles.empty() ? 1 : tiles.front().num_layers();
  std::vector<RobustnessMap> merged;
  merged.reserve(num_layers);
  for (size_t li = 0; li < num_layers; ++li) {
    merged.emplace_back(space, plan_labels);
  }
  std::vector<uint8_t> covered(space.num_points(), 0);
  for (const MapTile& tile : tiles) {
    if (!(tile.parent_space == space)) {
      return Status::InvalidArgument(
          "tile " + std::to_string(tile.spec.shard_id) +
          " was swept over a different grid (axis names or values "
          "disagree); refusing to merge");
    }
    if (tile.map.plan_labels() != plan_labels) {
      return Status::InvalidArgument(
          "tile " + std::to_string(tile.spec.shard_id) +
          " covers a different plan set; refusing to merge");
    }
    // Layers are merged positionally, so tiles must agree on the study
    // shape exactly — a plain tile in a warm-cold merge (or layers in a
    // different order) is a configuration mix-up, not mergeable data.
    if (tile.num_layers() != num_layers ||
        tile.layer_names != tiles.front().layer_names) {
      return Status::InvalidArgument(
          "tile " + std::to_string(tile.spec.shard_id) +
          " carries different layers than its siblings; refusing to merge");
    }
    // ReadMapTile-produced tiles satisfy this by construction, but merge
    // must not trust its caller: an out-of-grid rectangle or a map smaller
    // than its claimed rectangle would index out of bounds below.
    auto sub = SliceSpace(space, tile.spec);
    if (!sub.ok()) {
      return Status::InvalidArgument(
          "tile " + std::to_string(tile.spec.shard_id) + ": " +
          sub.status().message());
    }
    for (size_t li = 0; li < num_layers; ++li) {
      if (!(tile.layer(li).space() == sub.value()) ||
          tile.layer(li).plan_labels() != plan_labels) {
        return Status::InvalidArgument(
            "tile " + std::to_string(tile.spec.shard_id) +
            "'s map does not cover the rectangle its spec names");
      }
    }
    for (size_t yi = tile.spec.y_begin; yi < tile.spec.y_end; ++yi) {
      for (size_t xi = tile.spec.x_begin; xi < tile.spec.x_end; ++xi) {
        const size_t parent_pt = space.IndexOf(xi, yi);
        if (covered[parent_pt] != 0) {
          return Status::InvalidArgument(
              "tiles overlap at grid point (" + std::to_string(xi) + "," +
              std::to_string(yi) + ")");
        }
        covered[parent_pt] = 1;
        const size_t tile_pt =
            (yi - tile.spec.y_begin) * tile.spec.x_size() +
            (xi - tile.spec.x_begin);
        for (size_t li = 0; li < num_layers; ++li) {
          for (size_t plan = 0; plan < plan_labels.size(); ++plan) {
            merged[li].Set(plan, parent_pt, tile.layer(li).At(plan, tile_pt));
          }
        }
      }
    }
  }
  for (size_t pt = 0; pt < covered.size(); ++pt) {
    if (covered[pt] == 0) {
      const auto [xi, yi] = space.CoordsOf(pt);
      return Status::InvalidArgument("no tile covers grid point (" +
                                     std::to_string(xi) + "," +
                                     std::to_string(yi) + ")");
    }
  }
  return merged;
}

Result<RobustnessMap> MergeTiles(const ParameterSpace& space,
                                 const std::vector<std::string>& plan_labels,
                                 const std::vector<MapTile>& tiles) {
  for (const MapTile& tile : tiles) {
    if (tile.num_layers() != 1) {
      return Status::InvalidArgument(
          "tile " + std::to_string(tile.spec.shard_id) + " carries " +
          std::to_string(tile.num_layers()) +
          " layers; use MergeTileLayers for multi-layer tiles");
    }
  }
  auto merged = MergeTileLayers(space, plan_labels, tiles);
  RM_RETURN_IF_ERROR(merged.status());
  return std::move(merged.value().front());
}

}  // namespace robustmap
