#ifndef ROBUSTMAP_CORE_SWEEP_COST_H_
#define ROBUSTMAP_CORE_SWEEP_COST_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/map_io.h"
#include "core/parameter_space.h"
#include "core/shard_planner.h"

namespace robustmap {

/// How a sweep estimates per-cell cost for scheduling. Cost never changes
/// *what* is measured — every cell is still an independent cold
/// measurement — only how cells are grouped into tiles / blocks and the
/// order workers pick them up.
enum class CostModelKind {
  kUniform,   ///< every cell costs the same (the pre-cost-layer behavior)
  kAnalytic,  ///< grid-position prior: cost grows with the axis values
  kMeasured,  ///< rebuilt from per-tile wall times recorded on disk,
              ///< falling back to the analytic prior where unmeasured
};

/// "uniform" / "analytic" / "measured" — the spelling of the
/// REPRO_COST_MODEL knob and the --cost-model flag.
Result<CostModelKind> CostModelKindFromString(const std::string& name);
const char* CostModelKindName(CostModelKind kind);

/// One prior observation for the measured model: a tile rectangle and the
/// wall-clock seconds its sweep took (from v2 tile metadata).
struct TileCostRecord {
  TileSpec spec;
  double seconds = 0;
};

/// Relative cost of every cell of a sweep grid, the one currency all
/// scheduling layers trade in: the shard planner sizes tiles by it, the
/// coordinator dispatches the heaviest pending tile first, and
/// `ParallelRunSweep` batches cells into equal-cost blocks. Weights are
/// relative — only ratios matter — and strictly positive, so every tile and
/// block has nonzero cost and weighted partitions can never produce an
/// empty band.
class CellCostModel {
 public:
  /// Every cell weighs 1 — reproduces uniform tiles exactly.
  static Result<CellCostModel> Uniform(const ParameterSpace& space);

  /// The grid-position prior: cell cost rises with the normalized axis
  /// values (selectivity sweeps touch more rows toward 1.0, and joint
  /// high-selectivity corners pay both predicates), floored well above
  /// zero because constant-cost plans (table scan) run in every cell:
  ///
  ///   weight = 1/4 + xn + yn + 2 * xn * yn,  xn = x / max(x), etc.
  ///
  /// On a geometric selectivity axis the top octave therefore outweighs
  /// the entire tail — exactly the skew ROADMAP observed.
  static Result<CellCostModel> Analytic(const ParameterSpace& space);

  /// The measured model: each record's seconds are spread evenly over its
  /// rectangle's cells (later records overwrite earlier ones where they
  /// overlap). Cells no record covers fall back to the analytic prior,
  /// rescaled so its mean over the *measured* cells matches the measured
  /// mean — the two regimes stay in one currency. With no usable records
  /// this is exactly `Analytic(space)`.
  static Result<CellCostModel> FromMeasuredTiles(
      const ParameterSpace& space, const std::vector<TileCostRecord>& records);

  double CellCost(size_t xi, size_t yi) const {
    return weights_[yi * space_.x_size() + xi];
  }

  /// A copy of this model with the flagged cells (row-major, same layout
  /// as the weights) costed at a vanishing fraction of the cheapest cell:
  /// how a cache-aware coordinator tells the planner "these cells are
  /// free — a hit, not a measurement" while preserving the all-positive
  /// invariant weighted partitioning relies on. `cached.size()` must be
  /// `space().num_points()`.
  CellCostModel WithDiscountedCells(const std::vector<uint8_t>& cached) const;
  double TileCost(const TileSpec& tile) const;
  double TotalCost() const { return total_; }
  const ParameterSpace& space() const { return space_; }

 private:
  CellCostModel(ParameterSpace space, std::vector<double> weights);

  ParameterSpace space_;
  std::vector<double> weights_;  ///< row-major [yi * x_size + xi], all > 0
  double total_ = 0;
};

/// Builds the measured model from the tile files of a prior sweep: every
/// `*.rmt` in `tile_dir` that parses, describes `space`, and carries a
/// positive wall time becomes a record (anything else — other grids,
/// v1 files with no timing, merged full-grid artifacts written with
/// wall_seconds = 0 — is skipped). An unreadable or empty directory is not
/// an error: the result is then the pure analytic prior, which is exactly
/// what a first-ever run should schedule by.
///
/// With `tiles_out` set, every tile of `space` the scan parsed (timed or
/// not) is also moved out as (path, tile) pairs, so a resuming caller can
/// validate checkpoints against the bytes already read instead of reading
/// and checksumming every file a second time.
Result<CellCostModel> MeasuredCostModelFromDir(
    const std::string& tile_dir, const ParameterSpace& space,
    std::vector<std::pair<std::string, MapTile>>* tiles_out = nullptr);

/// Reorders tiles heaviest-first under `model` (stable, so equal-cost
/// tiles keep their snake adjacency) — the LPT dispatch order that lets a
/// pull-based worker queue finish its big rocks before its sand.
void SortTilesHeaviestFirst(std::vector<TileSpec>* tiles,
                            const CellCostModel& model);

}  // namespace robustmap

#endif  // ROBUSTMAP_CORE_SWEEP_COST_H_
