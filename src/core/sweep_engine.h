#ifndef ROBUSTMAP_CORE_SWEEP_ENGINE_H_
#define ROBUSTMAP_CORE_SWEEP_ENGINE_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/robustness_map.h"
#include "core/sweep.h"
#include "core/sweep_cost.h"
#include "engine/plan.h"
#include "io/run_context.h"

namespace robustmap {

class CellResultCache;

/// The *study* axis of a sweep: what is measured at every grid cell, and
/// how many output maps ("layers") the sweep therefore produces. Studies
/// compose orthogonally with every `BackendKind` — the §3.2 buffer-contents
/// study runs sharded across processes exactly as the plain map does.
enum class StudyKind {
  kPlainMap,       ///< one layer: each cell measured once under ctx->warmup
  kWarmColdDelta,  ///< three layers: cold, warm (under the request's
                   ///< warm policy), and their per-cell delta (warm − cold)
};

/// "plain" / "warmcold" — the spelling of the `--study` flag and the
/// REPRO_STUDY env knob.
Result<StudyKind> StudyKindFromString(const std::string& name);
const char* StudyKindName(StudyKind kind);

/// How many maps the study produces (1 for plain, 3 for warm-cold).
size_t StudyLayerCount(StudyKind kind);

/// The layer names stored in this study's tiles, in output order. Empty
/// for single-layer studies: plain tiles carry no names, which keeps them
/// on the v2 byte stream (byte-stable artifacts).
std::vector<std::string> StudyLayerNames(StudyKind kind);

/// The *execution* axis of a sweep: which machinery measures the cells.
/// Every backend produces bit-identical layers for order-independent
/// studies — the backend may only change wall-clock time, never values.
enum class BackendKind {
  kSerial,          ///< in the caller's thread, on `ctx` itself
  kThreaded,        ///< thread pool of private simulated machines
  kShardedProcess,  ///< checkpointed worker processes merging tile files
};

/// "serial" / "threaded" / "sharded" — the string spelling of a backend.
Result<BackendKind> BackendKindFromString(const std::string& name);
const char* BackendKindName(BackendKind kind);

/// Options for the sharded-process backend (also the configuration of the
/// `RunShardedSweep` compatibility shim).
struct ShardedSweepOptions {
  /// Directory the per-tile checkpoint files live in; created if missing.
  /// Point a rerun at the same directory to resume a killed sweep.
  std::string tile_dir;

  /// Concurrent worker processes. 0 = one per hardware thread.
  unsigned num_workers = 0;

  /// Tiles to split the grid into (work units; a worker processes several).
  /// 0 = one per worker. More tiles than workers smooths load imbalance and
  /// makes checkpoints finer-grained.
  size_t num_tiles = 0;

  /// Sweep threads inside each worker process (multiplies with
  /// `num_workers`; keep at 1 unless workers are spread across machines).
  unsigned threads_per_worker = 1;

  /// When true (the default), tiles already present and valid in `tile_dir`
  /// are trusted and only missing or invalid ones are recomputed — the
  /// checkpoint/resume path. When false, every tile is recomputed and
  /// existing files are overwritten.
  bool resume = true;

  /// Per-tile progress lines on stderr.
  bool verbose = false;

  /// Empty (the default): workers are forked children of this process,
  /// computing their tiles with the already-built executor — the in-process
  /// subprocess mode benches and tests use. Non-empty: each tile spawns
  /// fork+exec of this argv with "--tiles=<count>", "--tile=<id>",
  /// "--rect=<x0:x1:y0:y1>", "--study=<name>", "--out=<path>" — and
  /// "--warmup=<spec>" when the study's policy is not cold — appended (the
  /// `sweep_worker` contract — the resolved tile count, its exact
  /// rectangle, and the study ride along so worker and coordinator can
  /// never compute different things under the same tile name), for
  /// coordinators whose workers must build their own environment.
  std::vector<std::string> worker_command;

  /// How tiles are sized and dispatched. `kUniform` reproduces the
  /// pre-cost-layer equal-area tiles in shard-id order. `kAnalytic` (the
  /// default) cuts cost-balanced tiles from the selectivity prior and
  /// dispatches the heaviest pending tile first, so the sweep no longer
  /// finishes at the speed of its unluckiest tile. `kMeasured`
  /// additionally rebuilds the model from per-tile wall times found in
  /// `tile_dir` before partitioning — a repeated sweep reschedules from
  /// what cells actually cost here, not from the prior. (Changing the
  /// model between runs usually moves tile boundaries, which resume then
  /// treats as a reconfiguration and recomputes; measured mode is a
  /// re-balancing run, not a resume accelerator.) The merged map is
  /// bit-identical under every setting — scheduling never touches values.
  CostModelKind cost_model = CostModelKind::kAnalytic;

  /// Straggler-tile splitting. When fewer tiles are pending than workers —
  /// a resume recomputing two damaged tiles on an eight-worker box, or a
  /// coarse partition — a pending tile whose modeled cost exceeds 1.25×
  /// the pending average per worker is cut at its cost midpoint, repeatedly,
  /// until the head of the queue fits; the pieces (fresh synthetic shard
  /// ids, exact sub-rectangles) dispatch like any other tile. Splitting is
  /// decided from the cost model *before* dispatch, never from wall-clock
  /// observations mid-run, so a given directory state always produces the
  /// same tiles, the same stats, and — tiles being keyed by cell ranges —
  /// the same merged bytes. A later resume adopts any completed pieces it
  /// finds covering a planned tile and recomputes only the uncovered
  /// remainder.
  bool split_stragglers = true;

  /// Internal to progressive sweeps: the request's `space` is the stride-k
  /// sublattice of the grid the worker flags describe (see
  /// `SubsampleSpace`). Forwarded to exec-mode workers as "--stride=<k>"
  /// so worker and coordinator slice rectangles from the same lattice;
  /// 1 for ordinary sweeps. Set by `SweepEngine::Run`'s progressive
  /// driver, not by callers.
  size_t lattice_stride = 1;
};

/// Coarse-to-fine refinement for a sweep: measure the stride-k sublattice
/// of the grid first, surface it as a nearest-neighbor-filled snapshot,
/// then halve the stride and repeat until stride 1 — every level reusing
/// all previously measured cells through the request's cell cache (or a
/// per-run in-memory one), so a progressive sweep measures each grid cell
/// exactly once and its final layers are byte-identical to a direct
/// sweep's. Requires an order-independent configuration (no prior-run
/// warmth, no shared pool): reuse makes cell order unobservable only when
/// cells are independent.
struct ProgressiveOptions {
  /// Lattice stride of the first (coarsest) level; successive levels halve
  /// it until 1, the full grid. 0 or 1 = not a progressive sweep.
  size_t initial_stride = 0;

  /// Called after each level with that level's stride and full-grid
  /// layers: coarse levels are nearest-neighbor upsampled to grid size
  /// (every cell shows its nearest measured lattice point), the final
  /// stride-1 level is the exact result. Use it to write per-level `.rmt`
  /// snapshots a viewer can tail.
  std::function<void(size_t stride, const std::vector<RobustnessMap>& layers)>
      on_snapshot;

  bool enabled() const { return initial_stride > 1; }
};

/// What a sharded sweep did, for self-checks, resume tests, and the
/// scheduling-quality metrics `robustness_benchmark` records.
struct ShardedSweepStats {
  size_t tiles_total = 0;
  size_t tiles_reused = 0;    ///< valid checkpoints skipped (whole or as
                              ///< adopted pieces covering a planned tile)
  size_t tiles_computed = 0;  ///< recomputed by workers this run
  size_t tiles_split = 0;     ///< straggler split operations (each turns
                              ///< one pending tile into two)
  unsigned workers_spawned = 0;

  /// Wall-clock seconds each worker slot spent with a tile subprocess in
  /// flight (slot = one of the up-to-`num_workers` concurrent lanes; one
  /// entry per slot actually used). The makespan is dominated by the
  /// busiest slot, so the spread here *is* the scheduling quality.
  std::vector<double> worker_busy_seconds;

  /// Busiest slot / mean slot — 1.0 is a perfectly balanced sweep, 2.0
  /// means the slowest worker carried twice its fair share while others
  /// idled. 1.0 when nothing was computed.
  double busy_balance_ratio() const {
    if (worker_busy_seconds.empty()) return 1.0;
    double sum = 0, max = 0;
    for (double b : worker_busy_seconds) {
      sum += b;
      if (b > max) max = b;
    }
    if (sum <= 0) return 1.0;
    return max * static_cast<double>(worker_busy_seconds.size()) / sum;
  }
};

/// One fully-specified sweep: *what* to measure (plans × space × study)
/// and *how* to execute it (backend + its configuration). Every sweep in
/// the repo — every fig bench, the scorecard, the shard coordinator, each
/// worker's single tile — is one of these, so cost models, warmup
/// policies, shared pools, deterministic schedules, and progress callbacks
/// are applied by exactly one code path.
struct SweepRequest {
  std::vector<PlanKind> plans;
  ParameterSpace space;
  StudyKind study = StudyKind::kPlainMap;
  BackendKind backend = BackendKind::kThreaded;

  /// The warm layer's policy (kWarmColdDelta only; the cold layer is
  /// always `WarmupPolicy::Cold()`, and a plain study sweeps under the
  /// context's own `ctx->warmup`). Must be order-independent for the
  /// sharded backend.
  WarmupPolicy warm_policy;

  /// Thread count, shared pool, deterministic schedule, verbosity, and the
  /// progress callback. The sharded backend takes its parallelism from
  /// `sharded` instead and rejects shared pools (one process cannot share
  /// cache residency with another).
  SweepOptions sweep;

  /// Sharded-process backend configuration (ignored by the in-process
  /// backends).
  ShardedSweepOptions sharded;

  /// Optional content-addressed cell-result cache ("never measure a cell
  /// twice"). Non-null: cells whose fingerprint is already stored skip
  /// `Executor::Run` entirely and publish nothing to the measurement
  /// telemetry (`sweep.cells_measured` counts real measurements only);
  /// missed cells are measured and published back. Ignored — the sweep
  /// measures everything, as without a cache — for order-dependent
  /// configurations (prior-run warmth, shared pool, deterministic shared
  /// schedule), whose cell values are not a pure function of the cell.
  /// The caller owns the cache and decides when to flush it.
  CellResultCache* cell_cache = nullptr;

  /// Coarse-to-fine refinement schedule; disabled by default.
  ProgressiveOptions progressive;
};

/// The maps a sweep produced: `StudyLayerCount(study)` layers, in study
/// order, plus the sharded backend's scheduling stats (zeroed for
/// in-process backends).
struct SweepOutcome {
  StudyKind study = StudyKind::kPlainMap;
  std::vector<RobustnessMap> layers;
  ShardedSweepStats sharded_stats;

  const RobustnessMap& map() const { return layers.front(); }
  const RobustnessMap& cold() const { return layers[0]; }
  const RobustnessMap& warm() const { return layers[1]; }
  const RobustnessMap& delta() const { return layers[2]; }

  /// Unpacks a kWarmColdDelta outcome into the legacy struct.
  WarmColdMaps ToWarmColdMaps() && {
    return WarmColdMaps{std::move(layers[0]), std::move(layers[1]),
                        std::move(layers[2])};
  }
};

/// The composable sweep engine: any study × any backend, one entry point.
///
/// Guarantees, for order-independent configurations (no prior-run warmth,
/// no shared pool): every (study, backend) pair produces layers
/// bit-identical to the serial reference of the same study — the backend
/// axis only ever changes wall-clock time. Order-dependent configurations
/// are confined to the in-process backends (serialized as the legacy
/// entry points always did) and rejected with `InvalidArgument` by the
/// sharded backend.
class SweepEngine {
 public:
  /// Executes `req`. The legacy entry points (`SweepStudyPlans`,
  /// `RunWarmColdSweep`, `RunShardedSweep`) are thin shims over this.
  static Result<SweepOutcome> Run(RunContext* ctx, const Executor& executor,
                                  const SweepRequest& req);

  /// The generic serial cell loop (the engine's substrate, exposed for
  /// sweeps over arbitrary runners — ablations mapping memory budgets or
  /// spill behavior rather than study plans). `RunSweep` shims here; the
  /// value-based form adapts onto `RunCellsIndexed`.
  static Result<RobustnessMap> RunCells(
      const ParameterSpace& space, const std::vector<std::string>& plan_labels,
      const PointRunner& runner, const SweepOptions& opts = {});

  /// The core serial loop: the runner receives the grid-point index, so
  /// per-point state precomputed once per sweep (bound queries, prepared
  /// plans) is a table lookup per cell, not a rebuild.
  static Result<RobustnessMap> RunCellsIndexed(
      const ParameterSpace& space, const std::vector<std::string>& plan_labels,
      const IndexedPointRunner& runner, const SweepOptions& opts = {});

  /// The generic thread-pool cell loop over per-worker simulated machines
  /// built by `factory`; bit-identical to `RunCells` at any thread count.
  /// `ParallelRunSweep` shims here; the value-based form adapts onto
  /// `RunCellsParallelIndexed`.
  static Result<RobustnessMap> RunCellsParallel(
      const ParameterSpace& space, const std::vector<std::string>& plan_labels,
      const RunContextFactory& factory, const ContextPointRunner& runner,
      const SweepOptions& opts = {});

  /// The core parallel loop (index-based, see `RunCellsIndexed`). Worker
  /// machines are drawn from the factory's arena (`Acquire`/`Release`), so
  /// repeated sweeps over one factory recycle their simulated machines
  /// instead of rebuilding them.
  static Result<RobustnessMap> RunCellsParallelIndexed(
      const ParameterSpace& space, const std::vector<std::string>& plan_labels,
      const RunContextFactory& factory, const IndexedContextPointRunner& runner,
      const SweepOptions& opts = {});
};

}  // namespace robustmap

#endif  // ROBUSTMAP_CORE_SWEEP_ENGINE_H_
