#include "core/robustness_map.h"

#include <cassert>

namespace robustmap {

RobustnessMap::RobustnessMap(ParameterSpace space,
                             std::vector<std::string> plan_labels)
    : space_(std::move(space)), plan_labels_(std::move(plan_labels)) {
  data_.assign(plan_labels_.size(),
               std::vector<Measurement>(space_.num_points()));
}

void RobustnessMap::Set(size_t plan, size_t point, Measurement m) {
  assert(plan < data_.size() && point < data_[plan].size());
  data_[plan][point] = std::move(m);
}

const Measurement& RobustnessMap::At(size_t plan, size_t point) const {
  assert(plan < data_.size() && point < data_[plan].size());
  return data_[plan][point];
}

std::vector<double> RobustnessMap::SecondsOfPlan(size_t plan) const {
  std::vector<double> out;
  out.reserve(space_.num_points());
  for (const auto& m : data_[plan]) out.push_back(m.seconds);
  return out;
}

Result<size_t> RobustnessMap::PlanIndexOf(const std::string& label) const {
  for (size_t i = 0; i < plan_labels_.size(); ++i) {
    if (plan_labels_[i] == label) return i;
  }
  return Status::NotFound("no plan labeled " + label);
}

}  // namespace robustmap
