#ifndef ROBUSTMAP_CORE_MAP_IO_H_
#define ROBUSTMAP_CORE_MAP_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/robustness_map.h"
#include "core/shard_planner.h"

namespace robustmap {

/// Current version of the binary tile format. Writers emit the *lowest*
/// version that can carry the tile — v2 for a plain single-layer tile
/// (keeping every pre-existing artifact byte-stable), v3 only when the tile
/// carries layer names or more than one layer. Readers additionally accept
/// every older version back to `kMinReadableMapTileFormatVersion` (missing
/// fields default), and reject anything else outright — the format carries
/// measured data between processes (and potentially machines), so silent
/// misinterpretation is never an acceptable failure mode.
///
/// v1: magic, version, spec, axes, labels, cells, checksum.
/// v2: adds `wall_seconds` (the tile sweep's measured wall time)
///     immediately after the version field — the per-tile cost feedback
///     `CostModelKind::kMeasured` reschedules from.
/// v3: adds a layer count after `wall_seconds` and, after the plan labels,
///     one named cell block per layer — the serialized form of a
///     multi-output study (e.g. cold/warm/delta from a warm-cold sweep).
inline constexpr uint32_t kMapTileFormatVersion = 3;
inline constexpr uint32_t kMinReadableMapTileFormatVersion = 1;

/// One serialized unit of a sharded sweep: one `RobustnessMap` per study
/// output layer over a rectangular slice of a parent grid, together with
/// everything a coordinator needs to validate and merge it — the full
/// parent space, the tile rectangle, and the plan labels. A plain map is
/// the single-layer case; a warm-cold study's tiles carry three layers
/// (cold, warm, delta) over the same rectangle and plan set. A tile whose
/// rectangle covers the whole parent grid doubles as the serialized form
/// of a complete map.
struct MapTile {
  TileSpec spec;
  ParameterSpace parent_space;  ///< the grid the tile is a slice of
  RobustnessMap map;            ///< layer 0 over SliceSpace(parent_space, spec)

  /// Wall-clock seconds the sweep that produced this tile took; 0 when
  /// unknown (a v1 file, or an artifact that was merged rather than
  /// measured). Scheduling metadata only: it never participates in
  /// bit-identity comparisons of the *map*, and merged/reference artifacts
  /// write 0 so equal maps still serialize to equal bytes.
  double wall_seconds = 0;

  /// Layer names, one per layer when non-empty (e.g. {"cold", "warm",
  /// "delta"}). May only be empty for single-layer tiles — the plain-map
  /// case, whose files stay on the v2 byte stream.
  std::vector<std::string> layer_names{};

  /// Layers beyond `map`, in study order; every layer must cover the same
  /// slice with the same plan labels as `map`.
  std::vector<RobustnessMap> extra_layers{};

  size_t num_layers() const { return 1 + extra_layers.size(); }
  const RobustnessMap& layer(size_t i) const {
    return i == 0 ? map : extra_layers[i - 1];
  }
  /// The name of layer `i`; "" when this tile carries no names.
  std::string layer_name(size_t i) const {
    return i < layer_names.size() ? layer_names[i] : std::string();
  }
};

/// Serializes a tile. The on-disk layout is:
///
///   magic "RMAPTILE" | u32 version | f64 wall_seconds
///   | u64 layer_count (v3 only)
///   | header + axes + labels
///   | per layer: name (v3 only) + cells
///   | u64 FNV-1a checksum over everything before it
///
/// All integers little-endian, doubles as IEEE-754 bit patterns, strings
/// length-prefixed — fully deterministic, so equal tiles serialize to equal
/// bytes (the CI byte-for-byte diff relies on this). Single-layer unnamed
/// tiles are written as v2 — exactly the pre-multi-layer byte stream — so
/// plain-map artifacts stay byte-comparable across releases. Rejects tiles
/// whose layers disagree with each other or whose map space is not the
/// slice of `parent_space` at `spec`, and multi-layer tiles without one
/// name per layer.
Status WriteMapTile(std::ostream& os, const MapTile& tile);

/// Writes atomically: to `path` + a ".tmp" suffix, then rename(2), so a
/// crash mid-write never leaves a plausible-looking partial tile behind.
Status WriteMapTileFile(const std::string& path, const MapTile& tile);

/// Deserializes a tile, with distinct errors for the three failure modes:
/// not-a-tile / truncated file and checksum mismatch are `Corruption`
/// (saying which), an unknown format version is `NotSupported`.
Result<MapTile> ReadMapTile(std::istream& is);
Result<MapTile> ReadMapTileFile(const std::string& path);

/// Reassembles a full map per layer from tiles. Every tile must agree on
/// the parent space, plan labels, layer count, and layer names, lie inside
/// the grid, and together the rectangles must cover every point exactly
/// once — any gap, overlap, or axis/layer disagreement is an
/// `InvalidArgument`. Each merged layer is a pure cell copy, so it is
/// bit-identical to the map a single sweep of the parent grid would have
/// produced for that layer.
Result<std::vector<RobustnessMap>> MergeTileLayers(
    const ParameterSpace& space, const std::vector<std::string>& plan_labels,
    const std::vector<MapTile>& tiles);

/// Single-layer convenience over `MergeTileLayers`: rejects multi-layer
/// tiles (use the layer-aware form) and returns the one merged map.
Result<RobustnessMap> MergeTiles(const ParameterSpace& space,
                                 const std::vector<std::string>& plan_labels,
                                 const std::vector<MapTile>& tiles);

}  // namespace robustmap

#endif  // ROBUSTMAP_CORE_MAP_IO_H_
