#ifndef ROBUSTMAP_CORE_MAP_IO_H_
#define ROBUSTMAP_CORE_MAP_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/robustness_map.h"
#include "core/shard_planner.h"

namespace robustmap {

/// Current version of the binary tile format. Writers always emit this
/// version; readers additionally accept every older version back to
/// `kMinReadableMapTileFormatVersion` (missing fields default), and reject
/// anything else outright — the format carries measured data between
/// processes (and potentially machines), so silent misinterpretation is
/// never an acceptable failure mode.
///
/// v1: magic, version, spec, axes, labels, cells, checksum.
/// v2: adds `wall_seconds` (the tile sweep's measured wall time)
///     immediately after the version field — the per-tile cost feedback
///     `CostModelKind::kMeasured` reschedules from.
inline constexpr uint32_t kMapTileFormatVersion = 2;
inline constexpr uint32_t kMinReadableMapTileFormatVersion = 1;

/// One serialized unit of a sharded sweep: a `RobustnessMap` over a
/// rectangular slice of a parent grid, together with everything a
/// coordinator needs to validate and merge it — the full parent space, the
/// tile rectangle, and the plan labels. A tile whose rectangle covers the
/// whole parent grid doubles as the serialized form of a complete map.
struct MapTile {
  TileSpec spec;
  ParameterSpace parent_space;  ///< the grid the tile is a slice of
  RobustnessMap map;            ///< over SliceSpace(parent_space, spec)

  /// Wall-clock seconds the sweep that produced this tile took; 0 when
  /// unknown (a v1 file, or an artifact that was merged rather than
  /// measured). Scheduling metadata only: it never participates in
  /// bit-identity comparisons of the *map*, and merged/reference artifacts
  /// write 0 so equal maps still serialize to equal bytes.
  double wall_seconds = 0;
};

/// Serializes a tile. The on-disk layout is:
///
///   magic "RMAPTILE" | u32 version | f64 wall_seconds
///   | header + axes + labels + cells
///   | u64 FNV-1a checksum over everything before it
///
/// All integers little-endian, doubles as IEEE-754 bit patterns, strings
/// length-prefixed — fully deterministic, so equal tiles serialize to equal
/// bytes (the CI byte-for-byte diff relies on this). Rejects tiles whose
/// map space is not the slice of `parent_space` at `spec`.
Status WriteMapTile(std::ostream& os, const MapTile& tile);

/// Writes atomically: to `path` + a ".tmp" suffix, then rename(2), so a
/// crash mid-write never leaves a plausible-looking partial tile behind.
Status WriteMapTileFile(const std::string& path, const MapTile& tile);

/// Deserializes a tile, with distinct errors for the three failure modes:
/// not-a-tile / truncated file and checksum mismatch are `Corruption`
/// (saying which), an unknown format version is `NotSupported`.
Result<MapTile> ReadMapTile(std::istream& is);
Result<MapTile> ReadMapTileFile(const std::string& path);

/// Reassembles a full map from tiles. Every tile must agree on the parent
/// space and plan labels, lie inside the grid, and together the rectangles
/// must cover every point exactly once — any gap, overlap, or axis
/// disagreement is an `InvalidArgument`. The merged map is a pure cell copy,
/// so it is bit-identical to the map a single sweep of the parent grid
/// would have produced.
Result<RobustnessMap> MergeTiles(const ParameterSpace& space,
                                 const std::vector<std::string>& plan_labels,
                                 const std::vector<MapTile>& tiles);

}  // namespace robustmap

#endif  // ROBUSTMAP_CORE_MAP_IO_H_
