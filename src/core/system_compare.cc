#include "core/system_compare.h"

#include <algorithm>
#include <cmath>

#include "common/format.h"

namespace robustmap {

WorstCaseMap ComputeWorstCase(const RobustnessMap& map) {
  WorstCaseMap out;
  out.space = map.space();
  out.plan_labels = map.plan_labels();
  size_t points = map.space().num_points();
  out.worst_seconds.assign(points, 0);
  out.worst_plan.assign(points, 0);
  for (size_t pt = 0; pt < points; ++pt) {
    double worst = map.At(0, pt).seconds;
    size_t arg = 0;
    for (size_t pl = 1; pl < map.num_plans(); ++pl) {
      double s = map.At(pl, pt).seconds;
      if (s > worst) {
        worst = s;
        arg = pl;
      }
    }
    out.worst_seconds[pt] = worst;
    out.worst_plan[pt] = arg;
  }
  out.safety.assign(map.num_plans(), std::vector<double>(points, 1.0));
  for (size_t pl = 0; pl < map.num_plans(); ++pl) {
    for (size_t pt = 0; pt < points; ++pt) {
      double s = map.At(pl, pt).seconds;
      out.safety[pl][pt] = s > 0 ? out.worst_seconds[pt] / s : 1.0;
    }
  }
  return out;
}

std::vector<size_t> DangerCells(const WorstCaseMap& map) {
  std::vector<size_t> danger(map.plan_labels.size(), 0);
  for (size_t winner : map.worst_plan) ++danger[winner];
  return danger;
}

Result<SystemComparison> CompareSystems(
    const RobustnessMap& map, const std::vector<SystemConfig>& systems) {
  SystemComparison cmp;
  cmp.space = map.space();
  size_t points = map.space().num_points();

  for (const SystemConfig& sys : systems) {
    SystemProfile profile;
    profile.name = sys.name;
    std::vector<size_t> plan_indexes;
    for (PlanKind kind : sys.plans) {
      auto idx = map.PlanIndexOf(PlanKindLabel(kind));
      RM_RETURN_IF_ERROR(idx.status());
      plan_indexes.push_back(idx.value());
    }
    if (plan_indexes.empty()) {
      return Status::InvalidArgument("system with no plans: " + sys.name);
    }
    profile.best_seconds.assign(points, 0);
    profile.best_plan.assign(points, 0);
    for (size_t pt = 0; pt < points; ++pt) {
      double best = map.At(plan_indexes[0], pt).seconds;
      size_t arg = plan_indexes[0];
      for (size_t pl : plan_indexes) {
        double s = map.At(pl, pt).seconds;
        if (s < best) {
          best = s;
          arg = pl;
        }
      }
      profile.best_seconds[pt] = best;
      profile.best_plan[pt] = arg;
    }
    cmp.profiles.push_back(std::move(profile));
  }

  cmp.quotient.assign(cmp.profiles.size(), std::vector<double>(points, 1.0));
  cmp.wins.assign(cmp.profiles.size(), 0);
  cmp.worst_quotient.assign(cmp.profiles.size(), 1.0);
  for (size_t pt = 0; pt < points; ++pt) {
    double overall = cmp.profiles[0].best_seconds[pt];
    for (const auto& p : cmp.profiles) {
      overall = std::min(overall, p.best_seconds[pt]);
    }
    for (size_t s = 0; s < cmp.profiles.size(); ++s) {
      double q = overall > 0 ? cmp.profiles[s].best_seconds[pt] / overall : 1;
      cmp.quotient[s][pt] = q;
      if (q <= 1.0 + 1e-12) ++cmp.wins[s];
      cmp.worst_quotient[s] = std::max(cmp.worst_quotient[s], q);
    }
  }
  return cmp;
}

std::string RenderSystemComparison(const SystemComparison& cmp) {
  TextTable t({"system", "wins (best of all systems)", "worst factor",
               "geomean factor"});
  size_t points = cmp.space.num_points();
  char buf[48];
  for (size_t s = 0; s < cmp.profiles.size(); ++s) {
    std::vector<std::string> row;
    row.push_back(cmp.profiles[s].name);
    std::snprintf(buf, sizeof(buf), "%zu / %zu", cmp.wins[s], points);
    row.emplace_back(buf);
    std::snprintf(buf, sizeof(buf), "%.3g", cmp.worst_quotient[s]);
    row.emplace_back(buf);
    double log_sum = 0;
    for (double q : cmp.quotient[s]) log_sum += std::log(q);
    std::snprintf(buf, sizeof(buf), "%.3g",
                  std::exp(log_sum / static_cast<double>(points)));
    row.emplace_back(buf);
    t.AddRow(std::move(row));
  }
  return t.ToString();
}

}  // namespace robustmap
