#ifndef ROBUSTMAP_CORE_COLOR_SCALE_H_
#define ROBUSTMAP_CORE_COLOR_SCALE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace robustmap {

/// 24-bit color.
struct Rgb {
  uint8_t r = 0, g = 0, b = 0;
};

/// Bucketed color scale with one bucket per order of magnitude, matching the
/// paper's legends: "from green to red and finally black ... with each color
/// difference indicating an order of magnitude" (Figure 3) and the factor
/// scale of Figure 6.
class ColorScale {
 public:
  /// Figure 3: absolute execution time. Buckets: <1 ms, 1–10 ms, 10–100 ms,
  /// 0.1–1 s, 1–10 s, 10–100 s, 100–1000 s, >1000 s.
  static ColorScale AbsoluteSeconds();

  /// Figure 6: cost factor relative to the best plan. Buckets: 1 (optimal),
  /// 1–10, 10–100, 100–1k, 1k–10k, 10k–100k, >100k.
  static ColorScale RelativeFactor();

  /// Figure 10 companion: small-integer counts (number of optimal plans).
  static ColorScale Counts(int max_count);

  /// Warm-minus-cold delta maps: a diverging scale, blue where the warm
  /// cache helps (negative delta) through white (|delta| ≤ 10 ms, no
  /// change) to red where warmth hurts (e.g. a hit that parks the head and
  /// turns the next read into a full seek). One bucket per order of
  /// magnitude on each side, mirroring the absolute scale's resolution.
  static ColorScale DivergingSeconds();

  /// Bucket index of a value (clamped into range).
  int BucketOf(double v) const;
  Rgb ColorOf(double v) const { return colors_[BucketOf(v)]; }
  char GlyphOf(double v) const { return glyphs_[BucketOf(v)]; }
  /// ANSI 24-bit background escape + two spaces + reset (one heatmap cell).
  std::string AnsiCellOf(double v) const;

  size_t num_buckets() const { return colors_.size(); }
  const std::string& bucket_label(size_t i) const { return labels_[i]; }
  Rgb bucket_color(size_t i) const { return colors_[i]; }
  char bucket_glyph(size_t i) const { return glyphs_[i]; }
  const std::string& title() const { return title_; }

 private:
  ColorScale(std::string title, std::vector<double> upper_bounds,
             std::vector<Rgb> colors, std::vector<std::string> labels,
             std::string glyphs);

  std::string title_;
  /// Bucket i covers (upper_bounds_[i-1], upper_bounds_[i]]; the last bucket
  /// is open-ended.
  std::vector<double> upper_bounds_;
  std::vector<Rgb> colors_;
  std::vector<std::string> labels_;
  std::string glyphs_;
};

}  // namespace robustmap

#endif  // ROBUSTMAP_CORE_COLOR_SCALE_H_
