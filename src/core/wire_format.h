#ifndef ROBUSTMAP_CORE_WIRE_FORMAT_H_
#define ROBUSTMAP_CORE_WIRE_FORMAT_H_

#include <bit>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "engine/executor.h"

namespace robustmap {
namespace wire {

/// The byte-level vocabulary shared by every binary artifact the repo
/// writes (map tiles, the cell-result cache): little-endian integers,
/// IEEE-754 bit-pattern doubles, length-prefixed strings, and an FNV-1a 64
/// trailer — fully deterministic, so equal data serializes to equal bytes
/// (the CI byte-for-byte diffs rest on this). Extracted from map_io.cc so
/// a second format cannot drift from the first by re-implementing it.

inline uint64_t Fnv1a64(const char* data, size_t n) {
  uint64_t h = 14695981039346656037ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

// ---- little-endian encoding into a growing buffer ----

inline void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void PutDouble(std::string* out, double v) {
  PutU64(out, std::bit_cast<uint64_t>(v));
}

inline void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked sequential reader over a decoded payload. Every getter
/// fails with `Corruption("truncated <what> ...")` rather than reading
/// past the end, so a file whose declared counts outrun its bytes is
/// reported the same way as one cut short by a crashed writer. `what`
/// names the artifact in error messages ("map tile", "cell cache").
class Cursor {
 public:
  Cursor(const char* data, size_t size, const char* what)
      : data_(data), size_(size), what_(what) {}

  Status GetU32(uint32_t* v) {
    RM_RETURN_IF_ERROR(Need(4));
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 4;
    return Status::OK();
  }

  Status GetU64(uint64_t* v) {
    RM_RETURN_IF_ERROR(Need(8));
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 8;
    return Status::OK();
  }

  Status GetDouble(double* v) {
    uint64_t bits = 0;
    RM_RETURN_IF_ERROR(GetU64(&bits));
    *v = std::bit_cast<double>(bits);
    return Status::OK();
  }

  Status GetString(std::string* s) {
    uint32_t n = 0;
    RM_RETURN_IF_ERROR(GetU32(&n));
    RM_RETURN_IF_ERROR(Need(n));
    s->assign(data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  size_t remaining() const { return size_ - pos_; }

 private:
  Status Need(size_t n) {
    if (size_ - pos_ < n) {
      return Status::Corruption("truncated " + std::string(what_) +
                                ": wanted " + std::to_string(n) +
                                " more bytes, have " +
                                std::to_string(size_ - pos_));
    }
    return Status::OK();
  }

  const char* data_;
  size_t size_;
  const char* what_;
  size_t pos_ = 0;
};

/// The serialized form of one measured cell — identical in the tile format
/// and the cell cache, so a cached measurement round-trips to the exact
/// bytes a freshly measured one would have produced.
inline void PutMeasurement(std::string* out, const Measurement& m) {
  PutDouble(out, m.seconds);
  PutU64(out, m.output_rows);
  PutU64(out, m.io.sequential_reads);
  PutU64(out, m.io.skip_reads);
  PutU64(out, m.io.random_reads);
  PutU64(out, m.io.writes);
  PutU64(out, m.io.buffer_hits);
  PutU64(out, m.io.bytes_read);
  PutU64(out, m.io.bytes_written);
  PutString(out, m.plan_label);
}

inline Status GetMeasurement(Cursor* c, Measurement* m) {
  RM_RETURN_IF_ERROR(c->GetDouble(&m->seconds));
  RM_RETURN_IF_ERROR(c->GetU64(&m->output_rows));
  RM_RETURN_IF_ERROR(c->GetU64(&m->io.sequential_reads));
  RM_RETURN_IF_ERROR(c->GetU64(&m->io.skip_reads));
  RM_RETURN_IF_ERROR(c->GetU64(&m->io.random_reads));
  RM_RETURN_IF_ERROR(c->GetU64(&m->io.writes));
  RM_RETURN_IF_ERROR(c->GetU64(&m->io.buffer_hits));
  RM_RETURN_IF_ERROR(c->GetU64(&m->io.bytes_read));
  RM_RETURN_IF_ERROR(c->GetU64(&m->io.bytes_written));
  RM_RETURN_IF_ERROR(c->GetString(&m->plan_label));
  return Status::OK();
}

}  // namespace wire
}  // namespace robustmap

#endif  // ROBUSTMAP_CORE_WIRE_FORMAT_H_
