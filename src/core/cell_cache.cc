#include "core/cell_cache.h"

#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <iterator>
#include <ostream>
#include <utility>

#include "core/sharded_sweep.h"
#include "core/wire_format.h"

namespace robustmap {

namespace {

using wire::Cursor;
using wire::Fnv1a64;
using wire::GetMeasurement;
using wire::PutMeasurement;
using wire::PutString;
using wire::PutU32;
using wire::PutU64;

constexpr char kMagic[8] = {'R', 'M', 'C', 'C', 'A', 'C', 'H', 'E'};
constexpr size_t kMagicSize = sizeof(kMagic);
constexpr size_t kVersionOffset = kMagicSize;
constexpr size_t kChecksumSize = sizeof(uint64_t);
// Magic + both versions + entry count + trailing checksum: the least any
// cache file can be.
constexpr size_t kMinFileSize =
    kMagicSize + 2 * sizeof(uint32_t) + sizeof(uint64_t) + kChecksumSize;

// The artifact name Cursor errors lead with ("truncated cell cache: ...").
constexpr char kWhat[] = "cell cache";

std::string Hex64(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

std::string DoubleBits(double v) { return Hex64(std::bit_cast<uint64_t>(v)); }

uint64_t HashString(const std::string& s) {
  return Fnv1a64(s.data(), s.size());
}

}  // namespace

std::string CellCacheFileName(const std::string& dir) {
  return dir + "/cells.rmc";
}

Status WriteCellCache(std::ostream& os, const CellCacheData& data) {
  // Ascending fingerprint order whatever the caller supplied: equal
  // contents must serialize to equal bytes.
  std::vector<const CellCacheEntry*> sorted;
  sorted.reserve(data.entries.size());
  for (const CellCacheEntry& e : data.entries) sorted.push_back(&e);
  std::sort(sorted.begin(), sorted.end(),
            [](const CellCacheEntry* a, const CellCacheEntry* b) {
              return a->fingerprint < b->fingerprint;
            });
  for (size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i]->fingerprint == sorted[i - 1]->fingerprint) {
      return Status::InvalidArgument(
          "duplicate cell-cache fingerprint " +
          Hex64(sorted[i]->fingerprint) +
          "; a content-addressed store holds one entry per key");
    }
  }

  std::string buf;
  buf.append(kMagic, kMagicSize);
  PutU32(&buf, kCellCacheFormatVersion);
  PutU32(&buf, data.fingerprint_schema);
  PutU64(&buf, sorted.size());
  for (const CellCacheEntry* e : sorted) {
    PutU64(&buf, e->fingerprint);
    PutString(&buf, e->study);
    PutMeasurement(&buf, e->m);
  }
  PutU64(&buf, Fnv1a64(buf.data(), buf.size()));

  os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  if (!os.good()) return Status::Internal("cell cache write failed");
  return Status::OK();
}

Status WriteCellCacheFile(const std::string& path,
                          const CellCacheData& data) {
  // Write-then-rename: readers only ever see either no file or a complete
  // one. The temp name carries the writer's address and pid so concurrent
  // writers never clobber each other's in-flight writes.
  const std::string tmp =
      path + ".tmp." + std::to_string(reinterpret_cast<uintptr_t>(&data)) +
      "." + std::to_string(static_cast<unsigned long>(::getpid()));
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f.is_open()) {
      return Status::Internal("cannot open " + tmp + " for writing");
    }
    Status s = WriteCellCache(f, data);
    if (!s.ok()) {
      f.close();
      std::remove(tmp.c_str());
      return s;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

Result<CellCacheData> ReadCellCache(std::istream& is) {
  std::string buf((std::istreambuf_iterator<char>(is)),
                  std::istreambuf_iterator<char>());
  if (buf.size() < kMinFileSize) {
    return Status::Corruption("truncated cell cache: " +
                              std::to_string(buf.size()) +
                              " bytes is smaller than any valid cache");
  }
  if (std::memcmp(buf.data(), kMagic, kMagicSize) != 0) {
    return Status::Corruption("not a cell cache (bad magic)");
  }
  // Version gates everything else: an unknown version may checksum or lay
  // out its payload differently, so it is the one error reported before
  // the integrity check.
  Cursor header(buf.data() + kVersionOffset, buf.size() - kVersionOffset,
                kWhat);
  uint32_t version = 0;
  RM_RETURN_IF_ERROR(header.GetU32(&version));
  if (version != kCellCacheFormatVersion) {
    return Status::NotSupported(
        "cell cache format version " + std::to_string(version) +
        " (this build reads version " +
        std::to_string(kCellCacheFormatVersion) + ")");
  }
  const size_t payload_size = buf.size() - kChecksumSize;
  Cursor trailer(buf.data() + payload_size, kChecksumSize, kWhat);
  uint64_t stored = 0;
  RM_RETURN_IF_ERROR(trailer.GetU64(&stored));
  const uint64_t computed = Fnv1a64(buf.data(), payload_size);
  if (stored != computed) {
    return Status::Corruption("cell cache checksum mismatch (file damaged "
                              "or cut short)");
  }

  Cursor c(buf.data() + kVersionOffset + sizeof(uint32_t),
           payload_size - kVersionOffset - sizeof(uint32_t), kWhat);
  CellCacheData data;
  RM_RETURN_IF_ERROR(c.GetU32(&data.fingerprint_schema));
  uint64_t count = 0;
  RM_RETURN_IF_ERROR(c.GetU64(&count));
  // Every entry occupies at least a fingerprint, a study length, and the
  // measurement's fixed fields; bound the count by the bytes that could
  // back it *before* allocating, so a damaged count surfaces as
  // Corruption, not as a multi-terabyte resize throwing bad_alloc.
  constexpr size_t kMinEntryBytes =
      sizeof(uint64_t) + sizeof(uint32_t) + 9 * sizeof(uint64_t) +
      sizeof(uint32_t);
  if (count > c.remaining() / kMinEntryBytes) {
    return Status::Corruption("cell cache claims " + std::to_string(count) +
                              " entries but only " +
                              std::to_string(c.remaining()) +
                              " bytes remain");
  }
  data.entries.resize(count);
  uint64_t prev_fp = 0;
  for (uint64_t i = 0; i < count; ++i) {
    CellCacheEntry& e = data.entries[i];
    RM_RETURN_IF_ERROR(c.GetU64(&e.fingerprint));
    if (i > 0 && e.fingerprint <= prev_fp) {
      return Status::Corruption(
          "cell cache entries out of fingerprint order (deterministic "
          "files are sorted)");
    }
    prev_fp = e.fingerprint;
    RM_RETURN_IF_ERROR(c.GetString(&e.study));
    RM_RETURN_IF_ERROR(GetMeasurement(&c, &e.m));
  }
  if (c.remaining() != 0) {
    return Status::Corruption("cell cache has " +
                              std::to_string(c.remaining()) +
                              " trailing bytes past its declared entries");
  }
  return data;
}

Result<CellCacheData> ReadCellCacheFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.is_open()) {
    return Status::NotFound("cannot open cell cache " + path);
  }
  auto data = ReadCellCache(f);
  if (!data.ok()) {
    if (data.status().IsNotSupported()) {
      return Status::NotSupported(path + ": " + data.status().message());
    }
    return Status::Corruption(path + ": " + data.status().message());
  }
  return data;
}

uint64_t EnvironmentFingerprint(const RunContext& ctx, int64_t domain) {
  const DiskParameters& disk = ctx.device->model().params();
  const CpuParameters& cpu = ctx.cpu;
  std::string canon = "env|v1";
  canon += "|domain=" + std::to_string(domain);
  canon += "|data_pages=" + std::to_string(ctx.device->data_watermark());
  canon += "|pool_pages=" + std::to_string(ctx.pool->capacity_pages());
  canon += "|sort_bytes=" + std::to_string(ctx.sort_memory_bytes);
  canon += "|hash_bytes=" + std::to_string(ctx.hash_memory_bytes);
  canon += "|disk=" + std::to_string(disk.page_size_bytes) + "," +
           DoubleBits(disk.sequential_bandwidth_bytes_per_sec) + "," +
           DoubleBits(disk.random_access_seconds) + "," +
           DoubleBits(disk.skip_settle_seconds) + "," +
           DoubleBits(disk.skip_per_page_seconds) + "," +
           std::to_string(disk.max_skip_gap_pages);
  canon += "|cpu=" + DoubleBits(cpu.predicate_eval_seconds) + "," +
           DoubleBits(cpu.row_fetch_seconds) + "," +
           DoubleBits(cpu.index_entry_seconds) + "," +
           DoubleBits(cpu.compare_seconds) + "," +
           DoubleBits(cpu.hash_seconds) + "," +
           DoubleBits(cpu.copy_row_seconds) + "," +
           DoubleBits(cpu.bitmap_set_seconds);
  return HashString(canon);
}

uint64_t CellFingerprint(uint64_t env_fingerprint, const char* study,
                         const std::string& warmup_spec,
                         const std::string& plan_label, double x, double y) {
  std::string canon = "cell|s" +
                      std::to_string(kCellCacheFingerprintSchemaVersion);
  canon += "|env=" + Hex64(env_fingerprint);
  canon += "|study=" + std::string(study);
  canon += "|warmup=" + warmup_spec;
  canon += "|plan=" + plan_label;
  canon += "|x=" + DoubleBits(x);
  canon += "|y=" + DoubleBits(y);
  return HashString(canon);
}

void CellResultCache::Open(const std::string& dir) {
  if (Status s = EnsureDirectory(dir); !s.ok()) {
    std::fprintf(stderr,
                 "  cell cache: %s; continuing without persistence\n",
                 s.ToString().c_str());
    return;
  }
  path_ = CellCacheFileName(dir);
  auto data = ReadCellCacheFile(path_);
  if (data.ok()) {
    if (data.value().fingerprint_schema !=
        kCellCacheFingerprintSchemaVersion) {
      // Stale schema: the keys were computed under assumptions this build
      // no longer makes. Partial trust would poison maps; starting over
      // only costs re-measurement.
      std::fprintf(stderr,
                   "  cell cache: %s has fingerprint schema %u, this build "
                   "uses %u; ignoring it (the next flush repopulates)\n",
                   path_.c_str(), data.value().fingerprint_schema,
                   kCellCacheFingerprintSchemaVersion);
      return;
    }
    MutexLock lock(&mu_);
    for (CellCacheEntry& e : data.value().entries) {
      const uint64_t fp = e.fingerprint;
      entries_.emplace(fp, std::move(e));
    }
    return;
  }
  if (!data.status().IsNotFound()) {
    // Damaged or foreign file: warn and start empty — a cache must never
    // poison a map, and the next flush overwrites the wreckage.
    std::fprintf(stderr,
                 "  cell cache: ignoring unreadable %s (%s); starting "
                 "empty\n",
                 path_.c_str(), data.status().ToString().c_str());
  }
}

bool CellResultCache::Lookup(uint64_t fingerprint, Measurement* out) const {
  MutexLock lock(&mu_);
  const auto it = entries_.find(fingerprint);
  if (it == entries_.end()) return false;
  *out = it->second.m;
  return true;
}

bool CellResultCache::Contains(uint64_t fingerprint) const {
  MutexLock lock(&mu_);
  return entries_.find(fingerprint) != entries_.end();
}

bool CellResultCache::Publish(uint64_t fingerprint, const std::string& study,
                              const Measurement& m) {
  MutexLock lock(&mu_);
  const auto [it, inserted] =
      entries_.try_emplace(fingerprint, CellCacheEntry{fingerprint, study, m});
  if (inserted) dirty_ = true;
  return inserted;
}

Status CellResultCache::WriteCellCacheFile() {
  CellCacheData data;
  {
    MutexLock lock(&mu_);
    if (path_.empty() || !dirty_) return Status::OK();
    data.entries.reserve(entries_.size());
    for (const auto& [fp, e] : entries_) data.entries.push_back(e);
  }
  RM_RETURN_IF_ERROR(robustmap::WriteCellCacheFile(path_, data));
  MutexLock lock(&mu_);
  dirty_ = false;
  return Status::OK();
}

size_t CellResultCache::size() const {
  MutexLock lock(&mu_);
  return entries_.size();
}

}  // namespace robustmap
