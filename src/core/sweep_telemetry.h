#ifndef ROBUSTMAP_CORE_SWEEP_TELEMETRY_H_
#define ROBUSTMAP_CORE_SWEEP_TELEMETRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"

namespace robustmap {

/// A fixed-bucket latency histogram on the 1-2-5 decade ladder from 1 µs
/// to 100 s (25 upper bounds) plus one overflow bucket. Fixed buckets keep
/// every histogram in the tree mergeable by plain element-wise addition —
/// a worker's sidecar adds into the coordinator's aggregate with no
/// rebinning — and make `telemetry.json` byte-comparable across runs that
/// measured the same counts.
struct LatencyHistogram {
  /// Upper bounds in seconds; bucket i counts samples with
  /// `value <= bounds()[i]` (and above the previous bound). The last
  /// element of `buckets` counts overflow samples above the top bound.
  static const std::vector<double>& Bounds();

  /// bounds().size() + 1 counts; the final slot is the overflow bucket.
  std::vector<uint64_t> buckets;
  uint64_t count = 0;
  double sum_seconds = 0;
  double min_seconds = 0;
  double max_seconds = 0;

  LatencyHistogram();
  void Record(double seconds);
  void Merge(const LatencyHistogram& other);
};

/// Process-wide sink of named counters and latency histograms for the
/// sweep stack. Disabled by default; when disabled every record call is a
/// single relaxed atomic load. Everything here is sidecar-only
/// observability: nothing recorded may ever feed back into a map value,
/// and CI byte-diffs maps produced with the sink on vs. off.
///
/// `WriteFile` emits `telemetry.json` with deterministically ordered keys
/// (std::map iteration order), so two runs that measured identical counts
/// serialize to identical bytes. Worker processes write per-tile sidecars
/// which the coordinator folds in with `MergeFromFile`.
class SweepTelemetry {
 public:
  static SweepTelemetry& Get();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Adds `delta` to counter `name`. No-op while disabled.
  void AddCounter(const std::string& name, uint64_t delta);

  /// Records one latency sample into histogram `name`. No-op while
  /// disabled.
  void RecordLatency(const std::string& name, double seconds);

  /// Drops all recorded data (keeps the enabled flag). For forked worker
  /// children and tests.
  void Reset();

  /// Serializes counters + histograms as deterministic-ordered JSON.
  Status WriteFile(const std::string& path) const;

  /// Adds the counters and histograms of another telemetry file (a worker
  /// sidecar) into this sink.
  Status MergeFromFile(const std::string& path);

  /// Snapshots for in-process consumers (bench top-counter blocks, tests).
  std::map<std::string, uint64_t> Counters() const;
  std::map<std::string, LatencyHistogram> Histograms() const;

 private:
  SweepTelemetry() = default;

  std::atomic<bool> enabled_{false};
  mutable Mutex mu_;
  std::map<std::string, uint64_t> counters_ GUARDED_BY(mu_);
  std::map<std::string, LatencyHistogram> histograms_ GUARDED_BY(mu_);
};

/// A parsed telemetry.json — the read side shared by `map_cat
/// --telemetry`, `SweepTelemetry::MergeFromFile`, and tests.
struct TelemetryData {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, LatencyHistogram> histograms;
};

Result<TelemetryData> ReadTelemetryFile(const std::string& path);

}  // namespace robustmap

#endif  // ROBUSTMAP_CORE_SWEEP_TELEMETRY_H_
