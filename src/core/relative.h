#ifndef ROBUSTMAP_CORE_RELATIVE_H_
#define ROBUSTMAP_CORE_RELATIVE_H_

#include <string>
#include <vector>

#include "core/robustness_map.h"

namespace robustmap {

/// Performance of every plan relative to the best plan at each point — the
/// paper's §3.3: "a given plan is optimal if ... the quotient of costs is 1;
/// a plan is sub-optimal if the quotient is much higher than 1."
struct RelativeMap {
  ParameterSpace space;
  std::vector<std::string> plan_labels;
  std::vector<double> best_seconds;               ///< per point
  std::vector<size_t> best_plan;                  ///< argmin per point
  std::vector<std::vector<double>> quotient;      ///< [plan][point], >= 1

  const std::vector<double>& QuotientsOf(size_t plan) const {
    return quotient[plan];
  }
};

/// Computes per-point best plans and cost quotients.
RelativeMap ComputeRelative(const RobustnessMap& map);

/// Worst (largest) quotient of one plan over the whole space.
double WorstQuotient(const RelativeMap& rel, size_t plan);

}  // namespace robustmap

#endif  // ROBUSTMAP_CORE_RELATIVE_H_
