#ifndef ROBUSTMAP_CORE_CELL_CACHE_H_
#define ROBUSTMAP_CORE_CELL_CACHE_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "engine/executor.h"
#include "io/run_context.h"

namespace robustmap {

/// Current version of the binary cell-cache file format. Readers reject
/// anything else outright (`NotSupported`) — the cache carries measured
/// data between processes, so silent misinterpretation is never an
/// acceptable failure mode. Bump whenever the entry layout changes.
inline constexpr uint32_t kCellCacheFormatVersion = 1;

/// Version of the *fingerprint schema*: the canonical string hashed into
/// each entry's key, including the serialized `Measurement` field set.
/// Bump whenever the fingerprint inputs change meaning (a new field in
/// `Measurement`, a new environment parameter, a reworded warmup spec) —
/// old entries were keyed under assumptions that no longer hold, so a
/// cache written under a different schema is ignored wholesale rather
/// than partially trusted.
inline constexpr uint32_t kCellCacheFingerprintSchemaVersion = 1;

/// The cache file inside a cache directory.
std::string CellCacheFileName(const std::string& dir);

/// One persisted cell result: the content fingerprint it is keyed by, the
/// study that measured it (inspection metadata — the fingerprint alone
/// decides identity), and the full measurement, every field a map tile
/// stores — so a cache hit reproduces the exact bytes a fresh measurement
/// would have serialized to.
struct CellCacheEntry {
  uint64_t fingerprint = 0;
  std::string study;
  Measurement m;
};

/// A decoded cache file: its fingerprint schema plus the entries, sorted
/// ascending by fingerprint (the deterministic-bytes order `WriteCellCache`
/// enforces).
struct CellCacheData {
  uint32_t fingerprint_schema = kCellCacheFingerprintSchemaVersion;
  std::vector<CellCacheEntry> entries;
};

/// Serializes a cache. The on-disk layout follows the map_io conventions:
///
///   magic "RMCCACHE" | u32 format version | u32 fingerprint schema
///   | u64 entry count
///   | per entry: u64 fingerprint + study string + measurement
///   | u64 FNV-1a checksum over everything before it
///
/// Entries are written in ascending fingerprint order whatever order the
/// caller supplies, so equal contents serialize to equal bytes.
Status WriteCellCache(std::ostream& os, const CellCacheData& data);

/// Writes atomically: to `path` + a ".tmp" suffix, then rename(2), so a
/// crash mid-write never leaves a plausible-looking partial cache behind.
Status WriteCellCacheFile(const std::string& path, const CellCacheData& data);

/// Deserializes a cache, with distinct errors for the failure modes:
/// not-a-cache / truncated file and checksum mismatch are `Corruption`
/// (saying which), an unknown format version is `NotSupported`. A
/// mismatched *fingerprint* schema parses fine and is surfaced in the
/// result — whether stale-schema entries are usable is the caller's
/// policy call (`CellResultCache::Open` drops them; `map_cat
/// --cache-info` prints them).
Result<CellCacheData> ReadCellCache(std::istream& is);
Result<CellCacheData> ReadCellCacheFile(const std::string& path);

/// Fingerprint of everything about the simulated machine that a measured
/// value depends on: the data layout (domain, data pages), the device and
/// CPU cost parameters, the pool capacity, and the memory budgets.
/// Stable across runs and machines (pure FNV-1a over a canonical string —
/// no wall clock, no pointers, no hash salts).
uint64_t EnvironmentFingerprint(const RunContext& ctx, int64_t domain);

/// Fingerprint of one cell measurement: the environment, the study, the
/// warmup spec in effect for the sweep, the plan label, and the point's
/// axis *values* (IEEE-754 bit patterns — values, not grid indices, so a
/// tile slice or a subsampled refinement lattice of the same grid hits
/// the same keys), all under `kCellCacheFingerprintSchemaVersion`.
uint64_t CellFingerprint(uint64_t env_fingerprint, const char* study,
                         const std::string& warmup_spec,
                         const std::string& plan_label, double x, double y);

/// The persistent, content-addressed store of measured cell results —
/// "never measure a cell twice". Deterministic measurements make reuse
/// bit-safe: a hit returns the exact `Measurement` a fresh run would have
/// produced, so maps built from hits are byte-identical to maps built
/// from measurements (and CI proves it).
///
/// Thread-safe: sweep workers publish and look up concurrently. The cache
/// never poisons a map — `Open` tolerates a damaged, truncated,
/// wrong-version, or wrong-schema file by warning on stderr and starting
/// empty (the next flush repopulates it).
class CellResultCache {
 public:
  /// An unattached, in-memory cache (progressive sweeps without a
  /// --cache-dir use one per run).
  CellResultCache() = default;

  CellResultCache(const CellResultCache&) = delete;
  CellResultCache& operator=(const CellResultCache&) = delete;

  /// Attaches this cache to `dir` (created if missing) and loads
  /// `cells.rmc` when a valid one is present. Damage of any kind —
  /// truncation, checksum mismatch, unknown format version, stale
  /// fingerprint schema — is a warning on stderr and an empty cache,
  /// never an error and never a partially trusted one. Call once, before
  /// sharing the cache with sweep workers.
  void Open(const std::string& dir);

  /// True with the stored measurement in `*out` when `fingerprint` is
  /// cached.
  bool Lookup(uint64_t fingerprint, Measurement* out) const;

  /// Lookup without the copy, for planning passes.
  bool Contains(uint64_t fingerprint) const;

  /// Inserts the measurement under `fingerprint` unless one is already
  /// there (first writer wins; deterministic measurements make the copies
  /// identical, so dropping duplicates keeps re-publishing merge results
  /// from dirtying a clean cache). Returns true when the entry is new.
  bool Publish(uint64_t fingerprint, const std::string& study,
               const Measurement& m);

  /// Flushes to the attached directory when entries were added since the
  /// last flush; a no-op for clean or unattached caches. Atomic
  /// temp+rename, deterministic bytes.
  Status WriteCellCacheFile();

  size_t size() const;
  bool attached() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;  ///< "" = in-memory only

  mutable Mutex mu_;
  std::map<uint64_t, CellCacheEntry> entries_ GUARDED_BY(mu_);
  bool dirty_ GUARDED_BY(mu_) = false;
};

}  // namespace robustmap

#endif  // ROBUSTMAP_CORE_CELL_CACHE_H_
