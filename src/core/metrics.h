#ifndef ROBUSTMAP_CORE_METRICS_H_
#define ROBUSTMAP_CORE_METRICS_H_

#include <string>
#include <vector>

#include "core/optimality.h"
#include "core/relative.h"
#include "core/robustness_map.h"

namespace robustmap {

/// Scalar robustness indices for one plan, distilled from its relative map.
/// These quantify the paper's visual judgments: "its worst relative
/// performance is so poor that it would likely disrupt data center
/// operation" (Fig. 7) vs. "relative performance is reasonable across the
/// entire parameter space" (Fig. 9).
struct PlanRobustnessSummary {
  std::string label;
  double worst_quotient = 1;    ///< max cost / best over the space
  double geomean_quotient = 1;  ///< typical overhead factor
  double area_optimal = 0;      ///< fraction of points within tolerance
  double area_within_2x = 0;
  double area_within_10x = 0;
  int optimality_regions = 0;   ///< connected components (fragmentation)
  double fragmentation = 0;     ///< 0 compact .. 1 shattered
};

/// Summarizes every plan of a map under `tol`.
std::vector<PlanRobustnessSummary> SummarizePlans(const RobustnessMap& map,
                                                  const ToleranceSpec& tol);

/// Plain-text table of summaries (bench/report output).
std::string RenderSummaryTable(
    const std::vector<PlanRobustnessSummary>& summaries);

}  // namespace robustmap

#endif  // ROBUSTMAP_CORE_METRICS_H_
