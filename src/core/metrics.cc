#include "core/metrics.h"

#include <cmath>
#include <cstdio>

#include "common/format.h"
#include "common/math_util.h"
#include "core/regions.h"

namespace robustmap {

std::vector<PlanRobustnessSummary> SummarizePlans(const RobustnessMap& map,
                                                  const ToleranceSpec& tol) {
  RelativeMap rel = ComputeRelative(map);
  OptimalityMap opt = ComputeOptimality(map, tol);
  size_t points = map.space().num_points();

  std::vector<PlanRobustnessSummary> out;
  out.reserve(map.num_plans());
  for (size_t pl = 0; pl < map.num_plans(); ++pl) {
    PlanRobustnessSummary s;
    s.label = map.plan_label(pl);
    s.worst_quotient = WorstQuotient(rel, pl);
    s.geomean_quotient = GeometricMean(rel.quotient[pl]);
    size_t opt_cells = 0, within2 = 0, within10 = 0;
    for (size_t pt = 0; pt < points; ++pt) {
      double q = rel.quotient[pl][pt];
      if ((opt.masks[pt] >> pl) & 1u) ++opt_cells;
      if (q <= 2.0) ++within2;
      if (q <= 10.0) ++within10;
    }
    s.area_optimal = static_cast<double>(opt_cells) / points;
    s.area_within_2x = static_cast<double>(within2) / points;
    s.area_within_10x = static_cast<double>(within10) / points;
    RegionStats regions = AnalyzeRegions(map.space(), OptimalRegionOf(opt, pl));
    s.optimality_regions = regions.num_regions;
    s.fragmentation = regions.fragmentation;
    out.push_back(std::move(s));
  }
  return out;
}

std::string RenderSummaryTable(
    const std::vector<PlanRobustnessSummary>& summaries) {
  TextTable t({"plan", "worst factor", "geomean", "optimal", "<=2x", "<=10x",
               "regions", "fragmentation"});
  char buf[64];
  for (const auto& s : summaries) {
    std::vector<std::string> row;
    row.push_back(s.label);
    std::snprintf(buf, sizeof(buf), "%.3g", s.worst_quotient);
    row.emplace_back(buf);
    std::snprintf(buf, sizeof(buf), "%.3g", s.geomean_quotient);
    row.emplace_back(buf);
    std::snprintf(buf, sizeof(buf), "%.0f%%", s.area_optimal * 100);
    row.emplace_back(buf);
    std::snprintf(buf, sizeof(buf), "%.0f%%", s.area_within_2x * 100);
    row.emplace_back(buf);
    std::snprintf(buf, sizeof(buf), "%.0f%%", s.area_within_10x * 100);
    row.emplace_back(buf);
    std::snprintf(buf, sizeof(buf), "%d", s.optimality_regions);
    row.emplace_back(buf);
    std::snprintf(buf, sizeof(buf), "%.2f", s.fragmentation);
    row.emplace_back(buf);
    t.AddRow(std::move(row));
  }
  return t.ToString();
}

}  // namespace robustmap
