#include "core/relative.h"

#include <algorithm>
#include <cassert>

namespace robustmap {

RelativeMap ComputeRelative(const RobustnessMap& map) {
  RelativeMap rel;
  rel.space = map.space();
  rel.plan_labels = map.plan_labels();
  size_t points = map.space().num_points();
  size_t plans = map.num_plans();
  assert(plans > 0);

  rel.best_seconds.assign(points, 0);
  rel.best_plan.assign(points, 0);
  for (size_t pt = 0; pt < points; ++pt) {
    double best = map.At(0, pt).seconds;
    size_t arg = 0;
    for (size_t pl = 1; pl < plans; ++pl) {
      double s = map.At(pl, pt).seconds;
      if (s < best) {
        best = s;
        arg = pl;
      }
    }
    rel.best_seconds[pt] = best;
    rel.best_plan[pt] = arg;
  }

  rel.quotient.assign(plans, std::vector<double>(points, 1.0));
  for (size_t pl = 0; pl < plans; ++pl) {
    for (size_t pt = 0; pt < points; ++pt) {
      double best = rel.best_seconds[pt];
      double s = map.At(pl, pt).seconds;
      rel.quotient[pl][pt] = best > 0 ? s / best : 1.0;
    }
  }
  return rel;
}

double WorstQuotient(const RelativeMap& rel, size_t plan) {
  return *std::max_element(rel.quotient[plan].begin(),
                           rel.quotient[plan].end());
}

}  // namespace robustmap
