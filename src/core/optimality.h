#ifndef ROBUSTMAP_CORE_OPTIMALITY_H_
#define ROBUSTMAP_CORE_OPTIMALITY_H_

#include <cstdint>
#include <vector>

#include "core/relative.h"
#include "core/robustness_map.h"

namespace robustmap {

/// When is a plan "optimal enough"? The paper (§3.4, Figure 10) observes
/// that strict argmin is meaningless under measurement error, and discusses
/// tolerances from 0.1 s absolute through 1%, 20%, or 2× relative — "the
/// tradeoff between the expense of system resources and the expense of
/// human effort." A plan is within tolerance iff
///     seconds <= best * rel_factor + abs_seconds.
struct ToleranceSpec {
  double abs_seconds = 0.1;  ///< the paper's "0.1 sec measurement error"
  double rel_factor = 1.0;
};

/// Per-point sets of tolerably-optimal plans (Figure 10's data).
struct OptimalityMap {
  ParameterSpace space;
  std::vector<std::string> plan_labels;
  ToleranceSpec tolerance;
  std::vector<int> counts;           ///< per point: # plans within tolerance
  std::vector<uint32_t> masks;       ///< per point: bit p set = plan p optimal
  std::vector<size_t> best_plan;     ///< strict argmin
};

/// Computes Figure 10's per-point optimal-plan sets (plans must number <= 32
/// for the bitmask — the study has 13).
OptimalityMap ComputeOptimality(const RobustnessMap& map, ToleranceSpec tol);

/// Membership grid of one plan's optimality region (input to region
/// analysis and the per-plan shading of Figures 8/9 variants).
std::vector<bool> OptimalRegionOf(const OptimalityMap& opt, size_t plan);

/// How many plans could be dropped entirely: plans whose optimality region
/// is empty ("every plan eliminated ... cannot err in the decision whether
/// to employ it", §3.4).
std::vector<size_t> PlansNeverOptimal(const OptimalityMap& opt);

}  // namespace robustmap

#endif  // ROBUSTMAP_CORE_OPTIMALITY_H_
