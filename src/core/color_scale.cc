#include "core/color_scale.h"

#include <cassert>
#include <cstdio>

namespace robustmap {

namespace {
// Green -> yellow -> orange -> red -> dark red -> black ramp, one step per
// order of magnitude (Figure 3's description).
constexpr Rgb kHeatRamp[] = {
    {0, 170, 0},     // bright green
    {120, 200, 0},   // green-yellow
    {220, 220, 0},   // yellow
    {255, 165, 0},   // orange
    {255, 60, 0},    // red-orange
    {200, 0, 0},     // red
    {110, 0, 0},     // dark red
    {0, 0, 0},       // black
};
}  // namespace

ColorScale::ColorScale(std::string title, std::vector<double> upper_bounds,
                       std::vector<Rgb> colors,
                       std::vector<std::string> labels, std::string glyphs)
    : title_(std::move(title)),
      upper_bounds_(std::move(upper_bounds)),
      colors_(std::move(colors)),
      labels_(std::move(labels)),
      glyphs_(std::move(glyphs)) {
  assert(colors_.size() == labels_.size());
  assert(colors_.size() == glyphs_.size());
  assert(upper_bounds_.size() + 1 == colors_.size());
}

ColorScale ColorScale::AbsoluteSeconds() {
  return ColorScale(
      "Execution time",
      {1e-3, 1e-2, 1e-1, 1e0, 1e1, 1e2, 1e3},
      {kHeatRamp[0], kHeatRamp[1], kHeatRamp[2], kHeatRamp[3], kHeatRamp[4],
       kHeatRamp[5], kHeatRamp[6], kHeatRamp[7]},
      {"< 0.001 seconds", "0.001-0.01 seconds", "0.01-0.1 seconds",
       "0.1-1 seconds", "1-10 seconds", "10-100 seconds", "100-1000 seconds",
       "> 1000 seconds"},
      " .:-=*%@");
}

ColorScale ColorScale::RelativeFactor() {
  return ColorScale(
      "Cost factor vs. best plan",
      {1.0 + 1e-9, 1e1, 1e2, 1e3, 1e4, 1e5},
      {kHeatRamp[0], kHeatRamp[1], kHeatRamp[3], kHeatRamp[4], kHeatRamp[5],
       kHeatRamp[6], kHeatRamp[7]},
      {"Factor 1", "Factor 1-10", "Factor 10-100", "Factor 100-1,000",
       "Factor 1,000-10,000", "Factor 10,000-100,000", "Factor > 100,000"},
      " .-=*%@");
}

ColorScale ColorScale::Counts(int max_count) {
  if (max_count < 1) max_count = 1;
  if (max_count > 8) max_count = 8;
  std::vector<double> bounds;
  std::vector<Rgb> colors;
  std::vector<std::string> labels;
  std::string glyphs;
  const char digits[] = "12345678";
  for (int i = 0; i < max_count; ++i) {
    if (i + 1 < max_count) bounds.push_back(i + 1.5);
    // Reverse ramp: many optimal plans = green, exactly one = dark.
    int ramp = 7 - i * 7 / std::max(1, max_count - 1);
    if (max_count == 1) ramp = 0;
    colors.push_back(kHeatRamp[ramp]);
    char buf[32];
    if (i + 1 == max_count) {
      std::snprintf(buf, sizeof(buf), ">= %d plans", i + 1);
    } else {
      std::snprintf(buf, sizeof(buf), "%d plan%s", i + 1, i == 0 ? "" : "s");
    }
    labels.emplace_back(buf);
    glyphs.push_back(digits[i]);
  }
  return ColorScale("Optimal plans within tolerance", std::move(bounds),
                    std::move(colors), std::move(labels), std::move(glyphs));
}

ColorScale ColorScale::DivergingSeconds() {
  return ColorScale(
      "Warm minus cold execution time",
      {-1e2, -1e1, -1e0, -1e-1, -1e-2, 1e-2, 1e-1, 1e0, 1e1, 1e2},
      {{8, 29, 88},      // deep blue
       {34, 94, 168},    // blue
       {29, 145, 192},   // medium blue
       {65, 182, 196},   // light blue
       {161, 218, 180},  // pale blue-green
       {247, 247, 247},  // white: no change
       {253, 219, 199},  // pale red
       {244, 165, 130},  // light red
       {214, 96, 77},    // red
       {178, 24, 43},    // dark red
       {103, 0, 31}},    // deep red
      {"warm faster by > 100 s", "warm faster by 10-100 s",
       "warm faster by 1-10 s", "warm faster by 0.1-1 s",
       "warm faster by 0.01-0.1 s", "within 0.01 s",
       "warm slower by 0.01-0.1 s", "warm slower by 0.1-1 s",
       "warm slower by 1-10 s", "warm slower by 10-100 s",
       "warm slower by > 100 s"},
      "@%*=- .:+xX");
}

int ColorScale::BucketOf(double v) const {
  int i = 0;
  while (i < static_cast<int>(upper_bounds_.size()) && v > upper_bounds_[i]) {
    ++i;
  }
  return i;
}

std::string ColorScale::AnsiCellOf(double v) const {
  Rgb c = ColorOf(v);
  char buf[48];
  std::snprintf(buf, sizeof(buf), "\x1b[48;2;%u;%u;%um  \x1b[0m", c.r, c.g,
                c.b);
  return buf;
}

}  // namespace robustmap
