#ifndef ROBUSTMAP_CORE_PARAMETER_SPACE_H_
#define ROBUSTMAP_CORE_PARAMETER_SPACE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace robustmap {

/// One run-time-condition axis of a robustness map (e.g. a predicate's
/// selectivity, or work memory).
struct Axis {
  std::string name;
  std::vector<double> values;  ///< ascending

  /// Log₂ selectivity grid 2^min_log2 .. 2^max_log2, one point per power of
  /// two — the paper's "result sizes differ by a factor of 2 between data
  /// points".
  static Axis Selectivity(const std::string& name, int min_log2,
                          int max_log2);

  /// Geometric grid with `steps_per_octave` points per factor of two.
  static Axis SelectivityFine(const std::string& name, int min_log2,
                              int max_log2, int steps_per_octave);

  size_t size() const { return values.size(); }

  bool operator==(const Axis&) const = default;
};

/// A 1-D or 2-D parameter space — "the human limit to three-dimensional
/// perception and the one dimension required for performance restrict
/// effective visualizations to two-dimensional parameter spaces" (§3).
class ParameterSpace {
 public:
  static ParameterSpace OneD(Axis x);
  static ParameterSpace TwoD(Axis x, Axis y);

  bool is_2d() const { return is_2d_; }
  const Axis& x() const { return x_; }
  const Axis& y() const { return y_; }

  size_t x_size() const { return x_.size(); }
  size_t y_size() const { return is_2d_ ? y_.size() : 1; }
  size_t num_points() const { return x_size() * y_size(); }

  /// Row-major linearization: index = yi * x_size + xi.
  size_t IndexOf(size_t xi, size_t yi) const { return yi * x_size() + xi; }
  std::pair<size_t, size_t> CoordsOf(size_t index) const {
    return {index % x_size(), index / x_size()};
  }

  double x_value(size_t index) const {
    return x_.values[CoordsOf(index).first];
  }
  /// Returns -1 for 1-D spaces (the second parameter is absent).
  double y_value(size_t index) const {
    return is_2d_ ? y_.values[CoordsOf(index).second] : -1.0;
  }

  /// Same dimensionality, axis names, and grid values — the precondition
  /// for comparing two maps cell by cell (delta maps, warm/cold CSVs).
  bool operator==(const ParameterSpace&) const = default;

 private:
  bool is_2d_ = false;
  Axis x_;
  Axis y_;
};

/// The stride-k sublattice of `space`: every axis keeps the values at
/// indices 0, k, 2k, ... (names unchanged). A progressive sweep measures
/// these coarse lattices first; because the sublattice carries the *same
/// axis values* as the full grid, its cells fingerprint identically to the
/// full grid's and every coarse measurement is reusable at every finer
/// level. `stride == 1` returns `space` unchanged; the first value of each
/// axis is always kept, so the result is never empty.
ParameterSpace SubsampleSpace(const ParameterSpace& space, size_t stride);

}  // namespace robustmap

#endif  // ROBUSTMAP_CORE_PARAMETER_SPACE_H_
