#ifndef ROBUSTMAP_CORE_SYSTEM_COMPARE_H_
#define ROBUSTMAP_CORE_SYSTEM_COMPARE_H_

#include <string>
#include <vector>

#include "core/robustness_map.h"
#include "engine/system.h"

namespace robustmap {

/// §3.3 names two "opportunities not pursued in this paper". This module
/// pursues both:
///
///  1. worst-performance maps — "particularly dangerous plans and the
///     relative performance of plans compared to how bad performance could
///     be";
///  2. cross-system comparison — "we have not yet compared multiple systems
///     and their available plans."

/// How close each plan comes to the *worst* plan at each point: the danger
/// quotient worst/cost (1 = this plan IS the worst choice; large = far from
/// the worst). A plan whose safety margin ever reaches 1 can be the
/// catastrophic pick.
struct WorstCaseMap {
  ParameterSpace space;
  std::vector<std::string> plan_labels;
  std::vector<double> worst_seconds;             ///< per point
  std::vector<size_t> worst_plan;                ///< argmax per point
  std::vector<std::vector<double>> safety;       ///< [plan][pt]: worst/cost
};

WorstCaseMap ComputeWorstCase(const RobustnessMap& map);

/// Per-point danger count: at how many points a plan is the worst choice.
std::vector<size_t> DangerCells(const WorstCaseMap& map);

/// One system's performance profile when, at every point, it runs the best
/// plan *it* has (the paper's implicit model: each system picks from its own
/// plan list).
struct SystemProfile {
  std::string name;
  std::vector<double> best_seconds;  ///< per point, best of the system's plans
  std::vector<size_t> best_plan;     ///< plan index into the shared map
};

/// Cross-system comparison over one measured 13-plan map.
struct SystemComparison {
  ParameterSpace space;
  std::vector<SystemProfile> profiles;
  /// [system][point]: quotient vs. the best plan of ANY system at the point.
  std::vector<std::vector<double>> quotient;
  /// Points where the system (one of its plans) is the overall winner.
  std::vector<size_t> wins;
  /// Worst quotient per system — the cost of being locked into one vendor.
  std::vector<double> worst_quotient;
};

/// `systems` index into the map's plans by label; plans a system lacks are
/// simply absent from its profile.
Result<SystemComparison> CompareSystems(
    const RobustnessMap& map, const std::vector<SystemConfig>& systems);

/// Plain-text comparison table.
std::string RenderSystemComparison(const SystemComparison& cmp);

}  // namespace robustmap

#endif  // ROBUSTMAP_CORE_SYSTEM_COMPARE_H_
