#include "core/sweep.h"

#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "core/sweep_cost.h"
#include "engine/query.h"

namespace robustmap {

namespace {

/// Both sweep entry points reject degenerate inputs up front: a sweep over
/// nothing is almost always a caller bug (an empty plan list, an axis that
/// lost its values), and the alternative — silently returning a 0-cell map
/// that every downstream analysis then has to defend against — just moves
/// the failure somewhere less diagnosable.
Status ValidateSweepInputs(const ParameterSpace& space,
                           const std::vector<std::string>& plan_labels) {
  if (plan_labels.empty()) {
    return Status::InvalidArgument("cannot sweep an empty plan list");
  }
  if (space.num_points() == 0) {
    return Status::InvalidArgument(
        "cannot sweep an empty grid (an axis has no values)");
  }
  return Status::OK();
}

/// The verbose-mode progress printer: one stderr line per completed plan
/// and per 10% step — readable for both quick smokes and hour-long studies.
SweepProgressFn MakeDefaultPrinter() {
  auto last_decile = std::make_shared<int>(-1);
  auto last_plans = std::make_shared<size_t>(0);
  return [last_decile, last_plans](const SweepProgress& p) {
    const int decile = static_cast<int>(p.percent() / 10.0);
    const bool plan_step = p.plans_done != *last_plans;
    if (decile == *last_decile && !plan_step && p.cells_done != p.cells_total) {
      return;
    }
    *last_decile = decile;
    *last_plans = p.plans_done;
    std::fprintf(stderr, "  sweep: %5.1f%% (%zu/%zu cells, %zu/%zu plans)\n",
                 p.percent(), p.cells_done, p.cells_total, p.plans_done,
                 p.num_plans);
  };
}

/// Serializes progress callbacks and maintains the cumulative counts for
/// both the serial and the parallel sweep. All updates happen under one
/// mutex, so the callback observes cells_done = 1, 2, ..., total in order.
class ProgressTracker {
 public:
  ProgressTracker(const SweepOptions& opts, size_t num_plans, size_t points)
      : points_(points), per_plan_done_(num_plans, 0) {
    progress_.num_plans = num_plans;
    progress_.cells_total = num_plans * points;
    if (opts.progress) {
      fn_ = opts.progress;
    } else if (opts.verbose) {
      fn_ = MakeDefaultPrinter();
    }
  }

  void CellDone(size_t plan) {
    if (!fn_) return;
    std::lock_guard<std::mutex> lock(mu_);
    ++progress_.cells_done;
    if (++per_plan_done_[plan] == points_) ++progress_.plans_done;
    fn_(progress_);
  }

 private:
  const size_t points_;
  std::mutex mu_;
  SweepProgress progress_;
  std::vector<size_t> per_plan_done_;
  SweepProgressFn fn_;
};

}  // namespace

unsigned ResolveParallelism(unsigned requested) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

Result<RobustnessMap> RunSweep(const ParameterSpace& space,
                               const std::vector<std::string>& plan_labels,
                               const PointRunner& runner,
                               const SweepOptions& opts) {
  RM_RETURN_IF_ERROR(ValidateSweepInputs(space, plan_labels));
  RobustnessMap map(space, plan_labels);
  ProgressTracker tracker(opts, plan_labels.size(), space.num_points());
  for (size_t plan = 0; plan < plan_labels.size(); ++plan) {
    for (size_t point = 0; point < space.num_points(); ++point) {
      auto m = runner(plan, space.x_value(point), space.y_value(point));
      RM_RETURN_IF_ERROR(m.status());
      map.Set(plan, point, std::move(m).value());
      tracker.CellDone(plan);
    }
  }
  return map;
}

Result<RobustnessMap> ParallelRunSweep(
    const ParameterSpace& space, const std::vector<std::string>& plan_labels,
    const RunContextFactory& factory, const ContextPointRunner& runner,
    const SweepOptions& opts) {
  RM_RETURN_IF_ERROR(ValidateSweepInputs(space, plan_labels));
  const unsigned num_threads = ResolveParallelism(opts.num_threads);
  const size_t points = space.num_points();
  const size_t cells = plan_labels.size() * points;
  RobustnessMap map(space, plan_labels);
  ProgressTracker tracker(opts, plan_labels.size(), points);

  // The deterministic concurrent-contention schedule: serial execution in
  // point-major round-robin across plans, as if one query stream per plan
  // took turns on the machine. Shared-pool residency then evolves the same
  // way on every run — unlike the true-parallel schedule below, whose
  // interleaving (intentionally) depends on thread timing.
  if (opts.deterministic_shared_schedule) {
    if (opts.verbose) {
      std::fprintf(stderr,
                   "  sweep: %zu cells (%zu plans), fixed round-robin "
                   "schedule\n",
                   cells, plan_labels.size());
    }
    std::unique_ptr<OwnedRunContext> machine = factory.Create();
    for (size_t point = 0; point < points; ++point) {
      for (size_t plan = 0; plan < plan_labels.size(); ++plan) {
        auto m = runner(machine->ctx(), plan, space.x_value(point),
                        space.y_value(point));
        RM_RETURN_IF_ERROR(m.status());
        map.Set(plan, point, std::move(m).value());
        tracker.CellDone(plan);
      }
    }
    return map;
  }

  // Work units are *cost-weighted cell blocks*: contiguous runs of the
  // serial (plan-major) cell order, cut so each block carries roughly equal
  // analytic cost. Cheap low-selectivity cells batch by the dozen (fewer
  // atomic claims), while the expensive corner degrades to single-cell
  // blocks (no worker is ever stuck behind a mega-block at the tail).
  // Map writes stay keyed by (plan, point), so the result is bit-identical
  // to a serial sweep whatever the block shapes.
  std::vector<double> point_cost(points, 1.0);
  if (auto model = CellCostModel::Analytic(space); model.ok()) {
    for (size_t pt = 0; pt < points; ++pt) {
      const auto [xi, yi] = space.CoordsOf(pt);
      point_cost[pt] = model.value().CellCost(xi, yi);
    }
  }
  double total_cost = 0;
  for (double c : point_cost) total_cost += c;
  total_cost *= static_cast<double>(plan_labels.size());
  // ~16 blocks per worker bounds both the claim rate and the tail: the last
  // block to finish holds at most 1/16th of one worker's fair share.
  const double per_block =
      total_cost / static_cast<double>(std::max<size_t>(
                       size_t{num_threads} * 16, 1));
  std::vector<size_t> block_begin;
  block_begin.push_back(0);
  double acc = 0;
  for (size_t cell = 0; cell < cells; ++cell) {
    acc += point_cost[cell % points];
    if (acc >= per_block && cell + 1 < cells) {
      block_begin.push_back(cell + 1);
      acc = 0;
    }
  }
  block_begin.push_back(cells);
  const size_t num_blocks = block_begin.size() - 1;

  if (opts.verbose) {
    std::fprintf(stderr,
                 "  sweep: %zu cells (%zu plans) in %zu cost-weighted "
                 "blocks on %u thread(s)\n",
                 cells, plan_labels.size(), num_blocks, num_threads);
  }

  // Blocks are claimed from a shared queue. On failure, workers skip cells
  // above the lowest failing cell seen so far; every cell below it is in
  // some block that runs to completion, so the error we return is exactly
  // the one a serial sweep would have hit first.
  std::atomic<size_t> next_block{0};
  std::atomic<size_t> first_failed_cell{cells};
  std::mutex error_mu;
  Status first_error = Status::OK();

  auto record_error = [&](size_t cell, const Status& s) {
    std::lock_guard<std::mutex> lock(error_mu);
    size_t prev = first_failed_cell.load(std::memory_order_relaxed);
    if (cell < prev) {
      first_failed_cell.store(cell, std::memory_order_relaxed);
      first_error = s;
    }
  };

  auto work = [&]() {
    std::unique_ptr<OwnedRunContext> machine = factory.Create();
    for (;;) {
      const size_t block = next_block.fetch_add(1, std::memory_order_relaxed);
      if (block >= num_blocks) break;
      for (size_t cell = block_begin[block]; cell < block_begin[block + 1];
           ++cell) {
        if (cell > first_failed_cell.load(std::memory_order_relaxed)) {
          continue;
        }
        const size_t plan = cell / points;
        const size_t point = cell % points;
        auto m = runner(machine->ctx(), plan, space.x_value(point),
                        space.y_value(point));
        if (!m.ok()) {
          record_error(cell, m.status());
          continue;
        }
        map.Set(plan, point, std::move(m).value());
        tracker.CellDone(plan);
      }
    }
  };

  if (num_threads <= 1) {
    work();
  } else {
    std::vector<std::thread> workers;
    workers.reserve(num_threads);
    for (unsigned t = 0; t < num_threads; ++t) workers.emplace_back(work);
    for (std::thread& t : workers) t.join();
  }

  if (first_failed_cell.load(std::memory_order_relaxed) < cells) {
    return first_error;
  }
  return map;
}

Result<RobustnessMap> SweepStudyPlans(RunContext* ctx,
                                      const Executor& executor,
                                      const std::vector<PlanKind>& plans,
                                      const ParameterSpace& space,
                                      const SweepOptions& opts) {
  std::vector<std::string> labels;
  labels.reserve(plans.size());
  for (PlanKind k : plans) labels.push_back(PlanKindLabel(k));
  int64_t domain = executor.db().domain;
  // The serial path measures on `ctx` itself; a shared pool needs the
  // factory to attach worker views, and the round-robin schedule reorders
  // cells, so both always take the parallel path (which degrades to
  // in-caller-thread execution at one worker).
  if (ResolveParallelism(opts.num_threads) <= 1 && opts.shared_pool == nullptr &&
      !opts.deterministic_shared_schedule) {
    return RunSweep(
        space, labels,
        [&](size_t plan, double sx, double sy) -> Result<Measurement> {
          QuerySpec q = MakeStudyQuery(sx, sy, domain);
          return executor.Run(ctx, plans[plan], q);
        },
        opts);
  }
  RunContextFactory factory(*ctx);
  if (opts.shared_pool != nullptr) factory.ShareBufferPool(opts.shared_pool);
  return ParallelRunSweep(
      space, labels, factory,
      [&](RunContext* worker_ctx, size_t plan, double sx,
          double sy) -> Result<Measurement> {
        QuerySpec q = MakeStudyQuery(sx, sy, domain);
        return executor.Run(worker_ctx, plans[plan], q);
      },
      opts);
}

Result<RobustnessMap> DiffMaps(const RobustnessMap& warm,
                               const RobustnessMap& cold) {
  if (warm.num_plans() != cold.num_plans() ||
      !(warm.space() == cold.space())) {
    return Status::InvalidArgument(
        "warm and cold maps cover different plans or spaces");
  }
  RobustnessMap delta(warm.space(), warm.plan_labels());
  for (size_t plan = 0; plan < warm.num_plans(); ++plan) {
    if (warm.plan_label(plan) != cold.plan_label(plan)) {
      return Status::InvalidArgument("warm/cold plan labels disagree at " +
                                     std::to_string(plan));
    }
    for (size_t pt = 0; pt < warm.space().num_points(); ++pt) {
      const Measurement& w = warm.At(plan, pt);
      const Measurement& c = cold.At(plan, pt);
      if (w.output_rows != c.output_rows) {
        return Status::Internal(
            "warm run changed the result cardinality of " +
            warm.plan_label(plan) + " at point " + std::to_string(pt) +
            " — caching must never change results");
      }
      Measurement m;
      m.seconds = w.seconds - c.seconds;
      m.plan_label = w.plan_label;
      delta.Set(plan, pt, std::move(m));
    }
  }
  return delta;
}

Result<WarmColdMaps> RunWarmColdSweep(RunContext* ctx,
                                      const Executor& executor,
                                      const std::vector<PlanKind>& plans,
                                      const ParameterSpace& space,
                                      const WarmupPolicy& warm_policy,
                                      const SweepOptions& opts) {
  const WarmupPolicy saved = ctx->warmup;

  // Cold half: warmup off, private per-worker pools — the classic map,
  // bit-identical at any thread count.
  ctx->warmup = WarmupPolicy::Cold();
  SweepOptions cold_opts = opts;
  cold_opts.shared_pool = nullptr;
  auto cold = SweepStudyPlans(ctx, executor, plans, space, cold_opts);
  if (!cold.ok()) {
    ctx->warmup = saved;
    return cold.status();
  }

  // Warm half under the requested policy. Two situations make warmth a
  // product of execution order, and both run serially so that order — and
  // with it the warm map — is the same on every invocation: prior-run
  // cells inherit their predecessor's cache, and a shared pool is mutated
  // by every cell's ColdStart (parallel workers would clear and re-warm
  // the one cache out from under each other's in-flight measurements).
  // Page-set policies on private per-worker pools are order-independent
  // and stay parallel.
  ctx->warmup = warm_policy;
  SweepOptions warm_opts = opts;
  if (warm_policy.mode == WarmupPolicy::Mode::kPriorRun ||
      warm_opts.shared_pool != nullptr) {
    warm_opts.num_threads = 1;
  }
  if (warm_policy.mode == WarmupPolicy::Mode::kPriorRun) {
    // Prior-run cells inherit pool state, so pin the sweep's starting
    // state: the first cell runs cold, every later cell inherits from its
    // predecessor — the same history on every invocation.
    ctx->pool->Clear();
    if (warm_opts.shared_pool != nullptr) warm_opts.shared_pool->Clear();
  }
  auto warm = SweepStudyPlans(ctx, executor, plans, space, warm_opts);
  ctx->warmup = saved;
  if (!warm.ok()) return warm.status();

  auto delta = DiffMaps(warm.value(), cold.value());
  RM_RETURN_IF_ERROR(delta.status());
  return WarmColdMaps{std::move(cold).value(), std::move(warm).value(),
                      std::move(delta).value()};
}

}  // namespace robustmap
