#include "core/sweep.h"

#include <thread>
#include <utility>

#include "core/sweep_engine.h"

namespace robustmap {

unsigned ResolveParallelism(unsigned requested) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

Result<RobustnessMap> RunSweep(const ParameterSpace& space,
                               const std::vector<std::string>& plan_labels,
                               const PointRunner& runner,
                               const SweepOptions& opts) {
  return SweepEngine::RunCells(space, plan_labels, runner, opts);
}

Result<RobustnessMap> ParallelRunSweep(
    const ParameterSpace& space, const std::vector<std::string>& plan_labels,
    const RunContextFactory& factory, const ContextPointRunner& runner,
    const SweepOptions& opts) {
  return SweepEngine::RunCellsParallel(space, plan_labels, factory, runner,
                                       opts);
}

Result<RobustnessMap> SweepStudyPlans(RunContext* ctx,
                                      const Executor& executor,
                                      const std::vector<PlanKind>& plans,
                                      const ParameterSpace& space,
                                      const SweepOptions& opts) {
  SweepRequest req;
  req.plans = plans;
  req.space = space;
  req.study = StudyKind::kPlainMap;
  req.backend = BackendKind::kThreaded;
  req.sweep = opts;
  auto out = SweepEngine::Run(ctx, executor, req);
  RM_RETURN_IF_ERROR(out.status());
  return std::move(out.value().layers.front());
}

Result<RobustnessMap> DiffMaps(const RobustnessMap& warm,
                               const RobustnessMap& cold) {
  if (warm.num_plans() != cold.num_plans() ||
      !(warm.space() == cold.space())) {
    return Status::InvalidArgument(
        "warm and cold maps cover different plans or spaces");
  }
  RobustnessMap delta(warm.space(), warm.plan_labels());
  for (size_t plan = 0; plan < warm.num_plans(); ++plan) {
    if (warm.plan_label(plan) != cold.plan_label(plan)) {
      return Status::InvalidArgument("warm/cold plan labels disagree at " +
                                     std::to_string(plan));
    }
    for (size_t pt = 0; pt < warm.space().num_points(); ++pt) {
      const Measurement& w = warm.At(plan, pt);
      const Measurement& c = cold.At(plan, pt);
      if (w.output_rows != c.output_rows) {
        return Status::Internal(
            "warm run changed the result cardinality of " +
            warm.plan_label(plan) + " at point " + std::to_string(pt) +
            " — caching must never change results");
      }
      Measurement m;
      m.seconds = w.seconds - c.seconds;
      m.plan_label = w.plan_label;
      delta.Set(plan, pt, std::move(m));
    }
  }
  return delta;
}

Result<WarmColdMaps> RunWarmColdSweep(RunContext* ctx,
                                      const Executor& executor,
                                      const std::vector<PlanKind>& plans,
                                      const ParameterSpace& space,
                                      const WarmupPolicy& warm_policy,
                                      const SweepOptions& opts) {
  SweepRequest req;
  req.plans = plans;
  req.space = space;
  req.study = StudyKind::kWarmColdDelta;
  req.backend = BackendKind::kThreaded;
  req.warm_policy = warm_policy;
  req.sweep = opts;
  auto out = SweepEngine::Run(ctx, executor, req);
  RM_RETURN_IF_ERROR(out.status());
  return std::move(out.value()).ToWarmColdMaps();
}

}  // namespace robustmap
