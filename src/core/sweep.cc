#include "core/sweep.h"

#include <cstdio>

#include "engine/query.h"

namespace robustmap {

Result<RobustnessMap> RunSweep(const ParameterSpace& space,
                               const std::vector<std::string>& plan_labels,
                               const PointRunner& runner,
                               const SweepOptions& opts) {
  RobustnessMap map(space, plan_labels);
  for (size_t plan = 0; plan < plan_labels.size(); ++plan) {
    if (opts.verbose) {
      std::fprintf(stderr, "  sweep: plan %zu/%zu (%s)\n", plan + 1,
                   plan_labels.size(), plan_labels[plan].c_str());
    }
    for (size_t point = 0; point < space.num_points(); ++point) {
      auto m = runner(plan, space.x_value(point), space.y_value(point));
      RM_RETURN_IF_ERROR(m.status());
      map.Set(plan, point, std::move(m).value());
    }
  }
  return map;
}

Result<RobustnessMap> SweepStudyPlans(RunContext* ctx,
                                      const Executor& executor,
                                      const std::vector<PlanKind>& plans,
                                      const ParameterSpace& space,
                                      const SweepOptions& opts) {
  std::vector<std::string> labels;
  labels.reserve(plans.size());
  for (PlanKind k : plans) labels.push_back(PlanKindLabel(k));
  int64_t domain = executor.db().domain;
  return RunSweep(
      space, labels,
      [&](size_t plan, double sx, double sy) -> Result<Measurement> {
        QuerySpec q = MakeStudyQuery(sx, sy, domain);
        return executor.Run(ctx, plans[plan], q);
      },
      opts);
}

}  // namespace robustmap
