#include "core/sweep.h"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <thread>
#include <utility>

#include "engine/query.h"

namespace robustmap {

namespace {

unsigned ResolveThreads(unsigned requested) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

Result<RobustnessMap> RunSweep(const ParameterSpace& space,
                               const std::vector<std::string>& plan_labels,
                               const PointRunner& runner,
                               const SweepOptions& opts) {
  RobustnessMap map(space, plan_labels);
  for (size_t plan = 0; plan < plan_labels.size(); ++plan) {
    if (opts.verbose) {
      std::fprintf(stderr, "  sweep: plan %zu/%zu (%s)\n", plan + 1,
                   plan_labels.size(), plan_labels[plan].c_str());
    }
    for (size_t point = 0; point < space.num_points(); ++point) {
      auto m = runner(plan, space.x_value(point), space.y_value(point));
      RM_RETURN_IF_ERROR(m.status());
      map.Set(plan, point, std::move(m).value());
    }
  }
  return map;
}

Result<RobustnessMap> ParallelRunSweep(
    const ParameterSpace& space, const std::vector<std::string>& plan_labels,
    const RunContextFactory& factory, const ContextPointRunner& runner,
    const SweepOptions& opts) {
  const unsigned num_threads = ResolveThreads(opts.num_threads);
  const size_t points = space.num_points();
  const size_t cells = plan_labels.size() * points;
  RobustnessMap map(space, plan_labels);
  if (opts.verbose) {
    std::fprintf(stderr, "  sweep: %zu cells (%zu plans) on %u thread(s)\n",
                 cells, plan_labels.size(), num_threads);
  }

  // Cells are dispatched in serial (plan-major) order. On failure, workers
  // skip cells above the lowest failing cell seen so far; every cell below
  // it was dispatched earlier and runs to completion, so the error we
  // return is exactly the one a serial sweep would have hit first.
  std::atomic<size_t> next_cell{0};
  std::atomic<size_t> first_failed_cell{cells};
  std::mutex error_mu;
  Status first_error = Status::OK();

  auto record_error = [&](size_t cell, const Status& s) {
    std::lock_guard<std::mutex> lock(error_mu);
    size_t prev = first_failed_cell.load(std::memory_order_relaxed);
    if (cell < prev) {
      first_failed_cell.store(cell, std::memory_order_relaxed);
      first_error = s;
    }
  };

  auto work = [&]() {
    std::unique_ptr<OwnedRunContext> machine = factory.Create();
    for (;;) {
      const size_t cell = next_cell.fetch_add(1, std::memory_order_relaxed);
      if (cell >= cells) break;
      if (cell > first_failed_cell.load(std::memory_order_relaxed)) continue;
      const size_t plan = cell / points;
      const size_t point = cell % points;
      auto m = runner(machine->ctx(), plan, space.x_value(point),
                      space.y_value(point));
      if (!m.ok()) {
        record_error(cell, m.status());
        continue;
      }
      map.Set(plan, point, std::move(m).value());
    }
  };

  if (num_threads <= 1) {
    work();
  } else {
    std::vector<std::thread> workers;
    workers.reserve(num_threads);
    for (unsigned t = 0; t < num_threads; ++t) workers.emplace_back(work);
    for (std::thread& t : workers) t.join();
  }

  if (first_failed_cell.load(std::memory_order_relaxed) < cells) {
    return first_error;
  }
  return map;
}

Result<RobustnessMap> SweepStudyPlans(RunContext* ctx,
                                      const Executor& executor,
                                      const std::vector<PlanKind>& plans,
                                      const ParameterSpace& space,
                                      const SweepOptions& opts) {
  std::vector<std::string> labels;
  labels.reserve(plans.size());
  for (PlanKind k : plans) labels.push_back(PlanKindLabel(k));
  int64_t domain = executor.db().domain;
  if (ResolveThreads(opts.num_threads) <= 1) {
    return RunSweep(
        space, labels,
        [&](size_t plan, double sx, double sy) -> Result<Measurement> {
          QuerySpec q = MakeStudyQuery(sx, sy, domain);
          return executor.Run(ctx, plans[plan], q);
        },
        opts);
  }
  RunContextFactory factory(*ctx);
  return ParallelRunSweep(
      space, labels, factory,
      [&](RunContext* worker_ctx, size_t plan, double sx,
          double sy) -> Result<Measurement> {
        QuerySpec q = MakeStudyQuery(sx, sy, domain);
        return executor.Run(worker_ctx, plans[plan], q);
      },
      opts);
}

}  // namespace robustmap
