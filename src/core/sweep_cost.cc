#include "core/sweep_cost.h"

#include <dirent.h>

#include <algorithm>
#include <cassert>
#include <numeric>
#include <utility>

#include "core/map_io.h"

namespace robustmap {

namespace {

/// Axis values normalized to [0, 1] relative weights. Selectivity axes are
/// positive and ascending, so v / max is the natural "fraction of rows
/// touched"; a degenerate axis (all equal, or a generic axis straddling
/// zero) normalizes by position in the ordered grid instead, and a
/// single-value axis weighs nothing.
std::vector<double> NormalizedAxis(const std::vector<double>& values) {
  std::vector<double> out(values.size(), 0.0);
  if (values.size() < 2) return out;
  const double lo = values.front();
  const double hi = values.back();
  if (lo > 0 && hi > lo) {
    for (size_t i = 0; i < values.size(); ++i) out[i] = values[i] / hi;
    return out;
  }
  if (hi > lo) {
    for (size_t i = 0; i < values.size(); ++i) {
      out[i] = (values[i] - lo) / (hi - lo);
    }
    return out;
  }
  return out;  // all values equal: no skew to model
}

Status RejectEmpty(const ParameterSpace& space) {
  if (space.num_points() == 0) {
    return Status::InvalidArgument(
        "cannot build a cost model over an empty grid");
  }
  return Status::OK();
}

}  // namespace

Result<CostModelKind> CostModelKindFromString(const std::string& name) {
  if (name == "uniform") return CostModelKind::kUniform;
  if (name == "analytic") return CostModelKind::kAnalytic;
  if (name == "measured") return CostModelKind::kMeasured;
  return Status::InvalidArgument("unknown cost model \"" + name +
                                 "\" (want uniform, analytic, or measured)");
}

const char* CostModelKindName(CostModelKind kind) {
  switch (kind) {
    case CostModelKind::kUniform:
      return "uniform";
    case CostModelKind::kAnalytic:
      return "analytic";
    case CostModelKind::kMeasured:
      return "measured";
  }
  return "?";
}

CellCostModel::CellCostModel(ParameterSpace space, std::vector<double> weights)
    : space_(std::move(space)),
      weights_(std::move(weights)),
      total_(std::accumulate(weights_.begin(), weights_.end(), 0.0)) {}

CellCostModel CellCostModel::WithDiscountedCells(
    const std::vector<uint8_t>& cached) const {
  assert(cached.size() == weights_.size());
  double min_weight = weights_.empty() ? 1.0 : weights_[0];
  for (double w : weights_) min_weight = std::min(min_weight, w);
  // Small enough that a fully-cached tile never outweighs a single real
  // measurement, large enough to keep every weight strictly positive.
  const double discount = min_weight * 1e-6;
  std::vector<double> weights = weights_;
  for (size_t i = 0; i < weights.size() && i < cached.size(); ++i) {
    if (cached[i]) weights[i] = discount;
  }
  return CellCostModel(space_, std::move(weights));
}

Result<CellCostModel> CellCostModel::Uniform(const ParameterSpace& space) {
  RM_RETURN_IF_ERROR(RejectEmpty(space));
  return CellCostModel(space, std::vector<double>(space.num_points(), 1.0));
}

Result<CellCostModel> CellCostModel::Analytic(const ParameterSpace& space) {
  RM_RETURN_IF_ERROR(RejectEmpty(space));
  const std::vector<double> xn = NormalizedAxis(space.x().values);
  const std::vector<double> yn = space.is_2d()
                                     ? NormalizedAxis(space.y().values)
                                     : std::vector<double>(1, 0.0);
  std::vector<double> weights(space.num_points());
  for (size_t yi = 0; yi < space.y_size(); ++yi) {
    for (size_t xi = 0; xi < space.x_size(); ++xi) {
      weights[yi * space.x_size() + xi] =
          0.25 + xn[xi] + yn[yi] + 2.0 * xn[xi] * yn[yi];
    }
  }
  return CellCostModel(space, std::move(weights));
}

Result<CellCostModel> CellCostModel::FromMeasuredTiles(
    const ParameterSpace& space, const std::vector<TileCostRecord>& records) {
  auto prior = Analytic(space);
  RM_RETURN_IF_ERROR(prior.status());

  // Paint each record's mean per-cell density over its rectangle. Records
  // are applied in order, so where rectangles overlap the later (presumed
  // fresher) observation wins.
  std::vector<double> measured(space.num_points(), 0.0);
  std::vector<uint8_t> covered(space.num_points(), 0);
  for (const TileCostRecord& r : records) {
    if (r.seconds <= 0 || r.spec.num_points() == 0) continue;
    if (r.spec.x_end > space.x_size() || r.spec.y_end > space.y_size()) {
      return Status::InvalidArgument(
          "measured tile record lies outside the grid");
    }
    const double density =
        r.seconds / static_cast<double>(r.spec.num_points());
    for (size_t yi = r.spec.y_begin; yi < r.spec.y_end; ++yi) {
      for (size_t xi = r.spec.x_begin; xi < r.spec.x_end; ++xi) {
        measured[yi * space.x_size() + xi] = density;
        covered[yi * space.x_size() + xi] = 1;
      }
    }
  }

  double measured_sum = 0, prior_sum_covered = 0;
  size_t covered_cells = 0;
  for (size_t pt = 0; pt < measured.size(); ++pt) {
    if (covered[pt] == 0) continue;
    ++covered_cells;
    measured_sum += measured[pt];
    const auto [xi, yi] = space.CoordsOf(pt);
    prior_sum_covered += prior.value().CellCost(xi, yi);
  }
  if (covered_cells == 0 || measured_sum <= 0) {
    return prior;  // nothing measured yet: schedule by the prior alone
  }

  // Unmeasured cells fall back to the prior, rescaled so that over the
  // measured cells the prior and the observations agree on the mean —
  // otherwise a half-measured directory would systematically over- or
  // under-weigh the unmeasured half.
  const double scale =
      prior_sum_covered > 0 ? measured_sum / prior_sum_covered : 1.0;
  std::vector<double> weights(space.num_points());
  for (size_t pt = 0; pt < weights.size(); ++pt) {
    const auto [xi, yi] = space.CoordsOf(pt);
    weights[pt] = covered[pt] != 0 ? measured[pt]
                                   : prior.value().CellCost(xi, yi) * scale;
    // Zero-cost cells would let the planner cut zero-width bands; floor at
    // a sliver of the mean measured density instead.
    if (weights[pt] <= 0) {
      weights[pt] =
          1e-6 * measured_sum / static_cast<double>(covered_cells);
    }
  }
  return CellCostModel(space, std::move(weights));
}

double CellCostModel::TileCost(const TileSpec& tile) const {
  double sum = 0;
  for (size_t yi = tile.y_begin; yi < tile.y_end; ++yi) {
    for (size_t xi = tile.x_begin; xi < tile.x_end; ++xi) {
      sum += CellCost(xi, yi);
    }
  }
  return sum;
}

Result<CellCostModel> MeasuredCostModelFromDir(
    const std::string& tile_dir, const ParameterSpace& space,
    std::vector<std::pair<std::string, MapTile>>* tiles_out) {
  std::vector<TileCostRecord> records;
  if (DIR* dir = ::opendir(tile_dir.c_str()); dir != nullptr) {
    std::vector<std::string> names;
    while (const dirent* entry = ::readdir(dir)) {
      const std::string name = entry->d_name;
      if (name.size() > 4 && name.rfind(".rmt") == name.size() - 4) {
        names.push_back(name);
      }
    }
    ::closedir(dir);
    // readdir order is filesystem-dependent; a sorted scan keeps the model
    // (and with it the weighted partition) identical across runs.
    std::sort(names.begin(), names.end());
    for (const std::string& name : names) {
      const std::string path = tile_dir + "/" + name;
      auto tile = ReadMapTileFile(path);
      if (!tile.ok()) continue;  // damaged or foreign file: no signal
      if (!(tile.value().parent_space == space)) continue;
      if (tile.value().wall_seconds > 0) {
        records.push_back(
            TileCostRecord{tile.value().spec, tile.value().wall_seconds});
      }
      if (tiles_out != nullptr) {
        tiles_out->emplace_back(path, std::move(tile).value());
      }
    }
  }
  return CellCostModel::FromMeasuredTiles(space, records);
}

void SortTilesHeaviestFirst(std::vector<TileSpec>* tiles,
                            const CellCostModel& model) {
  std::stable_sort(tiles->begin(), tiles->end(),
                   [&](const TileSpec& a, const TileSpec& b) {
                     return model.TileCost(a) > model.TileCost(b);
                   });
}

}  // namespace robustmap
