#include "core/sharded_sweep.h"

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>
#include <utility>

namespace robustmap {

namespace {

Result<std::string> ReadErrFile(const std::string& tile_path) {
  std::ifstream f(TileErrFileName(tile_path));
  if (!f.is_open()) return Status::NotFound("no error file");
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

/// A checkpoint is reusable only if it parses, its checksum holds, and it
/// describes exactly the tile the current plan expects — same rectangle,
/// same parent grid, same plans. Anything else (a tile from an older
/// configuration, a damaged file) must be recomputed.
Result<MapTile> LoadValidTile(const std::string& path,
                              const TileSpec& expected,
                              const ParameterSpace& space,
                              const std::vector<std::string>& labels) {
  auto tile = ReadMapTileFile(path);
  RM_RETURN_IF_ERROR(tile.status());
  const MapTile& t = tile.value();
  if (!(t.spec == expected) || !(t.parent_space == space) ||
      t.map.plan_labels() != labels) {
    return Status::InvalidArgument(
        path + " describes a different tile, grid, or plan set");
  }
  return tile;
}

}  // namespace

std::string TileFileName(size_t shard_id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "tile_%04zu.rmt", shard_id);
  return buf;
}

std::string TileErrFileName(const std::string& tile_path) {
  return tile_path + ".err";
}

void WriteTileErrFile(const std::string& tile_path, const Status& s) {
  std::ofstream f(TileErrFileName(tile_path), std::ios::trunc);
  f << s.ToString();
}

Status EnsureDirectory(const std::string& path) {
  // Create each prefix in turn, tolerating the ones that already exist.
  for (size_t pos = 0; pos != std::string::npos;) {
    pos = path.find('/', pos + 1);
    std::string prefix = path.substr(0, pos);
    if (prefix.empty()) continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::Internal("cannot create directory " + prefix + ": " +
                              std::strerror(errno));
    }
  }
  return Status::OK();
}

Status ComputeAndWriteTile(RunContext* ctx, const Executor& executor,
                           const std::vector<PlanKind>& plans,
                           const ParameterSpace& space, const TileSpec& tile,
                           const std::string& path,
                           const SweepOptions& sweep_opts) {
  auto sub = SliceSpace(space, tile);
  RM_RETURN_IF_ERROR(sub.status());
  auto map = SweepStudyPlans(ctx, executor, plans, sub.value(), sweep_opts);
  RM_RETURN_IF_ERROR(map.status());
  return WriteMapTileFile(path,
                          MapTile{tile, space, std::move(map).value()});
}

Result<RobustnessMap> RunShardedSweep(RunContext* ctx,
                                      const Executor& executor,
                                      const std::vector<PlanKind>& plans,
                                      const ParameterSpace& space,
                                      const ShardedSweepOptions& opts,
                                      ShardedSweepStats* stats) {
  if (opts.tile_dir.empty()) {
    return Status::InvalidArgument("sharded sweep needs a tile_dir");
  }
  if (ctx->warmup.mode == WarmupPolicy::Mode::kPriorRun) {
    return Status::InvalidArgument(
        "sharded sweeps require an order-independent warmup policy; "
        "kPriorRun cells inherit cache state across the tile boundaries "
        "sharding erases");
  }
  const unsigned num_workers = ResolveParallelism(opts.num_workers);
  const size_t num_tiles =
      opts.num_tiles == 0 ? num_workers : opts.num_tiles;
  auto tiles = ShardPlanner::Partition(space, num_tiles);
  RM_RETURN_IF_ERROR(tiles.status());
  RM_RETURN_IF_ERROR(EnsureDirectory(opts.tile_dir));

  std::vector<std::string> labels;
  labels.reserve(plans.size());
  for (PlanKind k : plans) labels.push_back(PlanKindLabel(k));

  // Scan the checkpoint directory: valid tiles are carried over in memory,
  // the rest queue for workers.
  std::vector<MapTile> loaded;
  std::vector<TileSpec> todo;
  for (const TileSpec& t : tiles.value()) {
    const std::string path = opts.tile_dir + "/" + TileFileName(t.shard_id);
    auto tile = opts.resume
                    ? LoadValidTile(path, t, space, labels)
                    : Result<MapTile>(Status::NotFound("resume disabled"));
    if (tile.ok()) {
      loaded.push_back(std::move(tile).value());
      if (opts.verbose) {
        std::fprintf(stderr, "  shard: tile %zu valid on disk, reused\n",
                     t.shard_id);
      }
    } else {
      std::remove(TileErrFileName(path).c_str());
      todo.push_back(t);
    }
  }

  ShardedSweepStats local;
  local.tiles_total = tiles.value().size();
  local.tiles_reused = loaded.size();
  local.tiles_computed = todo.size();
  local.workers_spawned =
      static_cast<unsigned>(std::min<size_t>(num_workers, todo.size()));

  // Spawn one subprocess per outstanding tile, at most num_workers in
  // flight. stdio is flushed first so forked children do not replay the
  // parent's buffered output.
  std::fflush(stdout);
  std::fflush(stderr);
  std::map<pid_t, size_t> running;  // pid -> todo index
  std::vector<size_t> failed;
  size_t next = 0;
  size_t computed_done = 0;
  SweepOptions worker_opts;
  worker_opts.num_threads = std::max(1u, opts.threads_per_worker);
  while (next < todo.size() || !running.empty()) {
    while (next < todo.size() && running.size() < num_workers) {
      const TileSpec& t = todo[next];
      const std::string path =
          opts.tile_dir + "/" + TileFileName(t.shard_id);
      pid_t pid = ::fork();
      if (pid < 0) {
        return Status::Internal(std::string("fork failed: ") +
                                std::strerror(errno));
      }
      if (pid == 0) {
        // Worker. Either exec the external worker binary, or compute the
        // tile right here on the forked copy of the parent's environment.
        if (!opts.worker_command.empty()) {
          std::vector<std::string> args = opts.worker_command;
          // The tile count is part of a tile id's meaning, and only this
          // side knows the resolved value — the worker must never re-derive
          // it from a default that could drift.
          args.push_back("--tiles=" + std::to_string(num_tiles));
          args.push_back("--tile=" + std::to_string(t.shard_id));
          args.push_back("--out=" + path);
          std::vector<char*> argv;
          argv.reserve(args.size() + 1);
          for (std::string& a : args) argv.push_back(a.data());
          argv.push_back(nullptr);
          ::execvp(argv[0], argv.data());
          WriteTileErrFile(path, Status::Internal(
                                 std::string("cannot exec ") + args[0] +
                                 ": " + std::strerror(errno)));
          ::_exit(127);
        }
        Status s =
            ComputeAndWriteTile(ctx, executor, plans, space, t, path,
                                worker_opts);
        if (!s.ok()) {
          WriteTileErrFile(path, s);
          ::_exit(1);
        }
        ::_exit(0);
      }
      running.emplace(pid, next);
      ++next;
    }
    // Reap exactly one of *our* workers. waitpid(-1) would also consume
    // the exit status of any unrelated child an embedding application has
    // in flight, so poll the known pids instead; tiles take seconds, the
    // 10 ms poll interval is noise.
    bool reaped = false;
    while (!reaped) {
      for (auto it = running.begin(); it != running.end();) {
        int wstatus = 0;
        pid_t r = ::waitpid(it->first, &wstatus, WNOHANG);
        if (r == 0 || (r < 0 && errno == EINTR)) {
          ++it;
          continue;
        }
        if (r < 0) {
          return Status::Internal(std::string("waitpid failed: ") +
                                  std::strerror(errno));
        }
        const size_t idx = it->second;
        it = running.erase(it);
        reaped = true;
        if (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0) {
          ++computed_done;
          if (opts.verbose) {
            std::fprintf(stderr,
                         "  shard: tile %zu computed (%zu/%zu done)\n",
                         todo[idx].shard_id,
                         local.tiles_reused + computed_done,
                         local.tiles_total);
          }
        } else {
          failed.push_back(idx);
        }
      }
      if (!reaped) ::usleep(10000);
    }
  }

  if (!failed.empty()) {
    // Report the failure of the lowest shard id, with the worker's own
    // Status when it managed to leave one. Completed tiles stay on disk,
    // so the rerun that follows a fix resumes instead of restarting.
    size_t worst = todo.size();
    for (size_t idx : failed) worst = std::min(worst, idx);
    const TileSpec& t = todo[worst];
    const std::string path = opts.tile_dir + "/" + TileFileName(t.shard_id);
    auto msg = ReadErrFile(path);
    return Status::Internal(
        "sweep worker for tile " + std::to_string(t.shard_id) + " failed" +
        (msg.ok() ? ": " + msg.value()
                  : " without leaving an error file (killed?)"));
  }

  // Merge: freshly computed tiles are read back from disk — the same
  // validated path a resumed coordinator takes — then stitched with the
  // reused ones.
  for (const TileSpec& t : todo) {
    const std::string path = opts.tile_dir + "/" + TileFileName(t.shard_id);
    auto tile = ReadMapTileFile(path);
    RM_RETURN_IF_ERROR(tile.status());
    loaded.push_back(std::move(tile).value());
  }
  auto merged = MergeTiles(space, labels, loaded);
  RM_RETURN_IF_ERROR(merged.status());
  if (stats != nullptr) *stats = local;
  return merged;
}

}  // namespace robustmap
