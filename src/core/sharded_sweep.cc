#include "core/sharded_sweep.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <utility>

#include "common/trace.h"
#include "core/sweep_telemetry.h"

namespace robustmap {

std::string TileFileName(size_t shard_id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "tile_%04zu.rmt", shard_id);
  return buf;
}

std::string TileErrFileName(const std::string& tile_path) {
  return tile_path + ".err";
}

void WriteTileErrFile(const std::string& tile_path, const Status& s) {
  std::ofstream f(TileErrFileName(tile_path), std::ios::trunc);
  f << s.ToString();
}

Status EnsureDirectory(const std::string& path) {
  // Create each prefix in turn, tolerating the ones that already exist.
  for (size_t pos = 0; pos != std::string::npos;) {
    pos = path.find('/', pos + 1);
    std::string prefix = path.substr(0, pos);
    if (prefix.empty()) continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::Internal("cannot create directory " + prefix + ": " +
                              ErrnoString(errno));
    }
  }
  return Status::OK();
}

Status ComputeAndWriteTile(RunContext* ctx, const Executor& executor,
                           const std::vector<PlanKind>& plans,
                           const ParameterSpace& space, const TileSpec& tile,
                           const std::string& path,
                           const SweepOptions& sweep_opts, StudyKind study,
                           const WarmupPolicy& warm_policy,
                           CellResultCache* cell_cache) {
  auto sub = SliceSpace(space, tile);
  RM_RETURN_IF_ERROR(sub.status());
  SweepRequest req;
  req.plans = plans;
  req.space = std::move(sub).value();
  req.study = study;
  req.backend = BackendKind::kThreaded;
  req.warm_policy = warm_policy;
  req.sweep = sweep_opts;
  req.cell_cache = cell_cache;
  const int64_t start_ns = MonotonicNowNs();
  Result<SweepOutcome> outcome = [&] {
    TraceSpan span("tile.compute");
    return SweepEngine::Run(ctx, executor, req);
  }();
  RM_RETURN_IF_ERROR(outcome.status());
  const double wall_seconds =
      static_cast<double>(MonotonicNowNs() - start_ns) * 1e-9;
  SweepTelemetry::Get().RecordLatency("tile.compute_seconds", wall_seconds);
  std::vector<RobustnessMap>& layers = outcome.value().layers;
  MapTile out{tile, space, std::move(layers.front()), wall_seconds};
  out.layer_names = StudyLayerNames(study);
  out.extra_layers.assign(std::make_move_iterator(layers.begin() + 1),
                          std::make_move_iterator(layers.end()));
  const int64_t write_ns = MonotonicNowNs();
  Status written = [&] {
    TraceSpan span("tile.serialize");
    return WriteMapTileFile(path, out);
  }();
  SweepTelemetry::Get().RecordLatency(
      "tile.serialize_seconds",
      static_cast<double>(MonotonicNowNs() - write_ns) * 1e-9);
  return written;
}

Result<RobustnessMap> RunShardedSweep(RunContext* ctx,
                                      const Executor& executor,
                                      const std::vector<PlanKind>& plans,
                                      const ParameterSpace& space,
                                      const ShardedSweepOptions& opts,
                                      ShardedSweepStats* stats) {
  SweepRequest req;
  req.plans = plans;
  req.space = space;
  req.study = StudyKind::kPlainMap;
  req.backend = BackendKind::kShardedProcess;
  req.sharded = opts;
  auto out = SweepEngine::Run(ctx, executor, req);
  RM_RETURN_IF_ERROR(out.status());
  if (stats != nullptr) *stats = std::move(out.value().sharded_stats);
  return std::move(out.value().layers.front());
}

}  // namespace robustmap
