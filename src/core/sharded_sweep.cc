#include "core/sharded_sweep.h"

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

namespace robustmap {

namespace {

Result<std::string> ReadErrFile(const std::string& tile_path) {
  std::ifstream f(TileErrFileName(tile_path));
  if (!f.is_open()) return Status::NotFound("no error file");
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

/// A checkpoint is reusable only if it parses, its checksum holds, and it
/// describes exactly the tile the current plan expects — same rectangle,
/// same parent grid, same plans. Anything else (a tile from an older
/// configuration, a damaged file) must be recomputed. A tile the measured
/// cost-model scan already read and validated is taken from `preloaded`
/// instead of reading (and checksumming) the file a second time.
Result<MapTile> LoadValidTile(std::map<std::string, MapTile>* preloaded,
                              const std::string& path,
                              const TileSpec& expected,
                              const ParameterSpace& space,
                              const std::vector<std::string>& labels) {
  auto tile = [&]() -> Result<MapTile> {
    if (auto it = preloaded->find(path); it != preloaded->end()) {
      Result<MapTile> found(std::move(it->second));
      preloaded->erase(it);
      return found;
    }
    return ReadMapTileFile(path);
  }();
  RM_RETURN_IF_ERROR(tile.status());
  const MapTile& t = tile.value();
  if (!(t.spec == expected) || !(t.parent_space == space) ||
      t.map.plan_labels() != labels) {
    return Status::InvalidArgument(
        path + " describes a different tile, grid, or plan set");
  }
  return tile;
}

}  // namespace

std::string TileFileName(size_t shard_id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "tile_%04zu.rmt", shard_id);
  return buf;
}

std::string TileErrFileName(const std::string& tile_path) {
  return tile_path + ".err";
}

void WriteTileErrFile(const std::string& tile_path, const Status& s) {
  std::ofstream f(TileErrFileName(tile_path), std::ios::trunc);
  f << s.ToString();
}

Status EnsureDirectory(const std::string& path) {
  // Create each prefix in turn, tolerating the ones that already exist.
  for (size_t pos = 0; pos != std::string::npos;) {
    pos = path.find('/', pos + 1);
    std::string prefix = path.substr(0, pos);
    if (prefix.empty()) continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::Internal("cannot create directory " + prefix + ": " +
                              std::strerror(errno));
    }
  }
  return Status::OK();
}

Status ComputeAndWriteTile(RunContext* ctx, const Executor& executor,
                           const std::vector<PlanKind>& plans,
                           const ParameterSpace& space, const TileSpec& tile,
                           const std::string& path,
                           const SweepOptions& sweep_opts) {
  auto sub = SliceSpace(space, tile);
  RM_RETURN_IF_ERROR(sub.status());
  const auto start = std::chrono::steady_clock::now();
  auto map = SweepStudyPlans(ctx, executor, plans, sub.value(), sweep_opts);
  RM_RETURN_IF_ERROR(map.status());
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return WriteMapTileFile(
      path, MapTile{tile, space, std::move(map).value(), wall_seconds});
}

Result<RobustnessMap> RunShardedSweep(RunContext* ctx,
                                      const Executor& executor,
                                      const std::vector<PlanKind>& plans,
                                      const ParameterSpace& space,
                                      const ShardedSweepOptions& opts,
                                      ShardedSweepStats* stats) {
  if (opts.tile_dir.empty()) {
    return Status::InvalidArgument("sharded sweep needs a tile_dir");
  }
  if (ctx->warmup.mode == WarmupPolicy::Mode::kPriorRun) {
    return Status::InvalidArgument(
        "sharded sweeps require an order-independent warmup policy; "
        "kPriorRun cells inherit cache state across the tile boundaries "
        "sharding erases");
  }
  const unsigned num_workers = ResolveParallelism(opts.num_workers);
  const size_t num_tiles =
      opts.num_tiles == 0 ? num_workers : opts.num_tiles;
  // The scheduling model. Measured mode scans the checkpoint directory
  // *before* anything is recomputed, so the partition reflects what the
  // previous run's tiles actually cost; with no usable timings it degrades
  // to the analytic prior, never to an error.
  std::vector<std::pair<std::string, MapTile>> prescanned;
  auto model = [&]() -> Result<CellCostModel> {
    switch (opts.cost_model) {
      case CostModelKind::kUniform:
        return CellCostModel::Uniform(space);
      case CostModelKind::kAnalytic:
        return CellCostModel::Analytic(space);
      case CostModelKind::kMeasured:
        // When resuming, keep what the scan read: the checkpoint pass
        // below can then validate those tiles from memory instead of
        // reading and checksumming every file twice.
        return MeasuredCostModelFromDir(opts.tile_dir, space,
                                        opts.resume ? &prescanned : nullptr);
    }
    return Status::InvalidArgument("unknown cost model kind");
  }();
  RM_RETURN_IF_ERROR(model.status());
  std::map<std::string, MapTile> preloaded;
  for (auto& [path, tile] : prescanned) {
    preloaded.emplace(path, std::move(tile));
  }
  prescanned.clear();
  auto tiles = opts.cost_model == CostModelKind::kUniform
                   ? ShardPlanner::Partition(space, num_tiles)
                   : ShardPlanner::PartitionWeighted(space, num_tiles,
                                                     model.value());
  RM_RETURN_IF_ERROR(tiles.status());
  RM_RETURN_IF_ERROR(EnsureDirectory(opts.tile_dir));

  std::vector<std::string> labels;
  labels.reserve(plans.size());
  for (PlanKind k : plans) labels.push_back(PlanKindLabel(k));

  // Scan the checkpoint directory: valid tiles are carried over in memory,
  // the rest queue for workers.
  std::vector<MapTile> loaded;
  std::vector<TileSpec> todo;
  for (const TileSpec& t : tiles.value()) {
    const std::string path = opts.tile_dir + "/" + TileFileName(t.shard_id);
    auto tile = opts.resume
                    ? LoadValidTile(&preloaded, path, t, space, labels)
                    : Result<MapTile>(Status::NotFound("resume disabled"));
    if (tile.ok()) {
      loaded.push_back(std::move(tile).value());
      if (opts.verbose) {
        std::fprintf(stderr, "  shard: tile %zu valid on disk, reused\n",
                     t.shard_id);
      }
    } else {
      std::remove(TileErrFileName(path).c_str());
      todo.push_back(t);
    }
  }

  // Pull-based dispatch: the pending queue is ordered heaviest-first under
  // the cost model (LPT — the classic makespan heuristic), and every time
  // a worker slot frees up it pulls the head of the queue. The expensive
  // corner tiles start immediately; the cheap tail fills in around them
  // instead of everyone waiting on a monster tile scheduled last.
  SortTilesHeaviestFirst(&todo, model.value());

  ShardedSweepStats local;
  local.tiles_total = tiles.value().size();
  local.tiles_reused = loaded.size();
  local.tiles_computed = todo.size();
  local.workers_spawned =
      static_cast<unsigned>(std::min<size_t>(num_workers, todo.size()));

  if (opts.verbose && !todo.empty()) {
    std::fprintf(stderr,
                 "  shard: %s cost model, %zu pending tiles "
                 "(heaviest %.3g, lightest %.3g relative cost)\n",
                 CostModelKindName(opts.cost_model), todo.size(),
                 model.value().TileCost(todo.front()),
                 model.value().TileCost(todo.back()));
  }

  // One subprocess per outstanding tile, at most num_workers in flight.
  // stdio is flushed first so forked children do not replay the parent's
  // buffered output. Each in-flight tile occupies a worker *slot*; per-slot
  // busy time is what the balance metrics report.
  std::fflush(stdout);
  std::fflush(stderr);
  struct InFlight {
    size_t todo_index;
    size_t slot;
    std::chrono::steady_clock::time_point started;
  };
  std::map<pid_t, InFlight> running;
  std::set<size_t> free_slots;
  std::vector<size_t> failed;
  size_t next = 0;
  size_t computed_done = 0;
  SweepOptions worker_opts;
  worker_opts.num_threads = std::max(1u, opts.threads_per_worker);
  while (next < todo.size() || !running.empty()) {
    while (next < todo.size() && running.size() < num_workers) {
      const TileSpec& t = todo[next];
      const std::string path =
          opts.tile_dir + "/" + TileFileName(t.shard_id);
      pid_t pid = ::fork();
      if (pid < 0) {
        return Status::Internal(std::string("fork failed: ") +
                                std::strerror(errno));
      }
      if (pid == 0) {
        // Worker. Either exec the external worker binary, or compute the
        // tile right here on the forked copy of the parent's environment.
        if (!opts.worker_command.empty()) {
          std::vector<std::string> args = opts.worker_command;
          // The tile count is part of a tile id's meaning, and only this
          // side knows the resolved value — the worker must never re-derive
          // it from a default that could drift. The rectangle itself rides
          // along too: with cost-weighted partitioning the boundaries
          // depend on the model, so the coordinator's exact cuts are the
          // contract, not something a worker recomputes.
          args.push_back("--tiles=" + std::to_string(num_tiles));
          args.push_back("--tile=" + std::to_string(t.shard_id));
          args.push_back("--rect=" + std::to_string(t.x_begin) + ":" +
                         std::to_string(t.x_end) + ":" +
                         std::to_string(t.y_begin) + ":" +
                         std::to_string(t.y_end));
          args.push_back("--out=" + path);
          std::vector<char*> argv;
          argv.reserve(args.size() + 1);
          for (std::string& a : args) argv.push_back(a.data());
          argv.push_back(nullptr);
          ::execvp(argv[0], argv.data());
          WriteTileErrFile(path, Status::Internal(
                                 std::string("cannot exec ") + args[0] +
                                 ": " + std::strerror(errno)));
          ::_exit(127);
        }
        Status s =
            ComputeAndWriteTile(ctx, executor, plans, space, t, path,
                                worker_opts);
        if (!s.ok()) {
          WriteTileErrFile(path, s);
          ::_exit(1);
        }
        ::_exit(0);
      }
      size_t slot;
      if (!free_slots.empty()) {
        slot = *free_slots.begin();
        free_slots.erase(free_slots.begin());
      } else {
        slot = local.worker_busy_seconds.size();
        local.worker_busy_seconds.push_back(0);
      }
      running.emplace(
          pid, InFlight{next, slot, std::chrono::steady_clock::now()});
      ++next;
    }
    // Reap exactly one of *our* workers. waitpid(-1) would also consume
    // the exit status of any unrelated child an embedding application has
    // in flight, so poll the known pids instead; tiles take seconds, the
    // 10 ms poll interval is noise.
    bool reaped = false;
    while (!reaped) {
      for (auto it = running.begin(); it != running.end();) {
        int wstatus = 0;
        pid_t r = ::waitpid(it->first, &wstatus, WNOHANG);
        if (r == 0 || (r < 0 && errno == EINTR)) {
          ++it;
          continue;
        }
        if (r < 0) {
          return Status::Internal(std::string("waitpid failed: ") +
                                  std::strerror(errno));
        }
        const size_t idx = it->second.todo_index;
        local.worker_busy_seconds[it->second.slot] +=
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          it->second.started)
                .count();
        free_slots.insert(it->second.slot);
        it = running.erase(it);
        reaped = true;
        if (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0) {
          ++computed_done;
          if (opts.verbose) {
            std::fprintf(stderr,
                         "  shard: tile %zu computed (%zu/%zu done)\n",
                         todo[idx].shard_id,
                         local.tiles_reused + computed_done,
                         local.tiles_total);
          }
        } else {
          failed.push_back(idx);
        }
      }
      if (!reaped) ::usleep(10000);
    }
  }

  if (!failed.empty()) {
    // Report the failure of the lowest shard id — stable whatever dispatch
    // order the cost model produced — with the worker's own Status when it
    // managed to leave one. Completed tiles stay on disk, so the rerun
    // that follows a fix resumes instead of restarting.
    size_t worst = failed.front();
    for (size_t idx : failed) {
      if (todo[idx].shard_id < todo[worst].shard_id) worst = idx;
    }
    const TileSpec& t = todo[worst];
    const std::string path = opts.tile_dir + "/" + TileFileName(t.shard_id);
    auto msg = ReadErrFile(path);
    return Status::Internal(
        "sweep worker for tile " + std::to_string(t.shard_id) + " failed" +
        (msg.ok() ? ": " + msg.value()
                  : " without leaving an error file (killed?)"));
  }

  // Merge: freshly computed tiles are read back from disk — the same
  // validated path a resumed coordinator takes — then stitched with the
  // reused ones.
  for (const TileSpec& t : todo) {
    const std::string path = opts.tile_dir + "/" + TileFileName(t.shard_id);
    auto tile = ReadMapTileFile(path);
    RM_RETURN_IF_ERROR(tile.status());
    loaded.push_back(std::move(tile).value());
  }
  auto merged = MergeTiles(space, labels, loaded);
  RM_RETURN_IF_ERROR(merged.status());
  if (stats != nullptr) *stats = local;
  return merged;
}

}  // namespace robustmap
