#include "core/shard_planner.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "core/sweep_cost.h"

namespace robustmap {

namespace {

/// Band `b` of `count` even bands over `size` elements: [b*size/count,
/// (b+1)*size/count). Consecutive bands tile [0, size) exactly and differ
/// in length by at most one.
std::pair<size_t, size_t> Band(size_t size, size_t count, size_t b) {
  return {b * size / count, (b + 1) * size / count};
}

Status ValidatePartitionRequest(const ParameterSpace& space,
                                size_t max_tiles) {
  if (max_tiles == 0) {
    return Status::InvalidArgument("cannot partition a sweep into 0 tiles");
  }
  if (space.num_points() == 0) {
    return Status::InvalidArgument(
        "cannot partition an empty grid (an axis has no values)");
  }
  return Status::OK();
}

/// Cuts [0, costs.size()) into `count` contiguous bands whose cumulative
/// costs are as equal as a prefix walk can make them: boundary b lands at
/// the first index whose prefix reaches b/count of the total, clamped so
/// every band keeps at least one element. Returns the count+1 boundary
/// indices.
std::vector<size_t> CostCuts(const std::vector<double>& costs, size_t count) {
  const size_t size = costs.size();
  double total = 0;
  for (double c : costs) total += c;
  std::vector<size_t> cuts(count + 1, 0);
  cuts[count] = size;
  double prefix = 0;
  size_t index = 0;
  for (size_t b = 1; b < count; ++b) {
    const double target = total * static_cast<double>(b) /
                          static_cast<double>(count);
    // Stop where the boundary is nearest the target: take one more element
    // only while more than half of it still fits under the target.
    while (index < size && prefix + costs[index] / 2 < target) {
      prefix += costs[index];
      ++index;
    }
    // Each band keeps ≥1 element, and every later band must also get one;
    // keep `prefix` equal to sum(costs[0..index)) while clamping.
    while (index < cuts[b - 1] + 1) {
      prefix += costs[index];
      ++index;
    }
    while (index > size - (count - b)) {
      --index;
      prefix -= costs[index];
    }
    cuts[b] = index;
  }
  return cuts;
}

}  // namespace

Result<std::vector<TileSpec>> ShardPlanner::Partition(
    const ParameterSpace& space, size_t max_tiles) {
  RM_RETURN_IF_ERROR(ValidatePartitionRequest(space, max_tiles));
  const size_t x_size = space.x_size();
  const size_t y_size = space.y_size();
  // Rows first: a row band keeps cells that are adjacent in the row-major
  // linearization together. Only when more tiles are wanted than there are
  // rows does each row band also split along x. Both counts are capped by
  // the axis length, so every tile is non-empty, and gx*gy <= max_tiles
  // because gx <= max_tiles / gy.
  const size_t gy = std::min(max_tiles, y_size);
  const size_t gx = std::min(std::max<size_t>(1, max_tiles / gy), x_size);
  std::vector<TileSpec> tiles;
  tiles.reserve(gx * gy);
  for (size_t by = 0; by < gy; ++by) {
    const auto [y0, y1] = Band(y_size, gy, by);
    for (size_t bx = 0; bx < gx; ++bx) {
      const auto [x0, x1] = Band(x_size, gx, bx);
      TileSpec t;
      t.shard_id = by * gx + bx;
      t.x_begin = x0;
      t.x_end = x1;
      t.y_begin = y0;
      t.y_end = y1;
      tiles.push_back(t);
    }
  }
  return tiles;
}

Result<std::vector<TileSpec>> ShardPlanner::PartitionWeighted(
    const ParameterSpace& space, size_t max_tiles,
    const CellCostModel& model) {
  RM_RETURN_IF_ERROR(ValidatePartitionRequest(space, max_tiles));
  if (!(model.space() == space)) {
    return Status::InvalidArgument(
        "cost model was built over a different grid than the one being "
        "partitioned");
  }
  const size_t x_size = space.x_size();
  const size_t y_size = space.y_size();
  // Same tile-grid shape as the uniform partition — only the boundary
  // placement changes — so a given (space, max_tiles) request yields the
  // same tile count and the same dense row-major ids under either planner.
  const size_t gy = std::min(max_tiles, y_size);
  const size_t gx = std::min(std::max<size_t>(1, max_tiles / gy), x_size);

  std::vector<double> row_costs(y_size, 0.0);
  for (size_t yi = 0; yi < y_size; ++yi) {
    for (size_t xi = 0; xi < x_size; ++xi) {
      row_costs[yi] += model.CellCost(xi, yi);
    }
  }
  const std::vector<size_t> y_cuts = CostCuts(row_costs, gy);

  std::vector<TileSpec> tiles;
  tiles.reserve(gx * gy);
  for (size_t by = 0; by < gy; ++by) {
    const size_t y0 = y_cuts[by];
    const size_t y1 = y_cuts[by + 1];
    // x cuts balance the cost *within this band*: a band hugging sel=1 is
    // cut much finer toward its expensive end than a cheap band is.
    std::vector<double> col_costs(x_size, 0.0);
    for (size_t xi = 0; xi < x_size; ++xi) {
      for (size_t yi = y0; yi < y1; ++yi) {
        col_costs[xi] += model.CellCost(xi, yi);
      }
    }
    const std::vector<size_t> x_cuts = CostCuts(col_costs, gx);
    // Snake emission: odd bands run right-to-left, so consecutive tiles in
    // the returned order are spatially adjacent. Ids stay row-major.
    for (size_t i = 0; i < gx; ++i) {
      const size_t bx = (by % 2 == 0) ? i : gx - 1 - i;
      TileSpec t;
      t.shard_id = by * gx + bx;
      t.x_begin = x_cuts[bx];
      t.x_end = x_cuts[bx + 1];
      t.y_begin = y0;
      t.y_end = y1;
      tiles.push_back(t);
    }
  }
  return tiles;
}

Result<ParameterSpace> SliceSpace(const ParameterSpace& parent,
                                  const TileSpec& tile) {
  if (tile.x_begin >= tile.x_end || tile.y_begin >= tile.y_end ||
      tile.x_end > parent.x_size() || tile.y_end > parent.y_size()) {
    return Status::InvalidArgument(
        "tile rectangle [" + std::to_string(tile.x_begin) + "," +
        std::to_string(tile.x_end) + ")x[" + std::to_string(tile.y_begin) +
        "," + std::to_string(tile.y_end) + ") is empty or outside the " +
        std::to_string(parent.x_size()) + "x" +
        std::to_string(parent.y_size()) + " grid");
  }
  Axis x;
  x.name = parent.x().name;
  x.values.assign(parent.x().values.begin() + tile.x_begin,
                  parent.x().values.begin() + tile.x_end);
  if (!parent.is_2d()) {
    return ParameterSpace::OneD(std::move(x));
  }
  Axis y;
  y.name = parent.y().name;
  y.values.assign(parent.y().values.begin() + tile.y_begin,
                  parent.y().values.begin() + tile.y_end);
  return ParameterSpace::TwoD(std::move(x), std::move(y));
}

std::string RectSpecString(const TileSpec& tile) {
  return std::to_string(tile.x_begin) + ":" + std::to_string(tile.x_end) +
         ":" + std::to_string(tile.y_begin) + ":" +
         std::to_string(tile.y_end);
}

bool ParseRectSpec(const std::string& raw, TileSpec* tile) {
  size_t* fields[4] = {&tile->x_begin, &tile->x_end, &tile->y_begin,
                       &tile->y_end};
  size_t pos = 0;
  for (int f = 0; f < 4; ++f) {
    const size_t colon = raw.find(':', pos);
    const std::string part = raw.substr(
        pos, colon == std::string::npos ? std::string::npos : colon - pos);
    char* end = nullptr;
    const unsigned long long v = std::strtoull(part.c_str(), &end, 10);
    if (part.empty() || end == part.c_str() || *end != '\0') return false;
    *fields[f] = static_cast<size_t>(v);
    if (f < 3) {
      if (colon == std::string::npos) return false;
      pos = colon + 1;
    } else if (colon != std::string::npos) {
      return false;  // trailing fifth field
    }
  }
  return true;
}

}  // namespace robustmap
