#include "core/shard_planner.h"

#include <algorithm>
#include <string>

namespace robustmap {

namespace {

/// Band `b` of `count` even bands over `size` elements: [b*size/count,
/// (b+1)*size/count). Consecutive bands tile [0, size) exactly and differ
/// in length by at most one.
std::pair<size_t, size_t> Band(size_t size, size_t count, size_t b) {
  return {b * size / count, (b + 1) * size / count};
}

}  // namespace

Result<std::vector<TileSpec>> ShardPlanner::Partition(
    const ParameterSpace& space, size_t max_tiles) {
  if (max_tiles == 0) {
    return Status::InvalidArgument("cannot partition a sweep into 0 tiles");
  }
  const size_t x_size = space.x_size();
  const size_t y_size = space.y_size();
  // Rows first: a row band keeps cells that are adjacent in the row-major
  // linearization together. Only when more tiles are wanted than there are
  // rows does each row band also split along x. Both counts are capped by
  // the axis length, so every tile is non-empty, and gx*gy <= max_tiles
  // because gx <= max_tiles / gy.
  const size_t gy = std::min(max_tiles, y_size);
  const size_t gx = std::min(std::max<size_t>(1, max_tiles / gy), x_size);
  std::vector<TileSpec> tiles;
  tiles.reserve(gx * gy);
  for (size_t by = 0; by < gy; ++by) {
    const auto [y0, y1] = Band(y_size, gy, by);
    for (size_t bx = 0; bx < gx; ++bx) {
      const auto [x0, x1] = Band(x_size, gx, bx);
      TileSpec t;
      t.shard_id = by * gx + bx;
      t.x_begin = x0;
      t.x_end = x1;
      t.y_begin = y0;
      t.y_end = y1;
      tiles.push_back(t);
    }
  }
  return tiles;
}

Result<ParameterSpace> SliceSpace(const ParameterSpace& parent,
                                  const TileSpec& tile) {
  if (tile.x_begin >= tile.x_end || tile.y_begin >= tile.y_end ||
      tile.x_end > parent.x_size() || tile.y_end > parent.y_size()) {
    return Status::InvalidArgument(
        "tile rectangle [" + std::to_string(tile.x_begin) + "," +
        std::to_string(tile.x_end) + ")x[" + std::to_string(tile.y_begin) +
        "," + std::to_string(tile.y_end) + ") is empty or outside the " +
        std::to_string(parent.x_size()) + "x" +
        std::to_string(parent.y_size()) + " grid");
  }
  Axis x;
  x.name = parent.x().name;
  x.values.assign(parent.x().values.begin() + tile.x_begin,
                  parent.x().values.begin() + tile.x_end);
  if (!parent.is_2d()) {
    return ParameterSpace::OneD(std::move(x));
  }
  Axis y;
  y.name = parent.y().name;
  y.values.assign(parent.y().values.begin() + tile.y_begin,
                  parent.y().values.begin() + tile.y_end);
  return ParameterSpace::TwoD(std::move(x), std::move(y));
}

}  // namespace robustmap
