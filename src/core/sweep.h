#ifndef ROBUSTMAP_CORE_SWEEP_H_
#define ROBUSTMAP_CORE_SWEEP_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/robustness_map.h"
#include "engine/plan.h"
#include "io/run_context.h"

namespace robustmap {

/// Progress/parallelism options for sweeps.
struct SweepOptions {
  bool verbose = false;  ///< prints progress to stderr

  /// Worker threads for parallel sweeps: 0 = one per hardware thread,
  /// 1 = serial in the caller's thread. Any setting produces bit-identical
  /// maps: every cell is a cold measurement on an isolated simulated
  /// machine, so only wall-clock time changes. (`RunSweep` is inherently
  /// serial and ignores this field.)
  unsigned num_threads = 0;
};

/// Generic sweep: measures `runner(plan, x, y)` for every plan over every
/// grid point. `y` is -1 for 1-D spaces. Use this form to map arbitrary
/// run-time conditions (memory, input size, ...).
using PointRunner =
    std::function<Result<Measurement>(size_t plan, double x, double y)>;

Result<RobustnessMap> RunSweep(const ParameterSpace& space,
                               const std::vector<std::string>& plan_labels,
                               const PointRunner& runner,
                               const SweepOptions& opts = {});

/// Runner form for parallel sweeps: the worker's private machine is passed
/// in, so per-cell run-time conditions (memory budgets, CPU constants) can
/// be varied without racing other workers. The runner is invoked
/// concurrently and must only touch shared state that is safe for
/// concurrent reads (all storage objects' read paths are).
using ContextPointRunner = std::function<Result<Measurement>(
    RunContext* ctx, size_t plan, double x, double y)>;

/// Thread-pool sweep over `opts.num_threads` workers, each measuring on its
/// own simulated machine built by `factory`. Cells are claimed from a
/// shared queue and written into the map by (plan, point) index, so the
/// resulting map is bit-identical to a serial sweep regardless of thread
/// count or scheduling. On error, the Status of the first failing cell (in
/// serial plan-major order) is returned, deterministically.
Result<RobustnessMap> ParallelRunSweep(
    const ParameterSpace& space, const std::vector<std::string>& plan_labels,
    const RunContextFactory& factory, const ContextPointRunner& runner,
    const SweepOptions& opts = {});

/// The paper's standard sweep: axes are predicate selectivities, plans are
/// `PlanKind`s executed cold by `executor`. For 1-D spaces only pred_a is
/// active. With `opts.num_threads != 1`, runs as a `ParallelRunSweep` with
/// `ctx` as the machine prototype.
Result<RobustnessMap> SweepStudyPlans(RunContext* ctx, const Executor& executor,
                                      const std::vector<PlanKind>& plans,
                                      const ParameterSpace& space,
                                      const SweepOptions& opts = {});

}  // namespace robustmap

#endif  // ROBUSTMAP_CORE_SWEEP_H_
