#ifndef ROBUSTMAP_CORE_SWEEP_H_
#define ROBUSTMAP_CORE_SWEEP_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/robustness_map.h"
#include "engine/plan.h"

namespace robustmap {

/// Progress/verbosity options for sweeps.
struct SweepOptions {
  bool verbose = false;  ///< prints one line per plan to stderr
};

/// Generic sweep: measures `runner(plan, x, y)` for every plan over every
/// grid point. `y` is -1 for 1-D spaces. Use this form to map arbitrary
/// run-time conditions (memory, input size, ...).
using PointRunner =
    std::function<Result<Measurement>(size_t plan, double x, double y)>;

Result<RobustnessMap> RunSweep(const ParameterSpace& space,
                               const std::vector<std::string>& plan_labels,
                               const PointRunner& runner,
                               const SweepOptions& opts = {});

/// The paper's standard sweep: axes are predicate selectivities, plans are
/// `PlanKind`s executed cold by `executor`. For 1-D spaces only pred_a is
/// active.
Result<RobustnessMap> SweepStudyPlans(RunContext* ctx, const Executor& executor,
                                      const std::vector<PlanKind>& plans,
                                      const ParameterSpace& space,
                                      const SweepOptions& opts = {});

}  // namespace robustmap

#endif  // ROBUSTMAP_CORE_SWEEP_H_
