#ifndef ROBUSTMAP_CORE_SWEEP_H_
#define ROBUSTMAP_CORE_SWEEP_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/robustness_map.h"
#include "engine/plan.h"
#include "io/run_context.h"

namespace robustmap {

/// Cumulative progress of a running sweep, passed to
/// `SweepOptions::progress` after every measured cell.
struct SweepProgress {
  size_t cells_done = 0;
  size_t cells_total = 0;
  size_t plans_done = 0;  ///< plans whose every cell has been measured
  size_t num_plans = 0;

  /// 100 when cells_total is 0 — an empty sweep is vacuously complete, and
  /// progress reporting must never be the thing that divides by zero.
  double percent() const {
    return cells_total == 0
               ? 100.0
               : 100.0 * static_cast<double>(cells_done) /
                     static_cast<double>(cells_total);
  }
};

using SweepProgressFn = std::function<void(const SweepProgress&)>;

/// The "0 = one per hardware thread" convention shared by
/// `SweepOptions::num_threads` and `ShardedSweepOptions::num_workers`:
/// returns `requested` unless it is 0, then the hardware concurrency
/// (1 when unknown). One definition, so threads and worker processes can
/// never resolve the same setting differently.
unsigned ResolveParallelism(unsigned requested);

/// Progress/parallelism options for sweeps.
struct SweepOptions {
  /// Prints per-plan / percent progress to stderr (via the default
  /// `progress` callback when none is given).
  bool verbose = false;

  /// Worker threads for parallel sweeps: 0 = one per hardware thread,
  /// 1 = serial in the caller's thread. Any setting produces bit-identical
  /// maps: every cell is a cold measurement on an isolated simulated
  /// machine, so only wall-clock time changes. (`RunSweep` is inherently
  /// serial and ignores this field.)
  unsigned num_threads = 0;

  /// Called after every measured cell, from both `RunSweep` and
  /// `ParallelRunSweep`. Invocations are serialized (cells_done increases by
  /// one per call), so the callback needs no locking of its own — but it
  /// runs under the sweep's progress lock, so keep it cheap.
  SweepProgressFn progress;

  /// When set, sweep workers attach to this cache instead of private
  /// per-worker pools, modeling concurrent queries sharing one server's
  /// memory. Results are deterministic only with `num_threads == 1` (the
  /// serial fallback); a parallel schedule makes residency — intentionally —
  /// scheduling-dependent. Honored by `SweepStudyPlans` and
  /// `RunWarmColdSweep`; combine with `WarmupPolicy::PriorRun()` on the
  /// prototype context for cross-query reuse, since the default cold policy
  /// clears the shared cache at every measurement.
  SharedBufferPool* shared_pool = nullptr;

  /// Replaces the scheduling-dependent parallel order with a fixed
  /// round-robin interleaving *across plans*: cells execute serially in
  /// point-major order — every plan's cell at point k, then every plan's at
  /// point k+1 — modeling one concurrent query stream per plan taking turns
  /// against the shared cache. The schedule is identical on every run, so
  /// with `shared_pool` + `WarmupPolicy::PriorRun()` concurrent-contention
  /// maps become regression-testable. (Without a shared pool or an
  /// order-dependent warmup the reordering is unobservable: cold cells are
  /// independent, and the map is the same bit-identical one as ever.)
  bool deterministic_shared_schedule = false;
};

/// Generic sweep: measures `runner(plan, x, y)` for every plan over every
/// grid point. `y` is -1 for 1-D spaces. Use this form to map arbitrary
/// run-time conditions (memory, input size, ...). An empty plan list or an
/// empty grid is an `InvalidArgument`, here and in `ParallelRunSweep` — a
/// sweep over nothing is a caller bug, not a map.
///
/// Compatibility shim over `SweepEngine::RunCells` (core/sweep_engine.h) —
/// every entry point in this header forwards to the engine, which is the
/// one code path that applies cost models, warmup policies, shared pools,
/// deterministic schedules, and progress callbacks.
using PointRunner =
    std::function<Result<Measurement>(size_t plan, double x, double y)>;

/// Index-based runner form: the cell is identified by its grid-point index
/// instead of resolved axis values, so a caller that precomputed per-point
/// state (bound queries, prepared plans) indexes straight into its tables —
/// the engine's core loops run on this form, and the value-based forms are
/// adapters that resolve `x_value`/`y_value` per cell.
using IndexedPointRunner =
    std::function<Result<Measurement>(size_t plan, size_t point)>;

Result<RobustnessMap> RunSweep(const ParameterSpace& space,
                               const std::vector<std::string>& plan_labels,
                               const PointRunner& runner,
                               const SweepOptions& opts = {});

/// Runner form for parallel sweeps: the worker's private machine is passed
/// in, so per-cell run-time conditions (memory budgets, CPU constants) can
/// be varied without racing other workers. The runner is invoked
/// concurrently and must only touch shared state that is safe for
/// concurrent reads (all storage objects' read paths are).
using ContextPointRunner = std::function<Result<Measurement>(
    RunContext* ctx, size_t plan, double x, double y)>;

/// Index-based form of `ContextPointRunner` (see `IndexedPointRunner`).
using IndexedContextPointRunner = std::function<Result<Measurement>(
    RunContext* ctx, size_t plan, size_t point)>;

/// Thread-pool sweep over `opts.num_threads` workers, each measuring on its
/// own simulated machine built by `factory`. Cells are claimed from a
/// shared queue in cost-weighted blocks (contiguous runs of the serial
/// order sized to carry ~equal analytic cost — cheap cells batch, the
/// expensive corner goes one cell at a time) and written into the map by
/// (plan, point) index, so the resulting map is bit-identical to a serial
/// sweep regardless of thread count, block shapes, or scheduling. On
/// error, the Status of the first failing cell (in serial plan-major
/// order) is returned, deterministically.
Result<RobustnessMap> ParallelRunSweep(
    const ParameterSpace& space, const std::vector<std::string>& plan_labels,
    const RunContextFactory& factory, const ContextPointRunner& runner,
    const SweepOptions& opts = {});

/// The paper's standard sweep: axes are predicate selectivities, plans are
/// `PlanKind`s executed by `executor` under `ctx`'s warmup policy (cold by
/// default). For 1-D spaces only pred_a is active. With
/// `opts.num_threads != 1` or `opts.shared_pool` set, runs as a
/// `ParallelRunSweep` with `ctx` as the machine prototype. Shim over
/// `SweepEngine::Run` with a plain-map study on the threaded backend.
Result<RobustnessMap> SweepStudyPlans(RunContext* ctx, const Executor& executor,
                                      const std::vector<PlanKind>& plans,
                                      const ParameterSpace& space,
                                      const SweepOptions& opts = {});

/// A paired cold/warm study of the same plans over the same space.
struct WarmColdMaps {
  RobustnessMap cold;
  RobustnessMap warm;
  /// Per-cell warm − cold: `seconds` is the signed time delta (negative
  /// where the warm cache helps). `output_rows` and `io` are zero — the
  /// counters are unsigned; consult the paired maps for absolute I/O.
  RobustnessMap delta;
};

/// warm − cold, cell by cell. The maps must have identical shapes and plan
/// labels, and each cell pair must agree on `output_rows` (caching must
/// never change a result) — anything else is an error.
Result<RobustnessMap> DiffMaps(const RobustnessMap& warm,
                               const RobustnessMap& cold);

/// Measures the same plans twice — once cold, once under `warm_policy` —
/// and returns both maps plus their delta. The cold sweep always uses
/// private per-worker pools (cold cells must be independent); the warm
/// sweep honors `opts.shared_pool`. The warm half is forced serial when
/// cache state is execution-order-dependent — a `kPriorRun` policy, or any
/// policy over a shared pool (each cell's ColdStart mutates the one shared
/// cache) — so the warm map is reproducible run-to-run for every policy.
/// `ctx->warmup` is restored on return. Shim over `SweepEngine::Run` with
/// a warm-cold-delta study on the threaded backend; to shard the same
/// study across processes, call the engine with the sharded backend.
Result<WarmColdMaps> RunWarmColdSweep(RunContext* ctx,
                                      const Executor& executor,
                                      const std::vector<PlanKind>& plans,
                                      const ParameterSpace& space,
                                      const WarmupPolicy& warm_policy,
                                      const SweepOptions& opts = {});

}  // namespace robustmap

#endif  // ROBUSTMAP_CORE_SWEEP_H_
