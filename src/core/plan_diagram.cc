#include "core/plan_diagram.h"

#include <algorithm>

#include "common/format.h"
#include "core/relative.h"

namespace robustmap {

PlanDiagram ComputePlanDiagram(const RobustnessMap& map,
                               const ToleranceSpec& tol) {
  PlanDiagram d;
  d.space = map.space();
  d.plan_labels = map.plan_labels();

  RelativeMap rel = ComputeRelative(map);
  OptimalityMap opt = ComputeOptimality(map, tol);
  d.best_plan = rel.best_plan;
  d.ties = opt.counts;

  d.cells_won.assign(map.num_plans(), 0);
  for (size_t winner : d.best_plan) ++d.cells_won[winner];

  for (size_t pl = 0; pl < map.num_plans(); ++pl) {
    if (d.cells_won[pl] > 0) d.winners.push_back(pl);
  }
  std::sort(d.winners.begin(), d.winners.end(), [&](size_t a, size_t b) {
    if (d.cells_won[a] != d.cells_won[b]) {
      return d.cells_won[a] > d.cells_won[b];
    }
    return a < b;
  });

  d.winner_regions.reserve(d.winners.size());
  for (size_t pl : d.winners) {
    std::vector<bool> member(d.space.num_points());
    for (size_t pt = 0; pt < member.size(); ++pt) {
      member[pt] = d.best_plan[pt] == pl;
    }
    d.winner_regions.push_back(AnalyzeRegions(d.space, member));
  }
  return d;
}

std::string RenderPlanDiagram(const PlanDiagram& d) {
  // Glyph per plan: winners get letters in region-size order so the
  // dominant plan is always 'A'.
  std::vector<char> glyph(d.plan_labels.size(), '?');
  for (size_t i = 0; i < d.winners.size(); ++i) {
    glyph[d.winners[i]] = static_cast<char>('A' + (i % 26));
  }

  std::string out = "Plan diagram (best measured plan per point):\n";
  size_t xs = d.space.x_size();
  for (size_t row = d.space.y_size(); row-- > 0;) {
    std::string line = "  ";
    for (size_t col = 0; col < xs; ++col) {
      size_t pt = d.space.IndexOf(col, row);
      line.push_back(glyph[d.best_plan[pt]]);
      // Mark ties: lowercase signals that >1 plan is within tolerance.
      if (d.ties[pt] > 1) line.back() = static_cast<char>(
          line.back() - 'A' + 'a');
      line.push_back(' ');
    }
    out += line + "\n";
  }
  out += "  (lowercase = multiple plans within tolerance at that point)\n";
  for (size_t i = 0; i < d.winners.size(); ++i) {
    size_t pl = d.winners[i];
    out += "  ";
    out.push_back(static_cast<char>('A' + (i % 26)));
    out += " = " + d.plan_labels[pl] + " (" +
           FormatCount(d.cells_won[pl]) + " cells, " +
           std::to_string(d.winner_regions[i].num_regions) + " region" +
           (d.winner_regions[i].num_regions == 1 ? "" : "s") + ")\n";
  }
  return out;
}

std::vector<size_t> RegionSizeSearchOrder(const PlanDiagram& d) {
  std::vector<size_t> order = d.winners;
  for (size_t pl = 0; pl < d.plan_labels.size(); ++pl) {
    if (d.cells_won[pl] == 0) order.push_back(pl);
  }
  return order;
}

}  // namespace robustmap
