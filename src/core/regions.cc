#include "core/regions.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace robustmap {

RegionStats AnalyzeRegions(const ParameterSpace& space,
                           const std::vector<bool>& member) {
  assert(member.size() == space.num_points());
  RegionStats stats;
  stats.labels.assign(member.size(), -1);

  size_t xs = space.x_size();
  size_t ys = space.y_size();
  std::vector<size_t> component_size;
  std::vector<size_t> stack;

  for (size_t start = 0; start < member.size(); ++start) {
    if (!member[start] || stats.labels[start] != -1) continue;
    int id = stats.num_regions++;
    size_t size = 0;
    stack.push_back(start);
    stats.labels[start] = id;
    while (!stack.empty()) {
      size_t pt = stack.back();
      stack.pop_back();
      ++size;
      size_t xi = pt % xs;
      size_t yi = pt / xs;
      auto visit = [&](size_t nx, size_t ny) {
        size_t np = ny * xs + nx;
        if (member[np] && stats.labels[np] == -1) {
          stats.labels[np] = id;
          stack.push_back(np);
        }
      };
      if (xi > 0) visit(xi - 1, yi);
      if (xi + 1 < xs) visit(xi + 1, yi);
      if (yi > 0) visit(xi, yi - 1);
      if (yi + 1 < ys) visit(xi, yi + 1);
    }
    component_size.push_back(size);
    stats.member_cells += size;
  }

  if (!component_size.empty()) {
    stats.largest_region =
        *std::max_element(component_size.begin(), component_size.end());
    stats.fragmentation =
        1.0 - static_cast<double>(stats.largest_region) /
                  static_cast<double>(stats.member_cells);
  }
  return stats;
}

}  // namespace robustmap
