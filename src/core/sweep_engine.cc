#include "core/sweep_engine.h"

#include <dirent.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include "common/mutex.h"
#include "common/trace.h"
#include "core/cell_cache.h"
#include "core/map_io.h"
#include "core/sharded_sweep.h"
#include "core/sweep_telemetry.h"
#include "engine/query.h"

namespace robustmap {

namespace {

/// Every sweep entry point rejects degenerate inputs up front: a sweep
/// over nothing is almost always a caller bug (an empty plan list, an axis
/// that lost its values), and the alternative — silently returning a
/// 0-cell map that every downstream analysis then has to defend against —
/// just moves the failure somewhere less diagnosable.
Status ValidateSweepInputs(const ParameterSpace& space,
                           const std::vector<std::string>& plan_labels) {
  if (plan_labels.empty()) {
    return Status::InvalidArgument("cannot sweep an empty plan list");
  }
  if (space.num_points() == 0) {
    return Status::InvalidArgument(
        "cannot sweep an empty grid (an axis has no values)");
  }
  return Status::OK();
}

/// True when any observability sink would accept data — the one check the
/// cell loops make before touching the wall clock, so an uninstrumented
/// sweep never reads it.
bool Observing() {
  return SweepTelemetry::Get().enabled() || Tracer::Get().enabled();
}

/// Sidecar-only per-cell accounting shared by every in-process cell loop:
/// the cell latency histogram plus the simulated-I/O counters of the
/// measurement. Reads the Measurement, never writes it — no map byte may
/// depend on anything recorded here.
void ObserveCell(const Measurement& m, double cell_seconds) {
  SweepTelemetry& t = SweepTelemetry::Get();
  if (!t.enabled()) return;
  t.RecordLatency("sweep.cell_seconds", cell_seconds);
  t.AddCounter("sweep.cells_measured", 1);
  t.AddCounter("io.sequential_reads", m.io.sequential_reads);
  t.AddCounter("io.skip_reads", m.io.skip_reads);
  t.AddCounter("io.random_reads", m.io.random_reads);
  t.AddCounter("io.writes", m.io.writes);
  t.AddCounter("io.buffer_hits", m.io.buffer_hits);
  t.AddCounter("io.bytes_read", m.io.bytes_read);
  t.AddCounter("io.bytes_written", m.io.bytes_written);
}

/// Set by a cache-consulting runner when the cell it just returned came
/// from the cell-result cache rather than a measurement; consumed (and
/// reset) by the cell loop that invoked it. A reused cell must leave every
/// measurement-side observability untouched — `sweep.cells_measured`, the
/// cell-latency histogram, the io.* counters, the pool-view tallies — or a
/// warm rerun could not prove "zero cells measured" from telemetry.
/// thread_local because parallel workers run interleaved.
thread_local bool tl_cell_from_cache = false;

/// RAII cell stopwatch shared by every cell loop: reads the wall clock at
/// construction only when some sink is observing (an uninstrumented sweep
/// never touches it), and `Observe` folds the finished cell into the
/// telemetry. One helper instead of a timing boilerplate copy per loop;
/// like everything observability, it reads the Measurement and never
/// writes it.
class CellTimer {
 public:
  explicit CellTimer(bool observing)
      : observing_(observing), start_ns_(observing ? MonotonicNowNs() : 0) {}

  /// Records the cell (latency + I/O counters). Call once, after a
  /// successful measurement; failed cells record nothing, as before.
  void Observe(const Measurement& m) const {
    if (!observing_) return;
    ObserveCell(m,
                static_cast<double>(MonotonicNowNs() - start_ns_) * 1e-9);
  }

 private:
  const bool observing_;
  const int64_t start_ns_;
};

/// Per-view buffer-pool tallies for one sweep worker. `ColdStart` zeroes
/// the pool statistics before each measurement, so reading them right
/// after a cell yields that cell's counts; the worker accumulates across
/// its cells and publishes once at exit under its view's name.
class PoolViewObserver {
 public:
  PoolViewObserver(const BufferPool* pool, unsigned view_index)
      : pool_(pool), view_index_(view_index) {}

  ~PoolViewObserver() {
    SweepTelemetry& t = SweepTelemetry::Get();
    if (!t.enabled() || pool_ == nullptr) return;
    char view[32];
    std::snprintf(view, sizeof(view), "pool.view_%03u", view_index_);
    t.AddCounter(std::string(view) + ".hits", hits_);
    t.AddCounter(std::string(view) + ".misses", misses_);
  }

  void CellDone() {
    if (pool_ == nullptr) return;
    hits_ += pool_->hits();
    misses_ += pool_->misses();
  }

 private:
  const BufferPool* pool_;
  const unsigned view_index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

/// The verbose-mode progress printer: one stderr line per completed plan
/// and per 10% step — readable for both quick smokes and hour-long studies.
SweepProgressFn MakeDefaultPrinter() {
  auto last_decile = std::make_shared<int>(-1);
  auto last_plans = std::make_shared<size_t>(0);
  return [last_decile, last_plans](const SweepProgress& p) {
    const int decile = static_cast<int>(p.percent() / 10.0);
    const bool plan_step = p.plans_done != *last_plans;
    if (decile == *last_decile && !plan_step && p.cells_done != p.cells_total) {
      return;
    }
    *last_decile = decile;
    *last_plans = p.plans_done;
    std::fprintf(stderr, "  sweep: %5.1f%% (%zu/%zu cells, %zu/%zu plans)\n",
                 p.percent(), p.cells_done, p.cells_total, p.plans_done,
                 p.num_plans);
  };
}

/// Serializes progress callbacks and maintains the cumulative counts for
/// both the serial and the parallel cell loop. All updates happen under one
/// mutex, so the callback observes cells_done = 1, 2, ..., total in order.
class ProgressTracker {
 public:
  ProgressTracker(const SweepOptions& opts, size_t num_plans, size_t points)
      : points_(points), per_plan_done_(num_plans, 0) {
    progress_.num_plans = num_plans;
    progress_.cells_total = num_plans * points;
    if (opts.progress) {
      fn_ = opts.progress;
    } else if (opts.verbose) {
      fn_ = MakeDefaultPrinter();
    }
  }

  void CellDone(size_t plan) {
    if (!fn_) return;
    MutexLock lock(&mu_);
    ++progress_.cells_done;
    if (++per_plan_done_[plan] == points_) ++progress_.plans_done;
    fn_(progress_);
  }

 private:
  // points_ and fn_ are immutable after construction, so workers may read
  // them without the capability; the cumulative counts are the shared
  // mutable state and live under mu_.
  const size_t points_;
  SweepProgressFn fn_;
  Mutex mu_;
  SweepProgress progress_ GUARDED_BY(mu_);
  std::vector<size_t> per_plan_done_ GUARDED_BY(mu_);
};

/// The paper's standard study sweep under one in-process backend choice:
/// axes are predicate selectivities, plans are `PlanKind`s executed under
/// `ctx`'s warmup policy. The serial path measures on `ctx` itself; a
/// shared pool needs the factory to attach worker views, and the
/// round-robin schedule reorders cells, so both always take the parallel
/// path (which degrades to in-caller-thread execution at one worker).
///
/// Everything a cell does not depend on is paid once per sweep, not once
/// per cell: plans are validated and their labels materialized through
/// `Executor::Prepare`, and every grid point's query — selectivity math,
/// predicate binding — is bound up front, so the inner loop is a table
/// lookup plus the measurement itself. A caller running several sweeps
/// against the same prototype (the warm-cold study) may pass
/// `shared_factory` so the parallel loop recycles its simulated machines
/// across sweeps; the factory must have been built from `ctx` and is only
/// used when the sweep does not need a differently-configured (shared-pool)
/// one.
///
/// With a `cache`, each cell consults it first — a hit returns the stored
/// measurement without touching the executor, a miss measures and
/// publishes back — keyed under `study_name` and the sweep's own
/// `ctx->warmup`. Order-dependent configurations bypass the cache: their
/// cell values depend on execution history, which a content fingerprint
/// cannot capture.
Result<RobustnessMap> StudySweep(RunContext* ctx, const Executor& executor,
                                 const std::vector<PlanKind>& plans,
                                 const ParameterSpace& space,
                                 const SweepOptions& opts,
                                 const char* study_name,
                                 CellResultCache* cache,
                                 RunContextFactory* shared_factory = nullptr) {
  std::vector<Executor::PreparedPlan> prepared;
  std::vector<std::string> labels;
  prepared.reserve(plans.size());
  labels.reserve(plans.size());
  for (PlanKind k : plans) {
    auto p = executor.Prepare(k);
    RM_RETURN_IF_ERROR(p.status());
    labels.push_back(p.value().label());
    prepared.push_back(std::move(p).value());
  }
  const int64_t domain = executor.db().domain;
  const size_t points = space.num_points();
  std::vector<QuerySpec> queries;
  queries.reserve(points);
  for (size_t pt = 0; pt < points; ++pt) {
    queries.push_back(
        MakeStudyQuery(space.x_value(pt), space.y_value(pt), domain));
  }
  if (cache != nullptr &&
      (ctx->warmup.is_order_dependent() || opts.shared_pool != nullptr ||
       opts.deterministic_shared_schedule)) {
    cache = nullptr;
  }
  std::vector<uint64_t> fps;  // [plan * points + point]
  if (cache != nullptr) {
    const uint64_t env = EnvironmentFingerprint(*ctx, domain);
    const std::string warmup_spec = ctx->warmup.ToSpec();
    fps.reserve(plans.size() * points);
    for (const std::string& label : labels) {
      for (size_t pt = 0; pt < points; ++pt) {
        fps.push_back(CellFingerprint(env, study_name, warmup_spec, label,
                                      space.x_value(pt), space.y_value(pt)));
      }
    }
  }
  // A hit marks the cell reused (the loops keep it out of every
  // measurement-side sink) and counts under the cache.* namespace.
  const auto lookup = [&](size_t plan, size_t point,
                          Measurement* out) -> bool {
    if (cache == nullptr) return false;
    if (!cache->Lookup(fps[plan * points + point], out)) {
      SweepTelemetry::Get().AddCounter("cache.misses", 1);
      return false;
    }
    SweepTelemetry::Get().AddCounter("cache.hits", 1);
    SweepTelemetry::Get().AddCounter("sweep.cells_reused", 1);
    tl_cell_from_cache = true;
    return true;
  };
  const auto publish = [&](size_t plan, size_t point, const Measurement& m) {
    if (cache == nullptr) return;
    if (cache->Publish(fps[plan * points + point], study_name, m)) {
      SweepTelemetry::Get().AddCounter("cache.publishes", 1);
    }
  };
  if (ResolveParallelism(opts.num_threads) <= 1 &&
      opts.shared_pool == nullptr && !opts.deterministic_shared_schedule) {
    PoolViewObserver pool_view(ctx->pool, 0);
    return SweepEngine::RunCellsIndexed(
        space, labels,
        [&](size_t plan, size_t point) -> Result<Measurement> {
          Measurement hit;
          if (lookup(plan, point, &hit)) return hit;
          auto m = executor.Run(ctx, prepared[plan], queries[point]);
          if (m.ok()) {
            pool_view.CellDone();
            publish(plan, point, m.value());
          }
          return m;
        },
        opts);
  }
  RunContextFactory local_factory(*ctx);
  RunContextFactory* factory =
      (shared_factory != nullptr && opts.shared_pool == nullptr)
          ? shared_factory
          : &local_factory;
  if (opts.shared_pool != nullptr) {
    local_factory.ShareBufferPool(opts.shared_pool);
  }
  // The prototype's warmup may have changed since the factory was built
  // (the warm-cold study flips it between halves); machines must start
  // under the policy of *this* sweep.
  factory->set_warmup(ctx->warmup);
  return SweepEngine::RunCellsParallelIndexed(
      space, labels, *factory,
      [&](RunContext* worker_ctx, size_t plan,
          size_t point) -> Result<Measurement> {
        Measurement hit;
        if (lookup(plan, point, &hit)) return hit;
        auto m = executor.Run(worker_ctx, prepared[plan], queries[point]);
        if (m.ok()) publish(plan, point, m.value());
        return m;
      },
      opts);
}

/// The warm-cold study: the same plans measured twice — once cold, once
/// under `warm_policy` — plus their per-cell delta. The cold sweep always
/// uses private per-worker pools (cold cells must be independent); the
/// warm sweep honors `opts.shared_pool`. The warm half is forced serial
/// when cache state is execution-order-dependent — a `kPriorRun` policy,
/// or any policy over a shared pool (each cell's ColdStart mutates the one
/// shared cache) — so the warm map is reproducible run-to-run for every
/// policy. `ctx->warmup` is restored on return.
Result<std::vector<RobustnessMap>> WarmColdLayers(
    RunContext* ctx, const Executor& executor,
    const std::vector<PlanKind>& plans, const ParameterSpace& space,
    const WarmupPolicy& warm_policy, const SweepOptions& opts,
    CellResultCache* cache) {
  const WarmupPolicy saved = ctx->warmup;

  // One machine factory for both halves: the warm half's parallel workers
  // recycle the cold half's simulated machines from the factory arena
  // instead of rebuilding them (recycled machines measure bit-identically
  // to fresh ones — see OwnedRunContext::Recycle). A shared-pool warm half
  // builds its own differently-wired factory inside StudySweep and simply
  // ignores this one.
  RunContextFactory factory(*ctx);

  // Cold half: warmup off, private per-worker pools — the classic map,
  // bit-identical at any thread count.
  ctx->warmup = WarmupPolicy::Cold();
  SweepOptions cold_opts = opts;
  cold_opts.shared_pool = nullptr;
  // Both halves fingerprint under the study's name; the halves stay
  // distinct because each sweeps under its own warmup spec (and when the
  // warm policy *is* cold, the halves are genuinely the same cells — the
  // warm half then rides entirely on the cold half's published entries).
  auto cold = StudySweep(ctx, executor, plans, space, cold_opts,
                         StudyKindName(StudyKind::kWarmColdDelta), cache,
                         &factory);
  if (!cold.ok()) {
    ctx->warmup = saved;
    return cold.status();
  }

  // Warm half under the requested policy. Two situations make warmth a
  // product of execution order, and both run serially so that order — and
  // with it the warm map — is the same on every invocation: prior-run
  // cells inherit their predecessor's cache, and a shared pool is mutated
  // by every cell's ColdStart (parallel workers would clear and re-warm
  // the one cache out from under each other's in-flight measurements).
  // Page-set policies on private per-worker pools are order-independent
  // and stay parallel.
  ctx->warmup = warm_policy;
  SweepOptions warm_opts = opts;
  if (warm_policy.is_order_dependent() || warm_opts.shared_pool != nullptr) {
    warm_opts.num_threads = 1;
  }
  if (warm_policy.is_order_dependent()) {
    // Prior-run cells inherit pool state, so pin the sweep's starting
    // state: the first cell runs cold, every later cell inherits from its
    // predecessor — the same history on every invocation.
    ctx->pool->Clear();
    if (warm_opts.shared_pool != nullptr) warm_opts.shared_pool->Clear();
  }
  auto warm = StudySweep(ctx, executor, plans, space, warm_opts,
                         StudyKindName(StudyKind::kWarmColdDelta), cache,
                         &factory);
  ctx->warmup = saved;
  if (!warm.ok()) return warm.status();

  auto delta = DiffMaps(warm.value(), cold.value());
  RM_RETURN_IF_ERROR(delta.status());
  std::vector<RobustnessMap> layers;
  layers.reserve(3);
  layers.push_back(std::move(cold).value());
  layers.push_back(std::move(warm).value());
  layers.push_back(std::move(delta).value());
  return layers;
}

Result<std::string> ReadErrFile(const std::string& tile_path) {
  std::ifstream f(TileErrFileName(tile_path));
  if (!f.is_open()) return Status::NotFound("no error file");
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

/// A checkpoint is reusable only if it parses, its checksum holds, and it
/// describes exactly the tile the current plan expects — same rectangle,
/// same parent grid, same plans, same study layers. Anything else (a tile
/// from an older configuration, a plain tile in a warm-cold directory, a
/// damaged file) must be recomputed. A tile the measured cost-model scan
/// already read and validated is taken from `preloaded` instead of reading
/// (and checksumming) the file a second time.
Result<MapTile> LoadValidTile(std::map<std::string, MapTile>* preloaded,
                              const std::string& path,
                              const TileSpec& expected,
                              const ParameterSpace& space,
                              const std::vector<std::string>& labels,
                              StudyKind study) {
  auto tile = [&]() -> Result<MapTile> {
    if (auto it = preloaded->find(path); it != preloaded->end()) {
      Result<MapTile> found(std::move(it->second));
      preloaded->erase(it);
      return found;
    }
    return ReadMapTileFile(path);
  }();
  RM_RETURN_IF_ERROR(tile.status());
  const MapTile& t = tile.value();
  if (!(t.spec == expected) || !(t.parent_space == space) ||
      t.map.plan_labels() != labels) {
    return Status::InvalidArgument(
        path + " describes a different tile, grid, or plan set");
  }
  if (t.num_layers() != StudyLayerCount(study) ||
      t.layer_names != StudyLayerNames(study)) {
    return Status::InvalidArgument(
        path + " carries a different study's layers");
  }
  return tile;
}

/// The `.rmt` files in `dir`, sorted by name. readdir order is
/// filesystem-dependent; every decision made from a directory scan
/// (synthetic shard ids, coverage adoption below) must come from the
/// sorted list so a given directory state always produces the same plan.
std::vector<std::string> SortedTileFiles(const std::string& dir_path) {
  std::vector<std::string> names;
  if (DIR* dir = ::opendir(dir_path.c_str()); dir != nullptr) {
    while (const dirent* entry = ::readdir(dir)) {
      const std::string name = entry->d_name;
      if (name.size() > 4 && name.rfind(".rmt") == name.size() - 4) {
        names.push_back(name);
      }
    }
    ::closedir(dir);
    std::sort(names.begin(), names.end());
  }
  return names;
}

/// True when `inner`'s (non-empty) rectangle lies entirely inside
/// `outer`'s. Shard ids play no part: a cell's value is a deterministic
/// function of (space, plans, study), so *any* valid tile covering the
/// right cells carries the right bytes whatever id computed it.
bool RectContains(const TileSpec& outer, const TileSpec& inner) {
  return inner.num_points() > 0 && inner.x_begin >= outer.x_begin &&
         inner.x_end <= outer.x_end && inner.y_begin >= outer.y_begin &&
         inner.y_end <= outer.y_end;
}

/// Appends `outer` minus `inner` (which must nest inside `outer`) as up to
/// four disjoint rectangles — the guillotine cut: full-height left and
/// right strips, then the bottom and top slabs of the middle column. The
/// pieces' shard ids are left for the caller to assign.
void SubtractRect(const TileSpec& outer, const TileSpec& inner,
                  std::vector<TileSpec>* out) {
  auto push = [out](size_t x0, size_t x1, size_t y0, size_t y1) {
    if (x0 >= x1 || y0 >= y1) return;
    TileSpec piece;
    piece.x_begin = x0;
    piece.x_end = x1;
    piece.y_begin = y0;
    piece.y_end = y1;
    out->push_back(piece);
  };
  push(outer.x_begin, inner.x_begin, outer.y_begin, outer.y_end);
  push(inner.x_end, outer.x_end, outer.y_begin, outer.y_end);
  push(inner.x_begin, inner.x_end, outer.y_begin, inner.y_begin);
  push(inner.x_begin, inner.x_end, inner.y_end, outer.y_end);
}

/// Cuts `t` in two at its cost midpoint along the longer axis: the cut
/// lands at the first slice boundary where the accumulated cost reaches
/// half the tile's, clamped so both halves are non-empty. `t` must span
/// more than one point. Purely a function of (tile, model) — the
/// determinism of straggler splitting rests on this.
std::pair<TileSpec, TileSpec> SplitTileAtCostMidpoint(
    const TileSpec& t, const CellCostModel& model) {
  const bool cut_x = t.x_size() >= t.y_size() ? t.x_size() > 1 : false;
  const size_t begin = cut_x ? t.x_begin : t.y_begin;
  const size_t end = cut_x ? t.x_end : t.y_end;
  const double total = model.TileCost(t);
  size_t cut = end - 1;
  double acc = 0;
  for (size_t i = begin; i < end; ++i) {
    TileSpec slice = t;
    if (cut_x) {
      slice.x_begin = i;
      slice.x_end = i + 1;
    } else {
      slice.y_begin = i;
      slice.y_end = i + 1;
    }
    acc += model.TileCost(slice);
    if (acc * 2 >= total) {
      cut = i + 1;
      break;
    }
  }
  cut = std::max(begin + 1, std::min(cut, end - 1));
  TileSpec a = t;
  TileSpec b = t;
  if (cut_x) {
    a.x_end = cut;
    b.x_begin = cut;
  } else {
    a.y_end = cut;
    b.y_begin = cut;
  }
  return {a, b};
}

/// The sharded coordinator's planning-time view of the cell cache: the
/// fingerprint of every (stored layer, plan, point) of the study. Stored
/// layers are what tiles persist directly from measurements — the plain
/// map's one sweep, or the warm-cold study's cold and warm halves; the
/// delta layer is derived at merge time and never cached.
class ShardCacheView {
 public:
  ShardCacheView(CellResultCache* cache, const RunContext& ctx,
                 int64_t domain, const SweepRequest& req,
                 const std::vector<std::string>& labels)
      : cache_(cache), space_(req.space), num_plans_(labels.size()) {
    const uint64_t env = EnvironmentFingerprint(ctx, domain);
    const char* study = StudyKindName(req.study);
    specs_ = req.study == StudyKind::kWarmColdDelta
                 ? std::vector<std::string>{WarmupPolicy::Cold().ToSpec(),
                                            req.warm_policy.ToSpec()}
                 : std::vector<std::string>{ctx.warmup.ToSpec()};
    fps_.reserve(specs_.size() * num_plans_ * space_.num_points());
    for (const std::string& spec : specs_) {
      for (const std::string& label : labels) {
        for (size_t pt = 0; pt < space_.num_points(); ++pt) {
          fps_.push_back(CellFingerprint(env, study, spec, label,
                                         space_.x_value(pt),
                                         space_.y_value(pt)));
        }
      }
    }
  }

  size_t num_layers() const { return specs_.size(); }
  CellResultCache* cache() const { return cache_; }

  uint64_t fp(size_t layer, size_t plan, size_t pt) const {
    return fps_[(layer * num_plans_ + plan) * space_.num_points() + pt];
  }

  /// True when every stored layer of every plan is cached at `pt`.
  bool PointCached(size_t pt) const {
    for (size_t layer = 0; layer < specs_.size(); ++layer) {
      for (size_t plan = 0; plan < num_plans_; ++plan) {
        if (!cache_->Contains(fp(layer, plan, pt))) return false;
      }
    }
    return true;
  }

  /// Row-major per-point flags for `CellCostModel::WithDiscountedCells`.
  std::vector<uint8_t> CachedFlags() const {
    std::vector<uint8_t> flags(space_.num_points());
    for (size_t pt = 0; pt < flags.size(); ++pt) {
      flags[pt] = PointCached(pt) ? 1 : 0;
    }
    return flags;
  }

  static bool TileCached(const TileSpec& t, const ParameterSpace& space,
                         const std::vector<uint8_t>& flags) {
    for (size_t yi = t.y_begin; yi < t.y_end; ++yi) {
      for (size_t xi = t.x_begin; xi < t.x_end; ++xi) {
        if (!flags[space.IndexOf(xi, yi)]) return false;
      }
    }
    return t.num_points() > 0;
  }

 private:
  CellResultCache* cache_;
  const ParameterSpace& space_;
  const size_t num_plans_;
  std::vector<std::string> specs_;  ///< warmup spec per stored layer
  std::vector<uint64_t> fps_;       ///< [layer][plan][point], row-major
};

/// Builds the tile a worker would have computed for a fully-cached
/// rectangle straight from the cache: per-layer cell copies, the derived
/// delta for a warm-cold study, wall_seconds 0 (nothing was measured —
/// the same stamp merged artifacts carry). Byte-equivalence holds because
/// hits return the exact Measurement a fresh run would have produced.
Result<MapTile> MaterializeCachedTile(const ShardCacheView& view,
                                      const SweepRequest& req,
                                      const std::vector<std::string>& labels,
                                      const TileSpec& t) {
  auto sub = SliceSpace(req.space, t);
  RM_RETURN_IF_ERROR(sub.status());
  std::vector<RobustnessMap> layers;
  for (size_t layer = 0; layer < view.num_layers(); ++layer) {
    RobustnessMap map(sub.value(), labels);
    for (size_t plan = 0; plan < labels.size(); ++plan) {
      for (size_t syi = 0; syi < sub.value().y_size(); ++syi) {
        for (size_t sxi = 0; sxi < sub.value().x_size(); ++sxi) {
          const size_t parent_pt =
              req.space.IndexOf(t.x_begin + sxi, t.y_begin + syi);
          Measurement m;
          if (!view.cache()->Lookup(view.fp(layer, plan, parent_pt), &m)) {
            return Status::Internal(
                "cell vanished from the cache while planning tile " +
                std::to_string(t.shard_id));
          }
          map.Set(plan, sub.value().IndexOf(sxi, syi), std::move(m));
        }
      }
    }
    layers.push_back(std::move(map));
  }
  if (req.study == StudyKind::kWarmColdDelta) {
    auto delta = DiffMaps(layers[1], layers[0]);
    RM_RETURN_IF_ERROR(delta.status());
    layers.push_back(std::move(delta).value());
  }
  MapTile out{t, req.space, std::move(layers.front()), 0.0};
  out.layer_names = StudyLayerNames(req.study);
  out.extra_layers.assign(std::make_move_iterator(layers.begin() + 1),
                          std::make_move_iterator(layers.end()));
  return out;
}

/// The sharded-process backend: partitions the grid with `ShardPlanner`
/// under the request's cost model, skips tiles already valid on disk
/// (unless resume is off), computes the rest through a pull-based work
/// queue — up to num_workers subprocesses in flight, each freed worker
/// slot immediately pulling the heaviest pending tile — and merges the
/// tile files layer by layer into maps bit-identical to an in-process
/// sweep of the same study (every cell is an order-independent
/// measurement, so its value cannot depend on which process ran it).
Result<SweepOutcome> RunShardedStudy(RunContext* ctx,
                                     const Executor& executor,
                                     const SweepRequest& req) {
  const ShardedSweepOptions& opts = req.sharded;
  const ParameterSpace& space = req.space;
  if (opts.tile_dir.empty()) {
    return Status::InvalidArgument("sharded sweep needs a tile_dir");
  }
  if (ctx->warmup.is_order_dependent() ||
      (req.study == StudyKind::kWarmColdDelta &&
       req.warm_policy.is_order_dependent())) {
    return Status::InvalidArgument(
        "sharded sweeps require an order-independent warmup policy; "
        "kPriorRun cells inherit cache state across the tile boundaries "
        "sharding erases");
  }
  if (req.sweep.shared_pool != nullptr ||
      req.sweep.deterministic_shared_schedule) {
    return Status::InvalidArgument(
        "sharded sweeps cannot share one buffer pool across processes; "
        "shared-pool (and deterministic-schedule) studies are in-process "
        "serial features");
  }
  const unsigned num_workers = ResolveParallelism(opts.num_workers);
  const size_t num_tiles =
      opts.num_tiles == 0 ? num_workers : opts.num_tiles;
  TraceSpan coordinator_span("shard.coordinator", "shard");
  std::unique_ptr<TraceSpan> phase_span =
      std::make_unique<TraceSpan>("shard.plan", "shard");

  std::vector<std::string> labels;
  labels.reserve(req.plans.size());
  for (PlanKind k : req.plans) labels.push_back(PlanKindLabel(k));

  // The cache view, computed once at planning time: it discounts cached
  // cells in the cost model below, skips dispatching fully-cached tiles,
  // and keys the post-merge publish of every measured cell.
  std::optional<ShardCacheView> cache_view;
  std::vector<uint8_t> cached_flags;
  if (req.cell_cache != nullptr) {
    cache_view.emplace(req.cell_cache, *ctx, executor.db().domain, req,
                       labels);
    cached_flags = cache_view->CachedFlags();
  }
  // The scheduling model. Measured mode scans the checkpoint directory
  // *before* anything is recomputed, so the partition reflects what the
  // previous run's tiles actually cost; with no usable timings it degrades
  // to the analytic prior, never to an error.
  std::vector<std::pair<std::string, MapTile>> prescanned;
  auto model = [&]() -> Result<CellCostModel> {
    switch (opts.cost_model) {
      case CostModelKind::kUniform:
        return CellCostModel::Uniform(space);
      case CostModelKind::kAnalytic:
        return CellCostModel::Analytic(space);
      case CostModelKind::kMeasured:
        // When resuming, keep what the scan read: the checkpoint pass
        // below can then validate those tiles from memory instead of
        // reading and checksumming every file twice.
        return MeasuredCostModelFromDir(opts.tile_dir, space,
                                        opts.resume ? &prescanned : nullptr);
    }
    return Status::InvalidArgument("unknown cost model kind");
  }();
  RM_RETURN_IF_ERROR(model.status());
  if (cache_view.has_value()) {
    // Cached cells are hits, not measurements: costed at a vanishing
    // epsilon, the weighted partition cuts its tiles around the cells that
    // still need measuring (uniform mode partitions by area regardless,
    // as it always did).
    model = model.value().WithDiscountedCells(cached_flags);
  }
  std::map<std::string, MapTile> preloaded;
  for (auto& [path, tile] : prescanned) {
    preloaded.emplace(path, std::move(tile));
  }
  prescanned.clear();
  auto tiles = opts.cost_model == CostModelKind::kUniform
                   ? ShardPlanner::Partition(space, num_tiles)
                   : ShardPlanner::PartitionWeighted(space, num_tiles,
                                                     model.value());
  RM_RETURN_IF_ERROR(tiles.status());
  RM_RETURN_IF_ERROR(EnsureDirectory(opts.tile_dir));

  // Synthetic shard ids — straggler pieces and coverage remainders below —
  // must collide neither with a planned id nor with any tile file already
  // in the directory, so both are folded into the counter before any id is
  // handed out.
  const std::vector<std::string> disk_tiles = SortedTileFiles(opts.tile_dir);
  size_t next_shard_id = 0;
  for (const TileSpec& t : tiles.value()) {
    next_shard_id = std::max(next_shard_id, t.shard_id + 1);
  }
  for (const std::string& name : disk_tiles) {
    size_t id = 0;
    if (std::sscanf(name.c_str(), "tile_%zu.rmt", &id) == 1) {
      next_shard_id = std::max(next_shard_id, id + 1);
    }
  }

  // The coverage-adoption candidate pool: every valid on-disk tile of this
  // exact study (grid, plans, layers — shard id deliberately ignored, any
  // valid tile for this study carries the right bytes for its rectangle).
  // Read lazily: the pool is only needed when a planned tile's own file is
  // missing or invalid, i.e. when a previous run was killed or damaged.
  std::vector<std::pair<std::string, MapTile>> candidates;
  bool candidates_loaded = false;
  const auto load_candidates = [&] {
    if (candidates_loaded) return;
    candidates_loaded = true;
    for (const std::string& name : disk_tiles) {
      auto tile = ReadMapTileFile(opts.tile_dir + "/" + name);
      if (!tile.ok()) continue;  // damaged or foreign file: not a candidate
      const MapTile& t = tile.value();
      if (!(t.parent_space == space) || t.map.plan_labels() != labels ||
          t.num_layers() != StudyLayerCount(req.study) ||
          t.layer_names != StudyLayerNames(req.study)) {
        continue;
      }
      candidates.emplace_back(name, std::move(tile).value());
    }
  };

  // Scan the checkpoint directory: valid tiles are carried over in memory,
  // the rest queue for workers. A planned tile whose own file is gone may
  // still be partially covered by tiles a killed run left behind — most
  // importantly the pieces of a straggler split — so those are adopted and
  // only the uncovered remainder rectangles queue (as fresh synthetic
  // tiles).
  phase_span = std::make_unique<TraceSpan>("shard.scan", "shard");
  std::vector<MapTile> loaded;
  std::vector<TileSpec> todo;
  std::vector<bool> candidate_used;
  for (const TileSpec& t : tiles.value()) {
    const std::string path = opts.tile_dir + "/" + TileFileName(t.shard_id);
    auto tile = opts.resume
                    ? LoadValidTile(&preloaded, path, t, space, labels,
                                    req.study)
                    : Result<MapTile>(Status::NotFound("resume disabled"));
    if (tile.ok()) {
      loaded.push_back(std::move(tile).value());
      SweepTelemetry::Get().AddCounter("shard.tiles_resumed", 1);
      if (opts.verbose) {
        std::fprintf(stderr, "  shard: tile %zu valid on disk, reused\n",
                     t.shard_id);
      }
      continue;
    }
    std::remove(TileErrFileName(path).c_str());
    // A tile whose every cell is already cached never reaches a worker:
    // its layers are materialized from the cache right here. Nothing is
    // written to disk — the point of skipping is to touch nothing.
    if (cache_view.has_value() &&
        ShardCacheView::TileCached(t, space, cached_flags)) {
      auto mem = MaterializeCachedTile(*cache_view, req, labels, t);
      RM_RETURN_IF_ERROR(mem.status());
      loaded.push_back(std::move(mem).value());
      SweepTelemetry::Get().AddCounter("shard.tiles_from_cache", 1);
      // The per-cell hit counters the lookup path would have bumped had
      // the tile been dispatched — a warm rerun's telemetry shows
      // cache.hits == cells either way. Stored layers only: a warm-cold
      // delta is derived, not looked up.
      const size_t tile_cells =
          cache_view->num_layers() * labels.size() * t.x_size() * t.y_size();
      SweepTelemetry::Get().AddCounter("cache.hits", tile_cells);
      SweepTelemetry::Get().AddCounter("sweep.cells_reused", tile_cells);
      if (opts.verbose) {
        std::fprintf(stderr,
                     "  shard: tile %zu fully cached, not dispatched\n",
                     t.shard_id);
      }
      continue;
    }
    std::vector<TileSpec> remainders{t};
    bool adopted_any = false;
    if (opts.resume) {
      load_candidates();
      candidate_used.resize(candidates.size(), false);
      for (size_t ci = 0; ci < candidates.size(); ++ci) {
        if (candidate_used[ci]) continue;
        const TileSpec& cand = candidates[ci].second.spec;
        // Adopt only a candidate nesting inside one current remainder
        // piece; anything straddling a cut is simply recomputed — the
        // exact-cover check in MergeTileLayers stays the safety net.
        const auto host =
            std::find_if(remainders.begin(), remainders.end(),
                         [&](const TileSpec& r) {
                           return RectContains(r, cand);
                         });
        if (host == remainders.end()) continue;
        const TileSpec hole = *host;
        remainders.erase(host);
        SubtractRect(hole, cand, &remainders);
        candidate_used[ci] = true;
        adopted_any = true;
        loaded.push_back(std::move(candidates[ci].second));
        SweepTelemetry::Get().AddCounter("shard.tiles_adopted", 1);
        if (opts.verbose) {
          std::fprintf(stderr,
                       "  shard: tile %zu partially covered by %s, "
                       "adopted\n",
                       t.shard_id, candidates[ci].first.c_str());
        }
      }
    }
    if (!adopted_any) {
      todo.push_back(t);
      continue;
    }
    for (TileSpec r : remainders) {
      r.shard_id = next_shard_id++;
      const std::string rpath =
          opts.tile_dir + "/" + TileFileName(r.shard_id);
      std::remove(TileErrFileName(rpath).c_str());
      todo.push_back(r);
    }
  }
  SweepTelemetry::Get().AddCounter("shard.tiles_queued", todo.size());

  // Pull-based dispatch: the pending queue is ordered heaviest-first under
  // the cost model (LPT — the classic makespan heuristic), and every time
  // a worker slot frees up it pulls the head of the queue. The expensive
  // corner tiles start immediately; the cheap tail fills in around them
  // instead of everyone waiting on a monster tile scheduled last.
  SortTilesHeaviestFirst(&todo, model.value());

  ShardedSweepStats local;
  local.tiles_total = tiles.value().size();
  local.tiles_reused = loaded.size();

  // Straggler splitting, decided purely from the cost model before any
  // dispatch (never from mid-run wall-clock observations — reap timing
  // would make the tile set, the stats, and the verbose output depend on
  // scheduling luck): with idle workers guaranteed — fewer pending tiles
  // than workers, the resume-two-damaged-tiles-on-a-big-box shape — any
  // pending tile still holding more than 1.25× a worker's fair share of
  // the pending cost is cut at its cost midpoint, repeatedly, until the
  // heaviest pending tile fits or is a single cell. Tiles are keyed by
  // cell ranges, so the merged bytes cannot change; only the checkpoint
  // granularity does.
  if (opts.split_stragglers && num_workers > 1 && !todo.empty() &&
      todo.size() < num_workers) {
    double pending_total = 0;
    for (const TileSpec& t : todo) pending_total += model.value().TileCost(t);
    const double threshold =
        1.25 * pending_total / static_cast<double>(num_workers);
    while (todo.front().num_points() > 1 &&
           model.value().TileCost(todo.front()) > threshold) {
      const TileSpec head = todo.front();
      todo.erase(todo.begin());
      auto [a, b] = SplitTileAtCostMidpoint(head, model.value());
      a.shard_id = next_shard_id++;
      b.shard_id = next_shard_id++;
      for (const TileSpec& child : {a, b}) {
        const std::string cpath =
            opts.tile_dir + "/" + TileFileName(child.shard_id);
        std::remove(TileErrFileName(cpath).c_str());
        const double child_cost = model.value().TileCost(child);
        const auto pos = std::find_if(
            todo.begin(), todo.end(), [&](const TileSpec& u) {
              return model.value().TileCost(u) < child_cost;
            });
        todo.insert(pos, child);
      }
      ++local.tiles_split;
      SweepTelemetry::Get().AddCounter("shard.tiles_split", 1);
      if (opts.verbose) {
        std::fprintf(stderr,
                     "  shard: straggler tile %zu split into %zu + %zu\n",
                     head.shard_id, a.shard_id, b.shard_id);
      }
    }
  }

  local.tiles_computed = todo.size();
  local.workers_spawned =
      static_cast<unsigned>(std::min<size_t>(num_workers, todo.size()));

  if (opts.verbose && !todo.empty()) {
    std::fprintf(stderr,
                 "  shard: %s cost model, %s study, %zu pending tiles "
                 "(heaviest %.3g, lightest %.3g relative cost)\n",
                 CostModelKindName(opts.cost_model),
                 StudyKindName(req.study), todo.size(),
                 model.value().TileCost(todo.front()),
                 model.value().TileCost(todo.back()));
  }

  // The policy an exec-mode worker must reconstruct: the warm layer's for
  // a warm-cold study, the context's own for a plain study measured warm.
  const WarmupPolicy& flag_policy = req.study == StudyKind::kWarmColdDelta
                                        ? req.warm_policy
                                        : ctx->warmup;

  // One subprocess per outstanding tile, at most num_workers in flight.
  // stdio is flushed first so forked children do not replay the parent's
  // buffered output. Each in-flight tile occupies a worker *slot*; per-slot
  // busy time is what the balance metrics report.
  phase_span = std::make_unique<TraceSpan>("shard.dispatch", "shard");
  std::fflush(stdout);
  std::fflush(stderr);
  // Exec-mode workers can only see the cache through its file, so
  // everything this coordinator holds must hit the disk before the first
  // worker starts; fork-mode workers inherit the in-memory cache for
  // free. A failed flush degrades reuse, never the sweep.
  if (!todo.empty() && !opts.worker_command.empty() &&
      req.cell_cache != nullptr && req.cell_cache->attached()) {
    if (Status s = req.cell_cache->WriteCellCacheFile(); !s.ok()) {
      std::fprintf(stderr, "  shard: cell cache flush: %s\n",
                   s.ToString().c_str());
    }
  }
  // Workers report their observability through per-tile sidecar files next
  // to the tile itself; the coordinator folds each one in at reap time.
  const auto trace_sidecar = [](const std::string& tile_path) {
    return tile_path + ".trace.json";
  };
  const auto telemetry_sidecar = [](const std::string& tile_path) {
    return tile_path + ".telemetry.json";
  };
  struct InFlight {
    size_t todo_index;
    size_t slot;
    int64_t started_ns;
  };
  std::map<pid_t, InFlight> running;
  std::set<size_t> free_slots;
  std::vector<size_t> failed;
  size_t next = 0;
  size_t computed_done = 0;
  SweepOptions worker_opts;
  worker_opts.num_threads = std::max(1u, opts.threads_per_worker);
  while (next < todo.size() || !running.empty()) {
    while (next < todo.size() && running.size() < num_workers) {
      const TileSpec& t = todo[next];
      const std::string path =
          opts.tile_dir + "/" + TileFileName(t.shard_id);
      // A stale sidecar from an aborted run must never merge as if this
      // dispatch produced it.
      std::remove(trace_sidecar(path).c_str());
      std::remove(telemetry_sidecar(path).c_str());
      pid_t pid = ::fork();
      if (pid < 0) {
        return Status::Internal("fork failed: " + ErrnoString(errno));
      }
      if (pid == 0) {
        // Worker. Either exec the external worker binary, or compute the
        // tile right here on the forked copy of the parent's environment.
        if (!opts.worker_command.empty()) {
          std::vector<std::string> args = opts.worker_command;
          // The tile count is part of a tile id's meaning, and only this
          // side knows the resolved value — the worker must never re-derive
          // it from a default that could drift. The rectangle itself rides
          // along too: with cost-weighted partitioning the boundaries
          // depend on the model, so the coordinator's exact cuts are the
          // contract, not something a worker recomputes. The study (and
          // its warmup policy, when not cold) completes the contract: a
          // worker computing a different study under the right tile name
          // would poison the merge.
          args.push_back("--tiles=" + std::to_string(num_tiles));
          args.push_back("--tile=" + std::to_string(t.shard_id));
          args.push_back("--rect=" + RectSpecString(t));
          args.push_back("--study=" + std::string(StudyKindName(req.study)));
          if (!flag_policy.is_cold()) {
            args.push_back("--warmup=" + flag_policy.ToSpec());
          }
          args.push_back("--out=" + path);
          // A persistent cache rides along read-only (the coordinator
          // flushed it before dispatch); workers publish only in memory
          // and the coordinator re-publishes the merged cells itself.
          if (req.cell_cache != nullptr && req.cell_cache->attached()) {
            const std::string& cache_file = req.cell_cache->path();
            args.push_back("--cache-dir=" +
                           cache_file.substr(0, cache_file.rfind('/')));
          }
          // Progressive coarse levels sweep a sublattice; the worker must
          // subsample its reconstructed grid the same way before slicing.
          if (opts.lattice_stride > 1) {
            args.push_back("--stride=" +
                           std::to_string(opts.lattice_stride));
          }
          // Observability rides along only when the coordinator itself is
          // collecting: the worker traces against the coordinator's epoch
          // into per-tile sidecars merged at reap time.
          if (Tracer::Get().enabled()) {
            args.push_back("--trace=" + trace_sidecar(path));
            args.push_back("--trace-epoch=" +
                           std::to_string(Tracer::Get().epoch_ns()));
          }
          if (SweepTelemetry::Get().enabled()) {
            args.push_back("--telemetry=" + telemetry_sidecar(path));
          }
          std::vector<char*> argv;
          argv.reserve(args.size() + 1);
          for (std::string& a : args) argv.push_back(a.data());
          argv.push_back(nullptr);
          ::execvp(argv[0], argv.data());
          WriteTileErrFile(path, Status::Internal("cannot exec " + args[0] +
                                                  ": " + ErrnoString(errno)));
          ::_exit(127);
        }
        // Forked children inherit the parent's buffered events; drop them
        // (keeping the shared epoch) so the sidecars report only this
        // tile's work.
        if (Tracer::Get().enabled()) {
          const int64_t epoch = Tracer::Get().epoch_ns();
          Tracer::Get().Reset();
          Tracer::Get().SetEpochNs(epoch);
        }
        if (SweepTelemetry::Get().enabled()) SweepTelemetry::Get().Reset();
        Status s = ComputeAndWriteTile(ctx, executor, req.plans, space, t,
                                       path, worker_opts, req.study,
                                       req.warm_policy, req.cell_cache);
        if (!s.ok()) {
          WriteTileErrFile(path, s);
          ::_exit(1);
        }
        if (Tracer::Get().enabled()) {
          Status ts = Tracer::Get().WriteFile(trace_sidecar(path));
          if (!ts.ok()) {
            std::fprintf(stderr, "  shard: tile %zu trace sidecar: %s\n",
                         t.shard_id, ts.ToString().c_str());
          }
        }
        if (SweepTelemetry::Get().enabled()) {
          Status ms =
              SweepTelemetry::Get().WriteFile(telemetry_sidecar(path));
          if (!ms.ok()) {
            std::fprintf(stderr,
                         "  shard: tile %zu telemetry sidecar: %s\n",
                         t.shard_id, ms.ToString().c_str());
          }
        }
        ::_exit(0);
      }
      size_t slot;
      if (!free_slots.empty()) {
        slot = *free_slots.begin();
        free_slots.erase(free_slots.begin());
      } else {
        slot = local.worker_busy_seconds.size();
        local.worker_busy_seconds.push_back(0);
      }
      running.emplace(pid, InFlight{next, slot, MonotonicNowNs()});
      SweepTelemetry::Get().AddCounter("shard.tiles_dispatched", 1);
      ++next;
    }
    // Reap exactly one of *our* workers. waitpid(-1) would also consume
    // the exit status of any unrelated child an embedding application has
    // in flight, so poll the known pids instead; tiles take seconds, the
    // 10 ms poll interval is noise.
    bool reaped = false;
    while (!reaped) {
      for (auto it = running.begin(); it != running.end();) {
        int wstatus = 0;
        pid_t r = ::waitpid(it->first, &wstatus, WNOHANG);
        if (r == 0 || (r < 0 && errno == EINTR)) {
          ++it;
          continue;
        }
        if (r < 0) {
          return Status::Internal("waitpid failed: " + ErrnoString(errno));
        }
        const size_t idx = it->second.todo_index;
        const int64_t started_ns = it->second.started_ns;
        const double tile_wall_seconds =
            static_cast<double>(MonotonicNowNs() - started_ns) * 1e-9;
        local.worker_busy_seconds[it->second.slot] += tile_wall_seconds;
        free_slots.insert(it->second.slot);
        it = running.erase(it);
        reaped = true;
        const std::string tile_path =
            opts.tile_dir + "/" + TileFileName(todo[idx].shard_id);
        if (Tracer::Get().enabled()) {
          // The dispatch-to-reap span for this tile, on the coordinator's
          // timeline; the worker's own spans sit inside it once the
          // sidecar merges.
          Tracer::Get().AddComplete(
              "shard.tile " + std::to_string(todo[idx].shard_id), "shard",
              started_ns, MonotonicNowNs() - started_ns);
        }
        SweepTelemetry::Get().RecordLatency("shard.tile_wall_seconds",
                                            tile_wall_seconds);
        if (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0) {
          ++computed_done;
          SweepTelemetry::Get().AddCounter("shard.tiles_computed", 1);
          // Fold the worker's sidecars in and drop them; a missing or
          // unreadable sidecar degrades the trace, never the sweep.
          if (Tracer::Get().enabled()) {
            Status ms = Tracer::Get().MergeFromFile(trace_sidecar(tile_path));
            if (ms.ok()) {
              std::remove(trace_sidecar(tile_path).c_str());
            } else {
              std::fprintf(stderr, "  shard: tile %zu trace sidecar: %s\n",
                           todo[idx].shard_id, ms.ToString().c_str());
            }
          }
          if (SweepTelemetry::Get().enabled()) {
            Status ms = SweepTelemetry::Get().MergeFromFile(
                telemetry_sidecar(tile_path));
            if (ms.ok()) {
              std::remove(telemetry_sidecar(tile_path).c_str());
            } else {
              std::fprintf(stderr,
                           "  shard: tile %zu telemetry sidecar: %s\n",
                           todo[idx].shard_id, ms.ToString().c_str());
            }
          }
          if (opts.verbose) {
            std::fprintf(stderr,
                         "  shard: tile %zu computed (%zu/%zu done)\n",
                         todo[idx].shard_id,
                         local.tiles_reused + computed_done,
                         local.tiles_total);
          }
        } else {
          SweepTelemetry::Get().AddCounter("shard.tiles_failed", 1);
          failed.push_back(idx);
        }
      }
      if (!reaped) ::usleep(10000);
    }
  }

  if (!failed.empty()) {
    // Report the failure of the lowest shard id — stable whatever dispatch
    // order the cost model produced — with the worker's own Status when it
    // managed to leave one. Completed tiles stay on disk, so the rerun
    // that follows a fix resumes instead of restarting.
    size_t worst = failed.front();
    for (size_t idx : failed) {
      if (todo[idx].shard_id < todo[worst].shard_id) worst = idx;
    }
    const TileSpec& t = todo[worst];
    const std::string path = opts.tile_dir + "/" + TileFileName(t.shard_id);
    auto msg = ReadErrFile(path);
    return Status::Internal(
        "sweep worker for tile " + std::to_string(t.shard_id) + " failed" +
        (msg.ok() ? ": " + msg.value()
                  : " without leaving an error file (killed?)"));
  }

  // Merge: freshly computed tiles are read back from disk — the same
  // validated path a resumed coordinator takes — then stitched with the
  // reused ones, layer by layer.
  phase_span = std::make_unique<TraceSpan>("shard.merge", "shard");
  for (const TileSpec& t : todo) {
    const std::string path = opts.tile_dir + "/" + TileFileName(t.shard_id);
    auto tile = ReadMapTileFile(path);
    RM_RETURN_IF_ERROR(tile.status());
    loaded.push_back(std::move(tile).value());
  }
  SweepTelemetry::Get().AddCounter("shard.tiles_merged", loaded.size());
  auto merged = MergeTileLayers(space, labels, loaded);
  RM_RETURN_IF_ERROR(merged.status());
  // Every merged cell goes back into the cache — whatever process measured
  // it (workers publish into their own address spaces, which the parent
  // never sees). Insert-if-absent: re-publishing cells the cache already
  // holds keeps a clean cache clean.
  if (cache_view.has_value()) {
    uint64_t published = 0;
    for (size_t layer = 0; layer < cache_view->num_layers(); ++layer) {
      const RobustnessMap& merged_layer = merged.value()[layer];
      for (size_t plan = 0; plan < labels.size(); ++plan) {
        for (size_t pt = 0; pt < space.num_points(); ++pt) {
          if (req.cell_cache->Publish(cache_view->fp(layer, plan, pt),
                                      StudyKindName(req.study),
                                      merged_layer.At(plan, pt))) {
            ++published;
          }
        }
      }
    }
    if (published > 0) {
      SweepTelemetry::Get().AddCounter("cache.publishes", published);
    }
  }
  phase_span.reset();
  if (merged.value().size() != StudyLayerCount(req.study)) {
    return Status::Internal("merged " + std::to_string(merged.value().size()) +
                            " layers for a " +
                            std::to_string(StudyLayerCount(req.study)) +
                            "-layer study");
  }
  SweepOutcome out;
  out.study = req.study;
  out.layers = std::move(merged).value();
  out.sharded_stats = std::move(local);
  return out;
}

/// Nearest-neighbor upsample of one coarse-lattice layer onto the full
/// grid: every full-grid cell shows the measurement of its nearest lattice
/// point (ties round down). Snapshot presentation only — refined levels
/// overwrite it with real measurements.
RobustnessMap UpsampleNearest(const RobustnessMap& coarse,
                              const ParameterSpace& full, size_t stride) {
  const ParameterSpace& lattice = coarse.space();
  RobustnessMap out(full, coarse.plan_labels());
  for (size_t plan = 0; plan < coarse.num_plans(); ++plan) {
    for (size_t yi = 0; yi < full.y_size(); ++yi) {
      const size_t lyi =
          full.is_2d()
              ? std::min((yi + stride / 2) / stride, lattice.y_size() - 1)
              : 0;
      for (size_t xi = 0; xi < full.x_size(); ++xi) {
        const size_t lxi =
            std::min((xi + stride / 2) / stride, lattice.x_size() - 1);
        out.Set(plan, full.IndexOf(xi, yi), coarse.AtXY(plan, lxi, lyi));
      }
    }
  }
  return out;
}

/// The coarse-to-fine driver: one ordinary sweep per refinement level,
/// coarsest lattice first, all levels sharing one cell cache so a cell is
/// measured the first time some level's lattice lands on it and reused by
/// every later level. The final level sweeps the full grid, so its layers
/// are byte-identical to a direct sweep's — earlier levels only changed
/// *when* cells were measured, never what.
Result<SweepOutcome> RunProgressive(RunContext* ctx, const Executor& executor,
                                    const SweepRequest& req) {
  if (ctx->warmup.is_order_dependent() ||
      (req.study == StudyKind::kWarmColdDelta &&
       req.warm_policy.is_order_dependent())) {
    return Status::InvalidArgument(
        "progressive sweeps require an order-independent warmup policy; "
        "coarse-level reuse replays cells out of sweep order");
  }
  if (req.sweep.shared_pool != nullptr ||
      req.sweep.deterministic_shared_schedule) {
    return Status::InvalidArgument(
        "progressive sweeps cannot reuse cells under a shared pool or a "
        "deterministic shared schedule, whose cell values depend on "
        "execution order");
  }
  // Reuse across levels needs a cache; when the caller brought none, a
  // sweep-lifetime in-memory one serves.
  CellResultCache local_cache;
  CellResultCache* cache =
      req.cell_cache != nullptr ? req.cell_cache : &local_cache;

  const bool observing = Observing();
  const int64_t start_ns = observing ? MonotonicNowNs() : 0;
  bool first_snapshot_pending = true;

  std::vector<size_t> strides;
  for (size_t s = req.progressive.initial_stride; s > 1; s /= 2) {
    strides.push_back(s);
  }
  strides.push_back(1);

  Result<SweepOutcome> out =
      Status::Internal("progressive sweep ran no levels");
  for (size_t stride : strides) {
    SweepRequest level = req;
    level.progressive = ProgressiveOptions{};
    level.cell_cache = cache;
    level.space = SubsampleSpace(req.space, stride);
    level.sharded.lattice_stride = stride;
    if (req.backend == BackendKind::kShardedProcess && stride > 1) {
      // Coarse-level checkpoints live one subdirectory per level, so each
      // level's resume scan sees only its own lattice's tiles; the final
      // level writes into the caller's tile_dir exactly as a direct
      // sharded sweep would.
      level.sharded.tile_dir =
          req.sharded.tile_dir + "/level_" + std::to_string(stride);
    }
    out = SweepEngine::Run(ctx, executor, level);
    RM_RETURN_IF_ERROR(out.status());
    SweepTelemetry::Get().AddCounter("sweep.progressive_levels", 1);
    if (req.progressive.on_snapshot) {
      if (stride == 1) {
        req.progressive.on_snapshot(1, out.value().layers);
      } else {
        std::vector<RobustnessMap> filled;
        filled.reserve(out.value().layers.size());
        for (const RobustnessMap& layer : out.value().layers) {
          filled.push_back(UpsampleNearest(layer, req.space, stride));
        }
        req.progressive.on_snapshot(stride, filled);
      }
    }
    if (observing && first_snapshot_pending) {
      first_snapshot_pending = false;
      SweepTelemetry::Get().RecordLatency(
          "sweep.seconds_to_first_snapshot",
          static_cast<double>(MonotonicNowNs() - start_ns) * 1e-9);
    }
  }
  return out;
}

}  // namespace

Result<StudyKind> StudyKindFromString(const std::string& name) {
  if (name == "plain") return StudyKind::kPlainMap;
  if (name == "warmcold") return StudyKind::kWarmColdDelta;
  return Status::InvalidArgument("unknown study '" + name +
                                 "' (want plain or warmcold)");
}

const char* StudyKindName(StudyKind kind) {
  switch (kind) {
    case StudyKind::kPlainMap:
      return "plain";
    case StudyKind::kWarmColdDelta:
      return "warmcold";
  }
  return "?";
}

size_t StudyLayerCount(StudyKind kind) {
  return kind == StudyKind::kWarmColdDelta ? 3 : 1;
}

std::vector<std::string> StudyLayerNames(StudyKind kind) {
  switch (kind) {
    case StudyKind::kPlainMap:
      return {};  // unnamed single layer: plain tiles stay on v2 bytes
    case StudyKind::kWarmColdDelta:
      return {"cold", "warm", "delta"};
  }
  return {};
}

Result<BackendKind> BackendKindFromString(const std::string& name) {
  if (name == "serial") return BackendKind::kSerial;
  if (name == "threaded") return BackendKind::kThreaded;
  if (name == "sharded") return BackendKind::kShardedProcess;
  return Status::InvalidArgument("unknown backend '" + name +
                                 "' (want serial, threaded, or sharded)");
}

const char* BackendKindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kSerial:
      return "serial";
    case BackendKind::kThreaded:
      return "threaded";
    case BackendKind::kShardedProcess:
      return "sharded";
  }
  return "?";
}

Result<RobustnessMap> SweepEngine::RunCells(
    const ParameterSpace& space, const std::vector<std::string>& plan_labels,
    const PointRunner& runner, const SweepOptions& opts) {
  return RunCellsIndexed(
      space, plan_labels,
      [&](size_t plan, size_t point) {
        return runner(plan, space.x_value(point), space.y_value(point));
      },
      opts);
}

Result<RobustnessMap> SweepEngine::RunCellsIndexed(
    const ParameterSpace& space, const std::vector<std::string>& plan_labels,
    const IndexedPointRunner& runner, const SweepOptions& opts) {
  RM_RETURN_IF_ERROR(ValidateSweepInputs(space, plan_labels));
  TraceSpan sweep_span("sweep.run_cells");
  const bool observing = Observing();
  RobustnessMap map(space, plan_labels);
  ProgressTracker tracker(opts, plan_labels.size(), space.num_points());
  for (size_t plan = 0; plan < plan_labels.size(); ++plan) {
    for (size_t point = 0; point < space.num_points(); ++point) {
      CellTimer timer(observing);
      auto m = runner(plan, point);
      RM_RETURN_IF_ERROR(m.status());
      if (!std::exchange(tl_cell_from_cache, false)) {
        timer.Observe(m.value());
      }
      map.Set(plan, point, std::move(m).value());
      tracker.CellDone(plan);
    }
  }
  return map;
}

Result<RobustnessMap> SweepEngine::RunCellsParallel(
    const ParameterSpace& space, const std::vector<std::string>& plan_labels,
    const RunContextFactory& factory, const ContextPointRunner& runner,
    const SweepOptions& opts) {
  return RunCellsParallelIndexed(
      space, plan_labels, factory,
      [&](RunContext* ctx, size_t plan, size_t point) {
        return runner(ctx, plan, space.x_value(point), space.y_value(point));
      },
      opts);
}

Result<RobustnessMap> SweepEngine::RunCellsParallelIndexed(
    const ParameterSpace& space, const std::vector<std::string>& plan_labels,
    const RunContextFactory& factory, const IndexedContextPointRunner& runner,
    const SweepOptions& opts) {
  RM_RETURN_IF_ERROR(ValidateSweepInputs(space, plan_labels));
  const unsigned num_threads = ResolveParallelism(opts.num_threads);
  const size_t points = space.num_points();
  const size_t cells = plan_labels.size() * points;
  RobustnessMap map(space, plan_labels);
  ProgressTracker tracker(opts, plan_labels.size(), points);

  // The deterministic concurrent-contention schedule: serial execution in
  // point-major round-robin across plans, as if one query stream per plan
  // took turns on the machine. Shared-pool residency then evolves the same
  // way on every run — unlike the true-parallel schedule below, whose
  // interleaving (intentionally) depends on thread timing.
  if (opts.deterministic_shared_schedule) {
    if (opts.verbose) {
      std::fprintf(stderr,
                   "  sweep: %zu cells (%zu plans), fixed round-robin "
                   "schedule\n",
                   cells, plan_labels.size());
    }
    TraceSpan schedule_span("sweep.round_robin");
    const bool observing = Observing();
    std::unique_ptr<OwnedRunContext> machine = factory.Acquire();
    Status loop_status = Status::OK();
    {
      // The observer publishes from the machine's pool at scope exit, so
      // it must close before the machine is parked back in the arena.
      PoolViewObserver pool_view(machine->ctx()->pool, 0);
      for (size_t point = 0; point < points && loop_status.ok(); ++point) {
        for (size_t plan = 0; plan < plan_labels.size(); ++plan) {
          CellTimer timer(observing);
          auto m = runner(machine->ctx(), plan, point);
          if (!m.ok()) {
            loop_status = m.status();
            break;
          }
          if (!std::exchange(tl_cell_from_cache, false)) {
            timer.Observe(m.value());
            if (observing) pool_view.CellDone();
          }
          map.Set(plan, point, std::move(m).value());
          tracker.CellDone(plan);
        }
      }
    }
    factory.Release(std::move(machine));
    RM_RETURN_IF_ERROR(loop_status);
    return map;
  }

  // Work units are *cost-weighted cell blocks*: contiguous runs of the
  // serial (plan-major) cell order, cut so each block carries roughly equal
  // analytic cost. Cheap low-selectivity cells batch by the dozen (fewer
  // atomic claims), while the expensive corner degrades to single-cell
  // blocks (no worker is ever stuck behind a mega-block at the tail).
  // Map writes stay keyed by (plan, point), so the result is bit-identical
  // to a serial sweep whatever the block shapes.
  std::vector<double> point_cost(points, 1.0);
  if (auto model = CellCostModel::Analytic(space); model.ok()) {
    for (size_t pt = 0; pt < points; ++pt) {
      const auto [xi, yi] = space.CoordsOf(pt);
      point_cost[pt] = model.value().CellCost(xi, yi);
    }
  }
  double total_cost = 0;
  for (double c : point_cost) total_cost += c;
  total_cost *= static_cast<double>(plan_labels.size());
  // ~16 blocks per worker bounds both the claim rate and the tail: the last
  // block to finish holds at most 1/16th of one worker's fair share.
  const double per_block =
      total_cost / static_cast<double>(std::max<size_t>(
                       size_t{num_threads} * 16, 1));
  std::vector<size_t> block_begin;
  block_begin.push_back(0);
  double acc = 0;
  for (size_t cell = 0; cell < cells; ++cell) {
    acc += point_cost[cell % points];
    if (acc >= per_block && cell + 1 < cells) {
      block_begin.push_back(cell + 1);
      acc = 0;
    }
  }
  block_begin.push_back(cells);
  const size_t num_blocks = block_begin.size() - 1;

  if (opts.verbose) {
    std::fprintf(stderr,
                 "  sweep: %zu cells (%zu plans) in %zu cost-weighted "
                 "blocks on %u thread(s)\n",
                 cells, plan_labels.size(), num_blocks, num_threads);
  }

  // Blocks are claimed from a shared queue. On failure, workers skip cells
  // above the lowest failing cell seen so far; every cell below it is in
  // some block that runs to completion, so the error we return is exactly
  // the one a serial sweep would have hit first.
  std::atomic<size_t> next_block{0};
  std::atomic<size_t> first_failed_cell{cells};
  // The Status itself lives under a capability (atomics carry the cell
  // index; the Status payload cannot be atomic), so a worker publishing a
  // lower failing cell and a worker reading the final error are ordered.
  struct ErrorState {
    Mutex mu;
    Status first_error GUARDED_BY(mu) = Status::OK();
  } err;

  auto record_error = [&](size_t cell, const Status& s) {
    MutexLock lock(&err.mu);
    size_t prev = first_failed_cell.load(std::memory_order_relaxed);
    if (cell < prev) {
      first_failed_cell.store(cell, std::memory_order_relaxed);
      err.first_error = s;
    }
  };

  auto work = [&](unsigned worker_index) {
    TraceSpan worker_span("sweep.worker");
    const bool observing = Observing();
    std::unique_ptr<OwnedRunContext> machine = factory.Acquire();
    {
      // Closed before the machine is parked back in the arena: the
      // observer publishes from the machine's pool at scope exit.
      PoolViewObserver pool_view(machine->ctx()->pool, worker_index);
      for (;;) {
        const size_t block =
            next_block.fetch_add(1, std::memory_order_relaxed);
        if (block >= num_blocks) break;
        SweepTelemetry::Get().AddCounter("sweep.blocks_claimed", 1);
        for (size_t cell = block_begin[block]; cell < block_begin[block + 1];
             ++cell) {
          if (cell > first_failed_cell.load(std::memory_order_relaxed)) {
            continue;
          }
          const size_t plan = cell / points;
          const size_t point = cell % points;
          CellTimer timer(observing);
          auto m = runner(machine->ctx(), plan, point);
          if (!m.ok()) {
            record_error(cell, m.status());
            continue;
          }
          if (!std::exchange(tl_cell_from_cache, false)) {
            timer.Observe(m.value());
            if (observing) pool_view.CellDone();
          }
          map.Set(plan, point, std::move(m).value());
          tracker.CellDone(plan);
        }
      }
    }
    factory.Release(std::move(machine));
  };

  if (num_threads <= 1) {
    work(0);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(num_threads);
    for (unsigned t = 0; t < num_threads; ++t) {
      workers.emplace_back(work, t);
    }
    for (std::thread& t : workers) t.join();
  }

  if (first_failed_cell.load(std::memory_order_relaxed) < cells) {
    MutexLock lock(&err.mu);
    return err.first_error;
  }
  return map;
}

Result<SweepOutcome> SweepEngine::Run(RunContext* ctx,
                                      const Executor& executor,
                                      const SweepRequest& req) {
  if (req.progressive.enabled()) {
    return RunProgressive(ctx, executor, req);
  }
  if (req.backend == BackendKind::kShardedProcess) {
    return RunShardedStudy(ctx, executor, req);
  }
  SweepOptions opts = req.sweep;
  if (req.backend == BackendKind::kSerial) opts.num_threads = 1;
  SweepOutcome out;
  out.study = req.study;
  switch (req.study) {
    case StudyKind::kPlainMap: {
      auto map = StudySweep(ctx, executor, req.plans, req.space, opts,
                            StudyKindName(req.study), req.cell_cache);
      RM_RETURN_IF_ERROR(map.status());
      out.layers.push_back(std::move(map).value());
      return out;
    }
    case StudyKind::kWarmColdDelta: {
      auto layers = WarmColdLayers(ctx, executor, req.plans, req.space,
                                   req.warm_policy, opts, req.cell_cache);
      RM_RETURN_IF_ERROR(layers.status());
      out.layers = std::move(layers).value();
      return out;
    }
  }
  return Status::InvalidArgument("unknown study kind");
}

}  // namespace robustmap
