#include "core/sweep_engine.h"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include "common/mutex.h"
#include "common/trace.h"
#include "core/map_io.h"
#include "core/sharded_sweep.h"
#include "core/sweep_telemetry.h"
#include "engine/query.h"

namespace robustmap {

namespace {

/// Every sweep entry point rejects degenerate inputs up front: a sweep
/// over nothing is almost always a caller bug (an empty plan list, an axis
/// that lost its values), and the alternative — silently returning a
/// 0-cell map that every downstream analysis then has to defend against —
/// just moves the failure somewhere less diagnosable.
Status ValidateSweepInputs(const ParameterSpace& space,
                           const std::vector<std::string>& plan_labels) {
  if (plan_labels.empty()) {
    return Status::InvalidArgument("cannot sweep an empty plan list");
  }
  if (space.num_points() == 0) {
    return Status::InvalidArgument(
        "cannot sweep an empty grid (an axis has no values)");
  }
  return Status::OK();
}

/// True when any observability sink would accept data — the one check the
/// cell loops make before touching the wall clock, so an uninstrumented
/// sweep never reads it.
bool Observing() {
  return SweepTelemetry::Get().enabled() || Tracer::Get().enabled();
}

/// Sidecar-only per-cell accounting shared by every in-process cell loop:
/// the cell latency histogram plus the simulated-I/O counters of the
/// measurement. Reads the Measurement, never writes it — no map byte may
/// depend on anything recorded here.
void ObserveCell(const Measurement& m, double cell_seconds) {
  SweepTelemetry& t = SweepTelemetry::Get();
  if (!t.enabled()) return;
  t.RecordLatency("sweep.cell_seconds", cell_seconds);
  t.AddCounter("sweep.cells_measured", 1);
  t.AddCounter("io.sequential_reads", m.io.sequential_reads);
  t.AddCounter("io.skip_reads", m.io.skip_reads);
  t.AddCounter("io.random_reads", m.io.random_reads);
  t.AddCounter("io.writes", m.io.writes);
  t.AddCounter("io.buffer_hits", m.io.buffer_hits);
  t.AddCounter("io.bytes_read", m.io.bytes_read);
  t.AddCounter("io.bytes_written", m.io.bytes_written);
}

/// Per-view buffer-pool tallies for one sweep worker. `ColdStart` zeroes
/// the pool statistics before each measurement, so reading them right
/// after a cell yields that cell's counts; the worker accumulates across
/// its cells and publishes once at exit under its view's name.
class PoolViewObserver {
 public:
  PoolViewObserver(const BufferPool* pool, unsigned view_index)
      : pool_(pool), view_index_(view_index) {}

  ~PoolViewObserver() {
    SweepTelemetry& t = SweepTelemetry::Get();
    if (!t.enabled() || pool_ == nullptr) return;
    char view[32];
    std::snprintf(view, sizeof(view), "pool.view_%03u", view_index_);
    t.AddCounter(std::string(view) + ".hits", hits_);
    t.AddCounter(std::string(view) + ".misses", misses_);
  }

  void CellDone() {
    if (pool_ == nullptr) return;
    hits_ += pool_->hits();
    misses_ += pool_->misses();
  }

 private:
  const BufferPool* pool_;
  const unsigned view_index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

/// The verbose-mode progress printer: one stderr line per completed plan
/// and per 10% step — readable for both quick smokes and hour-long studies.
SweepProgressFn MakeDefaultPrinter() {
  auto last_decile = std::make_shared<int>(-1);
  auto last_plans = std::make_shared<size_t>(0);
  return [last_decile, last_plans](const SweepProgress& p) {
    const int decile = static_cast<int>(p.percent() / 10.0);
    const bool plan_step = p.plans_done != *last_plans;
    if (decile == *last_decile && !plan_step && p.cells_done != p.cells_total) {
      return;
    }
    *last_decile = decile;
    *last_plans = p.plans_done;
    std::fprintf(stderr, "  sweep: %5.1f%% (%zu/%zu cells, %zu/%zu plans)\n",
                 p.percent(), p.cells_done, p.cells_total, p.plans_done,
                 p.num_plans);
  };
}

/// Serializes progress callbacks and maintains the cumulative counts for
/// both the serial and the parallel cell loop. All updates happen under one
/// mutex, so the callback observes cells_done = 1, 2, ..., total in order.
class ProgressTracker {
 public:
  ProgressTracker(const SweepOptions& opts, size_t num_plans, size_t points)
      : points_(points), per_plan_done_(num_plans, 0) {
    progress_.num_plans = num_plans;
    progress_.cells_total = num_plans * points;
    if (opts.progress) {
      fn_ = opts.progress;
    } else if (opts.verbose) {
      fn_ = MakeDefaultPrinter();
    }
  }

  void CellDone(size_t plan) {
    if (!fn_) return;
    MutexLock lock(&mu_);
    ++progress_.cells_done;
    if (++per_plan_done_[plan] == points_) ++progress_.plans_done;
    fn_(progress_);
  }

 private:
  // points_ and fn_ are immutable after construction, so workers may read
  // them without the capability; the cumulative counts are the shared
  // mutable state and live under mu_.
  const size_t points_;
  SweepProgressFn fn_;
  Mutex mu_;
  SweepProgress progress_ GUARDED_BY(mu_);
  std::vector<size_t> per_plan_done_ GUARDED_BY(mu_);
};

/// The paper's standard study sweep under one in-process backend choice:
/// axes are predicate selectivities, plans are `PlanKind`s executed under
/// `ctx`'s warmup policy. The serial path measures on `ctx` itself; a
/// shared pool needs the factory to attach worker views, and the
/// round-robin schedule reorders cells, so both always take the parallel
/// path (which degrades to in-caller-thread execution at one worker).
Result<RobustnessMap> StudySweep(RunContext* ctx, const Executor& executor,
                                 const std::vector<PlanKind>& plans,
                                 const ParameterSpace& space,
                                 const SweepOptions& opts) {
  std::vector<std::string> labels;
  labels.reserve(plans.size());
  for (PlanKind k : plans) labels.push_back(PlanKindLabel(k));
  int64_t domain = executor.db().domain;
  if (ResolveParallelism(opts.num_threads) <= 1 &&
      opts.shared_pool == nullptr && !opts.deterministic_shared_schedule) {
    PoolViewObserver pool_view(ctx->pool, 0);
    return SweepEngine::RunCells(
        space, labels,
        [&](size_t plan, double sx, double sy) -> Result<Measurement> {
          QuerySpec q = MakeStudyQuery(sx, sy, domain);
          auto m = executor.Run(ctx, plans[plan], q);
          if (m.ok()) pool_view.CellDone();
          return m;
        },
        opts);
  }
  RunContextFactory factory(*ctx);
  if (opts.shared_pool != nullptr) factory.ShareBufferPool(opts.shared_pool);
  return SweepEngine::RunCellsParallel(
      space, labels, factory,
      [&](RunContext* worker_ctx, size_t plan, double sx,
          double sy) -> Result<Measurement> {
        QuerySpec q = MakeStudyQuery(sx, sy, domain);
        return executor.Run(worker_ctx, plans[plan], q);
      },
      opts);
}

/// The warm-cold study: the same plans measured twice — once cold, once
/// under `warm_policy` — plus their per-cell delta. The cold sweep always
/// uses private per-worker pools (cold cells must be independent); the
/// warm sweep honors `opts.shared_pool`. The warm half is forced serial
/// when cache state is execution-order-dependent — a `kPriorRun` policy,
/// or any policy over a shared pool (each cell's ColdStart mutates the one
/// shared cache) — so the warm map is reproducible run-to-run for every
/// policy. `ctx->warmup` is restored on return.
Result<std::vector<RobustnessMap>> WarmColdLayers(
    RunContext* ctx, const Executor& executor,
    const std::vector<PlanKind>& plans, const ParameterSpace& space,
    const WarmupPolicy& warm_policy, const SweepOptions& opts) {
  const WarmupPolicy saved = ctx->warmup;

  // Cold half: warmup off, private per-worker pools — the classic map,
  // bit-identical at any thread count.
  ctx->warmup = WarmupPolicy::Cold();
  SweepOptions cold_opts = opts;
  cold_opts.shared_pool = nullptr;
  auto cold = StudySweep(ctx, executor, plans, space, cold_opts);
  if (!cold.ok()) {
    ctx->warmup = saved;
    return cold.status();
  }

  // Warm half under the requested policy. Two situations make warmth a
  // product of execution order, and both run serially so that order — and
  // with it the warm map — is the same on every invocation: prior-run
  // cells inherit their predecessor's cache, and a shared pool is mutated
  // by every cell's ColdStart (parallel workers would clear and re-warm
  // the one cache out from under each other's in-flight measurements).
  // Page-set policies on private per-worker pools are order-independent
  // and stay parallel.
  ctx->warmup = warm_policy;
  SweepOptions warm_opts = opts;
  if (warm_policy.is_order_dependent() || warm_opts.shared_pool != nullptr) {
    warm_opts.num_threads = 1;
  }
  if (warm_policy.is_order_dependent()) {
    // Prior-run cells inherit pool state, so pin the sweep's starting
    // state: the first cell runs cold, every later cell inherits from its
    // predecessor — the same history on every invocation.
    ctx->pool->Clear();
    if (warm_opts.shared_pool != nullptr) warm_opts.shared_pool->Clear();
  }
  auto warm = StudySweep(ctx, executor, plans, space, warm_opts);
  ctx->warmup = saved;
  if (!warm.ok()) return warm.status();

  auto delta = DiffMaps(warm.value(), cold.value());
  RM_RETURN_IF_ERROR(delta.status());
  std::vector<RobustnessMap> layers;
  layers.reserve(3);
  layers.push_back(std::move(cold).value());
  layers.push_back(std::move(warm).value());
  layers.push_back(std::move(delta).value());
  return layers;
}

Result<std::string> ReadErrFile(const std::string& tile_path) {
  std::ifstream f(TileErrFileName(tile_path));
  if (!f.is_open()) return Status::NotFound("no error file");
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

/// A checkpoint is reusable only if it parses, its checksum holds, and it
/// describes exactly the tile the current plan expects — same rectangle,
/// same parent grid, same plans, same study layers. Anything else (a tile
/// from an older configuration, a plain tile in a warm-cold directory, a
/// damaged file) must be recomputed. A tile the measured cost-model scan
/// already read and validated is taken from `preloaded` instead of reading
/// (and checksumming) the file a second time.
Result<MapTile> LoadValidTile(std::map<std::string, MapTile>* preloaded,
                              const std::string& path,
                              const TileSpec& expected,
                              const ParameterSpace& space,
                              const std::vector<std::string>& labels,
                              StudyKind study) {
  auto tile = [&]() -> Result<MapTile> {
    if (auto it = preloaded->find(path); it != preloaded->end()) {
      Result<MapTile> found(std::move(it->second));
      preloaded->erase(it);
      return found;
    }
    return ReadMapTileFile(path);
  }();
  RM_RETURN_IF_ERROR(tile.status());
  const MapTile& t = tile.value();
  if (!(t.spec == expected) || !(t.parent_space == space) ||
      t.map.plan_labels() != labels) {
    return Status::InvalidArgument(
        path + " describes a different tile, grid, or plan set");
  }
  if (t.num_layers() != StudyLayerCount(study) ||
      t.layer_names != StudyLayerNames(study)) {
    return Status::InvalidArgument(
        path + " carries a different study's layers");
  }
  return tile;
}

/// The sharded-process backend: partitions the grid with `ShardPlanner`
/// under the request's cost model, skips tiles already valid on disk
/// (unless resume is off), computes the rest through a pull-based work
/// queue — up to num_workers subprocesses in flight, each freed worker
/// slot immediately pulling the heaviest pending tile — and merges the
/// tile files layer by layer into maps bit-identical to an in-process
/// sweep of the same study (every cell is an order-independent
/// measurement, so its value cannot depend on which process ran it).
Result<SweepOutcome> RunShardedStudy(RunContext* ctx,
                                     const Executor& executor,
                                     const SweepRequest& req) {
  const ShardedSweepOptions& opts = req.sharded;
  const ParameterSpace& space = req.space;
  if (opts.tile_dir.empty()) {
    return Status::InvalidArgument("sharded sweep needs a tile_dir");
  }
  if (ctx->warmup.is_order_dependent() ||
      (req.study == StudyKind::kWarmColdDelta &&
       req.warm_policy.is_order_dependent())) {
    return Status::InvalidArgument(
        "sharded sweeps require an order-independent warmup policy; "
        "kPriorRun cells inherit cache state across the tile boundaries "
        "sharding erases");
  }
  if (req.sweep.shared_pool != nullptr ||
      req.sweep.deterministic_shared_schedule) {
    return Status::InvalidArgument(
        "sharded sweeps cannot share one buffer pool across processes; "
        "shared-pool (and deterministic-schedule) studies are in-process "
        "serial features");
  }
  const unsigned num_workers = ResolveParallelism(opts.num_workers);
  const size_t num_tiles =
      opts.num_tiles == 0 ? num_workers : opts.num_tiles;
  TraceSpan coordinator_span("shard.coordinator", "shard");
  std::unique_ptr<TraceSpan> phase_span =
      std::make_unique<TraceSpan>("shard.plan", "shard");
  // The scheduling model. Measured mode scans the checkpoint directory
  // *before* anything is recomputed, so the partition reflects what the
  // previous run's tiles actually cost; with no usable timings it degrades
  // to the analytic prior, never to an error.
  std::vector<std::pair<std::string, MapTile>> prescanned;
  auto model = [&]() -> Result<CellCostModel> {
    switch (opts.cost_model) {
      case CostModelKind::kUniform:
        return CellCostModel::Uniform(space);
      case CostModelKind::kAnalytic:
        return CellCostModel::Analytic(space);
      case CostModelKind::kMeasured:
        // When resuming, keep what the scan read: the checkpoint pass
        // below can then validate those tiles from memory instead of
        // reading and checksumming every file twice.
        return MeasuredCostModelFromDir(opts.tile_dir, space,
                                        opts.resume ? &prescanned : nullptr);
    }
    return Status::InvalidArgument("unknown cost model kind");
  }();
  RM_RETURN_IF_ERROR(model.status());
  std::map<std::string, MapTile> preloaded;
  for (auto& [path, tile] : prescanned) {
    preloaded.emplace(path, std::move(tile));
  }
  prescanned.clear();
  auto tiles = opts.cost_model == CostModelKind::kUniform
                   ? ShardPlanner::Partition(space, num_tiles)
                   : ShardPlanner::PartitionWeighted(space, num_tiles,
                                                     model.value());
  RM_RETURN_IF_ERROR(tiles.status());
  RM_RETURN_IF_ERROR(EnsureDirectory(opts.tile_dir));

  std::vector<std::string> labels;
  labels.reserve(req.plans.size());
  for (PlanKind k : req.plans) labels.push_back(PlanKindLabel(k));

  // Scan the checkpoint directory: valid tiles are carried over in memory,
  // the rest queue for workers.
  phase_span = std::make_unique<TraceSpan>("shard.scan", "shard");
  std::vector<MapTile> loaded;
  std::vector<TileSpec> todo;
  for (const TileSpec& t : tiles.value()) {
    const std::string path = opts.tile_dir + "/" + TileFileName(t.shard_id);
    auto tile = opts.resume
                    ? LoadValidTile(&preloaded, path, t, space, labels,
                                    req.study)
                    : Result<MapTile>(Status::NotFound("resume disabled"));
    if (tile.ok()) {
      loaded.push_back(std::move(tile).value());
      SweepTelemetry::Get().AddCounter("shard.tiles_resumed", 1);
      if (opts.verbose) {
        std::fprintf(stderr, "  shard: tile %zu valid on disk, reused\n",
                     t.shard_id);
      }
    } else {
      std::remove(TileErrFileName(path).c_str());
      todo.push_back(t);
    }
  }
  SweepTelemetry::Get().AddCounter("shard.tiles_queued", todo.size());

  // Pull-based dispatch: the pending queue is ordered heaviest-first under
  // the cost model (LPT — the classic makespan heuristic), and every time
  // a worker slot frees up it pulls the head of the queue. The expensive
  // corner tiles start immediately; the cheap tail fills in around them
  // instead of everyone waiting on a monster tile scheduled last.
  SortTilesHeaviestFirst(&todo, model.value());

  ShardedSweepStats local;
  local.tiles_total = tiles.value().size();
  local.tiles_reused = loaded.size();
  local.tiles_computed = todo.size();
  local.workers_spawned =
      static_cast<unsigned>(std::min<size_t>(num_workers, todo.size()));

  if (opts.verbose && !todo.empty()) {
    std::fprintf(stderr,
                 "  shard: %s cost model, %s study, %zu pending tiles "
                 "(heaviest %.3g, lightest %.3g relative cost)\n",
                 CostModelKindName(opts.cost_model),
                 StudyKindName(req.study), todo.size(),
                 model.value().TileCost(todo.front()),
                 model.value().TileCost(todo.back()));
  }

  // The policy an exec-mode worker must reconstruct: the warm layer's for
  // a warm-cold study, the context's own for a plain study measured warm.
  const WarmupPolicy& flag_policy = req.study == StudyKind::kWarmColdDelta
                                        ? req.warm_policy
                                        : ctx->warmup;

  // One subprocess per outstanding tile, at most num_workers in flight.
  // stdio is flushed first so forked children do not replay the parent's
  // buffered output. Each in-flight tile occupies a worker *slot*; per-slot
  // busy time is what the balance metrics report.
  phase_span = std::make_unique<TraceSpan>("shard.dispatch", "shard");
  std::fflush(stdout);
  std::fflush(stderr);
  // Workers report their observability through per-tile sidecar files next
  // to the tile itself; the coordinator folds each one in at reap time.
  const auto trace_sidecar = [](const std::string& tile_path) {
    return tile_path + ".trace.json";
  };
  const auto telemetry_sidecar = [](const std::string& tile_path) {
    return tile_path + ".telemetry.json";
  };
  struct InFlight {
    size_t todo_index;
    size_t slot;
    int64_t started_ns;
  };
  std::map<pid_t, InFlight> running;
  std::set<size_t> free_slots;
  std::vector<size_t> failed;
  size_t next = 0;
  size_t computed_done = 0;
  SweepOptions worker_opts;
  worker_opts.num_threads = std::max(1u, opts.threads_per_worker);
  while (next < todo.size() || !running.empty()) {
    while (next < todo.size() && running.size() < num_workers) {
      const TileSpec& t = todo[next];
      const std::string path =
          opts.tile_dir + "/" + TileFileName(t.shard_id);
      // A stale sidecar from an aborted run must never merge as if this
      // dispatch produced it.
      std::remove(trace_sidecar(path).c_str());
      std::remove(telemetry_sidecar(path).c_str());
      pid_t pid = ::fork();
      if (pid < 0) {
        return Status::Internal("fork failed: " + ErrnoString(errno));
      }
      if (pid == 0) {
        // Worker. Either exec the external worker binary, or compute the
        // tile right here on the forked copy of the parent's environment.
        if (!opts.worker_command.empty()) {
          std::vector<std::string> args = opts.worker_command;
          // The tile count is part of a tile id's meaning, and only this
          // side knows the resolved value — the worker must never re-derive
          // it from a default that could drift. The rectangle itself rides
          // along too: with cost-weighted partitioning the boundaries
          // depend on the model, so the coordinator's exact cuts are the
          // contract, not something a worker recomputes. The study (and
          // its warmup policy, when not cold) completes the contract: a
          // worker computing a different study under the right tile name
          // would poison the merge.
          args.push_back("--tiles=" + std::to_string(num_tiles));
          args.push_back("--tile=" + std::to_string(t.shard_id));
          args.push_back("--rect=" + RectSpecString(t));
          args.push_back("--study=" + std::string(StudyKindName(req.study)));
          if (!flag_policy.is_cold()) {
            args.push_back("--warmup=" + flag_policy.ToSpec());
          }
          args.push_back("--out=" + path);
          // Observability rides along only when the coordinator itself is
          // collecting: the worker traces against the coordinator's epoch
          // into per-tile sidecars merged at reap time.
          if (Tracer::Get().enabled()) {
            args.push_back("--trace=" + trace_sidecar(path));
            args.push_back("--trace-epoch=" +
                           std::to_string(Tracer::Get().epoch_ns()));
          }
          if (SweepTelemetry::Get().enabled()) {
            args.push_back("--telemetry=" + telemetry_sidecar(path));
          }
          std::vector<char*> argv;
          argv.reserve(args.size() + 1);
          for (std::string& a : args) argv.push_back(a.data());
          argv.push_back(nullptr);
          ::execvp(argv[0], argv.data());
          WriteTileErrFile(path, Status::Internal("cannot exec " + args[0] +
                                                  ": " + ErrnoString(errno)));
          ::_exit(127);
        }
        // Forked children inherit the parent's buffered events; drop them
        // (keeping the shared epoch) so the sidecars report only this
        // tile's work.
        if (Tracer::Get().enabled()) {
          const int64_t epoch = Tracer::Get().epoch_ns();
          Tracer::Get().Reset();
          Tracer::Get().SetEpochNs(epoch);
        }
        if (SweepTelemetry::Get().enabled()) SweepTelemetry::Get().Reset();
        Status s = ComputeAndWriteTile(ctx, executor, req.plans, space, t,
                                       path, worker_opts, req.study,
                                       req.warm_policy);
        if (!s.ok()) {
          WriteTileErrFile(path, s);
          ::_exit(1);
        }
        if (Tracer::Get().enabled()) {
          Status ts = Tracer::Get().WriteFile(trace_sidecar(path));
          if (!ts.ok()) {
            std::fprintf(stderr, "  shard: tile %zu trace sidecar: %s\n",
                         t.shard_id, ts.ToString().c_str());
          }
        }
        if (SweepTelemetry::Get().enabled()) {
          Status ms =
              SweepTelemetry::Get().WriteFile(telemetry_sidecar(path));
          if (!ms.ok()) {
            std::fprintf(stderr,
                         "  shard: tile %zu telemetry sidecar: %s\n",
                         t.shard_id, ms.ToString().c_str());
          }
        }
        ::_exit(0);
      }
      size_t slot;
      if (!free_slots.empty()) {
        slot = *free_slots.begin();
        free_slots.erase(free_slots.begin());
      } else {
        slot = local.worker_busy_seconds.size();
        local.worker_busy_seconds.push_back(0);
      }
      running.emplace(pid, InFlight{next, slot, MonotonicNowNs()});
      SweepTelemetry::Get().AddCounter("shard.tiles_dispatched", 1);
      ++next;
    }
    // Reap exactly one of *our* workers. waitpid(-1) would also consume
    // the exit status of any unrelated child an embedding application has
    // in flight, so poll the known pids instead; tiles take seconds, the
    // 10 ms poll interval is noise.
    bool reaped = false;
    while (!reaped) {
      for (auto it = running.begin(); it != running.end();) {
        int wstatus = 0;
        pid_t r = ::waitpid(it->first, &wstatus, WNOHANG);
        if (r == 0 || (r < 0 && errno == EINTR)) {
          ++it;
          continue;
        }
        if (r < 0) {
          return Status::Internal("waitpid failed: " + ErrnoString(errno));
        }
        const size_t idx = it->second.todo_index;
        const int64_t started_ns = it->second.started_ns;
        const double tile_wall_seconds =
            static_cast<double>(MonotonicNowNs() - started_ns) * 1e-9;
        local.worker_busy_seconds[it->second.slot] += tile_wall_seconds;
        free_slots.insert(it->second.slot);
        it = running.erase(it);
        reaped = true;
        const std::string tile_path =
            opts.tile_dir + "/" + TileFileName(todo[idx].shard_id);
        if (Tracer::Get().enabled()) {
          // The dispatch-to-reap span for this tile, on the coordinator's
          // timeline; the worker's own spans sit inside it once the
          // sidecar merges.
          Tracer::Get().AddComplete(
              "shard.tile " + std::to_string(todo[idx].shard_id), "shard",
              started_ns, MonotonicNowNs() - started_ns);
        }
        SweepTelemetry::Get().RecordLatency("shard.tile_wall_seconds",
                                            tile_wall_seconds);
        if (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0) {
          ++computed_done;
          SweepTelemetry::Get().AddCounter("shard.tiles_computed", 1);
          // Fold the worker's sidecars in and drop them; a missing or
          // unreadable sidecar degrades the trace, never the sweep.
          if (Tracer::Get().enabled()) {
            Status ms = Tracer::Get().MergeFromFile(trace_sidecar(tile_path));
            if (ms.ok()) {
              std::remove(trace_sidecar(tile_path).c_str());
            } else {
              std::fprintf(stderr, "  shard: tile %zu trace sidecar: %s\n",
                           todo[idx].shard_id, ms.ToString().c_str());
            }
          }
          if (SweepTelemetry::Get().enabled()) {
            Status ms = SweepTelemetry::Get().MergeFromFile(
                telemetry_sidecar(tile_path));
            if (ms.ok()) {
              std::remove(telemetry_sidecar(tile_path).c_str());
            } else {
              std::fprintf(stderr,
                           "  shard: tile %zu telemetry sidecar: %s\n",
                           todo[idx].shard_id, ms.ToString().c_str());
            }
          }
          if (opts.verbose) {
            std::fprintf(stderr,
                         "  shard: tile %zu computed (%zu/%zu done)\n",
                         todo[idx].shard_id,
                         local.tiles_reused + computed_done,
                         local.tiles_total);
          }
        } else {
          SweepTelemetry::Get().AddCounter("shard.tiles_failed", 1);
          failed.push_back(idx);
        }
      }
      if (!reaped) ::usleep(10000);
    }
  }

  if (!failed.empty()) {
    // Report the failure of the lowest shard id — stable whatever dispatch
    // order the cost model produced — with the worker's own Status when it
    // managed to leave one. Completed tiles stay on disk, so the rerun
    // that follows a fix resumes instead of restarting.
    size_t worst = failed.front();
    for (size_t idx : failed) {
      if (todo[idx].shard_id < todo[worst].shard_id) worst = idx;
    }
    const TileSpec& t = todo[worst];
    const std::string path = opts.tile_dir + "/" + TileFileName(t.shard_id);
    auto msg = ReadErrFile(path);
    return Status::Internal(
        "sweep worker for tile " + std::to_string(t.shard_id) + " failed" +
        (msg.ok() ? ": " + msg.value()
                  : " without leaving an error file (killed?)"));
  }

  // Merge: freshly computed tiles are read back from disk — the same
  // validated path a resumed coordinator takes — then stitched with the
  // reused ones, layer by layer.
  phase_span = std::make_unique<TraceSpan>("shard.merge", "shard");
  for (const TileSpec& t : todo) {
    const std::string path = opts.tile_dir + "/" + TileFileName(t.shard_id);
    auto tile = ReadMapTileFile(path);
    RM_RETURN_IF_ERROR(tile.status());
    loaded.push_back(std::move(tile).value());
  }
  SweepTelemetry::Get().AddCounter("shard.tiles_merged", loaded.size());
  auto merged = MergeTileLayers(space, labels, loaded);
  RM_RETURN_IF_ERROR(merged.status());
  phase_span.reset();
  if (merged.value().size() != StudyLayerCount(req.study)) {
    return Status::Internal("merged " + std::to_string(merged.value().size()) +
                            " layers for a " +
                            std::to_string(StudyLayerCount(req.study)) +
                            "-layer study");
  }
  SweepOutcome out;
  out.study = req.study;
  out.layers = std::move(merged).value();
  out.sharded_stats = std::move(local);
  return out;
}

}  // namespace

Result<StudyKind> StudyKindFromString(const std::string& name) {
  if (name == "plain") return StudyKind::kPlainMap;
  if (name == "warmcold") return StudyKind::kWarmColdDelta;
  return Status::InvalidArgument("unknown study '" + name +
                                 "' (want plain or warmcold)");
}

const char* StudyKindName(StudyKind kind) {
  switch (kind) {
    case StudyKind::kPlainMap:
      return "plain";
    case StudyKind::kWarmColdDelta:
      return "warmcold";
  }
  return "?";
}

size_t StudyLayerCount(StudyKind kind) {
  return kind == StudyKind::kWarmColdDelta ? 3 : 1;
}

std::vector<std::string> StudyLayerNames(StudyKind kind) {
  switch (kind) {
    case StudyKind::kPlainMap:
      return {};  // unnamed single layer: plain tiles stay on v2 bytes
    case StudyKind::kWarmColdDelta:
      return {"cold", "warm", "delta"};
  }
  return {};
}

Result<BackendKind> BackendKindFromString(const std::string& name) {
  if (name == "serial") return BackendKind::kSerial;
  if (name == "threaded") return BackendKind::kThreaded;
  if (name == "sharded") return BackendKind::kShardedProcess;
  return Status::InvalidArgument("unknown backend '" + name +
                                 "' (want serial, threaded, or sharded)");
}

const char* BackendKindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kSerial:
      return "serial";
    case BackendKind::kThreaded:
      return "threaded";
    case BackendKind::kShardedProcess:
      return "sharded";
  }
  return "?";
}

Result<RobustnessMap> SweepEngine::RunCells(
    const ParameterSpace& space, const std::vector<std::string>& plan_labels,
    const PointRunner& runner, const SweepOptions& opts) {
  RM_RETURN_IF_ERROR(ValidateSweepInputs(space, plan_labels));
  TraceSpan sweep_span("sweep.run_cells");
  const bool observing = Observing();
  RobustnessMap map(space, plan_labels);
  ProgressTracker tracker(opts, plan_labels.size(), space.num_points());
  for (size_t plan = 0; plan < plan_labels.size(); ++plan) {
    for (size_t point = 0; point < space.num_points(); ++point) {
      const int64_t cell_start_ns = observing ? MonotonicNowNs() : 0;
      auto m = runner(plan, space.x_value(point), space.y_value(point));
      RM_RETURN_IF_ERROR(m.status());
      if (observing) {
        ObserveCell(m.value(), static_cast<double>(MonotonicNowNs() -
                                                   cell_start_ns) *
                                   1e-9);
      }
      map.Set(plan, point, std::move(m).value());
      tracker.CellDone(plan);
    }
  }
  return map;
}

Result<RobustnessMap> SweepEngine::RunCellsParallel(
    const ParameterSpace& space, const std::vector<std::string>& plan_labels,
    const RunContextFactory& factory, const ContextPointRunner& runner,
    const SweepOptions& opts) {
  RM_RETURN_IF_ERROR(ValidateSweepInputs(space, plan_labels));
  const unsigned num_threads = ResolveParallelism(opts.num_threads);
  const size_t points = space.num_points();
  const size_t cells = plan_labels.size() * points;
  RobustnessMap map(space, plan_labels);
  ProgressTracker tracker(opts, plan_labels.size(), points);

  // The deterministic concurrent-contention schedule: serial execution in
  // point-major round-robin across plans, as if one query stream per plan
  // took turns on the machine. Shared-pool residency then evolves the same
  // way on every run — unlike the true-parallel schedule below, whose
  // interleaving (intentionally) depends on thread timing.
  if (opts.deterministic_shared_schedule) {
    if (opts.verbose) {
      std::fprintf(stderr,
                   "  sweep: %zu cells (%zu plans), fixed round-robin "
                   "schedule\n",
                   cells, plan_labels.size());
    }
    TraceSpan schedule_span("sweep.round_robin");
    const bool observing = Observing();
    std::unique_ptr<OwnedRunContext> machine = factory.Create();
    PoolViewObserver pool_view(machine->ctx()->pool, 0);
    for (size_t point = 0; point < points; ++point) {
      for (size_t plan = 0; plan < plan_labels.size(); ++plan) {
        const int64_t cell_start_ns = observing ? MonotonicNowNs() : 0;
        auto m = runner(machine->ctx(), plan, space.x_value(point),
                        space.y_value(point));
        RM_RETURN_IF_ERROR(m.status());
        if (observing) {
          ObserveCell(m.value(), static_cast<double>(MonotonicNowNs() -
                                                     cell_start_ns) *
                                     1e-9);
          pool_view.CellDone();
        }
        map.Set(plan, point, std::move(m).value());
        tracker.CellDone(plan);
      }
    }
    return map;
  }

  // Work units are *cost-weighted cell blocks*: contiguous runs of the
  // serial (plan-major) cell order, cut so each block carries roughly equal
  // analytic cost. Cheap low-selectivity cells batch by the dozen (fewer
  // atomic claims), while the expensive corner degrades to single-cell
  // blocks (no worker is ever stuck behind a mega-block at the tail).
  // Map writes stay keyed by (plan, point), so the result is bit-identical
  // to a serial sweep whatever the block shapes.
  std::vector<double> point_cost(points, 1.0);
  if (auto model = CellCostModel::Analytic(space); model.ok()) {
    for (size_t pt = 0; pt < points; ++pt) {
      const auto [xi, yi] = space.CoordsOf(pt);
      point_cost[pt] = model.value().CellCost(xi, yi);
    }
  }
  double total_cost = 0;
  for (double c : point_cost) total_cost += c;
  total_cost *= static_cast<double>(plan_labels.size());
  // ~16 blocks per worker bounds both the claim rate and the tail: the last
  // block to finish holds at most 1/16th of one worker's fair share.
  const double per_block =
      total_cost / static_cast<double>(std::max<size_t>(
                       size_t{num_threads} * 16, 1));
  std::vector<size_t> block_begin;
  block_begin.push_back(0);
  double acc = 0;
  for (size_t cell = 0; cell < cells; ++cell) {
    acc += point_cost[cell % points];
    if (acc >= per_block && cell + 1 < cells) {
      block_begin.push_back(cell + 1);
      acc = 0;
    }
  }
  block_begin.push_back(cells);
  const size_t num_blocks = block_begin.size() - 1;

  if (opts.verbose) {
    std::fprintf(stderr,
                 "  sweep: %zu cells (%zu plans) in %zu cost-weighted "
                 "blocks on %u thread(s)\n",
                 cells, plan_labels.size(), num_blocks, num_threads);
  }

  // Blocks are claimed from a shared queue. On failure, workers skip cells
  // above the lowest failing cell seen so far; every cell below it is in
  // some block that runs to completion, so the error we return is exactly
  // the one a serial sweep would have hit first.
  std::atomic<size_t> next_block{0};
  std::atomic<size_t> first_failed_cell{cells};
  // The Status itself lives under a capability (atomics carry the cell
  // index; the Status payload cannot be atomic), so a worker publishing a
  // lower failing cell and a worker reading the final error are ordered.
  struct ErrorState {
    Mutex mu;
    Status first_error GUARDED_BY(mu) = Status::OK();
  } err;

  auto record_error = [&](size_t cell, const Status& s) {
    MutexLock lock(&err.mu);
    size_t prev = first_failed_cell.load(std::memory_order_relaxed);
    if (cell < prev) {
      first_failed_cell.store(cell, std::memory_order_relaxed);
      err.first_error = s;
    }
  };

  auto work = [&](unsigned worker_index) {
    TraceSpan worker_span("sweep.worker");
    const bool observing = Observing();
    std::unique_ptr<OwnedRunContext> machine = factory.Create();
    PoolViewObserver pool_view(machine->ctx()->pool, worker_index);
    for (;;) {
      const size_t block = next_block.fetch_add(1, std::memory_order_relaxed);
      if (block >= num_blocks) break;
      SweepTelemetry::Get().AddCounter("sweep.blocks_claimed", 1);
      for (size_t cell = block_begin[block]; cell < block_begin[block + 1];
           ++cell) {
        if (cell > first_failed_cell.load(std::memory_order_relaxed)) {
          continue;
        }
        const size_t plan = cell / points;
        const size_t point = cell % points;
        const int64_t cell_start_ns = observing ? MonotonicNowNs() : 0;
        auto m = runner(machine->ctx(), plan, space.x_value(point),
                        space.y_value(point));
        if (!m.ok()) {
          record_error(cell, m.status());
          continue;
        }
        if (observing) {
          ObserveCell(m.value(), static_cast<double>(MonotonicNowNs() -
                                                     cell_start_ns) *
                                     1e-9);
          pool_view.CellDone();
        }
        map.Set(plan, point, std::move(m).value());
        tracker.CellDone(plan);
      }
    }
  };

  if (num_threads <= 1) {
    work(0);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(num_threads);
    for (unsigned t = 0; t < num_threads; ++t) {
      workers.emplace_back(work, t);
    }
    for (std::thread& t : workers) t.join();
  }

  if (first_failed_cell.load(std::memory_order_relaxed) < cells) {
    MutexLock lock(&err.mu);
    return err.first_error;
  }
  return map;
}

Result<SweepOutcome> SweepEngine::Run(RunContext* ctx,
                                      const Executor& executor,
                                      const SweepRequest& req) {
  if (req.backend == BackendKind::kShardedProcess) {
    return RunShardedStudy(ctx, executor, req);
  }
  SweepOptions opts = req.sweep;
  if (req.backend == BackendKind::kSerial) opts.num_threads = 1;
  SweepOutcome out;
  out.study = req.study;
  switch (req.study) {
    case StudyKind::kPlainMap: {
      auto map = StudySweep(ctx, executor, req.plans, req.space, opts);
      RM_RETURN_IF_ERROR(map.status());
      out.layers.push_back(std::move(map).value());
      return out;
    }
    case StudyKind::kWarmColdDelta: {
      auto layers = WarmColdLayers(ctx, executor, req.plans, req.space,
                                   req.warm_policy, opts);
      RM_RETURN_IF_ERROR(layers.status());
      out.layers = std::move(layers).value();
      return out;
    }
  }
  return Status::InvalidArgument("unknown study kind");
}

}  // namespace robustmap
