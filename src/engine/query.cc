#include "engine/query.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace robustmap {

PredicateSpec MakePredicate(double selectivity, int64_t domain) {
  PredicateSpec p;
  if (selectivity < 0) return p;
  int64_t k = static_cast<int64_t>(
      std::llround(selectivity * static_cast<double>(domain)));
  k = std::clamp<int64_t>(k, 1, domain);
  p.active = true;
  p.lo = 0;
  p.hi = k - 1;
  p.selectivity = static_cast<double>(k) / static_cast<double>(domain);
  return p;
}

QuerySpec MakeStudyQuery(double sel_a, double sel_b, int64_t domain) {
  QuerySpec q;
  q.domain = domain;
  q.pred_a = MakePredicate(sel_a, domain);
  q.pred_b = MakePredicate(sel_b, domain);
  return q;
}

std::string QuerySpec::ToString() const {
  char buf[192];
  if (pred_a.active && pred_b.active) {
    std::snprintf(buf, sizeof(buf),
                  "SELECT a,b WHERE a in [%lld,%lld] (s=%.3g) AND b in "
                  "[%lld,%lld] (s=%.3g)",
                  static_cast<long long>(pred_a.lo),
                  static_cast<long long>(pred_a.hi), pred_a.selectivity,
                  static_cast<long long>(pred_b.lo),
                  static_cast<long long>(pred_b.hi), pred_b.selectivity);
  } else if (pred_a.active) {
    std::snprintf(buf, sizeof(buf),
                  "SELECT a,b WHERE a in [%lld,%lld] (s=%.3g)",
                  static_cast<long long>(pred_a.lo),
                  static_cast<long long>(pred_a.hi), pred_a.selectivity);
  } else if (pred_b.active) {
    std::snprintf(buf, sizeof(buf),
                  "SELECT a,b WHERE b in [%lld,%lld] (s=%.3g)",
                  static_cast<long long>(pred_b.lo),
                  static_cast<long long>(pred_b.hi), pred_b.selectivity);
  } else {
    std::snprintf(buf, sizeof(buf), "SELECT a,b (no predicates)");
  }
  return buf;
}

}  // namespace robustmap
