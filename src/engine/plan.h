#ifndef ROBUSTMAP_ENGINE_PLAN_H_
#define ROBUSTMAP_ENGINE_PLAN_H_

#include <string>
#include <vector>

namespace robustmap {

/// The fixed query execution plans under study — the 13 distinct plans of
/// the paper's §3.3 ("the first system had only 7 plans for this simple
/// two-predicate query; the other two systems had 4 additional plans each
/// for a total of 13 distinct plans") plus the two "traditional" index
/// scans that only Figure 1's single-predicate study uses.
enum class PlanKind {
  // ---- System A: 7 plans for the two-predicate query ----
  kTableScan,        ///< full scan, all predicates applied per row
  kIndexAImproved,   ///< idx(a) range scan, sorted fetch, residual on b
  kIndexBImproved,   ///< idx(b) range scan, sorted fetch, residual on a
  kMergeJoinAB,      ///< idx(a) ∩ idx(b) via merge join (covering)
  kMergeJoinBA,      ///< same, opposite join order
  kHashJoinAB,       ///< build idx(a), probe idx(b) (covering)
  kHashJoinBA,       ///< build idx(b), probe idx(a)

  // ---- System B: +3 (two-column indexes; MVCC forces row fetches,
  //      bitmap-sorted — Figure 8) ----
  kCoverABBitmapFetch,  ///< idx(a,b) scan w/ in-index b filter, bitmap fetch
  kCoverBABitmapFetch,  ///< idx(b,a) scan w/ in-index a filter, bitmap fetch
  kBitmapAndFetch,      ///< idx(a) ∩ idx(b) via bitmap AND, bitmap fetch

  // ---- System C: +3 (two-column indexes fully exploited; MDAM [LJBY95],
  //      no fetch — Figure 9) ----
  kMdamAB,       ///< MDAM over idx(a,b), covering
  kMdamBA,       ///< MDAM over idx(b,a), covering
  kCoverABScan,  ///< idx(a,b) plain scan w/ in-index b filter, covering

  // ---- Figure 1 extras (not part of the 13-plan study) ----
  kIndexANaive,  ///< traditional index scan: fetch per rid in key order
  kIndexBNaive,
};

/// Number of distinct plans in the two-predicate study.
inline constexpr int kNumStudyPlans = 13;

/// Stable short label, e.g. "A.idx_a.improved".
std::string PlanKindLabel(PlanKind kind);

/// One-line description for documentation output.
std::string PlanKindDescription(PlanKind kind);

/// Which system introduces the plan ('A', 'B' or 'C'; figure-1 extras
/// report 'A').
char PlanKindSystem(PlanKind kind);

/// A named plan choice (the unit robustness maps are drawn for).
struct PlanSpec {
  PlanKind kind;
  std::string label;
};

/// All 13 study plans in canonical order.
std::vector<PlanKind> AllStudyPlans();

}  // namespace robustmap

#endif  // ROBUSTMAP_ENGINE_PLAN_H_
