#ifndef ROBUSTMAP_ENGINE_PLAN_ENUMERATOR_H_
#define ROBUSTMAP_ENGINE_PLAN_ENUMERATOR_H_

#include <vector>

#include "engine/plan.h"
#include "engine/query.h"
#include "engine/system.h"

namespace robustmap {

/// Enumerates the plans a system offers for a query — the paper's "hints":
/// query optimization is bypassed and every listed plan is forced in turn
/// (§3: "we eliminate choices in query optimization using hints on index
/// usage, join order, join algorithm, and memory allocation").
///
/// Plans that reference a predicate the query does not have remain legal
/// (the missing predicate widens to the full domain); plans that require a
/// structure the system lacks are simply absent from its `SystemConfig`.
std::vector<PlanSpec> EnumeratePlans(const SystemConfig& system,
                                     const QuerySpec& query);

/// Union of all systems' plans for the query, deduplicated, canonical order.
std::vector<PlanSpec> EnumerateAllPlans(const QuerySpec& query);

}  // namespace robustmap

#endif  // ROBUSTMAP_ENGINE_PLAN_ENUMERATOR_H_
