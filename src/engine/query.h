#ifndef ROBUSTMAP_ENGINE_QUERY_H_
#define ROBUSTMAP_ENGINE_QUERY_H_

#include <cstdint>
#include <string>

namespace robustmap {

/// One optional range predicate of the benchmark query, with bookkeeping of
/// the selectivity it was calibrated for.
struct PredicateSpec {
  bool active = false;
  int64_t lo = 0;
  int64_t hi = 0;  ///< inclusive
  /// The exact fraction of rows the range selects (for reporting/axes).
  double selectivity = 1.0;
};

/// The paper's benchmark query family:
///
///   SELECT a, b FROM t WHERE a BETWEEN ?lo_a AND ?hi_a
///                       [AND b BETWEEN ?lo_b AND ?hi_b]
///
/// Figure 1/2 use only `pred_a`; Figures 4–10 use both. Columns a and b are
/// table columns 0 and 1.
struct QuerySpec {
  PredicateSpec pred_a;  ///< on column 0
  PredicateSpec pred_b;  ///< on column 1

  /// Value domain of both columns ([0, domain)); lets plans widen inactive
  /// predicates to the full range and informs MDAM's mode choice.
  int64_t domain = 0;

  std::string ToString() const;
};

/// Calibrates a range predicate [0, K-1] over [0, domain) selecting as close
/// to `selectivity` as the integer domain allows (K >= 1); records the exact
/// fraction. Negative selectivity returns an inactive predicate.
PredicateSpec MakePredicate(double selectivity, int64_t domain);

/// Benchmark query for target selectivities; pass a negative selectivity to
/// deactivate that predicate (Figure 1/2 use sel_b < 0).
QuerySpec MakeStudyQuery(double sel_a, double sel_b, int64_t domain);

}  // namespace robustmap

#endif  // ROBUSTMAP_ENGINE_QUERY_H_
