#include "engine/system.h"

namespace robustmap {

SystemConfig SystemConfig::SystemA() {
  return SystemConfig{
      "System A",
      {
          PlanKind::kTableScan,
          PlanKind::kIndexAImproved,
          PlanKind::kIndexBImproved,
          PlanKind::kMergeJoinAB,
          PlanKind::kMergeJoinBA,
          PlanKind::kHashJoinAB,
          PlanKind::kHashJoinBA,
      },
  };
}

SystemConfig SystemConfig::SystemB() {
  return SystemConfig{
      "System B",
      {
          PlanKind::kCoverABBitmapFetch,
          PlanKind::kCoverBABitmapFetch,
          PlanKind::kBitmapAndFetch,
      },
  };
}

SystemConfig SystemConfig::SystemC() {
  return SystemConfig{
      "System C",
      {
          PlanKind::kMdamAB,
          PlanKind::kMdamBA,
          PlanKind::kCoverABScan,
      },
  };
}

std::vector<SystemConfig> SystemConfig::AllSystems() {
  return {SystemA(), SystemB(), SystemC()};
}

}  // namespace robustmap
