#include "engine/plan_enumerator.h"

#include <unordered_set>

namespace robustmap {

std::vector<PlanSpec> EnumeratePlans(const SystemConfig& system,
                                     const QuerySpec& query) {
  (void)query;  // all plan kinds tolerate inactive predicates
  std::vector<PlanSpec> out;
  out.reserve(system.plans.size());
  for (PlanKind kind : system.plans) {
    out.push_back(PlanSpec{kind, PlanKindLabel(kind)});
  }
  return out;
}

std::vector<PlanSpec> EnumerateAllPlans(const QuerySpec& query) {
  std::vector<PlanSpec> out;
  std::unordered_set<int> seen;
  for (const SystemConfig& sys : SystemConfig::AllSystems()) {
    for (const PlanSpec& p : EnumeratePlans(sys, query)) {
      if (seen.insert(static_cast<int>(p.kind)).second) out.push_back(p);
    }
  }
  return out;
}

}  // namespace robustmap
