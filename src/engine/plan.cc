#include "engine/plan.h"

namespace robustmap {

std::string PlanKindLabel(PlanKind kind) {
  switch (kind) {
    case PlanKind::kTableScan:
      return "A.tablescan";
    case PlanKind::kIndexAImproved:
      return "A.idx_a.improved";
    case PlanKind::kIndexBImproved:
      return "A.idx_b.improved";
    case PlanKind::kMergeJoinAB:
      return "A.mj(a,b)";
    case PlanKind::kMergeJoinBA:
      return "A.mj(b,a)";
    case PlanKind::kHashJoinAB:
      return "A.hj(a,b)";
    case PlanKind::kHashJoinBA:
      return "A.hj(b,a)";
    case PlanKind::kCoverABBitmapFetch:
      return "B.cover(a,b).bitmap";
    case PlanKind::kCoverBABitmapFetch:
      return "B.cover(b,a).bitmap";
    case PlanKind::kBitmapAndFetch:
      return "B.bitmap_and";
    case PlanKind::kMdamAB:
      return "C.mdam(a,b)";
    case PlanKind::kMdamBA:
      return "C.mdam(b,a)";
    case PlanKind::kCoverABScan:
      return "C.cover(a,b).scan";
    case PlanKind::kIndexANaive:
      return "A.idx_a.traditional";
    case PlanKind::kIndexBNaive:
      return "A.idx_b.traditional";
  }
  return "unknown";
}

std::string PlanKindDescription(PlanKind kind) {
  switch (kind) {
    case PlanKind::kTableScan:
      return "full table scan, predicates evaluated per row";
    case PlanKind::kIndexAImproved:
      return "idx(a) range scan; rids sorted; skip-sequential fetch; "
             "residual predicate on b";
    case PlanKind::kIndexBImproved:
      return "idx(b) range scan; rids sorted; skip-sequential fetch; "
             "residual predicate on a";
    case PlanKind::kMergeJoinAB:
      return "covering rid intersection: idx(a) merge-join idx(b)";
    case PlanKind::kMergeJoinBA:
      return "covering rid intersection: idx(b) merge-join idx(a)";
    case PlanKind::kHashJoinAB:
      return "covering rid intersection: build hash on idx(a), probe idx(b)";
    case PlanKind::kHashJoinBA:
      return "covering rid intersection: build hash on idx(b), probe idx(a)";
    case PlanKind::kCoverABBitmapFetch:
      return "idx(a,b) scan with in-index b filter; MVCC forces row fetch, "
             "bitmap-sorted";
    case PlanKind::kCoverBABitmapFetch:
      return "idx(b,a) scan with in-index a filter; MVCC forces row fetch, "
             "bitmap-sorted";
    case PlanKind::kBitmapAndFetch:
      return "idx(a) AND idx(b) via bitmaps; bitmap-sorted row fetch";
    case PlanKind::kMdamAB:
      return "MDAM skip-scan over idx(a,b); covering, no fetch";
    case PlanKind::kMdamBA:
      return "MDAM skip-scan over idx(b,a); covering, no fetch";
    case PlanKind::kCoverABScan:
      return "idx(a,b) plain range scan with in-index b filter; covering";
    case PlanKind::kIndexANaive:
      return "traditional index scan on idx(a): fetch each rid in key order";
    case PlanKind::kIndexBNaive:
      return "traditional index scan on idx(b): fetch each rid in key order";
  }
  return "unknown";
}

char PlanKindSystem(PlanKind kind) {
  switch (kind) {
    case PlanKind::kCoverABBitmapFetch:
    case PlanKind::kCoverBABitmapFetch:
    case PlanKind::kBitmapAndFetch:
      return 'B';
    case PlanKind::kMdamAB:
    case PlanKind::kMdamBA:
    case PlanKind::kCoverABScan:
      return 'C';
    default:
      return 'A';
  }
}

std::vector<PlanKind> AllStudyPlans() {
  return {
      PlanKind::kTableScan,          PlanKind::kIndexAImproved,
      PlanKind::kIndexBImproved,     PlanKind::kMergeJoinAB,
      PlanKind::kMergeJoinBA,        PlanKind::kHashJoinAB,
      PlanKind::kHashJoinBA,         PlanKind::kCoverABBitmapFetch,
      PlanKind::kCoverBABitmapFetch, PlanKind::kBitmapAndFetch,
      PlanKind::kMdamAB,             PlanKind::kMdamBA,
      PlanKind::kCoverABScan,
  };
}

}  // namespace robustmap
