#ifndef ROBUSTMAP_ENGINE_SYSTEM_H_
#define ROBUSTMAP_ENGINE_SYSTEM_H_

#include <string>
#include <vector>

#include "engine/plan.h"

namespace robustmap {

/// Configuration of one "database system" under study.
///
/// The paper anonymizes three commercial systems; we model each as the set
/// of plan classes its executor offers plus the executor idiosyncrasies the
/// paper attributes to it (System B's MVCC-forced fetches, System C's MDAM).
/// The idiosyncrasies are baked into the plan kinds themselves, so a system
/// is fully described by its plan list.
struct SystemConfig {
  std::string name;
  std::vector<PlanKind> plans;

  /// System A: single-column non-clustered indexes, improved (sort-fetch)
  /// index scans, merge/hash index intersections — 7 plans (§3.3).
  static SystemConfig SystemA();

  /// System B: adds two-column indexes, but multi-version concurrency
  /// control applies only to main-table rows, so every index plan must
  /// fetch; rows to be fetched are sorted "very efficiently using a bitmap"
  /// (Figure 8) — 3 additional plans.
  static SystemConfig SystemB();

  /// System C: two-column indexes fully exploited with MDAM [LJBY95];
  /// covering plans never fetch (Figure 9) — 3 additional plans.
  static SystemConfig SystemC();

  /// All three systems in order.
  static std::vector<SystemConfig> AllSystems();
};

}  // namespace robustmap

#endif  // ROBUSTMAP_ENGINE_SYSTEM_H_
