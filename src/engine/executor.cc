#include "engine/executor.h"

#include "exec/bitmap_ops.h"
#include "exec/fetch.h"
#include "exec/filter.h"
#include "exec/hash_join.h"
#include "exec/index_scan.h"
#include "exec/merge_join.h"
#include "exec/predicate.h"
#include "exec/table_scan.h"

namespace robustmap {

namespace {

// Inclusive range for a predicate, widened to the whole domain if inactive.
void PredRange(const PredicateSpec& pred, int64_t domain, int64_t* lo,
               int64_t* hi) {
  if (pred.active) {
    *lo = pred.lo;
    *hi = pred.hi;
  } else {
    *lo = 0;
    *hi = domain - 1;
  }
}

std::vector<RangePredicate> ActivePredicates(const QuerySpec& q) {
  std::vector<RangePredicate> preds;
  if (q.pred_a.active) preds.push_back({0, q.pred_a.lo, q.pred_a.hi});
  if (q.pred_b.active) preds.push_back({1, q.pred_b.lo, q.pred_b.hi});
  return preds;
}

}  // namespace

Status Executor::ValidatePlan(PlanKind kind) const {
  if (db_.table == nullptr) return Status::InvalidArgument("no table bound");

  auto require = [](Index* idx, const char* what) -> Status {
    if (idx == nullptr) {
      return Status::InvalidArgument(std::string("plan requires ") + what);
    }
    return Status::OK();
  };

  switch (kind) {
    case PlanKind::kTableScan:
      return Status::OK();

    case PlanKind::kIndexAImproved:
    case PlanKind::kIndexANaive:
      return require(db_.idx_a, "idx(a)");

    case PlanKind::kIndexBImproved:
    case PlanKind::kIndexBNaive:
      return require(db_.idx_b, "idx(b)");

    case PlanKind::kMergeJoinAB:
    case PlanKind::kMergeJoinBA:
    case PlanKind::kHashJoinAB:
    case PlanKind::kHashJoinBA:
    case PlanKind::kBitmapAndFetch: {
      RM_RETURN_IF_ERROR(require(db_.idx_a, "idx(a)"));
      return require(db_.idx_b, "idx(b)");
    }

    case PlanKind::kCoverABBitmapFetch:
    case PlanKind::kMdamAB:
    case PlanKind::kCoverABScan:
      return require(db_.idx_ab, "idx(a,b)");

    case PlanKind::kCoverBABitmapFetch:
    case PlanKind::kMdamBA:
      return require(db_.idx_ba, "idx(b,a)");
  }
  return Status::InvalidArgument("unknown plan kind");
}

Result<OperatorPtr> Executor::BuildPlan(PlanKind kind,
                                        const QuerySpec& query) const {
  RM_RETURN_IF_ERROR(ValidatePlan(kind));
  return BuildPlanUnchecked(kind, query);
}

Result<OperatorPtr> Executor::BuildPlanUnchecked(PlanKind kind,
                                                 const QuerySpec& query) const {
  int64_t a_lo, a_hi, b_lo, b_hi;
  PredRange(query.pred_a, db_.domain, &a_lo, &a_hi);
  PredRange(query.pred_b, db_.domain, &b_lo, &b_hi);

  auto single_index_scan = [&](Index* idx, int64_t lo,
                               int64_t hi) -> OperatorPtr {
    IndexScanOptions o;
    o.k0_lo = lo;
    o.k0_hi = hi;
    return std::make_unique<IndexScanOp>(idx, o);
  };

  auto cover_scan = [&](Index* idx, int64_t lo0, int64_t hi0, bool filter,
                        int64_t lo1, int64_t hi1, bool mdam) -> OperatorPtr {
    IndexScanOptions o;
    o.k0_lo = lo0;
    o.k0_hi = hi0;
    o.filter_k1 = filter;
    o.k1_lo = lo1;
    o.k1_hi = hi1;
    o.use_mdam = mdam;
    o.k0_domain = db_.domain;
    o.k1_domain = db_.domain;
    return std::make_unique<IndexScanOp>(idx, o);
  };

  switch (kind) {
    case PlanKind::kTableScan:
      return OperatorPtr(
          std::make_unique<TableScanOp>(db_.table, ActivePredicates(query)));

    case PlanKind::kIndexAImproved:
    case PlanKind::kIndexANaive: {
      std::vector<RangePredicate> residual;
      if (query.pred_b.active) {
        residual.push_back({1, query.pred_b.lo, query.pred_b.hi});
      }
      FetchPolicy policy = kind == PlanKind::kIndexAImproved
                               ? FetchPolicy::kSorted
                               : FetchPolicy::kNaive;
      return OperatorPtr(std::make_unique<FetchOp>(
          single_index_scan(db_.idx_a, a_lo, a_hi), db_.table, policy,
          std::move(residual)));
    }

    case PlanKind::kIndexBImproved:
    case PlanKind::kIndexBNaive: {
      std::vector<RangePredicate> residual;
      if (query.pred_a.active) {
        residual.push_back({0, query.pred_a.lo, query.pred_a.hi});
      }
      FetchPolicy policy = kind == PlanKind::kIndexBImproved
                               ? FetchPolicy::kSorted
                               : FetchPolicy::kNaive;
      return OperatorPtr(std::make_unique<FetchOp>(
          single_index_scan(db_.idx_b, b_lo, b_hi), db_.table, policy,
          std::move(residual)));
    }

    case PlanKind::kMergeJoinAB:
    case PlanKind::kMergeJoinBA: {
      auto left = single_index_scan(db_.idx_a, a_lo, a_hi);
      auto right = single_index_scan(db_.idx_b, b_lo, b_hi);
      if (kind == PlanKind::kMergeJoinBA) std::swap(left, right);
      return OperatorPtr(
          std::make_unique<MergeJoinOp>(std::move(left), std::move(right)));
    }

    case PlanKind::kHashJoinAB:
    case PlanKind::kHashJoinBA: {
      auto build = single_index_scan(db_.idx_a, a_lo, a_hi);
      auto probe = single_index_scan(db_.idx_b, b_lo, b_hi);
      if (kind == PlanKind::kHashJoinBA) std::swap(build, probe);
      return OperatorPtr(
          std::make_unique<HashJoinOp>(std::move(build), std::move(probe)));
    }

    case PlanKind::kCoverABBitmapFetch: {
      auto scan = cover_scan(db_.idx_ab, a_lo, a_hi, query.pred_b.active,
                             b_lo, b_hi, /*mdam=*/false);
      // MVCC: System B must fetch the row versions even though the index
      // covers the query; the predicates were already applied in-index.
      return OperatorPtr(std::make_unique<FetchOp>(
          std::move(scan), db_.table, FetchPolicy::kBitmap,
          std::vector<RangePredicate>{}));
    }

    case PlanKind::kCoverBABitmapFetch: {
      auto scan = cover_scan(db_.idx_ba, b_lo, b_hi, query.pred_a.active,
                             a_lo, a_hi, /*mdam=*/false);
      return OperatorPtr(std::make_unique<FetchOp>(
          std::move(scan), db_.table, FetchPolicy::kBitmap,
          std::vector<RangePredicate>{}));
    }

    case PlanKind::kBitmapAndFetch: {
      auto intersect = std::make_unique<BitmapAndOp>(
          single_index_scan(db_.idx_a, a_lo, a_hi),
          single_index_scan(db_.idx_b, b_lo, b_hi), db_.table->num_rows());
      return OperatorPtr(std::make_unique<FetchOp>(
          std::move(intersect), db_.table, FetchPolicy::kBitmap,
          std::vector<RangePredicate>{}));
    }

    case PlanKind::kMdamAB: {
      return cover_scan(db_.idx_ab, a_lo, a_hi, /*filter=*/true, b_lo, b_hi,
                        /*mdam=*/true);
    }

    case PlanKind::kMdamBA: {
      return cover_scan(db_.idx_ba, b_lo, b_hi, /*filter=*/true, a_lo, a_hi,
                        /*mdam=*/true);
    }

    case PlanKind::kCoverABScan: {
      return cover_scan(db_.idx_ab, a_lo, a_hi, query.pred_b.active, b_lo,
                        b_hi, /*mdam=*/false);
    }
  }
  return Status::InvalidArgument("unknown plan kind");
}

namespace {

/// The one measurement sequence both `Run` overloads share: cold start,
/// drain, read the clock and the I/O delta. `label` is copied into the
/// measurement last so callers can pass a prepared plan's cached string.
Result<Measurement> MeasurePlan(RunContext* ctx, Operator* plan,
                                const std::string& label) {
  // Cold start: independent, reproducible map cells.
  ctx->ColdStart();
  IoStats before = ctx->device->stats();
  VirtualStopwatch watch(ctx->clock);

  auto rows = DrainCount(ctx, plan);
  RM_RETURN_IF_ERROR(rows.status());

  Measurement m;
  m.seconds = watch.elapsed_seconds();
  m.output_rows = rows.value();
  m.io = ctx->device->stats().Delta(before);
  m.plan_label = label;
  return m;
}

}  // namespace

Result<Executor::PreparedPlan> Executor::Prepare(PlanKind kind) const {
  RM_RETURN_IF_ERROR(ValidatePlan(kind));
  return PreparedPlan(kind, PlanKindLabel(kind));
}

Result<Measurement> Executor::Run(RunContext* ctx, PlanKind kind,
                                  const QuerySpec& query) const {
  auto plan = BuildPlan(kind, query);
  RM_RETURN_IF_ERROR(plan.status());
  return MeasurePlan(ctx, plan.value().get(), PlanKindLabel(kind));
}

Result<Measurement> Executor::Run(RunContext* ctx, const PreparedPlan& plan,
                                  const QuerySpec& query) const {
  auto tree = BuildPlanUnchecked(plan.kind(), query);
  RM_RETURN_IF_ERROR(tree.status());
  return MeasurePlan(ctx, tree.value().get(), plan.label());
}

}  // namespace robustmap
