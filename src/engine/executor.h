#ifndef ROBUSTMAP_ENGINE_EXECUTOR_H_
#define ROBUSTMAP_ENGINE_EXECUTOR_H_

#include <string>

#include "common/status.h"
#include "engine/plan.h"
#include "engine/query.h"
#include "exec/operator.h"
#include "index/index.h"
#include "io/io_stats.h"
#include "storage/table.h"

namespace robustmap {

/// Storage handles for the benchmark database: one two-column table and the
/// index complement the three systems need. `idx_ab` / `idx_ba` may be null
/// when studying System A alone.
struct StudyDb {
  const Table* table = nullptr;
  Index* idx_a = nullptr;   ///< single-column on a (column 0)
  Index* idx_b = nullptr;   ///< single-column on b (column 1)
  Index* idx_ab = nullptr;  ///< composite (a, b)
  Index* idx_ba = nullptr;  ///< composite (b, a)
  int64_t domain = 0;       ///< value domain of both columns
};

/// One measured plan execution — the datum a robustness map is built from.
struct Measurement {
  double seconds = 0;        ///< virtual elapsed time
  uint64_t output_rows = 0;  ///< result cardinality (correctness anchor)
  IoStats io;                ///< physical I/O behind the time
  std::string plan_label;
};

/// Builds operator trees for the fixed plan kinds and measures their
/// execution under controlled run-time conditions.
///
/// Every `Run` starts from `RunContext::ColdStart()`: the virtual clock
/// restarts, the device head position is forgotten, and the buffer pool is
/// set to whatever the context's `WarmupPolicy` prescribes — emptied by
/// default (the classic cold measurement), or preloaded / carried over for
/// warm-cache maps. Cells stay independent and deterministic for every
/// policy except `kPriorRun`, whose whole point is that cells inherit
/// their predecessor's cache.
class Executor {
 public:
  explicit Executor(const StudyDb& db) : db_(db) {}

  /// Constructs the (unopened) operator tree for `kind` under `query`.
  Result<OperatorPtr> BuildPlan(PlanKind kind, const QuerySpec& query) const;

  /// Cold-runs the plan to completion, counting output rows.
  Result<Measurement> Run(RunContext* ctx, PlanKind kind,
                          const QuerySpec& query) const;

  const StudyDb& db() const { return db_; }

 private:
  StudyDb db_;
};

}  // namespace robustmap

#endif  // ROBUSTMAP_ENGINE_EXECUTOR_H_
