#ifndef ROBUSTMAP_ENGINE_EXECUTOR_H_
#define ROBUSTMAP_ENGINE_EXECUTOR_H_

#include <string>
#include <utility>

#include "common/status.h"
#include "engine/plan.h"
#include "engine/query.h"
#include "exec/operator.h"
#include "index/index.h"
#include "io/io_stats.h"
#include "storage/table.h"

namespace robustmap {

/// Storage handles for the benchmark database: one two-column table and the
/// index complement the three systems need. `idx_ab` / `idx_ba` may be null
/// when studying System A alone.
struct StudyDb {
  const Table* table = nullptr;
  Index* idx_a = nullptr;   ///< single-column on a (column 0)
  Index* idx_b = nullptr;   ///< single-column on b (column 1)
  Index* idx_ab = nullptr;  ///< composite (a, b)
  Index* idx_ba = nullptr;  ///< composite (b, a)
  int64_t domain = 0;       ///< value domain of both columns
};

/// One measured plan execution — the datum a robustness map is built from.
struct Measurement {
  double seconds = 0;        ///< virtual elapsed time
  uint64_t output_rows = 0;  ///< result cardinality (correctness anchor)
  IoStats io;                ///< physical I/O behind the time
  std::string plan_label;
};

/// Builds operator trees for the fixed plan kinds and measures their
/// execution under controlled run-time conditions.
///
/// Every `Run` starts from `RunContext::ColdStart()`: the virtual clock
/// restarts, the device head position is forgotten, and the buffer pool is
/// set to whatever the context's `WarmupPolicy` prescribes — emptied by
/// default (the classic cold measurement), or preloaded / carried over for
/// warm-cache maps. Cells stay independent and deterministic for every
/// policy except `kPriorRun`, whose whole point is that cells inherit
/// their predecessor's cache.
class Executor {
 public:
  /// A plan kind whose storage requirements were validated once, with its
  /// label string materialized once — the per-cell invariants of a sweep
  /// (a sweep runs the same plan over thousands of cells, and neither the
  /// null-index checks nor the label allocation depend on the cell).
  /// Obtained from `Prepare()`; only the operator tree, whose predicate
  /// bounds change per cell, remains per-`Run` work.
  class PreparedPlan {
   public:
    PlanKind kind() const { return kind_; }
    const std::string& label() const { return label_; }

   private:
    friend class Executor;
    PreparedPlan(PlanKind kind, std::string label)
        : kind_(kind), label_(std::move(label)) {}

    PlanKind kind_;
    std::string label_;
  };

  explicit Executor(const StudyDb& db) : db_(db) {}

  /// Constructs the (unopened) operator tree for `kind` under `query`.
  Result<OperatorPtr> BuildPlan(PlanKind kind, const QuerySpec& query) const;

  /// Validates that this database can execute `kind` (the table and every
  /// index the plan needs are bound) and returns the handle that lets
  /// `Run(ctx, prepared, query)` skip that validation — and the label
  /// allocation — on every cell.
  Result<PreparedPlan> Prepare(PlanKind kind) const;

  /// Cold-runs the plan to completion, counting output rows.
  Result<Measurement> Run(RunContext* ctx, PlanKind kind,
                          const QuerySpec& query) const;

  /// `Run` for a plan validated by `Prepare()`: bit-identical measurements,
  /// minus the per-cell validation and label construction.
  Result<Measurement> Run(RunContext* ctx, const PreparedPlan& plan,
                          const QuerySpec& query) const;

  const StudyDb& db() const { return db_; }

 private:
  /// The storage-requirement checks of `BuildPlan`, separated so `Prepare`
  /// can run them once per sweep instead of once per cell.
  Status ValidatePlan(PlanKind kind) const;

  /// Tree construction after validation; `kind` must have passed
  /// `ValidatePlan`.
  Result<OperatorPtr> BuildPlanUnchecked(PlanKind kind,
                                         const QuerySpec& query) const;

  StudyDb db_;
};

}  // namespace robustmap

#endif  // ROBUSTMAP_ENGINE_EXECUTOR_H_
