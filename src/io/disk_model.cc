#include "io/disk_model.h"

#include <algorithm>

namespace robustmap {

DiskModel::Pattern DiskModel::Classify(int64_t last_page, int64_t page) const {
  if (last_page < 0) return Pattern::kRandom;
  int64_t gap = page - (last_page + 1);
  if (gap == 0) return Pattern::kSequential;
  if (gap > 0 && gap <= static_cast<int64_t>(params_.max_skip_gap_pages)) {
    return Pattern::kSkip;
  }
  return Pattern::kRandom;
}

double DiskModel::ReadCostSeconds(int64_t last_page, int64_t page) const {
  double transfer = params_.TransferSeconds();
  switch (Classify(last_page, page)) {
    case Pattern::kSequential:
      return transfer;
    case Pattern::kSkip: {
      int64_t gap = page - (last_page + 1);
      double seek_over =
          params_.skip_settle_seconds +
          static_cast<double>(gap) * params_.skip_per_page_seconds;
      // A short forward gap can also be crossed by simply reading through it
      // (drives/controllers do this below the settle threshold); the device
      // takes whichever is cheaper, bounded by a full random access.
      double read_through = static_cast<double>(gap) * transfer;
      double skip_cost = std::min(seek_over, read_through);
      return std::min(skip_cost, params_.random_access_seconds) + transfer;
    }
    case Pattern::kRandom:
      return params_.random_access_seconds + transfer;
  }
  return transfer;  // unreachable
}

}  // namespace robustmap
