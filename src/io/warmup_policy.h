#ifndef ROBUSTMAP_IO_WARMUP_POLICY_H_
#define ROBUSTMAP_IO_WARMUP_POLICY_H_

#include <cmath>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace robustmap {

/// What the buffer pool contains when a measurement starts — the §3.2
/// run-time condition ("buffer contents") that cold-only maps miss.
///
/// Every map cell is still measured through `RunContext::ColdStart()`; the
/// policy decides what "start" means for the pool:
///
///   kCold             — pool emptied: the classic cold map (default).
///   kPriorRun         — pool kept exactly as the previous run left it,
///                       modeling back-to-back execution and cross-query
///                       reuse. Only reproducible when cells run in a fixed
///                       serial order; a parallel schedule changes each
///                       cell's history.
///   kExplicitPages    — pool emptied, then the given pages admitted in
///                       order, free of charge. Deterministic at any sweep
///                       thread count.
///   kFractionResident — pool emptied, then the leading `fraction` of the
///                       data region touched in ascending page order, so
///                       the pool retains the most recent `capacity` of
///                       those pages. Deterministic at any thread count.
struct WarmupPolicy {
  enum class Mode { kCold, kPriorRun, kExplicitPages, kFractionResident };

  Mode mode = Mode::kCold;
  std::vector<uint64_t> pages;  ///< kExplicitPages: pages to admit, in order
  double fraction = 0.0;        ///< kFractionResident: share of data pages

  static WarmupPolicy Cold() { return {}; }

  static WarmupPolicy PriorRun() {
    WarmupPolicy p;
    p.mode = Mode::kPriorRun;
    return p;
  }

  static WarmupPolicy ExplicitPages(std::vector<uint64_t> warm_pages) {
    WarmupPolicy p;
    p.mode = Mode::kExplicitPages;
    p.pages = std::move(warm_pages);
    return p;
  }

  static WarmupPolicy FractionResident(double fraction) {
    WarmupPolicy p;
    p.mode = Mode::kFractionResident;
    p.fraction = fraction < 0.0 ? 0.0 : (fraction > 1.0 ? 1.0 : fraction);
    return p;
  }

  bool is_cold() const { return mode == Mode::kCold; }

  /// A policy's cells depend on what ran before it exactly when it is
  /// `kPriorRun` — the one mode whose pool state is inherited rather than
  /// reconstructed at every ColdStart. Order-dependent policies cannot be
  /// sharded or parallelized without changing the map.
  bool is_order_dependent() const { return mode == Mode::kPriorRun; }

  /// The flag-sized round-trippable spelling of a policy — the value of
  /// the `--warmup=` worker flag:
  ///
  ///   cold | prior-run | resident:<fraction> | pages:<a>[-<b>][,...]
  ///
  /// Explicit page lists compress consecutive runs into a-b ranges, so the
  /// common "leading N pages" policies stay one short token however large
  /// N grows. `FromSpec(ToSpec())` reproduces the policy exactly.
  std::string ToSpec() const;
  static Result<WarmupPolicy> FromSpec(const std::string& spec);

  /// Human-readable tag for figure titles and file names.
  std::string label() const {
    switch (mode) {
      case Mode::kCold:
        return "cold";
      case Mode::kPriorRun:
        return "prior-run";
      case Mode::kExplicitPages:
        return "explicit(" + std::to_string(pages.size()) + " pages)";
      case Mode::kFractionResident:
        return "resident(" + std::to_string(std::lround(fraction * 100)) +
               "%)";
    }
    return "?";
  }
};

}  // namespace robustmap

#endif  // ROBUSTMAP_IO_WARMUP_POLICY_H_
