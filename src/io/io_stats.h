#ifndef ROBUSTMAP_IO_IO_STATS_H_
#define ROBUSTMAP_IO_IO_STATS_H_

#include <cstdint>

namespace robustmap {

/// Per-run I/O counters, reported alongside virtual elapsed time in every
/// `Measurement` so maps can be explained ("why is this cell red?").
struct IoStats {
  uint64_t sequential_reads = 0;   ///< next-page reads
  uint64_t skip_reads = 0;         ///< short forward seeks (sorted fetch)
  uint64_t random_reads = 0;       ///< full seeks
  uint64_t writes = 0;             ///< page writes (spills, run files)
  uint64_t buffer_hits = 0;        ///< reads satisfied by the buffer pool
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;

  uint64_t total_reads() const {
    return sequential_reads + skip_reads + random_reads;
  }

  IoStats& operator+=(const IoStats& other) {
    sequential_reads += other.sequential_reads;
    skip_reads += other.skip_reads;
    random_reads += other.random_reads;
    writes += other.writes;
    buffer_hits += other.buffer_hits;
    bytes_read += other.bytes_read;
    bytes_written += other.bytes_written;
    return *this;
  }

  IoStats Delta(const IoStats& earlier) const {
    IoStats d;
    d.sequential_reads = sequential_reads - earlier.sequential_reads;
    d.skip_reads = skip_reads - earlier.skip_reads;
    d.random_reads = random_reads - earlier.random_reads;
    d.writes = writes - earlier.writes;
    d.buffer_hits = buffer_hits - earlier.buffer_hits;
    d.bytes_read = bytes_read - earlier.bytes_read;
    d.bytes_written = bytes_written - earlier.bytes_written;
    return d;
  }
};

}  // namespace robustmap

#endif  // ROBUSTMAP_IO_IO_STATS_H_
