#include "io/shared_buffer_pool.h"

namespace robustmap {

bool SharedBufferPool::Access(SimDevice* device, uint64_t page,
                              bool cacheable) {
  bool hit;
  {
    MutexLock lock(&mu_);
    hit = pages_.Touch(page);
    if (hit) {
      ++hits_;
    } else {
      ++misses_;
      if (cacheable) pages_.Admit(page);
    }
  }
  // Charge outside the lock: the device — and the virtual clock behind it —
  // belongs to the calling machine alone, so this never races another
  // worker, and the lock stays out of the (simulated) I/O path.
  if (hit) {
    device->NoteBufferHit();
  } else {
    device->ReadPage(page);
  }
  return hit;
}

bool SharedBufferPool::Contains(uint64_t page) const {
  MutexLock lock(&mu_);
  return pages_.Contains(page);
}

void SharedBufferPool::Warm(uint64_t page) {
  MutexLock lock(&mu_);
  pages_.Warm(page);
}

void SharedBufferPool::Clear() {
  MutexLock lock(&mu_);
  pages_.Clear();
}

void SharedBufferPool::ResetStats() {
  MutexLock lock(&mu_);
  hits_ = 0;
  misses_ = 0;
}

uint64_t SharedBufferPool::resident_pages() const {
  MutexLock lock(&mu_);
  return pages_.size();
}

uint64_t SharedBufferPool::hits() const {
  MutexLock lock(&mu_);
  return hits_;
}

uint64_t SharedBufferPool::misses() const {
  MutexLock lock(&mu_);
  return misses_;
}

}  // namespace robustmap
