#ifndef ROBUSTMAP_IO_SHARED_BUFFER_POOL_H_
#define ROBUSTMAP_IO_SHARED_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/mutex.h"
#include "io/buffer_pool.h"
#include "io/sim_device.h"

namespace robustmap {

/// One LRU cache shared by several simulated machines.
///
/// Parallel sweep workers normally get private pools — cold map cells must
/// be independent. A shared pool instead models a server whose concurrent
/// queries compete for, and reuse, a single cache (§3.2 "buffer contents" as
/// a run-time condition). All residency state sits behind one mutex; the
/// device charge for a miss goes to the *calling* machine's device, so each
/// worker's virtual clock advances only for its own I/O.
///
/// Determinism: under a parallel schedule the residency history each access
/// sees is scheduling-dependent — by design; that nondeterminism is the
/// phenomenon being modeled. With a single worker (the serial fallback) the
/// access order is fixed and maps are reproducible run-to-run.
class SharedBufferPool {
 public:
  explicit SharedBufferPool(uint64_t capacity_pages)
      : pages_(capacity_pages) {}

  SharedBufferPool(const SharedBufferPool&) = delete;
  SharedBufferPool& operator=(const SharedBufferPool&) = delete;

  /// Logical page read on behalf of `device`'s machine. Returns true on a
  /// hit (buffer-hit noted on `device`); on a miss charges one read to
  /// `device` and, if `cacheable`, admits the page.
  bool Access(SimDevice* device, uint64_t page, bool cacheable = true);

  bool Contains(uint64_t page) const;

  /// Admits `page` as MRU without any device charge or statistics.
  void Warm(uint64_t page);

  /// Drops all cached pages for every attached machine (no cost).
  void Clear();

  /// Zeroes the pool-wide hit/miss totals (per-machine counters live on the
  /// attached `SharedBufferPoolView`s).
  void ResetStats();

  uint64_t capacity_pages() const {
    MutexLock lock(&mu_);
    return pages_.capacity();
  }
  uint64_t resident_pages() const;

  /// Pool-wide totals across all attached machines.
  uint64_t hits() const;
  uint64_t misses() const;

 private:
  mutable Mutex mu_;
  uint64_t hits_ GUARDED_BY(mu_) = 0;
  uint64_t misses_ GUARDED_BY(mu_) = 0;
  /// The same LRU core BufferPool uses; every touch/admit/evict/query of
  /// residency state happens under mu_ — enforced at compile time.
  LruPageSet pages_ GUARDED_BY(mu_);
};

/// A per-machine `BufferPool` facade over a `SharedBufferPool`: residency
/// and eviction are shared across machines, misses charge *this* machine's
/// device, and the hit/miss counters inherited from `BufferPool` stay
/// per-machine so per-measurement hit rates remain meaningful.
///
/// `Clear()` clears the shared cache for everyone — with a shared pool that
/// is what a cold start means machine-wide. Warm sweeps that want reuse run
/// with `WarmupPolicy::PriorRun()`, which skips the clear.
class SharedBufferPoolView : public BufferPool {
 public:
  SharedBufferPoolView(SimDevice* device, SharedBufferPool* shared)
      : device_(device), shared_(shared) {}

  bool Access(uint64_t page, bool cacheable = true) override {
    bool hit = shared_->Access(device_, page, cacheable);
    if (hit) {
      ++hits_;
    } else {
      ++misses_;
    }
    return hit;
  }

  bool Contains(uint64_t page) const override {
    return shared_->Contains(page);
  }

  void Warm(uint64_t page) override { shared_->Warm(page); }

  void Clear() override { shared_->Clear(); }

  uint64_t capacity_pages() const override {
    return shared_->capacity_pages();
  }
  uint64_t resident_pages() const override {
    return shared_->resident_pages();
  }

 private:
  /// Per-machine state needs no capability: a view belongs to exactly one
  /// simulated machine, and each machine runs on one worker thread (the
  /// inherited hits_/misses_ counters are per-view for the same reason —
  /// only the *residency* state behind shared_ is cross-thread).
  SimDevice* device_;
  SharedBufferPool* shared_;
};

}  // namespace robustmap

#endif  // ROBUSTMAP_IO_SHARED_BUFFER_POOL_H_
