#ifndef ROBUSTMAP_IO_RUN_CONTEXT_H_
#define ROBUSTMAP_IO_RUN_CONTEXT_H_

#include <cmath>
#include <cstdint>
#include <memory>

#include "common/clock.h"
#include "io/buffer_pool.h"
#include "io/disk_model.h"
#include "io/sim_device.h"

namespace robustmap {

/// Everything a storage object or operator needs to execute: the virtual
/// clock, the device, the buffer pool, CPU cost constants, and the memory
/// budgets that the paper identifies as key run-time conditions.
struct RunContext {
  VirtualClock* clock = nullptr;
  SimDevice* device = nullptr;
  BufferPool* pool = nullptr;
  CpuParameters cpu;

  /// Work memory available to a sort operator, bytes.
  uint64_t sort_memory_bytes = 64ull << 20;

  /// Work memory available to a hash build side, bytes.
  uint64_t hash_memory_bytes = 64ull << 20;

  /// Charges `seconds` of CPU work to the virtual clock. Rounds to the
  /// nearest nanosecond: truncation would silently drop sub-nanosecond
  /// charges (e.g. single key comparisons at 8 ns resolution accumulate,
  /// but a lone 0.9 ns charge must not vanish).
  void ChargeCpu(double seconds) { clock->Advance(std::llround(seconds * 1e9)); }

  /// Charges `count` operations at `per_op_seconds` each.
  void ChargeCpuOps(uint64_t count, double per_op_seconds) {
    ChargeCpu(static_cast<double>(count) * per_op_seconds);
  }

  /// Logical page read through the buffer pool.
  /// Returns true on a buffer hit.
  bool ReadPage(uint64_t page, bool cacheable = true) {
    return pool->Access(page, cacheable);
  }

  /// Resets the machine for an independent, reproducible measurement:
  /// clock to zero, buffer pool emptied, head position forgotten, and temp
  /// (spill) extents released so their placement — and its seek costs —
  /// never depends on what ran before. Every measurement path must use
  /// this rather than hand-rolling the reset sequence.
  void ColdStart() {
    clock->Reset();
    pool->Clear();
    device->ResetHead();
    device->ReleaseTempExtents();
  }
};

/// A self-contained simulated machine — clock, device, buffer pool — with a
/// `RunContext` wired to them. Produced by `RunContextFactory` so parallel
/// sweep workers each measure on a private machine.
class OwnedRunContext {
 public:
  OwnedRunContext(const DiskParameters& disk, const CpuParameters& cpu,
                  uint64_t pool_pages, uint64_t data_pages,
                  uint64_t sort_memory_bytes, uint64_t hash_memory_bytes)
      : device_(disk, &clock_), pool_(&device_, pool_pages) {
    // Mirror the prototype device's data extents so shared storage objects
    // (tables, indexes) keep their page addresses on this machine, and
    // spill extents land at the same pages as on the prototype.
    device_.AllocateExtent(data_pages);
    device_.SealDataExtents();
    ctx_.clock = &clock_;
    ctx_.device = &device_;
    ctx_.pool = &pool_;
    ctx_.cpu = cpu;
    ctx_.sort_memory_bytes = sort_memory_bytes;
    ctx_.hash_memory_bytes = hash_memory_bytes;
  }

  OwnedRunContext(const OwnedRunContext&) = delete;
  OwnedRunContext& operator=(const OwnedRunContext&) = delete;

  RunContext* ctx() { return &ctx_; }

 private:
  VirtualClock clock_;
  SimDevice device_;
  BufferPool pool_;
  RunContext ctx_;
};

/// Builds independent, identically-configured simulated machines from a
/// prototype context: same disk and CPU parameters, pool capacity, memory
/// budgets, and data-extent layout. Cold measurements taken on a machine
/// from `Create()` are bit-identical to cold measurements on the prototype,
/// which is what lets a parallel sweep reproduce a serial sweep exactly.
class RunContextFactory {
 public:
  explicit RunContextFactory(const RunContext& prototype)
      : disk_(prototype.device->model().params()),
        cpu_(prototype.cpu),
        pool_pages_(prototype.pool->capacity_pages()),
        data_pages_(prototype.device->data_watermark()),
        sort_memory_bytes_(prototype.sort_memory_bytes),
        hash_memory_bytes_(prototype.hash_memory_bytes) {}

  std::unique_ptr<OwnedRunContext> Create() const {
    return std::make_unique<OwnedRunContext>(disk_, cpu_, pool_pages_,
                                             data_pages_, sort_memory_bytes_,
                                             hash_memory_bytes_);
  }

 private:
  DiskParameters disk_;
  CpuParameters cpu_;
  uint64_t pool_pages_;
  uint64_t data_pages_;
  uint64_t sort_memory_bytes_;
  uint64_t hash_memory_bytes_;
};

}  // namespace robustmap

#endif  // ROBUSTMAP_IO_RUN_CONTEXT_H_
