#ifndef ROBUSTMAP_IO_RUN_CONTEXT_H_
#define ROBUSTMAP_IO_RUN_CONTEXT_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "io/buffer_pool.h"
#include "io/disk_model.h"
#include "io/shared_buffer_pool.h"
#include "io/sim_device.h"
#include "io/warmup_policy.h"

namespace robustmap {

/// Everything a storage object or operator needs to execute: the virtual
/// clock, the device, the buffer pool, CPU cost constants, and the memory
/// budgets that the paper identifies as key run-time conditions.
struct RunContext {
  VirtualClock* clock = nullptr;
  SimDevice* device = nullptr;
  BufferPool* pool = nullptr;
  CpuParameters cpu;

  /// Work memory available to a sort operator, bytes.
  uint64_t sort_memory_bytes = 64ull << 20;

  /// Work memory available to a hash build side, bytes.
  uint64_t hash_memory_bytes = 64ull << 20;

  /// Buffer-pool contents at the start of each measurement (§3.2 run-time
  /// conditions); applied by `ColdStart`. Default: the classic cold map.
  WarmupPolicy warmup;

  /// Fractional-nanosecond remainder of CPU charges not yet applied to the
  /// clock (see `ChargeCpu`); always in [0, 1). Reset by `ColdStart`.
  double cpu_carry_ns = 0.0;

  /// Charges `seconds` of CPU work to the virtual clock. Whole nanoseconds
  /// advance the clock immediately; the sub-nanosecond remainder carries
  /// into the next charge, so a measurement's accumulated CPU time is exact
  /// to < 1 ns however finely the work is charged. (Per-call rounding —
  /// `llround` — biased every charge by up to half a nanosecond, which
  /// compounds over the millions of calls behind one map cell.)
  void ChargeCpu(double seconds) {
    double nanos = seconds * 1e9 + cpu_carry_ns;
    const int64_t whole = static_cast<int64_t>(nanos);
    cpu_carry_ns = nanos - static_cast<double>(whole);
    clock->Advance(whole);
  }

  /// Charges `count` operations at `per_op_seconds` each.
  void ChargeCpuOps(uint64_t count, double per_op_seconds) {
    ChargeCpu(static_cast<double>(count) * per_op_seconds);
  }

  /// Logical page read through the buffer pool.
  /// Returns true on a buffer hit.
  bool ReadPage(uint64_t page, bool cacheable = true) {
    return pool->Access(page, cacheable);
  }

  /// Resets the machine for an independent, reproducible measurement:
  /// clock to zero (with the CPU carry), buffer pool set to whatever state
  /// `warmup` prescribes (emptied by default), pool statistics zeroed, head
  /// position forgotten, and temp (spill) extents released so their
  /// placement — and its seek costs — never depends on what ran before.
  /// Every measurement path must use this rather than hand-rolling the
  /// reset sequence.
  void ColdStart();
};

/// A self-contained simulated machine — clock, device, buffer pool — with a
/// `RunContext` wired to them. Produced by `RunContextFactory` so parallel
/// sweep workers each measure on a private machine. When `shared_pool` is
/// given, the machine attaches a `SharedBufferPoolView` instead of a
/// private pool: time stays private, cache residency is shared.
class OwnedRunContext {
 public:
  OwnedRunContext(const DiskParameters& disk, const CpuParameters& cpu,
                  uint64_t pool_pages, uint64_t data_pages,
                  uint64_t sort_memory_bytes, uint64_t hash_memory_bytes,
                  const WarmupPolicy& warmup = {},
                  SharedBufferPool* shared_pool = nullptr)
      : device_(disk, &clock_) {
    // Mirror the prototype device's data extents so shared storage objects
    // (tables, indexes) keep their page addresses on this machine, and
    // spill extents land at the same pages as on the prototype.
    device_.AllocateExtent(data_pages);
    device_.SealDataExtents();
    if (shared_pool != nullptr) {
      shared_view_ = true;
      pool_ = std::make_unique<SharedBufferPoolView>(&device_, shared_pool);
    } else {
      pool_ = std::make_unique<LruBufferPool>(&device_, pool_pages);
    }
    ctx_.clock = &clock_;
    ctx_.device = &device_;
    ctx_.pool = pool_.get();
    ctx_.cpu = cpu;
    ctx_.sort_memory_bytes = sort_memory_bytes;
    ctx_.hash_memory_bytes = hash_memory_bytes;
    ctx_.warmup = warmup;
  }

  OwnedRunContext(const OwnedRunContext&) = delete;
  OwnedRunContext& operator=(const OwnedRunContext&) = delete;

  RunContext* ctx() { return &ctx_; }

  /// Resets this machine in place to the state a freshly constructed one
  /// would have — clock zeroed, CPU carry cleared, private pool emptied
  /// (page nodes recycled, never freed), pool statistics zeroed, head
  /// forgotten, temp extents released, `warmup` stamped — without
  /// reallocating the device mirror, the pool, or any page nodes. Cold
  /// measurements on a recycled machine are bit-identical to measurements
  /// on a fresh `Create()`. A machine attached to a shared pool skips the
  /// residency clear: constructing a fresh view leaves the shared cache
  /// untouched, and recycling must be indistinguishable from that. Only
  /// call between measurements, never during one.
  void Recycle(const WarmupPolicy& warmup) {
    clock_.Reset();
    if (!shared_view_) pool_->Clear();
    pool_->ResetStats();
    device_.ResetHead();
    device_.ReleaseTempExtents();
    ctx_.warmup = warmup;
    ctx_.cpu_carry_ns = 0.0;
  }

 private:
  VirtualClock clock_;
  SimDevice device_;
  std::unique_ptr<BufferPool> pool_;
  RunContext ctx_;
  bool shared_view_ = false;
};

/// Builds independent, identically-configured simulated machines from a
/// prototype context: same disk and CPU parameters, pool capacity, memory
/// budgets, warmup policy, and data-extent layout. Cold measurements taken
/// on a machine from `Create()` are bit-identical to cold measurements on
/// the prototype, which is what lets a parallel sweep reproduce a serial
/// sweep exactly.
class RunContextFactory {
 public:
  explicit RunContextFactory(const RunContext& prototype)
      : disk_(prototype.device->model().params()),
        cpu_(prototype.cpu),
        pool_pages_(prototype.pool->capacity_pages()),
        data_pages_(prototype.device->data_watermark()),
        sort_memory_bytes_(prototype.sort_memory_bytes),
        hash_memory_bytes_(prototype.hash_memory_bytes),
        warmup_(prototype.warmup) {}

  /// Every machine from `Create()` attaches to `pool` — one cache shared
  /// across workers — instead of receiving a private pool. See
  /// `SharedBufferPool` for the determinism contract. Machines parked in
  /// the arena were built under the old pool topology, so they are dropped.
  void ShareBufferPool(SharedBufferPool* pool) {
    shared_pool_ = pool;
    MutexLock lock(&arena_mu_);
    arena_.clear();
  }

  /// Overrides the warmup policy the machines start with.
  void set_warmup(const WarmupPolicy& warmup) { warmup_ = warmup; }
  const WarmupPolicy& warmup() const { return warmup_; }

  std::unique_ptr<OwnedRunContext> Create() const {
    return std::make_unique<OwnedRunContext>(
        disk_, cpu_, pool_pages_, data_pages_, sort_memory_bytes_,
        hash_memory_bytes_, warmup_, shared_pool_);
  }

  /// Like `Create()`, but recycles a machine parked by `Release()` when one
  /// is available — same measurements, no reallocation of the device mirror
  /// or pool (see `OwnedRunContext::Recycle`). Thread-safe.
  std::unique_ptr<OwnedRunContext> Acquire() const {
    std::unique_ptr<OwnedRunContext> machine;
    {
      MutexLock lock(&arena_mu_);
      if (!arena_.empty()) {
        machine = std::move(arena_.back());
        arena_.pop_back();
      }
    }
    if (machine != nullptr) {
      machine->Recycle(warmup_);
      return machine;
    }
    return Create();
  }

  /// Parks `machine` for reuse by a later `Acquire()`. Null-tolerant.
  /// The machine must have been produced by this factory after its last
  /// `ShareBufferPool()` call, and must not be mid-measurement.
  void Release(std::unique_ptr<OwnedRunContext> machine) const {
    if (machine == nullptr) return;
    MutexLock lock(&arena_mu_);
    arena_.push_back(std::move(machine));
  }

 private:
  DiskParameters disk_;
  CpuParameters cpu_;
  uint64_t pool_pages_;
  uint64_t data_pages_;
  uint64_t sort_memory_bytes_;
  uint64_t hash_memory_bytes_;
  WarmupPolicy warmup_;
  SharedBufferPool* shared_pool_ = nullptr;

  /// Machines parked between measurements, awaiting `Acquire()`.
  mutable Mutex arena_mu_;
  mutable std::vector<std::unique_ptr<OwnedRunContext>> arena_
      GUARDED_BY(arena_mu_);
};

}  // namespace robustmap

#endif  // ROBUSTMAP_IO_RUN_CONTEXT_H_
