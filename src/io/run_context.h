#ifndef ROBUSTMAP_IO_RUN_CONTEXT_H_
#define ROBUSTMAP_IO_RUN_CONTEXT_H_

#include <cstdint>

#include "common/clock.h"
#include "io/buffer_pool.h"
#include "io/disk_model.h"
#include "io/sim_device.h"

namespace robustmap {

/// Everything a storage object or operator needs to execute: the virtual
/// clock, the device, the buffer pool, CPU cost constants, and the memory
/// budgets that the paper identifies as key run-time conditions.
struct RunContext {
  VirtualClock* clock = nullptr;
  SimDevice* device = nullptr;
  BufferPool* pool = nullptr;
  CpuParameters cpu;

  /// Work memory available to a sort operator, bytes.
  uint64_t sort_memory_bytes = 64ull << 20;

  /// Work memory available to a hash build side, bytes.
  uint64_t hash_memory_bytes = 64ull << 20;

  /// Charges `seconds` of CPU work to the virtual clock.
  void ChargeCpu(double seconds) {
    clock->Advance(static_cast<int64_t>(seconds * 1e9));
  }

  /// Charges `count` operations at `per_op_seconds` each.
  void ChargeCpuOps(uint64_t count, double per_op_seconds) {
    ChargeCpu(static_cast<double>(count) * per_op_seconds);
  }

  /// Logical page read through the buffer pool.
  /// Returns true on a buffer hit.
  bool ReadPage(uint64_t page, bool cacheable = true) {
    return pool->Access(page, cacheable);
  }
};

}  // namespace robustmap

#endif  // ROBUSTMAP_IO_RUN_CONTEXT_H_
