#include "io/buffer_pool.h"

namespace robustmap {

bool BufferPool::Access(uint64_t page, bool cacheable) {
  auto it = map_.find(page);
  if (it != map_.end()) {
    ++hits_;
    device_->NoteBufferHit();
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }
  ++misses_;
  device_->ReadPage(page);
  if (cacheable && capacity_ > 0) {
    if (map_.size() >= capacity_) {
      uint64_t victim = lru_.back();
      lru_.pop_back();
      map_.erase(victim);
    }
    lru_.push_front(page);
    map_[page] = lru_.begin();
  }
  return false;
}

void BufferPool::Clear() {
  lru_.clear();
  map_.clear();
}

}  // namespace robustmap
