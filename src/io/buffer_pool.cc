#include "io/buffer_pool.h"

namespace robustmap {

bool LruBufferPool::Access(uint64_t page, bool cacheable) {
  if (pages_.Touch(page)) {
    ++hits_;
    device_->NoteBufferHit();
    return true;
  }
  ++misses_;
  device_->ReadPage(page);
  if (cacheable) pages_.Admit(page);
  return false;
}

}  // namespace robustmap
