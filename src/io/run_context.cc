#include "io/run_context.h"

#include <algorithm>
#include <cmath>

namespace robustmap {

void RunContext::ColdStart() {
  clock->Reset();
  cpu_carry_ns = 0.0;
  switch (warmup.mode) {
    case WarmupPolicy::Mode::kCold:
      pool->Clear();
      break;
    case WarmupPolicy::Mode::kPriorRun:
      // Keep whatever the previous run left resident.
      break;
    case WarmupPolicy::Mode::kExplicitPages:
      pool->Clear();
      for (uint64_t page : warmup.pages) pool->Warm(page);
      break;
    case WarmupPolicy::Mode::kFractionResident: {
      pool->Clear();
      // Touch the leading `fraction` of the data region in ascending page
      // order; the pool retains the most recent `capacity` of those pages,
      // exactly as if a sequential pass over that prefix had just finished.
      // (Warming only the retained suffix directly skips the pointless
      // admissions and evictions.)
      const uint64_t data_pages = device->data_watermark();
      const uint64_t touched = static_cast<uint64_t>(
          std::ceil(warmup.fraction * static_cast<double>(data_pages)));
      const uint64_t kept =
          std::min({touched, data_pages, pool->capacity_pages()});
      for (uint64_t page = touched - kept; page < touched; ++page) {
        pool->Warm(page);
      }
      break;
    }
  }
  pool->ResetStats();
  device->ResetHead();
  device->ReleaseTempExtents();
}

}  // namespace robustmap
