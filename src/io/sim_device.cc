#include "io/sim_device.h"

namespace robustmap {

uint64_t SimDevice::AllocateExtent(uint64_t pages) {
  uint64_t base = next_free_page_;
  next_free_page_ += pages;
  return base;
}

void SimDevice::ReadPage(uint64_t page) {
  int64_t p = static_cast<int64_t>(page);
  double cost = model_.ReadCostSeconds(head_, p);
  switch (model_.Classify(head_, p)) {
    case DiskModel::Pattern::kSequential:
      ++stats_.sequential_reads;
      break;
    case DiskModel::Pattern::kSkip:
      ++stats_.skip_reads;
      break;
    case DiskModel::Pattern::kRandom:
      ++stats_.random_reads;
      break;
  }
  stats_.bytes_read += model_.params().page_size_bytes;
  head_ = p;
  Charge(cost);
}

void SimDevice::WritePage(uint64_t page) {
  int64_t p = static_cast<int64_t>(page);
  double cost = model_.ReadCostSeconds(head_, p);  // symmetric write model
  ++stats_.writes;
  stats_.bytes_written += model_.params().page_size_bytes;
  head_ = p;
  Charge(cost);
}

void SimDevice::ReadRun(uint64_t first, uint64_t count) {
  for (uint64_t i = 0; i < count; ++i) ReadPage(first + i);
}

void SimDevice::WriteRun(uint64_t first, uint64_t count) {
  for (uint64_t i = 0; i < count; ++i) WritePage(first + i);
}

}  // namespace robustmap
