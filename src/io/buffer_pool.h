#ifndef ROBUSTMAP_IO_BUFFER_POOL_H_
#define ROBUSTMAP_IO_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "io/sim_device.h"

namespace robustmap {

/// LRU page cache in front of a `SimDevice`.
///
/// Like the device, the pool tracks *residency* rather than bytes: a hit
/// avoids charging the device; a miss charges one device read and caches the
/// page. Scans can pass `cacheable = false` to model ring-buffer scan reads
/// that do not flood the pool (all major systems do this for large scans).
class BufferPool {
 public:
  BufferPool(SimDevice* device, uint64_t capacity_pages)
      : device_(device), capacity_(capacity_pages) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Logical page read. Returns true if the page was resident (no device
  /// charge). On a miss, charges the device and, if `cacheable`, admits the
  /// page (evicting the LRU page when full).
  bool Access(uint64_t page, bool cacheable = true);

  /// True if `page` is currently resident (no cost, no LRU effect).
  bool Contains(uint64_t page) const { return map_.count(page) > 0; }

  /// Drops all cached pages (no cost).
  void Clear();

  uint64_t capacity_pages() const { return capacity_; }
  uint64_t resident_pages() const { return map_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  SimDevice* device_;
  uint64_t capacity_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  std::list<uint64_t> lru_;  ///< front = most recent
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> map_;
};

}  // namespace robustmap

#endif  // ROBUSTMAP_IO_BUFFER_POOL_H_
