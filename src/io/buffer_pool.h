#ifndef ROBUSTMAP_IO_BUFFER_POOL_H_
#define ROBUSTMAP_IO_BUFFER_POOL_H_

#include <cstdint>
#include <iterator>
#include <list>
#include <unordered_map>

#include "io/sim_device.h"

namespace robustmap {

/// The unsynchronized LRU residency core shared by `LruBufferPool` (used
/// directly) and `SharedBufferPool` (behind its mutex): which pages are
/// resident and in what recency order — no cost model, no statistics, no
/// opinion on who pays for a miss.
class LruPageSet {
 public:
  explicit LruPageSet(uint64_t capacity_pages) : capacity_(capacity_pages) {}

  /// Marks `page` most recently used if resident; returns whether it was.
  bool Touch(uint64_t page) {
    auto it = map_.find(page);
    if (it == map_.end()) return false;
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }

  /// Admits `page` as MRU, evicting the LRU page when full. A no-op at
  /// capacity 0. Must not be called for a resident page (use Touch/Warm).
  ///
  /// List nodes are an arena: an eviction rewrites the victim's node in
  /// place (one splice), and an admission into spare capacity reuses a
  /// node parked by `Clear()` before asking the heap for a new one. A
  /// sweep's millions of per-cell cold starts therefore stop paying an
  /// allocate/free per resident page — residency order and eviction
  /// decisions are exactly as before, only the node lifetimes change.
  void Admit(uint64_t page) {
    if (capacity_ == 0) return;
    if (map_.size() >= capacity_) {
      map_.erase(lru_.back());
      lru_.splice(lru_.begin(), lru_, std::prev(lru_.end()));
      lru_.front() = page;
    } else if (!free_.empty()) {
      lru_.splice(lru_.begin(), free_, free_.begin());
      lru_.front() = page;
    } else {
      lru_.push_front(page);
      ++node_allocations_;
    }
    map_[page] = lru_.begin();
  }

  /// Touch-or-admit: the warm-preload primitive.
  void Warm(uint64_t page) {
    if (!Touch(page)) Admit(page);
  }

  bool Contains(uint64_t page) const { return map_.count(page) > 0; }

  /// Drops all residency. Nodes are parked on the free list (one splice,
  /// no deallocation) so the next measurement's admissions recycle them.
  void Clear() {
    free_.splice(free_.begin(), lru_);
    map_.clear();
  }

  uint64_t size() const { return map_.size(); }
  uint64_t capacity() const { return capacity_; }

  /// Test-only efficiency counter: LRU list nodes ever taken from the
  /// heap. Recycled admissions (evictions, post-Clear reuse) do not count,
  /// so a pool that keeps being recycled plateaus while a rebuilt-per-cell
  /// pool grows linearly — the deterministic metric the arena-reuse tests
  /// and the cold-start-vs-recycle microbench assert on.
  uint64_t node_allocations() const { return node_allocations_; }

 private:
  uint64_t capacity_;
  std::list<uint64_t> lru_;   ///< front = most recent
  std::list<uint64_t> free_;  ///< nodes parked by Clear(), awaiting reuse
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> map_;
  uint64_t node_allocations_ = 0;
};

/// The buffer-pool interface a `RunContext` executes against.
///
/// The pool tracks *residency* rather than bytes: a hit avoids charging the
/// device; a miss charges one device read and caches the page. Scans can
/// pass `cacheable = false` to model ring-buffer scan reads that do not
/// flood the pool (all major systems do this for large scans).
///
/// Implementations: `LruBufferPool` (a machine's private cache) and
/// `SharedBufferPoolView` (a per-machine facade over one cache shared by
/// several machines, see io/shared_buffer_pool.h). Only the hit/miss
/// counters live in the base — they are per-machine in both cases.
class BufferPool {
 public:
  virtual ~BufferPool() = default;

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Logical page read. Returns true if the page was resident (no device
  /// charge). On a miss, charges the device and, if `cacheable`, admits the
  /// page (evicting the LRU page when full).
  virtual bool Access(uint64_t page, bool cacheable = true) = 0;

  /// True if `page` is currently resident (no cost, no LRU effect).
  virtual bool Contains(uint64_t page) const = 0;

  /// Admits `page` as resident — most recently used — without charging the
  /// device or touching the hit/miss counters. Warm-start preloading (see
  /// `WarmupPolicy`); a no-op pool-state edit, never a measured access.
  virtual void Warm(uint64_t page) = 0;

  /// Drops all cached pages (no cost). The hit/miss counters survive so a
  /// caller can clear residency mid-measurement; per-measurement statistics
  /// are zeroed separately by `ResetStats()` (ColdStart does both).
  virtual void Clear() = 0;

  virtual uint64_t capacity_pages() const = 0;
  virtual uint64_t resident_pages() const = 0;

  /// Zeroes the hit/miss counters. Kept separate from `Clear()` so a warm
  /// start can leave pages resident while still measuring each run's hit
  /// rate from zero.
  void ResetStats() {
    hits_ = 0;
    misses_ = 0;
  }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

  /// Test-only: heap allocations this pool's residency structure has ever
  /// made (see `LruPageSet::node_allocations`). 0 for pools that do not
  /// track — shared views report 0 because the nodes belong to the one
  /// shared cache, not to any view.
  virtual uint64_t node_allocations() const { return 0; }

 protected:
  BufferPool() = default;

  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

/// A simulated machine's private LRU page cache in front of its
/// `SimDevice`.
class LruBufferPool : public BufferPool {
 public:
  LruBufferPool(SimDevice* device, uint64_t capacity_pages)
      : device_(device), pages_(capacity_pages) {}

  bool Access(uint64_t page, bool cacheable = true) override;
  bool Contains(uint64_t page) const override { return pages_.Contains(page); }
  void Warm(uint64_t page) override { pages_.Warm(page); }
  void Clear() override { pages_.Clear(); }
  uint64_t capacity_pages() const override { return pages_.capacity(); }
  uint64_t resident_pages() const override { return pages_.size(); }
  uint64_t node_allocations() const override {
    return pages_.node_allocations();
  }

 private:
  SimDevice* device_;
  LruPageSet pages_;
};

}  // namespace robustmap

#endif  // ROBUSTMAP_IO_BUFFER_POOL_H_
