#ifndef ROBUSTMAP_IO_SIM_DEVICE_H_
#define ROBUSTMAP_IO_SIM_DEVICE_H_

#include <cstdint>

#include "common/clock.h"
#include "io/disk_model.h"
#include "io/io_stats.h"

namespace robustmap {

/// Simulated block device.
///
/// Storage objects (tables, indexes, spill files) allocate extents of pages
/// in a single linear address space; every page access charges the shared
/// virtual clock according to the `DiskModel` and the current head position.
/// The device never stores bytes — in this simulation the "disk contents"
/// live with the storage objects; the device models *time* and collects
/// access statistics.
class SimDevice {
 public:
  SimDevice(const DiskParameters& params, VirtualClock* clock)
      : model_(params), clock_(clock) {}

  SimDevice(const SimDevice&) = delete;
  SimDevice& operator=(const SimDevice&) = delete;

  /// Reserves `pages` consecutive pages; returns the first global page id.
  uint64_t AllocateExtent(uint64_t pages);

  /// Charges one page read at `page` (global id).
  void ReadPage(uint64_t page);

  /// Charges one page write at `page` (global id).
  void WritePage(uint64_t page);

  /// Charges `count` consecutive page reads starting at `first`.
  void ReadRun(uint64_t first, uint64_t count);

  /// Charges `count` consecutive page writes starting at `first`.
  void WriteRun(uint64_t first, uint64_t count);

  /// Buffer pool bookkeeping: a logical read satisfied without device I/O.
  void NoteBufferHit() { ++stats_.buffer_hits; }

  const IoStats& stats() const { return stats_; }
  const DiskModel& model() const { return model_; }
  VirtualClock* clock() { return clock_; }
  uint64_t allocated_pages() const { return next_free_page_; }

  /// Forgets head position (e.g., after a long pause); next access is random.
  void ResetHead() { head_ = -1; }

 private:
  void Charge(double seconds) {
    clock_->Advance(static_cast<int64_t>(seconds * 1e9 + 0.5));
  }

  DiskModel model_;
  VirtualClock* clock_;
  IoStats stats_;
  int64_t head_ = -1;  ///< last accessed page, -1 if none
  uint64_t next_free_page_ = 0;
};

}  // namespace robustmap

#endif  // ROBUSTMAP_IO_SIM_DEVICE_H_
