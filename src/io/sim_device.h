#ifndef ROBUSTMAP_IO_SIM_DEVICE_H_
#define ROBUSTMAP_IO_SIM_DEVICE_H_

#include <cstdint>

#include "common/clock.h"
#include "io/disk_model.h"
#include "io/io_stats.h"

namespace robustmap {

/// Simulated block device.
///
/// Storage objects (tables, indexes, spill files) allocate extents of pages
/// in a single linear address space; every page access charges the shared
/// virtual clock according to the `DiskModel` and the current head position.
/// The device never stores bytes — in this simulation the "disk contents"
/// live with the storage objects; the device models *time* and collects
/// access statistics.
class SimDevice {
 public:
  SimDevice(const DiskParameters& params, VirtualClock* clock)
      : model_(params), clock_(clock) {}

  SimDevice(const SimDevice&) = delete;
  SimDevice& operator=(const SimDevice&) = delete;

  /// Reserves `pages` consecutive pages; returns the first global page id.
  uint64_t AllocateExtent(uint64_t pages);

  /// Charges one page read at `page` (global id).
  void ReadPage(uint64_t page);

  /// Charges one page write at `page` (global id).
  void WritePage(uint64_t page);

  /// Charges `count` consecutive page reads starting at `first`.
  void ReadRun(uint64_t first, uint64_t count);

  /// Charges `count` consecutive page writes starting at `first`.
  void WriteRun(uint64_t first, uint64_t count);

  /// Buffer pool bookkeeping: a logical read satisfied without device I/O.
  void NoteBufferHit() { ++stats_.buffer_hits; }

  const IoStats& stats() const { return stats_; }
  const DiskModel& model() const { return model_; }
  VirtualClock* clock() { return clock_; }
  uint64_t allocated_pages() const { return next_free_page_; }

  /// Forgets head position (e.g., after a long pause); next access is random.
  void ResetHead() { head_ = -1; }

  /// Marks the current allocation frontier as the end of the permanent data
  /// extents (tables, indexes); `ReleaseTempExtents` rewinds to this point.
  void SealDataExtents() {
    data_watermark_ = next_free_page_;
    sealed_ = true;
  }

  /// Frees every extent allocated after `SealDataExtents` (sort spills, hash
  /// partitions, run files) and rewinds allocation to the start of the temp
  /// region. The first call seals implicitly, treating everything allocated
  /// so far as data. Called at each cold start so a measurement's temp-file
  /// placement — and therefore its seek costs — is independent of what ran
  /// before it.
  ///
  /// The temp region begins one full skip gap past the data extents,
  /// modeling a dedicated scratch area: reaching a spill file from anywhere
  /// in the data is always a full seek. Placing temp pages adjacent to the
  /// data instead would make the cost of a spill depend on which data
  /// extent happened to be scanned last — exactly the placement-accident
  /// idiosyncrasy the paper's maps are meant to expose, not contain.
  void ReleaseTempExtents() {
    if (!sealed_) SealDataExtents();
    next_free_page_ = TempRegionStart();
  }

  /// First page of the scratch region used for post-seal allocations.
  uint64_t TempRegionStart() const {
    return data_watermark_ + model_.params().max_skip_gap_pages + 1;
  }

  /// End of the permanent data extents (== allocated_pages() until sealed).
  uint64_t data_watermark() const {
    return sealed_ ? data_watermark_ : next_free_page_;
  }

 private:
  void Charge(double seconds) {
    clock_->Advance(static_cast<int64_t>(seconds * 1e9 + 0.5));
  }

  DiskModel model_;
  VirtualClock* clock_;
  IoStats stats_;
  int64_t head_ = -1;  ///< last accessed page, -1 if none
  uint64_t next_free_page_ = 0;
  uint64_t data_watermark_ = 0;  ///< see SealDataExtents
  bool sealed_ = false;
};

}  // namespace robustmap

#endif  // ROBUSTMAP_IO_SIM_DEVICE_H_
