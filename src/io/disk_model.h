#ifndef ROBUSTMAP_IO_DISK_MODEL_H_
#define ROBUSTMAP_IO_DISK_MODEL_H_

#include <cstdint>

namespace robustmap {

/// Parameters of the simulated storage device.
///
/// The model distinguishes three access patterns, matching the techniques the
/// paper contrasts (table scan, traditional per-row fetch, sorted
/// "skip-sequential" fetch of the improved index scan):
///
///   * sequential  — the next page after the head: pure transfer time;
///   * skip        — a short forward seek over `gap` pages: settle cost plus
///                   a per-page skip cost capped by the full seek;
///   * random      — a full seek (average seek + rotational latency) plus
///                   transfer.
///
/// Defaults are calibrated so the Figure 1 landmarks land where the paper
/// reports them (see DESIGN.md §5 and tests/engine/calibration_test.cc).
struct DiskParameters {
  uint32_t page_size_bytes = 8192;

  /// Sustained sequential transfer rate, bytes/second.
  double sequential_bandwidth_bytes_per_sec = 200.0 * 1024 * 1024;

  /// Average full random access (seek + rotational), seconds.
  double random_access_seconds = 1.25e-3;

  /// Head settle cost for a short forward skip, seconds.
  double skip_settle_seconds = 0.10e-3;

  /// Additional cost per page skipped over in a short forward seek,
  /// seconds/page (track-to-track motion amortized over the gap).
  double skip_per_page_seconds = 2.0e-6;

  /// Gap (in pages) beyond which a forward skip costs as much as a random
  /// access.
  uint64_t max_skip_gap_pages = 4096;

  /// Transfer time for one page, seconds.
  double TransferSeconds() const {
    return static_cast<double>(page_size_bytes) /
           sequential_bandwidth_bytes_per_sec;
  }
};

/// Pure cost model: access-pattern classification and per-access latency.
/// `SimDevice` applies this model to a virtual clock.
class DiskModel {
 public:
  explicit DiskModel(const DiskParameters& params) : params_(params) {}

  const DiskParameters& params() const { return params_; }

  /// Cost in seconds of reading `page` when the head sits just past
  /// `last_page` (the previously accessed page), or -1 if no history.
  double ReadCostSeconds(int64_t last_page, int64_t page) const;

  /// Classification used for statistics.
  enum class Pattern { kSequential, kSkip, kRandom };
  Pattern Classify(int64_t last_page, int64_t page) const;

 private:
  DiskParameters params_;
};

/// CPU cost constants (seconds per operation), charged by operators.
///
/// These model per-row work the paper's systems spend over and above I/O:
/// predicate evaluation during scans, row reconstruction on fetch (slot
/// lookup, copying, visibility check), key comparison, and hashing.
struct CpuParameters {
  double predicate_eval_seconds = 100e-9;
  double row_fetch_seconds = 600e-9;
  double index_entry_seconds = 25e-9;
  double compare_seconds = 8e-9;
  double hash_seconds = 30e-9;
  double copy_row_seconds = 50e-9;
  double bitmap_set_seconds = 4e-9;
};

}  // namespace robustmap

#endif  // ROBUSTMAP_IO_DISK_MODEL_H_
