#include "io/warmup_policy.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace robustmap {

namespace {

/// Parses one non-negative integer out of [*pos, end of `s`), advancing
/// *pos past it. Rejects empty / non-numeric / out-of-range tokens — and
/// signs: strtoull would happily wrap "-2" to ~2^64, turning a typo'd
/// range into a multi-exabyte page-list allocation.
bool ParsePage(const std::string& s, size_t* pos, uint64_t* out) {
  if (*pos >= s.size() ||
      !std::isdigit(static_cast<unsigned char>(s[*pos]))) {
    return false;
  }
  const char* begin = s.c_str() + *pos;
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(begin, &end, 10);
  if (end == begin || errno == ERANGE) return false;
  *pos += static_cast<size_t>(end - begin);
  *out = v;
  return true;
}

}  // namespace

std::string WarmupPolicy::ToSpec() const {
  switch (mode) {
    case Mode::kCold:
      return "cold";
    case Mode::kPriorRun:
      return "prior-run";
    case Mode::kFractionResident: {
      // %.17g round-trips any double, so FromSpec(ToSpec()) is exact.
      char buf[40];
      std::snprintf(buf, sizeof(buf), "resident:%.17g", fraction);
      return buf;
    }
    case Mode::kExplicitPages: {
      std::string spec = "pages:";
      for (size_t i = 0; i < pages.size();) {
        size_t j = i;
        while (j + 1 < pages.size() && pages[j + 1] == pages[j] + 1) ++j;
        if (spec.back() != ':') spec += ',';
        spec += std::to_string(pages[i]);
        if (j > i) {
          spec += '-';
          spec += std::to_string(pages[j]);
        }
        i = j + 1;
      }
      return spec;
    }
  }
  return "cold";
}

Result<WarmupPolicy> WarmupPolicy::FromSpec(const std::string& spec) {
  if (spec == "cold") return Cold();
  if (spec == "prior-run") return PriorRun();
  if (spec.rfind("resident:", 0) == 0) {
    const std::string raw = spec.substr(9);
    char* end = nullptr;
    errno = 0;
    double f = std::strtod(raw.c_str(), &end);
    // The negated form, not `f < 0 || f > 1`: both of those compare false
    // for NaN, and "resident:nan" must be rejected, not swept under.
    if (raw.empty() || end != raw.c_str() + raw.size() || errno == ERANGE ||
        !(f >= 0.0 && f <= 1.0)) {
      return Status::InvalidArgument("warmup spec '" + spec +
                                     "': resident fraction must be a number "
                                     "in [0, 1]");
    }
    return FractionResident(f);
  }
  if (spec.rfind("pages:", 0) == 0) {
    std::vector<uint64_t> pages;
    size_t pos = 6;
    if (pos == spec.size()) return ExplicitPages({});  // "pages:" = none
    for (;;) {
      uint64_t a = 0;
      if (!ParsePage(spec, &pos, &a)) {
        return Status::InvalidArgument("warmup spec '" + spec +
                                       "': bad page number");
      }
      uint64_t b = a;
      if (pos < spec.size() && spec[pos] == '-') {
        ++pos;
        if (!ParsePage(spec, &pos, &b) || b < a) {
          return Status::InvalidArgument("warmup spec '" + spec +
                                         "': bad page range");
        }
      }
      for (uint64_t p = a; p <= b; ++p) pages.push_back(p);
      if (pos == spec.size()) break;
      if (spec[pos] != ',') {
        return Status::InvalidArgument("warmup spec '" + spec +
                                       "': expected ',' between pages");
      }
      ++pos;
    }
    return ExplicitPages(std::move(pages));
  }
  return Status::InvalidArgument(
      "unknown warmup spec '" + spec +
      "' (want cold, prior-run, resident:<fraction>, or pages:<list>)");
}

}  // namespace robustmap
