#include "workload/dataset.h"

#include <algorithm>
#include <cmath>

namespace robustmap {

Result<std::unique_ptr<StudyEnvironment>> StudyEnvironment::Create(
    const StudyOptions& opts) {
  auto env = std::unique_ptr<StudyEnvironment>(new StudyEnvironment());
  env->opts_ = opts;
  env->clock_ = std::make_unique<VirtualClock>();
  env->device_ = std::make_unique<SimDevice>(opts.disk, env->clock_.get());

  ProceduralTableOptions topts;
  topts.row_bits = opts.row_bits;
  topts.value_bits = opts.value_bits;
  topts.num_columns = 2;
  topts.seed = opts.seed;
  auto table = ProceduralTable::Create(env->device_.get(), topts);
  RM_RETURN_IF_ERROR(table.status());
  env->table_ = std::shared_ptr<ProceduralTable>(std::move(table).value());

  uint64_t pool_pages = opts.pool_pages;
  if (pool_pages == 0) {
    pool_pages = std::max<uint64_t>(256, env->table_->num_pages() / 64);
  }
  env->pool_ = std::make_unique<LruBufferPool>(env->device_.get(), pool_pages);

  auto make_index = [&](std::vector<uint32_t> cols)
      -> Result<std::shared_ptr<ProceduralIndex>> {
    ProceduralIndexOptions io;
    io.key_columns = std::move(cols);
    auto idx =
        ProceduralIndex::Create(env->device_.get(), env->table_.get(), io);
    RM_RETURN_IF_ERROR(idx.status());
    return std::shared_ptr<ProceduralIndex>(std::move(idx).value());
  };

  auto a = make_index({0});
  RM_RETURN_IF_ERROR(a.status());
  env->idx_a_ = a.value();
  auto b = make_index({1});
  RM_RETURN_IF_ERROR(b.status());
  env->idx_b_ = b.value();
  if (opts.build_composite_indexes) {
    auto ab = make_index({0, 1});
    RM_RETURN_IF_ERROR(ab.status());
    env->idx_ab_ = ab.value();
    auto ba = make_index({1, 0});
    RM_RETURN_IF_ERROR(ba.status());
    env->idx_ba_ = ba.value();
  }

  int64_t domain = env->table_->value_domain();
  RM_RETURN_IF_ERROR(env->catalog_.AddTable(TableInfo{
      "lineitem",
      env->table_,
      Schema({{"a", domain}, {"b", domain}}),
  }));
  RM_RETURN_IF_ERROR(env->catalog_.AddIndex(IndexInfo{"idx_a", "lineitem",
                                                      env->idx_a_}));
  RM_RETURN_IF_ERROR(env->catalog_.AddIndex(IndexInfo{"idx_b", "lineitem",
                                                      env->idx_b_}));
  if (env->idx_ab_ != nullptr) {
    RM_RETURN_IF_ERROR(env->catalog_.AddIndex(IndexInfo{"idx_ab", "lineitem",
                                                        env->idx_ab_}));
    RM_RETURN_IF_ERROR(env->catalog_.AddIndex(IndexInfo{"idx_ba", "lineitem",
                                                        env->idx_ba_}));
  }

  env->ctx_.clock = env->clock_.get();
  env->ctx_.device = env->device_.get();
  env->ctx_.pool = env->pool_.get();
  env->ctx_.cpu = opts.cpu;
  // Auto memory budgets scale with the data (the paper holds the
  // memory-to-data ratio roughly fixed across its systems): sorts get a
  // quarter byte per row (rid sorts spill beyond ~1/32 selectivity and
  // develop multi-pass merges near 100%), hash builds one byte per row.
  uint64_t rows = env->table_->num_rows();
  env->ctx_.sort_memory_bytes = opts.sort_memory_bytes != 0
                                    ? opts.sort_memory_bytes
                                    : std::max<uint64_t>(4096, rows / 4);
  env->ctx_.hash_memory_bytes =
      opts.hash_memory_bytes != 0 ? opts.hash_memory_bytes : rows;

  env->db_.table = env->table_.get();
  env->db_.idx_a = env->idx_a_.get();
  env->db_.idx_b = env->idx_b_.get();
  env->db_.idx_ab = env->idx_ab_.get();
  env->db_.idx_ba = env->idx_ba_.get();
  env->db_.domain = domain;
  env->executor_ = std::make_unique<Executor>(env->db_);
  return env;
}

QuerySpec StudyEnvironment::MakeQuery(double sel_a, double sel_b) const {
  return MakeStudyQuery(sel_a, sel_b, table_->value_domain());
}

}  // namespace robustmap
