#include "workload/distributions.h"

#include <algorithm>
#include <cmath>

namespace robustmap {

ZipfDistribution::ZipfDistribution(uint64_t n, double theta) : theta_(theta) {
  cdf_.resize(n);
  double sum = 0;
  for (uint64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

uint64_t ZipfDistribution::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

double ZipfDistribution::Pmf(uint64_t v) const {
  if (v >= cdf_.size()) return 0;
  return v == 0 ? cdf_[0] : cdf_[v] - cdf_[v - 1];
}

StudyDb HeapStudyDataset::db() const {
  StudyDb d;
  d.table = table.get();
  d.idx_a = idx_a.get();
  d.idx_b = idx_b.get();
  d.idx_ab = idx_ab.get();
  d.idx_ba = idx_ba.get();
  d.domain = domain;
  return d;
}

Result<HeapStudyDataset> BuildHeapStudyDataset(RunContext* ctx,
                                               SimDevice* device,
                                               const HeapDatasetOptions& opts) {
  if (opts.domain <= 0) return Status::InvalidArgument("domain must be > 0");
  HeapStudyDataset ds;
  ds.domain = opts.domain;

  HeapTableOptions topts;
  topts.num_columns = 2;
  auto table = HeapTable::Create(device, opts.rows, topts);
  RM_RETURN_IF_ERROR(table.status());
  ds.table = std::move(table).value();

  Rng rng(opts.seed);
  ZipfDistribution zipf(static_cast<uint64_t>(opts.domain),
                        opts.zipf_theta > 0 ? opts.zipf_theta : 0.0);
  std::vector<IndexEntry> ea, eb, eab, eba;
  ea.reserve(opts.rows);
  eb.reserve(opts.rows);
  for (uint64_t rid = 0; rid < opts.rows; ++rid) {
    int64_t a = opts.zipf_theta > 0
                    ? static_cast<int64_t>(zipf.Sample(&rng))
                    : rng.NextInRange(0, opts.domain - 1);
    int64_t b;
    if (opts.correlation > 0 && rng.NextDouble() < opts.correlation) {
      b = a;
    } else {
      b = opts.zipf_theta > 0 ? static_cast<int64_t>(zipf.Sample(&rng))
                              : rng.NextInRange(0, opts.domain - 1);
    }
    RM_RETURN_IF_ERROR(ds.table->Append(ctx, {a, b, 0, 0}));
    ea.push_back({a, 0, rid});
    eb.push_back({b, 0, rid});
    if (opts.build_composite_indexes) {
      eab.push_back({a, b, rid});
      eba.push_back({b, a, rid});
    }
  }
  RM_RETURN_IF_ERROR(ds.table->Finish(ctx));

  auto build = [&](std::vector<IndexEntry> entries,
                   std::vector<uint32_t> cols)
      -> Result<std::unique_ptr<BTree>> {
    std::sort(entries.begin(), entries.end(), EntryLess);
    BTreeOptions bo;
    bo.key_columns = std::move(cols);
    return BTree::BulkLoad(device, std::move(entries), bo);
  };

  auto a_idx = build(std::move(ea), {0});
  RM_RETURN_IF_ERROR(a_idx.status());
  ds.idx_a = std::move(a_idx).value();
  auto b_idx = build(std::move(eb), {1});
  RM_RETURN_IF_ERROR(b_idx.status());
  ds.idx_b = std::move(b_idx).value();
  if (opts.build_composite_indexes) {
    auto ab_idx = build(std::move(eab), {0, 1});
    RM_RETURN_IF_ERROR(ab_idx.status());
    ds.idx_ab = std::move(ab_idx).value();
    auto ba_idx = build(std::move(eba), {1, 0});
    RM_RETURN_IF_ERROR(ba_idx.status());
    ds.idx_ba = std::move(ba_idx).value();
  }
  return ds;
}

}  // namespace robustmap
