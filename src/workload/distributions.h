#ifndef ROBUSTMAP_WORKLOAD_DISTRIBUTIONS_H_
#define ROBUSTMAP_WORKLOAD_DISTRIBUTIONS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "engine/executor.h"
#include "index/btree.h"
#include "io/run_context.h"
#include "storage/heap_table.h"

namespace robustmap {

/// Zipf(θ) sampler over [0, n) by inverse-CDF lookup; θ = 0 degenerates to
/// uniform. Skewed columns are the paper's "skew (non-uniform value
/// distributions and duplicate key values)" robustness factor (§3).
class ZipfDistribution {
 public:
  ZipfDistribution(uint64_t n, double theta);

  uint64_t Sample(Rng* rng) const;

  /// Probability mass of value `v`.
  double Pmf(uint64_t v) const;

  uint64_t n() const { return cdf_.size(); }
  double theta() const { return theta_; }

 private:
  double theta_;
  std::vector<double> cdf_;
};

/// Options for a fully materialized (heap + real B-tree) study database.
struct HeapDatasetOptions {
  uint64_t rows = 20000;
  int64_t domain = 1024;
  uint64_t seed = 7;
  /// Probability that column b copies column a (predicate correlation; 0 =
  /// independent). Correlated predicates break the s_a × s_b cardinality
  /// assumption — a classic robustness hazard.
  double correlation = 0.0;
  /// Zipf skew of both columns (0 = uniform).
  double zipf_theta = 0.0;
  bool build_composite_indexes = true;
};

/// A real, materialized two-column database: heap table plus B-trees, for
/// tests, examples, and small-scale studies on genuine storage structures.
struct HeapStudyDataset {
  std::unique_ptr<HeapTable> table;
  std::unique_ptr<BTree> idx_a, idx_b, idx_ab, idx_ba;
  int64_t domain = 0;

  /// Handle bundle consumable by `Executor`.
  StudyDb db() const;
};

/// Generates rows, loads the heap table, and bulk-loads all indexes.
Result<HeapStudyDataset> BuildHeapStudyDataset(RunContext* ctx,
                                               SimDevice* device,
                                               const HeapDatasetOptions& opts);

}  // namespace robustmap

#endif  // ROBUSTMAP_WORKLOAD_DISTRIBUTIONS_H_
