#ifndef ROBUSTMAP_WORKLOAD_DATASET_H_
#define ROBUSTMAP_WORKLOAD_DATASET_H_

#include <memory>

#include "catalog/catalog.h"
#include "common/status.h"
#include "engine/executor.h"
#include "engine/query.h"
#include "index/procedural_index.h"
#include "io/buffer_pool.h"
#include "io/run_context.h"
#include "io/sim_device.h"
#include "storage/procedural_table.h"

namespace robustmap {

/// Everything needed to run the paper's selection study at a chosen scale.
struct StudyOptions {
  /// log2 of the row count; 20 (1M rows) sweeps in seconds, 26 (67M rows)
  /// approximates the paper's 60M-row lineitem. All break-even *fractions*
  /// are scale-invariant under this cost model (DESIGN.md §5).
  int row_bits = 20;

  /// log2 of the column value domain; row_bits - value_bits duplicate rows
  /// share each value (default: 64 duplicates, like a low-cardinality
  /// attribute over a large table).
  int value_bits = 14;

  uint64_t seed = 42;
  DiskParameters disk;
  CpuParameters cpu;

  /// 0 = auto: table_pages / 64, at least 256 (a pool a couple of percent
  /// of the data, as in the paper's memory-constrained runs).
  uint64_t pool_pages = 0;

  /// 0 = auto: one byte per table row (64 MiB at paper scale), so rid sorts
  /// spill beyond ~12.5% selectivity and hash builds beyond ~6%.
  uint64_t sort_memory_bytes = 0;
  uint64_t hash_memory_bytes = 0;

  bool build_composite_indexes = true;
};

/// Owns the simulated machine (clock, device, buffer pool), the procedural
/// database (table + four indexes), the catalog, and an `Executor` bound to
/// them. One `StudyEnvironment` serves a whole sweep; `Executor::Run` resets
/// clock/pool per measurement.
class StudyEnvironment {
 public:
  static Result<std::unique_ptr<StudyEnvironment>> Create(
      const StudyOptions& opts);

  StudyEnvironment(const StudyEnvironment&) = delete;
  StudyEnvironment& operator=(const StudyEnvironment&) = delete;

  RunContext* ctx() { return &ctx_; }
  Executor& executor() { return *executor_; }
  const StudyDb& db() const { return db_; }
  const ProceduralTable& table() const { return *table_; }
  const Catalog& catalog() const { return catalog_; }
  int64_t domain() const { return table_->value_domain(); }
  const StudyOptions& options() const { return opts_; }

  /// Builds the benchmark query for target selectivities (see
  /// `MakePredicate`); pass a negative selectivity to deactivate a
  /// predicate.
  QuerySpec MakeQuery(double sel_a, double sel_b) const;

 private:
  StudyEnvironment() = default;

  StudyOptions opts_;
  std::unique_ptr<VirtualClock> clock_;
  std::unique_ptr<SimDevice> device_;
  std::unique_ptr<BufferPool> pool_;
  RunContext ctx_;
  std::shared_ptr<ProceduralTable> table_;
  std::shared_ptr<ProceduralIndex> idx_a_, idx_b_, idx_ab_, idx_ba_;
  Catalog catalog_;
  StudyDb db_;
  std::unique_ptr<Executor> executor_;
};

}  // namespace robustmap

#endif  // ROBUSTMAP_WORKLOAD_DATASET_H_
