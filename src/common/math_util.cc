#include "common/math_util.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace robustmap {

std::vector<double> Log2Grid(int min_log2, int max_log2) {
  return Log2GridFine(min_log2, max_log2, 1);
}

std::vector<double> Log2GridFine(int min_log2, int max_log2,
                                 int steps_per_octave) {
  assert(min_log2 <= max_log2);
  assert(steps_per_octave >= 1);
  std::vector<double> grid;
  int total_steps = (max_log2 - min_log2) * steps_per_octave;
  grid.reserve(static_cast<size_t>(total_steps) + 1);
  for (int i = 0; i <= total_steps; ++i) {
    double exponent = min_log2 + static_cast<double>(i) /
                                     static_cast<double>(steps_per_octave);
    grid.push_back(std::exp2(exponent));
  }
  return grid;
}

int FloorLog2(uint64_t x) {
  assert(x >= 1);
  return 63 - __builtin_clzll(x);
}

double ExpectedDistinctPages(double rows, double pages, double rows_per_page) {
  (void)rows_per_page;
  if (pages <= 0) return 0;
  // Each of `rows` fetches hits a uniformly random page; expected distinct
  // pages = P * (1 - (1 - 1/P)^rows).
  double p = pages;
  return p * (1.0 - std::exp(rows * std::log1p(-1.0 / p)));
}

double Lerp(double a, double b, double t) { return a + (b - a) * t; }

double Clamp(double x, double lo, double hi) {
  return std::min(std::max(x, lo), hi);
}

bool ApproxEqual(double a, double b, double tol) {
  double scale = std::max({std::fabs(a), std::fabs(b), 1.0});
  return std::fabs(a - b) <= tol * scale;
}

double GeometricMean(const std::vector<double>& values) {
  assert(!values.empty());
  double log_sum = 0;
  for (double v : values) {
    assert(v > 0);
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double Percentile(std::vector<double> values, double p) {
  assert(!values.empty());
  std::sort(values.begin(), values.end());
  double rank =
      Clamp(p, 0, 100) / 100.0 * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, values.size() - 1);
  return Lerp(values[lo], values[hi], rank - static_cast<double>(lo));
}

}  // namespace robustmap
