#ifndef ROBUSTMAP_COMMON_CLOCK_H_
#define ROBUSTMAP_COMMON_CLOCK_H_

#include <cstdint>

namespace robustmap {

/// Deterministic virtual clock, in nanoseconds.
///
/// The simulated I/O device and the CPU cost model both advance this clock;
/// an experiment's "measured execution time" is the clock delta across a
/// plan's execution. Virtual time makes 60M-row sweeps finish in wall-clock
/// seconds while preserving the *shape* of the cost surfaces the paper
/// studies (see DESIGN.md §2).
class VirtualClock {
 public:
  VirtualClock() = default;

  /// Advances the clock. `nanos` must be non-negative.
  void Advance(int64_t nanos) { now_ns_ += nanos; }

  /// Current virtual time since construction, nanoseconds.
  int64_t now_ns() const { return now_ns_; }

  /// Current virtual time, seconds.
  double now_seconds() const { return static_cast<double>(now_ns_) * 1e-9; }

  /// Resets to zero (a fresh experiment run).
  void Reset() { now_ns_ = 0; }

 private:
  int64_t now_ns_ = 0;
};

/// A scoped interval measurement on a virtual clock.
class VirtualStopwatch {
 public:
  explicit VirtualStopwatch(const VirtualClock* clock)
      : clock_(clock), start_ns_(clock->now_ns()) {}

  int64_t elapsed_ns() const { return clock_->now_ns() - start_ns_; }
  double elapsed_seconds() const {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

 private:
  const VirtualClock* clock_;
  int64_t start_ns_;
};

}  // namespace robustmap

#endif  // ROBUSTMAP_COMMON_CLOCK_H_
