#ifndef ROBUSTMAP_COMMON_MUTEX_H_
#define ROBUSTMAP_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace robustmap {

/// The tree's only mutex type: `std::mutex` wrapped as a Clang Thread
/// Safety Analysis *capability*, so `GUARDED_BY(mu_)` members and
/// `REQUIRES(mu_)` functions are compile-time checked wherever Clang
/// builds the tree (see common/thread_annotations.h for the policy).
/// Raw `std::mutex` members are rejected by tools/determinism_lint.py —
/// the analysis cannot see through an unannotated type.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  // determinism-lint: allow(unannotated-mutex) the one wrapper owning the raw primitive
  std::mutex mu_;
};

/// RAII lock for `Mutex`, annotated as a scoped capability: holding one
/// satisfies `REQUIRES(mu)` for the scope, and the analysis rejects a
/// scope that re-acquires or fails to cover a guarded access.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable over `Mutex`. `Wait` adopts the already-held lock
/// for the duration of the underlying wait and hands it back on return,
/// so to the analysis (and the caller) the capability is simply held
/// across the call — exactly the `REQUIRES(mu)` contract says so.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) REQUIRES(mu) {
    // determinism-lint: allow(unannotated-mutex) adopts the caller's already-held capability
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller still owns the capability
  }

  template <typename Predicate>
  void Wait(Mutex* mu, Predicate pred) REQUIRES(mu) {
    // determinism-lint: allow(unannotated-mutex) adopts the caller's already-held capability
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock, std::move(pred));
    lock.release();
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  // determinism-lint: allow(unannotated-mutex) implementation of the annotated wrapper itself
  std::condition_variable cv_;
};

}  // namespace robustmap

#endif  // ROBUSTMAP_COMMON_MUTEX_H_
