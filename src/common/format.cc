#include "common/format.h"

#include <cmath>
#include <cstdio>

namespace robustmap {

namespace {
std::string Printf(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}
}  // namespace

std::string FormatSeconds(double seconds) {
  double abs = std::fabs(seconds);
  if (abs < 1e-6) return Printf("%.3g ns", seconds * 1e9);
  if (abs < 1e-3) return Printf("%.3g us", seconds * 1e6);
  if (abs < 1.0) return Printf("%.3g ms", seconds * 1e3);
  if (abs < 1000.0) return Printf("%.3g s", seconds);
  return Printf("%.4g s", seconds);
}

std::string FormatBytes(uint64_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3g %s", v, units[unit]);
  return buf;
}

std::string FormatCount(uint64_t count) {
  std::string digits = std::to_string(count);
  std::string out;
  int run = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (run != 0 && run % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++run;
  }
  return {out.rbegin(), out.rend()};
}

std::string FormatSelectivity(double selectivity) {
  if (selectivity <= 0) return "0";
  double log2v = std::log2(selectivity);
  double rounded = std::round(log2v);
  if (std::fabs(log2v - rounded) < 1e-9 && rounded <= 0) {
    if (rounded == 0) return "1";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "2^%d", static_cast<int>(rounded));
    return buf;
  }
  return Printf("%.4g", selectivity);
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row, std::string* out) {
    for (size_t c = 0; c < row.size(); ++c) {
      out->append(row[c]);
      out->append(widths[c] - row[c].size() + 2, ' ');
    }
    while (!out->empty() && out->back() == ' ') out->pop_back();
    out->push_back('\n');
  };
  std::string out;
  emit_row(header_, &out);
  std::string rule;
  for (size_t c = 0; c < header_.size(); ++c) {
    rule.append(widths[c], '-');
    rule.append(2, ' ');
  }
  while (!rule.empty() && rule.back() == ' ') rule.pop_back();
  out += rule + "\n";
  for (const auto& row : rows_) emit_row(row, &out);
  return out;
}

}  // namespace robustmap
