#include "common/rng.h"

namespace robustmap {

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t Rng::Next() {
  state_ += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Debiased modulo via rejection sampling on the top of the range.
  uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  // 53 top bits into the mantissa.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

}  // namespace robustmap
