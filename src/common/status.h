#ifndef ROBUSTMAP_COMMON_STATUS_H_
#define ROBUSTMAP_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace robustmap {

/// RocksDB-style status code returned by fallible operations.
///
/// The library does not throw exceptions across public API boundaries; every
/// operation that can fail returns a `Status` (or a `Result<T>`, see below).
///
/// The class itself is `[[nodiscard]]`: any function returning a `Status`
/// by value inherits the warning, so a silently dropped error is a compile
/// error under `-Werror` (the CI default) everywhere in the tree — not just
/// on the handful of APIs that remembered to annotate themselves. Callers
/// that genuinely cannot act on a failure (best-effort artifact writers)
/// must say so explicitly with a `(void)` cast or a logging helper.
class [[nodiscard]] Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kCorruption,
    kResourceExhausted,
    kOutOfRange,
    kNotSupported,
    kInternal,
  };

  /// Constructs an OK status.
  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsResourceExhausted() const {
    return code_ == Code::kResourceExhausted;
  }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsInternal() const { return code_ == Code::kInternal; }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: bad page id".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// Value-or-status result, for operations that produce a value on success.
/// `[[nodiscard]]` for the same reason as `Status`: discarding a `Result`
/// discards the error it may carry.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value: `return 42;`.
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  /// Implicit construction from an error: `return Status::NotFound(...)`.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  /// Value access with an explicit crash on error (for tests / examples).
  const T& ValueOrDie() const&;
  T&& ValueOrDie() &&;

 private:
  Status status_;
  std::optional<T> value_;
};

namespace internal {
[[noreturn]] void DieOnBadResult(const Status& status);
}  // namespace internal

template <typename T>
const T& Result<T>::ValueOrDie() const& {
  if (!status_.ok()) internal::DieOnBadResult(status_);
  return *value_;
}

template <typename T>
T&& Result<T>::ValueOrDie() && {
  if (!status_.ok()) internal::DieOnBadResult(status_);
  return *std::move(value_);
}

/// Thread-safe `std::strerror` replacement for building Status messages:
/// `strerror` returns an internal static buffer (clang-tidy
/// concurrency-mt-unsafe, an error in this tree), so errno formatting
/// goes through `strerror_r` here instead.
std::string ErrnoString(int errnum);

/// Propagates a non-OK status to the caller.
#define RM_RETURN_IF_ERROR(expr)               \
  do {                                         \
    ::robustmap::Status _s = (expr);           \
    if (!_s.ok()) return _s;                   \
  } while (0)

}  // namespace robustmap

#endif  // ROBUSTMAP_COMMON_STATUS_H_
