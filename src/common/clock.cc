#include "common/clock.h"

// VirtualClock is header-only; this translation unit anchors the target.
