#ifndef ROBUSTMAP_COMMON_FORMAT_H_
#define ROBUSTMAP_COMMON_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace robustmap {

/// "1.25 ms", "43.2 s", "890 s" — human-readable durations from seconds.
std::string FormatSeconds(double seconds);

/// "8.0 KiB", "6.4 GiB" — human-readable byte counts.
std::string FormatBytes(uint64_t bytes);

/// "61,341" — thousands separators.
std::string FormatCount(uint64_t count);

/// "2^-11" or "0.125" style rendering of a selectivity.
std::string FormatSelectivity(double selectivity);

/// Fixed-width plain-text table, for bench output.
///
/// Usage:
///   TextTable t({"plan", "cost"});
///   t.AddRow({"table scan", "43.2 s"});
///   std::cout << t.ToString();
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace robustmap

#endif  // ROBUSTMAP_COMMON_FORMAT_H_
