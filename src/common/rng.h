#ifndef ROBUSTMAP_COMMON_RNG_H_
#define ROBUSTMAP_COMMON_RNG_H_

#include <cstdint>

namespace robustmap {

/// Deterministic 64-bit pseudo-random number generator (SplitMix64).
///
/// All randomness in the library flows through explicitly seeded `Rng`
/// instances so that every experiment is bit-for-bit reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next 64 uniformly random bits.
  uint64_t Next();

  /// Uniform in [0, bound). `bound` must be non-zero.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform in the inclusive range [lo, hi].
  int64_t NextInRange(int64_t lo, int64_t hi);

 private:
  uint64_t state_;
};

/// Stateless scrambling of a 64-bit value (finalizer of SplitMix64).
/// Useful for deriving per-key deterministic "random" values.
uint64_t Mix64(uint64_t x);

}  // namespace robustmap

#endif  // ROBUSTMAP_COMMON_RNG_H_
