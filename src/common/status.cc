#include "common/status.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace robustmap {

namespace {
// strerror_r comes in two flavors: XSI returns int and fills the buffer,
// GNU returns the message pointer directly (which may ignore the buffer).
// Overloading on the actual return type accepts whichever libc provides.
[[maybe_unused]] const char* AdaptStrerror(int rc, const char* buf) {
  return rc == 0 ? buf : "Unknown error";
}
[[maybe_unused]] const char* AdaptStrerror(const char* msg,
                                           const char* /*buf*/) {
  return msg;
}
}  // namespace

std::string ErrnoString(int errnum) {
  char buf[256] = {};
  return AdaptStrerror(strerror_r(errnum, buf, sizeof(buf)), buf);
}

std::string Status::ToString() const {
  const char* name = nullptr;
  switch (code_) {
    case Code::kOk:
      return "OK";
    case Code::kInvalidArgument:
      name = "InvalidArgument";
      break;
    case Code::kNotFound:
      name = "NotFound";
      break;
    case Code::kCorruption:
      name = "Corruption";
      break;
    case Code::kResourceExhausted:
      name = "ResourceExhausted";
      break;
    case Code::kOutOfRange:
      name = "OutOfRange";
      break;
    case Code::kNotSupported:
      name = "NotSupported";
      break;
    case Code::kInternal:
      name = "Internal";
      break;
  }
  std::string out = name;
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

namespace internal {
void DieOnBadResult(const Status& status) {
  std::fprintf(stderr, "Result<T>::ValueOrDie on error: %s\n",
               status.ToString().c_str());
  std::abort();
}
}  // namespace internal

}  // namespace robustmap
