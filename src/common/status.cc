#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace robustmap {

std::string Status::ToString() const {
  const char* name = nullptr;
  switch (code_) {
    case Code::kOk:
      return "OK";
    case Code::kInvalidArgument:
      name = "InvalidArgument";
      break;
    case Code::kNotFound:
      name = "NotFound";
      break;
    case Code::kCorruption:
      name = "Corruption";
      break;
    case Code::kResourceExhausted:
      name = "ResourceExhausted";
      break;
    case Code::kOutOfRange:
      name = "OutOfRange";
      break;
    case Code::kNotSupported:
      name = "NotSupported";
      break;
    case Code::kInternal:
      name = "Internal";
      break;
  }
  std::string out = name;
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

namespace internal {
void DieOnBadResult(const Status& status) {
  std::fprintf(stderr, "Result<T>::ValueOrDie on error: %s\n",
               status.ToString().c_str());
  std::abort();
}
}  // namespace internal

}  // namespace robustmap
