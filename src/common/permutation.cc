#include "common/permutation.h"

#include <cassert>

#include "common/rng.h"

namespace robustmap {

FeistelPermutation::FeistelPermutation(int bits, uint64_t seed) : bits_(bits) {
  assert(bits >= 2 && bits <= 62 && bits % 2 == 0);
  half_bits_ = bits / 2;
  half_mask_ = (uint64_t{1} << half_bits_) - 1;
  Rng rng(seed ^ 0x5ca1ab1e5ca1ab1eULL);
  for (auto& k : keys_) k = rng.Next();
}

uint64_t FeistelPermutation::RoundFunction(int round, uint64_t half) const {
  return Mix64(half ^ keys_[round]) & half_mask_;
}

uint64_t FeistelPermutation::Permute(uint64_t x) const {
  uint64_t left = x >> half_bits_;
  uint64_t right = x & half_mask_;
  for (int r = 0; r < kRounds; ++r) {
    uint64_t next_left = right;
    uint64_t next_right = left ^ RoundFunction(r, right);
    left = next_left;
    right = next_right;
  }
  return (left << half_bits_) | right;
}

uint64_t FeistelPermutation::Inverse(uint64_t y) const {
  uint64_t left = y >> half_bits_;
  uint64_t right = y & half_mask_;
  for (int r = kRounds - 1; r >= 0; --r) {
    uint64_t prev_right = left;
    uint64_t prev_left = right ^ RoundFunction(r, prev_right);
    left = prev_left;
    right = prev_right;
  }
  return (left << half_bits_) | right;
}

}  // namespace robustmap
