#include "common/trace.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>

#include "common/minijson.h"

namespace robustmap {

int64_t MonotonicNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

namespace {

/// Serializes one event as a single JSON object line. `ts`/`dur` are
/// microseconds (Chrome trace convention), epoch-relative.
void AppendEventJson(const TraceEvent& e, uint32_t default_pid,
                     int64_t epoch_ns, std::string* out) {
  char buf[160];
  const uint32_t pid = e.pid != 0 ? e.pid : default_pid;
  const double ts_us = static_cast<double>(e.ts_ns - epoch_ns) / 1000.0;
  *out += "{\"name\":\"";
  *out += JsonEscape(e.name);
  *out += "\",\"cat\":\"";
  *out += JsonEscape(e.category);
  *out += "\",";
  if (e.phase == 'i') {
    std::snprintf(buf, sizeof(buf),
                  "\"ph\":\"i\",\"s\":\"g\",\"pid\":%u,\"tid\":%u,"
                  "\"ts\":%.3f}",
                  pid, e.tid, ts_us);
  } else {
    std::snprintf(buf, sizeof(buf),
                  "\"ph\":\"X\",\"pid\":%u,\"tid\":%u,\"ts\":%.3f,"
                  "\"dur\":%.3f}",
                  pid, e.tid, ts_us,
                  static_cast<double>(e.dur_ns) / 1000.0);
  }
  *out += buf;
}

}  // namespace

Tracer& Tracer::Get() {
  // Leaked on purpose: thread_local destructors retire their buffers here
  // at thread exit, which must never race program-exit destruction.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Enable() {
  if (epoch_ns() == 0) SetEpochNs(MonotonicNowNs());
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

/// Owns one thread's buffer registration: constructed lazily on the
/// thread's first record, retires the buffer into the tracer on thread
/// exit so the events survive the thread.
class TracerThreadOwner {
 public:
  explicit TracerThreadOwner(Tracer* tracer)
      : tracer_(tracer), buffer_(new Tracer::ThreadBuffer()) {
    MutexLock lock(&tracer_->mu_);
    buffer_->tid = ++tracer_->next_tid_;
    tracer_->threads_.push_back(buffer_.get());
  }

  ~TracerThreadOwner() { tracer_->RetireThread(buffer_.get()); }

  TracerThreadOwner(const TracerThreadOwner&) = delete;
  TracerThreadOwner& operator=(const TracerThreadOwner&) = delete;

  Tracer::ThreadBuffer* buffer() { return buffer_.get(); }

 private:
  Tracer* tracer_;
  std::unique_ptr<Tracer::ThreadBuffer> buffer_;
};

Tracer::ThreadBuffer* Tracer::ThisThreadBuffer() {
  thread_local TracerThreadOwner owner(this);
  return owner.buffer();
}

void Tracer::RetireThread(ThreadBuffer* buffer) {
  MutexLock lock(&mu_);
  threads_.erase(std::remove(threads_.begin(), threads_.end(), buffer),
                 threads_.end());
  MutexLock buffer_lock(&buffer->mu);
  retired_.insert(retired_.end(),
                  std::make_move_iterator(buffer->events.begin()),
                  std::make_move_iterator(buffer->events.end()));
  buffer->events.clear();
}

void Tracer::AddComplete(std::string name, std::string category,
                         int64_t start_ns, int64_t dur_ns) {
  if (!enabled()) return;
  ThreadBuffer* buffer = ThisThreadBuffer();
  TraceEvent e;
  e.name = std::move(name);
  e.category = std::move(category);
  e.phase = 'X';
  e.tid = buffer->tid;
  e.ts_ns = start_ns;
  e.dur_ns = dur_ns;
  MutexLock lock(&buffer->mu);
  buffer->events.push_back(std::move(e));
}

void Tracer::AddInstant(std::string name, std::string category) {
  if (!enabled()) return;
  ThreadBuffer* buffer = ThisThreadBuffer();
  TraceEvent e;
  e.name = std::move(name);
  e.category = std::move(category);
  e.phase = 'i';
  e.tid = buffer->tid;
  e.ts_ns = MonotonicNowNs();
  MutexLock lock(&buffer->mu);
  buffer->events.push_back(std::move(e));
}

std::vector<TraceEvent> Tracer::SnapshotEvents() {
  MutexLock lock(&mu_);
  std::vector<TraceEvent> all = retired_;
  for (ThreadBuffer* buffer : threads_) {
    MutexLock buffer_lock(&buffer->mu);
    all.insert(all.end(), buffer->events.begin(), buffer->events.end());
  }
  // Stable output order — by origin then start time — so a rerun of the
  // same sweep produces a structurally comparable file (timestamps still
  // differ; traces are wall-clock sidecars, never determinism-checked).
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.pid != b.pid) return a.pid < b.pid;
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.ts_ns < b.ts_ns;
                   });
  return all;
}

Status Tracer::WriteFile(const std::string& path) {
  const std::vector<TraceEvent> events = SnapshotEvents();
  const int64_t epoch = epoch_ns();
  const uint32_t pid = static_cast<uint32_t>(::getpid());
  std::string out = "{\"traceEvents\":[\n";
  for (size_t i = 0; i < events.size(); ++i) {
    AppendEventJson(events[i], pid, epoch, &out);
    if (i + 1 < events.size()) out += ',';
    out += '\n';
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  std::ofstream f(path, std::ios::trunc | std::ios::binary);
  if (!f.is_open()) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  f << out;
  f.flush();
  if (!f.good()) return Status::Internal("error writing " + path);
  return Status::OK();
}

Status Tracer::MergeFromFile(const std::string& path) {
  auto doc = ParseJsonFile(path);
  RM_RETURN_IF_ERROR(doc.status());
  const JsonValue* events = doc.value().Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return Status::Corruption(path + ": no traceEvents array");
  }
  const int64_t epoch = epoch_ns();
  std::vector<TraceEvent> merged;
  merged.reserve(events->items().size());
  for (const JsonValue& ev : events->items()) {
    if (!ev.is_object()) {
      return Status::Corruption(path + ": non-object trace event");
    }
    const JsonValue* name = ev.Find("name");
    const JsonValue* ts = ev.Find("ts");
    const JsonValue* pid = ev.Find("pid");
    if (name == nullptr || !name->is_string() || ts == nullptr ||
        !ts->is_number() || pid == nullptr || !pid->is_number()) {
      return Status::Corruption(path + ": trace event missing name/ts/pid");
    }
    TraceEvent e;
    e.name = name->string_value();
    if (const JsonValue* cat = ev.Find("cat"); cat && cat->is_string()) {
      e.category = cat->string_value();
    }
    if (const JsonValue* ph = ev.Find("ph");
        ph && ph->is_string() && !ph->string_value().empty()) {
      e.phase = ph->string_value()[0];
    }
    e.pid = static_cast<uint32_t>(pid->number_value());
    if (const JsonValue* tid = ev.Find("tid"); tid && tid->is_number()) {
      e.tid = static_cast<uint32_t>(tid->number_value());
    }
    // File timestamps are epoch-relative microseconds; store them back as
    // raw nanoseconds so serialization's epoch subtraction round-trips.
    e.ts_ns = epoch + static_cast<int64_t>(ts->number_value() * 1000.0);
    if (const JsonValue* dur = ev.Find("dur"); dur && dur->is_number()) {
      e.dur_ns = static_cast<int64_t>(dur->number_value() * 1000.0);
    }
    merged.push_back(std::move(e));
  }
  MutexLock lock(&mu_);
  retired_.insert(retired_.end(), std::make_move_iterator(merged.begin()),
                  std::make_move_iterator(merged.end()));
  return Status::OK();
}

void Tracer::Reset() {
  MutexLock lock(&mu_);
  retired_.clear();
  for (ThreadBuffer* buffer : threads_) {
    MutexLock buffer_lock(&buffer->mu);
    buffer->events.clear();
  }
  SetEpochNs(0);
}

size_t Tracer::event_count() {
  MutexLock lock(&mu_);
  size_t n = retired_.size();
  for (ThreadBuffer* buffer : threads_) {
    MutexLock buffer_lock(&buffer->mu);
    n += buffer->events.size();
  }
  return n;
}

}  // namespace robustmap
