#ifndef ROBUSTMAP_COMMON_TRACE_H_
#define ROBUSTMAP_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"

namespace robustmap {

/// Monotonic wall-clock reading in nanoseconds (CLOCK_MONOTONIC — shared
/// across processes on the same boot, which is what lets a coordinator
/// hand its epoch to worker processes and get aligned timestamps back).
///
/// This is the tree's ONE sanctioned wall-clock entry point: the
/// determinism lint (rule wall-clock-outside-trace) rejects any direct
/// `steady_clock` use outside the trace/telemetry modules, so every wall
/// reading — spans, tile wall_seconds metadata, bench stopwatches — flows
/// through here. Everything it feeds is sidecar-only: no map byte may ever
/// depend on a value derived from this function.
int64_t MonotonicNowNs();

/// One Chrome-trace event: a complete span ("X") or an instant ("i").
/// Timestamps are raw `MonotonicNowNs` readings; the tracer subtracts its
/// epoch when serializing. `pid` is 0 for events recorded in this process
/// (stamped with the real pid at write time) and the originating pid for
/// events merged in from a worker's sidecar file.
struct TraceEvent {
  std::string name;
  std::string category;
  char phase = 'X';
  uint32_t pid = 0;
  uint32_t tid = 0;
  int64_t ts_ns = 0;
  int64_t dur_ns = 0;
};

/// Process-wide span/instant tracer emitting Chrome-trace-event JSON
/// (loadable in Perfetto / chrome://tracing). Disabled by default: the
/// fast path of every record call is a single relaxed atomic load, so an
/// untraced sweep pays nothing. Threads record into per-thread buffers
/// (each under its own uncontended mutex) registered with the tracer;
/// buffers of exited threads are retired into the tracer so no event is
/// lost. The singleton is intentionally leaked — thread-exit destructors
/// must always find it alive.
///
/// Cross-process story: a coordinator passes `epoch_ns()` to its workers
/// (`sweep_worker --trace-epoch=N`); each worker traces to a per-tile
/// sidecar file which the coordinator merges with `MergeFromFile`, so one
/// trace shows coordinator and worker spans on a common time axis.
class Tracer {
 public:
  static Tracer& Get();

  /// Turns recording on; captures the epoch now if none was set yet.
  void Enable();
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// The zero of the serialized time axis, as a raw `MonotonicNowNs`
  /// value. Coordinators set it implicitly via `Enable`; workers set it
  /// explicitly to their coordinator's epoch so merged spans align.
  void SetEpochNs(int64_t epoch_ns) {
    epoch_ns_.store(epoch_ns, std::memory_order_relaxed);
  }
  int64_t epoch_ns() const {
    return epoch_ns_.load(std::memory_order_relaxed);
  }

  /// Records a complete span ("X"). No-op while disabled.
  void AddComplete(std::string name, std::string category, int64_t start_ns,
                   int64_t dur_ns);

  /// Records an instant event ("i") at now. No-op while disabled.
  void AddInstant(std::string name, std::string category);

  /// Serializes every buffered event (live threads' and retired) as
  /// `{"traceEvents":[...]}`, one event object per line, timestamps in
  /// microseconds relative to the epoch. Events stay buffered, so a
  /// driver may write intermediate snapshots.
  Status WriteFile(const std::string& path);

  /// Appends the events of another trace file (a worker's sidecar, written
  /// against the same epoch) to this tracer's retired buffer.
  Status MergeFromFile(const std::string& path);

  /// Drops every buffered event and the epoch. For forked children (which
  /// inherit the parent's buffers but must report only their own work) and
  /// for tests. Keeps the enabled flag as-is.
  void Reset();

  /// Number of currently buffered events (drains nothing). For tests.
  size_t event_count();

 private:
  struct ThreadBuffer {
    // Assigned once at registration (under the tracer's mu_), immutable
    // after — readable without the buffer's own lock.
    uint32_t tid = 0;
    Mutex mu;
    std::vector<TraceEvent> events GUARDED_BY(mu);
  };

  Tracer() = default;
  ThreadBuffer* ThisThreadBuffer();
  void RetireThread(ThreadBuffer* buffer);
  std::vector<TraceEvent> SnapshotEvents();

  friend class TracerThreadOwner;

  std::atomic<bool> enabled_{false};
  std::atomic<int64_t> epoch_ns_{0};
  Mutex mu_;
  std::vector<ThreadBuffer*> threads_ GUARDED_BY(mu_);
  std::vector<TraceEvent> retired_ GUARDED_BY(mu_);
  uint32_t next_tid_ GUARDED_BY(mu_) = 0;
};

// Tracing compiles out entirely with -DROBUSTMAP_TRACING_ENABLED=0: the
// RAII span below becomes an empty object, so even the disabled-path
// atomic load vanishes from instrumented code.
#ifndef ROBUSTMAP_TRACING_ENABLED
#define ROBUSTMAP_TRACING_ENABLED 1
#endif

#if ROBUSTMAP_TRACING_ENABLED

/// RAII complete-span recorder: times its own scope and hands the span to
/// the tracer on destruction. When the tracer is disabled at construction
/// time the span records nothing (and never looks at the clock).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "sweep") {
    if (Tracer::Get().enabled()) {
      name_ = name;
      category_ = category;
      start_ns_ = MonotonicNowNs();
    }
  }

  /// Dynamic-name form; the string is only built when tracing is on, so
  /// guard call sites that format names with `Tracer::Get().enabled()`.
  TraceSpan(std::string name, const char* category) {
    if (Tracer::Get().enabled()) {
      name_ = std::move(name);
      category_ = category;
      start_ns_ = MonotonicNowNs();
    }
  }

  ~TraceSpan() {
    if (start_ns_ != 0) {
      Tracer::Get().AddComplete(std::move(name_), category_, start_ns_,
                                MonotonicNowNs() - start_ns_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  std::string name_;
  const char* category_ = "";
  int64_t start_ns_ = 0;
};

#else  // !ROBUSTMAP_TRACING_ENABLED

class TraceSpan {
 public:
  explicit TraceSpan(const char*, const char* = "sweep") {}
  TraceSpan(std::string, const char*) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
};

#endif  // ROBUSTMAP_TRACING_ENABLED

}  // namespace robustmap

#endif  // ROBUSTMAP_COMMON_TRACE_H_
