#include "common/minijson.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace robustmap {

namespace {

/// Recursive-descent single-document parser. Depth is bounded so a
/// maliciously nested (or corrupt) sidecar cannot blow the stack.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    auto v = ParseValue(0);
    RM_RETURN_IF_ERROR(v.status());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing content after the JSON document");
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      auto s = ParseString();
      RM_RETURN_IF_ERROR(s.status());
      return JsonValue::String(std::move(s).value());
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return JsonValue::Bool(true);
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return JsonValue::Bool(false);
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return JsonValue();
    }
    return ParseNumber();
  }

  Result<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    JsonValue obj = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return obj;
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected a string key");
      }
      auto key = ParseString();
      RM_RETURN_IF_ERROR(key.status());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      auto value = ParseValue(depth + 1);
      RM_RETURN_IF_ERROR(value.status());
      obj.Set(std::move(key).value(), std::move(value).value());
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return obj;
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    JsonValue arr = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return arr;
    for (;;) {
      auto value = ParseValue(depth + 1);
      RM_RETURN_IF_ERROR(value.status());
      arr.Append(std::move(value).value());
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return arr;
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return Error("dangling escape");
        const char e = text_[pos_ + 1];
        pos_ += 2;
        switch (e) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + static_cast<size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Error("bad hex digit in \\u escape");
              }
            }
            pos_ += 4;
            // UTF-8 encode the BMP codepoint (surrogate pairs are beyond
            // what our own sidecar writers emit; a lone surrogate encodes
            // as its raw codepoint rather than failing the whole parse).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Error("unknown escape");
        }
        continue;
      }
      out.push_back(c);
      ++pos_;
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
      return Error("malformed number '" + token + "'");
    }
    return JsonValue::Number(value);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

Result<JsonValue> ParseJsonFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.is_open()) {
    return Status::NotFound("cannot open " + path + " for reading");
  }
  std::ostringstream os;
  os << f.rdbuf();
  if (f.bad()) return Status::Internal("error reading " + path);
  auto parsed = ParseJson(os.str());
  if (!parsed.ok()) {
    return Status::Corruption(path + ": " + parsed.status().message());
  }
  return parsed;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace robustmap
