#ifndef ROBUSTMAP_COMMON_MINIJSON_H_
#define ROBUSTMAP_COMMON_MINIJSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace robustmap {

/// A minimal read-side JSON value — just enough for the observability
/// sidecars this tree writes itself (trace-event files, telemetry.json):
/// objects, arrays, strings, numbers, booleans, null. Not a general JSON
/// library: no streaming, no document editing, strict single-document
/// parses only. Object members keep file order; `Find` returns the first
/// member with the key.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue Bool(bool b) {
    JsonValue v;
    v.kind_ = Kind::kBool;
    v.bool_ = b;
    return v;
  }
  static JsonValue Number(double d) {
    JsonValue v;
    v.kind_ = Kind::kNumber;
    v.number_ = d;
    return v;
  }
  static JsonValue String(std::string s) {
    JsonValue v;
    v.kind_ = Kind::kString;
    v.string_ = std::move(s);
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// First member with `key`, or nullptr. Objects only.
  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : members_) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  void Append(JsonValue v) { items_.push_back(std::move(v)); }
  void Set(std::string key, JsonValue v) {
    members_.emplace_back(std::move(key), std::move(v));
  }

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses exactly one JSON document (trailing whitespace allowed, anything
/// else after it is an error). Errors carry a byte offset.
Result<JsonValue> ParseJson(const std::string& text);

/// Reads and parses a whole file.
Result<JsonValue> ParseJsonFile(const std::string& path);

/// Escapes `s` for embedding inside a JSON string literal (quotes,
/// backslashes, and control characters; no surrounding quotes).
std::string JsonEscape(const std::string& s);

}  // namespace robustmap

#endif  // ROBUSTMAP_COMMON_MINIJSON_H_
