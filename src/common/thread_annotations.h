#ifndef ROBUSTMAP_COMMON_THREAD_ANNOTATIONS_H_
#define ROBUSTMAP_COMMON_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis attribute macros.
///
/// These turn the tree's locking discipline into compile-time checked
/// contracts: a `Mutex` (common/mutex.h) is a *capability*, data it
/// protects is declared `GUARDED_BY(mu_)`, and functions state what they
/// acquire (`ACQUIRE`), release (`RELEASE`), require already held
/// (`REQUIRES`), or must be called without (`EXCLUDES`). On Clang,
/// `-Wthread-safety -Wthread-safety-beta` (promoted to errors in the
/// default build, see the root CMakeLists) rejects any access that
/// violates a declared contract — an unguarded read, a missing lock, a
/// double acquire, a lock-escape by reference — before the code ever
/// runs. On every other compiler the macros expand to nothing, so the
/// annotations cost zero and gate nothing.
///
/// Policy (see README "Static analysis"):
///   * new mutexes must be `robustmap::Mutex`, never raw `std::mutex` —
///     the analysis only sees annotated types (machine-enforced by the
///     `unannotated-mutex` rule in tools/determinism_lint.py);
///   * every data member a mutex protects carries `GUARDED_BY`;
///   * `NO_THREAD_SAFETY_ANALYSIS` requires a comment justifying why the
///     analysis cannot see the invariant;
///   * a change that introduces a new attribute must come with a
///     negative-compile fixture under tools/testdata/thread_safety/
///     proving the analysis actually rejects its violation.

#if defined(__clang__) && (!defined(SWIG))
#define RM_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define RM_THREAD_ANNOTATION_(x)  // no-op: analysis is Clang-only
#endif

/// Declares a class to be a capability (lockable) type; the string names
/// the capability kind in diagnostics ("mutex 'mu_' is still held ...").
#define CAPABILITY(x) RM_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII class whose lifetime acquires/releases a capability
/// (constructor ACQUIRE, destructor RELEASE), like `MutexLock`.
#define SCOPED_CAPABILITY RM_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while holding the named capability.
#define GUARDED_BY(x) RM_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is protected by the named capability
/// (the pointer itself may be read freely).
#define PT_GUARDED_BY(x) RM_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function that may only be called while holding the named capabilities
/// exclusively / shared; it does not acquire or release them.
#define REQUIRES(...) \
  RM_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  RM_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function that acquires the named capabilities (held on return) or
/// releases them (must be held on entry).
#define ACQUIRE(...) RM_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  RM_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) RM_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  RM_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// Function that acquires the capability only when it returns the given
/// boolean value (TryLock-style APIs).
#define TRY_ACQUIRE(...) \
  RM_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Function that must NOT be called while holding the named capabilities
/// (deadlock prevention: it acquires them itself, or it blocks on work
/// that does).
#define EXCLUDES(...) RM_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function asserting (at runtime) that the capability is held; teaches
/// the analysis about invariants it cannot derive.
#define ASSERT_CAPABILITY(x) RM_THREAD_ANNOTATION_(assert_capability(x))

/// Function returning a reference to the named capability (lock
/// accessors).
#define RETURN_CAPABILITY(x) RM_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Use only with a
/// comment justifying why the invariant is invisible to the analysis
/// (init/teardown code, lock handoff across threads, ...).
#define NO_THREAD_SAFETY_ANALYSIS \
  RM_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // ROBUSTMAP_COMMON_THREAD_ANNOTATIONS_H_
