#ifndef ROBUSTMAP_COMMON_PERMUTATION_H_
#define ROBUSTMAP_COMMON_PERMUTATION_H_

#include <cstdint>

namespace robustmap {

/// Invertible pseudo-random permutation of [0, 2^bits), bits even, 2..62.
///
/// Implemented as a 4-round balanced Feistel network over `bits/2`-bit
/// halves. The permutation is the backbone of procedural storage: column
/// values are defined as `Permute(rid)`-derived, and index lookups invert
/// them with `Inverse(value)`, so both a table page and an index leaf can be
/// synthesized on demand without materializing 2^26 rows.
class FeistelPermutation {
 public:
  /// `bits` must be even and in [2, 62]; `seed` selects the permutation.
  FeistelPermutation(int bits, uint64_t seed);

  /// Domain size 2^bits.
  uint64_t size() const { return uint64_t{1} << bits_; }

  /// Forward mapping; `x` must be < size().
  uint64_t Permute(uint64_t x) const;

  /// Inverse mapping: Inverse(Permute(x)) == x for all x < size().
  uint64_t Inverse(uint64_t y) const;

 private:
  static constexpr int kRounds = 4;

  uint64_t RoundFunction(int round, uint64_t half) const;

  int bits_;
  int half_bits_;
  uint64_t half_mask_;
  uint64_t keys_[kRounds];
};

}  // namespace robustmap

#endif  // ROBUSTMAP_COMMON_PERMUTATION_H_
