#ifndef ROBUSTMAP_COMMON_MATH_UTIL_H_
#define ROBUSTMAP_COMMON_MATH_UTIL_H_

#include <cstdint>
#include <vector>

namespace robustmap {

/// Builds a geometric grid of selectivities 2^min_log2 .. 2^max_log2
/// (inclusive), one point per power of two. Used for the paper's log-scale
/// parameter axes ("result sizes differ by a factor of 2 between data
/// points"). min_log2 <= max_log2 <= 0.
std::vector<double> Log2Grid(int min_log2, int max_log2);

/// Geometric grid with `steps_per_octave` points per factor-of-two.
std::vector<double> Log2GridFine(int min_log2, int max_log2,
                                 int steps_per_octave);

/// floor(log2(x)) for x >= 1.
int FloorLog2(uint64_t x);

/// Expected number of distinct pages touched when fetching `rows` uniformly
/// random rows from a table of `pages` pages with `rows_per_page` rows each
/// (Yao's formula approximation, exact in expectation for sampling with
/// replacement).
double ExpectedDistinctPages(double rows, double pages, double rows_per_page);

/// Linear interpolation helper.
double Lerp(double a, double b, double t);

/// Clamps x into [lo, hi].
double Clamp(double x, double lo, double hi);

/// True if |a - b| <= tol * max(|a|, |b|, 1).
bool ApproxEqual(double a, double b, double tol);

/// Geometric mean of a non-empty vector of positive values.
double GeometricMean(const std::vector<double>& values);

/// p-th percentile (0..100) of values (copies and sorts internally).
double Percentile(std::vector<double> values, double p);

}  // namespace robustmap

#endif  // ROBUSTMAP_COMMON_MATH_UTIL_H_
