#ifndef ROBUSTMAP_STORAGE_TABLE_H_
#define ROBUSTMAP_STORAGE_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "io/run_context.h"
#include "storage/row.h"

namespace robustmap {

/// Abstract row store. Two implementations exist:
///
///   * `HeapTable`      — a real slotted-page heap file whose bytes live in
///                        process memory (the simulated "disk contents");
///                        used by tests, examples, and small-scale studies.
///   * `ProceduralTable`— a synthetic table of 2^n rows whose page contents
///                        are derived on demand from invertible permutations;
///                        used for paper-scale sweeps.
///
/// Both charge identical I/O through the `RunContext`, so operators are
/// oblivious to which one they run on.
class Table {
 public:
  virtual ~Table() = default;

  virtual uint64_t num_rows() const = 0;
  virtual uint32_t num_columns() const = 0;
  virtual uint32_t rows_per_page() const = 0;

  /// First global device page of this table's extent.
  virtual uint64_t base_page() const = 0;

  uint64_t num_pages() const {
    uint64_t rpp = rows_per_page();
    return (num_rows() + rpp - 1) / rpp;
  }

  /// Global device page holding `rid`.
  uint64_t PageOfRid(Rid rid) const {
    return base_page() + rid / rows_per_page();
  }

  /// Reads table page `page_no` (0-based within the table), appending its
  /// rows to `out`. Charges one logical page read; `cacheable` selects
  /// whether the buffer pool admits the page (large scans pass false to
  /// model ring-buffer scan reads).
  virtual Status ReadPage(RunContext* ctx, uint64_t page_no, bool cacheable,
                          std::vector<Row>* out) const = 0;

  /// Random fetch of a single row. Charges one logical (pool-cached) page
  /// read plus per-row reconstruction CPU.
  virtual Status FetchRow(RunContext* ctx, Rid rid, Row* out) const = 0;
};

}  // namespace robustmap

#endif  // ROBUSTMAP_STORAGE_TABLE_H_
