#include "storage/heap_table.h"

#include <cassert>
#include <cstring>

namespace robustmap {

namespace {
void StoreI64(uint8_t* p, int64_t v) {
  std::memcpy(p, &v, sizeof(v));
}
int64_t LoadI64(const uint8_t* p) {
  int64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
}  // namespace

Result<std::unique_ptr<HeapTable>> HeapTable::Create(
    SimDevice* device, uint64_t max_rows, const HeapTableOptions& opts) {
  if (opts.num_columns == 0 || opts.num_columns > kMaxColumns) {
    return Status::InvalidArgument("num_columns must be in [1, 4]");
  }
  if (opts.row_size_bytes < 8u * opts.num_columns + 4u) {
    return Status::InvalidArgument("row_size_bytes too small for columns");
  }
  uint32_t page_size = device->model().params().page_size_bytes;
  uint32_t rpp = (page_size - static_cast<uint32_t>(kPageHeaderBytes)) /
                 opts.row_size_bytes;
  if (rpp == 0) {
    return Status::InvalidArgument("row_size_bytes exceeds page capacity");
  }
  uint64_t max_pages = (max_rows + rpp - 1) / rpp;
  if (max_pages == 0) max_pages = 1;
  uint64_t base = device->AllocateExtent(max_pages);
  return std::unique_ptr<HeapTable>(
      new HeapTable(device, max_pages, opts, rpp, base));
}

HeapTable::HeapTable(SimDevice* device, uint64_t max_pages,
                     const HeapTableOptions& opts, uint32_t rows_per_page,
                     uint64_t base_page)
    : device_(device),
      opts_(opts),
      rows_per_page_(rows_per_page),
      base_page_(base_page),
      max_pages_(max_pages) {
  (void)device_;
}

Status HeapTable::Append(RunContext* ctx,
                         const std::array<int64_t, kMaxColumns>& cols) {
  if (finished_) return Status::InvalidArgument("Append after Finish");
  uint64_t page_no = num_rows_ / rows_per_page_;
  uint32_t slot = static_cast<uint32_t>(num_rows_ % rows_per_page_);
  if (page_no >= max_pages_) {
    return Status::ResourceExhausted("heap table extent full");
  }
  if (pages_.size() <= page_no) {
    pages_.resize(page_no + 1);
  }
  auto& page = pages_[page_no];
  if (page.empty()) {
    page.assign(ctx->device->model().params().page_size_bytes, 0);
  }
  uint8_t* row = page.data() + RowOffset(slot);
  for (uint32_t c = 0; c < opts_.num_columns; ++c) {
    StoreI64(row + 8 * c, cols[c]);
  }
  // Slot count lives in the page header.
  StoreI64(page.data(), static_cast<int64_t>(slot) + 1);
  ++num_rows_;
  if (slot + 1 == rows_per_page_) {
    ctx->device->WritePage(base_page_ + page_no);
  }
  ctx->ChargeCpuOps(1, ctx->cpu.copy_row_seconds);
  return Status::OK();
}

Status HeapTable::Finish(RunContext* ctx) {
  if (finished_) return Status::OK();
  finished_ = true;
  if (num_rows_ % rows_per_page_ != 0) {
    ctx->device->WritePage(base_page_ + num_rows_ / rows_per_page_);
  }
  return Status::OK();
}

Status HeapTable::ReadPage(RunContext* ctx, uint64_t page_no, bool cacheable,
                           std::vector<Row>* out) const {
  if (page_no >= num_pages()) {
    return Status::OutOfRange("page beyond heap table");
  }
  ctx->ReadPage(base_page_ + page_no, cacheable);
  if (page_no >= pages_.size() || pages_[page_no].empty()) {
    return Status::Corruption("unwritten heap page");
  }
  const auto& page = pages_[page_no];
  uint32_t slots = static_cast<uint32_t>(LoadI64(page.data()));
  for (uint32_t s = 0; s < slots; ++s) {
    Row r;
    r.rid = page_no * rows_per_page_ + s;
    const uint8_t* row = page.data() + RowOffset(s);
    for (uint32_t c = 0; c < opts_.num_columns; ++c) {
      r.SetCol(c, LoadI64(row + 8 * c));
    }
    out->push_back(r);
  }
  return Status::OK();
}

Status HeapTable::FetchRow(RunContext* ctx, Rid rid, Row* out) const {
  if (rid >= num_rows_) return Status::OutOfRange("rid beyond heap table");
  uint64_t page_no = rid / rows_per_page_;
  uint32_t slot = static_cast<uint32_t>(rid % rows_per_page_);
  ctx->ReadPage(base_page_ + page_no, /*cacheable=*/true);
  ctx->ChargeCpuOps(1, ctx->cpu.row_fetch_seconds);
  const auto& page = pages_[page_no];
  if (page.empty()) return Status::Corruption("unwritten heap page");
  out->rid = rid;
  const uint8_t* row = page.data() + RowOffset(slot);
  for (uint32_t c = 0; c < opts_.num_columns; ++c) {
    out->SetCol(c, LoadI64(row + 8 * c));
  }
  return Status::OK();
}

int64_t HeapTable::RawValue(Rid rid, uint32_t col) const {
  uint64_t page_no = rid / rows_per_page_;
  uint32_t slot = static_cast<uint32_t>(rid % rows_per_page_);
  return LoadI64(pages_[page_no].data() + RowOffset(slot) + 8 * col);
}

}  // namespace robustmap
