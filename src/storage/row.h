#ifndef ROBUSTMAP_STORAGE_ROW_H_
#define ROBUSTMAP_STORAGE_ROW_H_

#include <array>
#include <cstdint>

namespace robustmap {

/// Maximum number of columns a table (or the key of an index) may have.
/// The paper's workloads restrict at most two columns per predicate set plus
/// payload; four keeps rows POD and cache-friendly.
inline constexpr uint32_t kMaxColumns = 4;

/// Row identifier: the ordinal of the row within its table. The owning table
/// maps rids to (page, slot) via its `rows_per_page`.
using Rid = uint64_t;

inline constexpr Rid kInvalidRid = ~Rid{0};

/// A materialized row (or index-entry projection) flowing between operators.
///
/// `cols[i]` holds the value of table column `i`. Operators that produce
/// rid-only streams (index scans feeding fetch/join operators) leave columns
/// they do not cover untouched; `valid_cols` is a bitmask of which column
/// slots are populated.
struct Row {
  Rid rid = kInvalidRid;
  std::array<int64_t, kMaxColumns> cols{};
  uint32_t valid_cols = 0;  ///< bit i set => cols[i] is populated

  void SetCol(uint32_t i, int64_t v) {
    cols[i] = v;
    valid_cols |= (1u << i);
  }
  bool HasCol(uint32_t i) const { return (valid_cols & (1u << i)) != 0; }
};

}  // namespace robustmap

#endif  // ROBUSTMAP_STORAGE_ROW_H_
