#include "storage/procedural_table.h"

namespace robustmap {

Result<std::unique_ptr<ProceduralTable>> ProceduralTable::Create(
    SimDevice* device, const ProceduralTableOptions& opts) {
  if (opts.row_bits < 2 || opts.row_bits > 40 || opts.row_bits % 2 != 0) {
    return Status::InvalidArgument("row_bits must be even and in [2, 40]");
  }
  if (opts.value_bits < 1 || opts.value_bits > opts.row_bits) {
    return Status::InvalidArgument("value_bits must be in [1, row_bits]");
  }
  if (opts.num_columns == 0 || opts.num_columns > kMaxColumns) {
    return Status::InvalidArgument("num_columns must be in [1, 4]");
  }
  if (opts.rows_per_page == 0) {
    return Status::InvalidArgument("rows_per_page must be positive");
  }
  uint64_t rows = uint64_t{1} << opts.row_bits;
  uint64_t pages = (rows + opts.rows_per_page - 1) / opts.rows_per_page;
  uint64_t base = device->AllocateExtent(pages);
  return std::unique_ptr<ProceduralTable>(
      new ProceduralTable(device, opts, base));
}

ProceduralTable::ProceduralTable(SimDevice* device,
                                 const ProceduralTableOptions& opts,
                                 uint64_t base_page)
    : device_(device),
      opts_(opts),
      num_rows_(uint64_t{1} << opts.row_bits),
      base_page_(base_page) {
  (void)device_;
  perms_.reserve(opts.num_columns);
  for (uint32_t c = 0; c < opts.num_columns; ++c) {
    perms_.emplace_back(opts.row_bits, opts.seed * 0x9e3779b9u + c + 1);
  }
}

int64_t ProceduralTable::ValueAt(Rid rid, uint32_t col) const {
  return static_cast<int64_t>(perms_[col].Permute(rid) >> value_shift());
}

Status ProceduralTable::ReadPage(RunContext* ctx, uint64_t page_no,
                                 bool cacheable, std::vector<Row>* out) const {
  if (page_no >= num_pages()) {
    return Status::OutOfRange("page beyond procedural table");
  }
  ctx->ReadPage(base_page_ + page_no, cacheable);
  Rid first = page_no * opts_.rows_per_page;
  Rid last = std::min<uint64_t>(first + opts_.rows_per_page, num_rows_);
  for (Rid rid = first; rid < last; ++rid) {
    Row r;
    r.rid = rid;
    for (uint32_t c = 0; c < opts_.num_columns; ++c) {
      r.SetCol(c, ValueAt(rid, c));
    }
    out->push_back(r);
  }
  return Status::OK();
}

Status ProceduralTable::FetchRow(RunContext* ctx, Rid rid, Row* out) const {
  if (rid >= num_rows_) return Status::OutOfRange("rid beyond table");
  ctx->ReadPage(PageOfRid(rid), /*cacheable=*/true);
  ctx->ChargeCpuOps(1, ctx->cpu.row_fetch_seconds);
  out->rid = rid;
  for (uint32_t c = 0; c < opts_.num_columns; ++c) {
    out->SetCol(c, ValueAt(rid, c));
  }
  return Status::OK();
}

}  // namespace robustmap
