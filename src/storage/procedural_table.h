#ifndef ROBUSTMAP_STORAGE_PROCEDURAL_TABLE_H_
#define ROBUSTMAP_STORAGE_PROCEDURAL_TABLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/permutation.h"
#include "common/status.h"
#include "storage/table.h"

namespace robustmap {

/// Options for a procedural (synthetic) table.
struct ProceduralTableOptions {
  /// Table has 2^row_bits rows (row_bits must be even for the Feistel
  /// permutation; 20 => 1M rows, 26 => 67M rows ~ paper scale).
  int row_bits = 20;

  /// Column values are uniform over [0, 2^value_bits); each value occurs
  /// exactly 2^(row_bits - value_bits) times. value_bits <= row_bits.
  int value_bits = 14;

  uint32_t num_columns = 2;
  uint32_t rows_per_page = 64;  ///< 128-byte rows on 8 KiB pages
  uint64_t seed = 42;
};

/// Synthetic table of 2^n rows whose contents are *derived*, not stored.
///
/// Column `c` of row `rid` has value `perm_c(rid) >> (row_bits - value_bits)`
/// where `perm_c` is an invertible Feistel permutation. This gives uniform,
/// pairwise (pseudo-)independent columns with exactly calibrated predicate
/// selectivities, and lets index leaves be synthesized on demand: the k-th
/// smallest raw value of column c belongs to row `perm_c^{-1}(k)`.
///
/// I/O charging is identical to `HeapTable`; only the byte materialization
/// differs. This is the substitution for the paper's 60M-row TPC-H lineitem
/// (DESIGN.md §2).
class ProceduralTable : public Table {
 public:
  static Result<std::unique_ptr<ProceduralTable>> Create(
      SimDevice* device, const ProceduralTableOptions& opts);

  // Table interface.
  uint64_t num_rows() const override { return num_rows_; }
  uint32_t num_columns() const override { return opts_.num_columns; }
  uint32_t rows_per_page() const override { return opts_.rows_per_page; }
  uint64_t base_page() const override { return base_page_; }
  Status ReadPage(RunContext* ctx, uint64_t page_no, bool cacheable,
                  std::vector<Row>* out) const override;
  Status FetchRow(RunContext* ctx, Rid rid, Row* out) const override;

  /// Value of column `col` for row `rid` (no cost; used by indexes and
  /// verification).
  int64_t ValueAt(Rid rid, uint32_t col) const;

  /// The permutation backing column `col` (procedural indexes invert it).
  const FeistelPermutation& column_permutation(uint32_t col) const {
    return perms_[col];
  }

  int row_bits() const { return opts_.row_bits; }
  int value_bits() const { return opts_.value_bits; }
  /// Right-shift turning a raw permuted row id into a column value.
  int value_shift() const { return opts_.row_bits - opts_.value_bits; }
  /// Number of rows sharing each column value: 2^(row_bits - value_bits).
  uint64_t rows_per_value() const { return uint64_t{1} << value_shift(); }
  /// Size of the value domain: 2^value_bits.
  int64_t value_domain() const { return int64_t{1} << opts_.value_bits; }

 private:
  ProceduralTable(SimDevice* device, const ProceduralTableOptions& opts,
                  uint64_t base_page);

  SimDevice* device_;
  ProceduralTableOptions opts_;
  uint64_t num_rows_;
  uint64_t base_page_;
  std::vector<FeistelPermutation> perms_;
};

}  // namespace robustmap

#endif  // ROBUSTMAP_STORAGE_PROCEDURAL_TABLE_H_
