#ifndef ROBUSTMAP_STORAGE_HEAP_TABLE_H_
#define ROBUSTMAP_STORAGE_HEAP_TABLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "io/run_context.h"
#include "storage/table.h"

namespace robustmap {

/// Options for creating a heap table.
struct HeapTableOptions {
  uint32_t num_columns = 2;
  /// Bytes reserved per row on a page (padding models real-world payload
  /// width). Must be >= 8 * num_columns + 4 (slot header).
  uint32_t row_size_bytes = 128;
};

/// A real heap file: fixed-size rows in slotted 8 KiB pages, with the page
/// bytes held in process memory standing in for disk contents. Appends and
/// reads charge the simulated device through the `RunContext`.
class HeapTable : public Table {
 public:
  /// Creates an empty table with capacity for `max_rows` rows (the extent is
  /// allocated eagerly so page ids are stable).
  static Result<std::unique_ptr<HeapTable>> Create(
      SimDevice* device, uint64_t max_rows, const HeapTableOptions& opts);

  /// Appends a row; charges a page write each time a page fills (and on
  /// `Finish()` for the final partial page).
  Status Append(RunContext* ctx, const std::array<int64_t, kMaxColumns>& cols);

  /// Flushes the trailing partial page. Call once after the last Append.
  Status Finish(RunContext* ctx);

  // Table interface.
  uint64_t num_rows() const override { return num_rows_; }
  uint32_t num_columns() const override { return opts_.num_columns; }
  uint32_t rows_per_page() const override { return rows_per_page_; }
  uint64_t base_page() const override { return base_page_; }
  Status ReadPage(RunContext* ctx, uint64_t page_no, bool cacheable,
                  std::vector<Row>* out) const override;
  Status FetchRow(RunContext* ctx, Rid rid, Row* out) const override;

  /// Direct (cost-free) access for verification in tests.
  int64_t RawValue(Rid rid, uint32_t col) const;

 private:
  HeapTable(SimDevice* device, uint64_t max_pages, const HeapTableOptions& opts,
            uint32_t rows_per_page, uint64_t base_page);

  /// Serialized little-endian column values for one row within a page.
  size_t RowOffset(uint32_t slot) const {
    return kPageHeaderBytes + static_cast<size_t>(slot) * opts_.row_size_bytes;
  }

  static constexpr size_t kPageHeaderBytes = 16;

  SimDevice* device_;
  HeapTableOptions opts_;
  uint32_t rows_per_page_;
  uint64_t base_page_;
  uint64_t max_pages_;
  uint64_t num_rows_ = 0;
  bool finished_ = false;
  std::vector<std::vector<uint8_t>> pages_;  ///< simulated disk contents
};

}  // namespace robustmap

#endif  // ROBUSTMAP_STORAGE_HEAP_TABLE_H_
