#include "engine/executor.h"

#include <gtest/gtest.h>

#include "engine/query.h"
#include "testing/test_env.h"
#include "workload/distributions.h"

namespace robustmap {
namespace {

using ::robustmap::testing::ProcEnv;

// Every study plan must compute the same (correct) result for the same
// query — the core cross-validation of the 13 plan implementations.
class AllPlansAgreeTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(AllPlansAgreeTest, SameCountsOnProceduralStorage) {
  ProcEnv env;
  Executor executor(env.db());
  auto [sa, sb] = GetParam();
  QuerySpec q = MakeStudyQuery(sa, sb, env.domain());
  uint64_t expected = env.CountMatching(q.pred_a.lo, q.pred_a.hi, q.pred_b.lo,
                                        q.pred_b.hi);
  for (PlanKind kind : AllStudyPlans()) {
    auto m = executor.Run(env.ctx(), kind, q);
    ASSERT_TRUE(m.ok()) << PlanKindLabel(kind) << ": "
                        << m.status().ToString();
    EXPECT_EQ(m.value().output_rows, expected) << PlanKindLabel(kind);
    EXPECT_GT(m.value().seconds, 0) << PlanKindLabel(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SelectivityGrid, AllPlansAgreeTest,
    ::testing::Values(std::make_pair(1.0, 1.0), std::make_pair(0.25, 0.01),
                      std::make_pair(0.01, 0.25), std::make_pair(1.0, 0.002),
                      std::make_pair(0.002, 0.002),
                      std::make_pair(0.0625, 0.5)));

TEST(ExecutorTest, SinglePredicateQueriesWork) {
  ProcEnv env;
  Executor executor(env.db());
  QuerySpec q = MakeStudyQuery(0.125, -1, env.domain());
  uint64_t expected =
      env.CountMatching(q.pred_a.lo, q.pred_a.hi, INT64_MIN, INT64_MAX);
  for (PlanKind kind :
       {PlanKind::kTableScan, PlanKind::kIndexANaive,
        PlanKind::kIndexAImproved, PlanKind::kMergeJoinAB,
        PlanKind::kHashJoinBA, PlanKind::kMdamAB}) {
    auto m = executor.Run(env.ctx(), kind, q);
    ASSERT_TRUE(m.ok()) << PlanKindLabel(kind);
    EXPECT_EQ(m.value().output_rows, expected) << PlanKindLabel(kind);
  }
}

TEST(ExecutorTest, HeapAndProceduralStorageAgree) {
  // The same plans over a real heap/B-tree database must match its own
  // brute force — proving the operators are storage-agnostic.
  VirtualClock clock;
  SimDevice device(DiskParameters{}, &clock);
  LruBufferPool pool(&device, 4096);
  RunContext ctx;
  ctx.clock = &clock;
  ctx.device = &device;
  ctx.pool = &pool;

  HeapDatasetOptions dopts;
  dopts.rows = 4000;
  dopts.domain = 64;
  auto dataset = BuildHeapStudyDataset(&ctx, &device, dopts).ValueOrDie();
  Executor executor(dataset.db());

  uint64_t expected = 0;
  for (Rid rid = 0; rid < dataset.table->num_rows(); ++rid) {
    int64_t a = dataset.table->RawValue(rid, 0);
    int64_t b = dataset.table->RawValue(rid, 1);
    if (a >= 0 && a <= 15 && b >= 16 && b <= 63) ++expected;
  }

  QuerySpec q;
  q.domain = 64;
  q.pred_a = {true, 0, 15, 0.25};
  q.pred_b = {true, 16, 63, 0.75};
  for (PlanKind kind : AllStudyPlans()) {
    auto m = executor.Run(&ctx, kind, q);
    ASSERT_TRUE(m.ok()) << PlanKindLabel(kind);
    EXPECT_EQ(m.value().output_rows, expected) << PlanKindLabel(kind);
  }
}

TEST(ExecutorTest, MissingIndexesAreCleanErrors) {
  ProcEnv env;
  StudyDb db = env.db();
  db.idx_ab = nullptr;
  db.idx_ba = nullptr;
  Executor executor(db);
  QuerySpec q = MakeStudyQuery(0.5, 0.5, env.domain());
  EXPECT_TRUE(executor.BuildPlan(PlanKind::kMdamAB, q)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(executor.BuildPlan(PlanKind::kCoverBABitmapFetch, q)
                  .status()
                  .IsInvalidArgument());
  // System A plans still work.
  EXPECT_TRUE(executor.Run(env.ctx(), PlanKind::kMergeJoinAB, q).ok());
}

TEST(ExecutorTest, RunsAreColdAndReproducible) {
  ProcEnv env;
  Executor executor(env.db());
  QuerySpec q = MakeStudyQuery(0.03, 0.4, env.domain());
  auto m1 = executor.Run(env.ctx(), PlanKind::kIndexAImproved, q).ValueOrDie();
  // A different plan in between would warm the pool without cold-run resets.
  ASSERT_TRUE(executor.Run(env.ctx(), PlanKind::kTableScan, q).ok());
  auto m2 = executor.Run(env.ctx(), PlanKind::kIndexAImproved, q).ValueOrDie();
  EXPECT_DOUBLE_EQ(m1.seconds, m2.seconds);
  EXPECT_EQ(m1.io.total_reads(), m2.io.total_reads());
}

TEST(ExecutorTest, MeasurementIncludesIoBreakdown) {
  ProcEnv env;
  Executor executor(env.db());
  QuerySpec q = MakeStudyQuery(1.0, 1.0, env.domain());
  auto m = executor.Run(env.ctx(), PlanKind::kTableScan, q).ValueOrDie();
  EXPECT_GT(m.io.total_reads(), 0u);
  EXPECT_EQ(m.plan_label, "A.tablescan");
}

TEST(ExecutorTest, BuildPlanProducesDistinctShapes) {
  ProcEnv env;
  Executor executor(env.db());
  QuerySpec q = MakeStudyQuery(0.5, 0.5, env.domain());
  std::set<std::string> names;
  for (PlanKind kind : AllStudyPlans()) {
    auto plan = executor.BuildPlan(kind, q);
    ASSERT_TRUE(plan.ok());
    names.insert(plan.value()->DebugName());
  }
  EXPECT_EQ(names.size(), AllStudyPlans().size());
}

}  // namespace
}  // namespace robustmap
