#include "engine/plan.h"

#include <gtest/gtest.h>

#include <set>

#include "engine/plan_enumerator.h"
#include "engine/query.h"
#include "engine/system.h"

namespace robustmap {
namespace {

TEST(PlanTest, ThirteenDistinctStudyPlans) {
  auto plans = AllStudyPlans();
  EXPECT_EQ(plans.size(), static_cast<size_t>(kNumStudyPlans));
  std::set<PlanKind> distinct(plans.begin(), plans.end());
  EXPECT_EQ(distinct.size(), plans.size());
}

TEST(PlanTest, LabelsAreUnique) {
  std::set<std::string> labels;
  for (PlanKind k : AllStudyPlans()) labels.insert(PlanKindLabel(k));
  labels.insert(PlanKindLabel(PlanKind::kIndexANaive));
  labels.insert(PlanKindLabel(PlanKind::kIndexBNaive));
  EXPECT_EQ(labels.size(), 15u);
}

TEST(PlanTest, DescriptionsNonEmpty) {
  for (PlanKind k : AllStudyPlans()) {
    EXPECT_FALSE(PlanKindDescription(k).empty());
  }
}

TEST(PlanTest, SystemAttribution) {
  // The paper's §3.3 accounting: 7 + 3 + 3 = 13.
  int a = 0, b = 0, c = 0;
  for (PlanKind k : AllStudyPlans()) {
    switch (PlanKindSystem(k)) {
      case 'A': ++a; break;
      case 'B': ++b; break;
      case 'C': ++c; break;
    }
  }
  EXPECT_EQ(a, 7);
  EXPECT_EQ(b, 3);
  EXPECT_EQ(c, 3);
}

TEST(SystemConfigTest, SystemsExposeTheirPlans) {
  EXPECT_EQ(SystemConfig::SystemA().plans.size(), 7u);
  EXPECT_EQ(SystemConfig::SystemB().plans.size(), 3u);
  EXPECT_EQ(SystemConfig::SystemC().plans.size(), 3u);
  for (PlanKind k : SystemConfig::SystemB().plans) {
    EXPECT_EQ(PlanKindSystem(k), 'B');
  }
  for (PlanKind k : SystemConfig::SystemC().plans) {
    EXPECT_EQ(PlanKindSystem(k), 'C');
  }
}

TEST(PlanEnumeratorTest, PerSystemCountsAndTotal) {
  QuerySpec q = MakeStudyQuery(0.5, 0.5, 1024);
  size_t total = 0;
  for (const SystemConfig& sys : SystemConfig::AllSystems()) {
    total += EnumeratePlans(sys, q).size();
  }
  EXPECT_EQ(total, 13u);
  EXPECT_EQ(EnumerateAllPlans(q).size(), 13u);
}

TEST(PlanEnumeratorTest, DeduplicatesAcrossSystems) {
  QuerySpec q = MakeStudyQuery(0.5, 0.5, 1024);
  auto all = EnumerateAllPlans(q);
  std::set<std::string> labels;
  for (const auto& p : all) labels.insert(p.label);
  EXPECT_EQ(labels.size(), all.size());
}

TEST(QuerySpecTest, MakePredicateCalibration) {
  PredicateSpec p = MakePredicate(0.25, 1024);
  EXPECT_TRUE(p.active);
  EXPECT_EQ(p.lo, 0);
  EXPECT_EQ(p.hi, 255);
  EXPECT_DOUBLE_EQ(p.selectivity, 0.25);
  // Clamps tiny selectivities to at least one value.
  p = MakePredicate(1e-9, 1024);
  EXPECT_EQ(p.hi, 0);
  EXPECT_DOUBLE_EQ(p.selectivity, 1.0 / 1024);
  // Clamps to the full domain.
  p = MakePredicate(5.0, 1024);
  EXPECT_EQ(p.hi, 1023);
  // Negative deactivates.
  EXPECT_FALSE(MakePredicate(-1, 1024).active);
}

TEST(QuerySpecTest, ToStringMentionsPredicates) {
  QuerySpec q = MakeStudyQuery(0.5, -1, 1024);
  EXPECT_NE(q.ToString().find("a in"), std::string::npos);
  EXPECT_EQ(q.ToString().find("b in"), std::string::npos);
}

}  // namespace
}  // namespace robustmap
