// Property: the fractional landmarks of the cost model are scale-invariant
// (DESIGN.md §5). This is what justifies running the paper's 60M-row study
// at 2^16..2^20 rows: break-even *fractions* and cost *ratios* must agree
// across scales, even though absolute times differ by orders of magnitude.

#include <gtest/gtest.h>

#include <cmath>

#include "core/sweep.h"
#include "workload/dataset.h"

namespace robustmap {
namespace {

struct Landmarks {
  double trad_breakeven_log2;      // traditional IS vs. table scan
  double improved_breakeven_log2;  // improved IS vs. table scan
  double improved_full_ratio;      // improved IS / table scan at 100%
  double tablescan_seconds;
};

Landmarks MeasureAt(int row_bits) {
  StudyOptions opts;
  opts.row_bits = row_bits;
  opts.value_bits = row_bits - 4;  // constant duplication across scales
  auto env = StudyEnvironment::Create(opts).ValueOrDie();
  ParameterSpace space = ParameterSpace::OneD(
      Axis::Selectivity("s", -(row_bits - 4), 0));
  auto map = SweepStudyPlans(env->ctx(), env->executor(),
                             {PlanKind::kTableScan, PlanKind::kIndexANaive,
                              PlanKind::kIndexAImproved},
                             space)
                 .ValueOrDie();

  auto crossover_log2 = [&](size_t plan) {
    auto a = map.SecondsOfPlan(plan);
    auto b = map.SecondsOfPlan(0);
    const auto& xs = space.x().values;
    for (size_t i = 0; i + 1 < xs.size(); ++i) {
      if ((a[i] - b[i]) * (a[i + 1] - b[i + 1]) <= 0 && a[i] != b[i]) {
        double l0 = std::log(a[i] / b[i]);
        double l1 = std::log(a[i + 1] / b[i + 1]);
        double t = l0 / (l0 - l1);
        return std::log2(xs[i]) + t * (std::log2(xs[i + 1]) - std::log2(xs[i]));
      }
    }
    return 1.0;  // no crossover
  };

  Landmarks lm;
  lm.trad_breakeven_log2 = crossover_log2(1);
  lm.improved_breakeven_log2 = crossover_log2(2);
  lm.improved_full_ratio =
      map.SecondsOfPlan(2).back() / map.SecondsOfPlan(0).back();
  lm.tablescan_seconds = map.SecondsOfPlan(0).back();
  return lm;
}

class ScaleInvarianceTest : public ::testing::TestWithParam<int> {};

TEST_P(ScaleInvarianceTest, FractionalLandmarksMatchReferenceScale) {
  Landmarks ref = MeasureAt(18);
  Landmarks other = MeasureAt(GetParam());
  // Break-even fractions agree within one octave across scales.
  EXPECT_NEAR(other.trad_breakeven_log2, ref.trad_breakeven_log2, 1.0);
  EXPECT_NEAR(other.improved_breakeven_log2, ref.improved_breakeven_log2,
              1.0);
  // Full-selectivity ratio agrees within 25%.
  EXPECT_NEAR(other.improved_full_ratio / ref.improved_full_ratio, 1.0, 0.25);
}

TEST_P(ScaleInvarianceTest, AbsoluteTimesScaleLinearly) {
  Landmarks ref = MeasureAt(18);
  Landmarks other = MeasureAt(GetParam());
  double expected = std::exp2(GetParam() - 18);
  EXPECT_NEAR(other.tablescan_seconds / ref.tablescan_seconds, expected,
              expected * 0.15);
}

// Invariance holds in the disk-bound regime (>= 2^16 rows / 8 MiB tables);
// below that, fixed probe costs (one random access ~ 32 page transfers)
// rival whole scans and the improved-IS landmarks drift — the paper's
// "other sizes may lead to new insights" caveat (§3).
INSTANTIATE_TEST_SUITE_P(Scales, ScaleInvarianceTest,
                         ::testing::Values(16, 20, 22));

}  // namespace
}  // namespace robustmap
