// Calibration: the Figure 1 landmarks must land where the paper reports
// them (within a factor of ~2 — the cost model is calibrated to the paper's
// fractions, which are scale-invariant; see DESIGN.md §5).

#include <gtest/gtest.h>

#include <cmath>

#include "core/landmarks.h"
#include "core/sweep.h"
#include "workload/dataset.h"

namespace robustmap {
namespace {

class CalibrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    StudyOptions opts;
    opts.row_bits = 18;
    opts.value_bits = 16;
    env_ = StudyEnvironment::Create(opts).ValueOrDie().release();
    ParameterSpace space =
        ParameterSpace::OneD(Axis::Selectivity("sel(a)", -16, 0));
    map_ = new RobustnessMap(
        SweepStudyPlans(env_->ctx(), env_->executor(),
                        {PlanKind::kTableScan, PlanKind::kIndexANaive,
                         PlanKind::kIndexAImproved},
                        space)
            .ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete map_;
    delete env_;
    map_ = nullptr;
    env_ = nullptr;
  }

  static double Crossover(const std::vector<double>& a,
                          const std::vector<double>& b) {
    const auto& xs = map_->space().x().values;
    for (size_t i = 0; i + 1 < xs.size(); ++i) {
      if ((a[i] - b[i]) * (a[i + 1] - b[i + 1]) <= 0 && a[i] != b[i]) {
        double l0 = std::log(a[i] / b[i]);
        double l1 = std::log(a[i + 1] / b[i + 1]);
        double t = l0 / (l0 - l1);
        return std::exp(std::log(xs[i]) +
                        t * (std::log(xs[i + 1]) - std::log(xs[i])));
      }
    }
    return -1;
  }

  static StudyEnvironment* env_;
  static RobustnessMap* map_;
};

StudyEnvironment* CalibrationTest::env_ = nullptr;
RobustnessMap* CalibrationTest::map_ = nullptr;

TEST_F(CalibrationTest, TableScanIsFlat) {
  auto ts = map_->SecondsOfPlan(0);
  double lo = *std::min_element(ts.begin(), ts.end());
  double hi = *std::max_element(ts.begin(), ts.end());
  EXPECT_LT(hi / lo, 1.1);
}

TEST_F(CalibrationTest, TraditionalBreakEvenNearTwoToMinusEleven) {
  // Paper: "the break-even point between table scan and traditional index
  // scan is at about 30K result rows or 2^-11 of the rows in the table."
  double x = Crossover(map_->SecondsOfPlan(1), map_->SecondsOfPlan(0));
  ASSERT_GT(x, 0);
  double log2x = std::log2(x);
  EXPECT_GT(log2x, -12.0);
  EXPECT_LT(log2x, -10.0);
}

TEST_F(CalibrationTest, ImprovedBreakEvenNearTwoToMinusFour) {
  // Paper: "competitive with the table scan all the way up to about 4M
  // result rows or 2^-4 of the rows in the table."
  double x = Crossover(map_->SecondsOfPlan(2), map_->SecondsOfPlan(0));
  ASSERT_GT(x, 0);
  double log2x = std::log2(x);
  EXPECT_GT(log2x, -5.0);
  EXPECT_LT(log2x, -2.0);
}

TEST_F(CalibrationTest, ImprovedAtFullSelectivityModeratelyWorse) {
  // Paper: "about 2.5 times worse than a table scan" — accept 1.5x..4x.
  double ratio =
      map_->SecondsOfPlan(2).back() / map_->SecondsOfPlan(0).back();
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 4.0);
}

TEST_F(CalibrationTest, TraditionalCatastrophicAtFullSelectivity) {
  // Paper: "would exceed the cost of a table scan by multiple orders of
  // magnitude."
  double ratio =
      map_->SecondsOfPlan(1).back() / map_->SecondsOfPlan(0).back();
  EXPECT_GT(ratio, 100.0);
}

TEST_F(CalibrationTest, IndexScansWinAtSmallResults) {
  // Left edge: both index scans far faster than the table scan.
  EXPECT_LT(map_->SecondsOfPlan(1).front() * 5,
            map_->SecondsOfPlan(0).front());
  EXPECT_LT(map_->SecondsOfPlan(2).front() * 5,
            map_->SecondsOfPlan(0).front());
}

TEST_F(CalibrationTest, AllCurvesMonotoneNonDecreasing) {
  // "Fetching rows should become more expensive with additional rows."
  for (size_t pl = 0; pl < map_->num_plans(); ++pl) {
    auto lm = AnalyzeCurve(map_->space().x().values, map_->SecondsOfPlan(pl));
    EXPECT_TRUE(lm.monotonicity_violations.empty())
        << map_->plan_label(pl) << " violates monotonicity";
  }
}

TEST_F(CalibrationTest, ImprovedScanSteepensAtHighEnd) {
  // Paper §3.1: the improved index scan "shows a flat cost growth followed
  // by a steeper cost growth for very large result sizes" — the flattening
  // condition is violated.
  auto lm = AnalyzeCurve(map_->space().x().values, map_->SecondsOfPlan(2));
  ASSERT_FALSE(lm.steepening_points.empty());
  // The steepening happens in the upper half of the range (the paper:
  // "for very large result sizes").
  EXPECT_GT(lm.steepening_points.back().index,
            map_->space().x().values.size() / 2);
}

TEST_F(CalibrationTest, CurvesContainNoDiscontinuities) {
  for (size_t pl = 0; pl < map_->num_plans(); ++pl) {
    auto lm = AnalyzeCurve(map_->space().x().values, map_->SecondsOfPlan(pl));
    EXPECT_TRUE(lm.discontinuities.empty()) << map_->plan_label(pl);
  }
}

}  // namespace
}  // namespace robustmap
