#include "exec/table_scan.h"

#include <gtest/gtest.h>

#include "testing/test_env.h"

namespace robustmap {
namespace {

using ::robustmap::testing::CollectRids;
using ::robustmap::testing::ProcEnv;

TEST(TableScanTest, NoPredicatesReturnsEverything) {
  ProcEnv env;
  TableScanOp scan(&env.table(), {});
  auto rids = CollectRids(env.ctx(), &scan);
  EXPECT_EQ(rids.size(), env.table().num_rows());
}

TEST(TableScanTest, SinglePredicateMatchesBruteForce) {
  ProcEnv env;
  TableScanOp scan(&env.table(), {{0, 10, 20}});
  EXPECT_EQ(CollectRids(env.ctx(), &scan),
            env.MatchingRids(10, 20, INT64_MIN, INT64_MAX));
}

TEST(TableScanTest, ConjunctionMatchesBruteForce) {
  ProcEnv env;
  TableScanOp scan(&env.table(), {{0, 0, 15}, {1, 32, 63}});
  EXPECT_EQ(CollectRids(env.ctx(), &scan), env.MatchingRids(0, 15, 32, 63));
}

TEST(TableScanTest, EmptyRangeYieldsNothing) {
  ProcEnv env;
  TableScanOp scan(&env.table(), {{0, 100, 200}});  // beyond domain
  EXPECT_TRUE(CollectRids(env.ctx(), &scan).empty());
}

TEST(TableScanTest, CostIndependentOfSelectivity) {
  ProcEnv env;
  TableScanOp narrow(&env.table(), {{0, 0, 0}});
  TableScanOp wide(&env.table(), {{0, 0, 63}});

  env.ctx()->clock->Reset();
  (void)DrainCount(env.ctx(), &narrow);
  int64_t t_narrow = env.ctx()->clock->now_ns();
  env.ctx()->clock->Reset();
  env.ctx()->pool->Clear();
  (void)DrainCount(env.ctx(), &wide);
  int64_t t_wide = env.ctx()->clock->now_ns();
  // "Its performance is constant across the entire range of selectivities."
  EXPECT_NEAR(static_cast<double>(t_wide) / t_narrow, 1.0, 0.05);
}

TEST(TableScanTest, ReadsEveryPageOnce) {
  ProcEnv env;
  TableScanOp scan(&env.table(), {});
  (void)DrainCount(env.ctx(), &scan);
  EXPECT_EQ(env.ctx()->device->stats().total_reads(),
            env.table().num_pages());
}

TEST(TableScanTest, RowsCarryBothColumns) {
  ProcEnv env;
  TableScanOp scan(&env.table(), {{0, 5, 5}});
  ASSERT_TRUE(scan.Open(env.ctx()).ok());
  Row r;
  ASSERT_TRUE(scan.Next(env.ctx(), &r));
  EXPECT_TRUE(r.HasCol(0));
  EXPECT_TRUE(r.HasCol(1));
  EXPECT_EQ(r.cols[0], 5);
  scan.Close(env.ctx());
}

TEST(TableScanTest, DebugNameMentionsPredicates) {
  ProcEnv env;
  TableScanOp scan(&env.table(), {{0, 1, 2}});
  EXPECT_NE(scan.DebugName().find("TableScan"), std::string::npos);
  EXPECT_NE(scan.DebugName().find("col0"), std::string::npos);
}

}  // namespace
}  // namespace robustmap
