#include "exec/aggregate.h"

#include <gtest/gtest.h>

#include <map>

#include "exec/index_scan.h"
#include "testing/test_env.h"

namespace robustmap {
namespace {

using ::robustmap::testing::ProcEnv;

OperatorPtr ScanA(ProcEnv* env, int64_t lo, int64_t hi) {
  IndexScanOptions opts;
  opts.k0_lo = lo;
  opts.k0_hi = hi;
  return std::make_unique<IndexScanOp>(env->idx_a(), opts);
}

TEST(HashAggregateTest, CountsMatchBruteForce) {
  ProcEnv env;
  HashAggregateOp agg(ScanA(&env, 0, 63), /*group_column=*/0);
  ASSERT_TRUE(agg.Open(env.ctx()).ok());
  std::map<int64_t, uint64_t> got;
  Row r;
  while (agg.Next(env.ctx(), &r)) {
    got[r.cols[0]] = static_cast<uint64_t>(r.cols[kAggResultColumn]);
  }
  agg.Close(env.ctx());
  // Uniform procedural column: 64 values x 64 rows each.
  ASSERT_EQ(got.size(), 64u);
  for (const auto& [value, count] : got) {
    EXPECT_EQ(count, 64u) << "group " << value;
  }
}

TEST(HashAggregateTest, GroupsEmittedInOrder) {
  ProcEnv env;
  HashAggregateOp agg(ScanA(&env, 10, 20), 0);
  ASSERT_TRUE(agg.Open(env.ctx()).ok());
  Row r;
  int64_t prev = INT64_MIN;
  size_t groups = 0;
  while (agg.Next(env.ctx(), &r)) {
    ASSERT_GT(r.cols[0], prev);
    prev = r.cols[0];
    ++groups;
  }
  agg.Close(env.ctx());
  EXPECT_EQ(groups, 11u);
}

TEST(HashAggregateTest, SpillChargedWhenGroupsExceedMemory) {
  ProcEnv env;
  env.ctx()->hash_memory_bytes = 64;  // room for 4 groups only
  HashAggregateOp agg(ScanA(&env, 0, 63), 0);
  ASSERT_TRUE(agg.Open(env.ctx()).ok());
  EXPECT_GT(agg.spill_pages(), 0u);
  agg.Close(env.ctx());
}

TEST(HashAggregateTest, NoSpillWhenGroupsFit) {
  ProcEnv env;
  HashAggregateOp agg(ScanA(&env, 0, 63), 0);
  ASSERT_TRUE(agg.Open(env.ctx()).ok());
  EXPECT_EQ(agg.spill_pages(), 0u);
  agg.Close(env.ctx());
}

TEST(HashAggregateTest, EmptyInputYieldsNoGroups) {
  ProcEnv env;
  HashAggregateOp agg(ScanA(&env, 64, 99), 0);
  ASSERT_TRUE(agg.Open(env.ctx()).ok());
  Row r;
  EXPECT_FALSE(agg.Next(env.ctx(), &r));
  agg.Close(env.ctx());
}

TEST(HashAggregateTest, MissingGroupColumnIsError) {
  ProcEnv env;
  // idx_a covers column 0 only; grouping by column 1 must fail cleanly.
  HashAggregateOp agg(ScanA(&env, 0, 63), 1);
  EXPECT_FALSE(agg.Open(env.ctx()).ok());
}

}  // namespace
}  // namespace robustmap
