#include "exec/fetch.h"

#include <gtest/gtest.h>

#include "exec/index_scan.h"
#include "testing/test_env.h"

namespace robustmap {
namespace {

using ::robustmap::testing::CollectRids;
using ::robustmap::testing::ProcEnv;

OperatorPtr MakeScan(ProcEnv* env, int64_t lo, int64_t hi) {
  IndexScanOptions opts;
  opts.k0_lo = lo;
  opts.k0_hi = hi;
  return std::make_unique<IndexScanOp>(env->idx_a(), opts);
}

// All three fetch policies must return identical full rows.
class FetchPolicyTest : public ::testing::TestWithParam<FetchPolicy> {};

TEST_P(FetchPolicyTest, FetchesExactlyTheScannedRows) {
  ProcEnv env;
  FetchOp fetch(MakeScan(&env, 10, 25), &env.table(), GetParam(), {});
  EXPECT_EQ(CollectRids(env.ctx(), &fetch),
            env.MatchingRids(10, 25, INT64_MIN, INT64_MAX));
}

TEST_P(FetchPolicyTest, AppliesResidualPredicate) {
  ProcEnv env;
  FetchOp fetch(MakeScan(&env, 0, 63), &env.table(), GetParam(),
                {{1, 5, 8}});
  EXPECT_EQ(CollectRids(env.ctx(), &fetch), env.MatchingRids(0, 63, 5, 8));
}

TEST_P(FetchPolicyTest, ReconstructsFullRows) {
  ProcEnv env;
  FetchOp fetch(MakeScan(&env, 3, 3), &env.table(), GetParam(), {});
  ASSERT_TRUE(fetch.Open(env.ctx()).ok());
  Row r;
  while (fetch.Next(env.ctx(), &r)) {
    ASSERT_TRUE(r.HasCol(0));
    ASSERT_TRUE(r.HasCol(1));
    ASSERT_EQ(r.cols[0], env.table().ValueAt(r.rid, 0));
    ASSERT_EQ(r.cols[1], env.table().ValueAt(r.rid, 1));
  }
  fetch.Close(env.ctx());
}

TEST_P(FetchPolicyTest, EmptyInput) {
  ProcEnv env;
  FetchOp fetch(MakeScan(&env, 64, 70), &env.table(), GetParam(), {});
  EXPECT_TRUE(CollectRids(env.ctx(), &fetch).empty());
}

INSTANTIATE_TEST_SUITE_P(Policies, FetchPolicyTest,
                         ::testing::Values(FetchPolicy::kNaive,
                                           FetchPolicy::kSorted,
                                           FetchPolicy::kBitmap));

int64_t MeasureFetch(ProcEnv* env, FetchPolicy policy) {
  env->ctx()->clock->Reset();
  env->ctx()->pool->Clear();
  env->ctx()->device->ResetHead();
  FetchOp fetch(MakeScan(env, 0, 63), &env->table(), policy, {});
  (void)DrainCount(env->ctx(), &fetch);
  return env->ctx()->clock->now_ns();
}

TEST(FetchCostTest, SortedBeatsNaiveOnLargeResults) {
  // Large table so random fetches dominate: the improved index scan's whole
  // reason to exist (Figure 1).
  ProcEnv env(/*row_bits=*/14, /*value_bits=*/6);
  int64_t t_naive = MeasureFetch(&env, FetchPolicy::kNaive);
  int64_t t_sorted = MeasureFetch(&env, FetchPolicy::kSorted);
  int64_t t_bitmap = MeasureFetch(&env, FetchPolicy::kBitmap);
  EXPECT_GT(t_naive, t_sorted * 5);
  EXPECT_GT(t_naive, t_bitmap * 5);
}

TEST(FetchCostTest, SortedFetchReadsEachPageOnce) {
  ProcEnv env;
  FetchOp fetch(MakeScan(&env, 0, 63), &env.table(), FetchPolicy::kSorted, {});
  (void)DrainCount(env.ctx(), &fetch);
  // Full-table fetch in rid order: at most one physical read per table page
  // (plus index leaves); buffer hits cover the duplicates.
  EXPECT_LE(env.ctx()->device->stats().total_reads(),
            env.table().num_pages() + env.idx_a()->num_leaf_pages() + 8);
}

TEST(FetchCostTest, RowsFetchedCountsPreResidual) {
  ProcEnv env;
  FetchOp fetch(MakeScan(&env, 0, 31), &env.table(), FetchPolicy::kSorted,
                {{1, 0, 0}});
  (void)DrainCount(env.ctx(), &fetch);
  EXPECT_EQ(fetch.rows_fetched(),
            env.CountMatching(0, 31, INT64_MIN, INT64_MAX));
}

}  // namespace
}  // namespace robustmap
