#include "exec/sort.h"

#include <gtest/gtest.h>

#include "exec/index_scan.h"
#include "testing/test_env.h"

namespace robustmap {
namespace {

using ::robustmap::testing::ProcEnv;

OperatorPtr ScanA(ProcEnv* env, int64_t lo, int64_t hi) {
  IndexScanOptions opts;
  opts.k0_lo = lo;
  opts.k0_hi = hi;
  return std::make_unique<IndexScanOp>(env->idx_a(), opts);
}

TEST(SortOpTest, SortsByRid) {
  ProcEnv env;
  SortOp sort(ScanA(&env, 0, 63), {SortKeySpec::Kind::kRid, 0},
              SpillKind::kGraceful);
  ASSERT_TRUE(sort.Open(env.ctx()).ok());
  Row r;
  Rid prev = 0;
  bool first = true;
  size_t n = 0;
  while (sort.Next(env.ctx(), &r)) {
    if (!first) {
      ASSERT_GT(r.rid, prev);
    }
    prev = r.rid;
    first = false;
    ++n;
  }
  sort.Close(env.ctx());
  EXPECT_EQ(n, env.table().num_rows());
}

TEST(SortOpTest, SortsByColumn) {
  ProcEnv env;
  SortOp sort(ScanA(&env, 0, 63), {SortKeySpec::Kind::kColumn, 0},
              SpillKind::kGraceful);
  ASSERT_TRUE(sort.Open(env.ctx()).ok());
  Row r;
  int64_t prev = INT64_MIN;
  while (sort.Next(env.ctx(), &r)) {
    ASSERT_GE(r.cols[0], prev);
    prev = r.cols[0];
  }
  sort.Close(env.ctx());
}

TEST(SortOpTest, NoSpillWhenInputFits) {
  ProcEnv env;
  env.ctx()->sort_memory_bytes = 1 << 20;
  SortOp sort(ScanA(&env, 0, 7), {SortKeySpec::Kind::kRid, 0},
              SpillKind::kGraceful);
  ASSERT_TRUE(sort.Open(env.ctx()).ok());
  EXPECT_EQ(sort.spilled_pages(), 0u);
  sort.Close(env.ctx());
}

TEST(SortOpTest, GracefulSpillsOnlyOverflow) {
  ProcEnv env;
  // Input: 4096 rows * 16 B = 64 KiB; memory 48 KiB -> overflow 16 KiB.
  env.ctx()->sort_memory_bytes = 48 << 10;
  SortOp sort(ScanA(&env, 0, 63), {SortKeySpec::Kind::kRid, 0},
              SpillKind::kGraceful);
  ASSERT_TRUE(sort.Open(env.ctx()).ok());
  uint64_t page = env.ctx()->device->model().params().page_size_bytes;
  EXPECT_GT(sort.spilled_pages(), 0u);
  EXPECT_LE(sort.spilled_pages(), (16u << 10) / page + 1);
  sort.Close(env.ctx());
}

TEST(SortOpTest, NaiveSpillsEntireInput) {
  ProcEnv env;
  env.ctx()->sort_memory_bytes = 48 << 10;
  SortOp sort(ScanA(&env, 0, 63), {SortKeySpec::Kind::kRid, 0},
              SpillKind::kNaive);
  ASSERT_TRUE(sort.Open(env.ctx()).ok());
  uint64_t page = env.ctx()->device->model().params().page_size_bytes;
  EXPECT_GE(sort.spilled_pages(), (64u << 10) / page);
  sort.Close(env.ctx());
}

TEST(SortOpTest, NaiveAndGracefulProduceIdenticalOutput) {
  ProcEnv env;
  env.ctx()->sort_memory_bytes = 4 << 10;
  auto run = [&](SpillKind kind) {
    SortOp sort(ScanA(&env, 0, 63), {SortKeySpec::Kind::kColumn, 1}, kind);
    std::vector<Rid> rids;
    EXPECT_TRUE(sort.Open(env.ctx()).ok());
    Row r;
    while (sort.Next(env.ctx(), &r)) rids.push_back(r.rid);
    sort.Close(env.ctx());
    return rids;
  };
  EXPECT_EQ(run(SpillKind::kGraceful), run(SpillKind::kNaive));
}

TEST(ChargeSortCostTest, ZeroItemsFree) {
  ProcEnv env;
  env.ctx()->clock->Reset();
  EXPECT_EQ(ChargeSortCost(env.ctx(), 0, 16, 1024, SpillKind::kGraceful), 0u);
  EXPECT_EQ(env.ctx()->clock->now_ns(), 0);
}

TEST(ChargeSortCostTest, DiscontinuityOnlyForNaive) {
  ProcEnv env;
  uint64_t mem = 8 << 20;  // large memory: the cliff is the input's size
  auto cost_at = [&](uint64_t items, SpillKind kind) {
    env.ctx()->clock->Reset();
    ChargeSortCost(env.ctx(), items, 16, mem, kind);
    return env.ctx()->clock->now_ns();
  };
  uint64_t boundary = mem / 16;
  // One item past the boundary:
  int64_t graceful_above = cost_at(boundary + 1, SpillKind::kGraceful);
  int64_t naive_below = cost_at(boundary, SpillKind::kNaive);
  int64_t naive_above = cost_at(boundary + 1, SpillKind::kNaive);
  // Naive: the whole 8 MiB input's I/O appears at once ("a single record"
  // past memory, §4): ~1000 temp pages against the graceful sort's one.
  env.ctx()->clock->Reset();
  uint64_t graceful_pages =
      ChargeSortCost(env.ctx(), boundary + 1, 16, mem, SpillKind::kGraceful);
  env.ctx()->clock->Reset();
  uint64_t naive_pages =
      ChargeSortCost(env.ctx(), boundary + 1, 16, mem, SpillKind::kNaive);
  EXPECT_EQ(graceful_pages, 1u);
  EXPECT_GE(naive_pages, mem / 8192);
  // Time view: the naive jump doubles total cost even though the (identical)
  // comparison CPU dominates at this input size.
  EXPECT_GT(naive_above, naive_below * 3 / 2);
  EXPECT_GT(naive_above, graceful_above * 3 / 2);
}

TEST(ChargeSortCostTest, MorePassesForHugeInputs) {
  ProcEnv env;
  uint64_t mem = 16 << 10;  // tiny memory, fan-in 2
  env.ctx()->clock->Reset();
  uint64_t small = ChargeSortCost(env.ctx(), 10000, 16, mem, SpillKind::kNaive);
  env.ctx()->clock->Reset();
  uint64_t large =
      ChargeSortCost(env.ctx(), 1000000, 16, mem, SpillKind::kNaive);
  // Temp I/O grows superlinearly (more merge passes).
  EXPECT_GT(large, small * 100);
}

}  // namespace
}  // namespace robustmap
