#include "exec/index_scan.h"

#include <gtest/gtest.h>

#include "testing/test_env.h"

namespace robustmap {
namespace {

using ::robustmap::testing::CollectRids;
using ::robustmap::testing::ProcEnv;

TEST(IndexScanTest, RangeMatchesBruteForce) {
  ProcEnv env;
  IndexScanOptions opts;
  opts.k0_lo = 12;
  opts.k0_hi = 30;
  IndexScanOp scan(env.idx_a(), opts);
  EXPECT_EQ(CollectRids(env.ctx(), &scan),
            env.MatchingRids(12, 30, INT64_MIN, INT64_MAX));
}

TEST(IndexScanTest, SecondColumnRange) {
  ProcEnv env;
  IndexScanOptions opts;
  opts.k0_lo = 40;
  opts.k0_hi = 63;
  IndexScanOp scan(env.idx_b(), opts);
  EXPECT_EQ(CollectRids(env.ctx(), &scan),
            env.MatchingRids(INT64_MIN, INT64_MAX, 40, 63));
}

TEST(IndexScanTest, CompositeWithK1Filter) {
  ProcEnv env;
  IndexScanOptions opts;
  opts.k0_lo = 0;
  opts.k0_hi = 31;
  opts.filter_k1 = true;
  opts.k1_lo = 10;
  opts.k1_hi = 12;
  IndexScanOp scan(env.idx_ab(), opts);
  EXPECT_EQ(CollectRids(env.ctx(), &scan), env.MatchingRids(0, 31, 10, 12));
}

TEST(IndexScanTest, MdamMatchesFilterScan) {
  ProcEnv env;
  IndexScanOptions opts;
  opts.k0_lo = 5;
  opts.k0_hi = 50;
  opts.filter_k1 = true;
  opts.k1_lo = 7;
  opts.k1_hi = 9;
  opts.k0_domain = env.domain();
  opts.k1_domain = env.domain();

  IndexScanOp filter_scan(env.idx_ab(), opts);
  auto expected = CollectRids(env.ctx(), &filter_scan);

  opts.use_mdam = true;
  IndexScanOp mdam_scan(env.idx_ab(), opts);
  EXPECT_EQ(CollectRids(env.ctx(), &mdam_scan), expected);
}

TEST(IndexScanTest, MdamCheaperThanFilterScanForNarrowK1) {
  ProcEnv env;
  IndexScanOptions opts;
  opts.k0_lo = 0;
  opts.k0_hi = 63;
  opts.filter_k1 = true;
  opts.k1_lo = 3;
  opts.k1_hi = 3;
  opts.k0_domain = env.domain();
  opts.k1_domain = env.domain();

  env.ctx()->clock->Reset();
  env.ctx()->pool->Clear();
  IndexScanOp filter_scan(env.idx_ab(), opts);
  (void)DrainCount(env.ctx(), &filter_scan);
  int64_t t_filter = env.ctx()->clock->now_ns();

  // The filter scan examined every entry in the k0 range.
  EXPECT_EQ(filter_scan.entries_examined(), env.table().num_rows());

  opts.use_mdam = true;
  env.ctx()->clock->Reset();
  env.ctx()->pool->Clear();
  IndexScanOp mdam_scan(env.idx_ab(), opts);
  (void)DrainCount(env.ctx(), &mdam_scan);
  int64_t t_mdam = env.ctx()->clock->now_ns();

  EXPECT_LT(mdam_scan.entries_examined(), filter_scan.entries_examined());
  EXPECT_LT(t_mdam, t_filter);
}

TEST(IndexScanTest, CoversKeyColumns) {
  ProcEnv env;
  IndexScanOptions opts;
  opts.k0_lo = 0;
  opts.k0_hi = 63;
  IndexScanOp scan(env.idx_ab(), opts);
  ASSERT_TRUE(scan.Open(env.ctx()).ok());
  Row r;
  ASSERT_TRUE(scan.Next(env.ctx(), &r));
  EXPECT_TRUE(r.HasCol(0));
  EXPECT_TRUE(r.HasCol(1));
  EXPECT_EQ(r.cols[0], env.table().ValueAt(r.rid, 0));
  EXPECT_EQ(r.cols[1], env.table().ValueAt(r.rid, 1));
  scan.Close(env.ctx());
}

TEST(IndexScanTest, K1FilterOnSingleColumnIndexIsError) {
  ProcEnv env;
  IndexScanOptions opts;
  opts.filter_k1 = true;
  IndexScanOp scan(env.idx_a(), opts);
  EXPECT_TRUE(scan.Open(env.ctx()).IsInvalidArgument());
}

TEST(IndexScanTest, EmptyRange) {
  ProcEnv env;
  IndexScanOptions opts;
  opts.k0_lo = 64;  // past the domain
  opts.k0_hi = 99;
  IndexScanOp scan(env.idx_a(), opts);
  EXPECT_TRUE(CollectRids(env.ctx(), &scan).empty());
}

TEST(IndexScanTest, LeafIoProportionalToRange) {
  ProcEnv env;
  auto measure = [&](int64_t hi) {
    env.ctx()->pool->Clear();
    env.ctx()->device->ResetHead();
    uint64_t before = env.ctx()->device->stats().total_reads();
    IndexScanOptions opts;
    opts.k0_lo = 0;
    opts.k0_hi = hi;
    IndexScanOp scan(env.idx_a(), opts);
    (void)DrainCount(env.ctx(), &scan);
    return env.ctx()->device->stats().total_reads() - before;
  };
  uint64_t reads_small = measure(0);   // 64 entries: one leaf
  uint64_t reads_large = measure(63);  // 4096 entries: 64 leaves
  EXPECT_GE(reads_large, reads_small * 32);
}

}  // namespace
}  // namespace robustmap
