#include <gtest/gtest.h>

#include "exec/bitmap_ops.h"
#include "exec/hash_join.h"
#include "exec/index_scan.h"
#include "exec/merge_join.h"
#include "testing/test_env.h"

namespace robustmap {
namespace {

using ::robustmap::testing::CollectRids;
using ::robustmap::testing::ProcEnv;

OperatorPtr ScanA(ProcEnv* env, int64_t lo, int64_t hi) {
  IndexScanOptions opts;
  opts.k0_lo = lo;
  opts.k0_hi = hi;
  return std::make_unique<IndexScanOp>(env->idx_a(), opts);
}

OperatorPtr ScanB(ProcEnv* env, int64_t lo, int64_t hi) {
  IndexScanOptions opts;
  opts.k0_lo = lo;
  opts.k0_hi = hi;
  return std::make_unique<IndexScanOp>(env->idx_b(), opts);
}

TEST(MergeJoinTest, IntersectionMatchesBruteForce) {
  ProcEnv env;
  MergeJoinOp join(ScanA(&env, 0, 20), ScanB(&env, 30, 63));
  EXPECT_EQ(CollectRids(env.ctx(), &join), env.MatchingRids(0, 20, 30, 63));
}

TEST(MergeJoinTest, OutputCoversBothColumns) {
  ProcEnv env;
  MergeJoinOp join(ScanA(&env, 0, 63), ScanB(&env, 0, 63));
  ASSERT_TRUE(join.Open(env.ctx()).ok());
  Row r;
  ASSERT_TRUE(join.Next(env.ctx(), &r));
  EXPECT_TRUE(r.HasCol(0));
  EXPECT_TRUE(r.HasCol(1));
  EXPECT_EQ(r.cols[0], env.table().ValueAt(r.rid, 0));
  EXPECT_EQ(r.cols[1], env.table().ValueAt(r.rid, 1));
  join.Close(env.ctx());
}

TEST(MergeJoinTest, DisjointInputsYieldNothing) {
  ProcEnv env;
  MergeJoinOp join(ScanA(&env, 64, 70), ScanB(&env, 0, 63));
  EXPECT_TRUE(CollectRids(env.ctx(), &join).empty());
}

TEST(MergeJoinTest, CostSymmetricInJoinOrder) {
  ProcEnv env;
  auto measure = [&](bool swap) {
    env.ctx()->clock->Reset();
    env.ctx()->pool->Clear();
    env.ctx()->device->ResetHead();
    auto left = ScanA(&env, 0, 7);
    auto right = ScanB(&env, 0, 63);
    MergeJoinOp join(swap ? std::move(right) : std::move(left),
                     swap ? std::move(left) : std::move(right));
    (void)DrainCount(env.ctx(), &join);
    return env.ctx()->clock->now_ns();
  };
  int64_t t1 = measure(false);
  int64_t t2 = measure(true);
  // Near-symmetric: only the inter-extent seek order differs between the
  // two drain orders, which matters at this tiny scale (a handful of
  // seeks). The (s_a, s_b) <-> (s_b, s_a) symmetry of Figure 5 is asserted
  // at realistic scale in the integration test.
  EXPECT_NEAR(static_cast<double>(t1) / t2, 1.0, 0.3);
}

TEST(HashJoinTest, IntersectionMatchesBruteForce) {
  ProcEnv env;
  HashJoinOp join(ScanA(&env, 5, 40), ScanB(&env, 20, 50));
  EXPECT_EQ(CollectRids(env.ctx(), &join), env.MatchingRids(5, 40, 20, 50));
}

TEST(HashJoinTest, SpillPathProducesSameResult) {
  ProcEnv env;
  env.ctx()->hash_memory_bytes = 1024;  // force a Grace spill
  HashJoinOp join(ScanA(&env, 0, 40), ScanB(&env, 10, 63));
  EXPECT_EQ(CollectRids(env.ctx(), &join), env.MatchingRids(0, 40, 10, 63));
  EXPECT_GT(join.partition_pages_written(), 0u);
}

TEST(HashJoinTest, InMemoryPathDoesNotSpill) {
  ProcEnv env;
  HashJoinOp join(ScanA(&env, 0, 1), ScanB(&env, 0, 63));
  (void)CollectRids(env.ctx(), &join);
  EXPECT_EQ(join.partition_pages_written(), 0u);
}

TEST(HashJoinTest, CostAsymmetricInBuildSide) {
  ProcEnv env(/*row_bits=*/14, /*value_bits=*/6);
  env.ctx()->hash_memory_bytes = 16 * 1024;
  auto measure = [&](bool build_large) {
    env.ctx()->clock->Reset();
    env.ctx()->pool->Clear();
    env.ctx()->device->ResetHead();
    auto small = ScanA(&env, 0, 0);
    auto large = ScanB(&env, 0, 63);
    HashJoinOp join(build_large ? std::move(large) : std::move(small),
                    build_large ? std::move(small) : std::move(large));
    (void)DrainCount(env.ctx(), &join);
    return env.ctx()->clock->now_ns();
  };
  int64_t t_good = measure(false);  // build on the small side
  int64_t t_bad = measure(true);    // build on the large side -> spill
  EXPECT_GT(t_bad, t_good);
}

TEST(BitmapAndTest, IntersectionMatchesBruteForce) {
  ProcEnv env;
  BitmapAndOp join(ScanA(&env, 0, 30), ScanB(&env, 15, 45),
                   env.table().num_rows());
  EXPECT_EQ(CollectRids(env.ctx(), &join), env.MatchingRids(0, 30, 15, 45));
}

TEST(BitmapAndTest, EmitsRidsInAscendingOrder) {
  ProcEnv env;
  BitmapAndOp join(ScanA(&env, 0, 63), ScanB(&env, 0, 63),
                   env.table().num_rows());
  ASSERT_TRUE(join.Open(env.ctx()).ok());
  Row r;
  Rid prev = 0;
  bool first = true;
  while (join.Next(env.ctx(), &r)) {
    if (!first) {
      ASSERT_GT(r.rid, prev);
    }
    prev = r.rid;
    first = false;
  }
  join.Close(env.ctx());
}

TEST(RidMapTest, InsertFindAbsent) {
  RidMap map(100);
  for (Rid r = 0; r < 100; ++r) map.Insert(r * 3, static_cast<uint32_t>(r));
  EXPECT_EQ(map.size(), 100u);
  for (Rid r = 0; r < 100; ++r) {
    EXPECT_EQ(map.Find(r * 3), r);
  }
  EXPECT_EQ(map.Find(1), UINT32_MAX);
  EXPECT_EQ(map.Find(301), UINT32_MAX);
}

TEST(RidMapTest, DuplicateInsertKeepsFirst) {
  RidMap map(10);
  map.Insert(7, 1);
  map.Insert(7, 2);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.Find(7), 1u);
}

}  // namespace
}  // namespace robustmap
