#include "exec/filter.h"

#include <gtest/gtest.h>

#include "exec/index_scan.h"
#include "testing/test_env.h"

namespace robustmap {
namespace {

using ::robustmap::testing::CollectRids;
using ::robustmap::testing::ProcEnv;

OperatorPtr CoverScan(ProcEnv* env, int64_t lo, int64_t hi) {
  IndexScanOptions opts;
  opts.k0_lo = lo;
  opts.k0_hi = hi;
  return std::make_unique<IndexScanOp>(env->idx_ab(), opts);
}

TEST(FilterTest, NoPredicatesPassesEverything) {
  ProcEnv env;
  FilterOp filter(CoverScan(&env, 0, 63), {});
  EXPECT_EQ(CollectRids(env.ctx(), &filter).size(), env.table().num_rows());
}

TEST(FilterTest, FiltersOnCoveredColumn) {
  ProcEnv env;
  // Covering scan provides both columns; filter the second in-flight.
  FilterOp filter(CoverScan(&env, 0, 31), {{1, 10, 20}});
  EXPECT_EQ(CollectRids(env.ctx(), &filter), env.MatchingRids(0, 31, 10, 20));
}

TEST(FilterTest, ConjunctionOfPredicates) {
  ProcEnv env;
  FilterOp filter(CoverScan(&env, 0, 63), {{0, 5, 25}, {1, 30, 50}});
  EXPECT_EQ(CollectRids(env.ctx(), &filter), env.MatchingRids(5, 25, 30, 50));
}

TEST(FilterTest, UnpopulatedColumnRejectsRow) {
  ProcEnv env;
  // idx_a covers only column 0; filtering column 1 has nothing to test
  // against and must reject (predicates never pass on missing data).
  IndexScanOptions opts;
  opts.k0_lo = 0;
  opts.k0_hi = 63;
  auto scan = std::make_unique<IndexScanOp>(env.idx_a(), opts);
  FilterOp filter(std::move(scan), {{1, 0, 63}});
  EXPECT_TRUE(CollectRids(env.ctx(), &filter).empty());
}

TEST(FilterTest, ChargesPredicateCpu) {
  ProcEnv env;
  env.ctx()->clock->Reset();
  env.ctx()->pool->Clear();
  FilterOp plain(CoverScan(&env, 0, 63), {});
  (void)DrainCount(env.ctx(), &plain);
  int64_t t_plain = env.ctx()->clock->now_ns();

  env.ctx()->clock->Reset();
  env.ctx()->pool->Clear();
  FilterOp filtered(CoverScan(&env, 0, 63), {{0, 0, 63}, {1, 0, 63}});
  (void)DrainCount(env.ctx(), &filtered);
  int64_t t_filtered = env.ctx()->clock->now_ns();
  EXPECT_GT(t_filtered, t_plain);
}

TEST(FilterTest, DebugNameShowsPredicateAndChild) {
  ProcEnv env;
  FilterOp filter(CoverScan(&env, 0, 7), {{1, 2, 3}});
  std::string name = filter.DebugName();
  EXPECT_NE(name.find("Filter"), std::string::npos);
  EXPECT_NE(name.find("col1"), std::string::npos);
  EXPECT_NE(name.find("IndexScan"), std::string::npos);
}

}  // namespace
}  // namespace robustmap
