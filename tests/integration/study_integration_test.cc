// End-to-end: the full paper pipeline on a small procedural database —
// sweep all 13 plans over a 2-D grid, then verify the qualitative findings
// of Figures 4, 5, 7, 8, 9, 10 hold as *invariants* of the implementation.

#include <gtest/gtest.h>

#include "core/landmarks.h"
#include "core/metrics.h"
#include "core/optimality.h"
#include "core/regions.h"
#include "core/relative.h"
#include "core/sweep.h"
#include "engine/system.h"
#include "workload/dataset.h"

namespace robustmap {
namespace {

class StudyIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    StudyOptions opts;
    opts.row_bits = 16;
    opts.value_bits = 12;
    env_ = StudyEnvironment::Create(opts).ValueOrDie().release();
    ParameterSpace space =
        ParameterSpace::TwoD(Axis::Selectivity("sel(a)", -12, 0),
                             Axis::Selectivity("sel(b)", -12, 0));
    map_ = new RobustnessMap(SweepStudyPlans(env_->ctx(), env_->executor(),
                                             AllStudyPlans(), space)
                                 .ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete map_;
    delete env_;
    map_ = nullptr;
    env_ = nullptr;
  }

  size_t Plan(const std::string& label) {
    return map_->PlanIndexOf(label).ValueOrDie();
  }

  static StudyEnvironment* env_;
  static RobustnessMap* map_;
};

StudyEnvironment* StudyIntegrationTest::env_ = nullptr;
RobustnessMap* StudyIntegrationTest::map_ = nullptr;

TEST_F(StudyIntegrationTest, AllPlansAgreeOnCardinalities) {
  for (size_t pt = 0; pt < map_->space().num_points(); ++pt) {
    uint64_t rows = map_->At(0, pt).output_rows;
    for (size_t pl = 1; pl < map_->num_plans(); ++pl) {
      ASSERT_EQ(map_->At(pl, pt).output_rows, rows)
          << map_->plan_label(pl) << " at point " << pt;
    }
  }
}

TEST_F(StudyIntegrationTest, Fig4SingleIndexIgnoresResidualSelectivity) {
  size_t plan = Plan("A.idx_a.improved");
  auto grid = map_->SecondsOfPlan(plan);
  const auto& space = map_->space();
  for (size_t xi = 0; xi < space.x_size(); ++xi) {
    double lo = 1e300, hi = 0;
    for (size_t yi = 0; yi < space.y_size(); ++yi) {
      double v = grid[space.IndexOf(xi, yi)];
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    EXPECT_LT(hi / lo, 1.3) << "residual selectivity affected cost at s_a="
                            << space.x().values[xi];
  }
}

TEST_F(StudyIntegrationTest, Fig5MergeJoinSymmetricHashJoinNot) {
  SymmetryScore mj =
      ComputeSymmetry(map_->space(), map_->SecondsOfPlan(Plan("A.mj(a,b)")));
  SymmetryScore hj =
      ComputeSymmetry(map_->space(), map_->SecondsOfPlan(Plan("A.hj(a,b)")));
  EXPECT_TRUE(mj.is_symmetric());
  EXPECT_FALSE(hj.is_symmetric());
  EXPECT_GT(hj.max_abs_log2_ratio, mj.max_abs_log2_ratio);
}

TEST_F(StudyIntegrationTest, Fig7SingleIndexPlanFragileOutsideItsRegion) {
  RelativeMap rel = ComputeRelative(*map_);
  size_t plan = Plan("A.idx_a.improved");
  // Catastrophic against the best of all 13 plans somewhere in the space.
  EXPECT_GT(WorstQuotient(rel, plan), 50);

  // Within its own system (Figure 7 compares against the best of System A's
  // seven plans), the plan is the winner somewhere — yet still loses by
  // orders of magnitude elsewhere.
  std::vector<size_t> system_a;
  for (PlanKind k : SystemConfig::SystemA().plans) {
    system_a.push_back(Plan(PlanKindLabel(k)));
  }
  size_t wins = 0;
  double worst_vs_a = 1;
  for (size_t pt = 0; pt < map_->space().num_points(); ++pt) {
    double best_a = 1e300;
    for (size_t pl : system_a)
      best_a = std::min(best_a, map_->At(pl, pt).seconds);
    double mine = map_->At(plan, pt).seconds;
    if (mine <= best_a * 1.0001) ++wins;
    worst_vs_a = std::max(worst_vs_a, mine / best_a);
  }
  EXPECT_GT(wins, 0u);
  // The factor grows with scale (paper reports 101,000 at 60M rows; the
  // fig07 bench reports ~10^3 at 2^18 rows); at this reduced test scale an
  // order of magnitude remains.
  EXPECT_GT(worst_vs_a, 10);
}

TEST_F(StudyIntegrationTest, Fig8CoveringPlanMoreRobustThanSingleIndex) {
  RelativeMap rel = ComputeRelative(*map_);
  double wq_b = WorstQuotient(rel, Plan("B.cover(a,b).bitmap"));
  double wq_a = WorstQuotient(rel, Plan("A.idx_a.improved"));
  EXPECT_LT(wq_b, wq_a);
  OptimalityMap opt = ComputeOptimality(*map_, ToleranceSpec{0.01, 1.0});
  RegionStats rb = AnalyzeRegions(
      map_->space(), OptimalRegionOf(opt, Plan("B.cover(a,b).bitmap")));
  RegionStats ra = AnalyzeRegions(
      map_->space(), OptimalRegionOf(opt, Plan("A.idx_a.improved")));
  EXPECT_GE(rb.member_cells, ra.member_cells);
}

TEST_F(StudyIntegrationTest, Fig9MdamReasonableEverywhere) {
  RelativeMap rel = ComputeRelative(*map_);
  size_t plan = Plan("C.mdam(a,b)");
  // "Reasonable across the entire parameter space": within a modest factor
  // of the best plan at every single point.
  EXPECT_LT(WorstQuotient(rel, plan), 20);
}

TEST_F(StudyIntegrationTest, Fig10MostPointsHaveMultipleOptimalPlans) {
  // 20% relative tolerance (one of the paper's §3.4 alternatives; an
  // unscaled 0.1 s would be trivially permissive at this test scale).
  OptimalityMap opt = ComputeOptimality(*map_, ToleranceSpec{0.0, 1.20});
  size_t multi = 0;
  for (int c : opt.counts) {
    ASSERT_GE(c, 1);
    if (c >= 2) ++multi;
  }
  EXPECT_GT(multi, opt.counts.size() / 2);
}

TEST_F(StudyIntegrationTest, SummariesAreInternallyConsistent) {
  auto summaries = SummarizePlans(*map_, ToleranceSpec{0.1, 1.0});
  ASSERT_EQ(summaries.size(), map_->num_plans());
  for (const auto& s : summaries) {
    EXPECT_GE(s.worst_quotient, 1.0) << s.label;
    EXPECT_GE(s.geomean_quotient, 1.0) << s.label;
    EXPECT_LE(s.geomean_quotient, s.worst_quotient) << s.label;
    EXPECT_LE(s.area_within_2x, s.area_within_10x) << s.label;
    EXPECT_GE(s.fragmentation, 0.0) << s.label;
    EXPECT_LE(s.fragmentation, 1.0) << s.label;
  }
  std::string table = RenderSummaryTable(summaries);
  EXPECT_NE(table.find("A.tablescan"), std::string::npos);
  EXPECT_NE(table.find("C.mdam(a,b)"), std::string::npos);
}

TEST_F(StudyIntegrationTest, AbsoluteCostsSpanOrdersOfMagnitude) {
  // The whole reason the paper uses log color scales.
  double lo = 1e300, hi = 0;
  for (size_t pl = 0; pl < map_->num_plans(); ++pl) {
    for (double s : map_->SecondsOfPlan(pl)) {
      lo = std::min(lo, s);
      hi = std::max(hi, s);
    }
  }
  // At this reduced test scale the spread is ~2 decades; at bench scale
  // (2^18+) it exceeds 3.
  EXPECT_GT(hi / lo, 30);
}

}  // namespace
}  // namespace robustmap
