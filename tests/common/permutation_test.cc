#include "common/permutation.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace robustmap {
namespace {

// Property sweep: bijectivity over the full domain for several sizes.
class PermutationBijectionTest : public ::testing::TestWithParam<int> {};

TEST_P(PermutationBijectionTest, IsBijective) {
  int bits = GetParam();
  FeistelPermutation perm(bits, 99);
  uint64_t n = uint64_t{1} << bits;
  std::vector<bool> seen(n, false);
  for (uint64_t x = 0; x < n; ++x) {
    uint64_t y = perm.Permute(x);
    ASSERT_LT(y, n);
    ASSERT_FALSE(seen[y]) << "collision at " << x;
    seen[y] = true;
  }
}

TEST_P(PermutationBijectionTest, InverseRoundTrips) {
  int bits = GetParam();
  FeistelPermutation perm(bits, 7);
  uint64_t n = uint64_t{1} << bits;
  for (uint64_t x = 0; x < n; ++x) {
    ASSERT_EQ(perm.Inverse(perm.Permute(x)), x);
    ASSERT_EQ(perm.Permute(perm.Inverse(x)), x);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PermutationBijectionTest,
                         ::testing::Values(2, 4, 8, 10, 12, 14));

TEST(PermutationTest, SeedsProduceDifferentPermutations) {
  FeistelPermutation a(12, 1), b(12, 2);
  int same = 0;
  for (uint64_t x = 0; x < 4096; ++x) {
    if (a.Permute(x) == b.Permute(x)) ++same;
  }
  EXPECT_LT(same, 40);  // ~1/4096 expected collisions per point
}

TEST(PermutationTest, LooksScrambled) {
  FeistelPermutation perm(16, 5);
  // No long identity runs.
  int identity = 0;
  for (uint64_t x = 0; x < 65536; ++x) {
    if (perm.Permute(x) == x) ++identity;
  }
  EXPECT_LT(identity, 20);
}

TEST(PermutationTest, LargeDomainRoundTrip) {
  FeistelPermutation perm(26, 42);
  for (uint64_t x = 0; x < (1u << 26); x += 104729) {
    ASSERT_EQ(perm.Inverse(perm.Permute(x)), x);
  }
}

}  // namespace
}  // namespace robustmap
