#include "common/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <thread>

#include "common/minijson.h"

namespace robustmap {
namespace {

// The tracer is a process-wide singleton; each test starts from a known
// state and leaves the tracer disabled and empty for the next one.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Get().Reset();
    Tracer::Get().Disable();
  }
  void TearDown() override {
    Tracer::Get().Reset();
    Tracer::Get().Disable();
  }
};

std::string WriteTrace(const char* name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  EXPECT_TRUE(Tracer::Get().WriteFile(path).ok());
  return path;
}

TEST_F(TraceTest, DisabledRecordsNothingAndSpansSkipTheClock) {
  {
    TraceSpan span("ignored");
    TraceSpan dynamic(std::string("also ignored"), "cat");
  }
  Tracer::Get().AddInstant("ignored too", "cat");
  EXPECT_EQ(Tracer::Get().event_count(), 0u);
}

TEST_F(TraceTest, WritesWellFormedChromeTraceJson) {
  Tracer::Get().Enable();
  {
    TraceSpan outer("outer");
    { TraceSpan inner("inner"); }
    Tracer::Get().AddInstant("mark", "test");
  }
  const std::string path = WriteTrace("trace_wellformed.json");
  auto doc = ParseJsonFile(path).ValueOrDie();
  std::remove(path.c_str());

  const JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->items().size(), 3u);
  std::set<std::string> names;
  for (const JsonValue& e : events->items()) {
    ASSERT_TRUE(e.is_object());
    names.insert(e.Find("name")->string_value());
    const std::string phase = e.Find("ph")->string_value();
    EXPECT_TRUE(phase == "X" || phase == "i") << phase;
    EXPECT_TRUE(e.Find("ts")->is_number());
    EXPECT_GE(e.Find("ts")->number_value(), 0.0);
    EXPECT_TRUE(e.Find("pid")->is_number());
    EXPECT_GT(e.Find("pid")->number_value(), 0.0);
    EXPECT_TRUE(e.Find("tid")->is_number());
    if (phase == "X") {
      EXPECT_GE(e.Find("dur")->number_value(), 0.0);
    } else {
      EXPECT_EQ(e.Find("s")->string_value(), "g");
    }
  }
  EXPECT_EQ(names, (std::set<std::string>{"outer", "inner", "mark"}));
}

TEST_F(TraceTest, NestedSpansContainEachOther) {
  Tracer::Get().Enable();
  {
    TraceSpan outer("outer");
    { TraceSpan inner("inner"); }
  }
  const std::string path = WriteTrace("trace_nested.json");
  auto doc = ParseJsonFile(path).ValueOrDie();
  std::remove(path.c_str());

  const JsonValue* outer = nullptr;
  const JsonValue* inner = nullptr;
  for (const JsonValue& e : doc.Find("traceEvents")->items()) {
    if (e.Find("name")->string_value() == "outer") outer = &e;
    if (e.Find("name")->string_value() == "inner") inner = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  const double outer_ts = outer->Find("ts")->number_value();
  const double outer_end = outer_ts + outer->Find("dur")->number_value();
  const double inner_ts = inner->Find("ts")->number_value();
  const double inner_end = inner_ts + inner->Find("dur")->number_value();
  EXPECT_LE(outer_ts, inner_ts);
  EXPECT_LE(inner_end, outer_end);
}

TEST_F(TraceTest, ThreadsGetDistinctTids) {
  Tracer::Get().Enable();
  { TraceSpan main_span("main-thread"); }
  std::thread t([] { TraceSpan span("other-thread"); });
  t.join();
  const std::string path = WriteTrace("trace_tids.json");
  auto doc = ParseJsonFile(path).ValueOrDie();
  std::remove(path.c_str());

  std::set<double> tids;
  for (const JsonValue& e : doc.Find("traceEvents")->items()) {
    tids.insert(e.Find("tid")->number_value());
  }
  EXPECT_EQ(doc.Find("traceEvents")->items().size(), 2u);
  EXPECT_EQ(tids.size(), 2u) << "both threads mapped to one tid";
}

TEST_F(TraceTest, MergePutsSidecarOnTheSharedTimeAxis) {
  Tracer& tracer = Tracer::Get();
  tracer.Enable();
  const int64_t epoch = tracer.epoch_ns();

  // Simulate a worker: same epoch, its own events, written to a sidecar.
  // (In production the worker is another process; one process exercises
  // the same serialize → parse → re-anchor path.)
  tracer.AddComplete("worker-span", "worker", epoch + 5'000'000,
                     2'000'000);
  const std::string sidecar = WriteTrace("trace_sidecar.json");
  tracer.Reset();
  tracer.SetEpochNs(epoch);

  tracer.AddComplete("coordinator-span", "shard", epoch + 1'000'000,
                     10'000'000);
  ASSERT_TRUE(tracer.MergeFromFile(sidecar).ok());
  std::remove(sidecar.c_str());

  const std::string merged = WriteTrace("trace_merged.json");
  auto doc = ParseJsonFile(merged).ValueOrDie();
  std::remove(merged.c_str());

  double worker_ts = -1, coordinator_ts = -1;
  for (const JsonValue& e : doc.Find("traceEvents")->items()) {
    if (e.Find("name")->string_value() == "worker-span") {
      worker_ts = e.Find("ts")->number_value();
    }
    if (e.Find("name")->string_value() == "coordinator-span") {
      coordinator_ts = e.Find("ts")->number_value();
    }
  }
  // Microseconds relative to the common epoch survive the round trip.
  EXPECT_DOUBLE_EQ(worker_ts, 5000.0);
  EXPECT_DOUBLE_EQ(coordinator_ts, 1000.0);
}

TEST_F(TraceTest, MergeRejectsNonTraceJson) {
  const std::string path = ::testing::TempDir() + "/trace_not_a_trace.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("{\"counters\": {}}", f);
  std::fclose(f);
  EXPECT_FALSE(Tracer::Get().MergeFromFile(path).ok());
  std::remove(path.c_str());
  EXPECT_TRUE(Tracer::Get().MergeFromFile("/no/such/sidecar.json")
                  .IsNotFound());
}

}  // namespace
}  // namespace robustmap
