#include "common/status.h"

#include <gtest/gtest.h>

#include <memory>

namespace robustmap {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCodesAndMessages) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_FALSE(Status::Internal("x").ok());
  EXPECT_EQ(Status::NotFound("missing").ToString(), "NotFound: missing");
}

TEST(StatusTest, ToStringWithoutMessage) {
  EXPECT_EQ(Status::Corruption("").ToString(), "Corruption");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.ValueOrDie(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, MoveOnlyValueOrDie) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(9);
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 9);
}

TEST(ResultTest, ReturnIfErrorMacro) {
  auto fails = []() -> Status { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    RM_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsInternal());
}

}  // namespace
}  // namespace robustmap
