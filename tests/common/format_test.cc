#include "common/format.h"

#include <gtest/gtest.h>

namespace robustmap {
namespace {

TEST(FormatSecondsTest, Units) {
  EXPECT_EQ(FormatSeconds(5e-9), "5 ns");
  EXPECT_EQ(FormatSeconds(5e-6), "5 us");
  EXPECT_EQ(FormatSeconds(5e-3), "5 ms");
  EXPECT_EQ(FormatSeconds(5), "5 s");
  EXPECT_EQ(FormatSeconds(1234), "1234 s");
}

TEST(FormatBytesTest, Units) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(8192), "8 KiB");
  EXPECT_EQ(FormatBytes(uint64_t{6} << 30), "6 GiB");
}

TEST(FormatCountTest, ThousandsSeparators) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1,000");
  EXPECT_EQ(FormatCount(61341), "61,341");
  EXPECT_EQ(FormatCount(1234567890), "1,234,567,890");
}

TEST(FormatSelectivityTest, PowersOfTwo) {
  EXPECT_EQ(FormatSelectivity(1.0), "1");
  EXPECT_EQ(FormatSelectivity(0.5), "2^-1");
  EXPECT_EQ(FormatSelectivity(0.0078125), "2^-7");
  EXPECT_EQ(FormatSelectivity(0.0), "0");
}

TEST(FormatSelectivityTest, NonPowers) {
  EXPECT_EQ(FormatSelectivity(0.3), "0.3");
}

TEST(TextTableTest, AlignsColumns) {
  TextTable t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer", "22"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("name    value"), std::string::npos);
  EXPECT_NE(s.find("longer  22"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TextTableTest, PadsMissingCells) {
  TextTable t({"a", "b", "c"});
  t.AddRow({"only"});
  EXPECT_NE(t.ToString().find("only"), std::string::npos);
}

}  // namespace
}  // namespace robustmap
