#include "common/math_util.h"

#include <gtest/gtest.h>

#include <cmath>

namespace robustmap {
namespace {

TEST(Log2GridTest, EndpointsAndSpacing) {
  auto grid = Log2Grid(-4, 0);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid.front(), 0.0625);
  EXPECT_DOUBLE_EQ(grid.back(), 1.0);
  for (size_t i = 0; i + 1 < grid.size(); ++i) {
    EXPECT_DOUBLE_EQ(grid[i + 1] / grid[i], 2.0);
  }
}

TEST(Log2GridTest, FineGrid) {
  auto grid = Log2GridFine(-2, 0, 2);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_NEAR(grid[1] / grid[0], std::sqrt(2.0), 1e-12);
}

TEST(FloorLog2Test, Values) {
  EXPECT_EQ(FloorLog2(1), 0);
  EXPECT_EQ(FloorLog2(2), 1);
  EXPECT_EQ(FloorLog2(3), 1);
  EXPECT_EQ(FloorLog2(1024), 10);
  EXPECT_EQ(FloorLog2((uint64_t{1} << 40) + 5), 40);
}

TEST(ExpectedDistinctPagesTest, Limits) {
  // Fetching 0 rows touches 0 pages.
  EXPECT_DOUBLE_EQ(ExpectedDistinctPages(0, 1000, 64), 0);
  // Fetching vastly more rows than pages touches ~all pages.
  EXPECT_NEAR(ExpectedDistinctPages(1e7, 1000, 64), 1000, 1e-6);
  // One row touches one page.
  EXPECT_NEAR(ExpectedDistinctPages(1, 1000, 64), 1.0, 1e-3);
  // Monotone in rows.
  EXPECT_LT(ExpectedDistinctPages(100, 1000, 64),
            ExpectedDistinctPages(200, 1000, 64));
}

TEST(ClampLerpTest, Basics) {
  EXPECT_DOUBLE_EQ(Clamp(5, 0, 3), 3);
  EXPECT_DOUBLE_EQ(Clamp(-1, 0, 3), 0);
  EXPECT_DOUBLE_EQ(Clamp(2, 0, 3), 2);
  EXPECT_DOUBLE_EQ(Lerp(10, 20, 0.5), 15);
}

TEST(ApproxEqualTest, RelativeTolerance) {
  EXPECT_TRUE(ApproxEqual(100.0, 101.0, 0.02));
  EXPECT_FALSE(ApproxEqual(100.0, 110.0, 0.02));
  EXPECT_TRUE(ApproxEqual(0.0, 0.005, 0.01));  // small numbers: abs scale 1
}

TEST(GeometricMeanTest, Values) {
  EXPECT_DOUBLE_EQ(GeometricMean({4, 4, 4}), 4);
  EXPECT_NEAR(GeometricMean({1, 100}), 10, 1e-9);
}

TEST(PercentileTest, Values) {
  std::vector<double> v = {5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 5);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 3);
  EXPECT_DOUBLE_EQ(Percentile(v, 25), 2);
}

}  // namespace
}  // namespace robustmap
