#include "common/minijson.h"

#include <gtest/gtest.h>

#include <fstream>
#include <string>

namespace robustmap {
namespace {

TEST(MiniJsonTest, ParsesScalars) {
  EXPECT_TRUE(ParseJson("null").ValueOrDie().is_null());
  EXPECT_TRUE(ParseJson("true").ValueOrDie().bool_value());
  EXPECT_FALSE(ParseJson("false").ValueOrDie().bool_value());
  EXPECT_DOUBLE_EQ(ParseJson("-12.5e2").ValueOrDie().number_value(),
                   -1250.0);
  EXPECT_EQ(ParseJson("\"hi\"").ValueOrDie().string_value(), "hi");
}

TEST(MiniJsonTest, ParsesNestedStructures) {
  auto v = ParseJson(R"({"a": [1, 2, {"b": true}], "c": "x"})").ValueOrDie();
  ASSERT_TRUE(v.is_object());
  const JsonValue* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->items().size(), 3u);
  EXPECT_DOUBLE_EQ(a->items()[0].number_value(), 1.0);
  const JsonValue* b = a->items()[2].Find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b->bool_value());
  EXPECT_EQ(v.Find("c")->string_value(), "x");
  EXPECT_EQ(v.Find("missing"), nullptr);
}

TEST(MiniJsonTest, MembersKeepFileOrder) {
  auto v = ParseJson(R"({"z": 1, "a": 2, "m": 3})").ValueOrDie();
  ASSERT_EQ(v.members().size(), 3u);
  EXPECT_EQ(v.members()[0].first, "z");
  EXPECT_EQ(v.members()[1].first, "a");
  EXPECT_EQ(v.members()[2].first, "m");
}

TEST(MiniJsonTest, DecodesEscapes) {
  auto v = ParseJson(R"("a\"b\\c\ndA")").ValueOrDie();
  EXPECT_EQ(v.string_value(), "a\"b\\c\ndA");
}

TEST(MiniJsonTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseJson("12x").ok());
  EXPECT_FALSE(ParseJson("{} trailing").ok());
}

TEST(MiniJsonTest, ErrorsCarryByteOffsets) {
  auto r = ParseJson("[1, x]");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("byte 4"), std::string::npos)
      << r.status().ToString();
}

TEST(MiniJsonTest, FileNotFoundVsCorruption) {
  EXPECT_TRUE(ParseJsonFile("/no/such/file.json").status().IsNotFound());
  const std::string path = ::testing::TempDir() + "/minijson_corrupt.json";
  std::ofstream(path) << "{broken";
  auto r = ParseJsonFile(path);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption()) << r.status().ToString();
  std::remove(path.c_str());
}

TEST(MiniJsonTest, EscapeRoundTripsThroughParse) {
  const std::string raw = "quote\" slash\\ newline\n tab\t ctrl\x01 end";
  std::string doc = "\"";
  doc += JsonEscape(raw);
  doc += "\"";
  auto v = ParseJson(doc).ValueOrDie();
  EXPECT_EQ(v.string_value(), raw);
}

}  // namespace
}  // namespace robustmap
