#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace robustmap {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, BoundedStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Mix64Test, IsDeterministicAndSpreads) {
  EXPECT_EQ(Mix64(42), Mix64(42));
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 1000; ++i) outputs.insert(Mix64(i));
  EXPECT_EQ(outputs.size(), 1000u);
}

}  // namespace
}  // namespace robustmap
