#include "storage/heap_table.h"

#include <gtest/gtest.h>

namespace robustmap {
namespace {

class HeapTableTest : public ::testing::Test {
 protected:
  HeapTableTest() : device_(DiskParameters{}, &clock_), pool_(&device_, 64) {
    ctx_.clock = &clock_;
    ctx_.device = &device_;
    ctx_.pool = &pool_;
  }
  VirtualClock clock_;
  SimDevice device_;
  LruBufferPool pool_;
  RunContext ctx_;
};

TEST_F(HeapTableTest, AppendAndReadBack) {
  auto table =
      HeapTable::Create(&device_, 1000, HeapTableOptions{}).ValueOrDie();
  for (int64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(table->Append(&ctx_, {i, i * 2, 0, 0}).ok());
  }
  ASSERT_TRUE(table->Finish(&ctx_).ok());
  EXPECT_EQ(table->num_rows(), 500u);

  std::vector<Row> rows;
  for (uint64_t p = 0; p < table->num_pages(); ++p) {
    ASSERT_TRUE(table->ReadPage(&ctx_, p, true, &rows).ok());
  }
  ASSERT_EQ(rows.size(), 500u);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].rid, i);
    EXPECT_EQ(rows[i].cols[0], static_cast<int64_t>(i));
    EXPECT_EQ(rows[i].cols[1], static_cast<int64_t>(i) * 2);
  }
}

TEST_F(HeapTableTest, FetchRowMatchesAppended) {
  auto table =
      HeapTable::Create(&device_, 300, HeapTableOptions{}).ValueOrDie();
  for (int64_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(table->Append(&ctx_, {i * 7, -i, 0, 0}).ok());
  }
  ASSERT_TRUE(table->Finish(&ctx_).ok());
  Row r;
  ASSERT_TRUE(table->FetchRow(&ctx_, 123, &r).ok());
  EXPECT_EQ(r.rid, 123u);
  EXPECT_EQ(r.cols[0], 123 * 7);
  EXPECT_EQ(r.cols[1], -123);
  EXPECT_TRUE(r.HasCol(0));
  EXPECT_TRUE(r.HasCol(1));
  EXPECT_FALSE(r.HasCol(2));
}

TEST_F(HeapTableTest, RowsPerPageFromRowSize) {
  HeapTableOptions opts;
  opts.row_size_bytes = 128;
  auto table = HeapTable::Create(&device_, 1000, opts).ValueOrDie();
  // (8192 - 16-byte header) / 128 = 63 rows per page.
  EXPECT_EQ(table->rows_per_page(), 63u);
}

TEST_F(HeapTableTest, RejectsBadOptions) {
  HeapTableOptions opts;
  opts.num_columns = 0;
  EXPECT_TRUE(
      HeapTable::Create(&device_, 10, opts).status().IsInvalidArgument());
  opts.num_columns = 5;
  EXPECT_TRUE(
      HeapTable::Create(&device_, 10, opts).status().IsInvalidArgument());
  opts.num_columns = 4;
  opts.row_size_bytes = 8;  // too small for 4 columns
  EXPECT_TRUE(
      HeapTable::Create(&device_, 10, opts).status().IsInvalidArgument());
}

TEST_F(HeapTableTest, RejectsOverflowAndBadRids) {
  auto table = HeapTable::Create(&device_, 10, HeapTableOptions{}).ValueOrDie();
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(table->Append(&ctx_, {i, i, 0, 0}).ok());
  }
  ASSERT_TRUE(table->Finish(&ctx_).ok());
  Row r;
  EXPECT_TRUE(table->FetchRow(&ctx_, 10, &r).IsOutOfRange());
  std::vector<Row> rows;
  Status read_status = table->ReadPage(&ctx_, table->num_pages(), true, &rows);
  EXPECT_TRUE(read_status.IsOutOfRange());
  EXPECT_TRUE(table->Append(&ctx_, {0, 0, 0, 0}).IsInvalidArgument());
}

TEST_F(HeapTableTest, AppendsChargeWrites) {
  auto table =
      HeapTable::Create(&device_, 200, HeapTableOptions{}).ValueOrDie();
  for (int64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(table->Append(&ctx_, {i, i, 0, 0}).ok());
  }
  ASSERT_TRUE(table->Finish(&ctx_).ok());
  EXPECT_EQ(device_.stats().writes, table->num_pages());
}

TEST_F(HeapTableTest, PageOfRidUsesExtentBase) {
  device_.AllocateExtent(17);  // shift the next extent
  auto table =
      HeapTable::Create(&device_, 300, HeapTableOptions{}).ValueOrDie();
  EXPECT_EQ(table->base_page(), 17u);
  EXPECT_EQ(table->PageOfRid(0), 17u);
  EXPECT_EQ(table->PageOfRid(table->rows_per_page()), 18u);
}

}  // namespace
}  // namespace robustmap
