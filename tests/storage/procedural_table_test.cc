#include "storage/procedural_table.h"

#include <gtest/gtest.h>

#include <map>

namespace robustmap {
namespace {

class ProceduralTableTest : public ::testing::Test {
 protected:
  ProceduralTableTest()
      : device_(DiskParameters{}, &clock_), pool_(&device_, 64) {
    ctx_.clock = &clock_;
    ctx_.device = &device_;
    ctx_.pool = &pool_;
  }
  VirtualClock clock_;
  SimDevice device_;
  LruBufferPool pool_;
  RunContext ctx_;
};

ProceduralTableOptions SmallOptions() {
  ProceduralTableOptions opts;
  opts.row_bits = 12;   // 4096 rows
  opts.value_bits = 6;  // 64 values, 64 duplicates each
  return opts;
}

TEST_F(ProceduralTableTest, ExactlyUniformValueCounts) {
  auto table = ProceduralTable::Create(&device_, SmallOptions()).ValueOrDie();
  for (uint32_t col = 0; col < 2; ++col) {
    std::map<int64_t, int> counts;
    for (Rid rid = 0; rid < table->num_rows(); ++rid) {
      ++counts[table->ValueAt(rid, col)];
    }
    ASSERT_EQ(counts.size(), 64u);
    for (const auto& [value, count] : counts) {
      ASSERT_GE(value, 0);
      ASSERT_LT(value, 64);
      ASSERT_EQ(count, 64) << "value " << value;
    }
  }
}

TEST_F(ProceduralTableTest, ColumnsAreDecorrelated) {
  auto table = ProceduralTable::Create(&device_, SmallOptions()).ValueOrDie();
  // Count rows where both columns land in the lower half of the domain:
  // should be ~1/4 of rows for independent columns.
  uint64_t both = 0;
  for (Rid rid = 0; rid < table->num_rows(); ++rid) {
    if (table->ValueAt(rid, 0) < 32 && table->ValueAt(rid, 1) < 32) ++both;
  }
  double frac = static_cast<double>(both) / table->num_rows();
  EXPECT_NEAR(frac, 0.25, 0.03);
}

TEST_F(ProceduralTableTest, ReadPageMatchesValueAt) {
  auto table = ProceduralTable::Create(&device_, SmallOptions()).ValueOrDie();
  std::vector<Row> rows;
  ASSERT_TRUE(table->ReadPage(&ctx_, 3, false, &rows).ok());
  ASSERT_EQ(rows.size(), table->rows_per_page());
  for (const Row& r : rows) {
    EXPECT_EQ(r.cols[0], table->ValueAt(r.rid, 0));
    EXPECT_EQ(r.cols[1], table->ValueAt(r.rid, 1));
  }
  EXPECT_EQ(rows.front().rid, 3u * table->rows_per_page());
}

TEST_F(ProceduralTableTest, FetchRowMatchesValueAt) {
  auto table = ProceduralTable::Create(&device_, SmallOptions()).ValueOrDie();
  Row r;
  ASSERT_TRUE(table->FetchRow(&ctx_, 1234, &r).ok());
  EXPECT_EQ(r.rid, 1234u);
  EXPECT_EQ(r.cols[0], table->ValueAt(1234, 0));
  EXPECT_EQ(r.cols[1], table->ValueAt(1234, 1));
}

TEST_F(ProceduralTableTest, FetchChargesIoAndCpu) {
  auto table = ProceduralTable::Create(&device_, SmallOptions()).ValueOrDie();
  Row r;
  ASSERT_TRUE(table->FetchRow(&ctx_, 0, &r).ok());
  EXPECT_GT(clock_.now_ns(), 0);
  EXPECT_EQ(device_.stats().total_reads(), 1u);
}

TEST_F(ProceduralTableTest, DeterministicAcrossInstances) {
  auto t1 = ProceduralTable::Create(&device_, SmallOptions()).ValueOrDie();
  auto t2 = ProceduralTable::Create(&device_, SmallOptions()).ValueOrDie();
  for (Rid rid = 0; rid < 100; ++rid) {
    EXPECT_EQ(t1->ValueAt(rid, 0), t2->ValueAt(rid, 0));
    EXPECT_EQ(t1->ValueAt(rid, 1), t2->ValueAt(rid, 1));
  }
}

TEST_F(ProceduralTableTest, SeedChangesContent) {
  auto opts = SmallOptions();
  auto t1 = ProceduralTable::Create(&device_, opts).ValueOrDie();
  opts.seed = 99;
  auto t2 = ProceduralTable::Create(&device_, opts).ValueOrDie();
  int same = 0;
  for (Rid rid = 0; rid < 1000; ++rid) {
    if (t1->ValueAt(rid, 0) == t2->ValueAt(rid, 0)) ++same;
  }
  EXPECT_LT(same, 100);  // ~1/64 expected by chance
}

TEST_F(ProceduralTableTest, RejectsBadOptions) {
  ProceduralTableOptions opts;
  opts.row_bits = 13;  // odd
  EXPECT_FALSE(ProceduralTable::Create(&device_, opts).ok());
  opts.row_bits = 12;
  opts.value_bits = 13;  // > row_bits
  EXPECT_FALSE(ProceduralTable::Create(&device_, opts).ok());
  opts.value_bits = 6;
  opts.num_columns = 0;
  EXPECT_FALSE(ProceduralTable::Create(&device_, opts).ok());
}

TEST_F(ProceduralTableTest, OutOfRangeErrors) {
  auto table = ProceduralTable::Create(&device_, SmallOptions()).ValueOrDie();
  Row r;
  EXPECT_TRUE(table->FetchRow(&ctx_, table->num_rows(), &r).IsOutOfRange());
  std::vector<Row> rows;
  EXPECT_TRUE(
      table->ReadPage(&ctx_, table->num_pages(), false, &rows).IsOutOfRange());
}

}  // namespace
}  // namespace robustmap
