#include "core/landmarks.h"

#include <gtest/gtest.h>

#include <cmath>

namespace robustmap {
namespace {

std::vector<double> Xs(int n) {
  std::vector<double> xs;
  for (int i = 0; i < n; ++i) xs.push_back(std::exp2(i - n + 1));
  return xs;
}

TEST(LandmarksTest, CleanLinearCurve) {
  auto xs = Xs(8);
  std::vector<double> costs;
  for (double x : xs) costs.push_back(10 * x);
  auto lm = AnalyzeCurve(xs, costs);
  EXPECT_TRUE(lm.clean());
}

TEST(LandmarksTest, DetectsMonotonicityViolation) {
  auto xs = Xs(5);
  std::vector<double> costs = {1, 2, 1.5, 4, 8};  // dips at index 1->2
  auto lm = AnalyzeCurve(xs, costs);
  ASSERT_EQ(lm.monotonicity_violations.size(), 1u);
  EXPECT_EQ(lm.monotonicity_violations[0].index, 1u);
  EXPECT_DOUBLE_EQ(lm.monotonicity_violations[0].cost_from, 2);
  EXPECT_DOUBLE_EQ(lm.monotonicity_violations[0].cost_to, 1.5);
}

TEST(LandmarksTest, SlackToleratesNoise) {
  auto xs = Xs(4);
  std::vector<double> costs = {1.0, 2.0, 1.99, 4.0};  // 0.5% dip
  LandmarkOptions opts;
  opts.monotonicity_slack = 0.02;
  EXPECT_TRUE(AnalyzeCurve(xs, costs, opts).monotonicity_violations.empty());
}

TEST(LandmarksTest, DetectsDiscontinuity) {
  auto xs = Xs(5);
  std::vector<double> costs = {1, 1.1, 1.2, 50, 55};  // cliff at 2->3
  auto lm = AnalyzeCurve(xs, costs);
  ASSERT_EQ(lm.discontinuities.size(), 1u);
  EXPECT_EQ(lm.discontinuities[0].index, 2u);
  EXPECT_NEAR(lm.discontinuities[0].ratio, 50 / 1.2, 1e-9);
}

TEST(LandmarksTest, DetectsSteepening) {
  // Flat then growing: the marginal cost rises well above its earlier
  // minimum — the improved index scan's signature (paper §3.1).
  auto xs = Xs(8);
  std::vector<double> costs = {5, 5, 5, 5, 5, 5.2, 9, 17};
  auto lm = AnalyzeCurve(xs, costs);
  EXPECT_FALSE(lm.steepening_points.empty());
  EXPECT_GE(lm.steepening_points.front().index, 4u);
}

TEST(LandmarksTest, FlatteningCurveHasNoSteepening) {
  // Concave (flattening) cost: marginal cost decreases everywhere.
  auto xs = Xs(8);
  std::vector<double> costs;
  for (double x : xs) costs.push_back(std::sqrt(x) + 0.001);
  auto lm = AnalyzeCurve(xs, costs);
  EXPECT_TRUE(lm.steepening_points.empty());
}

TEST(LandmarksTest, AffineCurveHasNoSteepening) {
  // Fixed overhead plus constant per-row cost (e.g. a covering merge join):
  // the marginal cost is constant, so no flattening violation — even though
  // the log-log slope rises from ~0 to ~1.
  auto xs = Xs(10);
  std::vector<double> costs;
  for (double x : xs) costs.push_back(3.0 + 40.0 * x);
  auto lm = AnalyzeCurve(xs, costs);
  EXPECT_TRUE(lm.steepening_points.empty());
}

TEST(LandmarksTest, ShortCurvesAreClean) {
  EXPECT_TRUE(AnalyzeCurve({1.0}, {5.0}).clean());
  EXPECT_TRUE(AnalyzeCurve({}, {}).clean());
}

TEST(SymmetryTest, SymmetricSurface) {
  ParameterSpace space = ParameterSpace::TwoD(Axis::Selectivity("a", -3, 0),
                                              Axis::Selectivity("b", -3, 0));
  std::vector<double> grid(space.num_points());
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      grid[space.IndexOf(i, j)] = static_cast<double>(1 + i + j);  // symmetric
    }
  }
  SymmetryScore score = ComputeSymmetry(space, grid);
  EXPECT_DOUBLE_EQ(score.max_abs_log2_ratio, 0);
  EXPECT_TRUE(score.is_symmetric());
}

TEST(SymmetryTest, AsymmetricSurface) {
  ParameterSpace space = ParameterSpace::TwoD(Axis::Selectivity("a", -3, 0),
                                              Axis::Selectivity("b", -3, 0));
  std::vector<double> grid(space.num_points());
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      grid[space.IndexOf(i, j)] = std::exp2(static_cast<double>(i));  // x only
    }
  }
  SymmetryScore score = ComputeSymmetry(space, grid);
  EXPECT_GT(score.max_abs_log2_ratio, 2.9);
  EXPECT_FALSE(score.is_symmetric());
}

TEST(SymmetryTest, NonSquareReturnsZero) {
  ParameterSpace space = ParameterSpace::TwoD(Axis::Selectivity("a", -2, 0),
                                              Axis::Selectivity("b", -3, 0));
  std::vector<double> grid(space.num_points(), 1.0);
  EXPECT_DOUBLE_EQ(ComputeSymmetry(space, grid).max_abs_log2_ratio, 0);
}

}  // namespace
}  // namespace robustmap
