// The observability hard invariant, checked at sweep level: enabling the
// tracer and the telemetry sink must not change a single map byte, on the
// serial and the threaded backend alike. (CI checks the same for the
// sharded-process backend by byte-diffing merged .rmt files.)
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/trace.h"
#include "core/sweep.h"
#include "core/sweep_telemetry.h"
#include "testing/map_expect.h"
#include "testing/test_env.h"

namespace robustmap {
namespace {

using ::robustmap::testing::ExpectMapsBitIdentical;
using ::robustmap::testing::ProcEnv;

class SweepTraceIdentityTest : public ::testing::Test {
 protected:
  void SetUp() override { DisableAll(); }
  void TearDown() override { DisableAll(); }

  static void DisableAll() {
    Tracer::Get().Reset();
    Tracer::Get().Disable();
    SweepTelemetry::Get().Reset();
    SweepTelemetry::Get().Disable();
  }
};

std::vector<PlanKind> IdentityPlans() {
  return {PlanKind::kTableScan, PlanKind::kIndexAImproved,
          PlanKind::kHashJoinAB, PlanKind::kMdamAB};
}

ParameterSpace IdentitySpace() {
  return ParameterSpace::TwoD(Axis::Selectivity("a", -5, 0),
                              Axis::Selectivity("b", -5, 0));
}

TEST_F(SweepTraceIdentityTest, TracingOnVsOffIsBitIdentical) {
  ProcEnv env;
  Executor executor(env.db());
  ParameterSpace space = IdentitySpace();

  for (unsigned threads : {1u, 4u}) {
    SCOPED_TRACE(std::to_string(threads) + " threads");
    SweepOptions opts;
    opts.num_threads = threads;

    DisableAll();
    auto untraced =
        SweepStudyPlans(env.ctx(), executor, IdentityPlans(), space, opts)
            .ValueOrDie();

    Tracer::Get().Enable();
    SweepTelemetry::Get().Enable();
    auto traced =
        SweepStudyPlans(env.ctx(), executor, IdentityPlans(), space, opts)
            .ValueOrDie();

    // The instrumented run must have actually observed something — a
    // trivially-green test with dead instrumentation proves nothing.
    EXPECT_GT(Tracer::Get().event_count(), 0u);
    const auto counters = SweepTelemetry::Get().Counters();
    const auto cells = counters.find("sweep.cells_measured");
    ASSERT_NE(cells, counters.end());
    EXPECT_EQ(cells->second, IdentityPlans().size() * space.num_points());
    EXPECT_NE(SweepTelemetry::Get().Histograms().count("sweep.cell_seconds"),
              0u);

    ExpectMapsBitIdentical(untraced, traced);
  }
}

TEST_F(SweepTraceIdentityTest, PoolViewCountersCoverEveryWorker) {
  ProcEnv env;
  Executor executor(env.db());
  ParameterSpace space = IdentitySpace();

  SweepTelemetry::Get().Enable();
  SweepOptions opts;
  opts.num_threads = 3;
  ASSERT_TRUE(
      SweepStudyPlans(env.ctx(), executor, IdentityPlans(), space, opts)
          .ok());
  const auto counters = SweepTelemetry::Get().Counters();
  size_t views = 0;
  for (const auto& [name, value] : counters) {
    if (name.rfind("pool.view_", 0) == 0 &&
        name.find(".hits") != std::string::npos) {
      ++views;
    }
  }
  EXPECT_EQ(views, 3u) << "one pool.view_NNN.hits counter per worker";
}

}  // namespace
}  // namespace robustmap
