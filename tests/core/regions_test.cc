#include "core/regions.h"

#include <gtest/gtest.h>

namespace robustmap {
namespace {

ParameterSpace Grid4x4() {
  return ParameterSpace::TwoD(Axis::Selectivity("a", -3, 0),
                              Axis::Selectivity("b", -3, 0));
}

TEST(RegionsTest, EmptySet) {
  ParameterSpace space = Grid4x4();
  RegionStats stats = AnalyzeRegions(space, std::vector<bool>(16, false));
  EXPECT_EQ(stats.num_regions, 0);
  EXPECT_EQ(stats.member_cells, 0u);
  EXPECT_TRUE(stats.is_contiguous());
  EXPECT_DOUBLE_EQ(stats.fragmentation, 0);
}

TEST(RegionsTest, FullSetIsOneRegion) {
  ParameterSpace space = Grid4x4();
  RegionStats stats = AnalyzeRegions(space, std::vector<bool>(16, true));
  EXPECT_EQ(stats.num_regions, 1);
  EXPECT_EQ(stats.largest_region, 16u);
  EXPECT_DOUBLE_EQ(stats.fragmentation, 0);
}

TEST(RegionsTest, TwoDiagonalCellsAreTwoRegions) {
  ParameterSpace space = Grid4x4();
  std::vector<bool> member(16, false);
  member[space.IndexOf(0, 0)] = true;
  member[space.IndexOf(1, 1)] = true;  // diagonal: not 4-connected
  RegionStats stats = AnalyzeRegions(space, member);
  EXPECT_EQ(stats.num_regions, 2);
  EXPECT_FALSE(stats.is_contiguous());
  EXPECT_DOUBLE_EQ(stats.fragmentation, 0.5);
}

TEST(RegionsTest, LShapeIsOneRegion) {
  ParameterSpace space = Grid4x4();
  std::vector<bool> member(16, false);
  member[space.IndexOf(0, 0)] = true;
  member[space.IndexOf(0, 1)] = true;
  member[space.IndexOf(1, 1)] = true;
  RegionStats stats = AnalyzeRegions(space, member);
  EXPECT_EQ(stats.num_regions, 1);
  EXPECT_EQ(stats.largest_region, 3u);
}

TEST(RegionsTest, LabelsIdentifyComponents) {
  ParameterSpace space = Grid4x4();
  std::vector<bool> member(16, false);
  member[space.IndexOf(0, 0)] = true;
  member[space.IndexOf(3, 3)] = true;
  RegionStats stats = AnalyzeRegions(space, member);
  EXPECT_EQ(stats.num_regions, 2);
  EXPECT_NE(stats.labels[space.IndexOf(0, 0)], -1);
  EXPECT_NE(stats.labels[space.IndexOf(3, 3)], -1);
  EXPECT_NE(stats.labels[space.IndexOf(0, 0)],
            stats.labels[space.IndexOf(3, 3)]);
  EXPECT_EQ(stats.labels[space.IndexOf(1, 1)], -1);
}

TEST(RegionsTest, OneDimensionalRuns) {
  ParameterSpace space = ParameterSpace::OneD(Axis::Selectivity("s", -5, 0));
  // Pattern: X X . X . X  -> 3 runs.
  std::vector<bool> member = {true, true, false, true, false, true};
  RegionStats stats = AnalyzeRegions(space, member);
  EXPECT_EQ(stats.num_regions, 3);
  EXPECT_EQ(stats.largest_region, 2u);
  EXPECT_EQ(stats.member_cells, 4u);
}

}  // namespace
}  // namespace robustmap
