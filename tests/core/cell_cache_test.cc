#include "core/cell_cache.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/parameter_space.h"
#include "testing/test_env.h"

namespace robustmap {
namespace {

using ::robustmap::testing::ProcEnv;

Measurement SampleMeasurement(double seconds, const std::string& label) {
  Measurement m;
  m.seconds = seconds;
  m.output_rows = 17;
  m.io.sequential_reads = 3;
  m.io.skip_reads = 1;
  m.io.random_reads = 2;
  m.io.writes = 4;
  m.io.buffer_hits = 9;
  m.io.bytes_read = 1 << 14;
  m.io.bytes_written = 1 << 12;
  m.plan_label = label;
  return m;
}

void ExpectMeasurementsEqual(const Measurement& a, const Measurement& b) {
  EXPECT_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.output_rows, b.output_rows);
  EXPECT_EQ(a.io.sequential_reads, b.io.sequential_reads);
  EXPECT_EQ(a.io.skip_reads, b.io.skip_reads);
  EXPECT_EQ(a.io.random_reads, b.io.random_reads);
  EXPECT_EQ(a.io.writes, b.io.writes);
  EXPECT_EQ(a.io.buffer_hits, b.io.buffer_hits);
  EXPECT_EQ(a.io.bytes_read, b.io.bytes_read);
  EXPECT_EQ(a.io.bytes_written, b.io.bytes_written);
  EXPECT_EQ(a.plan_label, b.plan_label);
}

/// Entries inserted in descending fingerprint order, so the writer's
/// sort-before-serialize is actually exercised.
CellCacheData SampleData() {
  CellCacheData data;
  for (uint64_t i = 0; i < 5; ++i) {
    CellCacheEntry e;
    e.fingerprint = 0x9000 - i * 0x100;
    e.study = i % 2 == 0 ? "plain" : "warmcold";
    e.m = SampleMeasurement(0.5 + static_cast<double>(i),
                            "plan" + std::to_string(i));
    data.entries.push_back(std::move(e));
  }
  return data;
}

std::string Serialize(const CellCacheData& data) {
  std::ostringstream os;
  EXPECT_TRUE(WriteCellCache(os, data).ok());
  return os.str();
}

Result<CellCacheData> Parse(const std::string& bytes) {
  std::istringstream is(bytes);
  return ReadCellCache(is);
}

/// A fresh directory per test case, so attached-cache state never bleeds
/// between tests or repeated runs of one binary.
std::string FreshCacheDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/cell_cache_" + name + "_" +
                    std::to_string(::getpid());
  std::remove(CellCacheFileName(dir).c_str());
  return dir;
}

TEST(CellCacheIoTest, RoundTripPreservesEveryFieldAndSortsEntries) {
  const CellCacheData data = SampleData();
  auto back = Parse(Serialize(data));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().fingerprint_schema,
            kCellCacheFingerprintSchemaVersion);
  ASSERT_EQ(back.value().entries.size(), data.entries.size());
  // The writer serializes ascending by fingerprint whatever the caller's
  // order; SampleData inserted descending, so the round trip reverses it.
  for (size_t i = 0; i < back.value().entries.size(); ++i) {
    const CellCacheEntry& got = back.value().entries[i];
    const CellCacheEntry& want = data.entries[data.entries.size() - 1 - i];
    EXPECT_EQ(got.fingerprint, want.fingerprint);
    EXPECT_EQ(got.study, want.study);
    ExpectMeasurementsEqual(got.m, want.m);
    if (i > 0) {
      EXPECT_LT(back.value().entries[i - 1].fingerprint, got.fingerprint);
    }
  }
}

TEST(CellCacheIoTest, EqualContentsSerializeToEqualBytes) {
  CellCacheData forward = SampleData();
  CellCacheData reversed;
  reversed.entries.assign(forward.entries.rbegin(), forward.entries.rend());
  EXPECT_EQ(Serialize(forward), Serialize(reversed));
}

TEST(CellCacheIoTest, DuplicateFingerprintsAreRejectedAtWriteTime) {
  CellCacheData data = SampleData();
  data.entries.push_back(data.entries.front());
  std::ostringstream os;
  Status s = WriteCellCache(os, data);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

TEST(CellCacheIoTest, TruncationIsCorruptionAtEveryLength) {
  const std::string bytes = Serialize(SampleData());
  // Every proper prefix must be a loud Corruption — never a quietly
  // shorter cache.
  for (size_t len : {size_t{0}, size_t{4}, size_t{11}, size_t{30},
                     bytes.size() / 2, bytes.size() - 1}) {
    auto r = Parse(bytes.substr(0, len));
    ASSERT_FALSE(r.ok()) << "prefix of " << len << " bytes parsed";
    EXPECT_TRUE(r.status().IsCorruption()) << r.status().ToString();
  }
}

TEST(CellCacheIoTest, BitFlipIsCorruption) {
  std::string bytes = Serialize(SampleData());
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x20);
  auto r = Parse(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption()) << r.status().ToString();
}

TEST(CellCacheIoTest, WrongMagicIsCorruption) {
  std::string bytes = Serialize(SampleData());
  bytes[0] = 'X';
  auto r = Parse(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption()) << r.status().ToString();
}

TEST(CellCacheIoTest, UnknownFormatVersionIsNotSupported) {
  std::string bytes = Serialize(SampleData());
  // The u32 format version sits right after the 8-byte magic; a future
  // version must be NotSupported (upgrade the reader), not Corruption
  // (re-measure), even though the checksum no longer matches either.
  bytes[8] = 99;
  auto r = Parse(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotSupported()) << r.status().ToString();
}

TEST(CellCacheIoTest, StaleFingerprintSchemaParsesFine) {
  CellCacheData data = SampleData();
  data.fingerprint_schema = kCellCacheFingerprintSchemaVersion + 7;
  auto back = Parse(Serialize(data));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().fingerprint_schema,
            kCellCacheFingerprintSchemaVersion + 7);
  EXPECT_EQ(back.value().entries.size(), data.entries.size());
}

TEST(CellCacheIoTest, MissingFileIsNotFound) {
  auto r = ReadCellCacheFile(::testing::TempDir() + "/no_such_cells.rmc");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound()) << r.status().ToString();
}

TEST(CellCacheIoTest, FileRoundTripAndAtomicReplace) {
  const std::string dir = FreshCacheDir("file_roundtrip");
  {
    CellResultCache seed;
    seed.Open(dir);  // the free writer expects the directory to exist
  }
  const std::string path = CellCacheFileName(dir);
  ASSERT_TRUE(WriteCellCacheFile(path, SampleData()).ok());
  auto first = ReadCellCacheFile(path);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.value().entries.size(), 5u);

  CellCacheData updated = SampleData();
  CellCacheEntry extra;
  extra.fingerprint = 0xffff;
  extra.study = "plain";
  extra.m = SampleMeasurement(9.0, "extra");
  updated.entries.push_back(std::move(extra));
  ASSERT_TRUE(WriteCellCacheFile(path, updated).ok());
  auto second = ReadCellCacheFile(path);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().entries.size(), 6u);
}

TEST(CellResultCacheTest, PublishLookupAndFirstWriterWins) {
  CellResultCache cache;  // in-memory: never attached, never flushed
  EXPECT_FALSE(cache.attached());
  Measurement out;
  EXPECT_FALSE(cache.Lookup(42, &out));
  EXPECT_FALSE(cache.Contains(42));

  EXPECT_TRUE(cache.Publish(42, "plain", SampleMeasurement(1.0, "scan")));
  EXPECT_FALSE(cache.Publish(42, "plain", SampleMeasurement(2.0, "scan")));
  EXPECT_EQ(cache.size(), 1u);
  ASSERT_TRUE(cache.Lookup(42, &out));
  EXPECT_EQ(out.seconds, 1.0);  // the first writer's value survived
}

TEST(CellResultCacheTest, OpenFlushReopenKeepsEntries) {
  const std::string dir = FreshCacheDir("reopen");
  {
    CellResultCache cache;
    cache.Open(dir);
    EXPECT_TRUE(cache.attached());
    EXPECT_EQ(cache.size(), 0u);
    cache.Publish(7, "plain", SampleMeasurement(0.25, "scan"));
    ASSERT_TRUE(cache.WriteCellCacheFile().ok());
  }
  CellResultCache cache;
  cache.Open(dir);
  EXPECT_EQ(cache.size(), 1u);
  Measurement out;
  ASSERT_TRUE(cache.Lookup(7, &out));
  EXPECT_EQ(out.seconds, 0.25);
  EXPECT_EQ(out.plan_label, "scan");
}

TEST(CellResultCacheTest, CleanCacheFlushIsANoOp) {
  const std::string dir = FreshCacheDir("clean_flush");
  CellResultCache cache;
  cache.Open(dir);
  cache.Publish(1, "plain", SampleMeasurement(1.0, "scan"));
  ASSERT_TRUE(cache.WriteCellCacheFile().ok());
  // Nothing new since the flush: the file must not be rewritten (remove
  // it and flush again — a no-op leaves it absent).
  ASSERT_EQ(std::remove(CellCacheFileName(dir).c_str()), 0);
  ASSERT_TRUE(cache.WriteCellCacheFile().ok());
  EXPECT_FALSE(std::ifstream(CellCacheFileName(dir)).good());
}

TEST(CellResultCacheTest, OpenToleratesDamageAndRepopulates) {
  // Each damage flavor: Open must warn-and-start-empty, never error, and
  // the next publish+flush must leave a healthy cache behind.
  struct DamageCase {
    const char* name;
    void (*damage)(const std::string& path);
  };
  const DamageCase cases[] = {
      {"garbage",
       [](const std::string& path) {
         std::ofstream f(path, std::ios::binary | std::ios::trunc);
         f << "not a cache at all";
       }},
      {"truncated",
       [](const std::string& path) {
         CellCacheData data;
         CellCacheEntry e;
         e.fingerprint = 5;
         e.study = "plain";
         e.m.seconds = 1.0;
         data.entries.push_back(std::move(e));
         std::ostringstream os;
         ASSERT_TRUE(WriteCellCache(os, data).ok());
         const std::string bytes = os.str();
         std::ofstream f(path, std::ios::binary | std::ios::trunc);
         f.write(bytes.data(),
                 static_cast<std::streamsize>(bytes.size() - 6));
       }},
      {"wrong_version",
       [](const std::string& path) {
         std::ostringstream os;
         ASSERT_TRUE(WriteCellCache(os, CellCacheData{}).ok());
         std::string bytes = os.str();
         bytes[8] = 77;
         std::ofstream f(path, std::ios::binary | std::ios::trunc);
         f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
       }},
      {"stale_schema",
       [](const std::string& path) {
         CellCacheData data;
         data.fingerprint_schema = kCellCacheFingerprintSchemaVersion + 1;
         CellCacheEntry e;
         e.fingerprint = 5;
         e.study = "plain";
         e.m.seconds = 1.0;
         data.entries.push_back(std::move(e));
         ASSERT_TRUE(WriteCellCacheFile(path, data).ok());
       }},
  };
  for (const DamageCase& dc : cases) {
    SCOPED_TRACE(dc.name);
    const std::string dir = FreshCacheDir(std::string("damage_") + dc.name);
    {
      CellResultCache seed;
      seed.Open(dir);  // creates the directory
    }
    dc.damage(CellCacheFileName(dir));

    CellResultCache cache;
    cache.Open(dir);
    EXPECT_TRUE(cache.attached());
    EXPECT_EQ(cache.size(), 0u);  // damaged contents dropped wholesale

    cache.Publish(9, "plain", SampleMeasurement(0.5, "scan"));
    ASSERT_TRUE(cache.WriteCellCacheFile().ok());
    auto healed = ReadCellCacheFile(CellCacheFileName(dir));
    ASSERT_TRUE(healed.ok()) << healed.status().ToString();
    EXPECT_EQ(healed.value().fingerprint_schema,
              kCellCacheFingerprintSchemaVersion);
    ASSERT_EQ(healed.value().entries.size(), 1u);
    EXPECT_EQ(healed.value().entries[0].fingerprint, 9u);
  }
}

TEST(CellFingerprintTest, DistinctInputsYieldDistinctKeys) {
  ProcEnv env;
  const uint64_t e = EnvironmentFingerprint(*env.ctx(), env.domain());
  EXPECT_EQ(e, EnvironmentFingerprint(*env.ctx(), env.domain()));  // stable
  EXPECT_NE(e, EnvironmentFingerprint(*env.ctx(), env.domain() + 1));

  const uint64_t base = CellFingerprint(e, "plain", "cold", "scan", 0.5, 1.0);
  EXPECT_EQ(base, CellFingerprint(e, "plain", "cold", "scan", 0.5, 1.0));
  EXPECT_NE(base, CellFingerprint(e + 1, "plain", "cold", "scan", 0.5, 1.0));
  EXPECT_NE(base, CellFingerprint(e, "warmcold", "cold", "scan", 0.5, 1.0));
  EXPECT_NE(base,
            CellFingerprint(e, "plain", "resident:0.5", "scan", 0.5, 1.0));
  EXPECT_NE(base, CellFingerprint(e, "plain", "cold", "idx.a", 0.5, 1.0));
  EXPECT_NE(base, CellFingerprint(e, "plain", "cold", "scan", 0.25, 1.0));
  EXPECT_NE(base, CellFingerprint(e, "plain", "cold", "scan", 0.5, 0.5));
}

TEST(CellFingerprintTest, MemoryBudgetsChangeTheEnvironment) {
  ProcEnv env;
  const uint64_t before = EnvironmentFingerprint(*env.ctx(), env.domain());
  const uint64_t saved = env.ctx()->sort_memory_bytes;
  env.ctx()->sort_memory_bytes = saved + 4096;
  EXPECT_NE(before, EnvironmentFingerprint(*env.ctx(), env.domain()));
  env.ctx()->sort_memory_bytes = saved;
  EXPECT_EQ(before, EnvironmentFingerprint(*env.ctx(), env.domain()));
}

TEST(CellFingerprintTest, RefinedGridHalfLatticeSharesKeys) {
  // The refinement contract: a 2x-refined selectivity grid's even lattice
  // carries bit-identical axis values to the coarse grid (i/2 steps are
  // exact in binary), so the coarse sweep's cache entries are hits for
  // exactly the coincident half-lattice of the fine sweep.
  ProcEnv env;
  const uint64_t e = EnvironmentFingerprint(*env.ctx(), env.domain());
  ParameterSpace coarse = ParameterSpace::TwoD(
      Axis::Selectivity("a", -4, 0), Axis::Selectivity("b", -4, 0));
  ParameterSpace fine =
      ParameterSpace::TwoD(Axis::SelectivityFine("a", -4, 0, 2),
                           Axis::SelectivityFine("b", -4, 0, 2));
  ASSERT_EQ(fine.x_size(), 2 * coarse.x_size() - 1);
  size_t shared = 0;
  for (size_t fxi = 0; fxi < fine.x_size(); ++fxi) {
    for (size_t fyi = 0; fyi < fine.y_size(); ++fyi) {
      const size_t fpt = fine.IndexOf(fxi, fyi);
      const uint64_t fine_fp = CellFingerprint(
          e, "plain", "cold", "scan", fine.x_value(fpt), fine.y_value(fpt));
      if (fxi % 2 == 0 && fyi % 2 == 0) {
        const size_t cpt = coarse.IndexOf(fxi / 2, fyi / 2);
        EXPECT_EQ(fine_fp,
                  CellFingerprint(e, "plain", "cold", "scan",
                                  coarse.x_value(cpt), coarse.y_value(cpt)));
        ++shared;
      }
    }
  }
  EXPECT_EQ(shared, coarse.num_points());

  // SubsampleSpace — the engine's coarse-level constructor — keeps the
  // parent's values verbatim, so its lattice shares keys the same way.
  ParameterSpace sub = SubsampleSpace(fine, 2);
  ASSERT_EQ(sub.x_size(), coarse.x_size());
  for (size_t pt = 0; pt < sub.num_points(); ++pt) {
    EXPECT_EQ(CellFingerprint(e, "plain", "cold", "scan", sub.x_value(pt),
                              sub.y_value(pt)),
              CellFingerprint(e, "plain", "cold", "scan",
                              coarse.x_value(pt), coarse.y_value(pt)));
  }
}

}  // namespace
}  // namespace robustmap
