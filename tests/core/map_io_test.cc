#include "core/map_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "testing/map_expect.h"

namespace robustmap {
namespace {

using ::robustmap::testing::ExpectMapsBitIdentical;

ParameterSpace SmallSpace() {
  return ParameterSpace::TwoD(Axis::Selectivity("sel(a)", -3, 0),
                              Axis::Selectivity("sel(b)", -2, 0));
}

/// A map with distinctive, per-cell-unique values in every field, so any
/// mix-up of cells or fields during (de)serialization shows.
RobustnessMap FillMap(const ParameterSpace& space,
                      const std::vector<std::string>& labels) {
  RobustnessMap map(space, labels);
  for (size_t pl = 0; pl < labels.size(); ++pl) {
    for (size_t pt = 0; pt < space.num_points(); ++pt) {
      Measurement m;
      m.seconds = 0.125 * static_cast<double>(pl * 100 + pt) + 1e-9;
      m.output_rows = pl * 1000 + pt;
      m.io.sequential_reads = pt + 1;
      m.io.skip_reads = pt + 2;
      m.io.random_reads = pt + 3;
      m.io.writes = pl;
      m.io.buffer_hits = pl + pt;
      m.io.bytes_read = (pt + 1) * 8192;
      m.io.bytes_written = pl * 8192;
      m.plan_label = labels[pl];
      map.Set(pl, pt, std::move(m));
    }
  }
  return map;
}

MapTile FullTile(const ParameterSpace& space,
                 const std::vector<std::string>& labels) {
  TileSpec spec;
  spec.shard_id = 7;
  spec.x_begin = 0;
  spec.x_end = space.x_size();
  spec.y_begin = 0;
  spec.y_end = space.y_size();
  return MapTile{spec, space, FillMap(space, labels)};
}

std::string Serialize(const MapTile& tile) {
  std::ostringstream os;
  EXPECT_TRUE(WriteMapTile(os, tile).ok());
  return os.str();
}

Result<MapTile> Deserialize(const std::string& bytes) {
  std::istringstream is(bytes);
  return ReadMapTile(is);
}

/// Independent FNV-1a 64 implementation (cross-checks the library's
/// constant choice as a side effect).
uint64_t TestFnv1a64(const std::string& data) {
  uint64_t h = 14695981039346656037ull;
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// Builds the v1 byte stream of `tile` out of the current writer's v2
/// bytes: drop the 8-byte wall_seconds field that v2 inserted after the
/// version word, patch the version back to 1, and restamp the trailing
/// checksum. This is exactly the layout the v1 writer produced, so the
/// reader's backward-compatibility promise gets tested against real v1
/// bytes without checking a binary blob into the repo.
std::string SerializeAsV1(const MapTile& tile) {
  std::string v2 = Serialize(tile);
  constexpr size_t kWallOffset = 8 + 4;  // magic + version
  std::string v1 = v2.substr(0, kWallOffset) + v2.substr(kWallOffset + 8);
  v1[8] = 1;  // version word is little-endian; low byte carries the value
  v1.resize(v1.size() - 8);  // strip the now-stale checksum
  const uint64_t checksum = TestFnv1a64(v1);
  for (int i = 0; i < 8; ++i) {
    v1.push_back(static_cast<char>((checksum >> (8 * i)) & 0xff));
  }
  return v1;
}

TEST(MapIoTest, RoundTripsFullTile) {
  ParameterSpace space = SmallSpace();
  MapTile tile = FullTile(space, {"scan", "idx.a"});
  auto back = Deserialize(Serialize(tile)).ValueOrDie();
  EXPECT_EQ(back.spec, tile.spec);
  EXPECT_TRUE(back.parent_space == space);
  ExpectMapsBitIdentical(back.map, tile.map);
}

TEST(MapIoTest, RoundTripsSubRectangleTileAndOneD) {
  ParameterSpace space = SmallSpace();
  TileSpec spec;
  spec.shard_id = 3;
  spec.x_begin = 1;
  spec.x_end = 3;
  spec.y_begin = 0;
  spec.y_end = 2;
  ParameterSpace sub = SliceSpace(space, spec).ValueOrDie();
  MapTile tile{spec, space, FillMap(sub, {"p"})};
  auto back = Deserialize(Serialize(tile)).ValueOrDie();
  EXPECT_EQ(back.spec, tile.spec);
  ExpectMapsBitIdentical(back.map, tile.map);

  ParameterSpace line = ParameterSpace::OneD(Axis::Selectivity("a", -4, 0));
  TileSpec lspec;
  lspec.x_begin = 0;
  lspec.x_end = line.x_size();
  lspec.y_begin = 0;
  lspec.y_end = 1;
  MapTile ltile{lspec, line, FillMap(line, {"p", "q"})};
  auto lback = Deserialize(Serialize(ltile)).ValueOrDie();
  EXPECT_FALSE(lback.parent_space.is_2d());
  ExpectMapsBitIdentical(lback.map, ltile.map);
}

TEST(MapIoTest, WallSecondsMetadataRoundTrips) {
  MapTile tile = FullTile(SmallSpace(), {"scan"});
  tile.wall_seconds = 12.375;
  auto back = Deserialize(Serialize(tile)).ValueOrDie();
  EXPECT_DOUBLE_EQ(back.wall_seconds, 12.375);
  ExpectMapsBitIdentical(back.map, tile.map);

  // The default is "unrecorded": maps merged rather than measured must
  // serialize with wall 0, keeping equal maps byte-equal across runs.
  MapTile untimed = FullTile(SmallSpace(), {"scan"});
  EXPECT_DOUBLE_EQ(Deserialize(Serialize(untimed)).ValueOrDie().wall_seconds,
                   0.0);
}

TEST(MapIoTest, ReadsVersionOneFiles) {
  // The backward-compatibility contract: a v1 byte stream (no wall-time
  // field) reads cleanly under the v2 reader, cell for cell, with the
  // missing metadata defaulting to "unrecorded".
  ParameterSpace space = SmallSpace();
  MapTile tile = FullTile(space, {"scan", "idx.a"});
  tile.wall_seconds = 99.0;  // must NOT survive: v1 cannot carry it
  const std::string v1 = SerializeAsV1(tile);
  auto back = Deserialize(v1).ValueOrDie();
  EXPECT_EQ(back.spec, tile.spec);
  EXPECT_TRUE(back.parent_space == space);
  EXPECT_DOUBLE_EQ(back.wall_seconds, 0.0);
  ExpectMapsBitIdentical(back.map, tile.map);
}

TEST(MapIoTest, VersionOneTruncationAndCorruptionStayDistinct) {
  const std::string v1 = SerializeAsV1(FullTile(SmallSpace(), {"scan"}));
  for (size_t keep : {size_t{5}, v1.size() / 2, v1.size() - 1}) {
    auto r = Deserialize(v1.substr(0, keep));
    ASSERT_FALSE(r.ok()) << "kept " << keep;
    EXPECT_TRUE(r.status().IsCorruption()) << r.status().ToString();
  }
  std::string damaged = v1;
  damaged[damaged.size() / 2] ^= 0x01;
  auto r = Deserialize(damaged);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption());
  EXPECT_NE(r.status().message().find("checksum"), std::string::npos);
}

TEST(MapIoTest, TruncationInsideWallMetadataIsCorruption) {
  std::string bytes = Serialize(FullTile(SmallSpace(), {"scan"}));
  // Cut mid-way through the v2 wall_seconds field (starts at byte 12).
  auto r = Deserialize(bytes.substr(0, 15));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST(MapIoTest, SerializationIsDeterministic) {
  // The CI workflow diffs merged maps byte for byte; that only means
  // something if equal tiles serialize to equal bytes.
  MapTile tile = FullTile(SmallSpace(), {"scan"});
  EXPECT_EQ(Serialize(tile), Serialize(tile));
}

TEST(MapIoTest, RejectsMapNotMatchingItsRectangle) {
  ParameterSpace space = SmallSpace();
  TileSpec spec;  // claims a 2x1 rectangle, map covers the full space
  spec.x_begin = 0;
  spec.x_end = 2;
  spec.y_begin = 0;
  spec.y_end = 1;
  MapTile tile{spec, space, FillMap(space, {"p"})};
  std::ostringstream os;
  Status s = WriteMapTile(os, tile);
  EXPECT_TRUE(s.IsInvalidArgument());
}

TEST(MapIoTest, TruncatedFileIsCorruption) {
  std::string bytes = Serialize(FullTile(SmallSpace(), {"scan", "idx.a"}));
  for (size_t keep : {size_t{5}, bytes.size() / 2, bytes.size() - 1}) {
    auto r = Deserialize(bytes.substr(0, keep));
    ASSERT_FALSE(r.ok()) << "kept " << keep;
    EXPECT_TRUE(r.status().IsCorruption()) << r.status().ToString();
  }
}

TEST(MapIoTest, FlippedByteIsCorruption) {
  std::string bytes = Serialize(FullTile(SmallSpace(), {"scan"}));
  // Flip one byte mid-payload (past magic and version, before the
  // checksum): the checksum must catch it.
  std::string damaged = bytes;
  damaged[damaged.size() / 2] ^= 0x01;
  auto r = Deserialize(damaged);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption());
  EXPECT_NE(r.status().message().find("checksum"), std::string::npos);
}

TEST(MapIoTest, FlippedChecksumByteIsCorruption) {
  std::string bytes = Serialize(FullTile(SmallSpace(), {"scan"}));
  std::string damaged = bytes;
  damaged[damaged.size() - 1] ^= 0x80;  // inside the stored checksum itself
  auto r = Deserialize(damaged);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST(MapIoTest, WrongVersionIsNotSupported) {
  std::string bytes = Serialize(FullTile(SmallSpace(), {"scan"}));
  std::string future = bytes;
  future[8] = 99;  // version field follows the 8-byte magic, little-endian
  auto r = Deserialize(future);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotSupported());
  EXPECT_NE(r.status().message().find("version"), std::string::npos);
}

TEST(MapIoTest, BadMagicIsCorruption) {
  std::string bytes = Serialize(FullTile(SmallSpace(), {"scan"}));
  bytes[0] = 'X';
  auto r = Deserialize(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST(MapIoTest, FileRoundTripAndMissingFile) {
  std::string path = ::testing::TempDir() + "/map_io_roundtrip.rmt";
  MapTile tile = FullTile(SmallSpace(), {"scan", "idx.a"});
  ASSERT_TRUE(WriteMapTileFile(path, tile).ok());
  auto back = ReadMapTileFile(path).ValueOrDie();
  ExpectMapsBitIdentical(back.map, tile.map);
  std::remove(path.c_str());
  EXPECT_TRUE(ReadMapTileFile(path).status().IsNotFound());
}

TEST(MergeTilesTest, ReassemblesPartitionedMap) {
  ParameterSpace space = SmallSpace();
  std::vector<std::string> labels = {"scan", "idx.a", "idx.b"};
  RobustnessMap full = FillMap(space, labels);
  auto tiles = ShardPlanner::Partition(space, 4).ValueOrDie();
  std::vector<MapTile> pieces;
  for (const TileSpec& t : tiles) {
    ParameterSpace sub = SliceSpace(space, t).ValueOrDie();
    RobustnessMap piece(sub, labels);
    for (size_t pl = 0; pl < labels.size(); ++pl) {
      for (size_t yi = 0; yi < sub.y_size(); ++yi) {
        for (size_t xi = 0; xi < sub.x_size(); ++xi) {
          piece.Set(pl, sub.IndexOf(xi, yi),
                    full.At(pl, space.IndexOf(t.x_begin + xi,
                                              t.y_begin + yi)));
        }
      }
    }
    pieces.push_back(MapTile{t, space, std::move(piece)});
  }
  auto merged = MergeTiles(space, labels, pieces).ValueOrDie();
  ExpectMapsBitIdentical(merged, full);
}

TEST(MergeTilesTest, RejectsMismatchedAxes) {
  ParameterSpace space = SmallSpace();
  ParameterSpace other = ParameterSpace::TwoD(
      Axis::Selectivity("sel(a)", -4, 0),  // one octave more than space
      Axis::Selectivity("sel(b)", -2, 0));
  std::vector<std::string> labels = {"scan"};
  MapTile tile = FullTile(other, labels);
  auto merged = MergeTiles(space, labels, {tile});
  ASSERT_FALSE(merged.ok());
  EXPECT_TRUE(merged.status().IsInvalidArgument());
  EXPECT_NE(merged.status().message().find("different grid"),
            std::string::npos);
}

TEST(MergeTilesTest, RejectsMismatchedPlans) {
  ParameterSpace space = SmallSpace();
  MapTile tile = FullTile(space, {"scan"});
  auto merged = MergeTiles(space, {"scan", "idx.a"}, {tile});
  ASSERT_FALSE(merged.ok());
  EXPECT_TRUE(merged.status().IsInvalidArgument());
}

TEST(MergeTilesTest, RejectsOverlapAndGaps) {
  ParameterSpace space = SmallSpace();
  std::vector<std::string> labels = {"scan"};
  MapTile full = FullTile(space, labels);
  auto overlap = MergeTiles(space, labels, {full, full});
  ASSERT_FALSE(overlap.ok());
  EXPECT_NE(overlap.status().message().find("overlap"), std::string::npos);

  auto gap = MergeTiles(space, labels, {});
  ASSERT_FALSE(gap.ok());
  EXPECT_NE(gap.status().message().find("no tile covers"),
            std::string::npos);
}

}  // namespace
}  // namespace robustmap
