#include "core/map_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "testing/map_expect.h"

namespace robustmap {
namespace {

using ::robustmap::testing::ExpectMapsBitIdentical;

ParameterSpace SmallSpace() {
  return ParameterSpace::TwoD(Axis::Selectivity("sel(a)", -3, 0),
                              Axis::Selectivity("sel(b)", -2, 0));
}

/// A map with distinctive, per-cell-unique values in every field, so any
/// mix-up of cells or fields during (de)serialization shows.
RobustnessMap FillMap(const ParameterSpace& space,
                      const std::vector<std::string>& labels) {
  RobustnessMap map(space, labels);
  for (size_t pl = 0; pl < labels.size(); ++pl) {
    for (size_t pt = 0; pt < space.num_points(); ++pt) {
      Measurement m;
      m.seconds = 0.125 * static_cast<double>(pl * 100 + pt) + 1e-9;
      m.output_rows = pl * 1000 + pt;
      m.io.sequential_reads = pt + 1;
      m.io.skip_reads = pt + 2;
      m.io.random_reads = pt + 3;
      m.io.writes = pl;
      m.io.buffer_hits = pl + pt;
      m.io.bytes_read = (pt + 1) * 8192;
      m.io.bytes_written = pl * 8192;
      m.plan_label = labels[pl];
      map.Set(pl, pt, std::move(m));
    }
  }
  return map;
}

MapTile FullTile(const ParameterSpace& space,
                 const std::vector<std::string>& labels) {
  TileSpec spec;
  spec.shard_id = 7;
  spec.x_begin = 0;
  spec.x_end = space.x_size();
  spec.y_begin = 0;
  spec.y_end = space.y_size();
  return MapTile{spec, space, FillMap(space, labels)};
}

std::string Serialize(const MapTile& tile) {
  std::ostringstream os;
  EXPECT_TRUE(WriteMapTile(os, tile).ok());
  return os.str();
}

Result<MapTile> Deserialize(const std::string& bytes) {
  std::istringstream is(bytes);
  return ReadMapTile(is);
}

/// Independent FNV-1a 64 implementation (cross-checks the library's
/// constant choice as a side effect).
uint64_t TestFnv1a64(const std::string& data) {
  uint64_t h = 14695981039346656037ull;
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// Builds the v1 byte stream of `tile` out of the current writer's v2
/// bytes: drop the 8-byte wall_seconds field that v2 inserted after the
/// version word, patch the version back to 1, and restamp the trailing
/// checksum. This is exactly the layout the v1 writer produced, so the
/// reader's backward-compatibility promise gets tested against real v1
/// bytes without checking a binary blob into the repo.
std::string SerializeAsV1(const MapTile& tile) {
  std::string v2 = Serialize(tile);
  constexpr size_t kWallOffset = 8 + 4;  // magic + version
  std::string v1 = v2.substr(0, kWallOffset) + v2.substr(kWallOffset + 8);
  v1[8] = 1;  // version word is little-endian; low byte carries the value
  v1.resize(v1.size() - 8);  // strip the now-stale checksum
  const uint64_t checksum = TestFnv1a64(v1);
  for (int i = 0; i < 8; ++i) {
    v1.push_back(static_cast<char>((checksum >> (8 * i)) & 0xff));
  }
  return v1;
}

TEST(MapIoTest, RoundTripsFullTile) {
  ParameterSpace space = SmallSpace();
  MapTile tile = FullTile(space, {"scan", "idx.a"});
  auto back = Deserialize(Serialize(tile)).ValueOrDie();
  EXPECT_EQ(back.spec, tile.spec);
  EXPECT_TRUE(back.parent_space == space);
  ExpectMapsBitIdentical(back.map, tile.map);
}

TEST(MapIoTest, RoundTripsSubRectangleTileAndOneD) {
  ParameterSpace space = SmallSpace();
  TileSpec spec;
  spec.shard_id = 3;
  spec.x_begin = 1;
  spec.x_end = 3;
  spec.y_begin = 0;
  spec.y_end = 2;
  ParameterSpace sub = SliceSpace(space, spec).ValueOrDie();
  MapTile tile{spec, space, FillMap(sub, {"p"})};
  auto back = Deserialize(Serialize(tile)).ValueOrDie();
  EXPECT_EQ(back.spec, tile.spec);
  ExpectMapsBitIdentical(back.map, tile.map);

  ParameterSpace line = ParameterSpace::OneD(Axis::Selectivity("a", -4, 0));
  TileSpec lspec;
  lspec.x_begin = 0;
  lspec.x_end = line.x_size();
  lspec.y_begin = 0;
  lspec.y_end = 1;
  MapTile ltile{lspec, line, FillMap(line, {"p", "q"})};
  auto lback = Deserialize(Serialize(ltile)).ValueOrDie();
  EXPECT_FALSE(lback.parent_space.is_2d());
  ExpectMapsBitIdentical(lback.map, ltile.map);
}

TEST(MapIoTest, WallSecondsMetadataRoundTrips) {
  MapTile tile = FullTile(SmallSpace(), {"scan"});
  tile.wall_seconds = 12.375;
  auto back = Deserialize(Serialize(tile)).ValueOrDie();
  EXPECT_DOUBLE_EQ(back.wall_seconds, 12.375);
  ExpectMapsBitIdentical(back.map, tile.map);

  // The default is "unrecorded": maps merged rather than measured must
  // serialize with wall 0, keeping equal maps byte-equal across runs.
  MapTile untimed = FullTile(SmallSpace(), {"scan"});
  EXPECT_DOUBLE_EQ(Deserialize(Serialize(untimed)).ValueOrDie().wall_seconds,
                   0.0);
}

TEST(MapIoTest, ReadsVersionOneFiles) {
  // The backward-compatibility contract: a v1 byte stream (no wall-time
  // field) reads cleanly under the v2 reader, cell for cell, with the
  // missing metadata defaulting to "unrecorded".
  ParameterSpace space = SmallSpace();
  MapTile tile = FullTile(space, {"scan", "idx.a"});
  tile.wall_seconds = 99.0;  // must NOT survive: v1 cannot carry it
  const std::string v1 = SerializeAsV1(tile);
  auto back = Deserialize(v1).ValueOrDie();
  EXPECT_EQ(back.spec, tile.spec);
  EXPECT_TRUE(back.parent_space == space);
  EXPECT_DOUBLE_EQ(back.wall_seconds, 0.0);
  ExpectMapsBitIdentical(back.map, tile.map);
}

TEST(MapIoTest, VersionOneTruncationAndCorruptionStayDistinct) {
  const std::string v1 = SerializeAsV1(FullTile(SmallSpace(), {"scan"}));
  for (size_t keep : {size_t{5}, v1.size() / 2, v1.size() - 1}) {
    auto r = Deserialize(v1.substr(0, keep));
    ASSERT_FALSE(r.ok()) << "kept " << keep;
    EXPECT_TRUE(r.status().IsCorruption()) << r.status().ToString();
  }
  std::string damaged = v1;
  damaged[damaged.size() / 2] ^= 0x01;
  auto r = Deserialize(damaged);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption());
  EXPECT_NE(r.status().message().find("checksum"), std::string::npos);
}

TEST(MapIoTest, TruncationInsideWallMetadataIsCorruption) {
  std::string bytes = Serialize(FullTile(SmallSpace(), {"scan"}));
  // Cut mid-way through the v2 wall_seconds field (starts at byte 12).
  auto r = Deserialize(bytes.substr(0, 15));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST(MapIoTest, SerializationIsDeterministic) {
  // The CI workflow diffs merged maps byte for byte; that only means
  // something if equal tiles serialize to equal bytes.
  MapTile tile = FullTile(SmallSpace(), {"scan"});
  EXPECT_EQ(Serialize(tile), Serialize(tile));
}

TEST(MapIoTest, RejectsMapNotMatchingItsRectangle) {
  ParameterSpace space = SmallSpace();
  TileSpec spec;  // claims a 2x1 rectangle, map covers the full space
  spec.x_begin = 0;
  spec.x_end = 2;
  spec.y_begin = 0;
  spec.y_end = 1;
  MapTile tile{spec, space, FillMap(space, {"p"})};
  std::ostringstream os;
  Status s = WriteMapTile(os, tile);
  EXPECT_TRUE(s.IsInvalidArgument());
}

TEST(MapIoTest, TruncatedFileIsCorruption) {
  std::string bytes = Serialize(FullTile(SmallSpace(), {"scan", "idx.a"}));
  for (size_t keep : {size_t{5}, bytes.size() / 2, bytes.size() - 1}) {
    auto r = Deserialize(bytes.substr(0, keep));
    ASSERT_FALSE(r.ok()) << "kept " << keep;
    EXPECT_TRUE(r.status().IsCorruption()) << r.status().ToString();
  }
}

TEST(MapIoTest, FlippedByteIsCorruption) {
  std::string bytes = Serialize(FullTile(SmallSpace(), {"scan"}));
  // Flip one byte mid-payload (past magic and version, before the
  // checksum): the checksum must catch it.
  std::string damaged = bytes;
  damaged[damaged.size() / 2] ^= 0x01;
  auto r = Deserialize(damaged);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption());
  EXPECT_NE(r.status().message().find("checksum"), std::string::npos);
}

TEST(MapIoTest, FlippedChecksumByteIsCorruption) {
  std::string bytes = Serialize(FullTile(SmallSpace(), {"scan"}));
  std::string damaged = bytes;
  damaged[damaged.size() - 1] ^= 0x80;  // inside the stored checksum itself
  auto r = Deserialize(damaged);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST(MapIoTest, WrongVersionIsNotSupported) {
  std::string bytes = Serialize(FullTile(SmallSpace(), {"scan"}));
  std::string future = bytes;
  future[8] = 99;  // version field follows the 8-byte magic, little-endian
  auto r = Deserialize(future);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotSupported());
  EXPECT_NE(r.status().message().find("version"), std::string::npos);
}

TEST(MapIoTest, BadMagicIsCorruption) {
  std::string bytes = Serialize(FullTile(SmallSpace(), {"scan"}));
  bytes[0] = 'X';
  auto r = Deserialize(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST(MapIoTest, FileRoundTripAndMissingFile) {
  std::string path = ::testing::TempDir() + "/map_io_roundtrip.rmt";
  MapTile tile = FullTile(SmallSpace(), {"scan", "idx.a"});
  ASSERT_TRUE(WriteMapTileFile(path, tile).ok());
  auto back = ReadMapTileFile(path).ValueOrDie();
  ExpectMapsBitIdentical(back.map, tile.map);
  std::remove(path.c_str());
  EXPECT_TRUE(ReadMapTileFile(path).status().IsNotFound());
}

/// A three-layer warm-cold-shaped tile: layer 0 plus two derived layers
/// over the same slice and plan set, all named.
MapTile MultiLayerTile(const ParameterSpace& space,
                       const std::vector<std::string>& labels) {
  MapTile tile = FullTile(space, labels);
  tile.layer_names = {"cold", "warm", "delta"};
  RobustnessMap warm = tile.map;
  RobustnessMap delta = tile.map;
  for (size_t pl = 0; pl < warm.num_plans(); ++pl) {
    for (size_t pt = 0; pt < warm.space().num_points(); ++pt) {
      Measurement w = warm.At(pl, pt);
      w.seconds *= 0.25;
      warm.Set(pl, pt, std::move(w));
      Measurement d = delta.At(pl, pt);
      d.seconds *= -0.75;
      delta.Set(pl, pt, std::move(d));
    }
  }
  tile.extra_layers = {std::move(warm), std::move(delta)};
  return tile;
}

TEST(MapIoTest, MultiLayerTileRoundTrips) {
  ParameterSpace space = SmallSpace();
  MapTile tile = MultiLayerTile(space, {"scan", "idx.a"});
  tile.wall_seconds = 4.5;
  const std::string bytes = Serialize(tile);
  // Multi-layer tiles are the v3 byte stream (version word follows the
  // 8-byte magic, little-endian).
  EXPECT_EQ(bytes[8], 3);
  auto back = Deserialize(bytes).ValueOrDie();
  ASSERT_EQ(back.num_layers(), 3u);
  EXPECT_EQ(back.layer_names, tile.layer_names);
  EXPECT_DOUBLE_EQ(back.wall_seconds, 4.5);
  for (size_t li = 0; li < 3; ++li) {
    SCOPED_TRACE(li);
    ExpectMapsBitIdentical(back.layer(li), tile.layer(li));
  }
  // Deterministic bytes, layer cells included — the per-layer CI byte
  // diffs rely on this exactly as the single-layer ones do.
  EXPECT_EQ(bytes, Serialize(tile));
}

TEST(MapIoTest, SingleLayerTilesStayOnVersionTwoBytes) {
  // The byte-stability contract of the multi-layer change: a plain
  // single-layer tile serializes to exactly the pre-multi-layer v2 stream,
  // so artifacts produced before and after the layer field merge compare
  // equal under cmp(1).
  const std::string bytes = Serialize(FullTile(SmallSpace(), {"scan"}));
  EXPECT_EQ(bytes[8], 2);
}

TEST(MapIoTest, MultiLayerTruncationAndCorruptionStayDistinct) {
  const std::string v3 = Serialize(MultiLayerTile(SmallSpace(), {"scan"}));
  for (size_t keep : {size_t{13}, v3.size() / 2, v3.size() - 1}) {
    auto r = Deserialize(v3.substr(0, keep));
    ASSERT_FALSE(r.ok()) << "kept " << keep;
    EXPECT_TRUE(r.status().IsCorruption()) << r.status().ToString();
  }
  std::string damaged = v3;
  damaged[damaged.size() / 2] ^= 0x01;
  auto r = Deserialize(damaged);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption());
  EXPECT_NE(r.status().message().find("checksum"), std::string::npos);
}

TEST(MapIoTest, WriterRejectsMalformedLayerSets) {
  ParameterSpace space = SmallSpace();
  // Multi-layer without names: the merge keys on layer names, so an
  // anonymous multi-layer tile is unwritable by construction.
  MapTile unnamed = MultiLayerTile(space, {"scan"});
  unnamed.layer_names.clear();
  std::ostringstream os;
  EXPECT_TRUE(WriteMapTile(os, unnamed).IsInvalidArgument());

  // One name too few.
  MapTile short_names = MultiLayerTile(space, {"scan"});
  short_names.layer_names.pop_back();
  EXPECT_TRUE(WriteMapTile(os, short_names).IsInvalidArgument());

  // A layer over a different plan set than layer 0.
  MapTile mixed = MultiLayerTile(space, {"scan"});
  mixed.extra_layers[0] = FillMap(mixed.map.space(), {"other"});
  EXPECT_TRUE(WriteMapTile(os, mixed).IsInvalidArgument());
}

TEST(MergeTilesTest, MergesEveryLayerAndChecksLayerAgreement) {
  ParameterSpace space = SmallSpace();
  std::vector<std::string> labels = {"scan", "idx.a"};
  MapTile full = MultiLayerTile(space, labels);
  // Slice the three full-grid layers into per-tile pieces, then merge the
  // pieces back: every layer must reassemble bit-identically.
  auto tiles = ShardPlanner::Partition(space, 4).ValueOrDie();
  std::vector<MapTile> pieces;
  for (const TileSpec& t : tiles) {
    ParameterSpace sub = SliceSpace(space, t).ValueOrDie();
    MapTile piece{t, space, RobustnessMap(sub, labels)};
    piece.layer_names = full.layer_names;
    piece.extra_layers = {RobustnessMap(sub, labels),
                          RobustnessMap(sub, labels)};
    for (size_t li = 0; li < 3; ++li) {
      RobustnessMap& layer =
          li == 0 ? piece.map : piece.extra_layers[li - 1];
      for (size_t pl = 0; pl < labels.size(); ++pl) {
        for (size_t yi = 0; yi < sub.y_size(); ++yi) {
          for (size_t xi = 0; xi < sub.x_size(); ++xi) {
            layer.Set(pl, sub.IndexOf(xi, yi),
                      full.layer(li).At(
                          pl, space.IndexOf(t.x_begin + xi, t.y_begin + yi)));
          }
        }
      }
    }
    pieces.push_back(std::move(piece));
  }
  auto merged = MergeTileLayers(space, labels, pieces).ValueOrDie();
  ASSERT_EQ(merged.size(), 3u);
  for (size_t li = 0; li < 3; ++li) {
    SCOPED_TRACE(li);
    ExpectMapsBitIdentical(merged[li], full.layer(li));
  }

  // The single-layer entry point must refuse multi-layer tiles rather
  // than silently merging layer 0.
  auto single = MergeTiles(space, labels, {full});
  ASSERT_FALSE(single.ok());
  EXPECT_TRUE(single.status().IsInvalidArgument());

  // Tiles disagreeing on the study shape never merge.
  std::vector<MapTile> mixed;
  mixed.push_back(std::move(pieces[0]));
  for (size_t i = 1; i < pieces.size(); ++i) {
    MapTile plain{pieces[i].spec, space, std::move(pieces[i].map)};
    mixed.push_back(std::move(plain));
  }
  auto bad = MergeTileLayers(space, labels, mixed);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("different layers"),
            std::string::npos);
}

TEST(MergeTilesTest, ReassemblesPartitionedMap) {
  ParameterSpace space = SmallSpace();
  std::vector<std::string> labels = {"scan", "idx.a", "idx.b"};
  RobustnessMap full = FillMap(space, labels);
  auto tiles = ShardPlanner::Partition(space, 4).ValueOrDie();
  std::vector<MapTile> pieces;
  for (const TileSpec& t : tiles) {
    ParameterSpace sub = SliceSpace(space, t).ValueOrDie();
    RobustnessMap piece(sub, labels);
    for (size_t pl = 0; pl < labels.size(); ++pl) {
      for (size_t yi = 0; yi < sub.y_size(); ++yi) {
        for (size_t xi = 0; xi < sub.x_size(); ++xi) {
          piece.Set(pl, sub.IndexOf(xi, yi),
                    full.At(pl, space.IndexOf(t.x_begin + xi,
                                              t.y_begin + yi)));
        }
      }
    }
    pieces.push_back(MapTile{t, space, std::move(piece)});
  }
  auto merged = MergeTiles(space, labels, pieces).ValueOrDie();
  ExpectMapsBitIdentical(merged, full);
}

TEST(MergeTilesTest, RejectsMismatchedAxes) {
  ParameterSpace space = SmallSpace();
  ParameterSpace other = ParameterSpace::TwoD(
      Axis::Selectivity("sel(a)", -4, 0),  // one octave more than space
      Axis::Selectivity("sel(b)", -2, 0));
  std::vector<std::string> labels = {"scan"};
  MapTile tile = FullTile(other, labels);
  auto merged = MergeTiles(space, labels, {tile});
  ASSERT_FALSE(merged.ok());
  EXPECT_TRUE(merged.status().IsInvalidArgument());
  EXPECT_NE(merged.status().message().find("different grid"),
            std::string::npos);
}

TEST(MergeTilesTest, RejectsMismatchedPlans) {
  ParameterSpace space = SmallSpace();
  MapTile tile = FullTile(space, {"scan"});
  auto merged = MergeTiles(space, {"scan", "idx.a"}, {tile});
  ASSERT_FALSE(merged.ok());
  EXPECT_TRUE(merged.status().IsInvalidArgument());
}

TEST(MergeTilesTest, RejectsOverlapAndGaps) {
  ParameterSpace space = SmallSpace();
  std::vector<std::string> labels = {"scan"};
  MapTile full = FullTile(space, labels);
  auto overlap = MergeTiles(space, labels, {full, full});
  ASSERT_FALSE(overlap.ok());
  EXPECT_NE(overlap.status().message().find("overlap"), std::string::npos);

  auto gap = MergeTiles(space, labels, {});
  ASSERT_FALSE(gap.ok());
  EXPECT_NE(gap.status().message().find("no tile covers"),
            std::string::npos);
}

}  // namespace
}  // namespace robustmap
