#include "core/plan_diagram.h"

#include <gtest/gtest.h>

namespace robustmap {
namespace {

// 3x1 map: plan 0 wins points 0 and 2; plan 1 wins point 1; plan 2 never.
RobustnessMap MakeMap() {
  ParameterSpace space = ParameterSpace::OneD(Axis::Selectivity("s", -2, 0));
  RobustnessMap map(space, {"alpha", "beta", "gamma"});
  double costs[3][3] = {{1, 5, 1}, {2, 1, 3}, {9, 9, 9}};
  for (size_t pl = 0; pl < 3; ++pl) {
    for (size_t pt = 0; pt < 3; ++pt) {
      Measurement m;
      m.seconds = costs[pl][pt];
      map.Set(pl, pt, m);
    }
  }
  return map;
}

TEST(PlanDiagramTest, BestPlanAndCellsWon) {
  PlanDiagram d = ComputePlanDiagram(MakeMap());
  EXPECT_EQ(d.best_plan[0], 0u);
  EXPECT_EQ(d.best_plan[1], 1u);
  EXPECT_EQ(d.best_plan[2], 0u);
  EXPECT_EQ(d.cells_won[0], 2u);
  EXPECT_EQ(d.cells_won[1], 1u);
  EXPECT_EQ(d.cells_won[2], 0u);
}

TEST(PlanDiagramTest, WinnersSortedByRegionSize) {
  PlanDiagram d = ComputePlanDiagram(MakeMap());
  ASSERT_EQ(d.winners.size(), 2u);
  EXPECT_EQ(d.winners[0], 0u);
  EXPECT_EQ(d.winners[1], 1u);
}

TEST(PlanDiagramTest, WinnerRegionsDetectFragmentation) {
  PlanDiagram d = ComputePlanDiagram(MakeMap());
  // alpha wins points 0 and 2, separated by beta: two components.
  EXPECT_EQ(d.winner_regions[0].num_regions, 2);
  EXPECT_FALSE(d.winner_regions[0].is_contiguous());
  EXPECT_EQ(d.winner_regions[1].num_regions, 1);
}

TEST(PlanDiagramTest, TiesTrackTolerance) {
  PlanDiagram tight = ComputePlanDiagram(MakeMap(), ToleranceSpec{0.0, 1.0});
  EXPECT_EQ(tight.ties[0], 1);
  // Factor 2 tolerance: point 0 has alpha (1) and beta (2) both optimal.
  PlanDiagram loose = ComputePlanDiagram(MakeMap(), ToleranceSpec{0.0, 2.0});
  EXPECT_EQ(loose.ties[0], 2);
}

TEST(PlanDiagramTest, SearchOrderCoversAllPlans) {
  PlanDiagram d = ComputePlanDiagram(MakeMap());
  auto order = RegionSizeSearchOrder(d);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0u);  // largest region first
  EXPECT_EQ(order[1], 1u);
  EXPECT_EQ(order[2], 2u);  // never-winners last
}

TEST(PlanDiagramTest, RenderListsWinnersWithGlyphs) {
  PlanDiagram d = ComputePlanDiagram(MakeMap(), ToleranceSpec{0.0, 2.0});
  std::string s = RenderPlanDiagram(d);
  EXPECT_NE(s.find("A = alpha"), std::string::npos);
  EXPECT_NE(s.find("B = beta"), std::string::npos);
  EXPECT_EQ(s.find("gamma"), std::string::npos);  // never wins
  // Tie at point 0 renders lowercase.
  EXPECT_NE(s.find('a'), std::string::npos);
}

}  // namespace
}  // namespace robustmap
