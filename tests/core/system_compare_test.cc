#include "core/system_compare.h"

#include <gtest/gtest.h>

#include "core/sweep.h"
#include "testing/test_env.h"

namespace robustmap {
namespace {

using ::robustmap::testing::ProcEnv;

RobustnessMap MakeSyntheticMap() {
  ParameterSpace space = ParameterSpace::OneD(Axis::Selectivity("s", -2, 0));
  RobustnessMap map(space, {"p0", "p1"});
  double costs[2][3] = {{1, 10, 4}, {2, 1, 4}};
  for (size_t pl = 0; pl < 2; ++pl) {
    for (size_t pt = 0; pt < 3; ++pt) {
      Measurement m;
      m.seconds = costs[pl][pt];
      map.Set(pl, pt, m);
    }
  }
  return map;
}

TEST(WorstCaseMapTest, FindsWorstPlanPerPoint) {
  WorstCaseMap w = ComputeWorstCase(MakeSyntheticMap());
  EXPECT_EQ(w.worst_plan[0], 1u);
  EXPECT_EQ(w.worst_plan[1], 0u);
  EXPECT_DOUBLE_EQ(w.worst_seconds[1], 10);
  // Safety: worst/cost; the worst plan itself has safety 1.
  EXPECT_DOUBLE_EQ(w.safety[1][0], 1.0);
  EXPECT_DOUBLE_EQ(w.safety[0][0], 2.0);
  EXPECT_DOUBLE_EQ(w.safety[1][1], 10.0);
}

TEST(WorstCaseMapTest, DangerCellsCount) {
  WorstCaseMap w = ComputeWorstCase(MakeSyntheticMap());
  auto danger = DangerCells(w);
  // Point 2 is a tie (both 4); argmax keeps the first plan.
  EXPECT_EQ(danger[0] + danger[1], 3u);
  EXPECT_GE(danger[0], 1u);
  EXPECT_GE(danger[1], 1u);
}

class SystemCompareTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    env_ = new ProcEnv(/*row_bits=*/12, /*value_bits=*/6);
    Executor executor(env_->db());
    ParameterSpace space =
        ParameterSpace::TwoD(Axis::Selectivity("a", -6, 0),
                             Axis::Selectivity("b", -6, 0));
    map_ = new RobustnessMap(
        SweepStudyPlans(env_->ctx(), executor, AllStudyPlans(), space)
            .ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete map_;
    delete env_;
    map_ = nullptr;
    env_ = nullptr;
  }
  static ProcEnv* env_;
  static RobustnessMap* map_;
};

ProcEnv* SystemCompareTest::env_ = nullptr;
RobustnessMap* SystemCompareTest::map_ = nullptr;

TEST_F(SystemCompareTest, ProfilesUseOnlyOwnPlans) {
  auto cmp = CompareSystems(*map_, SystemConfig::AllSystems()).ValueOrDie();
  ASSERT_EQ(cmp.profiles.size(), 3u);
  // System B's best plan at every point must be one of B's three plans.
  for (size_t pl : cmp.profiles[1].best_plan) {
    EXPECT_EQ(PlanKindSystem(AllStudyPlans()[pl]), 'B');
  }
}

TEST_F(SystemCompareTest, QuotientsConsistent) {
  auto cmp = CompareSystems(*map_, SystemConfig::AllSystems()).ValueOrDie();
  size_t points = map_->space().num_points();
  size_t total_wins = 0;
  for (size_t s = 0; s < cmp.profiles.size(); ++s) {
    total_wins += cmp.wins[s];
    for (size_t pt = 0; pt < points; ++pt) {
      EXPECT_GE(cmp.quotient[s][pt], 1.0);
    }
    EXPECT_GE(cmp.worst_quotient[s], 1.0);
  }
  // Every point has at least one winning system (ties may add more).
  EXPECT_GE(total_wins, points);
}

TEST_F(SystemCompareTest, RenderMentionsAllSystems) {
  auto cmp = CompareSystems(*map_, SystemConfig::AllSystems()).ValueOrDie();
  std::string table = RenderSystemComparison(cmp);
  EXPECT_NE(table.find("System A"), std::string::npos);
  EXPECT_NE(table.find("System B"), std::string::npos);
  EXPECT_NE(table.find("System C"), std::string::npos);
}

TEST_F(SystemCompareTest, MissingPlanIsCleanError) {
  RobustnessMap small(map_->space(), {"A.tablescan"});
  auto cmp = CompareSystems(small, SystemConfig::AllSystems());
  EXPECT_FALSE(cmp.ok());
}

}  // namespace
}  // namespace robustmap
