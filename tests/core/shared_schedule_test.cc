// The deterministic concurrent-contention schedule
// (`SweepOptions::deterministic_shared_schedule`): shared-pool maps pinned
// well enough to regression-test — the ROADMAP open item the true-parallel
// schedule (intentionally) cannot satisfy.

#include <gtest/gtest.h>

#include <vector>

#include "core/sweep.h"
#include "io/shared_buffer_pool.h"
#include "testing/map_expect.h"
#include "testing/test_env.h"

namespace robustmap {
namespace {

using ::robustmap::testing::ExpectMapsBitIdentical;
using ::robustmap::testing::ProcEnv;

// Two plans whose working sets overlap on the table but differ on the
// index side: what each cell inherits depends on which stream's history
// filled the cache.
std::vector<PlanKind> ContendingPlans() {
  return {PlanKind::kIndexAImproved, PlanKind::kIndexBImproved};
}

ParameterSpace Line() {
  return ParameterSpace::OneD(Axis::Selectivity("a", -6, 0));
}

RobustnessMap RunContention(ProcEnv* env, const Executor& executor,
                            bool deterministic, unsigned num_threads) {
  // Large enough that inherited residency survives from cell to cell (a
  // thrashing cache forgets its history, making every schedule look alike).
  SharedBufferPool shared(/*capacity_pages=*/512);
  SweepOptions opts;
  opts.num_threads = num_threads;
  opts.shared_pool = &shared;
  opts.deterministic_shared_schedule = deterministic;
  env->ctx()->warmup = WarmupPolicy::PriorRun();
  auto map = SweepStudyPlans(env->ctx(), executor, ContendingPlans(), Line(),
                             opts)
                 .ValueOrDie();
  env->ctx()->warmup = WarmupPolicy::Cold();
  return map;
}

TEST(DeterministicSharedScheduleTest, PinsTheContentionMap) {
  ProcEnv env;
  Executor executor(env.db());
  // The regression pin: the same concurrent-contention study must produce
  // the same map on every run, even at a parallel-looking thread count.
  auto first = RunContention(&env, executor, /*deterministic=*/true, 4);
  auto second = RunContention(&env, executor, /*deterministic=*/true, 4);
  ExpectMapsBitIdentical(first, second);

  uint64_t cross_hits = 0;
  for (size_t plan = 0; plan < first.num_plans(); ++plan) {
    for (size_t pt = 0; pt < first.space().num_points(); ++pt) {
      cross_hits += first.At(plan, pt).io.buffer_hits;
    }
  }
  EXPECT_GT(cross_hits, 0u) << "contention study produced no cache reuse";
}

TEST(DeterministicSharedScheduleTest, RoundRobinOrderIsObservable) {
  ProcEnv env;
  Executor executor(env.db());
  // Plan-major serial order (the existing shared-pool fallback) lets each
  // plan warm the cache with its own history; the round-robin schedule
  // interleaves the two query streams. Under a prior-run policy the
  // residency — and so the maps — must differ somewhere, or the mode is
  // not modeling anything.
  auto round_robin = RunContention(&env, executor, /*deterministic=*/true, 1);
  auto plan_major = RunContention(&env, executor, /*deterministic=*/false, 1);
  bool differs = false;
  for (size_t plan = 0; plan < round_robin.num_plans(); ++plan) {
    for (size_t pt = 0; pt < round_robin.space().num_points(); ++pt) {
      if (round_robin.At(plan, pt).io.buffer_hits !=
              plan_major.At(plan, pt).io.buffer_hits ||
          round_robin.At(plan, pt).seconds !=
              plan_major.At(plan, pt).seconds) {
        differs = true;
      }
    }
  }
  EXPECT_TRUE(differs);
}

TEST(DeterministicSharedScheduleTest, ColdCellsAreOrderIndependent) {
  ProcEnv env;
  Executor executor(env.db());
  ParameterSpace space = ParameterSpace::TwoD(Axis::Selectivity("a", -4, 0),
                                              Axis::Selectivity("b", -4, 0));
  std::vector<PlanKind> plans = {PlanKind::kTableScan,
                                 PlanKind::kIndexAImproved};
  SweepOptions serial;
  serial.num_threads = 1;
  auto reference =
      SweepStudyPlans(env.ctx(), executor, plans, space, serial)
          .ValueOrDie();
  // With the default cold warmup every cell starts from an empty cache, so
  // the reordered schedule must reproduce the classic map exactly — the
  // flag must not perturb studies it doesn't apply to.
  SweepOptions opts;
  opts.num_threads = 1;
  opts.deterministic_shared_schedule = true;
  auto reordered =
      SweepStudyPlans(env.ctx(), executor, plans, space, opts).ValueOrDie();
  ExpectMapsBitIdentical(reference, reordered);
}

}  // namespace
}  // namespace robustmap
