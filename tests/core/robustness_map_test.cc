#include "core/robustness_map.h"

#include <gtest/gtest.h>

namespace robustmap {
namespace {

RobustnessMap MakeMap() {
  ParameterSpace space = ParameterSpace::OneD(Axis::Selectivity("s", -2, 0));
  RobustnessMap map(space, {"p0", "p1"});
  for (size_t pl = 0; pl < 2; ++pl) {
    for (size_t pt = 0; pt < 3; ++pt) {
      Measurement m;
      m.seconds = static_cast<double>((pl + 1) * 10 + pt);
      m.output_rows = pt;
      map.Set(pl, pt, m);
    }
  }
  return map;
}

TEST(RobustnessMapTest, StoresAndRetrieves) {
  RobustnessMap map = MakeMap();
  EXPECT_EQ(map.num_plans(), 2u);
  EXPECT_DOUBLE_EQ(map.At(0, 0).seconds, 10);
  EXPECT_DOUBLE_EQ(map.At(1, 2).seconds, 22);
  EXPECT_EQ(map.At(1, 2).output_rows, 2u);
}

TEST(RobustnessMapTest, SecondsOfPlan) {
  RobustnessMap map = MakeMap();
  auto s = map.SecondsOfPlan(1);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s[0], 20);
  EXPECT_DOUBLE_EQ(s[2], 22);
}

TEST(RobustnessMapTest, PlanIndexOf) {
  RobustnessMap map = MakeMap();
  EXPECT_EQ(map.PlanIndexOf("p1").ValueOrDie(), 1u);
  EXPECT_TRUE(map.PlanIndexOf("nope").status().IsNotFound());
}

TEST(RobustnessMapTest, TwoDAccess) {
  ParameterSpace space = ParameterSpace::TwoD(Axis::Selectivity("a", -1, 0),
                                              Axis::Selectivity("b", -1, 0));
  RobustnessMap map(space, {"p"});
  Measurement m;
  m.seconds = 7;
  map.Set(0, space.IndexOf(1, 0), m);
  EXPECT_DOUBLE_EQ(map.AtXY(0, 1, 0).seconds, 7);
  EXPECT_DOUBLE_EQ(map.AtXY(0, 0, 1).seconds, 0);
}

}  // namespace
}  // namespace robustmap
