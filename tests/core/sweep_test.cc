#include "core/sweep.h"

#include <gtest/gtest.h>

#include "testing/test_env.h"

namespace robustmap {
namespace {

using ::robustmap::testing::ProcEnv;

TEST(RunSweepTest, FillsEveryCell) {
  ParameterSpace space = ParameterSpace::TwoD(Axis::Selectivity("a", -2, 0),
                                              Axis::Selectivity("b", -1, 0));
  int calls = 0;
  auto map = RunSweep(space, {"p0", "p1"},
                      [&](size_t plan, double x, double y) {
                        ++calls;
                        Measurement m;
                        m.seconds = (plan + 1) * x * y;
                        return Result<Measurement>(m);
                      })
                 .ValueOrDie();
  EXPECT_EQ(calls, 12);
  EXPECT_DOUBLE_EQ(map.AtXY(1, 2, 1).seconds, 2.0 * 1.0 * 1.0);
}

TEST(RunSweepTest, PropagatesErrors) {
  ParameterSpace space = ParameterSpace::OneD(Axis::Selectivity("a", -1, 0));
  auto result = RunSweep(space, {"p"}, [&](size_t, double, double) {
    return Result<Measurement>(Status::Internal("boom"));
  });
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInternal());
}

TEST(RunSweepTest, OneDPassesNegativeY) {
  ParameterSpace space = ParameterSpace::OneD(Axis::Selectivity("a", -1, 0));
  auto map = RunSweep(space, {"p"},
                      [&](size_t, double, double y) {
                        EXPECT_LT(y, 0);
                        Measurement m;
                        m.seconds = 1;
                        return Result<Measurement>(m);
                      })
                 .ValueOrDie();
  EXPECT_EQ(map.space().num_points(), 2u);
}

TEST(SweepStudyPlansTest, MeasuresRealPlans) {
  ProcEnv env;
  Executor executor(env.db());
  ParameterSpace space = ParameterSpace::OneD(Axis::Selectivity("a", -4, 0));
  auto map = SweepStudyPlans(env.ctx(), executor,
                             {PlanKind::kTableScan, PlanKind::kIndexAImproved},
                             space)
                 .ValueOrDie();
  EXPECT_EQ(map.num_plans(), 2u);
  EXPECT_EQ(map.plan_label(0), "A.tablescan");
  for (size_t pt = 0; pt < space.num_points(); ++pt) {
    EXPECT_GT(map.At(0, pt).seconds, 0);
    // Both plans returned identical cardinalities.
    EXPECT_EQ(map.At(0, pt).output_rows, map.At(1, pt).output_rows);
  }
  // Output cardinality follows the axis.
  EXPECT_LT(map.At(0, 0).output_rows, map.At(0, 4).output_rows);
}

}  // namespace
}  // namespace robustmap
