#include "core/sweep.h"

#include <gtest/gtest.h>

#include "testing/test_env.h"

namespace robustmap {
namespace {

using ::robustmap::testing::ProcEnv;

TEST(RunSweepTest, FillsEveryCell) {
  ParameterSpace space = ParameterSpace::TwoD(Axis::Selectivity("a", -2, 0),
                                              Axis::Selectivity("b", -1, 0));
  int calls = 0;
  auto map = RunSweep(space, {"p0", "p1"},
                      [&](size_t plan, double x, double y) {
                        ++calls;
                        Measurement m;
                        m.seconds = (plan + 1) * x * y;
                        return Result<Measurement>(m);
                      })
                 .ValueOrDie();
  EXPECT_EQ(calls, 12);
  EXPECT_DOUBLE_EQ(map.AtXY(1, 2, 1).seconds, 2.0 * 1.0 * 1.0);
}

TEST(SweepProgressTest, PercentOfEmptySweepIsDefinedNotDivisionByZero) {
  SweepProgress p;  // cells_total == 0
  EXPECT_DOUBLE_EQ(p.percent(), 100.0);
}

TEST(RunSweepTest, EmptyPlanListOrEmptyGridIsAnError) {
  ParameterSpace space = ParameterSpace::OneD(Axis::Selectivity("a", -2, 0));
  auto runner = [](size_t, double, double) {
    Measurement m;
    m.seconds = 1;
    return Result<Measurement>(m);
  };
  auto no_plans = RunSweep(space, {}, runner);
  ASSERT_FALSE(no_plans.ok());
  EXPECT_TRUE(no_plans.status().IsInvalidArgument());

  // A default-constructed space is the 0-point grid; the OneD/TwoD
  // factories assert non-empty axes in Debug builds, so the Status-based
  // rejection must be reachable without them.
  ParameterSpace empty;
  auto no_points = RunSweep(empty, {"p"}, runner);
  ASSERT_FALSE(no_points.ok());
  EXPECT_TRUE(no_points.status().IsInvalidArgument());
}

TEST(ParallelRunSweepTest, EmptyPlanListOrEmptyGridIsAnError) {
  ProcEnv env;
  RunContextFactory factory(*env.ctx());
  auto runner = [](RunContext*, size_t, double, double) {
    Measurement m;
    m.seconds = 1;
    return Result<Measurement>(m);
  };
  ParameterSpace space = ParameterSpace::OneD(Axis::Selectivity("a", -2, 0));
  auto no_plans = ParallelRunSweep(space, {}, factory, runner);
  ASSERT_FALSE(no_plans.ok());
  EXPECT_TRUE(no_plans.status().IsInvalidArgument());

  // A default-constructed space is the 0-point grid; the OneD/TwoD
  // factories assert non-empty axes in Debug builds, so the Status-based
  // rejection must be reachable without them.
  ParameterSpace empty;
  auto no_points = ParallelRunSweep(empty, {"p"}, factory, runner);
  ASSERT_FALSE(no_points.ok());
  EXPECT_TRUE(no_points.status().IsInvalidArgument());

  // The deterministic round-robin schedule takes the same front door.
  SweepOptions det;
  det.deterministic_shared_schedule = true;
  EXPECT_TRUE(ParallelRunSweep(space, {}, factory, runner, det)
                  .status()
                  .IsInvalidArgument());
}

TEST(SweepStudyPlansTest, EmptyPlanListIsAnError) {
  ProcEnv env;
  Executor executor(env.db());
  ParameterSpace space = ParameterSpace::OneD(Axis::Selectivity("a", -2, 0));
  auto r = SweepStudyPlans(env.ctx(), executor, {}, space);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(RunSweepTest, PropagatesErrors) {
  ParameterSpace space = ParameterSpace::OneD(Axis::Selectivity("a", -1, 0));
  auto result = RunSweep(space, {"p"}, [&](size_t, double, double) {
    return Result<Measurement>(Status::Internal("boom"));
  });
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInternal());
}

TEST(RunSweepTest, OneDPassesNegativeY) {
  ParameterSpace space = ParameterSpace::OneD(Axis::Selectivity("a", -1, 0));
  auto map = RunSweep(space, {"p"},
                      [&](size_t, double, double y) {
                        EXPECT_LT(y, 0);
                        Measurement m;
                        m.seconds = 1;
                        return Result<Measurement>(m);
                      })
                 .ValueOrDie();
  EXPECT_EQ(map.space().num_points(), 2u);
}

TEST(RunSweepTest, ProgressReportsEveryCellInOrder) {
  ParameterSpace space = ParameterSpace::TwoD(Axis::Selectivity("a", -2, 0),
                                              Axis::Selectivity("b", -1, 0));
  std::vector<SweepProgress> snapshots;
  SweepOptions opts;
  opts.progress = [&](const SweepProgress& p) { snapshots.push_back(p); };
  RunSweep(space, {"p0", "p1"},
           [&](size_t, double, double) {
             Measurement m;
             m.seconds = 1;
             return Result<Measurement>(m);
           },
           opts)
      .ValueOrDie();

  ASSERT_EQ(snapshots.size(), 12u);  // one callback per cell
  for (size_t i = 0; i < snapshots.size(); ++i) {
    EXPECT_EQ(snapshots[i].cells_done, i + 1);
    EXPECT_EQ(snapshots[i].cells_total, 12u);
    EXPECT_EQ(snapshots[i].num_plans, 2u);
  }
  // Plan completions are reported as they happen: after cell 6 the first
  // plan is done, after cell 12 both are.
  EXPECT_EQ(snapshots[4].plans_done, 0u);
  EXPECT_EQ(snapshots[5].plans_done, 1u);
  EXPECT_EQ(snapshots[11].plans_done, 2u);
  EXPECT_DOUBLE_EQ(snapshots[11].percent(), 100.0);
}

TEST(ParallelRunSweepTest, ProgressCallbackIsSerializedAndComplete) {
  ProcEnv env;
  ParameterSpace space = ParameterSpace::TwoD(Axis::Selectivity("a", -3, 0),
                                              Axis::Selectivity("b", -3, 0));
  RunContextFactory factory(*env.ctx());

  // The tracker serializes callbacks, so cells_done must arrive as exactly
  // 1, 2, ..., total with no gaps or repeats even on many threads.
  std::vector<size_t> seen;
  size_t final_plans_done = 0;
  SweepOptions opts;
  opts.num_threads = 8;
  opts.progress = [&](const SweepProgress& p) {
    seen.push_back(p.cells_done);
    final_plans_done = p.plans_done;
  };
  ParallelRunSweep(space, {"p0", "p1", "p2"}, factory,
                   [&](RunContext*, size_t plan, double, double) {
                     Measurement m;
                     m.seconds = static_cast<double>(plan + 1);
                     return Result<Measurement>(m);
                   },
                   opts)
      .ValueOrDie();

  const size_t total = 3 * space.num_points();
  ASSERT_EQ(seen.size(), total);
  for (size_t i = 0; i < total; ++i) EXPECT_EQ(seen[i], i + 1);
  EXPECT_EQ(final_plans_done, 3u);
}

TEST(SweepStudyPlansTest, MeasuresRealPlans) {
  ProcEnv env;
  Executor executor(env.db());
  ParameterSpace space = ParameterSpace::OneD(Axis::Selectivity("a", -4, 0));
  auto map = SweepStudyPlans(env.ctx(), executor,
                             {PlanKind::kTableScan, PlanKind::kIndexAImproved},
                             space)
                 .ValueOrDie();
  EXPECT_EQ(map.num_plans(), 2u);
  EXPECT_EQ(map.plan_label(0), "A.tablescan");
  for (size_t pt = 0; pt < space.num_points(); ++pt) {
    EXPECT_GT(map.At(0, pt).seconds, 0);
    // Both plans returned identical cardinalities.
    EXPECT_EQ(map.At(0, pt).output_rows, map.At(1, pt).output_rows);
  }
  // Output cardinality follows the axis.
  EXPECT_LT(map.At(0, 0).output_rows, map.At(0, 4).output_rows);
}

}  // namespace
}  // namespace robustmap
