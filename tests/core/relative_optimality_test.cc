#include <gtest/gtest.h>

#include "core/optimality.h"
#include "core/relative.h"

namespace robustmap {
namespace {

// A synthetic 2x2 map with controlled costs:
//          pt0   pt1   pt2   pt3
//   fast   1.0   4.0   1.0   9.0
//   slow   2.0   1.0  100.0  9.05
RobustnessMap MakeMap() {
  ParameterSpace space = ParameterSpace::TwoD(Axis::Selectivity("a", -1, 0),
                                              Axis::Selectivity("b", -1, 0));
  RobustnessMap map(space, {"fast", "slow"});
  double fast[] = {1.0, 4.0, 1.0, 9.0};
  double slow[] = {2.0, 1.0, 100.0, 9.05};
  for (size_t pt = 0; pt < 4; ++pt) {
    Measurement mf, ms;
    mf.seconds = fast[pt];
    ms.seconds = slow[pt];
    map.Set(0, pt, mf);
    map.Set(1, pt, ms);
  }
  return map;
}

TEST(RelativeMapTest, BestAndQuotients) {
  RelativeMap rel = ComputeRelative(MakeMap());
  EXPECT_DOUBLE_EQ(rel.best_seconds[0], 1.0);
  EXPECT_DOUBLE_EQ(rel.best_seconds[1], 1.0);
  EXPECT_EQ(rel.best_plan[0], 0u);
  EXPECT_EQ(rel.best_plan[1], 1u);
  EXPECT_DOUBLE_EQ(rel.quotient[0][0], 1.0);
  EXPECT_DOUBLE_EQ(rel.quotient[1][0], 2.0);
  EXPECT_DOUBLE_EQ(rel.quotient[0][1], 4.0);
  EXPECT_DOUBLE_EQ(rel.quotient[1][2], 100.0);
}

TEST(RelativeMapTest, QuotientsAtLeastOne) {
  RelativeMap rel = ComputeRelative(MakeMap());
  for (const auto& plan : rel.quotient) {
    for (double q : plan) EXPECT_GE(q, 1.0);
  }
}

TEST(RelativeMapTest, WorstQuotient) {
  RelativeMap rel = ComputeRelative(MakeMap());
  EXPECT_DOUBLE_EQ(WorstQuotient(rel, 0), 4.0);
  EXPECT_DOUBLE_EQ(WorstQuotient(rel, 1), 100.0);
}

TEST(OptimalityTest, AbsoluteToleranceCountsNearTies) {
  // 0.1 s absolute: at pt3 (9.0 vs 9.05) both plans are optimal.
  OptimalityMap opt = ComputeOptimality(MakeMap(), ToleranceSpec{0.1, 1.0});
  EXPECT_EQ(opt.counts[0], 1);
  EXPECT_EQ(opt.counts[1], 1);
  EXPECT_EQ(opt.counts[2], 1);
  EXPECT_EQ(opt.counts[3], 2);
  EXPECT_EQ(opt.masks[3], 0b11u);
}

TEST(OptimalityTest, RelativeTolerance) {
  // Factor 2: pt0 both (2.0 <= 1*2), pt1 only slow... fast is 4x -> no.
  OptimalityMap opt = ComputeOptimality(MakeMap(), ToleranceSpec{0.0, 2.0});
  EXPECT_EQ(opt.counts[0], 2);
  EXPECT_EQ(opt.counts[1], 1);
  EXPECT_EQ(opt.counts[2], 1);
}

TEST(OptimalityTest, OptimalRegionOf) {
  OptimalityMap opt = ComputeOptimality(MakeMap(), ToleranceSpec{0.1, 1.0});
  auto fast_region = OptimalRegionOf(opt, 0);
  EXPECT_TRUE(fast_region[0]);
  EXPECT_FALSE(fast_region[1]);
  EXPECT_TRUE(fast_region[2]);
  EXPECT_TRUE(fast_region[3]);
}

TEST(OptimalityTest, PlansNeverOptimal) {
  ParameterSpace space = ParameterSpace::OneD(Axis::Selectivity("s", -1, 0));
  RobustnessMap map(space, {"good", "dominated"});
  for (size_t pt = 0; pt < 2; ++pt) {
    Measurement g, d;
    g.seconds = 1.0;
    d.seconds = 50.0;
    map.Set(0, pt, g);
    map.Set(1, pt, d);
  }
  OptimalityMap opt = ComputeOptimality(map, ToleranceSpec{0.1, 1.0});
  auto never = PlansNeverOptimal(opt);
  ASSERT_EQ(never.size(), 1u);
  EXPECT_EQ(never[0], 1u);
}

TEST(OptimalityTest, BestPlanAlwaysWithinTolerance) {
  OptimalityMap opt = ComputeOptimality(MakeMap(), ToleranceSpec{0.0, 1.0});
  for (size_t pt = 0; pt < opt.counts.size(); ++pt) {
    EXPECT_GE(opt.counts[pt], 1);
    EXPECT_TRUE((opt.masks[pt] >> opt.best_plan[pt]) & 1u);
  }
}

}  // namespace
}  // namespace robustmap
