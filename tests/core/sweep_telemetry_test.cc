#include "core/sweep_telemetry.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace robustmap {
namespace {

std::string Slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream out;
  out << f.rdbuf();
  return out.str();
}

// The sink is a process-wide singleton; every test starts clean and leaves
// it disabled for the next one.
class SweepTelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SweepTelemetry::Get().Reset();
    SweepTelemetry::Get().Enable();
  }
  void TearDown() override {
    SweepTelemetry::Get().Reset();
    SweepTelemetry::Get().Disable();
  }
};

TEST_F(SweepTelemetryTest, BucketLadderIs1To2To5Decades) {
  const std::vector<double>& bounds = LatencyHistogram::Bounds();
  ASSERT_EQ(bounds.size(), 25u);
  EXPECT_DOUBLE_EQ(bounds.front(), 1e-6);
  EXPECT_DOUBLE_EQ(bounds.back(), 100.0);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]) << "ladder not increasing at " << i;
    const double ratio = bounds[i] / bounds[i - 1];
    EXPECT_TRUE(std::abs(ratio - 2.0) < 1e-9 ||
                std::abs(ratio - 2.5) < 1e-9)
        << "not a 1-2-5 ladder at " << i << ": ratio " << ratio;
  }
}

TEST_F(SweepTelemetryTest, RecordUsesInclusiveUpperBounds) {
  LatencyHistogram h;
  ASSERT_EQ(h.buckets.size(), LatencyHistogram::Bounds().size() + 1);

  h.Record(1e-6);  // exactly the first bound: <= means bucket 0
  EXPECT_EQ(h.buckets[0], 1u);
  h.Record(1.0000001e-6);  // just above: next bucket
  EXPECT_EQ(h.buckets[1], 1u);
  h.Record(0.5e-6);  // below the ladder: still bucket 0
  EXPECT_EQ(h.buckets[0], 2u);
  h.Record(100.0);  // exactly the top bound: last regular bucket
  EXPECT_EQ(h.buckets[LatencyHistogram::Bounds().size() - 1], 1u);
  h.Record(100.1);  // above the ladder: overflow slot
  EXPECT_EQ(h.buckets.back(), 1u);

  EXPECT_EQ(h.count, 5u);
  EXPECT_DOUBLE_EQ(h.min_seconds, 0.5e-6);
  EXPECT_DOUBLE_EQ(h.max_seconds, 100.1);
}

TEST_F(SweepTelemetryTest, MergeAddsElementwise) {
  LatencyHistogram a;
  a.Record(1e-5);
  a.Record(2.0);
  LatencyHistogram b;
  b.Record(1e-5);
  b.Record(500.0);
  a.Merge(b);
  EXPECT_EQ(a.count, 4u);
  EXPECT_DOUBLE_EQ(a.min_seconds, 1e-5);
  EXPECT_DOUBLE_EQ(a.max_seconds, 500.0);
  EXPECT_DOUBLE_EQ(a.sum_seconds, 2.0 + 2e-5 + 500.0);
  EXPECT_EQ(a.buckets.back(), 1u);
  uint64_t total = 0;
  for (uint64_t c : a.buckets) total += c;
  EXPECT_EQ(total, 4u);
}

TEST_F(SweepTelemetryTest, WriteFileIsDeterministic) {
  SweepTelemetry& t = SweepTelemetry::Get();
  // Insertion order scrambled on purpose: serialization must sort.
  t.AddCounter("zeta", 1);
  t.AddCounter("alpha", 2);
  t.RecordLatency("slow_phase", 0.5);
  t.RecordLatency("fast_phase", 2e-6);

  const std::string p1 = ::testing::TempDir() + "/telemetry_det_1.json";
  const std::string p2 = ::testing::TempDir() + "/telemetry_det_2.json";
  ASSERT_TRUE(t.WriteFile(p1).ok());
  ASSERT_TRUE(t.WriteFile(p2).ok());
  const std::string body1 = Slurp(p1);
  EXPECT_EQ(body1, Slurp(p2)) << "rewrite changed bytes";
  EXPECT_LT(body1.find("\"alpha\""), body1.find("\"zeta\""));
  EXPECT_LT(body1.find("\"fast_phase\""), body1.find("\"slow_phase\""));
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST_F(SweepTelemetryTest, FileRoundTripPreservesEverything) {
  SweepTelemetry& t = SweepTelemetry::Get();
  t.AddCounter("cells", 12);
  t.AddCounter("cells", 30);
  t.RecordLatency("lat", 3e-6);
  t.RecordLatency("lat", 0.02);
  const std::string path = ::testing::TempDir() + "/telemetry_rt.json";
  ASSERT_TRUE(t.WriteFile(path).ok());

  auto data = ReadTelemetryFile(path).ValueOrDie();
  EXPECT_EQ(data.counters, t.Counters());
  EXPECT_EQ(data.counters.at("cells"), 42u);
  const LatencyHistogram& h = data.histograms.at("lat");
  EXPECT_EQ(h.count, 2u);
  EXPECT_DOUBLE_EQ(h.min_seconds, 3e-6);
  EXPECT_DOUBLE_EQ(h.max_seconds, 0.02);
  EXPECT_EQ(h.buckets, t.Histograms().at("lat").buckets);
  std::remove(path.c_str());
}

TEST_F(SweepTelemetryTest, MergeFromFileFoldsASidecarIn) {
  SweepTelemetry& t = SweepTelemetry::Get();
  t.AddCounter("cells", 10);
  t.RecordLatency("lat", 1e-3);
  const std::string sidecar = ::testing::TempDir() + "/telemetry_side.json";
  ASSERT_TRUE(t.WriteFile(sidecar).ok());

  // A fresh sink ingests the sidecar on top of its own data — the
  // coordinator-reaps-worker path.
  t.Reset();
  t.AddCounter("cells", 5);
  t.RecordLatency("lat", 1e-3);
  ASSERT_TRUE(t.MergeFromFile(sidecar).ok());
  EXPECT_EQ(t.Counters().at("cells"), 15u);
  EXPECT_EQ(t.Histograms().at("lat").count, 2u);
  std::remove(sidecar.c_str());

  EXPECT_TRUE(t.MergeFromFile("/no/such/telemetry.json").IsNotFound());
}

TEST_F(SweepTelemetryTest, DisabledSinkRecordsNothing) {
  SweepTelemetry& t = SweepTelemetry::Get();
  t.Disable();
  t.AddCounter("ignored", 7);
  t.RecordLatency("ignored", 1.0);
  EXPECT_TRUE(t.Counters().empty());
  EXPECT_TRUE(t.Histograms().empty());
}

}  // namespace
}  // namespace robustmap
