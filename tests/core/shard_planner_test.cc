#include "core/shard_planner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/sweep_cost.h"

namespace robustmap {
namespace {

ParameterSpace Grid(int x_min_log2, int y_min_log2) {
  return ParameterSpace::TwoD(Axis::Selectivity("a", x_min_log2, 0),
                              Axis::Selectivity("b", y_min_log2, 0));
}

/// Every grid point must be covered by exactly one tile.
void ExpectExactCover(const ParameterSpace& space,
                      const std::vector<TileSpec>& tiles) {
  std::vector<int> covered(space.num_points(), 0);
  for (const TileSpec& t : tiles) {
    ASSERT_LE(t.x_end, space.x_size());
    ASSERT_LE(t.y_end, space.y_size());
    ASSERT_LT(t.x_begin, t.x_end);
    ASSERT_LT(t.y_begin, t.y_end);
    for (size_t yi = t.y_begin; yi < t.y_end; ++yi) {
      for (size_t xi = t.x_begin; xi < t.x_end; ++xi) {
        ++covered[space.IndexOf(xi, yi)];
      }
    }
  }
  for (size_t pt = 0; pt < covered.size(); ++pt) {
    EXPECT_EQ(covered[pt], 1) << "point " << pt;
  }
}

TEST(ShardPlannerTest, CoversGridExactlyAtManyTileCounts) {
  ParameterSpace space = Grid(-8, -6);  // 9 x 7
  for (size_t tiles : {1u, 2u, 3u, 7u, 8u, 13u, 63u, 1000u}) {
    auto plan = ShardPlanner::Partition(space, tiles).ValueOrDie();
    SCOPED_TRACE(tiles);
    EXPECT_LE(plan.size(), tiles);
    EXPECT_FALSE(plan.empty());
    ExpectExactCover(space, plan);
  }
}

TEST(ShardPlannerTest, OneDSpaceSplitsAlongX) {
  ParameterSpace line = ParameterSpace::OneD(Axis::Selectivity("a", -10, 0));
  auto plan = ShardPlanner::Partition(line, 4).ValueOrDie();
  EXPECT_EQ(plan.size(), 4u);
  ExpectExactCover(line, plan);
  for (const TileSpec& t : plan) {
    EXPECT_EQ(t.y_begin, 0u);
    EXPECT_EQ(t.y_end, 1u);
  }
}

TEST(ShardPlannerTest, MoreTilesThanPointsIsCappedByTheGrid) {
  ParameterSpace space = Grid(-2, -2);  // 3 x 3 = 9 points
  auto plan = ShardPlanner::Partition(space, 1000).ValueOrDie();
  EXPECT_EQ(plan.size(), 9u);  // one tile per point, never an empty tile
  ExpectExactCover(space, plan);
}

TEST(ShardPlannerTest, StableIdsAcrossInvocations) {
  ParameterSpace space = Grid(-8, -8);
  auto a = ShardPlanner::Partition(space, 8).ValueOrDie();
  auto b = ShardPlanner::Partition(space, 8).ValueOrDie();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
    EXPECT_EQ(a[i].shard_id, i);  // ids are dense and ordered
  }
}

TEST(ShardPlannerTest, ZeroTilesIsAnError) {
  auto plan = ShardPlanner::Partition(Grid(-4, -4), 0);
  EXPECT_FALSE(plan.ok());
  EXPECT_TRUE(plan.status().IsInvalidArgument());
}

TEST(ShardPlannerTest, EmptyGridIsAnError) {
  // A default-constructed space is the 0-point grid; the OneD/TwoD
  // factories assert non-empty axes in Debug builds, so the Status-based
  // rejection must be reachable without them.
  ParameterSpace empty;
  auto plan = ShardPlanner::Partition(empty, 4);
  EXPECT_FALSE(plan.ok());
  EXPECT_TRUE(plan.status().IsInvalidArgument());
}

TEST(ShardPlannerWeightedTest, CoversGridExactlyAndKeepsDenseIds) {
  ParameterSpace space = Grid(-8, -6);  // 9 x 7
  auto model = CellCostModel::Analytic(space).ValueOrDie();
  for (size_t tiles : {1u, 2u, 3u, 7u, 13u, 63u, 1000u}) {
    SCOPED_TRACE(tiles);
    auto plan =
        ShardPlanner::PartitionWeighted(space, tiles, model).ValueOrDie();
    EXPECT_LE(plan.size(), tiles);
    EXPECT_FALSE(plan.empty());
    ExpectExactCover(space, plan);
    // Ids stay dense row-major even though emission order snakes.
    std::vector<size_t> ids;
    for (const TileSpec& t : plan) ids.push_back(t.shard_id);
    std::sort(ids.begin(), ids.end());
    for (size_t i = 0; i < ids.size(); ++i) EXPECT_EQ(ids[i], i);
  }
}

TEST(ShardPlannerWeightedTest, SameTileCountAsUniformPartition) {
  // Resume directories key tiles by (id, rectangle); the weighted planner
  // keeps the uniform planner's tile-grid shape, so switching models never
  // changes how many tiles a (space, max_tiles) request produces.
  ParameterSpace space = Grid(-8, -8);
  auto model = CellCostModel::Analytic(space).ValueOrDie();
  for (size_t tiles : {1u, 4u, 8u, 12u, 64u}) {
    auto uniform = ShardPlanner::Partition(space, tiles).ValueOrDie();
    auto weighted =
        ShardPlanner::PartitionWeighted(space, tiles, model).ValueOrDie();
    EXPECT_EQ(uniform.size(), weighted.size()) << tiles << " tiles";
  }
}

TEST(ShardPlannerWeightedTest, BalancesCostBetterThanUniform) {
  // A strongly skewed grid: the analytic model concentrates cost near
  // sel=1, so uniform row bands leave one tile holding most of the work.
  ParameterSpace space = Grid(-12, -12);  // 13 x 13
  auto model = CellCostModel::Analytic(space).ValueOrDie();
  auto uniform = ShardPlanner::Partition(space, 4).ValueOrDie();
  auto weighted =
      ShardPlanner::PartitionWeighted(space, 4, model).ValueOrDie();
  auto max_cost = [&](const std::vector<TileSpec>& tiles) {
    double m = 0;
    for (const TileSpec& t : tiles) m = std::max(m, model.TileCost(t));
    return m;
  };
  EXPECT_LT(max_cost(weighted), max_cost(uniform));
  // The expensive band (toward high y) must be finer than the cheap one:
  // the last band is thinner than the first.
  auto y_span = [](const TileSpec& t) { return t.y_end - t.y_begin; };
  const TileSpec* first_band = nullptr;
  const TileSpec* last_band = nullptr;
  for (const TileSpec& t : weighted) {
    if (t.y_begin == 0) first_band = &t;
    if (t.y_end == space.y_size()) last_band = &t;
  }
  ASSERT_NE(first_band, nullptr);
  ASSERT_NE(last_band, nullptr);
  EXPECT_LT(y_span(*last_band), y_span(*first_band));
}

TEST(ShardPlannerWeightedTest, UniformModelReproducesUniformRectangles) {
  // Under a flat model the cost cuts and the count cuts agree, so the two
  // planners emit the same rectangles (order aside).
  ParameterSpace space = Grid(-7, -7);
  auto flat = CellCostModel::Uniform(space).ValueOrDie();
  auto uniform = ShardPlanner::Partition(space, 8).ValueOrDie();
  auto weighted =
      ShardPlanner::PartitionWeighted(space, 8, flat).ValueOrDie();
  ASSERT_EQ(uniform.size(), weighted.size());
  auto by_id = [](const TileSpec& a, const TileSpec& b) {
    return a.shard_id < b.shard_id;
  };
  std::sort(uniform.begin(), uniform.end(), by_id);
  std::sort(weighted.begin(), weighted.end(), by_id);
  for (size_t i = 0; i < uniform.size(); ++i) {
    EXPECT_EQ(uniform[i], weighted[i]) << "tile " << i;
  }
}

TEST(ShardPlannerWeightedTest, SnakeOrderKeepsBandsAdjacent) {
  ParameterSpace space = Grid(-7, -7);  // 8 x 8
  auto model = CellCostModel::Analytic(space).ValueOrDie();
  // 16 tiles over 8 rows: a 2-wide tile grid, so snake order alternates
  // x-direction per band.
  auto plan = ShardPlanner::PartitionWeighted(space, 16, model).ValueOrDie();
  ASSERT_EQ(plan.size(), 16u);
  for (size_t i = 0; i + 1 < plan.size(); ++i) {
    const TileSpec& a = plan[i];
    const TileSpec& b = plan[i + 1];
    // Consecutive emissions share a band or touch across the band seam.
    const bool same_band = a.y_begin == b.y_begin;
    const bool adjacent_band = a.y_end == b.y_begin;
    EXPECT_TRUE(same_band || adjacent_band) << "emission " << i;
    if (adjacent_band) {
      // The snake turns in place: the x range repeats at the seam.
      EXPECT_EQ(a.x_begin == b.x_begin || a.x_end == b.x_end, true);
    }
  }
}

TEST(ShardPlannerWeightedTest, StableAcrossInvocationsAndValidatesModel) {
  ParameterSpace space = Grid(-8, -8);
  auto model = CellCostModel::Analytic(space).ValueOrDie();
  auto a = ShardPlanner::PartitionWeighted(space, 8, model).ValueOrDie();
  auto b = ShardPlanner::PartitionWeighted(space, 8, model).ValueOrDie();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);

  ParameterSpace other = Grid(-4, -4);
  auto mismatch = ShardPlanner::PartitionWeighted(
      other, 4, model);  // model built over `space`
  EXPECT_FALSE(mismatch.ok());
  EXPECT_TRUE(mismatch.status().IsInvalidArgument());
}

TEST(SliceSpaceTest, SliceCarriesAxisNamesAndValues) {
  ParameterSpace space = Grid(-8, -6);
  TileSpec t;
  t.x_begin = 2;
  t.x_end = 5;
  t.y_begin = 1;
  t.y_end = 3;
  ParameterSpace sub = SliceSpace(space, t).ValueOrDie();
  EXPECT_TRUE(sub.is_2d());
  EXPECT_EQ(sub.x().name, "a");
  EXPECT_EQ(sub.y().name, "b");
  ASSERT_EQ(sub.x_size(), 3u);
  ASSERT_EQ(sub.y_size(), 2u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(sub.x().values[i], space.x().values[2 + i]);
  }
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(sub.y().values[i], space.y().values[1 + i]);
  }
}

TEST(SliceSpaceTest, OneDSliceStaysOneD) {
  ParameterSpace line = ParameterSpace::OneD(Axis::Selectivity("a", -4, 0));
  TileSpec t;
  t.x_begin = 1;
  t.x_end = 3;
  t.y_begin = 0;
  t.y_end = 1;
  ParameterSpace sub = SliceSpace(line, t).ValueOrDie();
  EXPECT_FALSE(sub.is_2d());
  EXPECT_EQ(sub.num_points(), 2u);
}

TEST(SliceSpaceTest, RejectsEmptyAndOutOfRangeRectangles) {
  ParameterSpace space = Grid(-4, -4);
  TileSpec empty;  // x_begin == x_end == 0
  EXPECT_FALSE(SliceSpace(space, empty).ok());
  TileSpec outside;
  outside.x_begin = 0;
  outside.x_end = space.x_size() + 1;
  outside.y_begin = 0;
  outside.y_end = 1;
  EXPECT_FALSE(SliceSpace(space, outside).ok());
}

}  // namespace
}  // namespace robustmap
