#include "core/shard_planner.h"

#include <gtest/gtest.h>

#include <vector>

namespace robustmap {
namespace {

ParameterSpace Grid(int x_min_log2, int y_min_log2) {
  return ParameterSpace::TwoD(Axis::Selectivity("a", x_min_log2, 0),
                              Axis::Selectivity("b", y_min_log2, 0));
}

/// Every grid point must be covered by exactly one tile.
void ExpectExactCover(const ParameterSpace& space,
                      const std::vector<TileSpec>& tiles) {
  std::vector<int> covered(space.num_points(), 0);
  for (const TileSpec& t : tiles) {
    ASSERT_LE(t.x_end, space.x_size());
    ASSERT_LE(t.y_end, space.y_size());
    ASSERT_LT(t.x_begin, t.x_end);
    ASSERT_LT(t.y_begin, t.y_end);
    for (size_t yi = t.y_begin; yi < t.y_end; ++yi) {
      for (size_t xi = t.x_begin; xi < t.x_end; ++xi) {
        ++covered[space.IndexOf(xi, yi)];
      }
    }
  }
  for (size_t pt = 0; pt < covered.size(); ++pt) {
    EXPECT_EQ(covered[pt], 1) << "point " << pt;
  }
}

TEST(ShardPlannerTest, CoversGridExactlyAtManyTileCounts) {
  ParameterSpace space = Grid(-8, -6);  // 9 x 7
  for (size_t tiles : {1u, 2u, 3u, 7u, 8u, 13u, 63u, 1000u}) {
    auto plan = ShardPlanner::Partition(space, tiles).ValueOrDie();
    SCOPED_TRACE(tiles);
    EXPECT_LE(plan.size(), tiles);
    EXPECT_FALSE(plan.empty());
    ExpectExactCover(space, plan);
  }
}

TEST(ShardPlannerTest, OneDSpaceSplitsAlongX) {
  ParameterSpace line = ParameterSpace::OneD(Axis::Selectivity("a", -10, 0));
  auto plan = ShardPlanner::Partition(line, 4).ValueOrDie();
  EXPECT_EQ(plan.size(), 4u);
  ExpectExactCover(line, plan);
  for (const TileSpec& t : plan) {
    EXPECT_EQ(t.y_begin, 0u);
    EXPECT_EQ(t.y_end, 1u);
  }
}

TEST(ShardPlannerTest, MoreTilesThanPointsIsCappedByTheGrid) {
  ParameterSpace space = Grid(-2, -2);  // 3 x 3 = 9 points
  auto plan = ShardPlanner::Partition(space, 1000).ValueOrDie();
  EXPECT_EQ(plan.size(), 9u);  // one tile per point, never an empty tile
  ExpectExactCover(space, plan);
}

TEST(ShardPlannerTest, StableIdsAcrossInvocations) {
  ParameterSpace space = Grid(-8, -8);
  auto a = ShardPlanner::Partition(space, 8).ValueOrDie();
  auto b = ShardPlanner::Partition(space, 8).ValueOrDie();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
    EXPECT_EQ(a[i].shard_id, i);  // ids are dense and ordered
  }
}

TEST(ShardPlannerTest, ZeroTilesIsAnError) {
  auto plan = ShardPlanner::Partition(Grid(-4, -4), 0);
  EXPECT_FALSE(plan.ok());
  EXPECT_TRUE(plan.status().IsInvalidArgument());
}

TEST(SliceSpaceTest, SliceCarriesAxisNamesAndValues) {
  ParameterSpace space = Grid(-8, -6);
  TileSpec t;
  t.x_begin = 2;
  t.x_end = 5;
  t.y_begin = 1;
  t.y_end = 3;
  ParameterSpace sub = SliceSpace(space, t).ValueOrDie();
  EXPECT_TRUE(sub.is_2d());
  EXPECT_EQ(sub.x().name, "a");
  EXPECT_EQ(sub.y().name, "b");
  ASSERT_EQ(sub.x_size(), 3u);
  ASSERT_EQ(sub.y_size(), 2u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(sub.x().values[i], space.x().values[2 + i]);
  }
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(sub.y().values[i], space.y().values[1 + i]);
  }
}

TEST(SliceSpaceTest, OneDSliceStaysOneD) {
  ParameterSpace line = ParameterSpace::OneD(Axis::Selectivity("a", -4, 0));
  TileSpec t;
  t.x_begin = 1;
  t.x_end = 3;
  t.y_begin = 0;
  t.y_end = 1;
  ParameterSpace sub = SliceSpace(line, t).ValueOrDie();
  EXPECT_FALSE(sub.is_2d());
  EXPECT_EQ(sub.num_points(), 2u);
}

TEST(SliceSpaceTest, RejectsEmptyAndOutOfRangeRectangles) {
  ParameterSpace space = Grid(-4, -4);
  TileSpec empty;  // x_begin == x_end == 0
  EXPECT_FALSE(SliceSpace(space, empty).ok());
  TileSpec outside;
  outside.x_begin = 0;
  outside.x_end = space.x_size() + 1;
  outside.y_begin = 0;
  outside.y_end = 1;
  EXPECT_FALSE(SliceSpace(space, outside).ok());
}

}  // namespace
}  // namespace robustmap
