#include "core/parameter_space.h"

#include <gtest/gtest.h>

namespace robustmap {
namespace {

TEST(AxisTest, SelectivityGrid) {
  Axis axis = Axis::Selectivity("s", -4, 0);
  EXPECT_EQ(axis.name, "s");
  ASSERT_EQ(axis.size(), 5u);
  EXPECT_DOUBLE_EQ(axis.values.front(), 0.0625);
  EXPECT_DOUBLE_EQ(axis.values.back(), 1.0);
}

TEST(AxisTest, FineGrid) {
  Axis axis = Axis::SelectivityFine("s", -2, 0, 4);
  EXPECT_EQ(axis.size(), 9u);
}

TEST(ParameterSpaceTest, OneD) {
  ParameterSpace space = ParameterSpace::OneD(Axis::Selectivity("s", -3, 0));
  EXPECT_FALSE(space.is_2d());
  EXPECT_EQ(space.num_points(), 4u);
  EXPECT_EQ(space.y_size(), 1u);
  EXPECT_DOUBLE_EQ(space.x_value(2), 0.5);
  EXPECT_DOUBLE_EQ(space.y_value(2), -1.0);
}

TEST(ParameterSpaceTest, TwoDIndexing) {
  ParameterSpace space = ParameterSpace::TwoD(
      Axis::Selectivity("a", -2, 0), Axis::Selectivity("b", -3, 0));
  EXPECT_TRUE(space.is_2d());
  EXPECT_EQ(space.x_size(), 3u);
  EXPECT_EQ(space.y_size(), 4u);
  EXPECT_EQ(space.num_points(), 12u);
  for (size_t xi = 0; xi < 3; ++xi) {
    for (size_t yi = 0; yi < 4; ++yi) {
      size_t idx = space.IndexOf(xi, yi);
      ASSERT_LT(idx, 12u);
      auto [cx, cy] = space.CoordsOf(idx);
      EXPECT_EQ(cx, xi);
      EXPECT_EQ(cy, yi);
    }
  }
}

TEST(ParameterSpaceTest, ValuesFollowAxes) {
  ParameterSpace space = ParameterSpace::TwoD(
      Axis::Selectivity("a", -2, 0), Axis::Selectivity("b", -3, 0));
  size_t idx = space.IndexOf(1, 2);
  EXPECT_DOUBLE_EQ(space.x_value(idx), 0.5);
  EXPECT_DOUBLE_EQ(space.y_value(idx), 0.5);
}

}  // namespace
}  // namespace robustmap
