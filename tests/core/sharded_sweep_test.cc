#include "core/sharded_sweep.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/sweep_telemetry.h"
#include "testing/map_expect.h"
#include "testing/test_env.h"

namespace robustmap {
namespace {

using ::robustmap::testing::ExpectMapsBitIdentical;
using ::robustmap::testing::ProcEnv;

std::vector<PlanKind> StudySubset() {
  return {PlanKind::kTableScan, PlanKind::kIndexAImproved,
          PlanKind::kMergeJoinAB, PlanKind::kMdamAB};
}

ParameterSpace SmallGrid() {
  return ParameterSpace::TwoD(Axis::Selectivity("a", -5, 0),
                              Axis::Selectivity("b", -5, 0));
}

/// A unique checkpoint directory per test case, so resume state never
/// bleeds between tests (or between repeated runs of one test binary).
std::string FreshTileDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/sharded_" + name + "_" +
                    std::to_string(::getpid());
  for (size_t id = 0; id < 64; ++id) {
    std::remove((dir + "/" + TileFileName(id)).c_str());
  }
  return dir;
}

TEST(RunShardedSweepTest, MergedMapBitIdenticalAcrossWorkerCounts) {
  ProcEnv env;
  Executor executor(env.db());
  ParameterSpace space = SmallGrid();

  SweepOptions serial;
  serial.num_threads = 1;
  auto reference =
      SweepStudyPlans(env.ctx(), executor, StudySubset(), space, serial)
          .ValueOrDie();

  for (unsigned workers : {1u, 2u, 8u}) {
    ShardedSweepOptions opts;
    opts.tile_dir =
        FreshTileDir("workers" + std::to_string(workers));
    opts.num_workers = workers;
    ShardedSweepStats stats;
    auto merged = RunShardedSweep(env.ctx(), executor, StudySubset(), space,
                                  opts, &stats)
                      .ValueOrDie();
    SCOPED_TRACE(std::to_string(workers) + " workers");
    // Each straggler split turns one pending tile into two, so with more
    // workers than planned tiles the computed count exceeds the plan by
    // exactly the split count — and the merged bytes must not notice.
    EXPECT_EQ(stats.tiles_computed, stats.tiles_total + stats.tiles_split);
    if (workers <= 1) {
      EXPECT_EQ(stats.tiles_split, 0u);
    }
    EXPECT_EQ(stats.tiles_reused, 0u);
    ExpectMapsBitIdentical(reference, merged);
  }
}

TEST(RunShardedSweepTest, MoreTilesThanWorkersStillMergesExactly) {
  ProcEnv env;
  Executor executor(env.db());
  ParameterSpace space = SmallGrid();
  SweepOptions serial;
  serial.num_threads = 1;
  auto reference =
      SweepStudyPlans(env.ctx(), executor, StudySubset(), space, serial)
          .ValueOrDie();

  ShardedSweepOptions opts;
  opts.tile_dir = FreshTileDir("finetiles");
  opts.num_workers = 3;
  opts.num_tiles = 11;  // deliberately not a multiple of the worker count
  ShardedSweepStats stats;
  auto merged = RunShardedSweep(env.ctx(), executor, StudySubset(), space,
                                opts, &stats)
                    .ValueOrDie();
  EXPECT_GT(stats.tiles_total, 3u);
  ExpectMapsBitIdentical(reference, merged);
}

TEST(RunShardedSweepTest, AllCostModelsMergeTheIdenticalMap) {
  ProcEnv env;
  Executor executor(env.db());
  ParameterSpace space = SmallGrid();
  SweepOptions serial;
  serial.num_threads = 1;
  auto reference =
      SweepStudyPlans(env.ctx(), executor, StudySubset(), space, serial)
          .ValueOrDie();

  // The measured leg reuses the analytic leg's directory, so the wall
  // times that run stamped into its tiles are the feedback being tested.
  std::string analytic_dir = FreshTileDir("model_analytic");
  for (CostModelKind kind :
       {CostModelKind::kUniform, CostModelKind::kAnalytic,
        CostModelKind::kMeasured}) {
    ShardedSweepOptions opts;
    opts.tile_dir = kind == CostModelKind::kUniform
                        ? FreshTileDir("model_uniform")
                        : analytic_dir;
    opts.num_workers = 4;
    opts.num_tiles = 6;
    opts.resume = false;  // measured mode moves boundaries; recompute all
    opts.cost_model = kind;
    ShardedSweepStats stats;
    auto merged = RunShardedSweep(env.ctx(), executor, StudySubset(), space,
                                  opts, &stats)
                      .ValueOrDie();
    SCOPED_TRACE(CostModelKindName(kind));
    EXPECT_EQ(stats.tiles_computed, stats.tiles_total);
    ExpectMapsBitIdentical(reference, merged);
    // Every slot that ran a tile accounted busy time.
    ASSERT_FALSE(stats.worker_busy_seconds.empty());
    for (double busy : stats.worker_busy_seconds) EXPECT_GT(busy, 0.0);
    EXPECT_GE(stats.busy_balance_ratio(), 1.0);
  }
}

TEST(RunShardedSweepTest, WeightedTilesResumeLikeUniformOnes) {
  // The weighted partition is deterministic for a fixed (space, tiles,
  // model), so checkpoint/resume must work exactly as it does for uniform
  // tiles: a second run reuses everything.
  ProcEnv env;
  Executor executor(env.db());
  ParameterSpace space = SmallGrid();
  ShardedSweepOptions opts;
  opts.tile_dir = FreshTileDir("weighted_resume");
  opts.num_workers = 3;
  opts.num_tiles = 5;
  opts.cost_model = CostModelKind::kAnalytic;

  ShardedSweepStats first;
  auto map1 = RunShardedSweep(env.ctx(), executor, StudySubset(), space,
                              opts, &first)
                  .ValueOrDie();
  EXPECT_EQ(first.tiles_computed, first.tiles_total);

  ShardedSweepStats second;
  auto map2 = RunShardedSweep(env.ctx(), executor, StudySubset(), space,
                              opts, &second)
                  .ValueOrDie();
  EXPECT_EQ(second.tiles_computed, 0u);
  EXPECT_EQ(second.tiles_reused, second.tiles_total);
  ExpectMapsBitIdentical(map1, map2);
}

TEST(ShardedSweepStatsTest, BalanceRatioIsMaxOverMean) {
  ShardedSweepStats stats;
  EXPECT_DOUBLE_EQ(stats.busy_balance_ratio(), 1.0);  // nothing computed
  stats.worker_busy_seconds = {1.0, 1.0, 4.0};        // mean 2, max 4
  EXPECT_DOUBLE_EQ(stats.busy_balance_ratio(), 2.0);
  stats.worker_busy_seconds = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(stats.busy_balance_ratio(), 1.0);
}

TEST(RunShardedSweepTest, ResumeReusesAllValidTiles) {
  ProcEnv env;
  Executor executor(env.db());
  ParameterSpace space = SmallGrid();
  ShardedSweepOptions opts;
  opts.tile_dir = FreshTileDir("resume");
  opts.num_workers = 4;

  ShardedSweepStats first;
  auto map1 = RunShardedSweep(env.ctx(), executor, StudySubset(), space,
                              opts, &first)
                  .ValueOrDie();
  EXPECT_EQ(first.tiles_computed, first.tiles_total);

  ShardedSweepStats second;
  auto map2 = RunShardedSweep(env.ctx(), executor, StudySubset(), space,
                              opts, &second)
                  .ValueOrDie();
  EXPECT_EQ(second.tiles_computed, 0u);
  EXPECT_EQ(second.tiles_reused, second.tiles_total);
  EXPECT_EQ(second.workers_spawned, 0u);
  ExpectMapsBitIdentical(map1, map2);
}

TEST(RunShardedSweepTest, ResumeRecomputesOnlyMissingAndCorruptTiles) {
  ProcEnv env;
  Executor executor(env.db());
  ParameterSpace space = SmallGrid();
  ShardedSweepOptions opts;
  opts.tile_dir = FreshTileDir("heal");
  opts.num_workers = 4;

  auto map1 =
      RunShardedSweep(env.ctx(), executor, StudySubset(), space, opts)
          .ValueOrDie();

  // Kill one checkpoint outright and damage a second in place.
  ASSERT_EQ(std::remove((opts.tile_dir + "/" + TileFileName(0)).c_str()), 0);
  {
    std::fstream f(opts.tile_dir + "/" + TileFileName(2),
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(0, std::ios::end);
    auto size = static_cast<long>(f.tellg());
    f.seekg(size / 2);
    const int byte = f.get();
    f.seekp(size / 2);
    f.put(static_cast<char>(byte ^ 0x01));
  }

  ShardedSweepStats stats;
  auto map2 = RunShardedSweep(env.ctx(), executor, StudySubset(), space,
                              opts, &stats)
                  .ValueOrDie();
  // Two damaged tiles on a four-worker box leaves workers idle, so the
  // straggler splitter cuts the recomputation finer: 2 + one extra tile
  // per split. The healed map must still match the original bytes.
  EXPECT_EQ(stats.tiles_computed, 2u + stats.tiles_split);
  EXPECT_GT(stats.tiles_split, 0u);
  EXPECT_EQ(stats.tiles_reused, stats.tiles_total - 2);
  ExpectMapsBitIdentical(map1, map2);
}

TEST(RunShardedSweepTest, MegaTileSplitsAndMeasuresEachCellExactlyOnce) {
  // The worst partition on the skewed study grid: one mega-tile holding
  // every cell, four idle workers. The splitter must cut it into
  // dispatchable pieces, measure every (plan, point) cell exactly once
  // across all worker processes, and merge the serial bytes.
  ProcEnv env;
  Executor executor(env.db());
  ParameterSpace space = SmallGrid();

  SweepOptions serial;
  serial.num_threads = 1;
  auto reference =
      SweepStudyPlans(env.ctx(), executor, StudySubset(), space, serial)
          .ValueOrDie();

  ShardedSweepOptions opts;
  opts.tile_dir = FreshTileDir("megatile");
  opts.num_workers = 4;
  opts.num_tiles = 1;
  ShardedSweepStats stats;
  SweepTelemetry::Get().Reset();
  SweepTelemetry::Get().Enable();
  auto merged = RunShardedSweep(env.ctx(), executor, StudySubset(), space,
                                opts, &stats)
                    .ValueOrDie();
  SweepTelemetry::Get().Disable();
  const auto counters = SweepTelemetry::Get().Counters();
  SweepTelemetry::Get().Reset();

  EXPECT_EQ(stats.tiles_total, 1u);
  EXPECT_GE(stats.tiles_split, 1u);
  EXPECT_EQ(stats.tiles_computed, 1u + stats.tiles_split);
  // Nothing is recomputed under a split: the per-cell counter (merged
  // from every worker's telemetry sidecar) counts each cell once.
  ASSERT_TRUE(counters.count("sweep.cells_measured"));
  EXPECT_EQ(counters.at("sweep.cells_measured"),
            StudySubset().size() * space.num_points());
  ExpectMapsBitIdentical(reference, merged);
}

TEST(RunShardedSweepTest, ResumeAdoptsSplitPiecesByCoverage) {
  // A sweep whose tiles were straggler-split leaves *pieces* on disk, not
  // the planned tile files. A later resume against the same plan must
  // adopt the pieces that cover each planned tile instead of recomputing
  // — the resume-after-kill contract when the kill landed after a split
  // checkpointed its children.
  ProcEnv env;
  Executor executor(env.db());
  ParameterSpace space = SmallGrid();

  SweepOptions serial;
  serial.num_threads = 1;
  auto reference =
      SweepStudyPlans(env.ctx(), executor, StudySubset(), space, serial)
          .ValueOrDie();

  ShardedSweepOptions opts;
  opts.tile_dir = FreshTileDir("adopt");
  opts.num_workers = 8;
  opts.num_tiles = 2;
  ShardedSweepStats stats;
  auto first = RunShardedSweep(env.ctx(), executor, StudySubset(), space,
                               opts, &stats)
                   .ValueOrDie();
  ASSERT_GE(stats.tiles_split, 1u);
  ExpectMapsBitIdentical(reference, first);

  ShardedSweepStats resumed_stats;
  auto resumed = RunShardedSweep(env.ctx(), executor, StudySubset(), space,
                                 opts, &resumed_stats)
                     .ValueOrDie();
  EXPECT_EQ(resumed_stats.tiles_computed, 0u);
  EXPECT_GE(resumed_stats.tiles_reused, 2u);  // adopted pieces, not plans
  ExpectMapsBitIdentical(reference, resumed);

  // Lose one checkpointed piece (the kill-mid-split shape): the next
  // resume adopts the surviving pieces and recomputes only the uncovered
  // remainder — and still merges the serial bytes.
  for (size_t id = 2; id < 64; ++id) {
    const std::string path = opts.tile_dir + "/" + TileFileName(id);
    if (std::ifstream(path).good()) {
      std::remove(path.c_str());
      break;
    }
  }
  ShardedSweepStats healed_stats;
  auto healed = RunShardedSweep(env.ctx(), executor, StudySubset(), space,
                                opts, &healed_stats)
                    .ValueOrDie();
  EXPECT_GE(healed_stats.tiles_computed, 1u);
  EXPECT_GE(healed_stats.tiles_reused, 1u);
  ExpectMapsBitIdentical(reference, healed);
}

TEST(RunShardedSweepTest, ResumeRejectsTilesFromADifferentConfiguration) {
  ProcEnv env;
  Executor executor(env.db());
  ParameterSpace space = SmallGrid();
  ShardedSweepOptions opts;
  opts.tile_dir = FreshTileDir("reconfig");
  opts.num_workers = 2;
  auto coarse =
      RunShardedSweep(env.ctx(), executor, StudySubset(), space, opts)
          .ValueOrDie();

  // Same directory, finer grid: every stale tile describes the old grid
  // and must be recomputed, not merged.
  ParameterSpace fine =
      ParameterSpace::TwoD(Axis::SelectivityFine("a", -5, 0, 2),
                           Axis::SelectivityFine("b", -5, 0, 2));
  ShardedSweepStats stats;
  auto fine_map = RunShardedSweep(env.ctx(), executor, StudySubset(), fine,
                                  opts, &stats)
                      .ValueOrDie();
  EXPECT_EQ(stats.tiles_computed, stats.tiles_total);
  EXPECT_EQ(stats.tiles_reused, 0u);

  SweepOptions serial;
  serial.num_threads = 1;
  auto reference =
      SweepStudyPlans(env.ctx(), executor, StudySubset(), fine, serial)
          .ValueOrDie();
  ExpectMapsBitIdentical(reference, fine_map);
}

TEST(RunShardedSweepTest, WorkerFailurePropagatesItsStatusMessage) {
  ProcEnv env;
  StudyDb db = env.db();
  db.idx_ab = nullptr;  // kMdamAB needs idx(a,b): workers must fail
  Executor executor(db);
  ShardedSweepOptions opts;
  opts.tile_dir = FreshTileDir("failure");
  opts.num_workers = 2;
  auto result = RunShardedSweep(env.ctx(), executor,
                                {PlanKind::kTableScan, PlanKind::kMdamAB},
                                SmallGrid(), opts);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInternal());
  // The child's own Status must cross the process boundary via the err
  // file, not collapse into a bare exit code.
  EXPECT_NE(result.status().message().find("sweep worker for tile"),
            std::string::npos);
  EXPECT_NE(result.status().message().find("InvalidArgument"),
            std::string::npos);
}

TEST(RunShardedSweepTest, RejectsOrderDependentWarmupAndMissingDir) {
  ProcEnv env;
  Executor executor(env.db());
  ShardedSweepOptions opts;
  opts.tile_dir = FreshTileDir("warmup");
  env.ctx()->warmup = WarmupPolicy::PriorRun();
  auto r = RunShardedSweep(env.ctx(), executor, StudySubset(), SmallGrid(),
                           opts);
  EXPECT_TRUE(r.status().IsInvalidArgument());
  env.ctx()->warmup = WarmupPolicy::Cold();

  ShardedSweepOptions no_dir;
  EXPECT_TRUE(RunShardedSweep(env.ctx(), executor, StudySubset(),
                              SmallGrid(), no_dir)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace robustmap
