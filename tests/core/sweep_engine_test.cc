#include "core/sweep_engine.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "core/sharded_sweep.h"
#include "engine/query.h"
#include "testing/map_expect.h"
#include "testing/test_env.h"

namespace robustmap {
namespace {

using ::robustmap::testing::ExpectMapsBitIdentical;
using ::robustmap::testing::ProcEnv;

std::vector<PlanKind> StudySubset() {
  return {PlanKind::kTableScan, PlanKind::kIndexAImproved,
          PlanKind::kMergeJoinAB};
}

ParameterSpace SmallGrid() {
  return ParameterSpace::TwoD(Axis::Selectivity("a", -4, 0),
                              Axis::Selectivity("b", -4, 0));
}

std::string FreshTileDir(const std::string& name) {
  return ::testing::TempDir() + "/engine_" + name + "_" +
         std::to_string(::getpid());
}

SweepRequest BaseRequest(StudyKind study, BackendKind backend) {
  SweepRequest req;
  req.plans = StudySubset();
  req.space = SmallGrid();
  req.study = study;
  req.backend = backend;
  req.warm_policy = WarmupPolicy::FractionResident(0.5);
  return req;
}

TEST(StudyKindTest, NamesRoundTripAndRejectUnknown) {
  for (StudyKind kind : {StudyKind::kPlainMap, StudyKind::kWarmColdDelta}) {
    auto back = StudyKindFromString(StudyKindName(kind));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), kind);
  }
  auto bogus = StudyKindFromString("bogus");
  ASSERT_FALSE(bogus.ok());
  EXPECT_TRUE(bogus.status().IsInvalidArgument());

  EXPECT_EQ(StudyLayerCount(StudyKind::kPlainMap), 1u);
  EXPECT_EQ(StudyLayerCount(StudyKind::kWarmColdDelta), 3u);
  // Plain tiles must stay on the unnamed v2 byte stream; warm-cold layers
  // are named in study order.
  EXPECT_TRUE(StudyLayerNames(StudyKind::kPlainMap).empty());
  EXPECT_EQ(StudyLayerNames(StudyKind::kWarmColdDelta),
            (std::vector<std::string>{"cold", "warm", "delta"}));
}

TEST(BackendKindTest, NamesRoundTripAndRejectUnknown) {
  for (BackendKind kind : {BackendKind::kSerial, BackendKind::kThreaded,
                           BackendKind::kShardedProcess}) {
    auto back = BackendKindFromString(BackendKindName(kind));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), kind);
  }
  EXPECT_TRUE(BackendKindFromString("gpu").status().IsInvalidArgument());
}

TEST(SweepEngineTest, PlainStudyIdenticalAcrossInProcessBackends) {
  ProcEnv env;
  Executor executor(env.db());
  auto serial = SweepEngine::Run(env.ctx(), executor,
                                 BaseRequest(StudyKind::kPlainMap,
                                             BackendKind::kSerial))
                    .ValueOrDie();
  ASSERT_EQ(serial.layers.size(), 1u);

  SweepRequest threaded =
      BaseRequest(StudyKind::kPlainMap, BackendKind::kThreaded);
  threaded.sweep.num_threads = 4;
  auto parallel = SweepEngine::Run(env.ctx(), executor, threaded)
                      .ValueOrDie();
  ExpectMapsBitIdentical(serial.map(), parallel.map());
}

TEST(SweepEngineTest, WarmColdStudyLayersConsistentAcrossBackends) {
  ProcEnv env;
  Executor executor(env.db());
  auto serial = SweepEngine::Run(env.ctx(), executor,
                                 BaseRequest(StudyKind::kWarmColdDelta,
                                             BackendKind::kSerial))
                    .ValueOrDie();
  ASSERT_EQ(serial.layers.size(), 3u);
  // delta really is warm − cold, cell for cell.
  auto delta = DiffMaps(serial.warm(), serial.cold()).ValueOrDie();
  ExpectMapsBitIdentical(delta, serial.delta());
  // The context's policy is restored after the study.
  EXPECT_TRUE(env.ctx()->warmup.is_cold());

  SweepRequest threaded =
      BaseRequest(StudyKind::kWarmColdDelta, BackendKind::kThreaded);
  threaded.sweep.num_threads = 4;
  auto parallel = SweepEngine::Run(env.ctx(), executor, threaded)
                      .ValueOrDie();
  for (size_t li = 0; li < 3; ++li) {
    SCOPED_TRACE(li);
    ExpectMapsBitIdentical(serial.layers[li], parallel.layers[li]);
  }

  // And the legacy shim unpacks the same three maps.
  auto shim = RunWarmColdSweep(env.ctx(), executor, StudySubset(),
                               SmallGrid(), WarmupPolicy::FractionResident(0.5))
                  .ValueOrDie();
  ExpectMapsBitIdentical(serial.cold(), shim.cold);
  ExpectMapsBitIdentical(serial.warm(), shim.warm);
  ExpectMapsBitIdentical(serial.delta(), shim.delta);
}

TEST(SweepEngineTest, ShardedWarmColdMatchesSerialReferencePerLayer) {
  // The composition the engine exists for: the §3.2 warm-cold study on the
  // multi-process backend, bit-identical per layer to the serial
  // reference, with resume revalidating the three-layer tiles.
  ProcEnv env;
  Executor executor(env.db());
  auto reference = SweepEngine::Run(env.ctx(), executor,
                                    BaseRequest(StudyKind::kWarmColdDelta,
                                                BackendKind::kSerial))
                       .ValueOrDie();

  SweepRequest sharded =
      BaseRequest(StudyKind::kWarmColdDelta, BackendKind::kShardedProcess);
  sharded.sharded.tile_dir = FreshTileDir("warmcold");
  sharded.sharded.num_workers = 3;
  sharded.sharded.num_tiles = 5;
  auto merged = SweepEngine::Run(env.ctx(), executor, sharded).ValueOrDie();
  ASSERT_EQ(merged.layers.size(), 3u);
  EXPECT_EQ(merged.sharded_stats.tiles_computed,
            merged.sharded_stats.tiles_total);
  for (size_t li = 0; li < 3; ++li) {
    SCOPED_TRACE(li);
    ExpectMapsBitIdentical(reference.layers[li], merged.layers[li]);
  }

  auto resumed = SweepEngine::Run(env.ctx(), executor, sharded).ValueOrDie();
  EXPECT_EQ(resumed.sharded_stats.tiles_computed, 0u);
  EXPECT_EQ(resumed.sharded_stats.tiles_reused,
            resumed.sharded_stats.tiles_total);
  ExpectMapsBitIdentical(reference.delta(), resumed.delta());
}

TEST(SweepEngineTest, RecycledMachinesBitIdenticalAcrossBackendsAndWarmups) {
  // The arena-reuse contract: worker machines recycled between cells (and
  // between whole sweeps) must measure exactly what freshly built ones
  // would, for every backend and warmup policy the study supports.
  ProcEnv env;
  Executor executor(env.db());
  // Prior-run cells inherit the pool contents the previous cell (and the
  // previous *sweep*) left behind — order-dependent by design — so every
  // run below starts from the same empty pool to be comparable at all.
  // For cold and fraction-resident the reset is a no-op: ColdStart
  // re-establishes the prescribed state at every cell anyway.
  const auto reset_pool = [&] {
    env.ctx()->pool->Clear();
    env.ctx()->pool->ResetStats();
  };
  for (const WarmupPolicy& warmup :
       {WarmupPolicy::Cold(), WarmupPolicy::PriorRun(),
        WarmupPolicy::FractionResident(0.5)}) {
    SCOPED_TRACE(warmup.label());
    env.ctx()->warmup = warmup;

    reset_pool();
    auto serial = SweepEngine::Run(env.ctx(), executor,
                                   BaseRequest(StudyKind::kPlainMap,
                                               BackendKind::kSerial))
                      .ValueOrDie();

    if (warmup.is_order_dependent()) {
      // Order-dependent cells sit outside the backend bit-identity
      // contract (residency carries from cell to cell, so any schedule
      // change is observable). What must still hold: the same serialized
      // sweep from the same starting pool state reproduces exactly —
      // plan batching must not perturb it.
      reset_pool();
      auto again = SweepEngine::Run(env.ctx(), executor,
                                    BaseRequest(StudyKind::kPlainMap,
                                                BackendKind::kSerial))
                       .ValueOrDie();
      ExpectMapsBitIdentical(serial.map(), again.map());
      // And the warm-cold study — whose parallel cold half draws recycled
      // machines from the factory arena while the prior-run warm half is
      // serialized — reproduces layer for layer.
      reset_pool();
      auto wc_first = RunWarmColdSweep(env.ctx(), executor, StudySubset(),
                                       SmallGrid(), WarmupPolicy::PriorRun())
                          .ValueOrDie();
      reset_pool();
      auto wc_second = RunWarmColdSweep(env.ctx(), executor, StudySubset(),
                                        SmallGrid(),
                                        WarmupPolicy::PriorRun())
                           .ValueOrDie();
      ExpectMapsBitIdentical(wc_first.cold, wc_second.cold);
      ExpectMapsBitIdentical(wc_first.warm, wc_second.warm);
      ExpectMapsBitIdentical(wc_first.delta, wc_second.delta);
      continue;
    }

    SweepRequest threaded =
        BaseRequest(StudyKind::kPlainMap, BackendKind::kThreaded);
    threaded.sweep.num_threads = 4;
    reset_pool();
    auto first = SweepEngine::Run(env.ctx(), executor, threaded)
                     .ValueOrDie();
    reset_pool();
    auto second = SweepEngine::Run(env.ctx(), executor, threaded)
                      .ValueOrDie();
    ExpectMapsBitIdentical(serial.map(), first.map());
    ExpectMapsBitIdentical(serial.map(), second.map());

    SweepRequest sharded =
        BaseRequest(StudyKind::kPlainMap, BackendKind::kShardedProcess);
    sharded.sharded.tile_dir = FreshTileDir(
        "recycle_" + std::to_string(static_cast<int>(warmup.mode)));
    sharded.sharded.num_workers = 2;
    sharded.sharded.num_tiles = 4;
    auto merged = SweepEngine::Run(env.ctx(), executor, sharded)
                      .ValueOrDie();
    ExpectMapsBitIdentical(serial.map(), merged.map());
  }
  env.ctx()->warmup = WarmupPolicy::Cold();
}

TEST(SweepEngineTest, RepeatedSweepsOverOneFactoryRecycleExactly) {
  // Two parallel sweeps over the same factory: the first builds its worker
  // machines cold, the second draws every machine recycled from the arena.
  // Rebuild-every-cell and recycle must be indistinguishable in the map.
  ProcEnv env;
  Executor executor(env.db());
  RunContextFactory factory(*env.ctx());
  const std::vector<PlanKind> plans = StudySubset();
  std::vector<std::string> labels;
  for (PlanKind k : plans) labels.push_back(PlanKindLabel(k));
  const int64_t domain = executor.db().domain;
  const auto runner = [&](RunContext* ctx, size_t plan, double sx,
                          double sy) {
    return executor.Run(ctx, plans[plan], MakeStudyQuery(sx, sy, domain));
  };
  SweepOptions opts;
  opts.num_threads = 3;
  auto fresh = ParallelRunSweep(SmallGrid(), labels, factory, runner, opts)
                   .ValueOrDie();
  auto recycled = ParallelRunSweep(SmallGrid(), labels, factory, runner,
                                   opts)
                      .ValueOrDie();
  ExpectMapsBitIdentical(fresh, recycled);
}

TEST(SweepEngineTest, ShardedResumeRejectsTilesOfADifferentStudy) {
  // A plain checkpoint directory re-pointed at a warm-cold study (or vice
  // versa) is a reconfiguration: every tile must be recomputed, never
  // merged into the wrong study.
  ProcEnv env;
  Executor executor(env.db());
  SweepRequest plain =
      BaseRequest(StudyKind::kPlainMap, BackendKind::kShardedProcess);
  plain.sharded.tile_dir = FreshTileDir("study_mix");
  plain.sharded.num_workers = 2;
  plain.sharded.num_tiles = 4;
  auto first = SweepEngine::Run(env.ctx(), executor, plain).ValueOrDie();
  EXPECT_EQ(first.sharded_stats.tiles_computed,
            first.sharded_stats.tiles_total);

  SweepRequest warmcold = plain;
  warmcold.study = StudyKind::kWarmColdDelta;
  auto second = SweepEngine::Run(env.ctx(), executor, warmcold).ValueOrDie();
  EXPECT_EQ(second.sharded_stats.tiles_reused, 0u);
  EXPECT_EQ(second.sharded_stats.tiles_computed,
            second.sharded_stats.tiles_total);

  auto reference = SweepEngine::Run(env.ctx(), executor,
                                    BaseRequest(StudyKind::kWarmColdDelta,
                                                BackendKind::kSerial))
                       .ValueOrDie();
  for (size_t li = 0; li < 3; ++li) {
    SCOPED_TRACE(li);
    ExpectMapsBitIdentical(reference.layers[li], second.layers[li]);
  }
}

TEST(SweepEngineTest, ShardedBackendRejectsOrderDependentConfigurations) {
  ProcEnv env;
  Executor executor(env.db());

  SweepRequest prior =
      BaseRequest(StudyKind::kWarmColdDelta, BackendKind::kShardedProcess);
  prior.sharded.tile_dir = FreshTileDir("reject");
  prior.warm_policy = WarmupPolicy::PriorRun();
  EXPECT_TRUE(SweepEngine::Run(env.ctx(), executor, prior)
                  .status()
                  .IsInvalidArgument());

  SweepRequest shared =
      BaseRequest(StudyKind::kPlainMap, BackendKind::kShardedProcess);
  shared.sharded.tile_dir = FreshTileDir("reject_pool");
  SharedBufferPool pool(64);
  shared.sweep.shared_pool = &pool;
  EXPECT_TRUE(SweepEngine::Run(env.ctx(), executor, shared)
                  .status()
                  .IsInvalidArgument());

  SweepRequest schedule =
      BaseRequest(StudyKind::kPlainMap, BackendKind::kShardedProcess);
  schedule.sharded.tile_dir = FreshTileDir("reject_sched");
  schedule.sweep.deterministic_shared_schedule = true;
  EXPECT_TRUE(SweepEngine::Run(env.ctx(), executor, schedule)
                  .status()
                  .IsInvalidArgument());
}

TEST(WarmupPolicySpecTest, RoundTripsEveryMode) {
  for (const WarmupPolicy& policy :
       {WarmupPolicy::Cold(), WarmupPolicy::PriorRun(),
        WarmupPolicy::FractionResident(0.375),
        WarmupPolicy::ExplicitPages({1, 2, 3, 7, 10, 11}),
        WarmupPolicy::ExplicitPages({})}) {
    auto back = WarmupPolicy::FromSpec(policy.ToSpec());
    ASSERT_TRUE(back.ok()) << policy.ToSpec();
    EXPECT_EQ(back.value().mode, policy.mode) << policy.ToSpec();
    EXPECT_EQ(back.value().pages, policy.pages) << policy.ToSpec();
    EXPECT_DOUBLE_EQ(back.value().fraction, policy.fraction);
  }
  // Consecutive runs compress: the common "leading half of the table"
  // policy stays one short token however many pages it names.
  EXPECT_EQ(WarmupPolicy::ExplicitPages({5, 6, 7, 8}).ToSpec(),
            "pages:5-8");

  // "resident:nan" would sail through a naive `f < 0 || f > 1` check
  // (NaN compares false both ways), and a signed page token would wrap
  // through strtoull into a ~2^64-page range — both must be rejections,
  // not sweeps.
  for (const char* bad :
       {"", "warm", "resident:", "resident:1.5", "resident:x",
        "resident:nan", "resident:inf", "pages:1,", "pages:9-3",
        "pages:a-b", "pages:-2", "pages:1--2", "pages:+3"}) {
    EXPECT_TRUE(WarmupPolicy::FromSpec(bad).status().IsInvalidArgument())
        << bad;
  }
}

TEST(RectSpecTest, FormatsAndParsesTheWorkerContract) {
  TileSpec tile;
  tile.x_begin = 2;
  tile.x_end = 9;
  tile.y_begin = 0;
  tile.y_end = 4;
  EXPECT_EQ(RectSpecString(tile), "2:9:0:4");

  TileSpec parsed;
  ASSERT_TRUE(ParseRectSpec("2:9:0:4", &parsed));
  EXPECT_EQ(parsed.x_begin, 2u);
  EXPECT_EQ(parsed.x_end, 9u);
  EXPECT_EQ(parsed.y_begin, 0u);
  EXPECT_EQ(parsed.y_end, 4u);

  for (const char* bad : {"", "1:2:3", "1:2:3:4:5", "1:x:3:4", ":2:3:4",
                          "1:2:3:"}) {
    TileSpec t;
    EXPECT_FALSE(ParseRectSpec(bad, &t)) << bad;
  }
}

}  // namespace
}  // namespace robustmap
