#include <gtest/gtest.h>
#include <unistd.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/cell_cache.h"
#include "core/parameter_space.h"
#include "core/sweep_engine.h"
#include "core/sweep_telemetry.h"
#include "testing/map_expect.h"
#include "testing/test_env.h"

namespace robustmap {
namespace {

using ::robustmap::testing::ExpectMapsBitIdentical;
using ::robustmap::testing::ProcEnv;

std::vector<PlanKind> StudySubset() {
  return {PlanKind::kTableScan, PlanKind::kIndexAImproved,
          PlanKind::kMergeJoinAB};
}

ParameterSpace SmallGrid() {
  return ParameterSpace::TwoD(Axis::Selectivity("a", -4, 0),
                              Axis::Selectivity("b", -4, 0));
}

SweepRequest BaseRequest(StudyKind study, BackendKind backend) {
  SweepRequest req;
  req.plans = StudySubset();
  req.space = SmallGrid();
  req.study = study;
  req.backend = backend;
  req.warm_policy = WarmupPolicy::FractionResident(0.5);
  return req;
}

uint64_t Counter(const std::map<std::string, uint64_t>& counters,
                 const std::string& name) {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

/// Runs `req` with telemetry freshly enabled and returns the counters it
/// recorded. Telemetry is process-global, so reset-run-snapshot must be
/// one unit.
std::map<std::string, uint64_t> RunCounting(RunContext* ctx,
                                            const Executor& executor,
                                            const SweepRequest& req,
                                            SweepOutcome* outcome) {
  SweepTelemetry::Get().Reset();
  SweepTelemetry::Get().Enable();
  auto out = SweepEngine::Run(ctx, executor, req);
  SweepTelemetry::Get().Disable();
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  auto counters = SweepTelemetry::Get().Counters();
  SweepTelemetry::Get().Reset();
  if (out.ok() && outcome != nullptr) *outcome = std::move(out).value();
  return counters;
}

TEST(ProgressiveSweepTest, FinalLayersBitIdenticalAndSnapshotsFullGrid) {
  ProcEnv env;
  Executor executor(env.db());
  auto direct = SweepEngine::Run(env.ctx(), executor,
                                 BaseRequest(StudyKind::kPlainMap,
                                             BackendKind::kSerial))
                    .ValueOrDie();

  SweepRequest prog = BaseRequest(StudyKind::kPlainMap, BackendKind::kSerial);
  prog.progressive.initial_stride = 4;
  std::vector<size_t> strides_seen;
  prog.progressive.on_snapshot = [&](size_t stride,
                                     const std::vector<RobustnessMap>& layers) {
    strides_seen.push_back(stride);
    ASSERT_EQ(layers.size(), 1u);
    // Every snapshot — however coarse the lattice behind it — is
    // upsampled to the full grid, so a viewer can render any of them.
    EXPECT_EQ(layers[0].space(), prog.space);
    // The coarse lattice's own cells show their exact measured values;
    // nearest-neighbor fill only invents the in-between cells.
    for (size_t xi = 0; xi < prog.space.x_size(); xi += stride) {
      for (size_t yi = 0; yi < prog.space.y_size(); yi += stride) {
        EXPECT_EQ(layers[0].AtXY(0, xi, yi).seconds,
                  direct.map().AtXY(0, xi, yi).seconds);
      }
    }
  };
  auto refined = SweepEngine::Run(env.ctx(), executor, prog).ValueOrDie();
  EXPECT_EQ(strides_seen, (std::vector<size_t>{4, 2, 1}));
  ExpectMapsBitIdentical(direct.map(), refined.map());
}

TEST(ProgressiveSweepTest, WarmColdStudyLayersBitIdentical) {
  ProcEnv env;
  Executor executor(env.db());
  auto direct = SweepEngine::Run(env.ctx(), executor,
                                 BaseRequest(StudyKind::kWarmColdDelta,
                                             BackendKind::kSerial))
                    .ValueOrDie();

  SweepRequest prog =
      BaseRequest(StudyKind::kWarmColdDelta, BackendKind::kThreaded);
  prog.sweep.num_threads = 4;
  prog.progressive.initial_stride = 2;
  auto refined = SweepEngine::Run(env.ctx(), executor, prog).ValueOrDie();
  ASSERT_EQ(refined.layers.size(), 3u);
  for (size_t li = 0; li < 3; ++li) {
    SCOPED_TRACE(li);
    ExpectMapsBitIdentical(direct.layers[li], refined.layers[li]);
  }
}

TEST(ProgressiveSweepTest, MeasuresEachCellExactlyOnce) {
  // The tentpole claim: across all refinement levels, every (plan, point)
  // is measured exactly once — coarse-level results are cache hits at
  // every finer level, not re-measurements.
  ProcEnv env;
  Executor executor(env.db());
  SweepRequest prog =
      BaseRequest(StudyKind::kPlainMap, BackendKind::kThreaded);
  prog.sweep.num_threads = 4;
  prog.progressive.initial_stride = 4;

  SweepOutcome outcome;
  const auto counters = RunCounting(env.ctx(), executor, prog, &outcome);
  const uint64_t cells = prog.plans.size() * prog.space.num_points();
  EXPECT_EQ(Counter(counters, "sweep.cells_measured"), cells);
  EXPECT_EQ(Counter(counters, "sweep.progressive_levels"), 3u);
  // Reuse really happened: the stride-4 and stride-2 lattices are
  // sublattices of every finer level, so their cells hit at least once.
  const ParameterSpace coarse = SubsampleSpace(prog.space, 4);
  const ParameterSpace mid = SubsampleSpace(prog.space, 2);
  EXPECT_EQ(Counter(counters, "sweep.cells_reused"),
            prog.plans.size() * (coarse.num_points() + mid.num_points()));
  EXPECT_EQ(Counter(counters, "cache.hits"),
            Counter(counters, "sweep.cells_reused"));
  EXPECT_EQ(Counter(counters, "cache.hits") +
                Counter(counters, "cache.misses"),
            prog.plans.size() *
                (coarse.num_points() + mid.num_points() +
                 prog.space.num_points()));
}

TEST(ProgressiveSweepTest, WarmCacheRerunMeasuresNothing) {
  ProcEnv env;
  Executor executor(env.db());
  CellResultCache cache;  // in-memory is enough: reuse needs no disk

  SweepRequest req = BaseRequest(StudyKind::kPlainMap, BackendKind::kThreaded);
  req.sweep.num_threads = 4;
  req.cell_cache = &cache;
  SweepOutcome cold_run;
  const auto cold = RunCounting(env.ctx(), executor, req, &cold_run);
  const uint64_t cells = req.plans.size() * req.space.num_points();
  EXPECT_EQ(Counter(cold, "sweep.cells_measured"), cells);
  EXPECT_EQ(Counter(cold, "cache.misses"), cells);
  EXPECT_EQ(cache.size(), cells);

  SweepOutcome warm_run;
  const auto warm = RunCounting(env.ctx(), executor, req, &warm_run);
  EXPECT_EQ(Counter(warm, "sweep.cells_measured"), 0u);
  EXPECT_EQ(Counter(warm, "cache.hits"), cells);
  EXPECT_EQ(Counter(warm, "cache.misses"), 0u);
  ExpectMapsBitIdentical(cold_run.map(), warm_run.map());
}

TEST(ProgressiveSweepTest, RefinedGridHitsTheCoincidentHalfLattice) {
  // The refinement workflow the value-keyed fingerprint exists for: sweep
  // the one-point-per-octave grid, then re-sweep at two points per octave
  // with the same cache. `exp2(min + i/2)` at even i is bit-identical to
  // the coarse grid's `exp2(min + i/2/1)`, so the fine sweep re-measures
  // only the new half-lattice.
  ProcEnv env;
  Executor executor(env.db());
  CellResultCache cache;

  SweepRequest coarse =
      BaseRequest(StudyKind::kPlainMap, BackendKind::kSerial);
  coarse.cell_cache = &cache;
  SweepOutcome coarse_run;
  const auto first = RunCounting(env.ctx(), executor, coarse, &coarse_run);
  const uint64_t coarse_cells =
      coarse.plans.size() * coarse.space.num_points();
  EXPECT_EQ(Counter(first, "sweep.cells_measured"), coarse_cells);

  SweepRequest fine = coarse;
  fine.space = ParameterSpace::TwoD(Axis::SelectivityFine("a", -4, 0, 2),
                                    Axis::SelectivityFine("b", -4, 0, 2));
  ASSERT_EQ(fine.space.x_size(), 2 * coarse.space.x_size() - 1);
  SweepOutcome fine_run;
  const auto second = RunCounting(env.ctx(), executor, fine, &fine_run);
  const uint64_t fine_cells = fine.plans.size() * fine.space.num_points();
  EXPECT_EQ(Counter(second, "sweep.cells_reused"), coarse_cells);
  EXPECT_EQ(Counter(second, "sweep.cells_measured"),
            fine_cells - coarse_cells);

  // Reused cells carry the exact bytes a fresh measurement would have:
  // the cached fine map matches an uncached reference sweep.
  SweepRequest reference = fine;
  reference.cell_cache = nullptr;
  auto uncached =
      SweepEngine::Run(env.ctx(), executor, reference).ValueOrDie();
  ExpectMapsBitIdentical(uncached.map(), fine_run.map());
}

TEST(ProgressiveSweepTest, RejectsOrderDependentConfigurations) {
  ProcEnv env;
  Executor executor(env.db());

  SweepRequest prior = BaseRequest(StudyKind::kPlainMap, BackendKind::kSerial);
  prior.progressive.initial_stride = 2;
  env.ctx()->warmup = WarmupPolicy::PriorRun();
  EXPECT_TRUE(SweepEngine::Run(env.ctx(), executor, prior)
                  .status()
                  .IsInvalidArgument());
  env.ctx()->warmup = WarmupPolicy::Cold();

  SweepRequest warm =
      BaseRequest(StudyKind::kWarmColdDelta, BackendKind::kSerial);
  warm.progressive.initial_stride = 2;
  warm.warm_policy = WarmupPolicy::PriorRun();
  EXPECT_TRUE(SweepEngine::Run(env.ctx(), executor, warm)
                  .status()
                  .IsInvalidArgument());

  SweepRequest shared =
      BaseRequest(StudyKind::kPlainMap, BackendKind::kThreaded);
  shared.progressive.initial_stride = 2;
  SharedBufferPool pool(64);
  shared.sweep.shared_pool = &pool;
  EXPECT_TRUE(SweepEngine::Run(env.ctx(), executor, shared)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace robustmap
