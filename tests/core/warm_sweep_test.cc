#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/sweep.h"
#include "testing/map_expect.h"
#include "testing/test_env.h"

namespace robustmap {
namespace {

using ::robustmap::testing::ExpectMapsBitIdentical;
using ::robustmap::testing::ProcEnv;

std::vector<PlanKind> StudyPlans() {
  return {PlanKind::kTableScan, PlanKind::kIndexAImproved};
}

ParameterSpace SmallSpace() {
  return ParameterSpace::TwoD(Axis::Selectivity("a", -4, 0),
                              Axis::Selectivity("b", -4, 0));
}

TEST(RunWarmColdSweepTest, ProducesConsistentDeltaAndRestoresPolicy) {
  ProcEnv env;
  Executor executor(env.db());
  ParameterSpace space = SmallSpace();
  // Warm the table's first half — the fetch paths of both plans hit it.
  std::vector<uint64_t> pages;
  for (uint64_t p = 0; p < env.table().num_pages() / 2; ++p) {
    pages.push_back(env.table().base_page() + p);
  }
  SweepOptions opts;
  opts.num_threads = 2;
  auto maps = RunWarmColdSweep(env.ctx(), executor, StudyPlans(), space,
                               WarmupPolicy::ExplicitPages(pages), opts)
                  .ValueOrDie();

  EXPECT_EQ(env.ctx()->warmup.mode, WarmupPolicy::Mode::kCold);  // restored

  // delta = warm - cold, cell by cell; cardinalities must agree.
  double min_delta = 0;
  for (size_t plan = 0; plan < maps.delta.num_plans(); ++plan) {
    for (size_t pt = 0; pt < space.num_points(); ++pt) {
      const Measurement& d = maps.delta.At(plan, pt);
      const Measurement& w = maps.warm.At(plan, pt);
      const Measurement& c = maps.cold.At(plan, pt);
      EXPECT_DOUBLE_EQ(d.seconds, w.seconds - c.seconds);
      EXPECT_EQ(w.output_rows, c.output_rows);
      if (d.seconds < min_delta) min_delta = d.seconds;
      // The warm run can only see more buffer hits than the cold one.
      EXPECT_GE(w.io.buffer_hits, c.io.buffer_hits);
    }
  }
  EXPECT_LT(min_delta, 0);  // the warm cache helps somewhere
}

TEST(RunWarmColdSweepTest, DeterministicWarmPolicyIsThreadCountInvariant) {
  ProcEnv env;
  Executor executor(env.db());
  ParameterSpace space = SmallSpace();
  WarmupPolicy policy = WarmupPolicy::FractionResident(0.3);

  SweepOptions serial;
  serial.num_threads = 1;
  auto reference =
      RunWarmColdSweep(env.ctx(), executor, StudyPlans(), space, policy,
                       serial)
          .ValueOrDie();

  for (unsigned threads : {2u, 8u}) {
    SweepOptions opts;
    opts.num_threads = threads;
    auto maps = RunWarmColdSweep(env.ctx(), executor, StudyPlans(), space,
                                 policy, opts)
                    .ValueOrDie();
    SCOPED_TRACE(std::to_string(threads) + " threads");
    ExpectMapsBitIdentical(reference.cold, maps.cold);
    ExpectMapsBitIdentical(reference.warm, maps.warm);
  }
}

TEST(RunWarmColdSweepTest, PriorRunWarmMapIsReproducible) {
  ProcEnv env;
  Executor executor(env.db());
  ParameterSpace space = SmallSpace();
  // Prior-run warmth depends on execution history; the sweep pins it by
  // forcing serial order and a cleared pool at the start of the warm half,
  // so two invocations must agree bit for bit — even asked to parallelize.
  SweepOptions opts;
  opts.num_threads = 4;
  auto first = RunWarmColdSweep(env.ctx(), executor, StudyPlans(), space,
                                WarmupPolicy::PriorRun(), opts)
                   .ValueOrDie();
  auto second = RunWarmColdSweep(env.ctx(), executor, StudyPlans(), space,
                                 WarmupPolicy::PriorRun(), opts)
                    .ValueOrDie();
  ExpectMapsBitIdentical(first.warm, second.warm);
  ExpectMapsBitIdentical(first.cold, second.cold);
}

// A page-set policy over a shared pool: every cell's ColdStart clears and
// re-warms the one shared cache, so the warm half must be forced serial —
// asked to parallelize, the maps must still reproduce bit for bit.
TEST(RunWarmColdSweepTest, SharedPoolPageSetPolicyIsReproducible) {
  ProcEnv env;
  Executor executor(env.db());
  ParameterSpace space = SmallSpace();
  WarmupPolicy policy = WarmupPolicy::FractionResident(0.3);

  auto run_once = [&]() {
    SharedBufferPool shared(env.ctx()->pool->capacity_pages());
    SweepOptions opts;
    opts.num_threads = 4;
    opts.shared_pool = &shared;
    return RunWarmColdSweep(env.ctx(), executor, StudyPlans(), space, policy,
                            opts)
        .ValueOrDie();
  };
  auto first = run_once();
  auto second = run_once();
  ExpectMapsBitIdentical(first.warm, second.warm);
  ExpectMapsBitIdentical(first.cold, second.cold);
}

// The §3.2 cross-query reuse scenario: one shared cache carried across the
// whole sweep. Under the serial fallback the access order is fixed, so the
// map must be deterministic run-to-run.
TEST(SweepStudyPlansTest, SharedPoolSerialSweepIsDeterministic) {
  ProcEnv env;
  Executor executor(env.db());
  ParameterSpace space = SmallSpace();

  auto run_once = [&]() {
    SharedBufferPool shared(env.ctx()->pool->capacity_pages());
    SweepOptions opts;
    opts.num_threads = 1;
    opts.shared_pool = &shared;
    env.ctx()->warmup = WarmupPolicy::PriorRun();
    auto map =
        SweepStudyPlans(env.ctx(), executor, StudyPlans(), space, opts)
            .ValueOrDie();
    env.ctx()->warmup = WarmupPolicy::Cold();
    return map;
  };

  auto first = run_once();
  auto second = run_once();
  ExpectMapsBitIdentical(first, second);

  // Reuse actually happened: some later cell hit pages a prior cell read.
  uint64_t hits = 0;
  for (size_t plan = 0; plan < first.num_plans(); ++plan) {
    for (size_t pt = 0; pt < space.num_points(); ++pt) {
      hits += first.At(plan, pt).io.buffer_hits;
    }
  }
  EXPECT_GT(hits, 0u);
}

TEST(DiffMapsTest, SubtractsColdFromWarm) {
  ParameterSpace space = ParameterSpace::OneD(Axis::Selectivity("a", -1, 0));
  RobustnessMap warm(space, {"p"});
  RobustnessMap cold(space, {"p"});
  for (size_t pt = 0; pt < space.num_points(); ++pt) {
    Measurement w, c;
    w.output_rows = c.output_rows = 10 * (pt + 1);
    c.seconds = 2.0;
    w.seconds = 0.5;
    warm.Set(0, pt, w);
    cold.Set(0, pt, c);
  }
  auto delta = DiffMaps(warm, cold).ValueOrDie();
  for (size_t pt = 0; pt < space.num_points(); ++pt) {
    EXPECT_DOUBLE_EQ(delta.At(0, pt).seconds, -1.5);
  }
}

TEST(DiffMapsTest, RejectsMismatchedShapesAndCardinalities) {
  ParameterSpace space = ParameterSpace::OneD(Axis::Selectivity("a", -1, 0));
  ParameterSpace other = ParameterSpace::OneD(Axis::Selectivity("a", -2, 0));
  RobustnessMap a(space, {"p"});
  RobustnessMap b(other, {"p"});
  EXPECT_TRUE(DiffMaps(a, b).status().IsInvalidArgument());

  // Same point count but different grid values: cells would be subtracted
  // across different run-time conditions — also an error.
  ParameterSpace shifted =
      ParameterSpace::OneD(Axis::Selectivity("a", -2, -1));
  RobustnessMap s(shifted, {"p"});
  ASSERT_EQ(s.space().num_points(), a.space().num_points());
  EXPECT_TRUE(DiffMaps(a, s).status().IsInvalidArgument());

  RobustnessMap c(space, {"p"});
  Measurement m;
  m.output_rows = 10;
  a.Set(0, 0, m);
  m.output_rows = 11;  // caching must never change a result
  c.Set(0, 0, m);
  EXPECT_TRUE(DiffMaps(a, c).status().IsInternal());
}

}  // namespace
}  // namespace robustmap
