#include "core/sweep.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "testing/map_expect.h"
#include "testing/test_env.h"

namespace robustmap {
namespace {

using ::robustmap::testing::ExpectMapsBitIdentical;
using ::robustmap::testing::ProcEnv;

// Plans chosen to cover every concurrency hazard: composite-index group
// synthesis (mdam, cover), spill-extent allocation (hash join at tiny
// memory), sorted fetch, and plain scans.
std::vector<PlanKind> StressPlans() {
  return {PlanKind::kTableScan,   PlanKind::kIndexAImproved,
          PlanKind::kMergeJoinAB, PlanKind::kHashJoinAB,
          PlanKind::kMdamAB,      PlanKind::kCoverABBitmapFetch};
}

ParameterSpace StressSpace() {
  return ParameterSpace::TwoD(Axis::Selectivity("a", -6, 0),
                              Axis::Selectivity("b", -6, 0));
}

TEST(ParallelRunSweepTest, StudySweepBitIdenticalAcrossThreadCounts) {
  ProcEnv env;
  Executor executor(env.db());
  // Tiny budgets force hash builds to spill, exercising mid-run temp-extent
  // allocation on each worker's private device.
  env.ctx()->sort_memory_bytes = 4096;
  env.ctx()->hash_memory_bytes = 4096;
  ParameterSpace space = StressSpace();

  SweepOptions serial;
  serial.num_threads = 1;
  auto reference =
      SweepStudyPlans(env.ctx(), executor, StressPlans(), space, serial)
          .ValueOrDie();

  for (unsigned threads : {1u, 4u, 8u}) {
    SweepOptions opts;
    opts.num_threads = threads;
    RunContextFactory factory(*env.ctx());
    int64_t domain = executor.db().domain;
    auto parallel =
        ParallelRunSweep(
            space, reference.plan_labels(), factory,
            [&](RunContext* ctx, size_t plan, double sx, double sy) {
              QuerySpec q = MakeStudyQuery(sx, sy, domain);
              return executor.Run(ctx, StressPlans()[plan], q);
            },
            opts)
            .ValueOrDie();
    SCOPED_TRACE(std::to_string(threads) + " threads");
    ExpectMapsBitIdentical(reference, parallel);
  }
}

TEST(ParallelRunSweepTest, SweepStudyPlansParallelPathMatchesSerial) {
  ProcEnv env;
  Executor executor(env.db());
  ParameterSpace space = StressSpace();

  SweepOptions serial;
  serial.num_threads = 1;
  auto reference =
      SweepStudyPlans(env.ctx(), executor, StressPlans(), space, serial)
          .ValueOrDie();

  SweepOptions parallel;
  parallel.num_threads = 8;
  auto map =
      SweepStudyPlans(env.ctx(), executor, StressPlans(), space, parallel)
          .ValueOrDie();
  ExpectMapsBitIdentical(reference, map);
}

TEST(ParallelRunSweepTest, ReportsFirstErrorInSerialOrder) {
  ProcEnv env;
  ParameterSpace space = StressSpace();
  RunContextFactory factory(*env.ctx());

  // Plans 0 and 1 succeed everywhere; plans 2 and 3 fail everywhere with
  // distinct messages. Whatever the scheduling, the reported error must be
  // the one a serial plan-major sweep would hit first: plan 2's.
  SweepOptions opts;
  opts.num_threads = 8;
  auto result = ParallelRunSweep(
      space, {"p0", "p1", "p2", "p3"}, factory,
      [&](RunContext*, size_t plan, double, double) -> Result<Measurement> {
        if (plan >= 2) {
          return Status::Internal("boom in plan " + std::to_string(plan));
        }
        Measurement m;
        m.seconds = static_cast<double>(plan + 1);
        return m;
      },
      opts);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInternal());
  EXPECT_EQ(result.status().message(), "boom in plan 2");
}

TEST(ParallelRunSweepTest, PropagatesMissingIndexError) {
  ProcEnv env;
  StudyDb db = env.db();
  db.idx_ab = nullptr;  // kMdamAB requires idx(a,b)
  Executor executor(db);
  ParameterSpace space = StressSpace();

  SweepOptions opts;
  opts.num_threads = 4;
  auto result = SweepStudyPlans(env.ctx(), executor,
                                {PlanKind::kTableScan, PlanKind::kMdamAB},
                                space, opts);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(ParallelRunSweepTest, OneDSpacePassesNegativeY) {
  ProcEnv env;
  ParameterSpace space = ParameterSpace::OneD(Axis::Selectivity("a", -3, 0));
  RunContextFactory factory(*env.ctx());
  SweepOptions opts;
  opts.num_threads = 2;
  auto map = ParallelRunSweep(
                 space, {"p"}, factory,
                 [&](RunContext*, size_t, double, double y) {
                   EXPECT_EQ(y, -1.0);
                   Measurement m;
                   m.seconds = 1.0;
                   return Result<Measurement>(m);
                 },
                 opts)
                 .ValueOrDie();
  EXPECT_EQ(map.space().num_points(), 4u);
}

}  // namespace
}  // namespace robustmap
