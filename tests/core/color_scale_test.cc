#include "core/color_scale.h"

#include <gtest/gtest.h>

namespace robustmap {
namespace {

TEST(ColorScaleTest, AbsoluteBucketsAreDecades) {
  ColorScale scale = ColorScale::AbsoluteSeconds();
  EXPECT_EQ(scale.num_buckets(), 8u);
  EXPECT_EQ(scale.BucketOf(0.0001), 0);
  EXPECT_EQ(scale.BucketOf(0.005), 1);
  EXPECT_EQ(scale.BucketOf(0.05), 2);
  EXPECT_EQ(scale.BucketOf(0.5), 3);
  EXPECT_EQ(scale.BucketOf(5), 4);
  EXPECT_EQ(scale.BucketOf(50), 5);
  EXPECT_EQ(scale.BucketOf(500), 6);
  EXPECT_EQ(scale.BucketOf(5000), 7);
}

TEST(ColorScaleTest, BucketBoundariesInclusive) {
  ColorScale scale = ColorScale::AbsoluteSeconds();
  EXPECT_EQ(scale.BucketOf(1e-3), 0);   // boundary belongs to lower bucket
  EXPECT_EQ(scale.BucketOf(1.0001e-3), 1);
}

TEST(ColorScaleTest, RelativeBuckets) {
  ColorScale scale = ColorScale::RelativeFactor();
  EXPECT_EQ(scale.num_buckets(), 7u);
  EXPECT_EQ(scale.BucketOf(1.0), 0);       // optimal
  EXPECT_EQ(scale.BucketOf(2.0), 1);
  EXPECT_EQ(scale.BucketOf(50), 2);
  EXPECT_EQ(scale.BucketOf(101000), 6);    // the paper's worst factor
}

TEST(ColorScaleTest, GreenToBlackRamp) {
  ColorScale scale = ColorScale::AbsoluteSeconds();
  Rgb first = scale.bucket_color(0);
  Rgb last = scale.bucket_color(scale.num_buckets() - 1);
  EXPECT_GT(first.g, first.r);  // green end
  EXPECT_EQ(last.r, 0);         // black end
  EXPECT_EQ(last.g, 0);
}

TEST(ColorScaleTest, LabelsMatchPaperLegend) {
  ColorScale scale = ColorScale::AbsoluteSeconds();
  EXPECT_EQ(scale.bucket_label(1), "0.001-0.01 seconds");
  EXPECT_EQ(scale.bucket_label(6), "100-1000 seconds");
  ColorScale rel = ColorScale::RelativeFactor();
  EXPECT_EQ(rel.bucket_label(0), "Factor 1");
  EXPECT_EQ(rel.bucket_label(5), "Factor 10,000-100,000");
}

TEST(ColorScaleTest, CountsScale) {
  ColorScale scale = ColorScale::Counts(5);
  EXPECT_EQ(scale.num_buckets(), 5u);
  EXPECT_EQ(scale.BucketOf(1), 0);
  EXPECT_EQ(scale.BucketOf(3), 2);
  EXPECT_EQ(scale.BucketOf(99), 4);
  EXPECT_EQ(scale.GlyphOf(2), '2');
}

TEST(ColorScaleTest, DivergingSecondsBucketsAreSymmetricAroundZero) {
  ColorScale scale = ColorScale::DivergingSeconds();
  EXPECT_EQ(scale.num_buckets(), 11u);

  // Center bucket: no meaningful change.
  EXPECT_EQ(scale.BucketOf(0.0), 5);
  EXPECT_EQ(scale.BucketOf(0.009), 5);
  EXPECT_EQ(scale.BucketOf(-0.009), 5);
  EXPECT_EQ(scale.bucket_label(5), "within 0.01 s");

  // One order of magnitude per step on each side.
  EXPECT_EQ(scale.BucketOf(-0.05), 4);
  EXPECT_EQ(scale.BucketOf(-0.5), 3);
  EXPECT_EQ(scale.BucketOf(-5.0), 2);
  EXPECT_EQ(scale.BucketOf(-50.0), 1);
  EXPECT_EQ(scale.BucketOf(-500.0), 0);
  EXPECT_EQ(scale.BucketOf(0.05), 6);
  EXPECT_EQ(scale.BucketOf(0.5), 7);
  EXPECT_EQ(scale.BucketOf(5.0), 8);
  EXPECT_EQ(scale.BucketOf(50.0), 9);
  EXPECT_EQ(scale.BucketOf(500.0), 10);

  // Blue where warm helps, white center, red where warm hurts.
  EXPECT_GT(scale.bucket_color(0).b, scale.bucket_color(0).r);
  EXPECT_EQ(scale.bucket_color(5).r, scale.bucket_color(5).b);
  EXPECT_GT(scale.bucket_color(10).r, scale.bucket_color(10).b);
  EXPECT_EQ(scale.GlyphOf(0.0), ' ');
}

TEST(ColorScaleTest, AnsiCellContainsEscape) {
  ColorScale scale = ColorScale::AbsoluteSeconds();
  std::string cell = scale.AnsiCellOf(5.0);
  EXPECT_NE(cell.find("\x1b[48;2;"), std::string::npos);
  EXPECT_NE(cell.find("\x1b[0m"), std::string::npos);
}

}  // namespace
}  // namespace robustmap
