#include "core/sweep_cost.h"

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <string>
#include <vector>

#include "core/map_io.h"

namespace robustmap {
namespace {

ParameterSpace Grid(int x_min_log2, int y_min_log2) {
  return ParameterSpace::TwoD(Axis::Selectivity("a", x_min_log2, 0),
                              Axis::Selectivity("b", y_min_log2, 0));
}

TileSpec Rect(size_t x0, size_t x1, size_t y0, size_t y1) {
  TileSpec t;
  t.x_begin = x0;
  t.x_end = x1;
  t.y_begin = y0;
  t.y_end = y1;
  return t;
}

TEST(CostModelKindTest, RoundTripsNames) {
  for (CostModelKind kind :
       {CostModelKind::kUniform, CostModelKind::kAnalytic,
        CostModelKind::kMeasured}) {
    auto back = CostModelKindFromString(CostModelKindName(kind));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), kind);
  }
  auto bad = CostModelKindFromString("psychic");
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

TEST(CellCostModelTest, UniformWeighsEveryCellEqually) {
  ParameterSpace space = Grid(-4, -4);
  auto model = CellCostModel::Uniform(space).ValueOrDie();
  for (size_t yi = 0; yi < space.y_size(); ++yi) {
    for (size_t xi = 0; xi < space.x_size(); ++xi) {
      EXPECT_DOUBLE_EQ(model.CellCost(xi, yi), 1.0);
    }
  }
  EXPECT_DOUBLE_EQ(model.TotalCost(),
                   static_cast<double>(space.num_points()));
}

TEST(CellCostModelTest, AnalyticGrowsWithSelectivity) {
  ParameterSpace space = Grid(-6, -6);
  auto model = CellCostModel::Analytic(space).ValueOrDie();
  // Strictly increasing along each axis, positive everywhere, and the
  // expensive corner dominates the cheap one by far more than the grid is
  // wide — the skew the weighted planner exists to absorb.
  for (size_t yi = 0; yi < space.y_size(); ++yi) {
    for (size_t xi = 0; xi < space.x_size(); ++xi) {
      EXPECT_GT(model.CellCost(xi, yi), 0.0);
      if (xi > 0) {
        EXPECT_GT(model.CellCost(xi, yi), model.CellCost(xi - 1, yi));
      }
      if (yi > 0) {
        EXPECT_GT(model.CellCost(xi, yi), model.CellCost(xi, yi - 1));
      }
    }
  }
  EXPECT_GT(model.CellCost(6, 6), 8 * model.CellCost(0, 0));
}

TEST(CellCostModelTest, AnalyticOneDIsXOnly) {
  ParameterSpace line = ParameterSpace::OneD(Axis::Selectivity("a", -5, 0));
  auto model = CellCostModel::Analytic(line).ValueOrDie();
  for (size_t xi = 1; xi < line.x_size(); ++xi) {
    EXPECT_GT(model.CellCost(xi, 0), model.CellCost(xi - 1, 0));
  }
}

TEST(CellCostModelTest, TileCostIsAdditiveOverAPartition) {
  ParameterSpace space = Grid(-5, -4);
  auto model = CellCostModel::Analytic(space).ValueOrDie();
  auto tiles = ShardPlanner::Partition(space, 7).ValueOrDie();
  double sum = 0;
  for (const TileSpec& t : tiles) sum += model.TileCost(t);
  EXPECT_NEAR(sum, model.TotalCost(), 1e-9 * model.TotalCost());
}

TEST(CellCostModelTest, RejectsEmptyGrid) {
  // A default-constructed space is the 0-point grid; the OneD/TwoD
  // factories assert non-empty axes in Debug builds, so the Status-based
  // rejection must be reachable without them.
  ParameterSpace empty;
  EXPECT_TRUE(
      CellCostModel::Uniform(empty).status().IsInvalidArgument());
  EXPECT_TRUE(
      CellCostModel::Analytic(empty).status().IsInvalidArgument());
}

TEST(CellCostModelTest, MeasuredOverridesCoveredCells) {
  ParameterSpace space = Grid(-3, -3);  // 4x4
  // Left half measured as uniformly expensive, right half unmeasured.
  std::vector<TileCostRecord> records = {
      {Rect(0, 2, 0, 4), 8.0},  // 8 cells at density 1.0 s/cell
  };
  auto model = CellCostModel::FromMeasuredTiles(space, records).ValueOrDie();
  for (size_t yi = 0; yi < 4; ++yi) {
    EXPECT_DOUBLE_EQ(model.CellCost(0, yi), 1.0);
    EXPECT_DOUBLE_EQ(model.CellCost(1, yi), 1.0);
  }
  // Unmeasured cells follow the analytic prior's *shape* (rising in x and
  // y) after rescaling — not the measured flat density.
  EXPECT_GT(model.CellCost(3, 3), model.CellCost(2, 0));
  EXPECT_GT(model.CellCost(2, 0), 0.0);
}

TEST(CellCostModelTest, MeasuredLaterRecordWinsOnOverlap) {
  ParameterSpace space = Grid(-3, -3);
  std::vector<TileCostRecord> records = {
      {Rect(0, 4, 0, 4), 16.0},  // density 1.0 everywhere
      {Rect(0, 4, 0, 2), 80.0},  // fresher: bottom half at density 10.0
  };
  auto model = CellCostModel::FromMeasuredTiles(space, records).ValueOrDie();
  EXPECT_DOUBLE_EQ(model.CellCost(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(model.CellCost(0, 3), 1.0);
}

TEST(CellCostModelTest, MeasuredWithNoRecordsIsTheAnalyticPrior) {
  ParameterSpace space = Grid(-4, -4);
  auto analytic = CellCostModel::Analytic(space).ValueOrDie();
  auto measured = CellCostModel::FromMeasuredTiles(space, {}).ValueOrDie();
  for (size_t yi = 0; yi < space.y_size(); ++yi) {
    for (size_t xi = 0; xi < space.x_size(); ++xi) {
      EXPECT_DOUBLE_EQ(measured.CellCost(xi, yi), analytic.CellCost(xi, yi));
    }
  }
  // Zero-duration records carry no signal either.
  auto zeros = CellCostModel::FromMeasuredTiles(
                   space, {{Rect(0, 2, 0, 2), 0.0}})
                   .ValueOrDie();
  EXPECT_DOUBLE_EQ(zeros.TotalCost(), analytic.TotalCost());
}

TEST(CellCostModelTest, MeasuredRejectsOutOfGridRecords) {
  ParameterSpace space = Grid(-3, -3);
  auto r = CellCostModel::FromMeasuredTiles(space, {{Rect(0, 9, 0, 1), 1.0}});
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(MeasuredCostModelFromDirTest, ReadsWallTimesAndSkipsNoise) {
  ParameterSpace space = Grid(-3, -3);
  const std::string dir =
      ::testing::TempDir() + "/sweep_cost_dir_" + std::to_string(::getpid());
  ASSERT_EQ(::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST, true);

  // A timed tile over the bottom half...
  TileSpec spec = Rect(0, 4, 0, 2);
  spec.shard_id = 0;
  ParameterSpace sub = SliceSpace(space, spec).ValueOrDie();
  RobustnessMap map(sub, {"p"});
  for (size_t pt = 0; pt < sub.num_points(); ++pt) {
    Measurement m;
    m.seconds = 1;
    map.Set(0, pt, m);
  }
  ASSERT_TRUE(WriteMapTileFile(dir + "/tile_0000.rmt",
                               MapTile{spec, space, map, 16.0})
                  .ok());
  // ...an untimed merged artifact (wall 0: must carry no signal)...
  TileSpec full = Rect(0, 4, 0, 4);
  RobustnessMap full_map(space, {"p"});
  for (size_t pt = 0; pt < space.num_points(); ++pt) {
    Measurement m;
    m.seconds = 1;
    full_map.Set(0, pt, m);
  }
  ASSERT_TRUE(WriteMapTileFile(dir + "/merged.rmt",
                               MapTile{full, space, full_map, 0.0})
                  .ok());
  // ...and a file that is not a tile at all.
  {
    std::FILE* junk = std::fopen((dir + "/junk.rmt").c_str(), "w");
    std::fputs("not a tile", junk);
    std::fclose(junk);
  }

  auto model = MeasuredCostModelFromDir(dir, space).ValueOrDie();
  // Bottom half: measured density 16 s / 8 cells = 2 s per cell.
  EXPECT_DOUBLE_EQ(model.CellCost(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(model.CellCost(3, 1), 2.0);
  // Top half: analytic fallback, still rising toward the corner.
  EXPECT_GT(model.CellCost(3, 3), model.CellCost(0, 2));

  // A directory that does not exist degrades to the analytic prior.
  auto fresh =
      MeasuredCostModelFromDir(dir + "/missing", space).ValueOrDie();
  auto analytic = CellCostModel::Analytic(space).ValueOrDie();
  EXPECT_DOUBLE_EQ(fresh.TotalCost(), analytic.TotalCost());
}

TEST(SortTilesHeaviestFirstTest, OrdersByDescendingCost) {
  ParameterSpace space = Grid(-6, -6);
  auto model = CellCostModel::Analytic(space).ValueOrDie();
  auto tiles = ShardPlanner::Partition(space, 7).ValueOrDie();
  SortTilesHeaviestFirst(&tiles, model);
  for (size_t i = 1; i < tiles.size(); ++i) {
    EXPECT_GE(model.TileCost(tiles[i - 1]), model.TileCost(tiles[i]));
  }
}

}  // namespace
}  // namespace robustmap
