#include "catalog/catalog.h"

#include <gtest/gtest.h>

#include "index/procedural_index.h"
#include "storage/procedural_table.h"

namespace robustmap {
namespace {

class CatalogTest : public ::testing::Test {
 protected:
  CatalogTest() : device_(DiskParameters{}, &clock_) {
    ProceduralTableOptions opts;
    opts.row_bits = 8;
    opts.value_bits = 4;
    table_ = std::shared_ptr<ProceduralTable>(
        std::move(ProceduralTable::Create(&device_, opts)).ValueOrDie());
    ProceduralIndexOptions iopts;
    iopts.key_columns = {0};
    index_ = std::shared_ptr<ProceduralIndex>(
        std::move(ProceduralIndex::Create(&device_, table_.get(), iopts))
            .ValueOrDie());
  }
  VirtualClock clock_;
  SimDevice device_;
  std::shared_ptr<ProceduralTable> table_;
  std::shared_ptr<ProceduralIndex> index_;
};

TEST_F(CatalogTest, AddAndLookupTable) {
  Catalog catalog;
  ASSERT_TRUE(
      catalog.AddTable({"t", table_, Schema({{"a", 16}, {"b", 16}})}).ok());
  auto info = catalog.GetTable("t");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value()->name, "t");
  EXPECT_EQ(info.value()->schema.num_columns(), 2u);
  EXPECT_TRUE(catalog.GetTable("nope").status().IsNotFound());
}

TEST_F(CatalogTest, AddIndexRequiresTable) {
  Catalog catalog;
  EXPECT_TRUE(catalog.AddIndex({"i", "missing", index_}).IsNotFound());
  ASSERT_TRUE(catalog.AddTable({"t", table_, Schema({{"a", 16}})}).ok());
  EXPECT_TRUE(catalog.AddIndex({"i", "t", index_}).ok());
  EXPECT_TRUE(catalog.GetIndex("i").ok());
}

TEST_F(CatalogTest, RejectsDuplicatesAndNulls) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable({"t", table_, Schema({{"a", 16}})}).ok());
  EXPECT_TRUE(
      catalog.AddTable({"t", table_, Schema({{"a", 16}})}).IsInvalidArgument());
  EXPECT_TRUE(
      catalog.AddTable({"u", nullptr, Schema{}}).IsInvalidArgument());
  ASSERT_TRUE(catalog.AddIndex({"i", "t", index_}).ok());
  EXPECT_TRUE(catalog.AddIndex({"i", "t", index_}).IsInvalidArgument());
  EXPECT_TRUE(catalog.AddIndex({"j", "t", nullptr}).IsInvalidArgument());
}

TEST_F(CatalogTest, IndexesOnFiltersByTable) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable({"t", table_, Schema({{"a", 16}})}).ok());
  ASSERT_TRUE(catalog.AddTable({"u", table_, Schema({{"a", 16}})}).ok());
  ASSERT_TRUE(catalog.AddIndex({"i1", "t", index_}).ok());
  ASSERT_TRUE(catalog.AddIndex({"i2", "t", index_}).ok());
  ASSERT_TRUE(catalog.AddIndex({"i3", "u", index_}).ok());
  EXPECT_EQ(catalog.IndexesOn("t").size(), 2u);
  EXPECT_EQ(catalog.IndexesOn("u").size(), 1u);
  EXPECT_EQ(catalog.IndexesOn("v").size(), 0u);
}

TEST(SchemaTest, ColumnIndexLookup) {
  Schema schema({{"a", 10}, {"b", 20}});
  EXPECT_EQ(schema.ColumnIndex("a").ValueOrDie(), 0u);
  EXPECT_EQ(schema.ColumnIndex("b").ValueOrDie(), 1u);
  EXPECT_TRUE(schema.ColumnIndex("c").status().IsNotFound());
  EXPECT_EQ(schema.column(1).domain, 20);
}

}  // namespace
}  // namespace robustmap
