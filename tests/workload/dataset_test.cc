#include "workload/dataset.h"

#include <gtest/gtest.h>

namespace robustmap {
namespace {

StudyOptions SmallOptions() {
  StudyOptions opts;
  opts.row_bits = 12;
  opts.value_bits = 6;
  return opts;
}

TEST(StudyEnvironmentTest, CreatesAllStorageObjects) {
  auto env = StudyEnvironment::Create(SmallOptions()).ValueOrDie();
  EXPECT_EQ(env->table().num_rows(), 4096u);
  EXPECT_NE(env->db().idx_a, nullptr);
  EXPECT_NE(env->db().idx_b, nullptr);
  EXPECT_NE(env->db().idx_ab, nullptr);
  EXPECT_NE(env->db().idx_ba, nullptr);
  EXPECT_EQ(env->domain(), 64);
  EXPECT_EQ(env->catalog().num_tables(), 1u);
  EXPECT_EQ(env->catalog().num_indexes(), 4u);
}

TEST(StudyEnvironmentTest, CompositeIndexesOptional) {
  StudyOptions opts = SmallOptions();
  opts.build_composite_indexes = false;
  auto env = StudyEnvironment::Create(opts).ValueOrDie();
  EXPECT_EQ(env->db().idx_ab, nullptr);
  EXPECT_EQ(env->catalog().num_indexes(), 2u);
}

TEST(StudyEnvironmentTest, AutoMemoryDefaults) {
  auto env = StudyEnvironment::Create(SmallOptions()).ValueOrDie();
  EXPECT_EQ(env->ctx()->sort_memory_bytes,
            std::max<uint64_t>(4096, env->table().num_rows() / 4));
  EXPECT_EQ(env->ctx()->hash_memory_bytes, env->table().num_rows());
  EXPECT_GE(env->ctx()->pool->capacity_pages(), 256u);
}

TEST(StudyEnvironmentTest, ExplicitMemoryOverrides) {
  StudyOptions opts = SmallOptions();
  opts.sort_memory_bytes = 12345;
  opts.hash_memory_bytes = 999;
  opts.pool_pages = 7;
  auto env = StudyEnvironment::Create(opts).ValueOrDie();
  EXPECT_EQ(env->ctx()->sort_memory_bytes, 12345u);
  EXPECT_EQ(env->ctx()->hash_memory_bytes, 999u);
  EXPECT_EQ(env->ctx()->pool->capacity_pages(), 7u);
}

TEST(StudyEnvironmentTest, MakeQueryCalibrates) {
  auto env = StudyEnvironment::Create(SmallOptions()).ValueOrDie();
  QuerySpec q = env->MakeQuery(0.25, -1);
  EXPECT_TRUE(q.pred_a.active);
  EXPECT_FALSE(q.pred_b.active);
  EXPECT_EQ(q.pred_a.hi, 15);
  EXPECT_EQ(q.domain, 64);
  // The calibrated selectivity is exact for the procedural data: count rows.
  uint64_t count = 0;
  for (Rid rid = 0; rid < env->table().num_rows(); ++rid) {
    if (env->table().ValueAt(rid, 0) <= q.pred_a.hi) ++count;
  }
  EXPECT_EQ(count, env->table().num_rows() / 4);
}

TEST(StudyEnvironmentTest, RejectsBadOptions) {
  StudyOptions opts = SmallOptions();
  opts.row_bits = 11;  // odd
  EXPECT_FALSE(StudyEnvironment::Create(opts).ok());
}

}  // namespace
}  // namespace robustmap
