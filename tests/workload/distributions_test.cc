#include "workload/distributions.h"

#include <gtest/gtest.h>

#include <map>

namespace robustmap {
namespace {

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution zipf(100, 0.99);
  double sum = 0;
  for (uint64_t v = 0; v < 100; ++v) sum += zipf.Pmf(v);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  ZipfDistribution zipf(10, 0.0);
  for (uint64_t v = 0; v < 10; ++v) {
    EXPECT_NEAR(zipf.Pmf(v), 0.1, 1e-9);
  }
}

TEST(ZipfTest, SkewFavorsSmallValues) {
  ZipfDistribution zipf(1000, 1.2);
  EXPECT_GT(zipf.Pmf(0), zipf.Pmf(1));
  EXPECT_GT(zipf.Pmf(1), zipf.Pmf(100));
  EXPECT_GT(zipf.Pmf(0), 0.1);
}

TEST(ZipfTest, SamplesFollowPmf) {
  ZipfDistribution zipf(50, 1.0);
  Rng rng(9);
  std::map<uint64_t, int> counts;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) ++counts[zipf.Sample(&rng)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / kSamples, zipf.Pmf(0), 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / kSamples, zipf.Pmf(1), 0.01);
}

class HeapDatasetTest : public ::testing::Test {
 protected:
  HeapDatasetTest()
      : device_(DiskParameters{}, &clock_), pool_(&device_, 1024) {
    ctx_.clock = &clock_;
    ctx_.device = &device_;
    ctx_.pool = &pool_;
  }
  VirtualClock clock_;
  SimDevice device_;
  LruBufferPool pool_;
  RunContext ctx_;
};

TEST_F(HeapDatasetTest, BuildsConsistentIndexes) {
  HeapDatasetOptions opts;
  opts.rows = 2000;
  opts.domain = 128;
  auto ds = BuildHeapStudyDataset(&ctx_, &device_, opts).ValueOrDie();
  EXPECT_EQ(ds.table->num_rows(), 2000u);
  EXPECT_EQ(ds.idx_a->num_entries(), 2000u);
  EXPECT_EQ(ds.idx_ab->num_entries(), 2000u);
  EXPECT_TRUE(ds.idx_a->CheckInvariants().ok());
  EXPECT_TRUE(ds.idx_ab->CheckInvariants().ok());

  // Index entries agree with table contents.
  auto cursor = ds.idx_a->SeekFirst(&ctx_);
  size_t checked = 0;
  while (cursor->Valid() && checked < 200) {
    const IndexEntry& e = cursor->entry();
    EXPECT_EQ(e.key0, ds.table->RawValue(e.rid, 0));
    cursor->Next(&ctx_);
    ++checked;
  }
}

TEST_F(HeapDatasetTest, CorrelationRaisesConjunctiveCounts) {
  HeapDatasetOptions indep;
  indep.rows = 20000;
  indep.domain = 64;
  indep.correlation = 0.0;
  HeapDatasetOptions corr = indep;
  corr.correlation = 0.9;

  auto count_equal = [&](const HeapStudyDataset& ds) {
    uint64_t n = 0;
    for (Rid rid = 0; rid < ds.table->num_rows(); ++rid) {
      if (ds.table->RawValue(rid, 0) == ds.table->RawValue(rid, 1)) ++n;
    }
    return n;
  };
  auto ds_indep = BuildHeapStudyDataset(&ctx_, &device_, indep).ValueOrDie();
  auto ds_corr = BuildHeapStudyDataset(&ctx_, &device_, corr).ValueOrDie();
  EXPECT_GT(count_equal(ds_corr), count_equal(ds_indep) * 10);
}

TEST_F(HeapDatasetTest, ZipfSkewsColumnValues) {
  HeapDatasetOptions opts;
  opts.rows = 20000;
  opts.domain = 256;
  opts.zipf_theta = 1.1;
  opts.build_composite_indexes = false;
  auto ds = BuildHeapStudyDataset(&ctx_, &device_, opts).ValueOrDie();
  uint64_t zeros = 0;
  for (Rid rid = 0; rid < ds.table->num_rows(); ++rid) {
    if (ds.table->RawValue(rid, 0) == 0) ++zeros;
  }
  // Uniform would give ~78 hits; zipf(1.1) gives thousands.
  EXPECT_GT(zeros, 1000u);
}

TEST_F(HeapDatasetTest, RejectsBadDomain) {
  HeapDatasetOptions opts;
  opts.domain = 0;
  EXPECT_FALSE(BuildHeapStudyDataset(&ctx_, &device_, opts).ok());
}

}  // namespace
}  // namespace robustmap
