#include "io/disk_model.h"

#include <gtest/gtest.h>

namespace robustmap {
namespace {

TEST(DiskModelTest, ClassifiesPatterns) {
  DiskModel model{DiskParameters{}};
  EXPECT_EQ(model.Classify(-1, 0), DiskModel::Pattern::kRandom);
  EXPECT_EQ(model.Classify(9, 10), DiskModel::Pattern::kSequential);
  EXPECT_EQ(model.Classify(9, 12), DiskModel::Pattern::kSkip);
  EXPECT_EQ(model.Classify(9, 9 + 1 + 4096), DiskModel::Pattern::kSkip);
  EXPECT_EQ(model.Classify(9, 9 + 2 + 4096), DiskModel::Pattern::kRandom);
  // Backwards movement is a random access.
  EXPECT_EQ(model.Classify(9, 3), DiskModel::Pattern::kRandom);
}

TEST(DiskModelTest, SequentialIsTransferOnly) {
  DiskParameters p;
  DiskModel model{p};
  EXPECT_DOUBLE_EQ(model.ReadCostSeconds(4, 5), p.TransferSeconds());
}

TEST(DiskModelTest, RandomIncludesSeek) {
  DiskParameters p;
  DiskModel model{p};
  EXPECT_DOUBLE_EQ(model.ReadCostSeconds(-1, 100),
                   p.random_access_seconds + p.TransferSeconds());
}

TEST(DiskModelTest, SkipNeverExceedsRandom) {
  DiskParameters p;
  DiskModel model{p};
  double random = model.ReadCostSeconds(-1, 0);
  for (int64_t gap = 1; gap <= 4096; gap *= 2) {
    EXPECT_LE(model.ReadCostSeconds(0, 1 + gap), random);
  }
}

TEST(DiskModelTest, SmallGapsUseReadThrough) {
  DiskParameters p;
  DiskModel model{p};
  // Gap 1: read-through (1 extra transfer) is cheaper than a settle.
  double cost = model.ReadCostSeconds(0, 2);
  EXPECT_DOUBLE_EQ(cost, 2 * p.TransferSeconds());
}

TEST(DiskModelTest, SkipCostMonotoneInGap) {
  DiskParameters p;
  DiskModel model{p};
  double prev = 0;
  for (int64_t gap = 0; gap <= 4096; ++gap) {
    double cost = model.ReadCostSeconds(0, 1 + gap);
    ASSERT_GE(cost, prev - 1e-15) << "gap " << gap;
    prev = cost;
  }
}

TEST(DiskModelTest, TransferMatchesBandwidth) {
  DiskParameters p;
  p.page_size_bytes = 8192;
  p.sequential_bandwidth_bytes_per_sec = 8192.0 * 1000;  // 1000 pages/s
  EXPECT_NEAR(p.TransferSeconds(), 1e-3, 1e-12);
}

}  // namespace
}  // namespace robustmap
