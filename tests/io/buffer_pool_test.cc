#include "io/buffer_pool.h"

#include <gtest/gtest.h>

namespace robustmap {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  BufferPoolTest() : device_(DiskParameters{}, &clock_) {
    device_.AllocateExtent(1000);
  }
  VirtualClock clock_;
  SimDevice device_;
};

TEST_F(BufferPoolTest, MissThenHit) {
  BufferPool pool(&device_, 10);
  EXPECT_FALSE(pool.Access(5));
  EXPECT_TRUE(pool.Access(5));
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(device_.stats().buffer_hits, 1u);
}

TEST_F(BufferPoolTest, HitChargesNoDeviceTime) {
  BufferPool pool(&device_, 10);
  pool.Access(5);
  int64_t t = clock_.now_ns();
  pool.Access(5);
  EXPECT_EQ(clock_.now_ns(), t);
}

TEST_F(BufferPoolTest, EvictsLeastRecentlyUsed) {
  BufferPool pool(&device_, 3);
  pool.Access(1);
  pool.Access(2);
  pool.Access(3);
  pool.Access(1);      // 1 most recent; LRU order now 2,3,1
  pool.Access(4);      // evicts 2
  EXPECT_FALSE(pool.Contains(2));
  EXPECT_TRUE(pool.Contains(1));
  EXPECT_TRUE(pool.Contains(3));
  EXPECT_TRUE(pool.Contains(4));
}

TEST_F(BufferPoolTest, NonCacheableDoesNotPollute) {
  BufferPool pool(&device_, 3);
  pool.Access(1);
  pool.Access(2, /*cacheable=*/false);
  EXPECT_TRUE(pool.Contains(1));
  EXPECT_FALSE(pool.Contains(2));
  EXPECT_EQ(pool.resident_pages(), 1u);
}

TEST_F(BufferPoolTest, ClearDropsEverything) {
  BufferPool pool(&device_, 5);
  pool.Access(1);
  pool.Access(2);
  pool.Clear();
  EXPECT_EQ(pool.resident_pages(), 0u);
  EXPECT_FALSE(pool.Access(1));  // miss again
}

TEST_F(BufferPoolTest, ZeroCapacityNeverCaches) {
  BufferPool pool(&device_, 0);
  EXPECT_FALSE(pool.Access(1));
  EXPECT_FALSE(pool.Access(1));
  EXPECT_EQ(pool.hits(), 0u);
}

TEST_F(BufferPoolTest, CapacityRespected) {
  BufferPool pool(&device_, 4);
  for (uint64_t p = 0; p < 100; ++p) pool.Access(p);
  EXPECT_EQ(pool.resident_pages(), 4u);
}

}  // namespace
}  // namespace robustmap
