#include "io/buffer_pool.h"

#include <gtest/gtest.h>

namespace robustmap {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  BufferPoolTest() : device_(DiskParameters{}, &clock_) {
    device_.AllocateExtent(1000);
  }
  VirtualClock clock_;
  SimDevice device_;
};

TEST_F(BufferPoolTest, MissThenHit) {
  LruBufferPool pool(&device_, 10);
  EXPECT_FALSE(pool.Access(5));
  EXPECT_TRUE(pool.Access(5));
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(device_.stats().buffer_hits, 1u);
}

TEST_F(BufferPoolTest, HitChargesNoDeviceTime) {
  LruBufferPool pool(&device_, 10);
  pool.Access(5);
  int64_t t = clock_.now_ns();
  pool.Access(5);
  EXPECT_EQ(clock_.now_ns(), t);
}

TEST_F(BufferPoolTest, EvictsLeastRecentlyUsed) {
  LruBufferPool pool(&device_, 3);
  pool.Access(1);
  pool.Access(2);
  pool.Access(3);
  pool.Access(1);      // 1 most recent; LRU order now 2,3,1
  pool.Access(4);      // evicts 2
  EXPECT_FALSE(pool.Contains(2));
  EXPECT_TRUE(pool.Contains(1));
  EXPECT_TRUE(pool.Contains(3));
  EXPECT_TRUE(pool.Contains(4));
}

TEST_F(BufferPoolTest, NonCacheableDoesNotPollute) {
  LruBufferPool pool(&device_, 3);
  pool.Access(1);
  pool.Access(2, /*cacheable=*/false);
  EXPECT_TRUE(pool.Contains(1));
  EXPECT_FALSE(pool.Contains(2));
  EXPECT_EQ(pool.resident_pages(), 1u);
}

TEST_F(BufferPoolTest, ClearDropsEverything) {
  LruBufferPool pool(&device_, 5);
  pool.Access(1);
  pool.Access(2);
  pool.Clear();
  EXPECT_EQ(pool.resident_pages(), 0u);
  EXPECT_FALSE(pool.Access(1));  // miss again
}

// Clear() only drops residency; the hit/miss window is a separate concern
// closed by ResetStats(). (ColdStart calls both — before the split, stats
// bled across sweep cells and per-measurement hit rates were cumulative.)
TEST_F(BufferPoolTest, ClearKeepsStatsResetStatsZeroesThem) {
  LruBufferPool pool(&device_, 5);
  pool.Access(1);
  pool.Access(1);
  pool.Clear();
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
  pool.Access(2);
  pool.ResetStats();
  EXPECT_EQ(pool.hits(), 0u);
  EXPECT_EQ(pool.misses(), 0u);
  EXPECT_TRUE(pool.Contains(2));  // residency untouched by ResetStats
  EXPECT_TRUE(pool.Access(2));
  EXPECT_EQ(pool.hits(), 1u);
}

TEST_F(BufferPoolTest, ZeroCapacityNeverCaches) {
  LruBufferPool pool(&device_, 0);
  EXPECT_FALSE(pool.Access(1));
  EXPECT_FALSE(pool.Access(1));
  EXPECT_EQ(pool.hits(), 0u);
  EXPECT_EQ(pool.misses(), 2u);
  pool.Warm(1);  // warming cannot exceed capacity either
  EXPECT_EQ(pool.resident_pages(), 0u);
  EXPECT_FALSE(pool.Contains(1));
}

TEST_F(BufferPoolTest, CapacityOneKeepsOnlyTheLastPage) {
  LruBufferPool pool(&device_, 1);
  EXPECT_FALSE(pool.Access(1));
  EXPECT_TRUE(pool.Access(1));    // smallest possible pool still caches
  EXPECT_FALSE(pool.Access(2));   // evicts 1
  EXPECT_FALSE(pool.Contains(1));
  EXPECT_TRUE(pool.Contains(2));
  EXPECT_EQ(pool.resident_pages(), 1u);
  pool.Warm(3);                   // warm admission evicts the same way
  EXPECT_FALSE(pool.Contains(2));
  EXPECT_TRUE(pool.Contains(3));
}

TEST_F(BufferPoolTest, CapacityRespected) {
  LruBufferPool pool(&device_, 4);
  for (uint64_t p = 0; p < 100; ++p) pool.Access(p);
  EXPECT_EQ(pool.resident_pages(), 4u);
}

TEST_F(BufferPoolTest, WarmAdmitsWithoutChargeOrStats) {
  LruBufferPool pool(&device_, 4);
  int64_t t = clock_.now_ns();
  pool.Warm(7);
  EXPECT_EQ(clock_.now_ns(), t);  // no device charge
  EXPECT_EQ(pool.hits(), 0u);
  EXPECT_EQ(pool.misses(), 0u);
  EXPECT_TRUE(pool.Contains(7));
  EXPECT_TRUE(pool.Access(7));  // the first measured access hits
  EXPECT_EQ(pool.hits(), 1u);
}

TEST_F(BufferPoolTest, WarmRefreshesLruPosition) {
  LruBufferPool pool(&device_, 2);
  pool.Access(1);
  pool.Access(2);
  pool.Warm(1);      // 1 becomes MRU; LRU order now 2,1
  pool.Access(3);    // evicts 2
  EXPECT_TRUE(pool.Contains(1));
  EXPECT_FALSE(pool.Contains(2));
  EXPECT_TRUE(pool.Contains(3));
}

TEST_F(BufferPoolTest, EvictionRecyclesNodesInPlace) {
  LruBufferPool pool(&device_, 4);
  for (uint64_t p = 0; p < 4; ++p) pool.Access(p);
  EXPECT_EQ(pool.node_allocations(), 4u);
  // At capacity, every further admission reuses the eviction victim's
  // node: residency churns, the allocation count does not.
  for (uint64_t p = 4; p < 100; ++p) pool.Access(p);
  EXPECT_EQ(pool.node_allocations(), 4u);
  EXPECT_EQ(pool.resident_pages(), 4u);
}

TEST_F(BufferPoolTest, ClearFreesNodesToTheRecycleList) {
  LruBufferPool pool(&device_, 8);
  for (uint64_t p = 0; p < 8; ++p) pool.Access(p);
  EXPECT_EQ(pool.node_allocations(), 8u);
  pool.Clear();
  EXPECT_EQ(pool.resident_pages(), 0u);
  // A cleared pool re-admits into recycled nodes — no fresh allocations
  // until the working set outgrows everything ever allocated.
  for (uint64_t p = 100; p < 108; ++p) pool.Access(p);
  EXPECT_EQ(pool.node_allocations(), 8u);
  pool.Access(200);  // 9th distinct resident page ever: one fresh node
  EXPECT_EQ(pool.node_allocations(), 8u);  // ...recycled via eviction
}

}  // namespace
}  // namespace robustmap
