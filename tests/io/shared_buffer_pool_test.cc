#include "io/shared_buffer_pool.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "io/disk_model.h"
#include "io/sim_device.h"

namespace robustmap {
namespace {

// Two simulated machines attached to one shared cache: residency is
// common, time is private.
class SharedBufferPoolTest : public ::testing::Test {
 protected:
  SharedBufferPoolTest()
      : device_a_(DiskParameters{}, &clock_a_),
        device_b_(DiskParameters{}, &clock_b_),
        shared_(8),
        view_a_(&device_a_, &shared_),
        view_b_(&device_b_, &shared_) {
    device_a_.AllocateExtent(1000);
    device_b_.AllocateExtent(1000);
  }

  VirtualClock clock_a_, clock_b_;
  SimDevice device_a_, device_b_;
  SharedBufferPool shared_;
  SharedBufferPoolView view_a_, view_b_;
};

TEST_F(SharedBufferPoolTest, ResidencyIsSharedAcrossMachines) {
  EXPECT_FALSE(view_a_.Access(5));  // A misses and admits
  EXPECT_TRUE(view_b_.Access(5));   // B hits A's page
  EXPECT_TRUE(view_a_.Contains(5));
  EXPECT_TRUE(view_b_.Contains(5));
  EXPECT_EQ(shared_.resident_pages(), 1u);
}

TEST_F(SharedBufferPoolTest, MissChargesOnlyTheCallingMachine) {
  view_a_.Access(5);
  EXPECT_GT(clock_a_.now_ns(), 0);
  EXPECT_EQ(clock_b_.now_ns(), 0);

  int64_t a_before = clock_a_.now_ns();
  view_b_.Access(5);  // hit: no device time on either machine
  EXPECT_EQ(clock_a_.now_ns(), a_before);
  EXPECT_EQ(clock_b_.now_ns(), 0);
  EXPECT_EQ(device_b_.stats().buffer_hits, 1u);
}

TEST_F(SharedBufferPoolTest, HitMissCountersStayPerMachine) {
  view_a_.Access(5);  // A: miss
  view_b_.Access(5);  // B: hit
  view_b_.Access(6);  // B: miss
  EXPECT_EQ(view_a_.hits(), 0u);
  EXPECT_EQ(view_a_.misses(), 1u);
  EXPECT_EQ(view_b_.hits(), 1u);
  EXPECT_EQ(view_b_.misses(), 1u);
  // The pool-wide totals aggregate both machines.
  EXPECT_EQ(shared_.hits(), 1u);
  EXPECT_EQ(shared_.misses(), 2u);

  view_a_.ResetStats();  // per-machine window closes independently
  EXPECT_EQ(view_a_.misses(), 0u);
  EXPECT_EQ(view_b_.misses(), 1u);
  EXPECT_EQ(shared_.misses(), 2u);
}

TEST_F(SharedBufferPoolTest, SharedLruEvictsAcrossMachines) {
  SharedBufferPool small(2);
  SharedBufferPoolView a(&device_a_, &small);
  SharedBufferPoolView b(&device_b_, &small);
  a.Access(1);
  b.Access(2);
  b.Access(1);  // 1 MRU; order 2,1
  a.Access(3);  // evicts 2, whichever machine admitted it
  EXPECT_TRUE(small.Contains(1));
  EXPECT_FALSE(small.Contains(2));
  EXPECT_TRUE(small.Contains(3));
}

TEST_F(SharedBufferPoolTest, WarmAndClearActOnTheSharedCache) {
  view_a_.Warm(9);
  EXPECT_TRUE(view_b_.Contains(9));
  EXPECT_EQ(clock_a_.now_ns(), 0);  // warming is free
  view_b_.Clear();
  EXPECT_EQ(shared_.resident_pages(), 0u);
  EXPECT_FALSE(view_a_.Contains(9));
}

TEST_F(SharedBufferPoolTest, NonCacheableDoesNotPollute) {
  view_a_.Access(1, /*cacheable=*/false);
  EXPECT_FALSE(shared_.Contains(1));
  view_a_.Warm(1);
  EXPECT_TRUE(view_b_.Access(1, /*cacheable=*/false));  // hits still count
}

// A serial (single-worker) access sequence against a fresh shared pool is
// fully deterministic: same hits, same final residency, every time.
TEST_F(SharedBufferPoolTest, SerialAccessSequenceIsDeterministic) {
  auto run = [](SimDevice* device, VirtualClock* clock) {
    SharedBufferPool pool(4);
    SharedBufferPoolView view(device, &pool);
    clock->Reset();
    std::vector<bool> hits;
    for (uint64_t p : {1u, 2u, 3u, 1u, 4u, 5u, 2u, 1u, 6u, 3u}) {
      hits.push_back(view.Access(p));
    }
    return std::make_tuple(hits, pool.resident_pages(), view.hits(),
                           view.misses(), clock->now_ns());
  };
  auto first = run(&device_a_, &clock_a_);
  auto second = run(&device_b_, &clock_b_);
  EXPECT_EQ(first, second);
}

// The deterministic shared schedule (point-major round-robin over the
// machines — the order the sweep engine uses when a sweep shares one
// pool) yields exact, reproducible per-view attribution: at every point
// the leading view takes the miss and every follower hits, so each
// view's counters are a function of the schedule alone — and the
// pool-wide totals are exactly their sum.
TEST_F(SharedBufferPoolTest, DeterministicSharedScheduleAttribution) {
  constexpr uint64_t kPoints = 8;  // fits the 8-page pool: no eviction
  for (uint64_t p = 0; p < kPoints; ++p) {
    // Point-major: every machine touches point p before anyone moves on.
    EXPECT_FALSE(view_a_.Access(p));  // leader misses and admits
    EXPECT_TRUE(view_b_.Access(p));   // follower hits the resident page
  }
  EXPECT_EQ(view_a_.hits(), 0u);
  EXPECT_EQ(view_a_.misses(), kPoints);
  EXPECT_EQ(view_b_.hits(), kPoints);
  EXPECT_EQ(view_b_.misses(), 0u);
  EXPECT_EQ(shared_.hits(), view_a_.hits() + view_b_.hits());
  EXPECT_EQ(shared_.misses(), view_a_.misses() + view_b_.misses());

  // A second pass is all hits, each attributed to its calling view even
  // when the within-point order flips.
  for (uint64_t p = 0; p < kPoints; ++p) {
    EXPECT_TRUE(view_b_.Access(p));
    EXPECT_TRUE(view_a_.Access(p));
  }
  EXPECT_EQ(view_a_.hits(), kPoints);
  EXPECT_EQ(view_b_.hits(), 2 * kPoints);
  EXPECT_EQ(shared_.hits(), 3 * kPoints);
  EXPECT_EQ(shared_.misses(), kPoints);
}

// The same schedule at a capacity that forces eviction between rounds:
// round-robin order makes the eviction sequence — and with it every
// view's exact hit/miss split — identical run to run.
TEST_F(SharedBufferPoolTest, SharedScheduleAttributionUnderEviction) {
  auto run = [](SimDevice* da, SimDevice* db) {
    SharedBufferPool pool(2);
    SharedBufferPoolView a(da, &pool);
    SharedBufferPoolView b(db, &pool);
    for (int round = 0; round < 3; ++round) {
      for (uint64_t p = 0; p < 3; ++p) {  // 3 pages through 2 slots
        a.Access(p);
        b.Access(p);
      }
    }
    EXPECT_EQ(pool.hits(), a.hits() + b.hits());
    EXPECT_EQ(pool.misses(), a.misses() + b.misses());
    return std::make_tuple(a.hits(), a.misses(), b.hits(), b.misses());
  };
  auto first = run(&device_a_, &device_b_);
  // A leads every point, so every capacity miss lands on A while B
  // always hits the page A just (re)admitted.
  EXPECT_EQ(first, std::make_tuple(uint64_t{0}, uint64_t{9}, uint64_t{9},
                                   uint64_t{0}));
  auto second = run(&device_a_, &device_b_);
  EXPECT_EQ(first, second);
}

// Thread-safety smoke: machines hammer overlapping pages concurrently.
// Residency must respect capacity and no access may be lost or double
// counted; per-machine counters need no lock because each view is only
// used from its own thread.
TEST_F(SharedBufferPoolTest, ConcurrentAccessKeepsCountsConsistent) {
  constexpr int kMachines = 8;
  constexpr int kAccesses = 5000;
  SharedBufferPool pool(16);

  std::vector<std::unique_ptr<VirtualClock>> clocks;
  std::vector<std::unique_ptr<SimDevice>> devices;
  std::vector<std::unique_ptr<SharedBufferPoolView>> views;
  for (int m = 0; m < kMachines; ++m) {
    clocks.push_back(std::make_unique<VirtualClock>());
    devices.push_back(
        std::make_unique<SimDevice>(DiskParameters{}, clocks.back().get()));
    devices.back()->AllocateExtent(1000);
    views.push_back(
        std::make_unique<SharedBufferPoolView>(devices.back().get(),
                                               &pool));
  }

  std::vector<std::thread> threads;
  for (int m = 0; m < kMachines; ++m) {
    threads.emplace_back([m, &views] {
      for (int i = 0; i < kAccesses; ++i) {
        views[m]->Access(static_cast<uint64_t>((i * (m + 1)) % 64));
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_LE(pool.resident_pages(), 16u);
  EXPECT_EQ(pool.hits() + pool.misses(),
            static_cast<uint64_t>(kMachines) * kAccesses);
  for (int m = 0; m < kMachines; ++m) {
    EXPECT_EQ(views[m]->hits() + views[m]->misses(),
              static_cast<uint64_t>(kAccesses));
  }
}

}  // namespace
}  // namespace robustmap
