#include "io/run_context.h"

#include <gtest/gtest.h>

namespace robustmap {
namespace {

class RunContextTest : public ::testing::Test {
 protected:
  RunContextTest() : device_(DiskParameters{}, &clock_), pool_(&device_, 64) {
    ctx_.clock = &clock_;
    ctx_.device = &device_;
    ctx_.pool = &pool_;
  }

  VirtualClock clock_;
  SimDevice device_;
  BufferPool pool_;
  RunContext ctx_;
};

TEST_F(RunContextTest, ChargeCpuRoundsToNearestNanosecond) {
  ctx_.ChargeCpu(0.9e-9);
  EXPECT_EQ(clock_.now_ns(), 1);  // truncation would drop this to 0
  ctx_.ChargeCpu(0.4e-9);
  EXPECT_EQ(clock_.now_ns(), 1);
  ctx_.ChargeCpu(2.5e-9);
  EXPECT_EQ(clock_.now_ns(), 4);
}

// Regression for the truncation bug: seconds * 1e9 routinely lands a hair
// below the integer (8e-9 * 1e9 != 8.0 exactly), so static_cast<int64_t>
// under-charged whole nanoseconds, and genuinely sub-nanosecond charges
// vanished entirely.
TEST_F(RunContextTest, ManyTinyChargesAccumulate) {
  for (int i = 0; i < 1000; ++i) ctx_.ChargeCpu(0.6e-9);
  EXPECT_EQ(clock_.now_ns(), 1000);  // each 0.6 ns rounds to 1; trunc gave 0

  clock_.Reset();
  CpuParameters cpu;
  for (int i = 0; i < 1000; ++i) ctx_.ChargeCpu(cpu.compare_seconds);
  EXPECT_EQ(clock_.now_ns(), 8000);  // exactly 8 ns per comparison
}

TEST_F(RunContextTest, ChargeCpuOpsChargesProductOnce) {
  ctx_.ChargeCpuOps(1000, 0.6e-9);
  EXPECT_EQ(clock_.now_ns(), 600);
}

TEST_F(RunContextTest, SimDeviceSealAndReleaseTempExtents) {
  const uint64_t gap = DiskParameters{}.max_skip_gap_pages;
  EXPECT_EQ(device_.AllocateExtent(10), 0u);
  device_.SealDataExtents();
  EXPECT_EQ(device_.data_watermark(), 10u);
  // The scratch region sits one full skip gap past the data, so a spill is
  // always a full seek away from any data page.
  EXPECT_EQ(device_.TempRegionStart(), 10u + gap + 1);
  device_.ReleaseTempExtents();
  EXPECT_EQ(device_.AllocateExtent(5), 10u + gap + 1);
  device_.ReleaseTempExtents();
  EXPECT_EQ(device_.AllocateExtent(5), 10u + gap + 1);  // reproducible
}

TEST_F(RunContextTest, ReleaseTempExtentsSealsImplicitly) {
  const uint64_t gap = DiskParameters{}.max_skip_gap_pages;
  device_.AllocateExtent(7);
  device_.ReleaseTempExtents();  // first call treats current frontier as data
  EXPECT_EQ(device_.data_watermark(), 7u);
  EXPECT_EQ(device_.AllocateExtent(3), 7u + gap + 1);
  device_.ReleaseTempExtents();
  EXPECT_EQ(device_.AllocateExtent(3), 7u + gap + 1);
}

TEST_F(RunContextTest, FactoryClonesMachineConfiguration) {
  device_.AllocateExtent(100);
  device_.SealDataExtents();
  ctx_.sort_memory_bytes = 1234;
  ctx_.hash_memory_bytes = 5678;
  ctx_.cpu.compare_seconds = 99e-9;

  RunContextFactory factory(ctx_);
  auto machine = factory.Create();
  RunContext* worker = machine->ctx();

  ASSERT_NE(worker->clock, nullptr);
  ASSERT_NE(worker->device, nullptr);
  ASSERT_NE(worker->pool, nullptr);
  EXPECT_NE(worker->device, ctx_.device);  // a private machine, not a view
  EXPECT_EQ(worker->pool->capacity_pages(), 64u);
  EXPECT_EQ(worker->sort_memory_bytes, 1234u);
  EXPECT_EQ(worker->hash_memory_bytes, 5678u);
  EXPECT_EQ(worker->cpu.compare_seconds, 99e-9);

  // Data extents mirrored: the next (temp) allocation lands exactly where
  // it would on the prototype after a cold start.
  EXPECT_EQ(worker->device->data_watermark(), 100u);
  EXPECT_EQ(worker->device->TempRegionStart(), ctx_.device->TempRegionStart());
  worker->device->ReleaseTempExtents();
  EXPECT_EQ(worker->device->AllocateExtent(5),
            worker->device->TempRegionStart());

  // Clocks are independent.
  worker->ChargeCpu(5e-9);
  EXPECT_EQ(worker->clock->now_ns(), 5);
  EXPECT_EQ(clock_.now_ns(), 0);
}

}  // namespace
}  // namespace robustmap
