#include "io/run_context.h"

#include <gtest/gtest.h>

namespace robustmap {
namespace {

class RunContextTest : public ::testing::Test {
 protected:
  RunContextTest() : device_(DiskParameters{}, &clock_), pool_(&device_, 64) {
    ctx_.clock = &clock_;
    ctx_.device = &device_;
    ctx_.pool = &pool_;
  }

  VirtualClock clock_;
  SimDevice device_;
  LruBufferPool pool_;
  RunContext ctx_;
};

TEST_F(RunContextTest, ChargeCpuCarriesSubNanosecondRemainders) {
  // Powers of two are exact in binary, so every step here is precise.
  ctx_.ChargeCpu(0.75e-9);
  EXPECT_EQ(clock_.now_ns(), 0);  // 0.75 ns pending in the carry
  ctx_.ChargeCpu(0.5e-9);
  EXPECT_EQ(clock_.now_ns(), 1);  // 1.25 ns accumulated -> 1 on the clock
  ctx_.ChargeCpu(2.5e-9);
  EXPECT_EQ(clock_.now_ns(), 3);  // 3.75 ns total, 0.75 still pending
  ctx_.ChargeCpu(0.25e-9);
  EXPECT_EQ(clock_.now_ns(), 4);  // exactly 4.0 ns charged in total
  EXPECT_EQ(ctx_.cpu_carry_ns, 0.0);
}

// Regression for per-call rounding bias: llround biased every charge by up
// to half a nanosecond in either direction, so N sub-nanosecond charges
// drifted from the exact sum by up to N/2 ns (1000 x 0.6 ns = 600 ns of
// work billed as 1000 ns). The carry accumulator keeps the clock within
// 1 ns of the exact sum at every point, however finely work is charged.
TEST_F(RunContextTest, ManyTinyChargesSumExactly) {
  for (int i = 0; i < 1000; ++i) ctx_.ChargeCpu(0.6e-9);
  // Exact sum is 600 ns; llround billed this as 1000 ns (+67% bias).
  EXPECT_NEAR(static_cast<double>(clock_.now_ns()), 600.0, 1.0);

  clock_.Reset();
  ctx_.cpu_carry_ns = 0.0;
  for (int i = 0; i < 1000; ++i) ctx_.ChargeCpu(0.25e-9);
  // 0.25 is exact in binary: no accumulation error at all.
  EXPECT_EQ(clock_.now_ns(), 250);

  clock_.Reset();
  ctx_.cpu_carry_ns = 0.0;
  CpuParameters cpu;
  for (int i = 0; i < 1000; ++i) ctx_.ChargeCpu(cpu.compare_seconds);
  EXPECT_EQ(clock_.now_ns(), 8000);  // exactly 8 ns per comparison
}

TEST_F(RunContextTest, ChargeCpuOpsChargesProductOnce) {
  ctx_.ChargeCpuOps(1000, 0.6e-9);
  EXPECT_EQ(clock_.now_ns(), 600);
}

TEST_F(RunContextTest, ColdStartResetsCpuCarry) {
  ctx_.ChargeCpu(0.9e-9);
  ctx_.ColdStart();
  EXPECT_EQ(ctx_.cpu_carry_ns, 0.0);
  ctx_.ChargeCpu(0.9e-9);
  // Without the reset the stale 0.9 ns carry would leak into this
  // measurement and the clock would already read 1.
  EXPECT_EQ(clock_.now_ns(), 0);
}

TEST_F(RunContextTest, SimDeviceSealAndReleaseTempExtents) {
  const uint64_t gap = DiskParameters{}.max_skip_gap_pages;
  EXPECT_EQ(device_.AllocateExtent(10), 0u);
  device_.SealDataExtents();
  EXPECT_EQ(device_.data_watermark(), 10u);
  // The scratch region sits one full skip gap past the data, so a spill is
  // always a full seek away from any data page.
  EXPECT_EQ(device_.TempRegionStart(), 10u + gap + 1);
  device_.ReleaseTempExtents();
  EXPECT_EQ(device_.AllocateExtent(5), 10u + gap + 1);
  device_.ReleaseTempExtents();
  EXPECT_EQ(device_.AllocateExtent(5), 10u + gap + 1);  // reproducible
}

TEST_F(RunContextTest, ReleaseTempExtentsSealsImplicitly) {
  const uint64_t gap = DiskParameters{}.max_skip_gap_pages;
  device_.AllocateExtent(7);
  device_.ReleaseTempExtents();  // first call treats current frontier as data
  EXPECT_EQ(device_.data_watermark(), 7u);
  EXPECT_EQ(device_.AllocateExtent(3), 7u + gap + 1);
  device_.ReleaseTempExtents();
  EXPECT_EQ(device_.AllocateExtent(3), 7u + gap + 1);
}

TEST_F(RunContextTest, FactoryClonesMachineConfiguration) {
  device_.AllocateExtent(100);
  device_.SealDataExtents();
  ctx_.sort_memory_bytes = 1234;
  ctx_.hash_memory_bytes = 5678;
  ctx_.cpu.compare_seconds = 99e-9;

  RunContextFactory factory(ctx_);
  auto machine = factory.Create();
  RunContext* worker = machine->ctx();

  ASSERT_NE(worker->clock, nullptr);
  ASSERT_NE(worker->device, nullptr);
  ASSERT_NE(worker->pool, nullptr);
  EXPECT_NE(worker->device, ctx_.device);  // a private machine, not a view
  EXPECT_EQ(worker->pool->capacity_pages(), 64u);
  EXPECT_EQ(worker->sort_memory_bytes, 1234u);
  EXPECT_EQ(worker->hash_memory_bytes, 5678u);
  EXPECT_EQ(worker->cpu.compare_seconds, 99e-9);

  // Data extents mirrored: the next (temp) allocation lands exactly where
  // it would on the prototype after a cold start.
  EXPECT_EQ(worker->device->data_watermark(), 100u);
  EXPECT_EQ(worker->device->TempRegionStart(), ctx_.device->TempRegionStart());
  worker->device->ReleaseTempExtents();
  EXPECT_EQ(worker->device->AllocateExtent(5),
            worker->device->TempRegionStart());

  // Clocks are independent.
  worker->ChargeCpu(5e-9);
  EXPECT_EQ(worker->clock->now_ns(), 5);
  EXPECT_EQ(clock_.now_ns(), 0);
}

TEST_F(RunContextTest, ColdStartDefaultsToEmptyPool) {
  pool_.Access(3);
  ctx_.ColdStart();
  EXPECT_EQ(pool_.resident_pages(), 0u);
  EXPECT_EQ(pool_.hits(), 0u);
  EXPECT_EQ(pool_.misses(), 0u);
  EXPECT_EQ(clock_.now_ns(), 0);
}

TEST_F(RunContextTest, ColdStartAppliesExplicitPageWarmup) {
  pool_.Access(50);  // stale residency from a previous run
  ctx_.warmup = WarmupPolicy::ExplicitPages({1, 2, 3});
  ctx_.ColdStart();
  EXPECT_EQ(clock_.now_ns(), 0);  // warming is free
  EXPECT_EQ(pool_.resident_pages(), 3u);
  EXPECT_FALSE(pool_.Contains(50));  // stale page gone
  EXPECT_TRUE(pool_.Contains(1));
  EXPECT_TRUE(pool_.Contains(2));
  EXPECT_TRUE(pool_.Contains(3));
  EXPECT_EQ(pool_.hits(), 0u);  // preloading is not a measured access
  EXPECT_EQ(pool_.misses(), 0u);
}

TEST_F(RunContextTest, ColdStartAppliesFractionResidentWarmup) {
  device_.AllocateExtent(100);
  device_.SealDataExtents();
  ctx_.warmup = WarmupPolicy::FractionResident(0.25);
  ctx_.ColdStart();
  // 25% of 100 data pages, well under the 64-page capacity.
  EXPECT_EQ(pool_.resident_pages(), 25u);
  for (uint64_t p = 0; p < 25; ++p) EXPECT_TRUE(pool_.Contains(p));
  EXPECT_FALSE(pool_.Contains(25));
}

TEST_F(RunContextTest, FractionResidentIsCappedByPoolCapacity) {
  device_.AllocateExtent(1000);
  device_.SealDataExtents();
  ctx_.warmup = WarmupPolicy::FractionResident(0.5);  // wants 500 of 1000
  ctx_.ColdStart();
  // The pool holds 64 pages: the most recent 64 of the touched prefix
  // [0, 500) stay resident, as after a real sequential pass over it.
  EXPECT_EQ(pool_.resident_pages(), 64u);
  EXPECT_FALSE(pool_.Contains(435));
  EXPECT_TRUE(pool_.Contains(436));
  EXPECT_TRUE(pool_.Contains(499));
  EXPECT_FALSE(pool_.Contains(500));
}

TEST_F(RunContextTest, PriorRunWarmupKeepsResidencyButResetsStats) {
  pool_.Access(7);
  pool_.Access(7);
  ctx_.warmup = WarmupPolicy::PriorRun();
  ctx_.ColdStart();
  EXPECT_TRUE(pool_.Contains(7));  // survives into the next measurement
  EXPECT_EQ(pool_.hits(), 0u);     // but the stats window starts fresh
  EXPECT_EQ(pool_.misses(), 0u);
  EXPECT_EQ(clock_.now_ns(), 0);
}

TEST_F(RunContextTest, FactoryPropagatesWarmupPolicy) {
  ctx_.warmup = WarmupPolicy::ExplicitPages({4, 5});
  RunContextFactory factory(ctx_);
  auto machine = factory.Create();
  EXPECT_EQ(machine->ctx()->warmup.mode, WarmupPolicy::Mode::kExplicitPages);
  machine->ctx()->ColdStart();
  EXPECT_TRUE(machine->ctx()->pool->Contains(4));
  EXPECT_TRUE(machine->ctx()->pool->Contains(5));
}

TEST_F(RunContextTest, RecycleResetsMachineInPlace) {
  device_.AllocateExtent(100);
  device_.SealDataExtents();
  RunContextFactory factory(ctx_);
  auto machine = factory.Create();
  RunContext* worker = machine->ctx();

  // Dirty every piece of machine state a measurement touches.
  worker->ReadPage(3);
  worker->ReadPage(3);
  worker->ChargeCpu(5.7e-9);
  worker->device->ReleaseTempExtents();
  const uint64_t temp_start = worker->device->AllocateExtent(4);

  machine->Recycle(WarmupPolicy::FractionResident(0.25));
  EXPECT_EQ(worker->clock->now_ns(), 0);
  EXPECT_EQ(worker->cpu_carry_ns, 0.0);
  EXPECT_EQ(worker->pool->resident_pages(), 0u);
  EXPECT_EQ(worker->pool->hits(), 0u);
  EXPECT_EQ(worker->pool->misses(), 0u);
  EXPECT_EQ(worker->warmup.mode, WarmupPolicy::Mode::kFractionResident);
  // Temp extents released: the next spill lands exactly where the first
  // one did, so spill seek costs cannot depend on recycling history.
  EXPECT_EQ(worker->device->AllocateExtent(4), temp_start);
}

TEST_F(RunContextTest, RecycledMachineAllocatesNoNewPageNodes) {
  device_.AllocateExtent(100);
  device_.SealDataExtents();
  RunContextFactory factory(ctx_);
  auto machine = factory.Create();

  for (uint64_t p = 0; p < 32; ++p) machine->ctx()->ReadPage(p);
  const uint64_t cold_allocs = machine->ctx()->pool->node_allocations();
  EXPECT_EQ(cold_allocs, 32u);

  // The same working set on the recycled machine reuses the freed nodes:
  // zero fresh heap allocations, where a rebuilt machine would pay all 32
  // again. This counter is the deterministic form of the recycle speedup.
  machine->Recycle(WarmupPolicy::Cold());
  for (uint64_t p = 0; p < 32; ++p) machine->ctx()->ReadPage(p);
  EXPECT_EQ(machine->ctx()->pool->node_allocations(), cold_allocs);
  EXPECT_LT(machine->ctx()->pool->node_allocations(), 2 * cold_allocs);
}

TEST_F(RunContextTest, AcquireRecyclesParkedMachines) {
  device_.AllocateExtent(100);
  device_.SealDataExtents();
  RunContextFactory factory(ctx_);

  auto machine = factory.Acquire();  // empty arena: a fresh Create()
  OwnedRunContext* raw = machine.get();
  machine->ctx()->ReadPage(9);
  factory.Release(std::move(machine));

  factory.set_warmup(WarmupPolicy::FractionResident(0.5));
  auto recycled = factory.Acquire();
  EXPECT_EQ(recycled.get(), raw);  // the parked machine, not a rebuild
  EXPECT_EQ(recycled->ctx()->pool->resident_pages(), 0u);
  EXPECT_EQ(recycled->ctx()->warmup.mode,
            WarmupPolicy::Mode::kFractionResident);

  factory.Release(nullptr);  // null-tolerant (skipped cells release null)
  auto fresh = factory.Acquire();
  EXPECT_NE(fresh.get(), raw);
}

TEST_F(RunContextTest, ShareBufferPoolDropsParkedMachines) {
  device_.AllocateExtent(100);
  device_.SealDataExtents();
  SharedBufferPool shared(64);
  RunContextFactory factory(ctx_);
  factory.Release(factory.Create());  // parked under the private topology

  factory.ShareBufferPool(&shared);
  auto machine = factory.Acquire();  // must NOT be the parked private one
  EXPECT_FALSE(machine->ctx()->ReadPage(5));  // miss admits into `shared`
  EXPECT_TRUE(shared.Contains(5));

  // Recycling a shared-view machine leaves the shared cache untouched —
  // exactly what constructing a fresh view would do.
  machine->Recycle(WarmupPolicy::Cold());
  EXPECT_TRUE(shared.Contains(5));
  EXPECT_EQ(machine->ctx()->pool->hits(), 0u);
}

TEST_F(RunContextTest, FactorySharedPoolAttachesAllMachinesToOneCache) {
  device_.AllocateExtent(100);
  device_.SealDataExtents();
  SharedBufferPool shared(64);
  RunContextFactory factory(ctx_);
  factory.ShareBufferPool(&shared);
  auto a = factory.Create();
  auto b = factory.Create();

  EXPECT_FALSE(a->ctx()->ReadPage(5));  // A misses and admits
  EXPECT_TRUE(b->ctx()->ReadPage(5));   // B hits A's page
  EXPECT_GT(a->ctx()->clock->now_ns(), 0);
  EXPECT_EQ(b->ctx()->clock->now_ns(), 0);  // hit costs B nothing

  // A cold start on one machine clears the cache for everyone — that is
  // what an empty pool means when the pool is shared.
  a->ctx()->ColdStart();
  EXPECT_FALSE(shared.Contains(5));
  EXPECT_EQ(b->ctx()->pool->resident_pages(), 0u);
}

}  // namespace
}  // namespace robustmap
