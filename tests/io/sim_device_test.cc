#include "io/sim_device.h"

#include <gtest/gtest.h>

namespace robustmap {
namespace {

TEST(SimDeviceTest, ExtentsAreDisjointAndOrdered) {
  VirtualClock clock;
  SimDevice device(DiskParameters{}, &clock);
  uint64_t a = device.AllocateExtent(100);
  uint64_t b = device.AllocateExtent(50);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 100u);
  EXPECT_EQ(device.allocated_pages(), 150u);
}

TEST(SimDeviceTest, SequentialRunChargesTransferTime) {
  DiskParameters p;
  VirtualClock clock;
  SimDevice device(p, &clock);
  device.AllocateExtent(1000);
  device.ReadPage(0);  // first access: random
  int64_t after_first = clock.now_ns();
  device.ReadRun(1, 99);
  double expected = 99 * p.TransferSeconds();
  // Each page access rounds to whole nanoseconds: allow 0.5 ns per page.
  EXPECT_NEAR(clock.now_ns() - after_first, expected * 1e9, 50);
  EXPECT_EQ(device.stats().sequential_reads, 99u);
  EXPECT_EQ(device.stats().random_reads, 1u);
}

TEST(SimDeviceTest, RandomReadsCostMoreThanSequential) {
  DiskParameters p;
  VirtualClock clock;
  SimDevice device(p, &clock);
  device.AllocateExtent(1u << 20);
  device.ReadPage(0);
  clock.Reset();
  device.ReadPage(1);
  int64_t seq = clock.now_ns();
  clock.Reset();
  device.ReadPage(1u << 19);
  int64_t rand = clock.now_ns();
  EXPECT_GT(rand, seq * 10);
}

TEST(SimDeviceTest, StatsTrackReadsWritesBytes) {
  DiskParameters p;
  VirtualClock clock;
  SimDevice device(p, &clock);
  device.AllocateExtent(10);
  device.ReadPage(3);
  device.WritePage(4);
  device.WriteRun(5, 2);
  EXPECT_EQ(device.stats().total_reads(), 1u);
  EXPECT_EQ(device.stats().writes, 3u);
  EXPECT_EQ(device.stats().bytes_read, p.page_size_bytes);
  EXPECT_EQ(device.stats().bytes_written, 3u * p.page_size_bytes);
}

TEST(SimDeviceTest, ResetHeadMakesNextAccessRandom) {
  VirtualClock clock;
  SimDevice device(DiskParameters{}, &clock);
  device.AllocateExtent(10);
  device.ReadPage(0);
  device.ResetHead();
  device.ReadPage(1);  // would be sequential without the reset
  EXPECT_EQ(device.stats().random_reads, 2u);
}

TEST(IoStatsTest, DeltaSubtracts) {
  IoStats a;
  a.sequential_reads = 10;
  a.writes = 4;
  IoStats b = a;
  b.sequential_reads = 25;
  b.writes = 9;
  IoStats d = b.Delta(a);
  EXPECT_EQ(d.sequential_reads, 15u);
  EXPECT_EQ(d.writes, 5u);
}

TEST(IoStatsTest, PlusEqualsAccumulates) {
  IoStats a, b;
  a.random_reads = 3;
  b.random_reads = 4;
  b.buffer_hits = 7;
  a += b;
  EXPECT_EQ(a.random_reads, 7u);
  EXPECT_EQ(a.buffer_hits, 7u);
}

}  // namespace
}  // namespace robustmap
