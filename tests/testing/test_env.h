#ifndef ROBUSTMAP_TESTS_TESTING_TEST_ENV_H_
#define ROBUSTMAP_TESTS_TESTING_TEST_ENV_H_

#include <memory>
#include <set>

#include "engine/executor.h"
#include "index/procedural_index.h"
#include "io/buffer_pool.h"
#include "io/run_context.h"
#include "io/sim_device.h"
#include "storage/procedural_table.h"

namespace robustmap::testing {

/// A small, fully wired procedural database for operator/engine tests:
/// simulated machine, two-column table, all four indexes, and brute-force
/// reference queries to validate operators against.
class ProcEnv {
 public:
  explicit ProcEnv(int row_bits = 12, int value_bits = 6, uint64_t seed = 42)
      : device_(DiskParameters{}, &clock_), pool_(&device_, 4096) {
    ctx_.clock = &clock_;
    ctx_.device = &device_;
    ctx_.pool = &pool_;
    ProceduralTableOptions topts;
    topts.row_bits = row_bits;
    topts.value_bits = value_bits;
    topts.seed = seed;
    table_ = ProceduralTable::Create(&device_, topts).ValueOrDie();
    idx_a_ = MakeIndex({0});
    idx_b_ = MakeIndex({1});
    idx_ab_ = MakeIndex({0, 1});
    idx_ba_ = MakeIndex({1, 0});
  }

  RunContext* ctx() { return &ctx_; }
  const ProceduralTable& table() const { return *table_; }
  ProceduralIndex* idx_a() { return idx_a_.get(); }
  ProceduralIndex* idx_b() { return idx_b_.get(); }
  ProceduralIndex* idx_ab() { return idx_ab_.get(); }
  ProceduralIndex* idx_ba() { return idx_ba_.get(); }
  int64_t domain() const { return table_->value_domain(); }

  StudyDb db() {
    StudyDb d;
    d.table = table_.get();
    d.idx_a = idx_a_.get();
    d.idx_b = idx_b_.get();
    d.idx_ab = idx_ab_.get();
    d.idx_ba = idx_ba_.get();
    d.domain = domain();
    return d;
  }

  /// Brute-force reference result for a in [a_lo,a_hi] AND b in [b_lo,b_hi].
  std::set<Rid> MatchingRids(int64_t a_lo, int64_t a_hi, int64_t b_lo,
                             int64_t b_hi) const {
    std::set<Rid> out;
    for (Rid rid = 0; rid < table_->num_rows(); ++rid) {
      int64_t a = table_->ValueAt(rid, 0);
      int64_t b = table_->ValueAt(rid, 1);
      if (a >= a_lo && a <= a_hi && b >= b_lo && b <= b_hi) out.insert(rid);
    }
    return out;
  }

  uint64_t CountMatching(int64_t a_lo, int64_t a_hi, int64_t b_lo,
                         int64_t b_hi) const {
    return MatchingRids(a_lo, a_hi, b_lo, b_hi).size();
  }

 private:
  std::unique_ptr<ProceduralIndex> MakeIndex(std::vector<uint32_t> cols) {
    ProceduralIndexOptions opts;
    opts.key_columns = std::move(cols);
    opts.entries_per_leaf = 64;
    return ProceduralIndex::Create(&device_, table_.get(), opts).ValueOrDie();
  }

  VirtualClock clock_;
  SimDevice device_;
  LruBufferPool pool_;
  RunContext ctx_;
  std::unique_ptr<ProceduralTable> table_;
  std::unique_ptr<ProceduralIndex> idx_a_, idx_b_, idx_ab_, idx_ba_;
};

/// Drains an operator, collecting rids.
inline std::set<Rid> CollectRids(RunContext* ctx, Operator* op) {
  std::set<Rid> out;
  EXPECT_TRUE(op->Open(ctx).ok());
  Row r;
  while (op->Next(ctx, &r)) out.insert(r.rid);
  EXPECT_TRUE(op->status().ok());
  op->Close(ctx);
  return out;
}

}  // namespace robustmap::testing

#endif  // ROBUSTMAP_TESTS_TESTING_TEST_ENV_H_
