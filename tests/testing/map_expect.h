#ifndef ROBUSTMAP_TESTS_TESTING_MAP_EXPECT_H_
#define ROBUSTMAP_TESTS_TESTING_MAP_EXPECT_H_

#include <gtest/gtest.h>

#include <string>

#include "core/robustness_map.h"

namespace robustmap::testing {

/// Asserts two maps agree on shape, plan labels, and *every* field of
/// every cell — the determinism contract parallel, sharded, and serialized
/// maps all promise. Exact equality, never near-equality; one definition
/// shared by all map tests so no suite's notion of "bit-identical" can
/// quietly weaken.
inline void ExpectMapsBitIdentical(const RobustnessMap& a,
                                   const RobustnessMap& b) {
  ASSERT_EQ(a.num_plans(), b.num_plans());
  ASSERT_TRUE(a.space() == b.space());
  ASSERT_EQ(a.space().num_points(), b.space().num_points());
  for (size_t plan = 0; plan < a.num_plans(); ++plan) {
    EXPECT_EQ(a.plan_label(plan), b.plan_label(plan));
    for (size_t pt = 0; pt < a.space().num_points(); ++pt) {
      const Measurement& ma = a.At(plan, pt);
      const Measurement& mb = b.At(plan, pt);
      SCOPED_TRACE(a.plan_label(plan) + " point " + std::to_string(pt));
      EXPECT_EQ(ma.seconds, mb.seconds);
      EXPECT_EQ(ma.output_rows, mb.output_rows);
      EXPECT_EQ(ma.io.sequential_reads, mb.io.sequential_reads);
      EXPECT_EQ(ma.io.skip_reads, mb.io.skip_reads);
      EXPECT_EQ(ma.io.random_reads, mb.io.random_reads);
      EXPECT_EQ(ma.io.writes, mb.io.writes);
      EXPECT_EQ(ma.io.buffer_hits, mb.io.buffer_hits);
      EXPECT_EQ(ma.io.bytes_read, mb.io.bytes_read);
      EXPECT_EQ(ma.io.bytes_written, mb.io.bytes_written);
      EXPECT_EQ(ma.plan_label, mb.plan_label);
    }
  }
}

}  // namespace robustmap::testing

#endif  // ROBUSTMAP_TESTS_TESTING_MAP_EXPECT_H_
