#include "index/btree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace robustmap {
namespace {

class BTreeEnv {
 public:
  BTreeEnv() : device_(DiskParameters{}, &clock_), pool_(&device_, 1024) {
    ctx_.clock = &clock_;
    ctx_.device = &device_;
    ctx_.pool = &pool_;
  }
  RunContext* ctx() { return &ctx_; }
  SimDevice* device() { return &device_; }

 private:
  VirtualClock clock_;
  SimDevice device_;
  LruBufferPool pool_;
  RunContext ctx_;
};

std::vector<IndexEntry> MakeEntries(int64_t n, int64_t dupes = 1) {
  std::vector<IndexEntry> entries;
  for (int64_t i = 0; i < n; ++i) {
    entries.push_back({i / dupes, 0, static_cast<Rid>(i)});
  }
  return entries;
}

// Parameterized over leaf capacity to exercise single- and multi-level
// trees with the same assertions.
class BTreeParamTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BTreeParamTest, BulkLoadScanReturnsAllInOrder) {
  BTreeEnv env;
  BTreeOptions opts;
  opts.leaf_capacity = GetParam();
  opts.key_columns = {0};
  auto tree =
      BTree::BulkLoad(env.device(), MakeEntries(1000), opts).ValueOrDie();
  ASSERT_TRUE(tree->CheckInvariants().ok());
  EXPECT_EQ(tree->num_entries(), 1000u);

  auto cursor = tree->SeekFirst(env.ctx());
  int64_t expected = 0;
  while (cursor->Valid()) {
    ASSERT_EQ(cursor->entry().key0, expected);
    ++expected;
    cursor->Next(env.ctx());
  }
  EXPECT_EQ(expected, 1000);
}

TEST_P(BTreeParamTest, SeekFindsLowerBound) {
  BTreeEnv env;
  BTreeOptions opts;
  opts.leaf_capacity = GetParam();
  opts.key_columns = {0};
  auto tree =
      BTree::BulkLoad(env.device(), MakeEntries(500, /*dupes=*/5), opts)
          .ValueOrDie();
  // Keys are 0..99, five entries each.
  auto cursor = tree->Seek(env.ctx(), 37, INT64_MIN);
  ASSERT_TRUE(cursor->Valid());
  EXPECT_EQ(cursor->entry().key0, 37);
  // Count the duplicates.
  int count = 0;
  while (cursor->Valid() && cursor->entry().key0 == 37) {
    ++count;
    cursor->Next(env.ctx());
  }
  EXPECT_EQ(count, 5);
  ASSERT_TRUE(cursor->Valid());
  EXPECT_EQ(cursor->entry().key0, 38);
}

TEST_P(BTreeParamTest, SeekPastEndIsInvalid) {
  BTreeEnv env;
  BTreeOptions opts;
  opts.leaf_capacity = GetParam();
  opts.key_columns = {0};
  auto tree =
      BTree::BulkLoad(env.device(), MakeEntries(100), opts).ValueOrDie();
  EXPECT_FALSE(tree->Seek(env.ctx(), 1000, 0)->Valid());
}

TEST_P(BTreeParamTest, InsertsMaintainOrderThroughSplits) {
  BTreeEnv env;
  BTreeOptions opts;
  opts.leaf_capacity = GetParam();
  opts.key_columns = {0};
  auto tree = BTree::BulkLoad(env.device(), MakeEntries(50), opts).ValueOrDie();

  Rng rng(42);
  for (int i = 0; i < 500; ++i) {
    IndexEntry e{static_cast<int64_t>(rng.NextBounded(10000)), 0,
                 static_cast<Rid>(1000 + i)};
    ASSERT_TRUE(tree->Insert(env.ctx(), e).ok());
  }
  ASSERT_TRUE(tree->CheckInvariants().ok());
  EXPECT_EQ(tree->num_entries(), 550u);

  auto cursor = tree->SeekFirst(env.ctx());
  IndexEntry prev{INT64_MIN, INT64_MIN, 0};
  size_t seen = 0;
  while (cursor->Valid()) {
    ASSERT_FALSE(EntryLess(cursor->entry(), prev));
    prev = cursor->entry();
    ++seen;
    cursor->Next(env.ctx());
  }
  EXPECT_EQ(seen, 550u);
}

INSTANTIATE_TEST_SUITE_P(LeafCapacities, BTreeParamTest,
                         ::testing::Values(4, 16, 64, 512));

TEST(BTreeTest, RejectsUnsortedBulkLoad) {
  BTreeEnv env;
  BTreeOptions opts;
  opts.key_columns = {0};
  std::vector<IndexEntry> entries = {{5, 0, 0}, {3, 0, 1}};
  EXPECT_TRUE(BTree::BulkLoad(env.device(), entries, opts)
                  .status()
                  .IsInvalidArgument());
}

TEST(BTreeTest, RejectsExactDuplicate) {
  BTreeEnv env;
  BTreeOptions opts;
  opts.key_columns = {0};
  auto tree = BTree::BulkLoad(env.device(), MakeEntries(10), opts).ValueOrDie();
  EXPECT_TRUE(tree->Insert(env.ctx(), {5, 0, 5}).IsInvalidArgument());
  // Same key, different rid is fine (non-unique index).
  EXPECT_TRUE(tree->Insert(env.ctx(), {5, 0, 999}).ok());
}

TEST(BTreeTest, CompositeKeyOrderAndSeek) {
  BTreeEnv env;
  BTreeOptions opts;
  opts.key_columns = {0, 1};
  std::vector<IndexEntry> entries;
  for (int64_t a = 0; a < 10; ++a) {
    for (int64_t b = 0; b < 10; ++b) {
      entries.push_back({a, b, static_cast<Rid>(a * 10 + b)});
    }
  }
  auto tree = BTree::BulkLoad(env.device(), entries, opts).ValueOrDie();
  auto cursor = tree->Seek(env.ctx(), 4, 7);
  ASSERT_TRUE(cursor->Valid());
  EXPECT_EQ(cursor->entry().key0, 4);
  EXPECT_EQ(cursor->entry().key1, 7);
  // Seek beyond the last b of a group lands on the next group.
  cursor = tree->Seek(env.ctx(), 4, 99);
  ASSERT_TRUE(cursor->Valid());
  EXPECT_EQ(cursor->entry().key0, 5);
  EXPECT_EQ(cursor->entry().key1, 0);
}

TEST(BTreeTest, EmptyTreeBehaves) {
  BTreeEnv env;
  BTreeOptions opts;
  opts.key_columns = {0};
  auto tree = BTree::BulkLoad(env.device(), {}, opts).ValueOrDie();
  EXPECT_EQ(tree->num_entries(), 0u);
  EXPECT_FALSE(tree->SeekFirst(env.ctx())->Valid());
  ASSERT_TRUE(tree->Insert(env.ctx(), {1, 0, 1}).ok());
  EXPECT_TRUE(tree->SeekFirst(env.ctx())->Valid());
}

TEST(BTreeTest, HeightGrowsWithSize) {
  BTreeEnv env;
  BTreeOptions opts;
  opts.key_columns = {0};
  opts.leaf_capacity = 8;
  opts.internal_fanout = 4;
  auto small =
      BTree::BulkLoad(env.device(), MakeEntries(16), opts).ValueOrDie();
  auto large =
      BTree::BulkLoad(env.device(), MakeEntries(4000), opts).ValueOrDie();
  EXPECT_GT(large->height(), small->height());
}

TEST(BTreeTest, SeeksChargeIo) {
  BTreeEnv env;
  BTreeOptions opts;
  opts.key_columns = {0};
  auto tree =
      BTree::BulkLoad(env.device(), MakeEntries(10000), opts).ValueOrDie();
  uint64_t before = env.device()->stats().total_reads();
  tree->Seek(env.ctx(), 5000, 0);
  EXPECT_GT(env.device()->stats().total_reads(), before);
}

TEST(BTreeTest, RejectsBadOptions) {
  BTreeEnv env;
  BTreeOptions opts;  // no key columns
  EXPECT_TRUE(
      BTree::BulkLoad(env.device(), {}, opts).status().IsInvalidArgument());
  opts.key_columns = {0, 1, 2};
  EXPECT_TRUE(
      BTree::BulkLoad(env.device(), {}, opts).status().IsInvalidArgument());
}

}  // namespace
}  // namespace robustmap
