#include "index/procedural_index.h"

#include <gtest/gtest.h>

#include <set>

namespace robustmap {
namespace {

class ProceduralIndexTest : public ::testing::Test {
 protected:
  ProceduralIndexTest()
      : device_(DiskParameters{}, &clock_), pool_(&device_, 1024) {
    ctx_.clock = &clock_;
    ctx_.device = &device_;
    ctx_.pool = &pool_;
    ProceduralTableOptions topts;
    topts.row_bits = 12;   // 4096 rows
    topts.value_bits = 6;  // 64 values x 64 dupes
    table_ = ProceduralTable::Create(&device_, topts).ValueOrDie();
  }

  std::unique_ptr<ProceduralIndex> MakeIndex(std::vector<uint32_t> cols) {
    ProceduralIndexOptions opts;
    opts.key_columns = std::move(cols);
    opts.entries_per_leaf = 64;
    return ProceduralIndex::Create(&device_, table_.get(), opts).ValueOrDie();
  }

  VirtualClock clock_;
  SimDevice device_;
  LruBufferPool pool_;
  RunContext ctx_;
  std::unique_ptr<ProceduralTable> table_;
};

TEST_F(ProceduralIndexTest, SingleColumnEntriesSortedAndComplete) {
  auto idx = MakeIndex({0});
  std::set<Rid> rids;
  int64_t prev_key = -1;
  for (uint64_t k = 0; k < idx->num_entries(); ++k) {
    IndexEntry e = idx->EntryAt(k);
    ASSERT_GE(e.key0, prev_key);
    prev_key = e.key0;
    ASSERT_EQ(e.key0, table_->ValueAt(e.rid, 0));
    rids.insert(e.rid);
  }
  EXPECT_EQ(rids.size(), table_->num_rows());  // every row indexed once
}

TEST_F(ProceduralIndexTest, SingleColumnRangeCountsExact) {
  auto idx = MakeIndex({0});
  // Range [0, k) holds exactly k * 64 entries for every k.
  for (int64_t k : {1, 7, 32, 64}) {
    EXPECT_EQ(idx->OrdinalLowerBound(k, INT64_MIN),
              static_cast<uint64_t>(k) * 64);
  }
  EXPECT_EQ(idx->OrdinalLowerBound(INT64_MIN, INT64_MIN), 0u);
  EXPECT_EQ(idx->OrdinalLowerBound(64, 0), idx->num_entries());
}

TEST_F(ProceduralIndexTest, CompositeEntriesSortedByBothKeys) {
  auto idx = MakeIndex({0, 1});
  IndexEntry prev{-1, -1, 0};
  std::set<Rid> rids;
  for (uint64_t k = 0; k < idx->num_entries(); ++k) {
    IndexEntry e = idx->EntryAt(k);
    ASSERT_FALSE(EntryLess(e, prev)) << "ordinal " << k;
    prev = e;
    ASSERT_EQ(e.key0, table_->ValueAt(e.rid, 0));
    ASSERT_EQ(e.key1, table_->ValueAt(e.rid, 1));
    rids.insert(e.rid);
  }
  EXPECT_EQ(rids.size(), table_->num_rows());
}

TEST_F(ProceduralIndexTest, CompositeSeekSemantics) {
  auto idx = MakeIndex({0, 1});
  // Brute-force the expected lower bound for a few probes.
  for (int64_t k0 : {0, 5, 63}) {
    for (int64_t k1 : {0, 13, 40, 63}) {
      uint64_t got = idx->OrdinalLowerBound(k0, k1);
      uint64_t expect = 0;
      while (expect < idx->num_entries()) {
        IndexEntry e = idx->EntryAt(expect);
        if (e.key0 > k0 || (e.key0 == k0 && e.key1 >= k1)) break;
        ++expect;
      }
      ASSERT_EQ(got, expect) << "probe (" << k0 << "," << k1 << ")";
    }
  }
}

TEST_F(ProceduralIndexTest, CursorVisitsRangeAndChargesLeafIo) {
  auto idx = MakeIndex({0});
  uint64_t reads_before = device_.stats().total_reads();
  auto cursor = idx->Seek(&ctx_, 10, INT64_MIN);
  uint64_t count = 0;
  while (cursor->Valid() && cursor->entry().key0 <= 12) {
    ++count;
    cursor->Next(&ctx_);
  }
  EXPECT_EQ(count, 3u * 64);  // values 10, 11, 12
  // 192 entries at 64/leaf crosses at least 2 leaf boundaries + the probe.
  EXPECT_GE(device_.stats().total_reads() + device_.stats().buffer_hits -
                reads_before,
            3u);
}

TEST_F(ProceduralIndexTest, SeekMidGroupOnComposite) {
  auto idx = MakeIndex({0, 1});
  auto cursor = idx->Seek(&ctx_, 3, 50);
  ASSERT_TRUE(cursor->Valid());
  const IndexEntry& e = cursor->entry();
  EXPECT_TRUE(e.key0 > 3 || (e.key0 == 3 && e.key1 >= 50));
}

TEST_F(ProceduralIndexTest, HeightAndLeafCount) {
  auto idx = MakeIndex({0});
  EXPECT_EQ(idx->num_leaf_pages(), 4096u / 64);
  EXPECT_GE(idx->height(), 2);
}

TEST_F(ProceduralIndexTest, RejectsBadOptions) {
  ProceduralIndexOptions opts;
  EXPECT_FALSE(ProceduralIndex::Create(&device_, table_.get(), opts).ok());
  opts.key_columns = {0, 1, 2};
  EXPECT_FALSE(ProceduralIndex::Create(&device_, table_.get(), opts).ok());
  opts.key_columns = {9};
  EXPECT_FALSE(ProceduralIndex::Create(&device_, table_.get(), opts).ok());
}

}  // namespace
}  // namespace robustmap
