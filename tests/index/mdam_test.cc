#include "index/mdam.h"

#include <gtest/gtest.h>

#include <set>

#include "index/procedural_index.h"

namespace robustmap {
namespace {

class MdamTest : public ::testing::Test {
 protected:
  MdamTest() : device_(DiskParameters{}, &clock_), pool_(&device_, 4096) {
    ctx_.clock = &clock_;
    ctx_.device = &device_;
    ctx_.pool = &pool_;
    ProceduralTableOptions topts;
    topts.row_bits = 12;
    topts.value_bits = 6;
    table_ = ProceduralTable::Create(&device_, topts).ValueOrDie();
    ProceduralIndexOptions iopts;
    iopts.key_columns = {0, 1};
    iopts.entries_per_leaf = 64;
    index_ =
        ProceduralIndex::Create(&device_, table_.get(), iopts).ValueOrDie();
  }

  // Brute-force reference: rids with a in [a_lo,a_hi] and b in [b_lo,b_hi].
  std::set<Rid> Reference(int64_t a_lo, int64_t a_hi, int64_t b_lo,
                          int64_t b_hi) {
    std::set<Rid> out;
    for (Rid rid = 0; rid < table_->num_rows(); ++rid) {
      int64_t a = table_->ValueAt(rid, 0);
      int64_t b = table_->ValueAt(rid, 1);
      if (a >= a_lo && a <= a_hi && b >= b_lo && b <= b_hi) out.insert(rid);
    }
    return out;
  }

  std::set<Rid> Collect(const MdamOptions& opts) {
    auto cursor = MdamCursor::Create(&ctx_, index_.get(), opts);
    std::set<Rid> out;
    while (cursor->Valid()) {
      out.insert(cursor->entry().rid);
      cursor->Next(&ctx_);
    }
    return out;
  }

  VirtualClock clock_;
  SimDevice device_;
  LruBufferPool pool_;
  RunContext ctx_;
  std::unique_ptr<ProceduralTable> table_;
  std::unique_ptr<ProceduralIndex> index_;
};

// Both strategies must produce exactly the brute-force result on a grid of
// range shapes (property-style sweep).
class MdamModeTest
    : public MdamTest,
      public ::testing::WithParamInterface<MdamOptions::Mode> {};

TEST_P(MdamModeTest, MatchesBruteForceOnRangeGrid) {
  struct Range {
    int64_t a_lo, a_hi, b_lo, b_hi;
  } ranges[] = {
      {0, 63, 0, 63},   // everything
      {0, 0, 0, 0},     // single cell
      {10, 20, 5, 6},   // narrow b: skip-scan territory
      {0, 63, 31, 31},  // all a, single b
      {5, 5, 0, 63},    // single a, all b
      {60, 63, 60, 63},
      {0, 31, 32, 63},
  };
  for (const Range& r : ranges) {
    MdamOptions opts;
    opts.k0_lo = r.a_lo;
    opts.k0_hi = r.a_hi;
    opts.k1_lo = r.b_lo;
    opts.k1_hi = r.b_hi;
    opts.k0_domain = 64;
    opts.k1_domain = 64;
    opts.mode = GetParam();
    ASSERT_EQ(Collect(opts), Reference(r.a_lo, r.a_hi, r.b_lo, r.b_hi))
        << "range a[" << r.a_lo << "," << r.a_hi << "] b[" << r.b_lo << ","
        << r.b_hi << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, MdamModeTest,
                         ::testing::Values(MdamOptions::Mode::kAuto,
                                           MdamOptions::Mode::kSkipScan,
                                           MdamOptions::Mode::kRangeScan));

TEST_F(MdamTest, SkipScanSeeksPerGroup) {
  MdamOptions opts;
  opts.k0_lo = 0;
  opts.k0_hi = 63;
  opts.k1_lo = 0;
  opts.k1_hi = 0;  // very selective on b
  opts.mode = MdamOptions::Mode::kSkipScan;
  auto cursor = MdamCursor::Create(&ctx_, index_.get(), opts);
  while (cursor->Valid()) cursor->Next(&ctx_);
  // About one seek per distinct a value (64), not one per entry (4096).
  EXPECT_GE(cursor->seeks_performed(), 32u);
  EXPECT_LE(cursor->seeks_performed(), 130u);
}

TEST_F(MdamTest, AutoChoosesRangeScanForWideB) {
  MdamOptions opts;
  opts.k0_lo = 0;
  opts.k0_hi = 63;
  opts.k1_lo = 0;
  opts.k1_hi = 63;
  opts.k0_domain = 64;
  opts.k1_domain = 64;
  auto cursor = MdamCursor::Create(&ctx_, index_.get(), opts);
  EXPECT_EQ(cursor->chosen_mode(), MdamOptions::Mode::kRangeScan);
}

TEST_F(MdamTest, AutoChoosesSkipScanForNarrowBOnFatGroups) {
  // Skip-scan pays when each key0 group spans many leaves, so a probe
  // skips real I/O. Build a high-duplication index: 4 values over 64K rows
  // = 16K entries (256 leaves) per group.
  ProceduralTableOptions topts;
  topts.row_bits = 16;
  topts.value_bits = 2;
  auto fat_table = ProceduralTable::Create(&device_, topts).ValueOrDie();
  ProceduralIndexOptions iopts;
  iopts.key_columns = {0, 1};
  iopts.entries_per_leaf = 64;
  auto fat_index =
      ProceduralIndex::Create(&device_, fat_table.get(), iopts).ValueOrDie();

  MdamOptions opts;
  opts.k0_lo = 0;
  opts.k0_hi = 1;
  opts.k1_lo = 2;
  opts.k1_hi = 2;
  opts.k0_domain = 4;
  opts.k1_domain = 4;
  auto cursor = MdamCursor::Create(&ctx_, fat_index.get(), opts);
  EXPECT_EQ(cursor->chosen_mode(), MdamOptions::Mode::kSkipScan);
}

TEST_F(MdamTest, AutoChoosesRangeScanForThinGroups) {
  // With 64 entries per group (one leaf), a probe saves nothing over
  // scanning; the adaptive choice must fall back to the range scan.
  MdamOptions opts;
  opts.k0_lo = 0;
  opts.k0_hi = 63;
  opts.k1_lo = 7;
  opts.k1_hi = 7;
  opts.k0_domain = 64;
  opts.k1_domain = 64;
  auto cursor = MdamCursor::Create(&ctx_, index_.get(), opts);
  EXPECT_EQ(cursor->chosen_mode(), MdamOptions::Mode::kRangeScan);
}

TEST_F(MdamTest, UnknownDomainsDefaultToSkipScan) {
  MdamOptions opts;
  opts.k0_lo = 0;
  opts.k0_hi = 10;
  opts.k1_lo = 0;
  opts.k1_hi = 10;
  auto cursor = MdamCursor::Create(&ctx_, index_.get(), opts);
  EXPECT_EQ(cursor->chosen_mode(), MdamOptions::Mode::kSkipScan);
}

TEST_F(MdamTest, EmptyRangeIsInvalidImmediately) {
  MdamOptions opts;
  opts.k0_lo = 70;  // beyond the domain
  opts.k0_hi = 80;
  opts.k1_lo = 0;
  opts.k1_hi = 63;
  auto cursor = MdamCursor::Create(&ctx_, index_.get(), opts);
  EXPECT_FALSE(cursor->Valid());
}

TEST_F(MdamTest, EmitsInIndexOrder) {
  MdamOptions opts;
  opts.k0_lo = 3;
  opts.k0_hi = 40;
  opts.k1_lo = 10;
  opts.k1_hi = 20;
  opts.mode = MdamOptions::Mode::kSkipScan;
  auto cursor = MdamCursor::Create(&ctx_, index_.get(), opts);
  IndexEntry prev{-1, -1, 0};
  while (cursor->Valid()) {
    ASSERT_FALSE(EntryLess(cursor->entry(), prev));
    prev = cursor->entry();
    cursor->Next(&ctx_);
  }
}

}  // namespace
}  // namespace robustmap
