#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "viz/ascii_heatmap.h"
#include "viz/csv_export.h"
#include "viz/gnuplot_export.h"
#include "viz/legend.h"
#include "viz/ppm_writer.h"

namespace robustmap {
namespace {

RobustnessMap SmallMap(bool two_d) {
  ParameterSpace space =
      two_d ? ParameterSpace::TwoD(Axis::Selectivity("a", -2, 0),
                                   Axis::Selectivity("b", -2, 0))
            : ParameterSpace::OneD(Axis::Selectivity("a", -2, 0));
  RobustnessMap map(space, {"p0", "p1"});
  for (size_t pl = 0; pl < 2; ++pl) {
    for (size_t pt = 0; pt < space.num_points(); ++pt) {
      Measurement m;
      m.seconds = 0.01 * static_cast<double>(pt + 1) * (pl + 1);
      m.output_rows = pt;
      map.Set(pl, pt, m);
    }
  }
  return map;
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(AsciiHeatmapTest, RendersGlyphGrid) {
  RobustnessMap map = SmallMap(true);
  HeatmapOptions opts;
  opts.title = "test map";
  std::string out = RenderHeatmap(map.space(), map.SecondsOfPlan(0),
                                  ColorScale::AbsoluteSeconds(), opts);
  EXPECT_NE(out.find("test map"), std::string::npos);
  EXPECT_NE(out.find("2^-2"), std::string::npos);  // axis labels
  // 3 rows of cells plus axes.
  EXPECT_GE(std::count(out.begin(), out.end(), '\n'), 5);
}

TEST(AsciiHeatmapTest, AnsiModeEmitsColor) {
  RobustnessMap map = SmallMap(true);
  HeatmapOptions opts;
  opts.ansi_color = true;
  std::string out = RenderHeatmap(map.space(), map.SecondsOfPlan(0),
                                  ColorScale::AbsoluteSeconds(), opts);
  EXPECT_NE(out.find("\x1b[48;2;"), std::string::npos);
}

TEST(ChartTest, RendersSeriesAndLegend) {
  std::vector<double> xs = {0.25, 0.5, 1.0};
  std::vector<ChartSeries> series = {{"alpha", {0.1, 0.2, 0.4}},
                                     {"beta", {1, 1, 1}}};
  ChartOptions opts;
  opts.title = "chart title";
  std::string out = RenderChart(xs, series, opts);
  EXPECT_NE(out.find("chart title"), std::string::npos);
  EXPECT_NE(out.find("a = alpha"), std::string::npos);
  EXPECT_NE(out.find("b = beta"), std::string::npos);
  EXPECT_NE(out.find('a'), std::string::npos);
}

TEST(ChartTest, EmptyInputsHandled) {
  EXPECT_NE(RenderChart({}, {}).find("empty"), std::string::npos);
}

TEST(PpmWriterTest, WritesValidHeaderAndSize) {
  RobustnessMap map = SmallMap(true);
  std::string path = TempPath("map.ppm");
  ASSERT_TRUE(WritePpm(path, map.space(), map.SecondsOfPlan(0),
                       ColorScale::AbsoluteSeconds(), 4)
                  .ok());
  std::ifstream f(path, std::ios::binary);
  ASSERT_TRUE(f.is_open());
  std::string magic;
  int w, h, maxv;
  f >> magic >> w >> h >> maxv;
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(w, 12);  // 3 cells * 4 px
  EXPECT_EQ(h, 12);
  EXPECT_EQ(maxv, 255);
  f.get();  // single whitespace after header
  std::vector<char> pixels(static_cast<size_t>(w) * h * 3);
  f.read(pixels.data(), static_cast<std::streamsize>(pixels.size()));
  EXPECT_EQ(f.gcount(), static_cast<std::streamsize>(pixels.size()));
}

TEST(PpmWriterTest, LegendStrip) {
  std::string path = TempPath("legend.ppm");
  ASSERT_TRUE(WriteLegendPpm(path, ColorScale::RelativeFactor(), 2).ok());
  std::ifstream f(path, std::ios::binary);
  std::string magic;
  int w, h;
  f >> magic >> w >> h;
  EXPECT_EQ(w, 14);  // 7 buckets * 2 px
  EXPECT_EQ(h, 2);
}

TEST(PpmWriterTest, SizeMismatchRejected) {
  RobustnessMap map = SmallMap(true);
  std::vector<double> wrong(2, 1.0);
  EXPECT_FALSE(WritePpm(TempPath("bad.ppm"), map.space(), wrong,
                        ColorScale::AbsoluteSeconds())
                   .ok());
}

TEST(CsvExportTest, RowPerPlanPoint) {
  RobustnessMap map = SmallMap(false);
  std::ostringstream os;
  WriteMapCsv(os, map);
  std::string csv = os.str();
  // Header + 2 plans x 3 points.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 7);
  EXPECT_NE(csv.find("plan,x,y,seconds"), std::string::npos);
  EXPECT_NE(csv.find("p1,"), std::string::npos);
}

TEST(CsvExportTest, QuotesPlanLabelsContainingCommas) {
  // Real study labels like "A.mj(a,b)" embed commas; unquoted they would
  // shift every column after the first.
  ParameterSpace space = ParameterSpace::OneD(Axis::Selectivity("a", -1, 0));
  RobustnessMap map(space, {"A.mj(a,b)"});
  for (size_t pt = 0; pt < space.num_points(); ++pt) {
    Measurement m;
    m.seconds = 1.0;
    map.Set(0, pt, m);
  }
  std::ostringstream os;
  WriteMapCsv(os, map);
  EXPECT_NE(os.str().find("\"A.mj(a,b)\","), std::string::npos);

  std::ostringstream wc;
  ASSERT_TRUE(WriteWarmColdCsv(wc, map, map).ok());
  EXPECT_NE(wc.str().find("\"A.mj(a,b)\","), std::string::npos);
}

TEST(CsvExportTest, WarmColdRejectsMismatchedMaps) {
  ParameterSpace space = ParameterSpace::OneD(Axis::Selectivity("a", -1, 0));
  ParameterSpace other = ParameterSpace::OneD(Axis::Selectivity("a", -2, -1));
  RobustnessMap cold(space, {"p"});
  RobustnessMap warm(other, {"p"});  // same point count, different grid
  std::ostringstream os;
  EXPECT_FALSE(WriteWarmColdCsv(os, cold, warm).ok());
}

TEST(GnuplotExportTest, WritesDatAndPlt) {
  RobustnessMap map = SmallMap(true);
  std::string base = TempPath("fig");
  ASSERT_TRUE(WriteGnuplot(base, map).ok());
  std::ifstream dat(base + ".dat");
  std::ifstream plt(base + ".plt");
  ASSERT_TRUE(dat.is_open());
  ASSERT_TRUE(plt.is_open());
  std::stringstream pltc;
  pltc << plt.rdbuf();
  EXPECT_NE(pltc.str().find("pm3d"), std::string::npos);
}

TEST(GnuplotExportTest, PltCanPipeFromMapCat) {
  // The bench artifact shape: no .dat copy on disk, the .plt pipes its
  // data straight out of the canonical .rmt via `map_cat --dat`.
  RobustnessMap map = SmallMap(true);
  std::string base = TempPath("figpipe");
  const std::string pipe = "< bench/map_cat --dat " + base + ".rmt";
  ASSERT_TRUE(WriteGnuplotPlt(base, map, pipe).ok());
  std::ifstream dat(base + ".dat");
  EXPECT_FALSE(dat.is_open());
  std::ifstream plt(base + ".plt");
  ASSERT_TRUE(plt.is_open());
  std::stringstream pltc;
  pltc << plt.rdbuf();
  EXPECT_NE(pltc.str().find("'" + pipe + "'"), std::string::npos);

  // The piped data is the same bytes WriteGnuplot would have put in the
  // .dat file.
  std::ostringstream direct;
  WriteGnuplotDat(direct, map);
  EXPECT_FALSE(direct.str().empty());
}

TEST(GnuplotExportTest, OneDUsesLinespoints) {
  RobustnessMap map = SmallMap(false);
  std::string base = TempPath("fig1d");
  ASSERT_TRUE(WriteGnuplot(base, map).ok());
  std::ifstream plt(base + ".plt");
  std::stringstream pltc;
  pltc << plt.rdbuf();
  EXPECT_NE(pltc.str().find("linespoints"), std::string::npos);
  EXPECT_NE(pltc.str().find("logscale xy"), std::string::npos);
}

TEST(LegendTest, ListsEveryBucket) {
  std::string legend = RenderLegend(ColorScale::AbsoluteSeconds());
  EXPECT_NE(legend.find("0.001-0.01 seconds"), std::string::npos);
  EXPECT_NE(legend.find("100-1000 seconds"), std::string::npos);
  EXPECT_EQ(std::count(legend.begin(), legend.end(), '\n'), 9);  // title + 8
}

}  // namespace
}  // namespace robustmap
