// Custom systems and real storage: runs the robustness study on a genuine
// heap file + real B-trees (not the procedural simulator tables), and
// defines a hypothetical "System D" — System A's executor with MDAM bolted
// on — to ask the paper's question: which executor improvement buys the
// most robustness?

#include <cstdio>

#include "core/metrics.h"
#include "core/sweep.h"
#include "engine/plan_enumerator.h"
#include "engine/system.h"
#include "workload/distributions.h"

using namespace robustmap;

int main() {
  // A real materialized database: 50K rows, correlated columns (a classic
  // estimation hazard), loaded into slotted pages and bulk-loaded B-trees.
  VirtualClock clock;
  SimDevice device(DiskParameters{}, &clock);
  LruBufferPool pool(&device, 1024);
  RunContext ctx;
  ctx.clock = &clock;
  ctx.device = &device;
  ctx.pool = &pool;
  ctx.sort_memory_bytes = 64 << 10;
  ctx.hash_memory_bytes = 64 << 10;

  HeapDatasetOptions dopts;
  dopts.rows = 50000;
  dopts.domain = 4096;
  dopts.correlation = 0.3;
  auto dataset = BuildHeapStudyDataset(&ctx, &device, dopts).ValueOrDie();
  Executor executor(dataset.db());
  std::printf("heap dataset: %llu rows in %llu pages, B-tree heights: "
              "idx_a=%d idx_ab=%d\n\n",
              static_cast<unsigned long long>(dataset.table->num_rows()),
              static_cast<unsigned long long>(dataset.table->num_pages()),
              dataset.idx_a->height(), dataset.idx_ab->height());

  // System D: System A plus MDAM covering plans, but no hash joins.
  SystemConfig system_d{
      "System D",
      {PlanKind::kTableScan, PlanKind::kIndexAImproved,
       PlanKind::kIndexBImproved, PlanKind::kMergeJoinAB,
       PlanKind::kMergeJoinBA, PlanKind::kMdamAB, PlanKind::kMdamBA},
  };

  ParameterSpace space =
      ParameterSpace::TwoD(Axis::Selectivity("selectivity(a)", -10, 0),
                           Axis::Selectivity("selectivity(b)", -10, 0));

  for (const SystemConfig& sys :
       {SystemConfig::SystemA(), system_d}) {
    QuerySpec q = MakeStudyQuery(0.5, 0.5, dataset.domain);
    auto plans = EnumeratePlans(sys, q);
    std::vector<PlanKind> kinds;
    for (const auto& p : plans) kinds.push_back(p.kind);
    RobustnessMap map =
        SweepStudyPlans(&ctx, executor, kinds, space).ValueOrDie();
    auto summaries = SummarizePlans(map, ToleranceSpec{0.01, 1.0});
    std::printf("%s (%zu plans):\n%s\n", sys.name.c_str(), kinds.size(),
                RenderSummaryTable(summaries).c_str());
  }

  std::printf("Compare the worst-factor columns: adding MDAM gives System D "
              "a plan whose worst case stays small — the executor-side "
              "robustness the paper argues for.\n");
  return 0;
}
