// Mapping your own operator: the paper's §4 sort-spill prediction.
//
// Demonstrates the generic RunSweep API — no PlanKind involved. Any
// operator tree can be measured over any run-time condition; here the
// condition is input size relative to sort memory, and the subjects are a
// graceful external merge sort vs. a naive spill-everything sort.

#include <cstdio>

#include "common/format.h"
#include "core/landmarks.h"
#include "core/sweep.h"
#include "exec/index_scan.h"
#include "exec/sort.h"
#include "viz/ascii_heatmap.h"
#include "workload/dataset.h"

using namespace robustmap;

namespace {

Result<Measurement> MeasureSort(StudyEnvironment* env, double input_fraction,
                                SpillKind kind) {
  RunContext* ctx = env->ctx();
  QuerySpec q = env->MakeQuery(input_fraction, -1);
  IndexScanOptions so;
  so.k0_lo = q.pred_a.lo;
  so.k0_hi = q.pred_a.hi;
  SortKeySpec key{SortKeySpec::Kind::kColumn, 0};
  SortOp sort(std::make_unique<IndexScanOp>(env->db().idx_a, so), key, kind);

  ctx->clock->Reset();
  ctx->pool->Clear();
  ctx->device->ResetHead();
  VirtualStopwatch watch(ctx->clock);
  auto rows = DrainCount(ctx, &sort);
  RM_RETURN_IF_ERROR(rows.status());
  Measurement m;
  m.seconds = watch.elapsed_seconds();
  m.output_rows = rows.value();
  return m;
}

}  // namespace

int main() {
  StudyOptions options;
  options.row_bits = 16;
  options.value_bits = 12;
  auto env = StudyEnvironment::Create(options).ValueOrDie();
  env->ctx()->sort_memory_bytes = (uint64_t{1} << options.row_bits) * 4;
  std::printf("sort memory: %s\n",
              FormatBytes(env->ctx()->sort_memory_bytes).c_str());

  ParameterSpace space = ParameterSpace::OneD(
      Axis::SelectivityFine("input fraction", -8, 0, 2));
  RobustnessMap map =
      RunSweep(space, {"graceful external sort", "naive spill-all sort"},
               [&](size_t plan, double x, double) {
                 return MeasureSort(env.get(), x,
                                    plan == 0 ? SpillKind::kGraceful
                                              : SpillKind::kNaive);
               })
          .ValueOrDie();

  std::vector<ChartSeries> series = {
      {"graceful", map.SecondsOfPlan(0)},
      {"naive", map.SecondsOfPlan(1)},
  };
  ChartOptions copts;
  copts.title = "sort robustness map (log-log)";
  copts.x_label = "input size as fraction of the table";
  std::printf("%s", RenderChart(space.x().values, series, copts).c_str());

  LandmarkOptions lopts;
  lopts.discontinuity_ratio = 2.5;
  for (size_t pl = 0; pl < 2; ++pl) {
    auto lm = AnalyzeCurve(space.x().values, map.SecondsOfPlan(pl), lopts);
    std::printf("%s: %zu discontinuities%s\n", map.plan_label(pl).c_str(),
                lm.discontinuities.size(),
                lm.discontinuities.empty()
                    ? " — degrades gracefully"
                    : " — \"lacking graceful degradation\" (paper §4)");
  }
  return 0;
}
