// Plan study: the workflow of a DBA (or engine developer) deciding which
// plan to hint for a two-predicate query whose run-time selectivities are
// unpredictable — the paper's central use case.
//
// Sweeps all 13 plans over the 2-D selectivity space, then ranks plans by
// robustness rather than by best-case speed.

#include <cstdio>

#include "core/metrics.h"
#include "core/optimality.h"
#include "core/relative.h"
#include "core/sweep.h"
#include "viz/ascii_heatmap.h"
#include "viz/legend.h"
#include "workload/dataset.h"

using namespace robustmap;

int main() {
  StudyOptions options;
  options.row_bits = 16;  // small grid: this is a demo, not the bench
  options.value_bits = 12;
  auto env = StudyEnvironment::Create(options).ValueOrDie();

  ParameterSpace space =
      ParameterSpace::TwoD(Axis::Selectivity("selectivity(a)", -12, 0),
                           Axis::Selectivity("selectivity(b)", -12, 0));
  RobustnessMap map =
      SweepStudyPlans(env->ctx(), env->executor(), AllStudyPlans(), space)
          .ValueOrDie();
  RelativeMap rel = ComputeRelative(map);

  // Show the relative maps the paper contrasts: fragile vs. robust.
  ColorScale cs = ColorScale::RelativeFactor();
  for (const char* label : {"A.idx_a.improved", "C.mdam(a,b)"}) {
    size_t plan = map.PlanIndexOf(label).ValueOrDie();
    HeatmapOptions hopts;
    hopts.title = std::string("\n") + label + " — cost factor vs. best of 13";
    std::printf("%s",
                RenderHeatmap(space, rel.quotient[plan], cs, hopts).c_str());
  }
  std::printf("%s", RenderLegend(cs).c_str());

  // Rank plans the way the paper suggests: by worst-case factor, i.e. by
  // what happens when the optimizer's selectivity estimate is wrong.
  auto summaries = SummarizePlans(map, ToleranceSpec{0.1, 1.0});
  std::printf("\nrobustness ranking (what to hint when selectivities are "
              "unpredictable):\n%s",
              RenderSummaryTable(summaries).c_str());

  double best_worst = 1e300;
  std::string pick;
  for (const auto& s : summaries) {
    if (s.worst_quotient < best_worst) {
      best_worst = s.worst_quotient;
      pick = s.label;
    }
  }
  std::printf("\nrecommendation: hint %s (worst-case factor %.3g) — "
              "\"robustness might well trump performance\" (paper §3.3)\n",
              pick.c_str(), best_worst);
  return 0;
}
