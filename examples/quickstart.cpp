// Quickstart: measure three plans for one query, then draw your first
// robustness map.
//
// Build & run:   ./build/examples/example_quickstart

#include <cstdio>

#include "common/format.h"
#include "core/sweep.h"
#include "viz/ascii_heatmap.h"
#include "workload/dataset.h"

using namespace robustmap;

int main() {
  // 1. Create a simulated machine plus the benchmark database: a 2^18-row
  //    two-column table with single- and two-column indexes.
  StudyOptions options;
  options.row_bits = 18;
  options.value_bits = 14;
  auto env = StudyEnvironment::Create(options).ValueOrDie();

  // 2. Run one query (selectivity 1% on column a) under three plans.
  QuerySpec query = env->MakeQuery(/*sel_a=*/0.01, /*sel_b=*/-1);
  std::printf("query: %s\n\n", query.ToString().c_str());
  for (PlanKind plan : {PlanKind::kTableScan, PlanKind::kIndexANaive,
                        PlanKind::kIndexAImproved}) {
    Measurement m = env->executor().Run(env->ctx(), plan, query).ValueOrDie();
    std::printf("  %-22s %10s   (%llu rows, %llu random + %llu sequential "
                "reads)\n",
                PlanKindLabel(plan).c_str(), FormatSeconds(m.seconds).c_str(),
                static_cast<unsigned long long>(m.output_rows),
                static_cast<unsigned long long>(m.io.random_reads),
                static_cast<unsigned long long>(m.io.sequential_reads));
  }

  // 3. Sweep the whole selectivity axis and draw the Figure-1-style map.
  ParameterSpace space =
      ParameterSpace::OneD(Axis::Selectivity("selectivity(a)", -14, 0));
  RobustnessMap map =
      SweepStudyPlans(env->ctx(), env->executor(),
                      {PlanKind::kTableScan, PlanKind::kIndexANaive,
                       PlanKind::kIndexAImproved},
                      space)
          .ValueOrDie();

  std::vector<ChartSeries> series;
  for (size_t pl = 0; pl < map.num_plans(); ++pl) {
    series.push_back({map.plan_label(pl), map.SecondsOfPlan(pl)});
  }
  ChartOptions copts;
  copts.title = "\nrobustness map: execution time vs. selectivity (log-log)";
  copts.x_label = "selectivity of predicate on a";
  std::printf("%s", RenderChart(space.x().values, series, copts).c_str());

  std::printf("\nRead DESIGN.md for the full system map and bench/ for the "
              "per-figure reproductions.\n");
  return 0;
}
