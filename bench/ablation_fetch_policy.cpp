// Ablation: row-fetch policy — what exactly makes the "improved" index scan
// improved, and how much the buffer pool hides the difference.
//
// Compares per-rid naive fetches, sorted (skip-sequential) fetches, and
// System B's bitmap-ordered fetches on the same index scan, then repeats the
// naive policy with a 16x larger buffer pool to separate algorithmic
// robustness from cache luck.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/format.h"
#include "core/sweep.h"
#include "exec/fetch.h"
#include "exec/index_scan.h"
#include "viz/ascii_heatmap.h"

using namespace robustmap;
using namespace robustmap::bench;

namespace {

Result<Measurement> RunFetchPlan(RunContext* ctx, const StudyEnvironment* env,
                                 double sel, FetchPolicy policy) {
  QuerySpec q = env->MakeQuery(sel, -1);
  IndexScanOptions so;
  so.k0_lo = q.pred_a.lo;
  so.k0_hi = q.pred_a.hi;
  auto scan = std::make_unique<IndexScanOp>(env->db().idx_a, so);
  FetchOp fetch(std::move(scan), env->db().table, policy, {});

  ctx->ColdStart();
  VirtualStopwatch watch(ctx->clock);
  auto rows = DrainCount(ctx, &fetch);
  RM_RETURN_IF_ERROR(rows.status());
  Measurement m;
  m.seconds = watch.elapsed_seconds();
  m.output_rows = rows.value();
  return m;
}

}  // namespace

int main() {
  BenchScale scale = ResolveScale(/*default_row_bits=*/18);
  PrintHeader("Ablation: fetch policy (naive / sorted / bitmap) and buffer "
              "pool size",
              "sorted and bitmap fetches turn random I/O into a "
              "skip-sequential sweep; a larger pool only delays the naive "
              "policy's collapse",
              scale);
  auto env = MakeEnvironment(scale);

  ParameterSpace space = ParameterSpace::OneD(
      Axis::Selectivity("selectivity(a)", scale.grid_min_log2, 0));
  RunContextFactory factory(*env->ctx());
  auto map =
      SweepEngine::RunCellsParallel(
          space, {"fetch.naive", "fetch.sorted", "fetch.bitmap"}, factory,
          [&](RunContext* ctx, size_t plan, double x, double) {
            FetchPolicy p = plan == 0   ? FetchPolicy::kNaive
                            : plan == 1 ? FetchPolicy::kSorted
                                        : FetchPolicy::kBitmap;
            return RunFetchPlan(ctx, env.get(), x, p);
          },
          SweepOpts(scale))
          .ValueOrDie();
  PrintCurveTable(map);

  std::vector<ChartSeries> series;
  for (size_t pl = 0; pl < map.num_plans(); ++pl) {
    series.push_back({map.plan_label(pl), map.SecondsOfPlan(pl)});
  }
  ChartOptions copts;
  copts.title = "\nfetch cost vs. selectivity (log-log)";
  copts.x_label = "selectivity of predicate on a";
  std::printf("%s", RenderChart(space.x().values, series, copts).c_str());

  // Buffer pool sensitivity: same naive policy, 16x pool.
  StudyOptions big = env->options();
  big.pool_pages = std::max<uint64_t>(
      4096, (uint64_t{1} << big.row_bits) / 64 / 64 * 16);
  auto env_big = StudyEnvironment::Create(big).ValueOrDie();
  std::printf("\nnaive fetch with %s-page pool vs. %s-page pool:\n",
              FormatCount(env_big->ctx()->pool->capacity_pages()).c_str(),
              FormatCount(env->ctx()->pool->capacity_pages()).c_str());
  TextTable t({"selectivity", "naive (small pool)", "naive (16x pool)",
               "sorted (small pool)"});
  for (int lg = scale.grid_min_log2; lg <= 0; lg += 4) {
    double s = std::exp2(lg);
    auto small_naive =
        RunFetchPlan(env->ctx(), env.get(), s, FetchPolicy::kNaive);
    auto large_naive =
        RunFetchPlan(env_big->ctx(), env_big.get(), s, FetchPolicy::kNaive);
    auto small_sorted =
        RunFetchPlan(env->ctx(), env.get(), s, FetchPolicy::kSorted);
    t.AddRow({FormatSelectivity(s),
              FormatSeconds(small_naive.ValueOrDie().seconds),
              FormatSeconds(large_naive.ValueOrDie().seconds),
              FormatSeconds(small_sorted.ValueOrDie().seconds)});
  }
  std::printf("%s", t.ToString().c_str());

  ExportMap("ablation_fetch_policy", map);
  return 0;
}
