// Warm-cache robustness maps — the §3.2 run-time condition the classic
// figures leave out.
//
// Every other figure in this repo measures cold: empty buffer pool, head
// position forgotten. Graefe, Kuno & Wiener name "buffer contents" as a
// run-time condition worth mapping, and real servers rarely run cold. This
// study pairs each cold map with a warm one — the leading half of the table
// resident, as if a scan of it had just finished — and renders the per-cell
// delta (warm minus cold) on a diverging blue/white/red scale.
//
// Two plan sets are mapped over the standard 2-D selectivity space:
//   selection — table scan vs. improved single-index plan
//   fetch     — System B's bitmap plans, which fetch every result row
//
// Self-checks (exit non-zero on failure): cold maps stay bit-identical
// across 1/4/8 sweep threads with warmup disabled; the warm map for the
// fixed warmup policy is reproducible run-to-run; a serial shared-pool
// prior-run sweep is deterministic.

#include <algorithm>
#include <cstdio>
#include <limits>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/format.h"
#include "core/sweep_engine.h"
#include "viz/ascii_heatmap.h"
#include "viz/legend.h"
#include "workload/dataset.h"

using namespace robustmap;
using namespace robustmap::bench;

namespace {

int g_failures = 0;

void Check(bool ok, const char* name, double value, const char* detail) {
  std::printf("  [%s] %-52s %10.4g   %s\n", ok ? "PASS" : "FAIL", name, value,
              detail);
  if (!ok) ++g_failures;
}

struct PlanSet {
  const char* name;
  std::vector<PlanKind> plans;
};

double MinDelta(const RobustnessMap& delta) {
  double lo = std::numeric_limits<double>::infinity();
  for (size_t pl = 0; pl < delta.num_plans(); ++pl) {
    for (double v : delta.SecondsOfPlan(pl)) lo = std::min(lo, v);
  }
  return lo;
}

}  // namespace

int main() {
  BenchScale scale = ResolveScale(/*default_row_bits=*/18);
  PrintHeader("Warm-cache study: cold vs. warm robustness maps (§3.2)",
              "buffer contents are a run-time condition; cold-only maps "
              "miss an entire scenario axis",
              scale);

  // A machine whose pool can hold the whole table, so residency — not
  // capacity — is the condition under study.
  StudyOptions sopts;
  sopts.row_bits = scale.row_bits;
  sopts.value_bits = scale.value_bits;
  const uint64_t table_pages =
      (uint64_t{1} << scale.row_bits) / ProceduralTableOptions{}.rows_per_page;
  sopts.pool_pages = table_pages;
  auto env = StudyEnvironment::Create(sopts).ValueOrDie();

  // Warm state: the leading half of the table resident, as left behind by
  // a just-finished scan of it. Explicit pages make the policy independent
  // of extent layout and deterministic at any thread count.
  std::vector<uint64_t> warm_pages(table_pages / 2);
  std::iota(warm_pages.begin(), warm_pages.end(), env->table().base_page());
  WarmupPolicy warm_policy = WarmupPolicy::ExplicitPages(warm_pages);
  std::printf("warm policy: %s (half the table)\n",
              warm_policy.label().c_str());

  ParameterSpace space = ParameterSpace::TwoD(
      Axis::Selectivity("selectivity(a)", scale.grid_min_log2, 0),
      Axis::Selectivity("selectivity(b)", scale.grid_min_log2, 0));

  // Both sets touch the table: the selection plans scan or fetch it, and
  // System B's bitmap plans fetch every result row (MVCC). Covering-index
  // joins would show an all-white delta map — they never read the table, a
  // flavor of robustness of their own, but not this figure's subject.
  const std::vector<PlanSet> sets = {
      {"selection", {PlanKind::kTableScan, PlanKind::kIndexAImproved}},
      {"fetch", {PlanKind::kCoverABBitmapFetch, PlanKind::kBitmapAndFetch}},
  };

  // The engine request every sweep below varies: the warm-cold study on
  // the threaded backend over the study space.
  auto warmcold_request = [&](const std::vector<PlanKind>& plans) {
    SweepRequest req = StudyRequest(scale, plans, space);
    req.study = StudyKind::kWarmColdDelta;
    req.warm_policy = warm_policy;
    return req;
  };

  ColorScale diverging = ColorScale::DivergingSeconds();
  std::vector<WarmColdMaps> results;
  for (const PlanSet& set : sets) {
    std::printf("\n--- plan set: %s ---\n", set.name);
    auto maps = SweepEngine::Run(env->ctx(), env->executor(),
                                 warmcold_request(set.plans))
                    .ValueOrDie()
                    .ToWarmColdMaps();

    for (size_t pl = 0; pl < maps.delta.num_plans(); ++pl) {
      HeatmapOptions hopts;
      hopts.title = "\n";
      hopts.title += set.name;
      hopts.title += " / ";
      hopts.title += maps.delta.plan_label(pl);
      hopts.title += ": warm minus cold";
      std::printf("%s", RenderHeatmap(space, maps.delta.SecondsOfPlan(pl),
                                      diverging, hopts)
                            .c_str());
    }
    std::printf("%s", RenderLegend(diverging).c_str());

    auto cold0 = maps.cold.SecondsOfPlan(0);
    auto warm0 = maps.warm.SecondsOfPlan(0);
    std::printf("\n%s %s: cold %s .. %s, warm %s .. %s, best delta %s\n",
                set.name, maps.cold.plan_label(0).c_str(),
                FormatSeconds(*std::min_element(cold0.begin(), cold0.end()))
                    .c_str(),
                FormatSeconds(*std::max_element(cold0.begin(), cold0.end()))
                    .c_str(),
                FormatSeconds(*std::min_element(warm0.begin(), warm0.end()))
                    .c_str(),
                FormatSeconds(*std::max_element(warm0.begin(), warm0.end()))
                    .c_str(),
                FormatSeconds(MinDelta(maps.delta)).c_str());

    ExportWarmColdMaps(std::string("fig_warm_cache_") + set.name, maps);
    results.push_back(std::move(maps));
  }

  std::printf("\nSelf-checks:\n");

  // Cold maps must stay bit-identical across backends and thread counts
  // with warmup disabled — the engine's backend axis must not perturb the
  // classic guarantee.
  {
    const std::vector<PlanKind>& plans = sets[0].plans;
    env->ctx()->warmup = WarmupPolicy::Cold();
    SweepRequest serial = StudyRequest(scale, plans, space);
    serial.backend = BackendKind::kSerial;
    auto reference = SweepEngine::Run(env->ctx(), env->executor(), serial)
                         .ValueOrDie();
    bool identical = MapsBitIdentical(reference.map(), results[0].cold);
    for (unsigned threads : {4u, 8u}) {
      SweepRequest req = StudyRequest(scale, plans, space);
      req.sweep.num_threads = threads;
      auto out = SweepEngine::Run(env->ctx(), env->executor(), req)
                     .ValueOrDie();
      identical = identical && MapsBitIdentical(reference.map(), out.map());
    }
    Check(identical, "cold map bit-identical across serial/4/8 threads", 1,
          "warmup disabled");
  }

  // The warm map under a fixed explicit-page policy must reproduce exactly.
  {
    auto again = SweepEngine::Run(env->ctx(), env->executor(),
                                  warmcold_request(sets[0].plans))
                     .ValueOrDie()
                     .ToWarmColdMaps();
    Check(MapsBitIdentical(again.warm, results[0].warm),
          "warm map reproducible run-to-run", 1, "explicit page-set policy");
  }

  // The warm cache must actually help somewhere in each plan set.
  for (size_t i = 0; i < sets.size(); ++i) {
    double lo = MinDelta(results[i].delta);
    Check(lo < 0, (std::string(sets[i].name) + ": warm faster somewhere")
                      .c_str(),
          lo, "min over all cells of warm - cold seconds");
  }

  // Shared pool + prior-run warmth, serial fallback: one cache carried
  // across the whole sweep must be deterministic run-to-run.
  {
    ParameterSpace line = ParameterSpace::OneD(
        Axis::Selectivity("selectivity(a)", scale.grid_min_log2, 0));
    auto run_shared = [&]() {
      SharedBufferPool shared(sopts.pool_pages);
      SweepRequest req;
      req.plans = {PlanKind::kIndexAImproved};
      req.space = line;
      req.backend = BackendKind::kSerial;
      req.sweep.shared_pool = &shared;
      env->ctx()->warmup = WarmupPolicy::PriorRun();
      auto out = SweepEngine::Run(env->ctx(), env->executor(), req)
                     .ValueOrDie();
      env->ctx()->warmup = WarmupPolicy::Cold();
      return std::move(out.layers.front());
    };
    auto first = run_shared();
    auto second = run_shared();
    uint64_t hits = 0;
    for (size_t pt = 0; pt < line.num_points(); ++pt) {
      hits += first.At(0, pt).io.buffer_hits;
    }
    Check(MapsBitIdentical(first, second),
          "shared-pool prior-run sweep deterministic (serial)",
          static_cast<double>(hits), "cross-query buffer hits over the line");
  }

  std::printf("\n%d self-check failure(s)\n", g_failures);
  return g_failures == 0 ? 0 : 1;
}
